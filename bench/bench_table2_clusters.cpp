// Table II — cluster configurations.
//
// Regenerates the paper's cluster table plus the derived quantities the
// other experiments build on. The derived quantities run as a sweep —
// exec::table2_sweep(), one cell per cluster (same grid as `hgc_sweep
// --grid table2`); the vCPU histogram and per-worker allocation sections
// are static cluster properties and print directly.
#include <iostream>

#include "core/scheme_factory.hpp"
#include "exec/figures.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace hgc;

  std::cout << "=== Table II: Cluster Configurations ===\n\n";
  TablePrinter table({"number of vCPUs", "Cluster-A", "Cluster-B",
                      "Cluster-C", "Cluster-D"});
  const auto clusters = paper_clusters();
  for (unsigned vcpus : {2u, 4u, 8u, 12u, 16u}) {
    std::vector<std::string> row = {std::to_string(vcpus) + "-vCPUs"};
    for (const Cluster& cluster : clusters) {
      std::size_t count = 0;
      for (const auto& w : cluster.workers())
        if (w.vcpus == vcpus) ++count;
      row.push_back(std::to_string(count));
    }
    table.add_row(row);
  }
  {
    std::vector<std::string> row = {"total workers"};
    for (const Cluster& cluster : clusters)
      row.push_back(std::to_string(cluster.size()));
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\n=== Derived quantities (throughput ∝ vCPUs) ===\n\n";
  const exec::ResultTable derived =
      exec::run_figure(exec::table2_sweep());
  TablePrinter derived_table({"cluster", "m", "Σc", "min c",
                              "mean/min (≈ fault speedup)", "exact k (s=1)",
                              "ideal iter time (s=1)"});
  for (const exec::ResultRow& row : derived.rows()) {
    const auto metric = [&row](const std::string& name) {
      double v = 0.0;
      row.value(name, v);
      return v;
    };
    derived_table.add_row(
        {*row.axis("cluster"),
         std::to_string(static_cast<std::size_t>(metric("m"))),
         TablePrinter::num(metric("total_throughput"), 0),
         TablePrinter::num(metric("min_throughput"), 0),
         TablePrinter::num(metric("heterogeneity_ratio"), 2),
         std::to_string(static_cast<std::size_t>(metric("exact_k"))),
         TablePrinter::num(metric("ideal_time"), 5)});
  }
  derived_table.print(std::cout);

  std::cout << "\n=== Per-scheme data loads on Cluster-A (k = "
            << exact_partition_count(cluster_a(), 1) << ", s = 1) ===\n\n";
  const Cluster a = cluster_a();
  const std::size_t k = exact_partition_count(a, 1);
  Rng rng(5);
  TablePrinter loads({"worker (vCPUs)", "naive", "cyclic", "heter-aware",
                      "group-based"});
  std::vector<std::unique_ptr<CodingScheme>> schemes;
  for (SchemeKind kind : paper_schemes())
    schemes.push_back(make_scheme(kind, a.throughputs(), k, 1, rng));
  for (WorkerId w = 0; w < a.size(); ++w) {
    std::vector<std::string> row = {
        "W" + std::to_string(w) + " (" + std::to_string(a.worker(w).vcpus) +
        ")"};
    for (const auto& scheme : schemes)
      row.push_back(std::to_string(scheme->load(w)) + "/" +
                    std::to_string(scheme->num_partitions()));
    loads.add_row(row);
  }
  loads.print(std::cout);
  std::cout << "\nNote: heterogeneity-aware schemes assign load ∝ vCPUs;\n"
               "the baselines assign uniformly regardless of speed.\n";
  return 0;
}
