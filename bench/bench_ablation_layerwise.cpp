// Ablation — layer-wise coded gradients (the paper's conclusion: "still
// half of resource is idle due to communication overhead, this can be solved
// by … cod[ing] gradients layer by layer" à la Poseidon [42]).
//
// Grid: exec::layerwise_sweep(iters) — transfer/compute ratio × layer count
// for heter-aware on Cluster-A, cells run in parallel through
// exec::run_sweep (same grid as `hgc_sweep --grid layerwise`). The
// pipelined sender hides all but the last layer's transfer behind compute.
#include <iostream>

#include "exec/figures.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hgc;
  const auto [iterations, options] =
      exec::parse_bench_args(argc, argv, 200);

  std::cout << "=== Ablation: layer-wise coded sends (Cluster-A, "
               "heter-aware, s = 1) ===\n\n"
            << "Columns: avg iteration time (s) with the gradient split "
               "into L equal layers.\n"
            << "Transfer = full-gradient transmit time as a multiple of the "
               "ideal compute time.\n\n";

  const exec::FigureSweep figure = exec::layerwise_sweep(iterations);
  const exec::ResultTable table = exec::run_figure(figure, options);
  const exec::CustomAxis& ratios = figure.grid.custom_axes[0];
  const exec::CustomAxis& layers = figure.grid.custom_axes[1];

  std::vector<std::string> headers = {"transfer/compute"};
  headers.push_back("L=1 (monolithic)");
  for (std::size_t i = 1; i < layers.labels.size(); ++i)
    headers.push_back(layers.labels[i]);
  headers.push_back("overlap gain L=32");
  TablePrinter printer(std::move(headers));

  for (double ratio : ratios.values) {
    const std::string ratio_key = exec::ResultTable::format_double(ratio);
    std::vector<std::string> row = {TablePrinter::num(ratio, 2)};
    double mono = 0.0, best = 0.0;
    for (std::size_t i = 0; i < layers.values.size(); ++i) {
      double time = 0.0;
      table.find({{"transfer", ratio_key}, {"layers", layers.labels[i]}})
          ->value("time", time);
      row.push_back(TablePrinter::num(time, 4));
      if (i == 0) mono = time;
      best = time;
    }
    row.push_back(TablePrinter::num(100.0 * (mono - best) / mono, 1) + "%");
    printer.add_row(row);
  }
  printer.print(std::cout);

  std::cout << "\nExpected shape: the gain grows with the transfer/compute "
               "ratio and saturates in L\n(only the last layer's slice plus "
               "per-message latency stays exposed).\n";
  return 0;
}
