// Ablation — layer-wise coded gradients (the paper's conclusion: "still
// half of resource is idle due to communication overhead, this can be solved
// by … cod[ing] gradients layer by layer" à la Poseidon [42]).
//
// Sweeps the communication-to-compute ratio and the number of layers; the
// pipelined sender hides all but the last layer's transfer behind compute.
#include <iostream>

#include "core/scheme_factory.hpp"
#include "sim/layerwise.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hgc;
  const std::size_t iterations = argc > 1 ? std::stoul(argv[1]) : 200;

  const Cluster cluster = cluster_a();
  const std::size_t s = 1;
  Rng rng(19);
  const auto scheme =
      make_scheme(SchemeKind::kHeterAware, cluster.throughputs(), 24, s, rng);
  const double t0 = ideal_iteration_time(cluster, s);

  std::cout << "=== Ablation: layer-wise coded sends (Cluster-A, "
               "heter-aware, s = 1) ===\n\n"
            << "Columns: avg iteration time (s) with the gradient split "
               "into L equal layers.\n"
            << "Transfer = full-gradient transmit time as a multiple of the "
               "ideal compute time.\n\n";

  StragglerModel model;
  model.num_stragglers = 1;
  model.delay_seconds = 2.0 * t0;
  model.fluctuation_sigma = 0.05;

  TablePrinter table({"transfer/compute", "L=1 (monolithic)", "L=2", "L=4",
                      "L=8", "L=32", "overlap gain L=32"});
  for (double ratio : {0.25, 0.5, 1.0, 2.0}) {
    std::vector<std::string> row = {TablePrinter::num(ratio, 2)};
    double mono = 0.0, best = 0.0;
    for (std::size_t layers : {1u, 2u, 4u, 8u, 32u}) {
      LayerwiseParams params;
      params.layer_fractions = equal_layers(layers);
      params.full_transfer_time = ratio * t0;
      params.per_message_latency = 0.002 * t0;
      Rng condition_rng(101);
      RunningStats stats;
      for (std::size_t iter = 0; iter < iterations; ++iter) {
        const auto cond = model.draw(cluster.size(), condition_rng);
        const auto result =
            simulate_layerwise_iteration(*scheme, cluster, cond, params);
        if (result.decoded) stats.add(result.time);
      }
      row.push_back(TablePrinter::num(stats.mean(), 4));
      if (layers == 1) mono = stats.mean();
      best = stats.mean();
    }
    row.push_back(
        TablePrinter::num(100.0 * (mono - best) / mono, 1) + "%");
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: the gain grows with the transfer/compute "
               "ratio and saturates in L\n(only the last layer's slice plus "
               "per-message latency stays exposed).\n";
  return 0;
}
