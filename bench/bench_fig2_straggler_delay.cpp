// Fig. 2 — average time per iteration vs injected straggler delay on
// Cluster-A, for s = 1 (Fig. 2a) and s = 2 (Fig. 2b).
//
// The paper delays s random workers per iteration by a growing amount, with
// "fault" the limit of infinite delay. Expected shape (paper Section VI-A1):
// naive grows linearly and cannot run under faults; cyclic is delay-robust
// but pinned to the slowest surviving worker; heter-aware and group-based
// stay at the balanced optimum — ~3× faster than cyclic at full fault.
#include <iostream>

#include "sim/experiment.hpp"
#include "util/table.hpp"

namespace {

void run_panel(const hgc::Cluster& cluster, std::size_t s,
               std::size_t iterations) {
  using namespace hgc;
  const double t0 = ideal_iteration_time(cluster, s);
  std::cout << "--- Fig. 2" << (s == 1 ? "a" : "b") << ": s = " << s
            << " straggler(s), " << cluster.name() << ", avg time/iter (s) "
            << "over " << iterations << " iterations ---\n\n";

  ExperimentConfig config;
  config.s = s;
  config.k = exact_partition_count(cluster, s);
  config.iterations = iterations;
  config.model.num_stragglers = s;
  config.model.fluctuation_sigma = 0.02;

  TablePrinter table(
      {"injected delay", "naive", "cyclic", "heter-aware", "group-based"});
  auto emit = [&](const std::string& label) {
    const auto summaries = compare_schemes(paper_schemes(), cluster, config);
    std::vector<std::string> row = {label};
    for (const auto& summary : summaries)
      row.push_back(summary.ever_failed()
                        ? "fail"
                        : TablePrinter::num(summary.mean_time(), 4));
    table.add_row(row);
  };

  for (double factor : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    config.model.delay_seconds = factor * t0;
    config.model.fault = false;
    emit(TablePrinter::num(factor, 1) + " x ideal");
  }
  config.model.fault = true;
  emit("fault (inf)");
  table.print(std::cout);

  // The paper's headline: heter-aware vs cyclic at fault.
  const auto at_fault =
      compare_schemes({SchemeKind::kCyclic, SchemeKind::kHeterAware}, cluster,
                      config);
  std::cout << "\nheter-aware speedup over cyclic at fault: "
            << TablePrinter::num(
                   at_fault[0].mean_time() / at_fault[1].mean_time(), 2)
            << "x  (paper: up to 3x; cluster bound mean(c)/min(c) = "
            << TablePrinter::num(cluster.heterogeneity_ratio(), 2) << ")\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t iterations = argc > 1 ? std::stoul(argv[1]) : 300;
  std::cout << "=== Fig. 2: robustness to stragglers (Cluster-A) ===\n\n";
  run_panel(hgc::cluster_a(), 1, iterations);
  run_panel(hgc::cluster_a(), 2, iterations);
  return 0;
}
