// Fig. 2 — average time per iteration vs injected straggler delay on
// Cluster-A, for s = 1 (Fig. 2a) and s = 2 (Fig. 2b).
//
// Grid: exec::fig2_grid(s, iters) — scheme × {0, 0.5, 1, 2, 4, 8}× ideal
// delay + fault, one panel per s; cells run in parallel through
// exec::run_sweep (same grid as `hgc_sweep --grid fig2`). Expected shape
// (paper Section VI-A1): naive grows linearly and cannot run under faults;
// cyclic is delay-robust but pinned to the slowest surviving worker;
// heter-aware and group-based stay at the balanced optimum — ~3× faster
// than cyclic at full fault.
#include <iostream>

#include "exec/figures.hpp"
#include "util/table.hpp"

namespace {

void run_panel(std::size_t s, std::size_t iterations,
               const hgc::exec::SweepOptions& options) {
  using namespace hgc;
  const exec::SweepGrid grid = exec::fig2_grid(s, iterations);
  std::cout << "--- Fig. 2" << (s == 1 ? "a" : "b") << ": s = " << s
            << " straggler(s), " << grid.clusters[0].name()
            << ", avg time/iter (s) over " << iterations
            << " iterations ---\n\n";

  const exec::ResultTable table = exec::run_sweep(grid, options);
  table.pivot("model", "scheme", "time").print(std::cout);

  // The paper's headline: heter-aware vs cyclic at fault.
  double cyclic = 0.0, heter = 0.0;
  table.find({{"model", "fault (inf)"}, {"scheme", "cyclic"}})
      ->value("time", cyclic);
  table.find({{"model", "fault (inf)"}, {"scheme", "heter-aware"}})
      ->value("time", heter);
  std::cout << "\nheter-aware speedup over cyclic at fault: "
            << TablePrinter::num(cyclic / heter, 2)
            << "x  (paper: up to 3x; cluster bound mean(c)/min(c) = "
            << TablePrinter::num(grid.clusters[0].heterogeneity_ratio(), 2)
            << ")\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hgc;
  const auto [iterations, options] =
      exec::parse_bench_args(argc, argv, 300);
  std::cout << "=== Fig. 2: robustness to stragglers (Cluster-A) ===\n\n";
  run_panel(1, iterations, options);
  run_panel(2, iterations, options);
  return 0;
}
