// Fig. 3 — average time per iteration on Cluster-B/C/D (16/32/58 workers).
//
// Grid: exec::fig3_grid(iters) — scheme × cluster with one straggler at 4×
// ideal and 5% fluctuation, run in parallel through exec::run_sweep (same
// grid as `hgc_sweep --grid fig3`). Expected shape: heter-aware and
// group-based win on every cluster; cyclic can be *worse* than naive
// ("aggregates the straggler problem by allocating equivalent workload to
// each worker with different computing capacity" — its per-worker load is
// (s+1)× naive's, all pinned to the slowest machine).
#include <iostream>

#include "exec/figures.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hgc;
  const auto [iterations, options] =
      exec::parse_bench_args(argc, argv, 200);

  std::cout << "=== Fig. 3: avg time/iter across clusters (s = 1, delay on 1 "
               "random worker, fluctuation 5%) ===\n\n";

  const exec::SweepGrid grid = exec::fig3_grid(iterations);
  const exec::ResultTable table = exec::run_sweep(grid, options);
  table.pivot("cluster", "scheme", "time").print(std::cout);

  std::cout << "\n";
  TablePrinter speedups({"cluster", "m", "heter speedup vs cyclic"});
  for (const Cluster& cluster : grid.clusters) {
    double cyclic = 0.0, heter = 0.0;
    table.find({{"cluster", cluster.name()}, {"scheme", "cyclic"}})
        ->value("time", cyclic);
    table.find({{"cluster", cluster.name()}, {"scheme", "heter-aware"}})
        ->value("time", heter);
    speedups.add_row({cluster.name(), std::to_string(cluster.size()),
                      TablePrinter::num(cyclic / heter, 2) + "x"});
  }
  speedups.print(std::cout);

  std::cout << "\nExpected shape (paper Fig. 3): heter-aware/group-based "
               "lowest on every cluster;\ncyclic at or above naive (uniform "
               "loads of (s+1) partitions pinned to the slowest VM).\n";
  return 0;
}
