// Fig. 3 — average time per iteration on Cluster-B/C/D (16/32/58 workers).
//
// The paper's generality experiment: same protocol as Fig. 2 but across
// cluster scales and heterogeneity mixes, with background fluctuation on.
// Expected shape: heter-aware and group-based win on every cluster; cyclic
// can be *worse* than naive ("aggregates the straggler problem by allocating
// equivalent workload to each worker with different computing capacity" —
// its per-worker load is (s+1)× naive's, all pinned to the slowest machine).
#include <iostream>

#include "sim/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hgc;
  const std::size_t iterations = argc > 1 ? std::stoul(argv[1]) : 200;

  std::cout << "=== Fig. 3: avg time/iter across clusters (s = 1, delay on 1 "
               "random worker, fluctuation 5%) ===\n\n";

  TablePrinter table({"cluster", "m", "naive", "cyclic", "heter-aware",
                      "group-based", "heter speedup vs cyclic"});
  for (const Cluster& cluster :
       {cluster_b(), cluster_c(), cluster_d()}) {
    ExperimentConfig config;
    config.s = 1;
    config.k = exact_partition_count(cluster, 1);
    config.iterations = iterations;
    config.model.num_stragglers = 1;
    config.model.delay_seconds = 4.0 * ideal_iteration_time(cluster, 1);
    config.model.fluctuation_sigma = 0.05;

    const auto summaries = compare_schemes(paper_schemes(), cluster, config);
    std::vector<std::string> row = {cluster.name(),
                                    std::to_string(cluster.size())};
    for (const auto& summary : summaries)
      row.push_back(summary.ever_failed()
                        ? "fail"
                        : TablePrinter::num(summary.mean_time(), 4));
    row.push_back(TablePrinter::num(
        summaries[1].mean_time() / summaries[2].mean_time(), 2) + "x");
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\nExpected shape (paper Fig. 3): heter-aware/group-based "
               "lowest on every cluster;\ncyclic at or above naive (uniform "
               "loads of (s+1) partitions pinned to the slowest VM).\n";
  return 0;
}
