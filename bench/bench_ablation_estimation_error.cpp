// Ablation — throughput-estimation error (the motivation for Section V).
//
// The paper argues that c_i "is hard to be measured exactly because of tiny
// fluctuation in runtime", and proposes the group-based scheme to recover
// the loss: a complete fast group decodes with fewer results than the
// m−s that Alg. 1 needs, trimming the tail that misallocation adds. This
// bench sweeps the estimation-noise σ and reports mean iteration time for
// heter-aware vs group-based (plus cyclic as the noise-free anchor).
#include <iostream>

#include "sim/experiment.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hgc;
  const std::size_t iterations = argc > 1 ? std::stoul(argv[1]) : 150;
  const std::size_t seeds = 10;

  const Cluster cluster = cluster_a();
  std::cout << "=== Ablation: sensitivity to throughput-estimation error "
               "(Cluster-A, s = 1, mean over " << seeds << " seeds x "
            << iterations << " iters) ===\n\n";

  TablePrinter table({"estimation sigma", "cyclic", "heter-aware",
                      "group-based", "group gain vs heter"});
  for (double sigma : {0.0, 0.1, 0.2, 0.3, 0.5}) {
    RunningStats cyclic, heter, group;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      ExperimentConfig config;
      config.s = 1;
      config.k = exact_partition_count(cluster, 1);
      config.iterations = iterations;
      config.estimation_sigma = sigma;
      config.model.fluctuation_sigma = 0.05;
      config.seed = seed;
      const auto summaries = compare_schemes(
          {SchemeKind::kCyclic, SchemeKind::kHeterAware,
           SchemeKind::kGroupBased},
          cluster, config);
      cyclic.add(summaries[0].mean_time());
      heter.add(summaries[1].mean_time());
      group.add(summaries[2].mean_time());
    }
    const double gain = 100.0 * (heter.mean() - group.mean()) / heter.mean();
    table.add_row({TablePrinter::num(sigma, 2),
                   TablePrinter::num(cyclic.mean(), 4),
                   TablePrinter::num(heter.mean(), 4),
                   TablePrinter::num(group.mean(), 4),
                   TablePrinter::num(gain, 1) + "%"});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: all heterogeneity-aware variants degrade "
               "as estimates drift,\nbut group-based degrades less (early "
               "group decode), and cyclic — which never\nuses the estimates "
               "— stays flat yet far above both.\n";
  return 0;
}
