// Ablation — throughput-estimation error (the motivation for Section V).
//
// Grid: exec::sigma_grid(iters, 10) — σ × {cyclic, heter, group} × seeds
// 1..10 on Cluster-A, run in parallel through exec::run_sweep, then
// collapsed over the seed axis with ResultTable::aggregate_over — the
// per-seed RunningStats merge exactly, so the reported means equal one
// sequential pass over all 10×iters iterations. (Same grid as `hgc_sweep
// --grid sigma --aggregate seed`.)
//
// The paper argues that c_i "is hard to be measured exactly because of tiny
// fluctuation in runtime", and proposes the group-based scheme to recover
// the loss: a complete fast group decodes with fewer results than the m−s
// that Alg. 1 needs, trimming the tail that misallocation adds.
#include <iostream>

#include "exec/figures.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hgc;
  const auto [iterations, options] =
      exec::parse_bench_args(argc, argv, 150);
  const std::size_t seeds = 10;

  std::cout << "=== Ablation: sensitivity to throughput-estimation error "
               "(Cluster-A, s = 1, mean over " << seeds << " seeds x "
            << iterations << " iters) ===\n\n";

  const exec::SweepGrid grid = exec::sigma_grid(iterations, seeds);
  const exec::ResultTable by_sigma =
      exec::run_sweep(grid, options).aggregate_over("seed");

  TablePrinter table({"estimation sigma", "cyclic", "heter-aware",
                      "group-based", "group gain vs heter"});
  for (double sigma : grid.sigmas) {
    const std::string sigma_key = exec::ResultTable::format_double(sigma);
    const auto mean_time = [&](const char* scheme) {
      double v = 0.0;
      by_sigma.find({{"sigma", sigma_key}, {"scheme", scheme}})
          ->value("time", v);
      return v;
    };
    const double cyclic = mean_time("cyclic");
    const double heter = mean_time("heter-aware");
    const double group = mean_time("group-based");
    const double gain = 100.0 * (heter - group) / heter;
    table.add_row({TablePrinter::num(sigma, 2),
                   TablePrinter::num(cyclic, 4),
                   TablePrinter::num(heter, 4),
                   TablePrinter::num(group, 4),
                   TablePrinter::num(gain, 1) + "%"});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: all heterogeneity-aware variants degrade "
               "as estimates drift,\nbut group-based degrades less (early "
               "group decode), and cyclic — which never\nuses the estimates "
               "— stays flat yet far above both.\n";
  return 0;
}
