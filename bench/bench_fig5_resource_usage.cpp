// Fig. 5 — computing-resource usage of each coding scheme.
//
// usage = Σ_i computing_time_i / Σ_i total_time_i per iteration. The paper
// reports naive below 20–30% (fast workers idle at the barrier), cyclic in
// between (drops stragglers but keeps uniform loads), and the two
// heterogeneity-aware schemes highest.
#include <iostream>

#include "sim/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hgc;
  const std::size_t iterations = argc > 1 ? std::stoul(argv[1]) : 200;

  std::cout << "=== Fig. 5: computing resource usage (s = 1, delay on 1 "
               "random worker, fluctuation 5%) ===\n\n";

  TablePrinter table({"cluster", "naive", "cyclic", "heter-aware",
                      "group-based"});
  for (const Cluster& cluster : paper_clusters()) {
    ExperimentConfig config;
    config.s = 1;
    config.k = exact_partition_count(cluster, 1);
    config.iterations = iterations;
    config.model.num_stragglers = 1;
    config.model.delay_seconds = 2.0 * ideal_iteration_time(cluster, 1);
    config.model.fluctuation_sigma = 0.05;

    const auto summaries = compare_schemes(paper_schemes(), cluster, config);
    std::vector<std::string> row = {cluster.name()};
    for (const auto& summary : summaries)
      row.push_back(
          summary.ever_failed()
              ? "fail"
              : TablePrinter::num(100.0 * summary.mean_usage(), 1) + "%");
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\nExpected shape (paper Fig. 5): naive lowest (slowest VM "
               "gates the barrier),\ncyclic intermediate, heter-aware and "
               "group-based highest (balanced loads).\n";
  return 0;
}
