// Fig. 5 — computing-resource usage of each coding scheme.
//
// Grid: exec::fig5_grid(iters) — scheme × clusters A–D, one straggler at 2×
// ideal, 5% fluctuation, run in parallel through exec::run_sweep (same grid
// as `hgc_sweep --grid fig5`; the metric is `usage` = Σ_i computing_time_i /
// Σ_i total_time_i per iteration). The paper reports naive below 20–30%
// (fast workers idle at the barrier), cyclic in between (drops stragglers
// but keeps uniform loads), and the two heterogeneity-aware schemes highest.
#include <iostream>

#include "exec/figures.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hgc;
  const auto [iterations, options] =
      exec::parse_bench_args(argc, argv, 200);

  std::cout << "=== Fig. 5: computing resource usage (s = 1, delay on 1 "
               "random worker, fluctuation 5%) ===\n\n";

  const exec::SweepGrid grid = exec::fig5_grid(iterations);
  const exec::ResultTable table = exec::run_sweep(grid, options);

  TablePrinter printer({"cluster", "naive", "cyclic", "heter-aware",
                        "group-based"});
  for (const Cluster& cluster : grid.clusters) {
    std::vector<std::string> row = {cluster.name()};
    for (SchemeKind kind : grid.schemes) {
      const exec::ResultRow* cell = table.find(
          {{"cluster", cluster.name()}, {"scheme", to_string(kind)}});
      double usage = 0.0;
      row.push_back(!cell->note.empty()
                        ? cell->note
                        : (cell->value("usage", usage),
                           TablePrinter::num(100.0 * usage, 1) + "%"));
    }
    printer.add_row(row);
  }
  printer.print(std::cout);

  std::cout << "\nExpected shape (paper Fig. 5): naive lowest (slowest VM "
               "gates the barrier),\ncyclic intermediate, heter-aware and "
               "group-based highest (balanced loads).\n";
  return 0;
}
