// Ablation — online estimation and adaptive re-coding.
//
// Two operational scenarios beyond the paper's one-shot construction:
//  (1) cold start: the master knows nothing (uniform estimates) and must
//      learn Cluster-A's heterogeneity from per-iteration telemetry;
//  (2) drift: the 12-vCPU worker permanently slows 4× mid-run while
//      transient stragglers keep contending for the straggler budget.
#include <iostream>

#include "sim/adaptive.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hgc;
  const std::size_t iterations = argc > 1 ? std::stoul(argv[1]) : 300;
  const Cluster cluster = cluster_a();
  const double ideal = ideal_iteration_time(cluster, 1);

  std::cout << "=== Ablation: adaptive re-coding (Cluster-A, heter-aware, "
               "s = 1) ===\n\n";

  {
    std::cout << "--- Cold start: uniform initial estimates, EWMA telemetry, "
                 "re-code check every 10 iters ---\n\n";
    AdaptiveConfig config;
    config.iterations = iterations;
    config.k = 48;
    config.recode_every = 10;
    const auto adaptive = run_adaptive(cluster, config);
    AdaptiveConfig frozen = config;
    frozen.recode_every = 0;
    const auto fixed = run_adaptive(cluster, frozen);

    TablePrinter table({"window (iters)", "static (uniform belief)",
                        "adaptive", "ideal"});
    const std::size_t w = iterations / 5;
    for (std::size_t i = 0; i < 5; ++i) {
      table.add_row({std::to_string(i * w) + ".." + std::to_string((i + 1) * w),
                     TablePrinter::num(fixed.window_mean(i * w, (i + 1) * w), 4),
                     TablePrinter::num(adaptive.window_mean(i * w, (i + 1) * w), 4),
                     TablePrinter::num(ideal, 4)});
    }
    table.print(std::cout);
    std::cout << "re-codes performed: " << adaptive.recodes << "\n\n";
  }

  {
    std::cout << "--- Drift: worker 7 (12 vCPUs) slows 4x at iteration "
              << iterations / 3 << ", transient straggler every iteration ---\n\n";
    AdaptiveConfig config;
    config.iterations = iterations;
    config.k = 48;
    config.recode_every = 10;
    config.initial_estimates = cluster.throughputs();
    config.model.num_stragglers = 1;
    config.model.delay_seconds = 4.0 * ideal;
    config.drift.at_iteration = iterations / 3;
    config.drift.worker = cluster.size() - 1;
    config.drift.factor = 0.25;
    const auto adaptive = run_adaptive(cluster, config);
    AdaptiveConfig frozen = config;
    frozen.recode_every = 0;
    const auto fixed = run_adaptive(cluster, frozen);

    TablePrinter table({"window (iters)", "static", "adaptive"});
    const std::size_t w = iterations / 5;
    for (std::size_t i = 0; i < 5; ++i) {
      table.add_row({std::to_string(i * w) + ".." + std::to_string((i + 1) * w),
                     TablePrinter::num(fixed.window_mean(i * w, (i + 1) * w), 4),
                     TablePrinter::num(adaptive.window_mean(i * w, (i + 1) * w), 4)});
    }
    table.print(std::cout);
    std::cout << "re-codes performed: " << adaptive.recodes
              << "\n\nExpected shape: identical before the drift; after it "
                 "the static code must spend\nits straggler budget on the "
                 "slowed worker (transient delays surface), while\nadaptive "
                 "re-balances and keeps absorbing the transients.\n";
  }
  return 0;
}
