// Ablation — online estimation and adaptive re-coding.
//
// Grid: exec::adaptive_sweep(iters) — phase {cold-start, drift} × mode
// {static, adaptive} on Cluster-A; the four cells run in parallel through
// exec::run_sweep and emit w0..w4 window means plus the re-code count
// (same grid as `hgc_sweep --grid adaptive`).
//
// Two operational scenarios beyond the paper's one-shot construction:
//  (1) cold start: the master knows nothing (uniform estimates) and must
//      learn Cluster-A's heterogeneity from per-iteration telemetry;
//  (2) drift: the 12-vCPU worker permanently slows 4× mid-run while
//      transient stragglers keep contending for the straggler budget.
#include <iostream>

#include "exec/figures.hpp"
#include "sim/iteration.hpp"
#include "util/table.hpp"

namespace {

double window_metric(const hgc::exec::ResultTable& table, const char* phase,
                     const char* mode, const std::string& name) {
  double v = 0.0;
  table.find({{"phase", phase}, {"mode", mode}})->value(name, v);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hgc;
  const auto [iterations, options] =
      exec::parse_bench_args(argc, argv, 300);

  const Cluster cluster = cluster_a();
  const double ideal = ideal_iteration_time(cluster, 1);
  std::cout << "=== Ablation: adaptive re-coding (Cluster-A, heter-aware, "
               "s = 1) ===\n\n";

  const exec::ResultTable table =
      exec::run_figure(exec::adaptive_sweep(iterations), options);
  const std::size_t w = iterations / 5;

  {
    std::cout << "--- Cold start: uniform initial estimates, EWMA telemetry, "
                 "re-code check every 10 iters ---\n\n";
    TablePrinter printer({"window (iters)", "static (uniform belief)",
                          "adaptive", "ideal"});
    for (std::size_t i = 0; i < 5; ++i) {
      const std::string metric = "w" + std::to_string(i);
      printer.add_row(
          {std::to_string(i * w) + ".." + std::to_string((i + 1) * w),
           TablePrinter::num(
               window_metric(table, "cold-start", "static", metric), 4),
           TablePrinter::num(
               window_metric(table, "cold-start", "adaptive", metric), 4),
           TablePrinter::num(ideal, 4)});
    }
    printer.print(std::cout);
    std::cout << "re-codes performed: "
              << static_cast<std::size_t>(
                     window_metric(table, "cold-start", "adaptive",
                                   "recodes"))
              << "\n\n";
  }

  {
    std::cout << "--- Drift: worker " << cluster.size() - 1
              << " (12 vCPUs) slows 4x at iteration " << iterations / 3
              << ", transient straggler every iteration ---\n\n";
    TablePrinter printer({"window (iters)", "static", "adaptive"});
    for (std::size_t i = 0; i < 5; ++i) {
      const std::string metric = "w" + std::to_string(i);
      printer.add_row(
          {std::to_string(i * w) + ".." + std::to_string((i + 1) * w),
           TablePrinter::num(window_metric(table, "drift", "static", metric),
                             4),
           TablePrinter::num(
               window_metric(table, "drift", "adaptive", metric), 4)});
    }
    printer.print(std::cout);
    std::cout << "re-codes performed: "
              << static_cast<std::size_t>(
                     window_metric(table, "drift", "adaptive", "recodes"))
              << "\n\nExpected shape: identical before the drift; after it "
                 "the static code must spend\nits straggler budget on the "
                 "slowed worker (transient delays surface), while\nadaptive "
                 "re-balances and keeps absorbing the transients.\n";
  }
  return 0;
}
