// Ablation — message loss as a straggler source.
//
// Grid: exec::loss_sweep(iters) — per-message drop probability × scheme on
// Cluster-A (s = 2), each cell running full serialize→transmit→parse coded
// rounds over the simulated network; cells run in parallel through
// exec::run_sweep (same grid as `hgc_sweep --grid loss`).
//
// The paper's full-straggler model ("arbitrarily slow to the extent of
// complete failure") covers lost results exactly: a dropped message is a
// worker that never responds. Coded schemes ride through losses up to their
// budget with no retransmission machinery, while naive must fail whenever
// any message drops.
#include <iostream>

#include "exec/figures.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hgc;
  const auto [iterations, options] =
      exec::parse_bench_args(argc, argv, 300);

  std::cout << "=== Ablation: per-message drop probability (Cluster-A, "
               "s = 2, real wire frames) ===\n\n"
            << "cells: mean decode time (s) / % of rounds that failed\n\n";

  const exec::FigureSweep figure = exec::loss_sweep(iterations);
  const exec::ResultTable table = exec::run_figure(figure, options);

  TablePrinter printer({"drop prob", "naive", "cyclic", "heter-aware",
                        "group-based"});
  for (double drop : figure.grid.custom_axes[0].values) {
    const std::string drop_key = exec::ResultTable::format_double(drop);
    std::vector<std::string> row = {TablePrinter::num(drop, 2)};
    for (SchemeKind kind : figure.grid.schemes) {
      const exec::ResultRow* cell =
          table.find({{"drop", drop_key}, {"scheme", to_string(kind)}});
      double time = 0.0, fail_pct = 0.0;
      cell->value("time", time);
      cell->value("fail_pct", fail_pct);
      row.push_back(TablePrinter::num(time, 4) + " / " +
                    TablePrinter::num(fail_pct, 1) + "%");
    }
    printer.add_row(row);
  }
  printer.print(std::cout);

  std::cout << "\nExpected shape: naive's failure rate ≈ 1−(1−p)^m (any "
               "loss kills the round);\ncoded schemes stay near-zero until "
               "losses exceed s per round, with decode time\nflat — lost "
               "messages are just stragglers to them.\n";
  return 0;
}
