// Ablation — message loss as a straggler source.
//
// The paper's full-straggler model ("arbitrarily slow to the extent of
// complete failure") covers lost results exactly: a dropped message is a
// worker that never responds. This bench runs full serialize→transmit→parse
// coded rounds over the simulated network and sweeps the per-message drop
// probability: coded schemes ride through losses up to their budget with no
// retransmission machinery, while naive must fail whenever any message
// drops.
#include <iostream>

#include "core/scheme_factory.hpp"
#include "net/coded_round.hpp"
#include "sim/experiment.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hgc;
  const std::size_t iterations = argc > 1 ? std::stoul(argv[1]) : 300;

  const Cluster cluster = cluster_a();
  const std::size_t m = cluster.size();
  const std::size_t s = 2;
  const std::size_t k = exact_partition_count(cluster, s);

  std::cout << "=== Ablation: per-message drop probability (Cluster-A, "
               "s = 2, real wire frames) ===\n\n"
            << "cells: mean decode time (s) / % of rounds that failed\n\n";

  // Tiny synthetic partition gradients (dimension 8) — the bench measures
  // protocol behaviour, not FLOPs.
  Rng grad_rng(23);
  std::vector<Vector> grads(k);
  for (auto& g : grads) {
    g.resize(8);
    for (double& v : g) v = grad_rng.normal();
  }

  TablePrinter table({"drop prob", "naive", "cyclic", "heter-aware",
                      "group-based"});
  for (double drop : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    std::vector<std::string> row = {TablePrinter::num(drop, 2)};
    for (SchemeKind kind : paper_schemes()) {
      Rng scheme_rng(29);
      const auto scheme =
          make_scheme(kind, cluster.throughputs(), k, s, scheme_rng);
      // Naive has k = m partitions; regenerate gradients at its size.
      std::vector<Vector> local = grads;
      local.resize(scheme->num_partitions(), Vector(8, 0.1));

      SimulatedNetwork network(m + 1, {0.001, 1e8, drop}, Rng(31));
      StragglerModel model;
      model.fluctuation_sigma = 0.02;
      Rng condition_rng(37);
      RunningStats times;
      std::size_t failures = 0;
      for (std::size_t iter = 0; iter < iterations; ++iter) {
        const auto cond = model.draw(m, condition_rng);
        const auto result =
            run_coded_round(*scheme, cluster, cond, local, network, iter);
        if (result.decoded)
          times.add(result.time);
        else
          ++failures;
      }
      row.push_back(
          TablePrinter::num(times.mean(), 4) + " / " +
          TablePrinter::num(100.0 * static_cast<double>(failures) /
                                static_cast<double>(iterations), 1) + "%");
    }
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: naive's failure rate ≈ 1−(1−p)^m (any "
               "loss kills the round);\ncoded schemes stay near-zero until "
               "losses exceed s per round, with decode time\nflat — lost "
               "messages are just stragglers to them.\n";
  return 0;
}
