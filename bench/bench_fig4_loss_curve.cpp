// Fig. 4 — training-loss curves vs wall time on Cluster-C.
//
// The paper trains image classifiers under BSP with each coding scheme and
// under SSP, and plots loss against time. Substitution (DESIGN.md §5): a
// softmax classifier on synthetic 10-class Gaussian data stands in for
// PyTorch/CIFAR — the coding layer only ever sees gradient vectors, and the
// curve ordering is driven by time-per-iteration (BSP) and staleness (SSP),
// both faithfully reproduced. Expected shape: group-based ≈ heter-aware
// fastest, cyclic a little better than naive, SSP worst.
#include <iostream>

#include "runtime/sim_trainer.hpp"
#include "runtime/ssp_trainer.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hgc;
  const std::size_t iterations = argc > 1 ? std::stoul(argv[1]) : 80;

  const Cluster cluster = cluster_c();
  const std::size_t s = 1;
  const std::size_t k = exact_partition_count(cluster, s);

  Rng data_rng(11);
  const Dataset data = make_synthetic_cifar10(1024, data_rng, 32);
  SoftmaxRegression model(data.dim(), data.num_classes);

  std::cout << "=== Fig. 4: training loss vs time, " << cluster.name()
            << " (" << cluster.size() << " workers), " << model.name()
            << " on synthetic CIFAR-10 stand-in (" << data.size()
            << " samples) ===\n\n";

  BspTrainingConfig config;
  config.iterations = iterations;
  config.sgd.learning_rate = 0.4;
  config.straggler_model.num_stragglers = 1;
  config.straggler_model.delay_seconds =
      2.0 * ideal_iteration_time(cluster, s);
  config.straggler_model.fluctuation_sigma = 0.05;
  config.record_every = iterations / 8;

  std::vector<LossTrace> traces;
  for (SchemeKind kind : paper_schemes()) {
    auto result =
        train_bsp_coded(kind, cluster, model, data, k, s, config);
    traces.push_back(std::move(result.trace));
  }

  SspTrainingConfig ssp_config;
  ssp_config.iterations = iterations;
  ssp_config.learning_rate = 0.4;
  ssp_config.staleness = 3;
  ssp_config.straggler_model = config.straggler_model;
  ssp_config.record_every = std::max<std::size_t>(1, iterations / 8);
  auto ssp = train_ssp(cluster, model, data, ssp_config);
  traces.push_back(std::move(ssp.trace));

  std::cout << "Loss curve samples (time in seconds | loss):\n\n";
  TablePrinter table({"series", "points (time|loss)..."});
  for (const LossTrace& trace : traces) {
    std::string cells;
    for (const TracePoint& p : trace.points) {
      if (!cells.empty()) cells += "  ";
      cells += TablePrinter::num(p.time, 2) + "|" +
               TablePrinter::num(p.loss, 3);
    }
    table.add_row({trace.label, cells});
  }
  table.print(std::cout);

  // Convergence-speed summary: time to reach the common reachable loss.
  double target = 0.0;
  for (const LossTrace& trace : traces)
    target = std::max(target, trace.final_loss());
  target += 1e-6;
  std::cout << "\nTime to reach loss " << TablePrinter::num(target, 3)
            << " (the slowest series' final loss):\n\n";
  TablePrinter summary({"series", "time to target (s)", "final loss"});
  for (const LossTrace& trace : traces) {
    const double t = trace.time_to_loss(target);
    summary.add_row({trace.label,
                     std::isfinite(t) ? TablePrinter::num(t, 2) : "never",
                     TablePrinter::num(trace.final_loss(), 4)});
  }
  summary.print(std::cout);
  std::cout << "\nExpected shape (paper Fig. 4): group-based/heter-aware "
               "converge fastest,\ncyclic slightly better than naive, SSP "
               "worst (staleness + unbalanced contributions).\n";

  // --- Non-IID panel: the paper's "unbalanced contributions" argument ---
  // On label-sorted data every shard is class-pure. BSP coded schemes are
  // immune (the decoded gradient is exact regardless of layout); SSP's
  // fast-worker bias and the ignore-stragglers dropper now pay a visible
  // statistical price for the same gradient work. Cluster-A makes the
  // effect stark: with 8 shards over 4 classes, an always-dropped shard is
  // a whole class, and the 12-vCPU worker pushes 6× more SSP updates of its
  // own classes than the 2-vCPU machines do of theirs.
  std::cout << "\n--- Non-IID shards (label-sorted data, Cluster-A): final "
               "loss after the same gradient work ---\n\n";
  const Cluster small = cluster_a();
  Rng noniid_rng(13);
  const Dataset sorted = sort_by_label(
      make_gaussian_classification(256, 16, 4, 2.5, noniid_rng));
  SoftmaxRegression small_model(sorted.dim(), sorted.num_classes);
  BspTrainingConfig sorted_config = config;
  sorted_config.straggler_model = {};
  auto heter_sorted =
      train_bsp_coded(SchemeKind::kHeterAware, small, small_model, sorted,
                      exact_partition_count(small, s), s, sorted_config);
  SspTrainingConfig ssp_sorted_config = ssp_config;
  ssp_sorted_config.straggler_model = {};
  auto ssp_sorted = train_ssp(small, small_model, sorted, ssp_sorted_config);
  auto ignore_sorted = train_bsp_ignore_stragglers(small, small_model, sorted,
                                                   s, sorted_config);

  TablePrinter noniid({"series", "final loss", "note"});
  noniid.add_row({"heter-aware (coded BSP)",
                  TablePrinter::num(heter_sorted.trace.final_loss(), 4),
                  "exact gradient: immune to data layout"});
  noniid.add_row({"ssp",
                  TablePrinter::num(ssp_sorted.trace.final_loss(), 4),
                  "fast workers over-represent their classes"});
  noniid.add_row({"ignore-stragglers [35,36]",
                  TablePrinter::num(ignore_sorted.trace.final_loss(), 4),
                  "dropped slow shards = dropped classes"});
  noniid.print(std::cout);
  std::cout << "\nExpected shape: coded BSP lowest; the approximate methods "
               "degrade once shards\nare skewed — the accuracy cost the "
               "paper declines to pay.\n";
  return 0;
}
