// Fig. 4 — training-loss curves vs wall time on Cluster-C.
//
// Grid: exec::fig4_sweep(iters) — the five series (four coded BSP schemes +
// SSP) are cells of a `series` axis, each training a real model; the cells
// run in parallel through exec::run_sweep and emit their sampled curve as
// t<i>/loss<i> metrics (same grid as `hgc_sweep --grid fig4`, whose CSV is
// bit-identical at any --threads). Substitution (DESIGN.md §5): a softmax
// classifier on synthetic 10-class Gaussian data stands in for
// PyTorch/CIFAR — the coding layer only ever sees gradient vectors, and the
// curve ordering is driven by time-per-iteration (BSP) and staleness (SSP),
// both faithfully reproduced. Expected shape: group-based ≈ heter-aware
// fastest, cyclic a little better than naive, SSP worst.
//
// The non-IID panel is exec::fig4_noniid_sweep — label-sorted shards on
// Cluster-A, where the approximate baselines pay a statistical price coded
// BSP does not.
#include <cmath>
#include <iostream>

#include "exec/figures.hpp"
#include "runtime/loss_trace.hpp"
#include "util/table.hpp"

namespace {

/// Rebuild the training curve a fig4 cell flattened into t<i>/loss<i>.
hgc::LossTrace trace_from_row(const hgc::exec::ResultRow& row) {
  hgc::LossTrace trace;
  trace.label = *row.axis("series");
  for (std::size_t i = 0;; ++i) {
    double t = 0.0, loss = 0.0;
    if (!row.value("t" + std::to_string(i), t) ||
        !row.value("loss" + std::to_string(i), loss))
      break;
    trace.points.push_back({t, loss, i});
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hgc;
  const auto [iterations, options] =
      exec::parse_bench_args(argc, argv, 80);

  const exec::FigureSweep figure = exec::fig4_sweep(iterations);
  const Cluster& cluster = figure.grid.clusters[0];
  std::cout << "=== Fig. 4: training loss vs time, " << cluster.name()
            << " (" << cluster.size()
            << " workers), softmax regression on synthetic CIFAR-10 "
               "stand-in ===\n\n";

  const exec::ResultTable table = exec::run_figure(figure, options);
  std::vector<LossTrace> traces;
  for (const exec::ResultRow& row : table.rows())
    traces.push_back(trace_from_row(row));

  std::cout << "Loss curve samples (time in seconds | loss):\n\n";
  TablePrinter curve({"series", "points (time|loss)..."});
  for (const LossTrace& trace : traces) {
    std::string cells;
    for (const TracePoint& p : trace.points) {
      if (!cells.empty()) cells += "  ";
      cells += TablePrinter::num(p.time, 2) + "|" +
               TablePrinter::num(p.loss, 3);
    }
    curve.add_row({trace.label, cells});
  }
  curve.print(std::cout);

  // Convergence-speed summary: time to reach the common reachable loss.
  double target = 0.0;
  for (const LossTrace& trace : traces)
    target = std::max(target, trace.final_loss());
  target += 1e-6;
  std::cout << "\nTime to reach loss " << TablePrinter::num(target, 3)
            << " (the slowest series' final loss):\n\n";
  TablePrinter summary({"series", "time to target (s)", "final loss"});
  for (const LossTrace& trace : traces) {
    const double t = trace.time_to_loss(target);
    summary.add_row({trace.label,
                     std::isfinite(t) ? TablePrinter::num(t, 2) : "never",
                     TablePrinter::num(trace.final_loss(), 4)});
  }
  summary.print(std::cout);
  std::cout << "\nExpected shape (paper Fig. 4): group-based/heter-aware "
               "converge fastest,\ncyclic slightly better than naive, SSP "
               "worst (staleness + unbalanced contributions).\n";

  // --- Non-IID panel: the paper's "unbalanced contributions" argument ---
  // On label-sorted data every shard is class-pure. BSP coded schemes are
  // immune (the decoded gradient is exact regardless of layout); SSP's
  // fast-worker bias and the ignore-stragglers dropper pay a visible
  // statistical price for the same gradient work.
  std::cout << "\n--- Non-IID shards (label-sorted data, Cluster-A): final "
               "loss after the same gradient work ---\n\n";
  const exec::ResultTable noniid =
      exec::run_figure(exec::fig4_noniid_sweep(iterations), options);
  const char* notes[] = {"exact gradient: immune to data layout",
                         "fast workers over-represent their classes",
                         "dropped slow shards = dropped classes"};
  TablePrinter panel({"series", "final loss", "note"});
  for (std::size_t i = 0; i < noniid.size(); ++i) {
    const exec::ResultRow& row = noniid.row(i);
    double final_loss = 0.0;
    row.value("final_loss", final_loss);
    panel.add_row({*row.axis("series"), TablePrinter::num(final_loss, 4),
                   notes[i < 3 ? i : 2]});
  }
  panel.print(std::cout);
  std::cout << "\nExpected shape: coded BSP lowest; the approximate methods "
               "degrade once shards\nare skewed — the accuracy cost the "
               "paper declines to pay.\n";
  return 0;
}
