// Microbenchmarks — construction and decoding costs of the coding layer
// (google-benchmark). Backs the paper's Section III-B complexity remarks:
// decoding-vector solves are "usually ignorable" next to gradient compute,
// and quantifies the two caches: the decoding-coefficient LRU on a
// repeated-straggler ("regular stragglers") workload and the shared scheme
// cache against from-scratch construction. The *Cached benches export a
// hit_rate counter so the win is measured, not assumed.
//
// The BM_Kernel* group times the linalg kernel/workspace layer at the
// shapes the decode hot path actually solves (fig3-small m=8 and
// Cluster-D m=58), reporting mflops and — via the instrumented global
// allocator below — allocs_per_iter, so the workspace layer's
// zero-steady-state-allocation claim is measured, not asserted.
//
// Flags: our own (`--json out.json` writes the google-benchmark JSON
// report, for CI's perf-smoke floor check) parse through util/args with its
// strict `--key value` rules; anything starting with --benchmark passes
// through to google-benchmark (e.g. --benchmark_filter=Kernel).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "core/decoder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "core/decoding_cache.hpp"
#include "core/group_based.hpp"
#include "core/heter_aware.hpp"
#include "core/robustness.hpp"
#include "core/scheme_cache.hpp"
#include "core/scheme_factory.hpp"
#include "linalg/kernels.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "linalg/sparse.hpp"
#include "linalg/workspace.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"

#include "util/alloc_instrument.hpp"  // instruments this whole binary

namespace {

using namespace hgc;

/// Scope helper: counters["allocs_per_iter"] from the delta across the
/// timing loop. Construct before the loop, call report() after.
class AllocCounter {
 public:
  AllocCounter() : start_(alloc_instrument::allocation_count()) {}
  void report(benchmark::State& state) const {
    const auto total = alloc_instrument::allocation_count() - start_;
    state.counters["allocs_per_iter"] =
        state.iterations() > 0
            ? static_cast<double>(total) /
                  static_cast<double>(state.iterations())
            : 0.0;
  }

 private:
  std::size_t start_;
};

/// MFLOP/s counter: `flops` floating-point operations per iteration.
void report_mflops(benchmark::State& state, double flops) {
  state.counters["mflops"] = benchmark::Counter(
      flops * 1e-6, benchmark::Counter::kIsIterationInvariantRate);
}

Throughputs spread_throughputs(std::size_t m) {
  Throughputs c(m);
  for (std::size_t i = 0; i < m; ++i)
    c[i] = 2.0 + static_cast<double>(i % 8) * 2.0;  // 2..16, Table II-like
  return c;
}

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal();
  return m;
}

// ------------------------------------------------------ kernel benches --
// Shapes: {8, 16} is the fig3-small regime (m = 8 workers, k = 2m), {58,
// 116} is Cluster-D (m = 58); gradient-length axpy/dot use DNN-sized flat
// vectors.

void BM_KernelAxpy(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  Vector x(dim, 0.5), y(dim, 0.25);
  for (auto _ : state) {
    kernels::axpy(1e-9, x, y);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  report_mflops(state, 2.0 * static_cast<double>(dim));
}
BENCHMARK(BM_KernelAxpy)->Arg(116)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_KernelDot(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  Rng rng(21);
  Vector x(dim), y(dim);
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  for (auto _ : state) {
    double d = kernels::dot(x, y);
    benchmark::DoNotOptimize(d);
  }
  report_mflops(state, 2.0 * static_cast<double>(dim));
}
BENCHMARK(BM_KernelDot)->Arg(116)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_KernelScal(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  Vector x(dim, 0.5);
  // alpha ~ 1 so repeated scaling neither under- nor overflows across the
  // benchmark's many iterations.
  for (auto _ : state) {
    kernels::scal(1.0 - 1e-12, x);
    benchmark::DoNotOptimize(x.data());
    benchmark::ClobberMemory();
  }
  report_mflops(state, static_cast<double>(dim));
}
BENCHMARK(BM_KernelScal)->Arg(116)->Arg(1 << 10)->Arg(1 << 14);

void BM_KernelGemv(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  Rng rng(22);
  const Matrix a = random_matrix(m, k, rng);
  Vector x(k, 0.5), y(m);
  for (auto _ : state) {
    kernels::gemv(a.data().data(), k, m, k, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  report_mflops(state, 2.0 * static_cast<double>(m * k));
}
BENCHMARK(BM_KernelGemv)->Args({8, 16})->Args({58, 116})->Args({256, 1024});

void BM_KernelGemvT(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  Rng rng(22);
  const Matrix a = random_matrix(m, k, rng);
  Vector x(m, 0.5), y(k);
  for (auto _ : state) {
    kernels::gemv_t(a.data().data(), k, m, k, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  report_mflops(state, 2.0 * static_cast<double>(m * k));
}
BENCHMARK(BM_KernelGemvT)->Args({8, 16})->Args({58, 116})->Args({256, 1024});

void BM_KernelRank1Update(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto cols = static_cast<std::size_t>(state.range(1));
  Rng rng(23);
  Matrix a = random_matrix(rows, cols, rng);
  Vector x(rows, 0.5), y(cols, 0.25);
  for (auto _ : state) {
    kernels::rank1_update(a.data().data(), cols, rows, cols, 1e-9, x, y);
    benchmark::DoNotOptimize(a.data().data());
    benchmark::ClobberMemory();
  }
  report_mflops(state, 2.0 * static_cast<double>(rows * cols));
}
BENCHMARK(BM_KernelRank1Update)->Args({8, 116})->Args({10, 784});

void BM_KernelLuSolveAllocating(benchmark::State& state) {
  // The one-shot path Alg. 1 used per partition before the workspace layer:
  // copy + factor + solve, allocating factors and the solution every call.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(24);
  Matrix a = random_matrix(n, n, rng);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  const Vector ones(n, 1.0);
  AllocCounter allocs;
  for (auto _ : state) {
    Vector x = lu_solve(a, ones);
    benchmark::DoNotOptimize(x.data());
  }
  allocs.report(state);
  report_mflops(state, 2.0 / 3.0 * static_cast<double>(n * n * n) +
                           2.0 * static_cast<double>(n * n));
}
BENCHMARK(BM_KernelLuSolveAllocating)->Arg(2)->Arg(4)->Arg(8);

void BM_KernelLuSolveWorkspace(benchmark::State& state) {
  // Same solve through a reused LuWorkspace: zero allocations steady-state.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(24);
  Matrix a = random_matrix(n, n, rng);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  const Vector ones(n, 1.0);
  LuWorkspace ws;
  Vector x;
  ws.factor(a);
  ws.solve_into(ones, x);  // warm-up sizes every buffer
  AllocCounter allocs;
  for (auto _ : state) {
    ws.factor(a);
    ws.solve_into(ones, x);
    benchmark::DoNotOptimize(x.data());
  }
  allocs.report(state);
  report_mflops(state, 2.0 / 3.0 * static_cast<double>(n * n * n) +
                           2.0 * static_cast<double>(n * n));
}
// 2/4/8 are the decode shapes Alg. 1 actually hits; 64/128 are there to
// watch the blocked right-looking factorization (panel width 32), whose
// cache win only shows once the trailing matrix stops fitting in L1.
BENCHMARK(BM_KernelLuSolveWorkspace)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(64)
    ->Arg(128);

void BM_KernelLeastSquaresAllocating(benchmark::State& state) {
  // The pre-workspace generic-decode inner solve at decode shapes: B_Rᵀ is
  // k×|R| with one straggler missing; select_rows + transposed + QR, all
  // freshly allocated per call.
  const auto m = static_cast<std::size_t>(state.range(0));
  const Throughputs c = spread_throughputs(m);
  Rng rng(25);
  HeterAwareScheme scheme(c, 2 * m, 1, rng);
  std::vector<std::size_t> rows;
  for (std::size_t w = 1; w < m; ++w) rows.push_back(w);
  const Matrix& b = scheme.coding_matrix();
  const Vector ones(b.cols(), 1.0);
  AllocCounter allocs;
  for (auto _ : state) {
    const Matrix brt = b.select_rows(rows).transposed();
    auto ls = least_squares(brt, ones);
    benchmark::DoNotOptimize(ls.x.data());
  }
  allocs.report(state);
}
BENCHMARK(BM_KernelLeastSquaresAllocating)->Arg(8)->Arg(58);

void BM_KernelLeastSquaresWorkspace(benchmark::State& state) {
  // Same solve against the selected rows through a reused QrWorkspace.
  const auto m = static_cast<std::size_t>(state.range(0));
  const Throughputs c = spread_throughputs(m);
  Rng rng(25);
  HeterAwareScheme scheme(c, 2 * m, 1, rng);
  std::vector<std::size_t> rows;
  for (std::size_t w = 1; w < m; ++w) rows.push_back(w);
  const Matrix& b = scheme.coding_matrix();
  const Vector ones(b.cols(), 1.0);
  QrWorkspace ws;
  Vector x;
  ws.factor_transposed(RowSelectView(b, rows));
  ws.solve_into(ones, x);  // warm-up
  AllocCounter allocs;
  for (auto _ : state) {
    ws.factor_transposed(RowSelectView(b, rows));
    double residual = ws.solve_into(ones, x);
    benchmark::DoNotOptimize(residual);
    benchmark::DoNotOptimize(x.data());
  }
  allocs.report(state);
}
BENCHMARK(BM_KernelLeastSquaresWorkspace)->Arg(8)->Arg(58);

void BM_Condition1Workspace(benchmark::State& state) {
  // The robustness sweep: C(m, s) least-squares solves per call, one
  // workspace across the whole enumeration. allocs_per_iter ≈ 0 after the
  // warm-up call is the refactor's acceptance criterion.
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const Throughputs c = spread_throughputs(m);
  Rng rng(26);
  HeterAwareScheme scheme(c, 2 * m, s, rng);
  SolveWorkspace ws;
  bool ok = satisfies_condition1(scheme.coding_matrix(), s, 1e-8, &ws);
  AllocCounter allocs;
  for (auto _ : state) {
    ok = satisfies_condition1(scheme.coding_matrix(), s, 1e-8, &ws);
    benchmark::DoNotOptimize(ok);
  }
  allocs.report(state);
}
BENCHMARK(BM_Condition1Workspace)->Args({8, 2})->Args({12, 2})->Args({16, 2});

void BM_HeterAwareConstruction(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const Throughputs c = spread_throughputs(m);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    HeterAwareScheme scheme(c, 2 * m, s, rng);
    benchmark::DoNotOptimize(scheme.coding_matrix());
  }
}
BENCHMARK(BM_HeterAwareConstruction)
    ->Args({8, 1})
    ->Args({16, 1})
    ->Args({32, 1})
    ->Args({58, 1})
    ->Args({58, 3});

void BM_GroupBasedConstruction(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Throughputs c = spread_throughputs(m);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    GroupBasedScheme scheme(c, 2 * m, 1, rng);
    benchmark::DoNotOptimize(scheme.coding_matrix());
  }
}
BENCHMARK(BM_GroupBasedConstruction)->Arg(8)->Arg(16)->Arg(32)->Arg(58);

void BM_DecodeVectorSolve(benchmark::State& state) {
  // The real-time decoding path for an irregular straggler pattern: a
  // null-space solve on the straggler columns of C (O(s^3), Section III-B).
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const Throughputs c = spread_throughputs(m);
  Rng rng(9);
  HeterAwareScheme scheme(c, 2 * m, s, rng);
  std::vector<bool> received(m, true);
  for (std::size_t i = 0; i < s; ++i) received[2 * i] = false;
  auto warmup = scheme.decoding_coefficients(received);
  benchmark::DoNotOptimize(warmup);
  AllocCounter allocs;
  for (auto _ : state) {
    auto coefficients = scheme.decoding_coefficients(received);
    benchmark::DoNotOptimize(coefficients);
  }
  allocs.report(state);  // steady state: just the returned vector
}
BENCHMARK(BM_DecodeVectorSolve)
    ->Args({8, 1})
    ->Args({32, 1})
    ->Args({58, 1})
    ->Args({58, 3})
    ->Args({58, 5});

void BM_GenericLeastSquaresDecode(benchmark::State& state) {
  // The generic fallback the group scheme uses for mixed arrival sets.
  const auto m = static_cast<std::size_t>(state.range(0));
  const Throughputs c = spread_throughputs(m);
  Rng rng(10);
  GroupBasedScheme scheme(c, 2 * m, 1, rng);
  std::vector<bool> received(m, true);
  received[0] = false;
  auto warmup = scheme.decoding_coefficients(received);
  benchmark::DoNotOptimize(warmup);
  AllocCounter allocs;
  for (auto _ : state) {
    auto coefficients = scheme.decoding_coefficients(received);
    benchmark::DoNotOptimize(coefficients);
  }
  allocs.report(state);
}
BENCHMARK(BM_GenericLeastSquaresDecode)->Arg(8)->Arg(32)->Arg(58);

/// A small rotating working set of straggler patterns — the paper's
/// "regular stragglers": the same few workers straggle in steady state.
std::vector<std::vector<bool>> regular_straggler_patterns(std::size_t m,
                                                          std::size_t s) {
  std::vector<std::vector<bool>> patterns;
  for (std::size_t shift = 0; shift < 4; ++shift) {
    std::vector<bool> received(m, true);
    for (std::size_t i = 0; i < s; ++i) received[(2 * i + shift) % m] = false;
    patterns.push_back(std::move(received));
  }
  return patterns;
}

void BM_DecodeRegularStragglersUncached(benchmark::State& state) {
  // Baseline for the cache comparison: every recurrence of a regular
  // pattern pays the full solve.
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const Throughputs c = spread_throughputs(m);
  Rng rng(9);
  HeterAwareScheme scheme(c, 2 * m, s, rng);
  const auto patterns = regular_straggler_patterns(m, s);
  std::size_t i = 0;
  for (auto _ : state) {
    auto coefficients = scheme.decoding_coefficients(patterns[i]);
    i = (i + 1) % patterns.size();
    benchmark::DoNotOptimize(coefficients);
  }
}
BENCHMARK(BM_DecodeRegularStragglersUncached)
    ->Args({32, 1})
    ->Args({58, 1})
    ->Args({58, 3});

void BM_DecodeRegularStragglersCached(benchmark::State& state) {
  // Same workload through the DecodingCache: after one miss per pattern,
  // everything is an LRU hit — the Section III-B storage optimization.
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const Throughputs c = spread_throughputs(m);
  Rng rng(9);
  HeterAwareScheme scheme(c, 2 * m, s, rng);
  DecodingCache cache(scheme, 64);
  const auto patterns = regular_straggler_patterns(m, s);
  std::size_t i = 0;
  for (auto _ : state) {
    auto coefficients = cache.decode(patterns[i]);
    i = (i + 1) % patterns.size();
    benchmark::DoNotOptimize(coefficients);
  }
  state.counters["hit_rate"] =
      static_cast<double>(cache.hits()) /
      static_cast<double>(cache.hits() + cache.misses());
}
BENCHMARK(BM_DecodeRegularStragglersCached)
    ->Args({32, 1})
    ->Args({58, 1})
    ->Args({58, 3});

void BM_CompletionTimeRegularStragglers(benchmark::State& state) {
  // robustness::completion_time under a recurring straggler working set
  // (range(2) = 1 shares a DecodingCache across calls, 0 re-solves). This
  // is the steady-state master: the same few workers straggle, so after
  // one warm-up lap every arrival-prefix probe is an LRU hit.
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const bool cached = state.range(2) != 0;
  const Throughputs c = spread_throughputs(m);
  Rng rng(15);
  HeterAwareScheme scheme(c, 2 * m, s, rng);
  std::vector<StragglerSet> working_set;
  for (std::size_t shift = 0; shift < 4; ++shift) {
    StragglerSet stragglers;
    for (std::size_t i = 0; i < s; ++i)
      stragglers.push_back((2 * i + shift) % m);
    std::sort(stragglers.begin(), stragglers.end());
    working_set.push_back(std::move(stragglers));
  }
  DecodingCache cache(scheme, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    auto t = completion_time(scheme, c, working_set[i],
                             cached ? &cache : nullptr);
    i = (i + 1) % working_set.size();
    benchmark::DoNotOptimize(t);
  }
  if (cached)
    state.counters["hit_rate"] =
        static_cast<double>(cache.hits()) /
        static_cast<double>(cache.hits() + cache.misses());
}
BENCHMARK(BM_CompletionTimeRegularStragglers)
    ->Args({32, 1, 0})
    ->Args({32, 1, 1})
    ->Args({58, 3, 0})
    ->Args({58, 3, 1});

void BM_WorstCaseTimeCached(benchmark::State& state) {
  // The C(m, s) enumeration with a shared decoding cache (range(2) = 1)
  // versus brute-force solving every prefix (range(2) = 0). Fractional
  // repetition is the regime with real prefix reuse: its
  // min_results_required is far below m − s, so every pattern probes a
  // ladder of early prefixes that overlap heavily between patterns — the
  // hit_rate counter is the fraction of probes answered from the LRU.
  // (Wall time can still favour uncached here because fractional's solve is
  // a cheap block scan; the cache's wall-time win needs an expensive solve,
  // measured by BM_CompletionTimeRegularStragglers above.)
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const bool cached = state.range(2) != 0;
  const Throughputs c = spread_throughputs(m);
  Rng rng(14);
  const auto scheme =
      make_scheme(SchemeKind::kFractionalRepetition, c, 2 * m, s, rng);
  double hit_rate = 0.0;
  for (auto _ : state) {
    if (cached) {
      DecodingCache cache(*scheme, 4096);
      auto worst = worst_case_time(*scheme, c, &cache);
      hit_rate = static_cast<double>(cache.hits()) /
                 static_cast<double>(cache.hits() + cache.misses());
      benchmark::DoNotOptimize(worst);
    } else {
      auto worst = worst_case_time(*scheme, c);
      benchmark::DoNotOptimize(worst);
    }
  }
  if (cached) state.counters["hit_rate"] = hit_rate;
}
BENCHMARK(BM_WorstCaseTimeCached)
    ->Args({12, 2, 0})
    ->Args({12, 2, 1})
    ->Args({18, 2, 0})
    ->Args({18, 2, 1});

void BM_SchemeCacheGetOrCreate(benchmark::State& state) {
  // Steady-state sweep-cell behaviour: after the first miss every cell
  // asking for the same fingerprint gets the interned scheme back.
  const auto m = static_cast<std::size_t>(state.range(0));
  const Throughputs c = spread_throughputs(m);
  SchemeCache cache;
  for (auto _ : state) {
    auto scheme =
        cache.get_or_create(SchemeKind::kHeterAware, c, 2 * m, 1, 7);
    benchmark::DoNotOptimize(scheme);
  }
  state.counters["hit_rate"] =
      static_cast<double>(cache.hits()) /
      static_cast<double>(cache.hits() + cache.misses());
}
BENCHMARK(BM_SchemeCacheGetOrCreate)->Arg(16)->Arg(58);

// -------------------------------------------------- sparse coding layer --
// The CSR representation is what holds B at 10k-worker scale; these benches
// pin its two hot shapes. The sparse kernels are scalar by design (rows are
// ≤(s+1)-sparse, no lane tree), so floors in kernels_baseline.json use
// unsuffixed keys that bind every backend leg.

void BM_SparseGemvT(benchmark::State& state) {
  // a·B for a full coefficient vector — the verification product at scale.
  // mflops counts 2·nnz true operations, not the 2·m·k a dense gemv_t pays.
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const Throughputs c = spread_throughputs(m);
  Rng rng(27);
  HeterAwareScheme scheme(c, 2 * m, s, rng);
  const SparseRowMatrix& b = scheme.sparse_matrix();
  Vector x(m, 0.5), y(b.cols());
  AllocCounter allocs;
  for (auto _ : state) {
    sparse::gemv_t(b, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  allocs.report(state);  // kernels are allocation-free: expect 0
  report_mflops(state, 2.0 * static_cast<double>(b.nnz()));
}
BENCHMARK(BM_SparseGemvT)
    ->Args({58, 3})
    ->Args({1000, 2})
    ->Args({10000, 2});

void BM_SparseDecode(benchmark::State& state) {
  // Real-time decode at scale: the O(m) received scan plus the O(s³)
  // null-space solve, with B never materialized densely. At m = 10,000 the
  // dense representation alone would be 1.6 GB; this path touches O(m·s).
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const Throughputs c = spread_throughputs(m);
  Rng rng(28);
  HeterAwareScheme scheme(c, 2 * m, s, rng);
  std::vector<bool> received(m, true);
  for (std::size_t i = 0; i < s; ++i) received[2 * i] = false;
  auto warmup = scheme.decoding_coefficients(received);
  benchmark::DoNotOptimize(warmup);
  AllocCounter allocs;
  for (auto _ : state) {
    auto coefficients = scheme.decoding_coefficients(received);
    benchmark::DoNotOptimize(coefficients);
  }
  allocs.report(state);  // steady state: just the returned vector
}
BENCHMARK(BM_SparseDecode)->Args({1000, 2})->Args({10000, 2});

void BM_EncodeGradient(benchmark::State& state) {
  // Worker-side linear combination for a DNN-sized flat gradient.
  const auto dim = static_cast<std::size_t>(state.range(0));
  const Throughputs c = spread_throughputs(8);
  Rng rng(11);
  HeterAwareScheme scheme(c, 16, 1, rng);
  std::vector<Vector> grads(16, Vector(dim, 0.5));
  for (auto _ : state) {
    Vector coded = encode_gradient(scheme, 7, grads);
    benchmark::DoNotOptimize(coded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim) * 8);
}
BENCHMARK(BM_EncodeGradient)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_StreamingDecoderIteration(benchmark::State& state) {
  // Full master-side pipeline: m arrivals, decodability checks, combine.
  const auto m = static_cast<std::size_t>(state.range(0));
  const Throughputs c = spread_throughputs(m);
  Rng rng(12);
  HeterAwareScheme scheme(c, 2 * m, 1, rng);
  std::vector<Vector> grads(2 * m, Vector(1024, 0.25));
  std::vector<Vector> coded(m);
  for (WorkerId w = 0; w < m; ++w)
    coded[w] = encode_gradient(scheme, w, grads);
  for (auto _ : state) {
    StreamingDecoder decoder(scheme);
    for (WorkerId w = 0; w < m && !decoder.ready(); ++w)
      decoder.add_result(w, coded[w]);
    Vector aggregate = decoder.aggregate();
    benchmark::DoNotOptimize(aggregate);
  }
}
BENCHMARK(BM_StreamingDecoderIteration)->Arg(8)->Arg(32)->Arg(58);

void BM_BuildDecodingMatrix(benchmark::State& state) {
  // Offline Eq. 2 table for all C(m, s) regular patterns.
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const Throughputs c = spread_throughputs(m);
  Rng rng(13);
  HeterAwareScheme scheme(c, 2 * m, s, rng);
  for (auto _ : state) {
    auto rows = build_decoding_matrix(scheme);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_BuildDecodingMatrix)->Args({8, 1})->Args({8, 2})->Args({16, 2});

// ------------------------------------------------ observability benches --
// The obs layer's disabled-cost contract: an instrumented site pays one
// relaxed atomic load + branch when observability is off. The *Disabled
// benches pin that with max_real_time_ns ceilings in kernels_baseline.json
// (CI perf-smoke); the *Enabled variants quantify the turned-on cost so a
// hot-path regression is visible in the console table. Every bench leaves
// both systems disabled on exit — later benches time instrumented code
// (decode solves, caches) and must not pay the enabled path.

void BM_ObsOverheadCounterDisabled(benchmark::State& state) {
  obs::set_metrics_enabled(false);
  // The exact site pattern used across src/: guard first, bind the registry
  // handle lazily inside the branch (never reached while disabled).
  AllocCounter allocs;
  for (auto _ : state) {
    if (obs::metrics_enabled()) {
      static const obs::Counter c =
          obs::Registry::global().counter("bench.obs_counter");
      c.add();
    }
    benchmark::ClobberMemory();
  }
  allocs.report(state);
}
BENCHMARK(BM_ObsOverheadCounterDisabled);

void BM_ObsOverheadCounterEnabled(benchmark::State& state) {
  obs::set_metrics_enabled(true);
  const obs::Counter c = obs::Registry::global().counter("bench.obs_counter");
  c.add();  // warm-up: registers the slot and acquires this thread's shard
  AllocCounter allocs;
  for (auto _ : state) {
    c.add();
    benchmark::ClobberMemory();
  }
  allocs.report(state);
  obs::set_metrics_enabled(false);
}
BENCHMARK(BM_ObsOverheadCounterEnabled);

void BM_ObsOverheadHistogramDisabled(benchmark::State& state) {
  obs::set_metrics_enabled(false);
  const obs::Histogram h = obs::Registry::global().histogram(
      "bench.obs_histogram", {1e-6, 1e-4, 1e-2, 1.0});
  double x = 0.5;
  AllocCounter allocs;
  for (auto _ : state) {
    h.observe(x);  // internal enabled-guard returns immediately
    benchmark::DoNotOptimize(x);
  }
  allocs.report(state);
}
BENCHMARK(BM_ObsOverheadHistogramDisabled);

void BM_ObsOverheadHistogramEnabled(benchmark::State& state) {
  obs::set_metrics_enabled(true);
  const obs::Histogram h = obs::Registry::global().histogram(
      "bench.obs_histogram", {1e-6, 1e-4, 1e-2, 1.0});
  h.observe(0.5);  // warm-up
  double x = 0.5;
  AllocCounter allocs;
  for (auto _ : state) {
    h.observe(x);
    benchmark::DoNotOptimize(x);
  }
  allocs.report(state);
  obs::set_metrics_enabled(false);
}
BENCHMARK(BM_ObsOverheadHistogramEnabled);

void BM_ObsOverheadTraceScopeDisabled(benchmark::State& state) {
  obs::set_trace_enabled(false);
  AllocCounter allocs;
  for (auto _ : state) {
    HGC_TRACE_SCOPE("bench", "bench", 0);
    benchmark::ClobberMemory();
  }
  allocs.report(state);
}
BENCHMARK(BM_ObsOverheadTraceScopeDisabled);

void BM_ObsOverheadTraceScopeEnabled(benchmark::State& state) {
  // Fixed iteration count: the per-thread buffer caps at 2^20 events, and a
  // saturated buffer would silently time the (cheaper) drop path instead of
  // the record path.
  obs::Tracer::global().reset();
  obs::set_trace_enabled(true);
  for (auto _ : state) {
    HGC_TRACE_SCOPE("bench", "bench", 0);
    benchmark::ClobberMemory();
  }
  obs::set_trace_enabled(false);
  obs::Tracer::global().reset();
}
BENCHMARK(BM_ObsOverheadTraceScopeEnabled)->Iterations(1 << 18);

// Snapshot-path costs: aggregation and the fleet-merge fold. Neither is on
// a solve hot path (snapshots happen at recorder/exit frequency), so the
// baseline ceilings are gross-regression guards only.

void BM_ObsSnapshotRegistry(benchmark::State& state) {
  obs::set_metrics_enabled(true);
  obs::Registry::global().counter("bench.snap_counter").add(7);
  obs::Registry::global().gauge("bench.snap_gauge").set(2.5);
  obs::Registry::global()
      .histogram("bench.snap_hist", {1e-6, 1e-4, 1e-2, 1.0})
      .observe(0.5);
  obs::Registry::global().stat("bench.snap_stat").observe(1.0);
  for (auto _ : state) {
    obs::Snapshot snap = obs::Registry::global().snapshot();
    benchmark::DoNotOptimize(snap);
  }
  obs::set_metrics_enabled(false);
}
BENCHMARK(BM_ObsSnapshotRegistry);

void BM_ObsSnapshotMerge(benchmark::State& state) {
  obs::set_metrics_enabled(true);
  obs::Registry::global().counter("bench.snap_counter").add(7);
  obs::Registry::global()
      .histogram("bench.snap_hist", {1e-6, 1e-4, 1e-2, 1.0})
      .observe(0.5);
  obs::Registry::global().stat("bench.snap_stat").observe(1.0);
  const obs::Snapshot shard = obs::Registry::global().snapshot();
  obs::set_metrics_enabled(false);
  for (auto _ : state) {
    obs::Snapshot merged = shard;
    merged.merge(shard);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_ObsSnapshotMerge);

}  // namespace

// Custom main: split our flags from google-benchmark's. `--json out.json`
// writes the JSON report (counters included) next to the console output —
// that file is CI's BENCH_kernels.json perf artifact.
int main(int argc, char** argv) {
  std::vector<std::string> own;
  std::vector<char*> gbench_args;
  gbench_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark", 0) == 0)
      gbench_args.push_back(argv[i]);
    else
      own.push_back(argv[i]);
  }

  std::string json_path;
  try {
    hgc::Args args{std::span<const std::string>(own)};
    json_path = args.get("json", "");
    args.check_unused();
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n"
              << "usage: bench_micro_coding [--json out.json] "
                 "[--benchmark_* flags]\n";
    return 2;
  }

  // --json is sugar for google-benchmark's own file reporter flags, so the
  // console table and the JSON artifact come out of one run.
  std::string out_flag = "--benchmark_out=" + json_path;
  std::string format_flag = "--benchmark_out_format=json";
  if (!json_path.empty()) {
    gbench_args.push_back(out_flag.data());
    gbench_args.push_back(format_flag.data());
  }

  int gbench_argc = static_cast<int>(gbench_args.size());
  benchmark::Initialize(&gbench_argc, gbench_args.data());
  if (benchmark::ReportUnrecognizedArguments(gbench_argc,
                                             gbench_args.data()))
    return 1;
  // Stamp the report (console + JSON context) with the kernel backend that
  // served the run: check_bench_floor.py matches `@backend`-suffixed floor
  // keys against this, so scalar and SIMD legs keep separate baselines.
  benchmark::AddCustomContext(
      "hgc_kernel_backend",
      hgc::kernels::backend_name(hgc::kernels::active_backend()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
