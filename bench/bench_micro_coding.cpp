// Microbenchmarks — construction and decoding costs of the coding layer
// (google-benchmark). Backs the paper's Section III-B complexity remarks:
// decoding-vector solves are "usually ignorable" next to gradient compute,
// and quantifies the two caches: the decoding-coefficient LRU on a
// repeated-straggler ("regular stragglers") workload and the shared scheme
// cache against from-scratch construction. The *Cached benches export a
// hit_rate counter so the win is measured, not assumed.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "core/decoder.hpp"
#include "core/decoding_cache.hpp"
#include "core/group_based.hpp"
#include "core/heter_aware.hpp"
#include "core/robustness.hpp"
#include "core/scheme_cache.hpp"
#include "core/scheme_factory.hpp"
#include "util/rng.hpp"

namespace {

using namespace hgc;

Throughputs spread_throughputs(std::size_t m) {
  Throughputs c(m);
  for (std::size_t i = 0; i < m; ++i)
    c[i] = 2.0 + static_cast<double>(i % 8) * 2.0;  // 2..16, Table II-like
  return c;
}

void BM_HeterAwareConstruction(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const Throughputs c = spread_throughputs(m);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    HeterAwareScheme scheme(c, 2 * m, s, rng);
    benchmark::DoNotOptimize(scheme.coding_matrix());
  }
}
BENCHMARK(BM_HeterAwareConstruction)
    ->Args({8, 1})
    ->Args({16, 1})
    ->Args({32, 1})
    ->Args({58, 1})
    ->Args({58, 3});

void BM_GroupBasedConstruction(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Throughputs c = spread_throughputs(m);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    GroupBasedScheme scheme(c, 2 * m, 1, rng);
    benchmark::DoNotOptimize(scheme.coding_matrix());
  }
}
BENCHMARK(BM_GroupBasedConstruction)->Arg(8)->Arg(16)->Arg(32)->Arg(58);

void BM_DecodeVectorSolve(benchmark::State& state) {
  // The real-time decoding path for an irregular straggler pattern: a
  // null-space solve on the straggler columns of C (O(s^3), Section III-B).
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const Throughputs c = spread_throughputs(m);
  Rng rng(9);
  HeterAwareScheme scheme(c, 2 * m, s, rng);
  std::vector<bool> received(m, true);
  for (std::size_t i = 0; i < s; ++i) received[2 * i] = false;
  for (auto _ : state) {
    auto coefficients = scheme.decoding_coefficients(received);
    benchmark::DoNotOptimize(coefficients);
  }
}
BENCHMARK(BM_DecodeVectorSolve)
    ->Args({8, 1})
    ->Args({32, 1})
    ->Args({58, 1})
    ->Args({58, 3})
    ->Args({58, 5});

void BM_GenericLeastSquaresDecode(benchmark::State& state) {
  // The generic fallback the group scheme uses for mixed arrival sets.
  const auto m = static_cast<std::size_t>(state.range(0));
  const Throughputs c = spread_throughputs(m);
  Rng rng(10);
  GroupBasedScheme scheme(c, 2 * m, 1, rng);
  std::vector<bool> received(m, true);
  received[0] = false;
  for (auto _ : state) {
    auto coefficients = scheme.decoding_coefficients(received);
    benchmark::DoNotOptimize(coefficients);
  }
}
BENCHMARK(BM_GenericLeastSquaresDecode)->Arg(8)->Arg(32)->Arg(58);

/// A small rotating working set of straggler patterns — the paper's
/// "regular stragglers": the same few workers straggle in steady state.
std::vector<std::vector<bool>> regular_straggler_patterns(std::size_t m,
                                                          std::size_t s) {
  std::vector<std::vector<bool>> patterns;
  for (std::size_t shift = 0; shift < 4; ++shift) {
    std::vector<bool> received(m, true);
    for (std::size_t i = 0; i < s; ++i) received[(2 * i + shift) % m] = false;
    patterns.push_back(std::move(received));
  }
  return patterns;
}

void BM_DecodeRegularStragglersUncached(benchmark::State& state) {
  // Baseline for the cache comparison: every recurrence of a regular
  // pattern pays the full solve.
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const Throughputs c = spread_throughputs(m);
  Rng rng(9);
  HeterAwareScheme scheme(c, 2 * m, s, rng);
  const auto patterns = regular_straggler_patterns(m, s);
  std::size_t i = 0;
  for (auto _ : state) {
    auto coefficients = scheme.decoding_coefficients(patterns[i]);
    i = (i + 1) % patterns.size();
    benchmark::DoNotOptimize(coefficients);
  }
}
BENCHMARK(BM_DecodeRegularStragglersUncached)
    ->Args({32, 1})
    ->Args({58, 1})
    ->Args({58, 3});

void BM_DecodeRegularStragglersCached(benchmark::State& state) {
  // Same workload through the DecodingCache: after one miss per pattern,
  // everything is an LRU hit — the Section III-B storage optimization.
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const Throughputs c = spread_throughputs(m);
  Rng rng(9);
  HeterAwareScheme scheme(c, 2 * m, s, rng);
  DecodingCache cache(scheme, 64);
  const auto patterns = regular_straggler_patterns(m, s);
  std::size_t i = 0;
  for (auto _ : state) {
    auto coefficients = cache.decode(patterns[i]);
    i = (i + 1) % patterns.size();
    benchmark::DoNotOptimize(coefficients);
  }
  state.counters["hit_rate"] =
      static_cast<double>(cache.hits()) /
      static_cast<double>(cache.hits() + cache.misses());
}
BENCHMARK(BM_DecodeRegularStragglersCached)
    ->Args({32, 1})
    ->Args({58, 1})
    ->Args({58, 3});

void BM_CompletionTimeRegularStragglers(benchmark::State& state) {
  // robustness::completion_time under a recurring straggler working set
  // (range(2) = 1 shares a DecodingCache across calls, 0 re-solves). This
  // is the steady-state master: the same few workers straggle, so after
  // one warm-up lap every arrival-prefix probe is an LRU hit.
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const bool cached = state.range(2) != 0;
  const Throughputs c = spread_throughputs(m);
  Rng rng(15);
  HeterAwareScheme scheme(c, 2 * m, s, rng);
  std::vector<StragglerSet> working_set;
  for (std::size_t shift = 0; shift < 4; ++shift) {
    StragglerSet stragglers;
    for (std::size_t i = 0; i < s; ++i)
      stragglers.push_back((2 * i + shift) % m);
    std::sort(stragglers.begin(), stragglers.end());
    working_set.push_back(std::move(stragglers));
  }
  DecodingCache cache(scheme, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    auto t = completion_time(scheme, c, working_set[i],
                             cached ? &cache : nullptr);
    i = (i + 1) % working_set.size();
    benchmark::DoNotOptimize(t);
  }
  if (cached)
    state.counters["hit_rate"] =
        static_cast<double>(cache.hits()) /
        static_cast<double>(cache.hits() + cache.misses());
}
BENCHMARK(BM_CompletionTimeRegularStragglers)
    ->Args({32, 1, 0})
    ->Args({32, 1, 1})
    ->Args({58, 3, 0})
    ->Args({58, 3, 1});

void BM_WorstCaseTimeCached(benchmark::State& state) {
  // The C(m, s) enumeration with a shared decoding cache (range(2) = 1)
  // versus brute-force solving every prefix (range(2) = 0). Fractional
  // repetition is the regime with real prefix reuse: its
  // min_results_required is far below m − s, so every pattern probes a
  // ladder of early prefixes that overlap heavily between patterns — the
  // hit_rate counter is the fraction of probes answered from the LRU.
  // (Wall time can still favour uncached here because fractional's solve is
  // a cheap block scan; the cache's wall-time win needs an expensive solve,
  // measured by BM_CompletionTimeRegularStragglers above.)
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const bool cached = state.range(2) != 0;
  const Throughputs c = spread_throughputs(m);
  Rng rng(14);
  const auto scheme =
      make_scheme(SchemeKind::kFractionalRepetition, c, 2 * m, s, rng);
  double hit_rate = 0.0;
  for (auto _ : state) {
    if (cached) {
      DecodingCache cache(*scheme, 4096);
      auto worst = worst_case_time(*scheme, c, &cache);
      hit_rate = static_cast<double>(cache.hits()) /
                 static_cast<double>(cache.hits() + cache.misses());
      benchmark::DoNotOptimize(worst);
    } else {
      auto worst = worst_case_time(*scheme, c);
      benchmark::DoNotOptimize(worst);
    }
  }
  if (cached) state.counters["hit_rate"] = hit_rate;
}
BENCHMARK(BM_WorstCaseTimeCached)
    ->Args({12, 2, 0})
    ->Args({12, 2, 1})
    ->Args({18, 2, 0})
    ->Args({18, 2, 1});

void BM_SchemeCacheGetOrCreate(benchmark::State& state) {
  // Steady-state sweep-cell behaviour: after the first miss every cell
  // asking for the same fingerprint gets the interned scheme back.
  const auto m = static_cast<std::size_t>(state.range(0));
  const Throughputs c = spread_throughputs(m);
  SchemeCache cache;
  for (auto _ : state) {
    auto scheme =
        cache.get_or_create(SchemeKind::kHeterAware, c, 2 * m, 1, 7);
    benchmark::DoNotOptimize(scheme);
  }
  state.counters["hit_rate"] =
      static_cast<double>(cache.hits()) /
      static_cast<double>(cache.hits() + cache.misses());
}
BENCHMARK(BM_SchemeCacheGetOrCreate)->Arg(16)->Arg(58);

void BM_EncodeGradient(benchmark::State& state) {
  // Worker-side linear combination for a DNN-sized flat gradient.
  const auto dim = static_cast<std::size_t>(state.range(0));
  const Throughputs c = spread_throughputs(8);
  Rng rng(11);
  HeterAwareScheme scheme(c, 16, 1, rng);
  std::vector<Vector> grads(16, Vector(dim, 0.5));
  for (auto _ : state) {
    Vector coded = encode_gradient(scheme, 7, grads);
    benchmark::DoNotOptimize(coded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim) * 8);
}
BENCHMARK(BM_EncodeGradient)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_StreamingDecoderIteration(benchmark::State& state) {
  // Full master-side pipeline: m arrivals, decodability checks, combine.
  const auto m = static_cast<std::size_t>(state.range(0));
  const Throughputs c = spread_throughputs(m);
  Rng rng(12);
  HeterAwareScheme scheme(c, 2 * m, 1, rng);
  std::vector<Vector> grads(2 * m, Vector(1024, 0.25));
  std::vector<Vector> coded(m);
  for (WorkerId w = 0; w < m; ++w)
    coded[w] = encode_gradient(scheme, w, grads);
  for (auto _ : state) {
    StreamingDecoder decoder(scheme);
    for (WorkerId w = 0; w < m && !decoder.ready(); ++w)
      decoder.add_result(w, coded[w]);
    Vector aggregate = decoder.aggregate();
    benchmark::DoNotOptimize(aggregate);
  }
}
BENCHMARK(BM_StreamingDecoderIteration)->Arg(8)->Arg(32)->Arg(58);

void BM_BuildDecodingMatrix(benchmark::State& state) {
  // Offline Eq. 2 table for all C(m, s) regular patterns.
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const Throughputs c = spread_throughputs(m);
  Rng rng(13);
  HeterAwareScheme scheme(c, 2 * m, s, rng);
  for (auto _ : state) {
    auto rows = build_decoding_matrix(scheme);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_BuildDecodingMatrix)->Args({8, 1})->Args({8, 2})->Args({16, 2});

}  // namespace

BENCHMARK_MAIN();
