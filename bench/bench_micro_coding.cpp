// Microbenchmarks — construction and decoding costs of the coding layer
// (google-benchmark). Backs the paper's Section III-B complexity remarks:
// decoding-vector solves are "usually ignorable" next to gradient compute.
#include <benchmark/benchmark.h>

#include "core/decoder.hpp"
#include "core/group_based.hpp"
#include "core/heter_aware.hpp"
#include "core/scheme_factory.hpp"
#include "util/rng.hpp"

namespace {

using namespace hgc;

Throughputs spread_throughputs(std::size_t m) {
  Throughputs c(m);
  for (std::size_t i = 0; i < m; ++i)
    c[i] = 2.0 + static_cast<double>(i % 8) * 2.0;  // 2..16, Table II-like
  return c;
}

void BM_HeterAwareConstruction(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const Throughputs c = spread_throughputs(m);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    HeterAwareScheme scheme(c, 2 * m, s, rng);
    benchmark::DoNotOptimize(scheme.coding_matrix());
  }
}
BENCHMARK(BM_HeterAwareConstruction)
    ->Args({8, 1})
    ->Args({16, 1})
    ->Args({32, 1})
    ->Args({58, 1})
    ->Args({58, 3});

void BM_GroupBasedConstruction(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Throughputs c = spread_throughputs(m);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    GroupBasedScheme scheme(c, 2 * m, 1, rng);
    benchmark::DoNotOptimize(scheme.coding_matrix());
  }
}
BENCHMARK(BM_GroupBasedConstruction)->Arg(8)->Arg(16)->Arg(32)->Arg(58);

void BM_DecodeVectorSolve(benchmark::State& state) {
  // The real-time decoding path for an irregular straggler pattern: a
  // null-space solve on the straggler columns of C (O(s^3), Section III-B).
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const Throughputs c = spread_throughputs(m);
  Rng rng(9);
  HeterAwareScheme scheme(c, 2 * m, s, rng);
  std::vector<bool> received(m, true);
  for (std::size_t i = 0; i < s; ++i) received[2 * i] = false;
  for (auto _ : state) {
    auto coefficients = scheme.decoding_coefficients(received);
    benchmark::DoNotOptimize(coefficients);
  }
}
BENCHMARK(BM_DecodeVectorSolve)
    ->Args({8, 1})
    ->Args({32, 1})
    ->Args({58, 1})
    ->Args({58, 3})
    ->Args({58, 5});

void BM_GenericLeastSquaresDecode(benchmark::State& state) {
  // The generic fallback the group scheme uses for mixed arrival sets.
  const auto m = static_cast<std::size_t>(state.range(0));
  const Throughputs c = spread_throughputs(m);
  Rng rng(10);
  GroupBasedScheme scheme(c, 2 * m, 1, rng);
  std::vector<bool> received(m, true);
  received[0] = false;
  for (auto _ : state) {
    auto coefficients = scheme.decoding_coefficients(received);
    benchmark::DoNotOptimize(coefficients);
  }
}
BENCHMARK(BM_GenericLeastSquaresDecode)->Arg(8)->Arg(32)->Arg(58);

void BM_EncodeGradient(benchmark::State& state) {
  // Worker-side linear combination for a DNN-sized flat gradient.
  const auto dim = static_cast<std::size_t>(state.range(0));
  const Throughputs c = spread_throughputs(8);
  Rng rng(11);
  HeterAwareScheme scheme(c, 16, 1, rng);
  std::vector<Vector> grads(16, Vector(dim, 0.5));
  for (auto _ : state) {
    Vector coded = encode_gradient(scheme, 7, grads);
    benchmark::DoNotOptimize(coded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim) * 8);
}
BENCHMARK(BM_EncodeGradient)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_StreamingDecoderIteration(benchmark::State& state) {
  // Full master-side pipeline: m arrivals, decodability checks, combine.
  const auto m = static_cast<std::size_t>(state.range(0));
  const Throughputs c = spread_throughputs(m);
  Rng rng(12);
  HeterAwareScheme scheme(c, 2 * m, 1, rng);
  std::vector<Vector> grads(2 * m, Vector(1024, 0.25));
  std::vector<Vector> coded(m);
  for (WorkerId w = 0; w < m; ++w)
    coded[w] = encode_gradient(scheme, w, grads);
  for (auto _ : state) {
    StreamingDecoder decoder(scheme);
    for (WorkerId w = 0; w < m && !decoder.ready(); ++w)
      decoder.add_result(w, coded[w]);
    Vector aggregate = decoder.aggregate();
    benchmark::DoNotOptimize(aggregate);
  }
}
BENCHMARK(BM_StreamingDecoderIteration)->Arg(8)->Arg(32)->Arg(58);

void BM_BuildDecodingMatrix(benchmark::State& state) {
  // Offline Eq. 2 table for all C(m, s) regular patterns.
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const Throughputs c = spread_throughputs(m);
  Rng rng(13);
  HeterAwareScheme scheme(c, 2 * m, s, rng);
  for (auto _ : state) {
    auto rows = build_decoding_matrix(scheme);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_BuildDecodingMatrix)->Args({8, 1})->Args({8, 2})->Args({16, 2});

}  // namespace

BENCHMARK_MAIN();
