// Engine scale: how fast the discrete-event engine turns the crank.
//
// Four parts, all on the shared src/engine/ event loop:
//   1. A 1,000-worker heterogeneity-aware coded round — the event-queue and
//      streaming-decode hot path at two orders of magnitude beyond the
//      paper's clusters. The headline number is wall time per round, which
//      should sit well under a second (milliseconds, in practice).
//   2. A 10,000-worker round — the scale the sparse coding layer opens up:
//      with B stored CSR, construction plus a round stays in tens of
//      milliseconds where the dense representation needed gigabytes.
//   3. A worker-churn scenario: workers leave and join mid-run, the master
//      re-instantiates the scheme each time membership changes.
//   4. A trace-replay scenario driven end to end from a CSV delay trace
//      written and loaded on the spot.
//
// Usage: bench_engine_scale [--workers=1000] [--big-workers=10000]
//                           [--rounds=20] [--big-rounds=5] [--s=2]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "engine/link.hpp"
#include "engine/round.hpp"
#include "engine/scenario.hpp"
#include "sim/iteration.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hgc;

Cluster big_cluster(std::size_t workers) {
  // Shared scale preset (cluster/cluster.hpp): the same machine mix the
  // exec grids' "scale-<N>" cluster name resolves to.
  return scale_cluster(workers);
}

void bench_big_round(int part, std::size_t workers, std::size_t rounds,
                     std::size_t s) {
  std::cout << "--- " << part << ") " << workers
            << "-worker coded round (heter-aware, s = " << s << ") ---\n\n";
  const Cluster cluster = big_cluster(workers);

  Rng construction_rng(1);
  Stopwatch build_watch;
  const auto scheme = make_scheme(SchemeKind::kHeterAware,
                                  cluster.throughputs(), cluster.size(), s,
                                  construction_rng);
  std::cout << "scheme construction: "
            << TablePrinter::num(build_watch.milliseconds(), 1) << " ms\n";

  StragglerModel model;
  model.num_stragglers = s;
  model.delay_seconds = 4.0 * ideal_iteration_time(cluster, s);
  model.fluctuation_sigma = 0.05;
  Rng condition_rng(2);

  engine::FixedLatencyLink link(1e-4);
  RunningStats wall_ms;
  ReservoirQuantiles wall_quantiles;
  RunningStats virtual_time;
  std::size_t failures = 0;
  std::size_t events = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    const IterationConditions conditions =
        model.draw(cluster.size(), condition_rng);
    Stopwatch watch;
    const engine::RoundOutcome outcome =
        engine::run_round(*scheme, cluster, conditions, link);
    const double ms = watch.milliseconds();
    if (!outcome.decoded) {
      ++failures;
      continue;
    }
    wall_ms.add(ms);
    wall_quantiles.add(ms);
    virtual_time.add(outcome.time);
    events += outcome.events_executed;
  }

  TablePrinter table({"metric", "value"});
  table.add_row({"rounds", std::to_string(rounds)});
  table.add_row({"undecodable rounds", std::to_string(failures)});
  table.add_row({"wall ms/round (mean)", TablePrinter::num(wall_ms.mean(), 3)});
  table.add_row({"wall ms/round (p50)",
                 TablePrinter::num(wall_quantiles.p50(), 3)});
  table.add_row({"wall ms/round (p99)",
                 TablePrinter::num(wall_quantiles.p99(), 3)});
  table.add_row({"virtual s/round (mean)",
                 TablePrinter::num(virtual_time.mean(), 4)});
  table.add_row({"events/round",
                 std::to_string(events / std::max<std::size_t>(
                                             rounds - failures, 1))});
  table.print(std::cout);
  std::cout << "\n=> a " << workers << "-worker round costs "
            << TablePrinter::num(wall_ms.mean(), 2)
            << " ms of wall time — well under a second.\n\n";
}

void bench_churn(std::size_t s) {
  std::cout << "--- 3) worker churn (200 workers, leaves + joins) ---\n\n";
  const Cluster cluster = big_cluster(200);

  engine::ChurnConfig config;
  config.iterations = 400;
  config.s = s;
  config.model.num_stragglers = s;
  config.model.delay_seconds = 0.05;
  config.model.fluctuation_sigma = 0.05;
  // A rolling outage: five fast workers die early, three replacements come
  // back later, then two slow workers retire.
  const double t0 = ideal_iteration_time(cluster, s);
  for (std::size_t i = 0; i < 5; ++i)
    config.events.push_back({20.0 * t0, false, 150 + i, {}});
  for (std::size_t i = 0; i < 3; ++i)
    config.events.push_back({120.0 * t0, true, 0, {8, 8.0}});
  config.events.push_back({240.0 * t0, false, 0, {}});
  config.events.push_back({240.0 * t0, false, 1, {}});

  Stopwatch watch;
  const engine::ChurnResult result =
      engine::run_churn_scenario(SchemeKind::kHeterAware, cluster, config);
  const double ms = watch.milliseconds();

  TablePrinter table({"metric", "value"});
  table.add_row({"iterations", std::to_string(result.iterations_run)});
  table.add_row({"scheme re-instantiations",
                 std::to_string(result.reinstantiations)});
  std::string epochs;
  for (std::size_t size : result.epoch_sizes)
    epochs += (epochs.empty() ? "" : " -> ") + std::to_string(size);
  table.add_row({"membership epochs", epochs});
  table.add_row({"undecodable rounds", std::to_string(result.failures)});
  table.add_row({"round latency p50 (s)",
                 TablePrinter::num(result.latency.p50(), 4)});
  table.add_row({"round latency p95 (s)",
                 TablePrinter::num(result.latency.p95(), 4)});
  table.add_row({"round latency p99 (s)",
                 TablePrinter::num(result.latency.p99(), 4)});
  table.add_row({"wall time (ms)", TablePrinter::num(ms, 1)});
  table.print(std::cout);
  std::cout << '\n';
}

void bench_trace_replay(std::size_t s) {
  std::cout << "--- 4) trace replay from CSV (64 workers) ---\n\n";
  const Cluster cluster = big_cluster(64);
  const double t0 = ideal_iteration_time(cluster, s);

  // Synthesize a bursty straggler log: every worker takes turns being slow
  // for an 8-iteration burst; one iteration per burst is a hard fault.
  const std::size_t iterations = 256;
  std::vector<std::vector<double>> rows(
      iterations, std::vector<double>(cluster.size(), 0.0));
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    const std::size_t victim = (iter / 8) % cluster.size();
    rows[iter][victim] = (iter % 8 == 7) ? -1.0 : 3.0 * t0;
  }
  const std::string path = "bench_engine_scale_trace.csv";
  {
    std::ofstream out(path);
    out << "# bursty straggler log: one victim per 8-iteration burst\n";
    engine::write_delay_trace_csv(engine::DelayTrace(rows), out);
  }
  const engine::DelayTrace trace = engine::load_delay_trace_csv(path);
  std::remove(path.c_str());

  engine::TraceReplayConfig config;
  config.s = s;
  Stopwatch watch;
  const auto results = engine::replay_trace_comparison(
      {SchemeKind::kNaive, SchemeKind::kCyclic, SchemeKind::kHeterAware,
       SchemeKind::kGroupBased},
      cluster, trace, config);
  const double ms = watch.milliseconds();

  TablePrinter table(
      {"scheme", "failures", "mean (s)", "p95 (s)", "p99 (s)", "total (s)"});
  for (const auto& result : results)
    table.add_row({result.scheme, std::to_string(result.failures),
                   TablePrinter::num(result.iteration_time.mean(), 4),
                   TablePrinter::num(result.latency.p95(), 4),
                   TablePrinter::num(result.latency.p99(), 4),
                   TablePrinter::num(result.total_time, 2)});
  table.print(std::cout);
  std::cout << "\nreplayed " << iterations << " iterations x "
            << results.size() << " schemes in " << TablePrinter::num(ms, 1)
            << " ms (same trace row drives every scheme's round)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const auto workers =
      static_cast<std::size_t>(args.get_int("workers", 1000));
  const auto big_workers =
      static_cast<std::size_t>(args.get_int("big-workers", 10000));
  const auto rounds = static_cast<std::size_t>(args.get_int("rounds", 20));
  const auto big_rounds =
      static_cast<std::size_t>(args.get_int("big-rounds", 5));
  const auto s = static_cast<std::size_t>(args.get_int("s", 2));
  args.check_unused();

  std::cout << "=== Engine scale: 1,000- and 10,000-worker rounds, churn, "
               "trace replay ===\n\n";
  bench_big_round(1, workers, rounds, s);
  bench_big_round(2, big_workers, big_rounds, s);
  bench_churn(s);
  bench_trace_replay(s);
  return 0;
}
