// Straggler playground: sweep injected delays and faults on a Table II
// cluster and watch each scheme's average iteration time respond — a
// command-line miniature of the paper's Fig. 2.
//
//   ./examples/straggler_playground --cluster A --s 1 --iters 200
#include <iostream>

#include "sim/experiment.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hgc;
  Args args(argc, argv);
  const std::string name = args.get("cluster", "A");
  const auto s = static_cast<std::size_t>(args.get_int("s", 1));
  const auto iterations =
      static_cast<std::size_t>(args.get_int("iters", 200));
  args.check_unused();

  Cluster cluster = cluster_a();
  if (name == "B") cluster = cluster_b();
  if (name == "C") cluster = cluster_c();
  if (name == "D") cluster = cluster_d();

  const double t0 = ideal_iteration_time(cluster, s);
  std::cout << cluster.name() << ", s = " << s
            << ", ideal iteration time = " << TablePrinter::num(t0, 4)
            << " s\n"
            << "Injecting delay on " << s
            << " random worker(s) per iteration; 'fault' = worker dies.\n\n";

  TablePrinter table(
      {"delay", "naive", "cyclic", "heter-aware", "group-based"});
  ExperimentConfig config;
  config.s = s;
  config.k = exact_partition_count(cluster, s);
  config.iterations = iterations;
  config.model.num_stragglers = s;
  config.model.fluctuation_sigma = 0.02;

  auto row = [&](const std::string& label) {
    const auto summaries =
        compare_schemes(paper_schemes(), cluster, config);
    std::vector<std::string> cells = {label};
    for (const auto& summary : summaries)
      cells.push_back(summary.ever_failed()
                          ? "fail"
                          : TablePrinter::num(summary.mean_time(), 4));
    table.add_row(cells);
  };

  for (double factor : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    config.model.delay_seconds = factor * t0;
    config.model.fault = false;
    row(TablePrinter::num(factor, 1) + "x ideal");
  }
  config.model.fault = true;
  row("fault");

  table.print(std::cout);
  std::cout << "\nReading: naive climbs with the delay and dies at faults;\n"
               "cyclic is flat but pinned to its slowest survivor;\n"
               "heter-aware/group-based sit at the balanced optimum "
               "throughout.\n";
  return 0;
}
