// End-to-end distributed training with real worker threads.
//
// Trains a softmax classifier on a synthetic CIFAR-10-like dataset using the
// threaded BSP runtime: every worker is an OS thread that computes real
// partial gradients, sleeps its simulated compute time (heterogeneous
// speeds + injected stragglers), encodes, and sends to the master, which
// decodes from the earliest decodable arrival set and steps SGD.
//
//   ./examples/coded_training --scheme heter --iters 12 --delay 0.5
#include <iostream>

#include "core/scheme_factory.hpp"
#include "runtime/threaded_trainer.hpp"
#include "sim/experiment.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hgc;
  Args args(argc, argv);
  const std::string scheme_name = args.get("scheme", "heter");
  const auto iterations = static_cast<std::size_t>(args.get_int("iters", 12));
  const double delay = args.get_double("delay", 0.5);
  const double time_scale = args.get_double("time-scale", 2e-3);
  args.check_unused();

  const Cluster cluster = cluster_a();
  const std::size_t s = 1;
  const std::size_t k = exact_partition_count(cluster, s);

  Rng data_rng(1);
  const Dataset data = make_synthetic_cifar10(512, data_rng, 32);
  SoftmaxRegression model(data.dim(), data.num_classes);

  Rng scheme_rng(2);
  const SchemeKind kind = parse_scheme_kind(scheme_name);
  const auto scheme =
      make_scheme(kind, cluster.throughputs(), k, s, scheme_rng);

  ThreadedTrainingConfig config;
  config.iterations = iterations;
  config.sgd.learning_rate = 0.4;
  config.time_scale = time_scale;
  if (kind != SchemeKind::kNaive) {
    config.straggler_model.num_stragglers = 1;
    config.straggler_model.delay_seconds = delay;
  }

  std::cout << "Training " << model.name() << " (" << model.num_params()
            << " params) on " << data.size() << " samples, scheme "
            << scheme->name() << ", " << cluster.size()
            << " worker threads on " << cluster.name() << "\n\n";

  const auto result = train_bsp_threaded(*scheme, cluster, model, data, config);

  TablePrinter table({"iter", "wall time (s)", "mean loss"});
  for (const TracePoint& p : result.trace.points)
    table.add_row({std::to_string(p.iteration), TablePrinter::num(p.time, 3),
                   TablePrinter::num(p.loss, 4)});
  table.print(std::cout);

  std::cout << "\nfinal accuracy: "
            << TablePrinter::num(100.0 * result.final_accuracy, 1)
            << "%, stale results discarded: " << result.results_discarded
            << "\n";
  return 0;
}
