// Cluster planner: given a cluster (Table II preset or a custom vCPU list)
// and a straggler budget, print the heterogeneity-aware allocation, the
// detected groups, and the predicted iteration time of every scheme.
//
//   ./examples/cluster_planner --cluster A --s 1
//   ./examples/cluster_planner --vcpus 2,2,8,16 --s 1 --k 28
#include <iostream>
#include <sstream>

#include "core/group_based.hpp"
#include "core/robustness.hpp"
#include "core/scheme_factory.hpp"
#include "sim/experiment.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

hgc::Cluster select_cluster(const hgc::Args& args) {
  const std::string vcpus = args.get("vcpus", "");
  if (!vcpus.empty()) {
    std::vector<hgc::WorkerSpec> workers;
    std::stringstream ss(vcpus);
    std::string token;
    while (std::getline(ss, token, ',')) {
      const unsigned v = static_cast<unsigned>(std::stoul(token));
      workers.push_back({v, static_cast<double>(v)});
    }
    return hgc::Cluster("custom", std::move(workers));
  }
  const std::string name = args.get("cluster", "A");
  if (name == "A") return hgc::cluster_a();
  if (name == "B") return hgc::cluster_b();
  if (name == "C") return hgc::cluster_c();
  if (name == "D") return hgc::cluster_d();
  throw std::invalid_argument("unknown cluster: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hgc;
  Args args(argc, argv);
  const Cluster cluster = select_cluster(args);
  const auto s = static_cast<std::size_t>(args.get_int("s", 1));
  auto k = static_cast<std::size_t>(args.get_int("k", 0));
  args.check_unused();
  if (k == 0) k = exact_partition_count(cluster, s);

  std::cout << cluster.name() << ": " << cluster.size()
            << " workers, total throughput " << cluster.total_throughput()
            << ", heterogeneity ratio mean/min = "
            << cluster.heterogeneity_ratio() << "\n";
  std::cout << "Plan: k = " << k << " partitions, s = " << s
            << " stragglers tolerated\n\n";

  Rng rng(7);
  const Throughputs c = cluster.throughputs();
  GroupBasedScheme group(c, k, s, rng);

  std::cout << "Allocation (worker: vCPUs -> partitions):\n";
  for (WorkerId w = 0; w < cluster.size(); ++w)
    std::cout << "  W" << w << ": " << cluster.worker(w).vcpus << " vCPUs -> "
              << group.load(w) << " partitions\n";

  std::cout << "\nGroups detected (decode by plain summation, Alg. 2): "
            << group.groups().size() << "\n";
  for (const Group& g : group.groups()) {
    std::cout << "  {";
    for (std::size_t i = 0; i < g.size(); ++i)
      std::cout << (i ? "," : "") << "W" << g[i];
    std::cout << "} — " << g.size() << " results suffice\n";
  }

  std::cout << "\nPredicted iteration time (fraction of one dataset pass):\n";
  TablePrinter table({"scheme", "no stragglers", "worst case (s hit)"});
  for (SchemeKind kind : paper_schemes()) {
    Rng build_rng(7);
    const auto scheme = make_scheme(kind, c, k, s, build_rng);
    const double kk = static_cast<double>(scheme->num_partitions());
    const auto clean = completion_time(*scheme, c, {});
    const auto worst = worst_case_time(*scheme, c);
    table.add_row({scheme->name(),
                   clean ? TablePrinter::num(*clean / kk, 5) : "fail",
                   worst ? TablePrinter::num(*worst / kk, 5) : "fail"});
  }
  table.print(std::cout);
  std::cout << "\nTheorem 5 optimum: "
            << TablePrinter::num(
                   optimal_time_bound(c, k, s) / static_cast<double>(k), 5)
            << "\n";
  return 0;
}
