// Adaptive re-coding demo: the master starts knowing nothing about worker
// speeds, learns them from per-iteration telemetry, and re-builds the
// heterogeneity-aware code on the fly — then survives a mid-run slowdown of
// its fastest machine.
//
//   ./examples/adaptive_recoding --iters 300 --drift-at 100 --drift-factor 0.25
#include <iostream>

#include "sim/adaptive.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hgc;
  Args args(argc, argv);
  const auto iterations = static_cast<std::size_t>(args.get_int("iters", 300));
  const auto drift_at =
      static_cast<std::size_t>(args.get_int("drift-at", iterations / 3));
  const double drift_factor = args.get_double("drift-factor", 0.25);
  args.check_unused();

  const Cluster cluster = cluster_a();
  const double ideal = ideal_iteration_time(cluster, 1);
  std::cout << "Cluster-A, s = 1, ideal iteration time "
            << TablePrinter::num(ideal, 4) << " s.\n"
            << "Master starts with uniform throughput estimates (knows "
               "nothing), re-code check every 10 iters.\n"
            << "At iteration " << drift_at << " the fastest worker slows to "
            << TablePrinter::num(drift_factor, 2) << "x permanently;\n"
            << "one transient straggler is delayed every iteration "
               "throughout.\n\n";

  AdaptiveConfig config;
  config.iterations = iterations;
  config.k = 48;
  config.recode_every = 10;
  config.model.num_stragglers = 1;
  config.model.delay_seconds = 4.0 * ideal;
  config.drift.at_iteration = drift_at;
  config.drift.worker = cluster.size() - 1;
  config.drift.factor = drift_factor;

  const auto adaptive = run_adaptive(cluster, config);
  AdaptiveConfig frozen = config;
  frozen.recode_every = 0;
  const auto fixed = run_adaptive(cluster, frozen);

  TablePrinter table({"window", "static (no re-coding)", "adaptive"});
  const std::size_t w = std::max<std::size_t>(1, iterations / 6);
  for (std::size_t lo = 0; lo < iterations; lo += w) {
    const std::size_t hi = std::min(lo + w, iterations);
    table.add_row({std::to_string(lo) + ".." + std::to_string(hi),
                   TablePrinter::num(fixed.window_mean(lo, hi), 4),
                   TablePrinter::num(adaptive.window_mean(lo, hi), 4)});
  }
  table.print(std::cout);

  std::cout << "\nre-codes: " << adaptive.recodes
            << ", learned estimates (true in parens):\n  ";
  for (WorkerId i = 0; i < cluster.size(); ++i)
    std::cout << TablePrinter::num(adaptive.final_estimates[i], 1) << " ("
              << TablePrinter::num(cluster.worker(i).throughput *
                                       (i == config.drift.worker
                                            ? drift_factor
                                            : 1.0), 1)
              << ")" << (i + 1 < cluster.size() ? ", " : "\n");
  return 0;
}
