// Quickstart: the 60-second tour of the library.
//
// Builds the paper's Example 1 (5 workers with throughputs 1:2:3:4:4, k = 7
// partitions, tolerance s = 1), encodes per-partition gradients, kills one
// worker, and recovers the exact aggregate from the survivors.
//
//   ./examples/quickstart
#include <iostream>

#include "core/heter_aware.hpp"
#include "core/robustness.hpp"
#include "util/rng.hpp"

int main() {
  using namespace hgc;

  // 1. Throughput estimates (partitions/second per worker, from sampling).
  const Throughputs c = {1, 2, 3, 4, 4};
  const std::size_t k = 7;  // data partitions
  const std::size_t s = 1;  // stragglers to tolerate

  Rng rng(42);
  HeterAwareScheme scheme(c, k, s, rng);

  std::cout << "Heter-aware gradient code: m=" << scheme.num_workers()
            << " workers, k=" << scheme.num_partitions()
            << " partitions, s=" << scheme.stragglers_tolerated() << "\n\n";

  std::cout << "Data allocation (proportional to throughput, Eq. 5/6):\n  "
            << to_string(scheme.assignment()) << "\n\n";

  // 2. Each partition's "gradient" — any vector works; here dimension 2.
  std::vector<Vector> partition_gradients(k);
  Vector expected(2, 0.0);
  for (std::size_t p = 0; p < k; ++p) {
    partition_gradients[p] = {static_cast<double>(p), 1.0};
    axpy(1.0, partition_gradients[p], expected);
  }

  // 3. Workers encode: one linear combination each (a single send).
  std::vector<Vector> coded(scheme.num_workers());
  for (WorkerId w = 0; w < scheme.num_workers(); ++w)
    coded[w] = encode_gradient(scheme, w, partition_gradients);

  // 4. Worker 4 (a fast one!) straggles; the master decodes without it.
  std::vector<bool> received = {true, true, true, true, false};
  const auto coefficients = scheme.decoding_coefficients(received);
  if (!coefficients) {
    std::cerr << "unexpectedly undecodable\n";
    return 1;
  }
  coded[4].clear();
  const Vector aggregate = combine_coded_gradients(*coefficients, coded);

  std::cout << "Aggregate with worker 4 missing: [" << aggregate[0] << ", "
            << aggregate[1] << "]  (expected [" << expected[0] << ", "
            << expected[1] << "])\n";

  // 5. The guarantees, checked live.
  std::cout << "\nCondition 1 (robust to any " << s << " straggler): "
            << (satisfies_condition1(scheme.coding_matrix(), s) ? "yes"
                                                                : "NO")
            << "\n";
  const auto worst = worst_case_time(scheme, c);
  std::cout << "Worst-case iteration time T(B) = " << *worst
            << " (Theorem 5 optimum " << optimal_time_bound(c, k, s)
            << ")\n";
  return 0;
}
