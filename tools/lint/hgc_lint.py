#!/usr/bin/env python3
"""hgc_lint: the project's determinism & safety lint.

The sweep stack's load-bearing contract is byte-identity: the same grid
produces a bit-identical ResultTable at any thread count, with caching and
observability on or off. Runtime CI diffs enforce that on a handful of
smoke grids; this lint enforces the *invariants behind it* statically, so a
violation fails by file:line on the PR that introduces it instead of
surfacing as a flaky diff later (or never, if no smoke grid covers it).

Rules (see RULES for scopes and per-rule allowlists):

  unordered-iteration   Iterating a std::unordered_map/unordered_set walks
                        hash-table order, which varies by libstdc++ version
                        and seed values. Anything that feeds output must
                        iterate a deterministically ordered container (or
                        sort first). Lookups/membership are fine; only
                        iteration (range-for, begin()/end()) fires.
  nondeterministic-seed Wall clocks and entropy sources (std::random_device,
                        rand()/srand(), time(), the std::chrono clocks) must
                        not feed simulation state. All randomness flows from
                        util/rng's seeded streams. src/obs/ is exempt —
                        wall-clock timestamps are its whole job.
  raw-fp-accumulation   Floating-point accumulation in the decode/sweep hot
                        paths must route through linalg/kernels (dense) or
                        linalg/sparse (CSR), whose fixed summation orders
                        ARE the determinism contract (PR 4; sparse PR 10).
                        An ad-hoc `sum += a[i] * b[i]` loop is a parallel
                        summation-order decision nobody reviews. src/linalg/
                        is exactly the sanctioned accumulation site — the
                        sparse kernels live there for that reason.
  raw-allocation        Kernel/workspace code (src/linalg/) is allocation-
                        free on the hot path by contract (pinned by an
                        instrumented-allocator test); naked new/malloc (or
                        aligned_alloc/posix_memalign/_mm_malloc from a SIMD
                        backend) there is either a leak risk or a perf
                        regression.
  intrinsics-outside-linalg
                        Vector intrinsics (immintrin/arm_neon includes,
                        _mm*/v*q_f64 calls) are only allowed inside
                        src/linalg/, where the backend TUs implement the
                        documented summation order under the bit-identity
                        CI diff. An intrinsics loop anywhere else is an
                        unreviewed parallel summation-order decision — the
                        same bug class raw-fp-accumulation catches, one
                        level down.

Suppressions: `// lint:allow(<rule>): <justification>` — trailing on the
offending line, or alone on the line above (then it covers the next line
only). The justification is mandatory; an allow naming an unknown rule or
suppressing nothing is itself an error, so stale suppressions cannot
accumulate. clang-tidy NOLINT markers are budgeted (NOLINT_BUDGET): each
needs the usual clang-tidy justification in review, and when the count
exceeds the budget the lint fails listing every site.

Usage:
  python3 tools/lint/hgc_lint.py              # lint src apps bench tests
  python3 tools/lint/hgc_lint.py --list-rules
  python3 tools/lint/hgc_lint.py path/to/file.cpp path/to/dir
Exit code 1 when any finding is reported, 0 on a clean tree.
"""

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

# Directories walked when no explicit paths are given, relative to --root.
DEFAULT_PATHS = ["src", "apps", "bench", "tests"]
CXX_EXTENSIONS = {".cpp", ".hpp", ".h", ".cc", ".hh"}

# Total NOLINT markers (NOLINT, NOLINTNEXTLINE, NOLINTBEGIN) tolerated
# across the tree before the lint fails. Raising this number is a reviewed
# change to this file, which is the point.
NOLINT_BUDGET = 8


@dataclass
class Rule:
    name: str
    description: str
    # Regexes matched against comment/string-stripped source lines.
    patterns: list = field(default_factory=list)
    # Path prefixes (POSIX, repo-relative) the rule applies to; empty =
    # everywhere under the linted paths.
    include: list = field(default_factory=list)
    # Per-rule allowlist: path prefixes exempt from this rule.
    exclude: list = field(default_factory=list)


RULES = {
    "unordered-iteration": Rule(
        name="unordered-iteration",
        description=(
            "iteration over std::unordered_map/unordered_set (hash order "
            "leaks into output); lookups are fine"
        ),
        # Detection is structural (declared names + iteration sites), not a
        # plain pattern — see _check_unordered_iteration.
    ),
    "nondeterministic-seed": Rule(
        name="nondeterministic-seed",
        description=(
            "entropy/wall-clock source outside src/obs/ "
            "(std::random_device, rand, srand, time(), chrono clocks)"
        ),
        patterns=[
            re.compile(r"std\s*::\s*random_device"),
            re.compile(r"\bsrand\s*\("),
            re.compile(r"\brand\s*\(\s*\)"),
            re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0|\))"),
            re.compile(r"\bclock\s*\(\s*\)"),
            re.compile(
                r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"
            ),
        ],
        exclude=["src/obs/"],
    ),
    "raw-fp-accumulation": Rule(
        name="raw-fp-accumulation",
        description=(
            "floating-point accumulation in a hot path not routed through "
            "the fixed summation orders of linalg/kernels (dense) or "
            "linalg/sparse (CSR rows)"
        ),
        patterns=[
            re.compile(r"std\s*::\s*accumulate\b"),
            re.compile(r"std\s*::\s*reduce\b"),
            # Multiply-accumulate on one line: the shape of an ad-hoc dot
            # product / norm / gemv inner loop.
            re.compile(r"\+=\s*[^;]*\*"),
        ],
        include=["src/core/", "src/exec/"],
    ),
    "raw-allocation": Rule(
        name="raw-allocation",
        description=(
            "naked new/malloc in kernel/workspace code (src/linalg/ is "
            "allocation-free on the hot path by contract)"
        ),
        patterns=[
            re.compile(r"\bnew\b"),
            re.compile(r"\bmalloc\s*\("),
            re.compile(r"\bcalloc\s*\("),
            re.compile(r"\brealloc\s*\("),
            # Aligned-allocation spellings a SIMD backend might reach for.
            re.compile(r"\baligned_alloc\s*\("),
            re.compile(r"\bposix_memalign\s*\("),
            re.compile(r"\b_mm_malloc\s*\("),
        ],
        include=["src/linalg/"],
    ),
    "intrinsics-outside-linalg": Rule(
        name="intrinsics-outside-linalg",
        description=(
            "vector intrinsics outside src/linalg/ (the kernel backends "
            "are the only reviewed home for SIMD; see kernels.hpp's "
            "summation-order contract)"
        ),
        patterns=[
            re.compile(r"#\s*include\s*<(?:immintrin|x86intrin|x86gprintrin"
                       r"|arm_neon|arm_sve)\.h>"),
            re.compile(r"\b_mm\d*_\w+\s*\("),
            re.compile(r"\bv(?:add|sub|mul|div|fma|fms|ld1|st1|dup|get|set|"
                       r"abs|neg|max|min)q?_(?:lane_)?f(?:32|64)\b"),
        ],
        exclude=["src/linalg/"],
    ),
}

# Meta-rule names used in findings (not suppressible via lint:allow).
META_ALLOW = "lint-allow"
META_NOLINT = "nolint-budget"

_ALLOW_RE = re.compile(r"//\s*lint:allow\(([^)]*)\)(.*)$")
_UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<[^;{}]*>\s*&?\s*(\w+)\s*[;{=(,)]"
)


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blank out comments, string and char literals, preserving newlines
    (and therefore line numbers). Handles //, /* */, "..." and '...' with
    escapes, and R"delim(...)delim" raw strings."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif c == "R" and nxt == '"':
            close = text.find("(", i + 2)
            if close == -1:
                i += 1
                continue
            delim = text[i + 2:close]
            end = text.find(")" + delim + '"', close)
            end = n if end == -1 else end + len(delim) + 2
            for ch in text[i:end]:
                out.append("\n" if ch == "\n" else " ")
            i = end
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def parse_allows(raw_lines, findings, path):
    """Collect lint:allow suppressions.

    Returns {target_line (1-based): {rule_name: allow_line}}. Syntax errors
    (unknown rule, missing justification) are reported into `findings`.
    """
    allows = {}
    for lineno, line in enumerate(raw_lines, start=1):
        m = _ALLOW_RE.search(line)
        if not m:
            if "lint:allow" in line:
                findings.append(Finding(
                    path, lineno, META_ALLOW,
                    "malformed suppression; use "
                    "// lint:allow(<rule>): <justification>"))
            continue
        names = [p.strip() for p in m.group(1).split(",") if p.strip()]
        trailer = m.group(2)
        if not names:
            findings.append(Finding(
                path, lineno, META_ALLOW,
                "lint:allow() names no rule"))
            continue
        bad = [r for r in names if r not in RULES]
        if bad:
            known = ", ".join(sorted(RULES))
            findings.append(Finding(
                path, lineno, META_ALLOW,
                f"unknown rule '{bad[0]}' in lint:allow (known: {known})"))
            continue
        if not re.match(r"^\s*:\s*\S", trailer):
            findings.append(Finding(
                path, lineno, META_ALLOW,
                f"lint:allow({', '.join(names)}) is missing its "
                "': <justification>'"))
            continue
        # A comment-only allow line covers the next line; a trailing allow
        # covers its own line. Either way it covers exactly one line.
        before = line[: m.start()].strip()
        target = lineno + 1 if before == "" else lineno
        for rule_name in names:
            allows.setdefault(target, {})[rule_name] = lineno
    return allows


def rule_applies(rule, relpath):
    if rule.include and not any(relpath.startswith(p)
                                for p in rule.include):
        return False
    if any(relpath.startswith(p) for p in rule.exclude):
        return False
    return True


def _check_unordered_iteration(relpath, stripped_lines, stripped_text):
    """Yield (lineno, message) for iteration over unordered containers
    declared in this file. Membership/lookup use never fires."""
    names = set(_UNORDERED_DECL_RE.findall(stripped_text))
    if not names:
        return
    alternation = "|".join(re.escape(nm) for nm in sorted(names))
    range_for = re.compile(
        r"for\s*\([^;()]*:\s*[\w.\->]*\b(" + alternation + r")\s*\)")
    begin_end = re.compile(
        r"\b(" + alternation + r")\s*\.\s*c?(?:begin|end|rbegin|rend)\s*\(")
    for lineno, line in enumerate(stripped_lines, start=1):
        m = range_for.search(line) or begin_end.search(line)
        if m:
            yield lineno, (
                f"iterates unordered container '{m.group(1)}' "
                "(hash order is not deterministic across platforms); use an "
                "ordered container or sort the keys first")


def lint_file(root, relpath, findings, nolint_sites):
    path = os.path.join(root, relpath)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as exc:
        findings.append(Finding(relpath, 0, "io", f"unreadable: {exc}"))
        return

    raw_lines = text.splitlines()
    stripped_text = strip_comments_and_strings(text)
    stripped_lines = stripped_text.splitlines()

    for lineno, line in enumerate(raw_lines, start=1):
        if "NOLINT" in line:
            nolint_sites.append(f"{relpath}:{lineno}")

    allows = parse_allows(raw_lines, findings, relpath)
    used = set()  # (target_line, rule_name) pairs that suppressed a finding

    def report(lineno, rule_name, message):
        if rule_name in allows.get(lineno, {}):
            used.add((lineno, rule_name))
            return
        findings.append(Finding(relpath, lineno, rule_name, message))

    for rule in RULES.values():
        if not rule_applies(rule, relpath):
            continue
        if rule.name == "unordered-iteration":
            for lineno, message in _check_unordered_iteration(
                    relpath, stripped_lines, stripped_text):
                report(lineno, rule.name, message)
            continue
        for lineno, line in enumerate(stripped_lines, start=1):
            for pattern in rule.patterns:
                m = pattern.search(line)
                if m:
                    report(lineno, rule.name,
                           f"'{m.group(0).strip()}' — {rule.description}")
                    break  # one finding per rule per line

    # A suppression that suppressed nothing is stale — fail it so allows
    # cannot outlive the code they were written for.
    for target, rules_here in sorted(allows.items()):
        for rule_name, allow_line in sorted(rules_here.items()):
            if (target, rule_name) not in used:
                findings.append(Finding(
                    relpath, allow_line, META_ALLOW,
                    f"lint:allow({rule_name}) suppresses nothing "
                    "(stale suppression — remove it)"))


def collect_files(root, paths):
    files = []
    for p in paths:
        abs_p = os.path.join(root, p)
        if os.path.isfile(abs_p):
            files.append(os.path.relpath(abs_p, root).replace(os.sep, "/"))
        elif os.path.isdir(abs_p):
            for dirpath, _dirnames, filenames in os.walk(abs_p):
                for fn in sorted(filenames):
                    if os.path.splitext(fn)[1] in CXX_EXTENSIONS:
                        rel = os.path.relpath(os.path.join(dirpath, fn),
                                              root)
                        files.append(rel.replace(os.sep, "/"))
    return sorted(set(files))


def main():
    parser = argparse.ArgumentParser(
        description="hgc determinism & safety lint")
    parser.add_argument("paths", nargs="*",
                        help=f"files/dirs to lint (default: "
                             f"{' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--root", default=None,
                        help="repository root (default: auto-detected from "
                             "this script's location)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args()

    if args.list_rules:
        for rule in RULES.values():
            scope = ", ".join(rule.include) if rule.include else "tree-wide"
            exempt = f"; exempt: {', '.join(rule.exclude)}" \
                if rule.exclude else ""
            print(f"{rule.name}: {rule.description} [{scope}{exempt}]")
        print(f"{META_ALLOW}: suppression syntax/staleness (meta)")
        print(f"{META_NOLINT}: NOLINT markers budgeted at {NOLINT_BUDGET} "
              "tree-wide (meta)")
        return 0

    root = args.root or os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    paths = args.paths or [p for p in DEFAULT_PATHS
                           if os.path.isdir(os.path.join(root, p))]

    findings = []
    nolint_sites = []
    files = collect_files(root, paths)
    for relpath in files:
        lint_file(root, relpath, findings, nolint_sites)

    if len(nolint_sites) > NOLINT_BUDGET:
        listing = ", ".join(nolint_sites)
        findings.append(Finding(
            "<tree>", 0, META_NOLINT,
            f"{len(nolint_sites)} NOLINT markers exceed the budget of "
            f"{NOLINT_BUDGET}: {listing}"))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for finding in findings:
        print(finding)
    print(f"hgc_lint: {len(files)} files, {len(findings)} finding(s), "
          f"{len(nolint_sites)}/{NOLINT_BUDGET} NOLINT budget used")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
