#!/usr/bin/env python3
"""Pins the failure modes of check_bench_floor.py.

The floor checker is the only thing standing between a perf regression and
a green CI run, so its *failure* behaviors are contracts: a typoed baseline
key, a baseline entry that enforces nothing, and a bench missing from the
report must each fail loudly rather than pass vacuously. These tests pin
them, plus the time-unit normalization for max_real_time_ns ceilings.

Runs under pytest in CI; `python3 tools/test_check_bench_floor.py` runs the
same functions standalone where pytest is not installed.
"""

import importlib.util
import io
import json
import os
import sys
import tempfile
from contextlib import redirect_stdout

_HERE = os.path.dirname(os.path.abspath(__file__))
_spec = importlib.util.spec_from_file_location(
    "check_bench_floor", os.path.join(_HERE, "check_bench_floor.py")
)
check_bench_floor = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench_floor)


def run_checker(report, baseline):
    """Invoke main() on temp files; return (exit_code, stdout_text)."""
    with tempfile.TemporaryDirectory() as tmp:
        report_path = os.path.join(tmp, "report.json")
        baseline_path = os.path.join(tmp, "baseline.json")
        with open(report_path, "w") as f:
            json.dump(report, f)
        with open(baseline_path, "w") as f:
            json.dump(baseline, f)
        argv = sys.argv
        sys.argv = ["check_bench_floor.py", report_path, baseline_path]
        out = io.StringIO()
        try:
            with redirect_stdout(out):
                code = check_bench_floor.main()
        finally:
            sys.argv = argv
        return code, out.getvalue()


def bench(name, **fields):
    entry = {"name": name}
    entry.update(fields)
    return entry


def test_passes_when_all_floors_hold():
    report = {
        "benchmarks": [
            bench("BM_Kernel", mflops=5000.0),
            bench("BM_Alloc", allocs_per_iter=0.0, real_time=12.0,
                  time_unit="ns"),
        ]
    }
    baseline = {
        "mflops_floor_divisor": 5.0,
        "benchmarks": {
            "BM_Kernel": {"mflops": 9000},
            "BM_Alloc": {"max_allocs_per_iter": 0.5, "max_real_time_ns": 15},
        },
    }
    code, out = run_checker(report, baseline)
    assert code == 0, out
    assert "3 floors checked, 0 failures" in out


def test_unknown_baseline_key_fails_by_name():
    report = {"benchmarks": [bench("BM_Kernel", mflops=5000.0)]}
    baseline = {
        "benchmarks": {"BM_Kernel": {"mflops": 9000, "mflopz": 1}}
    }
    code, out = run_checker(report, baseline)
    assert code == 1
    assert "unknown baseline key(s) mflopz" in out


def test_entry_with_no_checkable_key_fails():
    # An empty spec enforces nothing — that must be a failure, not a pass.
    report = {"benchmarks": [bench("BM_Kernel", mflops=5000.0)]}
    baseline = {"benchmarks": {"BM_Kernel": {}}}
    code, out = run_checker(report, baseline)
    assert code == 1
    assert "no checkable key" in out


def test_baseline_entry_missing_from_report_fails():
    # A silently skipped bench (filtered out, crashed, renamed) must fail.
    report = {"benchmarks": [bench("BM_Other", mflops=5000.0)]}
    baseline = {"benchmarks": {"BM_Kernel": {"mflops": 9000}}}
    code, out = run_checker(report, baseline)
    assert code == 1
    assert "BM_Kernel: missing from the benchmark report" in out


def test_max_real_time_normalizes_report_time_unit():
    # 0.01 us = 10 ns: under a 15 ns ceiling despite the us report unit.
    report = {
        "benchmarks": [bench("BM_Obs", real_time=0.01, time_unit="us")]
    }
    baseline = {"benchmarks": {"BM_Obs": {"max_real_time_ns": 15}}}
    code, out = run_checker(report, baseline)
    assert code == 0, out

    # 0.02 us = 20 ns: over the ceiling, and the message reports ns.
    report["benchmarks"][0]["real_time"] = 0.02
    code, out = run_checker(report, baseline)
    assert code == 1
    assert "20 ns exceeds ceiling 15 ns" in out


def test_max_real_time_with_unknown_unit_fails():
    report = {
        "benchmarks": [bench("BM_Obs", real_time=1.0, time_unit="weeks")]
    }
    baseline = {"benchmarks": {"BM_Obs": {"max_real_time_ns": 15}}}
    code, out = run_checker(report, baseline)
    assert code == 1
    assert "time_unit 'weeks' unknown" in out


def test_missing_allocs_counter_fails_not_vacuously_passes():
    report = {"benchmarks": [bench("BM_Alloc", real_time=1.0)]}
    baseline = {"benchmarks": {"BM_Alloc": {"max_allocs_per_iter": 0.5}}}
    code, out = run_checker(report, baseline)
    assert code == 1
    assert "allocs_per_iter counter missing" in out


def test_mflops_floor_uses_divisor_headroom():
    # baseline 9000 / divisor 5 = floor 1800; 1799 fails, 1801 passes.
    baseline = {
        "mflops_floor_divisor": 5.0,
        "benchmarks": {"BM_Kernel": {"mflops": 9000}},
    }
    code, _ = run_checker(
        {"benchmarks": [bench("BM_Kernel", mflops=1801.0)]}, baseline)
    assert code == 0
    code, out = run_checker(
        {"benchmarks": [bench("BM_Kernel", mflops=1799.0)]}, baseline)
    assert code == 1
    assert "below floor 1800.0" in out


def test_backend_suffix_checked_when_context_matches():
    report = {
        "context": {"hgc_kernel_backend": "avx2"},
        "benchmarks": [bench("BM_Kernel/16384", mflops=100.0)],
    }
    baseline = {
        "mflops_floor_divisor": 5.0,
        "benchmarks": {"BM_Kernel/16384@avx2": {"mflops": 9000}},
    }
    code, out = run_checker(report, baseline)
    assert code == 1
    # Enforced (and failed) under the full suffixed key, against the
    # report's UNsuffixed bench name.
    assert "BM_Kernel/16384@avx2: mflops 100.0 below floor" in out


def test_backend_suffix_skipped_when_context_differs():
    report = {
        "context": {"hgc_kernel_backend": "scalar"},
        "benchmarks": [bench("BM_Kernel/16384", mflops=100.0)],
    }
    baseline = {
        "benchmarks": {
            "BM_Kernel/16384@avx2": {"mflops": 9000},
            "BM_Kernel/16384@scalar": {"mflops": 90},
        }
    }
    code, out = run_checker(report, baseline)
    assert code == 0, out
    # The other-backend entry is reported as skipped, not silently dropped.
    assert "1 other-backend entry skipped" in out
    assert "SKIP BM_Kernel/16384@avx2" in out


def test_backend_suffix_without_report_context_fails():
    # A per-backend floor against a report with no backend stamp must fail:
    # silently enforcing (or skipping) it would hide a stale bench binary.
    report = {"benchmarks": [bench("BM_Kernel/16384", mflops=9000.0)]}
    baseline = {"benchmarks": {"BM_Kernel/16384@avx2": {"mflops": 90}}}
    code, out = run_checker(report, baseline)
    assert code == 1
    assert "no context.hgc_kernel_backend" in out


def test_unknown_backend_suffix_fails_by_name():
    report = {
        "context": {"hgc_kernel_backend": "scalar"},
        "benchmarks": [bench("BM_Kernel", mflops=9000.0)],
    }
    baseline = {"benchmarks": {"BM_Kernel@sse2": {"mflops": 90}}}
    code, out = run_checker(report, baseline)
    assert code == 1
    assert "unknown backend suffix 'sse2'" in out


def _load_repo_baseline():
    path = os.path.join(_HERE, os.pardir, "bench", "kernels_baseline.json")
    with open(path) as f:
        return json.load(f)


def test_repo_baseline_file_is_well_formed():
    # The checked-in baseline must never contain a key the checker would
    # reject, every entry must enforce something, and any @backend suffix
    # must be a backend the checker (and the bench binary) knows.
    baseline = _load_repo_baseline()
    for key, spec in baseline["benchmarks"].items():
        assert set(spec) & check_bench_floor.CHECKED_KEYS, key
        assert not set(spec) - check_bench_floor.CHECKED_KEYS, key
        _, _, backend = key.partition("@")
        if backend:
            assert backend in check_bench_floor.KNOWN_BACKENDS, key


def test_repo_baseline_simd_floors_are_2x_scalar():
    # PR 9's acceptance criterion as a committed relationship: at the
    # compute-bound kernel shapes, the SIMD floor must promise at least 2x
    # the committed scalar baseline. (Enforced on the committed values, not
    # a same-run measurement, so shared-runner noise cannot flake it.)
    baseline = _load_repo_baseline()["benchmarks"]
    for name in ("BM_KernelDot/16384", "BM_KernelDot/1024",
                 "BM_KernelGemv/58/116"):
        scalar = baseline[f"{name}@scalar"]["mflops"]
        simd = baseline[f"{name}@avx2"]["mflops"]
        assert simd >= 2 * scalar, (
            f"{name}: @avx2 baseline {simd} is below 2x @scalar {scalar}"
        )


if __name__ == "__main__":
    failures = 0
    for fn_name, fn in sorted(globals().items()):
        if fn_name.startswith("test_") and callable(fn):
            try:
                fn()
                print(f"PASS {fn_name}")
            except AssertionError as exc:
                failures += 1
                print(f"FAIL {fn_name}: {exc}")
    sys.exit(1 if failures else 0)
