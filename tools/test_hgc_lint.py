#!/usr/bin/env python3
"""Pins the rule behavior of tools/lint/hgc_lint.py.

The lint is the static half of the determinism contract, so each rule's
*fire*, *allow*, and *ignore* behaviors are contracts of their own: a rule
that silently stops firing is as bad as a byte-diff CI job that silently
stops diffing. Every rule gets a fixture snippet pinning all three, plus
the suppression mechanics: a lint:allow covers exactly one line, requires a
justification, rejects unknown rule names, and fails when stale. Finally,
the lint must report zero findings on the real repository tree — the same
invocation CI runs.

Runs under pytest in CI; `python3 tools/test_hgc_lint.py` runs the same
functions standalone where pytest is not installed.
"""

import importlib.util
import io
import os
import sys
import tempfile
from contextlib import redirect_stdout

_HERE = os.path.dirname(os.path.abspath(__file__))
_spec = importlib.util.spec_from_file_location(
    "hgc_lint", os.path.join(_HERE, "lint", "hgc_lint.py")
)
hgc_lint = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(hgc_lint)


def run_lint(files):
    """Write {relpath: content} into a temp tree, lint it, and return
    (exit_code, stdout_text)."""
    with tempfile.TemporaryDirectory() as tmp:
        for relpath, content in files.items():
            path = os.path.join(tmp, relpath)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w") as f:
                f.write(content)
        argv = sys.argv
        sys.argv = ["hgc_lint.py", "--root", tmp]
        out = io.StringIO()
        try:
            with redirect_stdout(out):
                code = hgc_lint.main()
        finally:
            sys.argv = argv
        return code, out.getvalue()


# --- unordered-iteration -------------------------------------------------

UNORDERED_ITERATING = """
#include <unordered_map>
struct Exporter {
  std::unordered_map<int, double> cells_;
  double total() const {
    double t = 0;
    for (const auto& [k, v] : cells_) t = t + v;
    return t;
  }
};
"""

UNORDERED_LOOKUP_ONLY = """
#include <unordered_map>
struct Cache {
  std::unordered_map<int, double> map_;
  bool has(int k) const { return map_.count(k) > 0; }
  double get(int k) const { return map_.at(k); }
};
"""


def test_unordered_iteration_fires_on_range_for():
    code, out = run_lint({"src/exec/export.cpp": UNORDERED_ITERATING})
    assert code == 1
    assert "src/exec/export.cpp:7: [unordered-iteration]" in out
    assert "cells_" in out


def test_unordered_iteration_fires_on_begin():
    snippet = UNORDERED_LOOKUP_ONLY.replace(
        "return map_.at(k); }",
        "return map_.at(k); }\n  auto it() const { return map_.begin(); }")
    code, out = run_lint({"src/core/c.hpp": snippet})
    assert code == 1
    assert "[unordered-iteration]" in out


def test_unordered_lookup_only_is_ignored():
    code, out = run_lint({"src/core/cache.hpp": UNORDERED_LOOKUP_ONLY})
    assert code == 0, out


def test_unordered_iteration_allowed_with_justification():
    allowed = UNORDERED_ITERATING.replace(
        "for (const auto& [k, v] : cells_) t = t + v;",
        "// lint:allow(unordered-iteration): totals are order-independent\n"
        "    for (const auto& [k, v] : cells_) t = t + v;")
    code, out = run_lint({"src/exec/export.cpp": allowed})
    assert code == 0, out


# --- nondeterministic-seed -----------------------------------------------

def test_seed_rule_fires_on_each_entropy_source():
    sources = [
        "std::random_device rd;",
        "srand(42);",
        "int r = rand();",
        "long t = time(NULL);",
        "auto n = std::chrono::steady_clock::now();",
        "auto w = std::chrono::system_clock::now();",
    ]
    for line in sources:
        code, out = run_lint(
            {"src/core/seed.cpp": f"void f() {{ {line} }}\n"})
        assert code == 1, f"{line!r} did not fire:\n{out}"
        assert "[nondeterministic-seed]" in out


def test_seed_rule_exempts_obs():
    # src/obs/ is the wall-clock subsystem; the same line is clean there.
    line = "auto n = std::chrono::system_clock::now();"
    code, out = run_lint({"src/obs/clock.cpp": f"void f() {{ {line} }}\n"})
    assert code == 0, out


def test_seed_rule_ignores_comments_and_strings():
    snippet = (
        "// decode time (s) uses steady_clock? no: rand() is banned\n"
        'const char* kDoc = "seed with time(NULL)";\n'
    )
    code, out = run_lint({"src/core/doc.cpp": snippet})
    assert code == 0, out


def test_seed_rule_ignores_identifiers_containing_time():
    # iteration_time(...) and total_time are not time() calls.
    snippet = "double x = ideal_iteration_time(cluster, s);\n"
    code, out = run_lint({"src/core/t.cpp": snippet})
    assert code == 0, out


# --- raw-fp-accumulation -------------------------------------------------

MAC_LOOP = """
double dot(const double* a, const double* b, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}
"""


def test_fp_accumulation_fires_in_core():
    code, out = run_lint({"src/core/decode.cpp": MAC_LOOP})
    assert code == 1
    assert "src/core/decode.cpp:4: [raw-fp-accumulation]" in out


def test_fp_accumulation_fires_on_std_accumulate():
    snippet = ("#include <numeric>\n"
               "double s(const std::vector<double>& v) {\n"
               "  return std::accumulate(v.begin(), v.end(), 0.0);\n"
               "}\n")
    code, out = run_lint({"src/exec/agg.cpp": snippet})
    assert code == 1
    assert "[raw-fp-accumulation]" in out


def test_fp_accumulation_ignored_outside_hot_paths():
    # The same loop in the kernels layer itself (or ml/, tests/) is the
    # implementation, not a bypass.
    code, out = run_lint({
        "src/linalg/kernels.cpp": MAC_LOOP,
        "src/ml/loss.cpp": MAC_LOOP,
        "tests/test_sum.cpp": MAC_LOOP,
    })
    assert code == 0, out


SPARSE_ROW_DOT = """
double row_dot(const std::size_t* cols, const double* values,
               std::size_t nnz, const double* x) {
  double sum = 0.0;
  for (std::size_t i = 0; i < nnz; ++i) sum += values[i] * x[cols[i]];
  return sum;
}
"""


def test_fp_accumulation_sanctions_sparse_kernels_in_linalg():
    # The CSR kernels are the sparse half of the determinism contract; they
    # live in src/linalg/ precisely so their accumulation chains are the
    # sanctioned implementation, not a bypass. The identical loop in
    # src/core/ is still a finding.
    code, out = run_lint({"src/linalg/sparse.cpp": SPARSE_ROW_DOT})
    assert code == 0, out
    code, out = run_lint({"src/core/sparse_copy.cpp": SPARSE_ROW_DOT})
    assert code == 1
    assert "[raw-fp-accumulation]" in out
    assert "linalg/sparse" in out  # the finding names the sanctioned homes


# --- raw-allocation ------------------------------------------------------

def test_raw_allocation_fires_in_linalg():
    snippet = "double* scratch() { return new double[64]; }\n"
    code, out = run_lint({"src/linalg/scratch.cpp": snippet})
    assert code == 1
    assert "src/linalg/scratch.cpp:1: [raw-allocation]" in out


def test_raw_allocation_fires_on_malloc():
    snippet = ("#include <cstdlib>\n"
               "void* p() { return malloc(64); }\n")
    code, out = run_lint({"src/linalg/m.cpp": snippet})
    assert code == 1
    assert "[raw-allocation]" in out


def test_raw_allocation_ignored_outside_linalg():
    snippet = "int* leak() { return new int(7); }\n"
    code, out = run_lint({"src/engine/alloc.cpp": snippet})
    assert code == 0, out


def test_raw_allocation_ignores_new_in_comment():
    snippet = "// a new workspace is sized on first use\nint x = 0;\n"
    code, out = run_lint({"src/linalg/doc.cpp": snippet})
    assert code == 0, out


def test_raw_allocation_fires_on_aligned_alloc_spellings():
    # The SIMD backends make aligned allocation tempting; every spelling of
    # it is still a raw allocation in the allocation-free layer.
    lines = [
        "void* p = std::aligned_alloc(32, 256);",
        "int rc = posix_memalign(&p, 32, 256);",
        "double* q = (double*)_mm_malloc(256, 32);",
    ]
    for line in lines:
        code, out = run_lint(
            {"src/linalg/aa.cpp": f"void f(void* p) {{ {line} }}\n"})
        assert code == 1, f"{line!r} did not fire:\n{out}"
        assert "[raw-allocation]" in out


# --- intrinsics-outside-linalg -------------------------------------------

def test_intrinsics_fire_outside_linalg():
    # Headers, x86 calls, and NEON calls each fire anywhere outside
    # src/linalg/ — SIMD has exactly one reviewed home.
    cases = {
        "src/core/fast.cpp": "#include <immintrin.h>\n",
        "src/exec/hot.cpp":
            "void f(double* a) { _mm256_storeu_pd(a, _mm256_setzero_pd()); }\n",
        "apps/tool.cpp": "#include <arm_neon.h>\n",
        "bench/b.cpp":
            "float64x2_t g(float64x2_t a) { return vaddq_f64(a, a); }\n",
    }
    for relpath, snippet in cases.items():
        code, out = run_lint({relpath: snippet})
        assert code == 1, f"{relpath} did not fire:\n{out}"
        assert "[intrinsics-outside-linalg]" in out


def test_intrinsics_ignored_inside_linalg():
    snippet = (
        "#include <immintrin.h>\n"
        "void f(double* a) { _mm256_storeu_pd(a, _mm256_setzero_pd()); }\n")
    code, out = run_lint({"src/linalg/kernels_avx2.cpp": snippet})
    assert code == 0, out


def test_intrinsics_rule_ignores_lookalike_identifiers():
    # vset_count / mm_total are ordinary names, not intrinsic calls.
    snippet = ("int vset_count(int n) { return n; }\n"
               "double mm_total = 0.0;\n")
    code, out = run_lint({"src/core/names.cpp": snippet})
    assert code == 0, out


# --- lint:allow mechanics ------------------------------------------------

def test_allow_suppresses_exactly_one_line():
    two_sites = (
        "void f() {\n"
        "  auto a = std::chrono::steady_clock::now();"
        "  // lint:allow(nondeterministic-seed): measured, not fed back\n"
        "  auto b = std::chrono::steady_clock::now();\n"
        "}\n")
    code, out = run_lint({"src/core/two.cpp": two_sites})
    assert code == 1
    assert "src/core/two.cpp:3: [nondeterministic-seed]" in out
    assert "two.cpp:2" not in out  # first site suppressed


def test_standalone_allow_covers_next_line_only():
    snippet = (
        "void f() {\n"
        "  // lint:allow(nondeterministic-seed): local timing experiment\n"
        "  auto a = std::chrono::steady_clock::now();\n"
        "  auto b = std::chrono::steady_clock::now();\n"
        "}\n")
    code, out = run_lint({"src/core/next.cpp": snippet})
    assert code == 1
    assert "src/core/next.cpp:4: [nondeterministic-seed]" in out
    assert "next.cpp:3" not in out


def test_allow_without_justification_is_an_error():
    snippet = ("auto a = std::chrono::steady_clock::now();"
               "  // lint:allow(nondeterministic-seed)\n")
    code, out = run_lint({"src/core/no_reason.cpp": snippet})
    assert code == 1
    assert "[lint-allow]" in out
    assert "missing its ': <justification>'" in out


def test_allow_with_unknown_rule_is_an_error():
    snippet = ("int x = 0;  // lint:allow(no-such-rule): because\n")
    code, out = run_lint({"src/core/unknown.cpp": snippet})
    assert code == 1
    assert "unknown rule 'no-such-rule'" in out
    # The error lists the known rules so the fix is obvious.
    assert "nondeterministic-seed" in out


def test_stale_allow_is_an_error():
    snippet = ("int x = 0;  "
               "// lint:allow(nondeterministic-seed): leftover\n")
    code, out = run_lint({"src/core/stale.cpp": snippet})
    assert code == 1
    assert "suppresses nothing" in out


# --- NOLINT budget -------------------------------------------------------

def test_nolint_budget_enforced():
    over = "".join(
        f"int a{i} = 0;  // NOLINT\n"
        for i in range(hgc_lint.NOLINT_BUDGET + 1))
    code, out = run_lint({"src/core/nolint.cpp": over})
    assert code == 1
    assert "[nolint-budget]" in out
    assert f"exceed the budget of {hgc_lint.NOLINT_BUDGET}" in out
    assert "src/core/nolint.cpp:1" in out  # sites are listed

    under = "".join(
        f"int a{i} = 0;  // NOLINT\n"
        for i in range(hgc_lint.NOLINT_BUDGET))
    code, out = run_lint({"src/core/nolint.cpp": under})
    assert code == 0, out


# --- whole-tree self-application ----------------------------------------

def test_clean_tree_reports_zero_findings():
    code, out = run_lint({"src/core/clean.cpp": "int x = 0;\n"})
    assert code == 0
    assert "0 finding(s)" in out


def test_real_repository_tree_is_clean():
    # The same contract CI enforces: the lint's default invocation over the
    # actual tree must report nothing.
    argv = sys.argv
    sys.argv = ["hgc_lint.py"]
    out = io.StringIO()
    try:
        with redirect_stdout(out):
            code = hgc_lint.main()
    finally:
        sys.argv = argv
    assert code == 0, out.getvalue()
    assert "0 finding(s)" in out.getvalue()


if __name__ == "__main__":
    failures = 0
    for fn_name, fn in sorted(globals().items()):
        if fn_name.startswith("test_") and callable(fn):
            try:
                fn()
                print(f"PASS {fn_name}")
            except AssertionError as exc:
                failures += 1
                print(f"FAIL {fn_name}: {exc}")
    sys.exit(1 if failures else 0)
