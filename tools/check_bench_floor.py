#!/usr/bin/env python3
"""Perf-smoke floor check for the kernel benches.

Usage: check_bench_floor.py BENCH_kernels.json bench/kernels_baseline.json

Reads a google-benchmark JSON report and a baseline file, and fails (exit 1)
only on gross regressions:
  * an entry whose baseline records `mflops` must measure at least
    baseline_mflops / mflops_floor_divisor (default 5x headroom, so
    machine-to-machine noise never trips it — only order-of-magnitude
    regressions like a scalarized kernel or a copy in the hot loop);
  * an entry whose baseline records `max_allocs_per_iter` must measure an
    allocs_per_iter counter at or below it (the workspace layer's
    zero-steady-state-allocation contract, checked exactly);
  * an entry whose baseline records `max_real_time_ns` must measure a
    per-iteration real_time at or below it, whatever time_unit the report
    used (the obs layer's near-zero-disabled-cost contract);
  * every baseline entry must be present in the report (a silently skipped
    bench must not pass);
  * every baseline key must be one the checker knows how to enforce, and
    every entry must carry at least one such key — a typoed or stale key
    fails by name instead of silently checking nothing.

Per-backend floors: a baseline name may carry an `@backend` suffix
(`BM_KernelDot/16384@avx2`). Such an entry is enforced only when the
report's context.hgc_kernel_backend matches the suffix (the bench binary
stamps it via AddCustomContext), and is skipped — counted and printed, not
failed — otherwise, so one baseline file serves the scalar and SIMD CI
legs. A suffixed entry fails loudly when the report carries no backend
context (old binary) or when the suffix is not a known backend name.
"""

import json
import sys

# Baseline keys this checker enforces. Anything else in an entry is a typo
# or a key from a newer checker version — both must fail loudly.
CHECKED_KEYS = {"mflops", "max_allocs_per_iter", "max_real_time_ns"}

# Valid `@backend` suffixes — must match kernels::backend_name() spellings.
KNOWN_BACKENDS = {"scalar", "avx2", "neon"}

# google-benchmark time_unit -> nanoseconds per unit.
TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        report = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    results = {b["name"]: b for b in report.get("benchmarks", [])}
    report_backend = report.get("context", {}).get("hgc_kernel_backend")
    divisor = float(baseline.get("mflops_floor_divisor", 5.0))
    failures = []
    checked = 0
    skipped = []

    for key, spec in baseline["benchmarks"].items():
        name, _, backend = key.partition("@")
        if backend:
            if backend not in KNOWN_BACKENDS:
                failures.append(
                    f"{key}: unknown backend suffix {backend!r} "
                    f"(known: {', '.join(sorted(KNOWN_BACKENDS))})"
                )
                continue
            if report_backend is None:
                failures.append(
                    f"{key}: baseline is per-backend but the report has no "
                    f"context.hgc_kernel_backend (bench binary too old?)"
                )
                continue
            if backend != report_backend:
                skipped.append(key)
                continue
        unknown = sorted(set(spec) - CHECKED_KEYS)
        if unknown:
            failures.append(
                f"{key}: unknown baseline key(s) {', '.join(unknown)} "
                f"(checker knows: {', '.join(sorted(CHECKED_KEYS))})"
            )
        if not set(spec) & CHECKED_KEYS:
            failures.append(
                f"{key}: baseline entry has no checkable key — nothing "
                f"would be enforced"
            )
            continue
        got = results.get(name)
        if got is None:
            failures.append(f"{key}: missing from the benchmark report")
            continue
        if "mflops" in spec:
            checked += 1
            floor = float(spec["mflops"]) / divisor
            measured = got.get("mflops")
            if measured is None or float(measured) < floor:
                failures.append(
                    f"{key}: mflops {measured} below floor {floor:.1f} "
                    f"(baseline {spec['mflops']} / {divisor:g})"
                )
        if "max_allocs_per_iter" in spec:
            checked += 1
            measured = got.get("allocs_per_iter")
            ceiling = float(spec["max_allocs_per_iter"])
            if measured is None:
                # A dropped counter must fail, not pass vacuously as 0.
                failures.append(
                    f"{key}: allocs_per_iter counter missing from the "
                    f"report (AllocCounter.report() removed?)"
                )
            elif float(measured) > ceiling:
                failures.append(
                    f"{key}: allocs_per_iter {float(measured):g} exceeds "
                    f"{ceiling:g}"
                )
        if "max_real_time_ns" in spec:
            checked += 1
            ceiling = float(spec["max_real_time_ns"])
            measured = got.get("real_time")
            unit = got.get("time_unit", "ns")
            if measured is None or unit not in TIME_UNIT_NS:
                failures.append(
                    f"{key}: real_time missing or time_unit {unit!r} "
                    f"unknown — cannot check max_real_time_ns"
                )
            else:
                measured_ns = float(measured) * TIME_UNIT_NS[unit]
                if measured_ns > ceiling:
                    failures.append(
                        f"{key}: real_time {measured_ns:g} ns exceeds "
                        f"ceiling {ceiling:g} ns"
                    )

    summary = f"check_bench_floor: {checked} floors checked"
    if skipped:
        summary += (f", {len(skipped)} other-backend entr"
                    f"{'y' if len(skipped) == 1 else 'ies'} skipped")
    print(summary + f", {len(failures)} failures")
    for key in skipped:
        print(f"  SKIP {key} (report backend: {report_backend})")
    for failure in failures:
        print(f"  FAIL {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
