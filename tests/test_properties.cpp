// Cross-scheme property sweeps: for a grid of (scheme, m, s, heterogeneity),
// verify Condition 1 by brute force, exact decode under every straggler
// pattern, and the Theorem 5 time ordering between schemes.
#include <gtest/gtest.h>

#include <cmath>

#include "core/robustness.hpp"
#include "core/scheme_factory.hpp"
#include "util/rng.hpp"

namespace hgc {
namespace {

struct PropertyCase {
  SchemeKind kind;
  std::size_t m;
  std::size_t s;
  double spread;  ///< throughput ratio fastest/slowest
};

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  std::string name = to_string(info.param.kind);
  for (char& ch : name)
    if (ch == '-') ch = '_';
  return name + "_m" + std::to_string(info.param.m) + "_s" +
         std::to_string(info.param.s) + "_x" +
         std::to_string(static_cast<int>(info.param.spread));
}

class SchemeProperties : public ::testing::TestWithParam<PropertyCase> {
 protected:
  Throughputs make_throughputs(Rng& rng) const {
    const auto& p = GetParam();
    Throughputs c(p.m);
    for (std::size_t i = 0; i < p.m; ++i)
      c[i] = rng.uniform(1.0, std::max(1.0 + 1e-9, p.spread));
    return c;
  }
};

TEST_P(SchemeProperties, Condition1HoldsByBruteForce) {
  const auto& p = GetParam();
  Rng rng(2024 + p.m * 7 + p.s);
  const Throughputs c = make_throughputs(rng);
  const auto scheme = make_scheme(p.kind, c, 2 * p.m, p.s, rng);
  const std::size_t s_eff = scheme->stragglers_tolerated();
  EXPECT_TRUE(satisfies_condition1(scheme->coding_matrix(), s_eff));
}

TEST_P(SchemeProperties, EveryPatternYieldsExactCoefficients) {
  const auto& p = GetParam();
  Rng rng(4048 + p.m * 11 + p.s);
  const Throughputs c = make_throughputs(rng);
  const auto scheme = make_scheme(p.kind, c, 2 * p.m, p.s, rng);
  const std::size_t m = scheme->num_workers();
  const std::size_t s_eff = scheme->stragglers_tolerated();

  const bool ok = for_each_straggler_pattern(
      m, s_eff, [&](const StragglerSet& pattern) {
        std::vector<bool> received(m, true);
        for (WorkerId w : pattern) received[w] = false;
        for (std::size_t w = 0; w < m; ++w)
          if (scheme->load(w) == 0) received[w] = false;
        const auto a = scheme->decoding_coefficients(received);
        if (!a) return false;
        // supp(a) ⊆ received.
        for (std::size_t w = 0; w < m; ++w)
          if (!received[w] && (*a)[w] != 0.0) return false;
        const Vector ab = scheme->coding_matrix().apply_transpose(*a);
        for (double v : ab)
          if (std::abs(v - 1.0) > 1e-6) return false;
        return true;
      });
  EXPECT_TRUE(ok);
}

TEST_P(SchemeProperties, WorstCaseTimeRespectsTheorem5Bound) {
  const auto& p = GetParam();
  Rng rng(6072 + p.m * 13 + p.s);
  const Throughputs c = make_throughputs(rng);
  const std::size_t k = 2 * p.m;
  const auto scheme = make_scheme(p.kind, c, k, p.s, rng);
  const auto t = worst_case_time(*scheme, c);
  ASSERT_TRUE(t.has_value());
  // No s-tolerant scheme can beat (s+1)k'/Σc on its own partition count k'.
  const double bound =
      optimal_time_bound(c, scheme->num_partitions(),
                         scheme->stragglers_tolerated());
  EXPECT_GE(*t, bound - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchemeProperties,
    ::testing::Values(
        PropertyCase{SchemeKind::kNaive, 5, 0, 4.0},
        PropertyCase{SchemeKind::kNaive, 8, 0, 8.0},
        PropertyCase{SchemeKind::kCyclic, 5, 1, 4.0},
        PropertyCase{SchemeKind::kCyclic, 6, 2, 6.0},
        PropertyCase{SchemeKind::kCyclic, 8, 3, 8.0},
        PropertyCase{SchemeKind::kFractionalRepetition, 6, 1, 4.0},
        PropertyCase{SchemeKind::kFractionalRepetition, 6, 2, 6.0},
        PropertyCase{SchemeKind::kFractionalRepetition, 8, 3, 8.0},
        PropertyCase{SchemeKind::kHeterAware, 5, 1, 4.0},
        PropertyCase{SchemeKind::kHeterAware, 6, 2, 6.0},
        PropertyCase{SchemeKind::kHeterAware, 7, 1, 1.0},
        PropertyCase{SchemeKind::kHeterAware, 8, 3, 8.0},
        PropertyCase{SchemeKind::kGroupBased, 5, 1, 4.0},
        PropertyCase{SchemeKind::kGroupBased, 6, 2, 6.0},
        PropertyCase{SchemeKind::kGroupBased, 7, 1, 1.0},
        PropertyCase{SchemeKind::kGroupBased, 8, 3, 8.0}),
    case_name);

// Theorem 5 comparison: under heterogeneity, the heter-aware worst case is
// never worse than cyclic's on the same cluster and tolerance (both measured
// in dataset fractions: load/k / c).
class SchemeOrdering
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SchemeOrdering, HeterNeverWorseThanCyclic) {
  const auto [m, s] = GetParam();
  Rng rng(8096 + m * 17 + s);
  for (int trial = 0; trial < 5; ++trial) {
    Throughputs c(m);
    for (double& x : c) x = rng.uniform(1.0, 8.0);
    const auto heter = make_scheme(SchemeKind::kHeterAware, c, 4 * m, s, rng);
    const auto cyclic = make_scheme(SchemeKind::kCyclic, c, m, s, rng);
    const auto t_heter = worst_case_time(*heter, c);
    const auto t_cyclic = worst_case_time(*cyclic, c);
    ASSERT_TRUE(t_heter.has_value());
    ASSERT_TRUE(t_cyclic.has_value());
    // Normalize to dataset fractions (schemes use different k).
    const double f_heter =
        *t_heter / static_cast<double>(heter->num_partitions());
    const double f_cyclic =
        *t_cyclic / static_cast<double>(cyclic->num_partitions());
    // Allow the one-partition rounding slack on heter's side.
    double slack = 0.0;
    for (double x : c)
      slack = std::max(
          slack, 1.0 / (x * static_cast<double>(heter->num_partitions())));
    EXPECT_LE(f_heter, f_cyclic + slack + 1e-9)
        << "m=" << m << " s=" << s << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, SchemeOrdering,
                         ::testing::Combine(::testing::Values(5, 6, 8, 10),
                                            ::testing::Values(1, 2)),
                         [](const auto& test_info) {
                           return "m" +
                                  std::to_string(std::get<0>(test_info.param)) +
                                  "_s" +
                                  std::to_string(std::get<1>(test_info.param));
                         });

}  // namespace
}  // namespace hgc
