// Tests for Algorithm 2: FindAllGroups (exact covers) and PruneGroups.
#include <gtest/gtest.h>

#include "core/allocation.hpp"
#include "core/groups.hpp"
#include "util/rng.hpp"

namespace hgc {
namespace {

TEST(FindAllGroups, PaperExample1Groups) {
  // Example 1 allocation: W0:{0} W1:{1,2} W2:{3,4,5} W3:{0,1,2,6}
  // W4:{3,4,5,6}. Exact covers: {W0,W1,W4} and {W2,W3}.
  const auto assignment =
      cyclic_assignment(std::vector<std::size_t>{1, 2, 3, 4, 4}, 7);
  const auto groups = find_all_groups(assignment, 7);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (Group{0, 1, 4}));
  EXPECT_EQ(groups[1], (Group{2, 3}));
  EXPECT_TRUE(is_exact_cover(assignment, 7, groups[0]));
  EXPECT_TRUE(is_exact_cover(assignment, 7, groups[1]));
}

TEST(FindAllGroups, SingleWorkerHoldingEverything) {
  const Assignment assignment = {{0, 1, 2}, {0}, {1, 2}};
  const auto groups = find_all_groups(assignment, 3);
  // {W0} alone and {W1, W2} are both exact covers.
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (Group{0}));
  EXPECT_EQ(groups[1], (Group{1, 2}));
}

TEST(FindAllGroups, NoGroupsWhenNothingTiles) {
  // Overlapping supports that can never partition D exactly.
  const Assignment assignment = {{0, 1}, {1, 2}, {0, 2}};
  EXPECT_TRUE(find_all_groups(assignment, 3).empty());
}

TEST(FindAllGroups, IgnoresEmptyWorkers) {
  const Assignment assignment = {{}, {0}, {1}, {}};
  const auto groups = find_all_groups(assignment, 2);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (Group{1, 2}));
}

TEST(FindAllGroups, EnumeratesEachCoverOnce) {
  // Two disjoint tilings sharing no structure: {0},{1} and {0,1}.
  const Assignment assignment = {{0}, {1}, {0, 1}};
  const auto groups = find_all_groups(assignment, 2);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (Group{0, 1}));
  EXPECT_EQ(groups[1], (Group{2}));
}

TEST(FindAllGroups, RespectsSolutionCap) {
  // Every pair {i, i+5} tiles; many covers exist. Cap at 3.
  Assignment assignment;
  for (int i = 0; i < 5; ++i) assignment.push_back({0});
  for (int i = 0; i < 5; ++i) assignment.push_back({1});
  GroupSearchLimits limits;
  limits.max_groups = 3;
  const auto groups = find_all_groups(assignment, 2, limits);
  EXPECT_EQ(groups.size(), 3u);
}

TEST(FindAllGroups, WorksBeyond64Partitions) {
  // 130 partitions (>2 words in the bitmask): two complementary halves.
  const std::size_t k = 130;
  Assignment assignment(2);
  for (std::size_t p = 0; p < k; ++p)
    assignment[p % 2].push_back(p);
  const auto groups = find_all_groups(assignment, k);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (Group{0, 1}));
}

TEST(PruneGroups, AlreadyDisjointUntouched) {
  std::vector<Group> groups = {{0, 1}, {2, 3}};
  const auto pruned = prune_groups(groups);
  EXPECT_EQ(pruned, groups);
  EXPECT_TRUE(are_disjoint(pruned));
}

TEST(PruneGroups, RemovesMostConflictingGroup) {
  // Group {0,1,2} intersects both {0,3} and {1,4}; they don't intersect
  // each other, so pruning drops the big one.
  const std::vector<Group> groups = {{0, 1, 2}, {0, 3}, {1, 4}};
  const auto pruned = prune_groups(groups);
  ASSERT_EQ(pruned.size(), 2u);
  EXPECT_TRUE(are_disjoint(pruned));
  EXPECT_EQ(pruned[0], (Group{0, 3}));
  EXPECT_EQ(pruned[1], (Group{1, 4}));
}

TEST(PruneGroups, ChainConflictKeepsMaximalSet) {
  // a-{0,1}, b-{1,2}, c-{2,3}: b conflicts with both; pruning b leaves two
  // disjoint groups.
  const std::vector<Group> groups = {{0, 1}, {1, 2}, {2, 3}};
  const auto pruned = prune_groups(groups);
  ASSERT_EQ(pruned.size(), 2u);
  EXPECT_TRUE(are_disjoint(pruned));
}

TEST(PruneGroups, EmptyInput) {
  EXPECT_TRUE(prune_groups({}).empty());
}

TEST(AreDisjoint, DetectsSharedWorker) {
  EXPECT_FALSE(are_disjoint({{0, 1}, {1, 2}}));
  EXPECT_TRUE(are_disjoint({{0, 1}, {2, 3}}));
  EXPECT_TRUE(are_disjoint({}));
}

TEST(IsExactCover, RejectsOverAndUnderCoverage) {
  const Assignment assignment = {{0, 1}, {1}, {}};
  EXPECT_FALSE(is_exact_cover(assignment, 2, Group{0, 1}));  // 1 twice
  EXPECT_FALSE(is_exact_cover(assignment, 2, Group{1}));     // 0 missing
  EXPECT_TRUE(is_exact_cover(assignment, 2, Group{0}));
}

TEST(IsExactCover, RejectsOutOfRangeIds) {
  const Assignment assignment = {{0}};
  EXPECT_FALSE(is_exact_cover(assignment, 1, Group{5}));
}

// Property: on allocator-produced supports, every found group is an exact
// cover, and pruning always yields pairwise-disjoint groups.
class GroupSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(GroupSweep, FoundGroupsAreCoversAndPruneDisjoint) {
  const auto [m, s] = GetParam();
  Rng rng(700 + m * 13 + s);
  const std::size_t k = 2 * m;
  for (int trial = 0; trial < 10; ++trial) {
    Throughputs c(m);
    for (double& x : c) x = rng.uniform(1.0, 8.0);
    const auto assignment = cyclic_assignment(heter_aware_counts(c, k, s), k);
    const auto groups = find_all_groups(assignment, k);
    for (const Group& g : groups)
      EXPECT_TRUE(is_exact_cover(assignment, k, g));
    const auto pruned = prune_groups(groups);
    EXPECT_TRUE(are_disjoint(pruned));
    EXPECT_LE(pruned.size(), s + 1);  // ≤ replication factor
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, GroupSweep,
                         ::testing::Combine(::testing::Values(4, 6, 8, 12, 16),
                                            ::testing::Values(1, 2, 3)),
                         [](const auto& test_info) {
                           return "m" + std::to_string(std::get<0>(test_info.param)) +
                                  "_s" + std::to_string(std::get<1>(test_info.param));
                         });

}  // namespace
}  // namespace hgc
