// Tests for the ML substrate: datasets, models (gradients checked against
// finite differences), SGD, and the partition-sum property gradient coding
// rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ml/dataset.hpp"
#include "ml/gradient.hpp"
#include "ml/model.hpp"
#include "ml/sgd.hpp"

namespace hgc {
namespace {

Dataset tiny_dataset(Rng& rng, std::size_t n = 40, std::size_t dim = 5,
                     std::size_t classes = 3) {
  return make_gaussian_classification(n, dim, classes, 2.0, rng);
}

TEST(Dataset, ShapesAndLabels) {
  Rng rng(81);
  const Dataset ds = make_gaussian_classification(100, 8, 4, 2.0, rng);
  EXPECT_EQ(ds.size(), 100u);
  EXPECT_EQ(ds.dim(), 8u);
  EXPECT_EQ(ds.num_classes, 4u);
  for (int label : ds.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
}

TEST(Dataset, BalancedClasses) {
  Rng rng(82);
  const Dataset ds = make_gaussian_classification(40, 4, 4, 2.0, rng);
  std::vector<int> counts(4, 0);
  for (int label : ds.labels) ++counts[static_cast<std::size_t>(label)];
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(Dataset, SyntheticCifarShape) {
  Rng rng(83);
  const Dataset ds = make_synthetic_cifar10(50, rng);
  EXPECT_EQ(ds.num_classes, 10u);
  EXPECT_EQ(ds.dim(), 64u);
}

TEST(Dataset, SeparableEnoughToLearn) {
  Rng rng(84);
  const Dataset ds = make_gaussian_classification(200, 6, 2, 3.0, rng);
  SoftmaxRegression model(6, 2);
  Vector params = model.init_params(rng);
  SgdOptimizer opt({.learning_rate = 0.5}, params.size());
  const double initial = mean_loss(model, ds, params);
  for (int i = 0; i < 50; ++i) {
    Vector grad = full_gradient(model, ds, params);
    scale(1.0 / static_cast<double>(ds.size()), grad);
    opt.step(params, grad);
  }
  EXPECT_LT(mean_loss(model, ds, params), 0.5 * initial);
  EXPECT_GT(model.accuracy(ds, all_rows(ds.size()), params), 0.9);
}

TEST(PartitionRows, CoversEverythingOnce) {
  const auto parts = partition_rows(10, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].size(), 4u);  // 10 = 4 + 3 + 3
  EXPECT_EQ(parts[1].size(), 3u);
  EXPECT_EQ(parts[2].size(), 3u);
  std::vector<bool> seen(10, false);
  for (const auto& part : parts)
    for (std::size_t row : part) {
      EXPECT_FALSE(seen[row]);
      seen[row] = true;
    }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(PartitionRows, RejectsMorePartsThanRows) {
  EXPECT_THROW(partition_rows(2, 3), std::invalid_argument);
}

TEST(SoftmaxCrossEntropy, KnownValues) {
  Vector logits = {0.0, 0.0};
  Vector grad(2);
  const double loss = softmax_cross_entropy(logits, 0, grad);
  EXPECT_NEAR(loss, std::log(2.0), 1e-12);
  EXPECT_NEAR(grad[0], -0.5, 1e-12);
  EXPECT_NEAR(grad[1], 0.5, 1e-12);
}

TEST(SoftmaxCrossEntropy, StableUnderHugeLogits) {
  Vector logits = {1000.0, -1000.0};
  Vector grad(2);
  const double loss = softmax_cross_entropy(logits, 0, grad);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0, 1e-9);
}

TEST(SoftmaxRegression, GradientMatchesFiniteDifferences) {
  Rng rng(85);
  const Dataset ds = tiny_dataset(rng, 12, 4, 3);
  SoftmaxRegression model(4, 3);
  const Vector params = model.init_params(rng);
  const auto rows = all_rows(ds.size());
  const Vector analytic = partition_gradient(model, ds, rows, params);
  const Vector numeric = numeric_gradient(model, ds, rows, params);
  ASSERT_EQ(analytic.size(), numeric.size());
  for (std::size_t i = 0; i < analytic.size(); ++i)
    EXPECT_NEAR(analytic[i], numeric[i], 1e-5) << "param " << i;
}

TEST(Mlp, GradientMatchesFiniteDifferences) {
  Rng rng(86);
  const Dataset ds = tiny_dataset(rng, 10, 4, 3);
  Mlp model(4, 6, 3);
  const Vector params = model.init_params(rng);
  const auto rows = all_rows(ds.size());
  const Vector analytic = partition_gradient(model, ds, rows, params);
  const Vector numeric = numeric_gradient(model, ds, rows, params);
  for (std::size_t i = 0; i < analytic.size(); ++i)
    EXPECT_NEAR(analytic[i], numeric[i], 1e-4) << "param " << i;
}

TEST(Mlp, ParameterCount) {
  Mlp model(10, 16, 4);
  EXPECT_EQ(model.num_params(), 10u * 16 + 16 + 16 * 4 + 4);
}

TEST(Models, PartitionGradientsSumToFullGradient) {
  // The algebraic foundation of gradient coding: g = Σ_i g_i.
  Rng rng(87);
  const Dataset ds = tiny_dataset(rng, 30, 5, 3);
  for (const bool use_mlp : {false, true}) {
    std::unique_ptr<Model> model;
    if (use_mlp)
      model = std::make_unique<Mlp>(5, 8, 3);
    else
      model = std::make_unique<SoftmaxRegression>(5, 3);
    const Vector params = model->init_params(rng);
    const auto partitions = partition_rows(ds.size(), 7);
    const auto grads = all_partition_gradients(*model, ds, partitions, params);
    Vector sum(model->num_params(), 0.0);
    for (const Vector& g : grads) axpy(1.0, g, sum);
    const Vector full = full_gradient(*model, ds, params);
    for (std::size_t i = 0; i < sum.size(); ++i)
      EXPECT_NEAR(sum[i], full[i], 1e-9);
  }
}

TEST(Models, LossConsistentWithLossAndGradient) {
  Rng rng(88);
  const Dataset ds = tiny_dataset(rng);
  SoftmaxRegression model(5, 3);
  const Vector params = model.init_params(rng);
  const auto rows = all_rows(ds.size());
  Vector grad(model.num_params(), 0.0);
  const double with_grad = model.loss_and_gradient(ds, rows, params, grad);
  EXPECT_NEAR(with_grad, model.loss(ds, rows, params), 1e-12);
}

TEST(Sgd, PlainStep) {
  SgdOptimizer opt({.learning_rate = 0.1}, 2);
  Vector params = {1.0, 2.0};
  const Vector grad = {1.0, -1.0};
  opt.step(params, grad);
  EXPECT_NEAR(params[0], 0.9, 1e-12);
  EXPECT_NEAR(params[1], 2.1, 1e-12);
}

TEST(Sgd, MomentumAccumulates) {
  SgdOptimizer opt({.learning_rate = 1.0, .momentum = 0.5}, 1);
  Vector params = {0.0};
  const Vector grad = {1.0};
  opt.step(params, grad);  // v=1,     p=-1
  opt.step(params, grad);  // v=1.5,   p=-2.5
  EXPECT_NEAR(params[0], -2.5, 1e-12);
  opt.reset();
  opt.step(params, grad);  // v=1, p=-3.5
  EXPECT_NEAR(params[0], -3.5, 1e-12);
}

TEST(Sgd, WeightDecayShrinksParams) {
  SgdOptimizer opt({.learning_rate = 0.1, .weight_decay = 1.0}, 1);
  Vector params = {1.0};
  const Vector zero_grad = {0.0};
  opt.step(params, zero_grad);
  EXPECT_NEAR(params[0], 0.9, 1e-12);
}

TEST(Sgd, RejectsBadHyperparameters) {
  EXPECT_THROW(SgdOptimizer({.learning_rate = 0.0}, 1),
               std::invalid_argument);
  EXPECT_THROW(SgdOptimizer({.learning_rate = 0.1, .momentum = 1.0}, 1),
               std::invalid_argument);
  EXPECT_THROW(
      SgdOptimizer({.learning_rate = 0.1, .weight_decay = -0.1}, 1),
      std::invalid_argument);
}

TEST(LinearRegression, GradientMatchesFiniteDifferences) {
  Rng rng(91);
  const Dataset ds = tiny_dataset(rng, 15, 4, 3);
  LinearRegression model(4);
  const Vector params = model.init_params(rng);
  const auto rows = all_rows(ds.size());
  const Vector analytic = partition_gradient(model, ds, rows, params);
  const Vector numeric = numeric_gradient(model, ds, rows, params);
  for (std::size_t i = 0; i < analytic.size(); ++i)
    EXPECT_NEAR(analytic[i], numeric[i], 1e-5) << "param " << i;
}

TEST(LinearRegression, PartitionGradientsSumToFull) {
  Rng rng(92);
  const Dataset ds = tiny_dataset(rng, 24, 4, 3);
  LinearRegression model(4);
  const Vector params = model.init_params(rng);
  const auto partitions = partition_rows(ds.size(), 6);
  const auto grads = all_partition_gradients(model, ds, partitions, params);
  Vector sum(model.num_params(), 0.0);
  for (const Vector& g : grads) axpy(1.0, g, sum);
  const Vector full = full_gradient(model, ds, params);
  for (std::size_t i = 0; i < sum.size(); ++i)
    EXPECT_NEAR(sum[i], full[i], 1e-9);
}

TEST(LinearRegression, FitsLinearTargets) {
  // Exact linear targets: gradient descent drives the loss toward zero.
  Rng rng(93);
  Dataset ds;
  ds.features = Matrix(60, 3);
  ds.labels.resize(60);
  ds.num_classes = 10;
  const Vector w_true = {1.0, -2.0, 0.5};
  for (std::size_t i = 0; i < 60; ++i) {
    for (std::size_t j = 0; j < 3; ++j) ds.features(i, j) = rng.normal();
    const double y = dot(w_true, ds.features.row(i)) + 3.0;
    ds.labels[i] = static_cast<int>(std::lround(std::clamp(y, 0.0, 9.0)));
  }
  LinearRegression model(3);
  Vector params = model.init_params(rng);
  SgdOptimizer opt({.learning_rate = 0.05}, params.size());
  const double initial = mean_loss(model, ds, params);
  for (int i = 0; i < 200; ++i) {
    Vector grad = full_gradient(model, ds, params);
    scale(1.0 / 60.0, grad);
    opt.step(params, grad);
  }
  EXPECT_LT(mean_loss(model, ds, params), 0.3 * initial);
}

TEST(Models, AccuracyBoundsAndEmptyRows) {
  Rng rng(89);
  const Dataset ds = tiny_dataset(rng);
  SoftmaxRegression model(5, 3);
  const Vector params = model.init_params(rng);
  const double acc = model.accuracy(ds, all_rows(ds.size()), params);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
  EXPECT_DOUBLE_EQ(model.accuracy(ds, {}, params), 0.0);
}

TEST(Models, RejectsWrongParameterSize) {
  Rng rng(90);
  const Dataset ds = tiny_dataset(rng);
  SoftmaxRegression model(5, 3);
  Vector bad(3, 0.0);
  Vector grad(model.num_params(), 0.0);
  EXPECT_THROW(
      model.loss_and_gradient(ds, all_rows(ds.size()), bad, grad),
      std::invalid_argument);
}

}  // namespace
}  // namespace hgc
