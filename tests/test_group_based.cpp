// Tests for the group-based scheme (Alg. 3): Theorem 6 robustness, the three
// decoding paths, and the early-decode advantage over heter-aware.
#include <gtest/gtest.h>

#include "core/group_based.hpp"
#include "core/heter_aware.hpp"
#include "core/robustness.hpp"
#include "util/rng.hpp"

namespace hgc {
namespace {

TEST(GroupBased, PaperExampleFindsTwoGroups) {
  Rng rng(41);
  GroupBasedScheme scheme({1, 2, 3, 4, 4}, 7, 1, rng);
  ASSERT_EQ(scheme.groups().size(), 2u);
  EXPECT_EQ(scheme.groups()[0], (Group{0, 1, 4}));
  EXPECT_EQ(scheme.groups()[1], (Group{2, 3}));
  // P = s + 1 = 2: every worker is in a group, no residual sub-code.
  EXPECT_TRUE(scheme.sub_code().empty());
  // Group rows are all-ones on their supports.
  for (const Group& g : scheme.groups())
    for (WorkerId w : g)
      for (PartitionId p : scheme.assignment()[w])
        EXPECT_DOUBLE_EQ(scheme.coding_matrix()(w, p), 1.0);
}

TEST(GroupBased, SatisfiesCondition1) {
  Rng rng(42);
  GroupBasedScheme scheme({1, 2, 3, 4, 4}, 7, 1, rng);
  EXPECT_TRUE(satisfies_condition1(scheme.coding_matrix(), 1));
}

TEST(GroupBased, DecodesFromSingleCompleteGroup) {
  Rng rng(43);
  GroupBasedScheme scheme({1, 2, 3, 4, 4}, 7, 1, rng);
  // Only group {2,3} has arrived — 2 of 5 results suffice.
  std::vector<bool> received = {false, false, true, true, false};
  const auto a = scheme.decoding_coefficients(received);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, (Vector{0, 0, 1, 1, 0}));
  const Vector ab = scheme.coding_matrix().apply_transpose(*a);
  for (double v : ab) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(GroupBased, MinResultsIsSmallestGroup) {
  Rng rng(44);
  GroupBasedScheme scheme({1, 2, 3, 4, 4}, 7, 1, rng);
  EXPECT_EQ(scheme.min_results_required(), 2u);  // group {2,3}
}

TEST(GroupBased, EveryStragglerPatternDecodes) {
  Rng rng(45);
  GroupBasedScheme scheme({1, 2, 3, 4, 4}, 7, 1, rng);
  for (std::size_t straggler = 0; straggler < 5; ++straggler) {
    std::vector<bool> received(5, true);
    received[straggler] = false;
    const auto a = scheme.decoding_coefficients(received);
    ASSERT_TRUE(a.has_value()) << "straggler " << straggler;
    EXPECT_DOUBLE_EQ((*a)[straggler], 0.0);
    const Vector ab = scheme.coding_matrix().apply_transpose(*a);
    for (double v : ab) EXPECT_NEAR(v, 1.0, 1e-8);
  }
}

TEST(GroupBased, ResidualSubCodePath) {
  Rng rng(46);
  // Uniform-ish throughputs with k = m and s = 2 typically leave P < s+1,
  // exercising the Alg.1 sub-code branch.
  const Throughputs c = {3, 3, 3, 3, 3, 3};
  GroupBasedScheme scheme(c, 6, 2, rng);
  EXPECT_TRUE(satisfies_condition1(scheme.coding_matrix(), 2));
  const auto t = worst_case_time(scheme, c);
  ASSERT_TRUE(t.has_value());
  if (!scheme.sub_code().empty()) {
    EXPECT_EQ(scheme.sub_code().stragglers_tolerated() + scheme.groups().size(),
              2u);
  }
}

TEST(GroupBased, NoGroupsDegeneratesToHeterAware) {
  Rng rng(47);
  // Throughputs engineered so no exact tiling exists: prime-ish counts.
  const Throughputs c = {3, 5, 7, 9};
  GroupBasedScheme scheme(c, 12, 1, rng);
  // Whether or not groups exist, the scheme must stay robust and optimal-ish.
  EXPECT_TRUE(satisfies_condition1(scheme.coding_matrix(), 1));
  if (scheme.groups().empty()) {
    EXPECT_FALSE(scheme.sub_code().empty());
    EXPECT_EQ(scheme.sub_code().stragglers_tolerated(), 1u);
  }
}

TEST(GroupBased, WorstCaseMatchesHeterAware) {
  Rng rng(48);
  const Throughputs c = {1, 2, 3, 4, 4};
  GroupBasedScheme group(c, 7, 1, rng);
  HeterAwareScheme heter(c, 7, 1, rng);
  const auto tg = worst_case_time(group, c);
  const auto th = worst_case_time(heter, c);
  ASSERT_TRUE(tg.has_value());
  ASSERT_TRUE(th.has_value());
  // Same allocation -> same per-worker times -> same worst case (Theorem 6
  // discussion: group-based is also optimal).
  EXPECT_NEAR(*tg, *th, 1e-12);
}

TEST(GroupBased, EarlyDecodeBeatsHeterAwareUnderNoise) {
  Rng rng(49);
  // When a fast group finishes first, group-based decodes with fewer
  // results than heter-aware's m - s. Simulate a "fast group" arrival order
  // directly: the complete group {2,3} plus nothing else.
  GroupBasedScheme group({1, 2, 3, 4, 4}, 7, 1, rng);
  HeterAwareScheme heter({1, 2, 3, 4, 4}, 7, 1, rng);
  std::vector<bool> received = {false, false, true, true, false};
  EXPECT_TRUE(group.decoding_coefficients(received).has_value());
  EXPECT_FALSE(heter.decoding_coefficients(received).has_value());
}

// Sweep: robustness + exact decode for all patterns across configurations.
struct GroupCase {
  std::size_t m, s, k;
};

class GroupBasedSweep : public ::testing::TestWithParam<GroupCase> {};

TEST_P(GroupBasedSweep, RobustToAllPatterns) {
  const auto [m, s, k] = GetParam();
  Rng rng(900 + m * 41 + s * 11 + k);
  for (int trial = 0; trial < 5; ++trial) {
    Throughputs c(m);
    for (double& x : c) x = rng.uniform(1.0, 8.0);
    GroupBasedScheme scheme(c, k, s, rng);
    EXPECT_LE(scheme.groups().size(), s + 1);
    EXPECT_TRUE(are_disjoint(scheme.groups()));

    bool all_ok = for_each_straggler_pattern(
        m, s, [&](const StragglerSet& pattern) {
          std::vector<bool> received(m, true);
          for (WorkerId w : pattern) received[w] = false;
          for (std::size_t w = 0; w < m; ++w)
            if (scheme.load(w) == 0) received[w] = false;
          const auto a = scheme.decoding_coefficients(received);
          if (!a) return false;
          const Vector ab = scheme.coding_matrix().apply_transpose(*a);
          for (double v : ab)
            if (std::abs(v - 1.0) > 1e-6) return false;
          return true;
        });
    EXPECT_TRUE(all_ok) << "m=" << m << " s=" << s << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GroupBasedSweep,
    ::testing::Values(GroupCase{4, 1, 8}, GroupCase{5, 1, 7},
                      GroupCase{5, 2, 10}, GroupCase{6, 1, 12},
                      GroupCase{6, 2, 6}, GroupCase{7, 2, 14},
                      GroupCase{8, 1, 16}, GroupCase{8, 3, 8},
                      GroupCase{10, 2, 20}),
    [](const auto& test_info) {
      return "m" + std::to_string(test_info.param.m) + "_s" +
             std::to_string(test_info.param.s) + "_k" + std::to_string(test_info.param.k);
    });

}  // namespace
}  // namespace hgc
