// Tests for the wire format, the simulated network, and end-to-end coded
// rounds over a lossy network.
#include <gtest/gtest.h>

#include <cmath>

#include "core/scheme_factory.hpp"
#include "net/coded_round.hpp"
#include "net/network.hpp"
#include "net/wire.hpp"

namespace hgc {
namespace {

GradientMessage sample_message() {
  GradientMessage message;
  message.worker = 3;
  message.iteration = 17;
  message.payload = {1.5, -2.25, 0.0, 1e-300, -1e300};
  return message;
}

TEST(Wire, RoundTrip) {
  const GradientMessage original = sample_message();
  const auto frame = encode_message(original);
  EXPECT_EQ(frame.size(), frame_size(original.payload.size()));
  const GradientMessage decoded = decode_message(frame);
  EXPECT_EQ(decoded, original);
}

TEST(Wire, EmptyPayloadRoundTrip) {
  GradientMessage message;
  message.worker = 0;
  message.iteration = 0;
  const auto frame = encode_message(message);
  EXPECT_EQ(decode_message(frame), message);
}

TEST(Wire, SpecialDoublesSurvive) {
  GradientMessage message;
  message.payload = {std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity(),
                     std::numeric_limits<double>::denorm_min()};
  const auto decoded = decode_message(encode_message(message));
  EXPECT_EQ(decoded.payload[0], message.payload[0]);
  EXPECT_EQ(decoded.payload[1], message.payload[1]);
  EXPECT_EQ(decoded.payload[2], message.payload[2]);
}

TEST(Wire, DetectsCorruptionAnywhere) {
  const auto frame = encode_message(sample_message());
  for (std::size_t i = 0; i < frame.size(); i += 7) {
    auto corrupted = frame;
    corrupted[i] ^= std::byte{0x01};
    EXPECT_THROW(decode_message(corrupted), WireError) << "byte " << i;
  }
}

TEST(Wire, DetectsTruncation) {
  const auto frame = encode_message(sample_message());
  for (std::size_t keep : {std::size_t{0}, std::size_t{3}, frame.size() - 1})
    EXPECT_THROW(
        decode_message(std::span<const std::byte>(frame.data(), keep)),
        WireError);
}

TEST(Wire, DetectsTrailingGarbage) {
  auto frame = encode_message(sample_message());
  frame.push_back(std::byte{0});
  EXPECT_THROW(decode_message(frame), WireError);
}

TEST(Wire, Crc32KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (IEEE reference vector).
  const char* text = "123456789";
  std::vector<std::byte> bytes;
  for (const char* p = text; *p; ++p)
    bytes.push_back(static_cast<std::byte>(*p));
  EXPECT_EQ(crc32(bytes), 0xCBF43926u);
}

TEST(Wire, GoldenFrameStability) {
  // The first bytes are fixed by the format: magic "HGC1" little-endian,
  // version 1. A change here breaks cross-version compatibility.
  const auto frame = encode_message(sample_message());
  EXPECT_EQ(static_cast<unsigned>(frame[0]), 0x31u);  // '1'
  EXPECT_EQ(static_cast<unsigned>(frame[1]), 0x43u);  // 'C'
  EXPECT_EQ(static_cast<unsigned>(frame[2]), 0x47u);  // 'G'
  EXPECT_EQ(static_cast<unsigned>(frame[3]), 0x48u);  // 'H'
  EXPECT_EQ(static_cast<unsigned>(frame[4]), 0x01u);  // version lo
  EXPECT_EQ(static_cast<unsigned>(frame[5]), 0x00u);  // version hi
}

TEST(Network, LatencyAndBandwidthMath) {
  SimulatedNetwork net(3, {0.01, 1000.0, 0.0}, Rng(1));
  const auto arrival = net.transmit(0, 2, 500, 2.0);
  ASSERT_TRUE(arrival.has_value());
  EXPECT_NEAR(*arrival, 2.0 + 0.01 + 0.5, 1e-12);
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.bytes_sent(), 500u);
}

TEST(Network, PerLinkOverride) {
  SimulatedNetwork net(2, {0.0, 1e9, 0.0}, Rng(2));
  net.set_link(0, 1, {0.5, 1e9, 0.0});
  EXPECT_NEAR(*net.transmit(0, 1, 0, 0.0), 0.5, 1e-12);
  EXPECT_NEAR(*net.transmit(1, 0, 0, 0.0), 0.0, 1e-12);  // default kept
}

TEST(Network, DropRateApproximatesProbability) {
  SimulatedNetwork net(2, {0.0, 1e9, 0.3}, Rng(3));
  for (int i = 0; i < 2000; ++i) net.transmit(0, 1, 10, 0.0);
  const double rate = static_cast<double>(net.messages_dropped()) / 2000.0;
  EXPECT_NEAR(rate, 0.3, 0.05);
}

TEST(Network, RejectsInvalidParameters) {
  EXPECT_THROW(SimulatedNetwork(0, {}, Rng(4)), std::invalid_argument);
  EXPECT_THROW(SimulatedNetwork(2, {-1.0, 1.0, 0.0}, Rng(4)),
               std::invalid_argument);
  SimulatedNetwork net(2, {}, Rng(4));
  EXPECT_THROW(net.set_link(0, 1, {0.0, 0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(net.transmit(0, 5, 1, 0.0), std::invalid_argument);
}

class CodedRoundTest : public ::testing::Test {
 protected:
  CodedRoundTest()
      : cluster_(cluster_a()),
        rng_(161),
        scheme_(make_scheme(SchemeKind::kHeterAware, cluster_.throughputs(),
                            24, 1, rng_)) {
    grads_.resize(24);
    expected_.assign(4, 0.0);
    for (std::size_t p = 0; p < 24; ++p) {
      grads_[p] = {double(p), 1.0, -0.5 * double(p), 2.0};
      axpy(1.0, grads_[p], expected_);
    }
    conditions_.speed_factor.assign(8, 1.0);
    conditions_.delay.assign(8, 0.0);
    conditions_.faulted.assign(8, false);
  }

  Cluster cluster_;
  Rng rng_;
  std::unique_ptr<CodingScheme> scheme_;
  std::vector<Vector> grads_;
  Vector expected_;
  IterationConditions conditions_;
};

TEST_F(CodedRoundTest, LosslessRoundRecoversExactAggregate) {
  SimulatedNetwork net(9, {0.001, 1e9, 0.0}, Rng(5));
  const auto result =
      run_coded_round(*scheme_, cluster_, conditions_, grads_, net);
  ASSERT_TRUE(result.decoded);
  ASSERT_EQ(result.aggregate.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(result.aggregate[i], expected_[i], 1e-8);
  EXPECT_EQ(result.dropped, 0u);
}

TEST_F(CodedRoundTest, SurvivesOneDroppedMessage) {
  // Deterministically drop the fastest worker's link.
  SimulatedNetwork net(9, {0.001, 1e9, 0.0}, Rng(6));
  net.set_link(7, 8, {0.001, 1e9, 1.0});
  const auto result =
      run_coded_round(*scheme_, cluster_, conditions_, grads_, net);
  ASSERT_TRUE(result.decoded);
  EXPECT_EQ(result.dropped, 1u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(result.aggregate[i], expected_[i], 1e-8);
}

TEST_F(CodedRoundTest, FailsBeyondTolerance) {
  SimulatedNetwork net(9, {0.001, 1e9, 0.0}, Rng(7));
  net.set_link(6, 8, {0.001, 1e9, 1.0});
  net.set_link(7, 8, {0.001, 1e9, 1.0});
  const auto result =
      run_coded_round(*scheme_, cluster_, conditions_, grads_, net);
  EXPECT_FALSE(result.decoded);
  EXPECT_EQ(result.dropped, 2u);
}

TEST_F(CodedRoundTest, FaultAndDropCombine) {
  conditions_.faulted[0] = true;  // one fault
  SimulatedNetwork net(9, {0.001, 1e9, 0.0}, Rng(8));
  net.set_link(5, 8, {0.001, 1e9, 1.0});  // plus one drop: 2 > s = 1
  const auto result =
      run_coded_round(*scheme_, cluster_, conditions_, grads_, net);
  EXPECT_FALSE(result.decoded);
}

TEST_F(CodedRoundTest, SlowLinkDelaysDecode) {
  SimulatedNetwork fast(9, {0.0, 1e9, 0.0}, Rng(9));
  const auto quick =
      run_coded_round(*scheme_, cluster_, conditions_, grads_, fast);
  SimulatedNetwork slow(9, {0.05, 1e9, 0.0}, Rng(9));
  const auto delayed =
      run_coded_round(*scheme_, cluster_, conditions_, grads_, slow);
  ASSERT_TRUE(quick.decoded);
  ASSERT_TRUE(delayed.decoded);
  EXPECT_NEAR(delayed.time - quick.time, 0.05, 1e-9);
}

TEST_F(CodedRoundTest, RequiresMasterNode) {
  SimulatedNetwork too_small(8, {}, Rng(10));
  EXPECT_THROW(
      run_coded_round(*scheme_, cluster_, conditions_, grads_, too_small),
      std::invalid_argument);
}

}  // namespace
}  // namespace hgc
