// Tests for the heter-aware scheme: Theorem 4 (robustness), Theorem 5
// (optimality), and decode exactness under every pattern.
#include <gtest/gtest.h>

#include "core/heter_aware.hpp"
#include "core/robustness.hpp"
#include "util/rng.hpp"

namespace hgc {
namespace {

TEST(HeterAware, PaperExampleLoads) {
  Rng rng(31);
  HeterAwareScheme scheme({1, 2, 3, 4, 4}, 7, 1, rng);
  EXPECT_EQ(scheme.load(0), 1u);
  EXPECT_EQ(scheme.load(1), 2u);
  EXPECT_EQ(scheme.load(2), 3u);
  EXPECT_EQ(scheme.load(3), 4u);
  EXPECT_EQ(scheme.load(4), 4u);
}

TEST(HeterAware, SatisfiesCondition1) {
  Rng rng(32);
  HeterAwareScheme scheme({1, 2, 3, 4, 4}, 7, 1, rng);
  EXPECT_TRUE(satisfies_condition1(scheme.coding_matrix(), 1));
}

TEST(HeterAware, AchievesTheorem5Optimum) {
  Rng rng(33);
  // Exactly proportional setup: every worker finishes at the same time, so
  // T(B) equals the lower bound (s+1)k/Σc — in partition units the sim uses
  // load/c directly.
  const Throughputs c = {1, 2, 3, 4, 4};
  HeterAwareScheme scheme(c, 7, 1, rng);
  const auto t = worst_case_time(scheme, c);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, optimal_time_bound(c, 7, 1), 1e-12);
}

TEST(HeterAware, BalancedTimesPerWorker) {
  Rng rng(34);
  const Throughputs c = {2, 4, 6, 8};
  HeterAwareScheme scheme(c, 10, 1, rng);
  // With perfectly proportional counts each t_i = load/c is equal.
  const double t0 =
      static_cast<double>(scheme.load(0)) / c[0];
  for (WorkerId w = 1; w < 4; ++w)
    EXPECT_NEAR(static_cast<double>(scheme.load(w)) / c[w], t0, 1e-12);
}

TEST(HeterAware, MinResultsExcludesIdleWorkers) {
  Rng rng(35);
  // Worker 0 is so slow it gets zero partitions at this granularity.
  const Throughputs c = {0.01, 10, 10, 10};
  HeterAwareScheme scheme(c, 4, 1, rng);
  EXPECT_EQ(scheme.load(0), 0u);
  // 3 active workers, s = 1 -> 2 results needed.
  EXPECT_EQ(scheme.min_results_required(), 2u);
  std::vector<bool> received = {false, true, true, false};
  const auto a = scheme.decoding_coefficients(received);
  ASSERT_TRUE(a.has_value());
  const Vector ab = scheme.coding_matrix().apply_transpose(*a);
  for (double v : ab) EXPECT_NEAR(v, 1.0, 1e-8);
}

TEST(HeterAware, WorstCaseBeatsCyclicUnderHeterogeneity) {
  Rng rng(36);
  // k = 25 makes Eq. 5 exactly integral (n_i = c_i since Σc = 50 = k(s+1)),
  // so T(B) hits the Theorem 5 bound of 1.0 partition-unit. Cyclic with its
  // k = m = 8 is pinned to the slowest worker: 2 partitions / c_min = 2.0.
  // In dataset fractions: heter 1/25 = 0.04 vs cyclic 2/8 = 0.25 (6.25×).
  const Throughputs c = {1, 1, 4, 4, 8, 8, 12, 12};
  HeterAwareScheme heter(c, 25, 1, rng);
  const auto t_heter = worst_case_time(heter, c);
  ASSERT_TRUE(t_heter.has_value());
  EXPECT_NEAR(*t_heter, optimal_time_bound(c, 25, 1), 1e-9);
  EXPECT_LT(*t_heter / 25.0, 2.0 / 8.0);
}

// Sweep: random throughputs, every straggler pattern up to s, exact decode
// and Condition 1.
struct HeterCase {
  std::size_t m, s, k;
};

class HeterSweep : public ::testing::TestWithParam<HeterCase> {};

TEST_P(HeterSweep, RobustAndOptimal) {
  const auto [m, s, k] = GetParam();
  Rng rng(500 + m * 31 + s * 17 + k);
  for (int trial = 0; trial < 5; ++trial) {
    Throughputs c(m);
    for (double& x : c) x = rng.uniform(1.0, 6.0);
    HeterAwareScheme scheme(c, k, s, rng);
    EXPECT_TRUE(satisfies_condition1(scheme.coding_matrix(), s));

    const auto t = worst_case_time(scheme, c);
    ASSERT_TRUE(t.has_value());
    // Rounding can push T(B) above the continuous bound, but never below,
    // and by at most one partition on the busiest worker.
    const double bound = optimal_time_bound(c, k, s);
    EXPECT_GE(*t, bound - 1e-9);
    double slack = 0.0;
    for (double x : c) slack = std::max(slack, 1.0 / x);
    EXPECT_LE(*t, bound + slack + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HeterSweep,
    ::testing::Values(HeterCase{4, 1, 8}, HeterCase{5, 1, 7},
                      HeterCase{5, 2, 10}, HeterCase{6, 1, 6},
                      HeterCase{6, 2, 12}, HeterCase{7, 1, 14},
                      HeterCase{8, 2, 8}, HeterCase{9, 2, 18}),
    [](const auto& test_info) {
      return "m" + std::to_string(test_info.param.m) + "_s" +
             std::to_string(test_info.param.s) + "_k" + std::to_string(test_info.param.k);
    });

}  // namespace
}  // namespace hgc
