// Tests for the heterogeneity-aware data allocation (Eq. 5/6): proportional
// rounding invariants and cyclic-assignment replication guarantees.
#include <gtest/gtest.h>

#include <numeric>

#include "core/allocation.hpp"
#include "util/rng.hpp"

namespace hgc {
namespace {

TEST(ProportionalCounts, ExactProportionsUntouched) {
  // Paper Example 1: c = [1,2,3,4,4], k=7, s=1 -> n = [1,2,3,4,4].
  const std::vector<double> c = {1, 2, 3, 4, 4};
  const auto n = proportional_counts(c, 14, 7);
  EXPECT_EQ(n, (std::vector<std::size_t>{1, 2, 3, 4, 4}));
}

TEST(ProportionalCounts, SumIsPreserved) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t m = 2 + static_cast<std::size_t>(trial % 9);
    std::vector<double> w(m);
    for (double& x : w) x = rng.uniform(0.1, 10.0);
    const std::size_t cap = 10;
    const std::size_t total =
        static_cast<std::size_t>(rng.uniform_int(1, static_cast<int>(m * cap)));
    const auto counts = proportional_counts(w, total, cap);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::size_t{0}),
              total);
    for (std::size_t n : counts) EXPECT_LE(n, cap);
  }
}

TEST(ProportionalCounts, RespectsCapAndRedistributes) {
  // One dominant weight would take 18 of 20 but is capped at 10.
  const std::vector<double> w = {90.0, 5.0, 5.0};
  const auto counts = proportional_counts(w, 20, 10);
  EXPECT_EQ(counts[0], 10u);
  EXPECT_EQ(counts[1] + counts[2], 10u);
}

TEST(ProportionalCounts, ZeroWeightGetsNothingWhenOthersSuffice) {
  const std::vector<double> w = {0.0, 1.0, 1.0};
  const auto counts = proportional_counts(w, 4, 4);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
}

TEST(ProportionalCounts, MonotoneInWeight) {
  // A strictly larger weight never receives fewer partitions.
  const std::vector<double> w = {1.0, 2.0, 4.0, 8.0};
  const auto counts = proportional_counts(w, 15, 15);
  for (std::size_t i = 1; i < counts.size(); ++i)
    EXPECT_LE(counts[i - 1], counts[i]);
}

TEST(ProportionalCounts, RejectsImpossibleTotal) {
  const std::vector<double> w = {1.0, 1.0};
  EXPECT_THROW(proportional_counts(w, 9, 4), std::invalid_argument);
}

TEST(ProportionalCounts, RejectsAllZeroWeights) {
  const std::vector<double> w = {0.0, 0.0};
  EXPECT_THROW(proportional_counts(w, 2, 2), std::invalid_argument);
}

TEST(ProportionalCounts, RejectsNegativeWeight) {
  const std::vector<double> w = {1.0, -0.5};
  EXPECT_THROW(proportional_counts(w, 2, 2), std::invalid_argument);
}

TEST(HeterAwareCounts, MatchesEquationFive) {
  // c=[2,2,4,8], k=8, s=1: k(s+1)=16, n_i = 16*c_i/16 = c_i.
  const Throughputs c = {2, 2, 4, 8};
  const auto n = heter_aware_counts(c, 8, 1);
  EXPECT_EQ(n, (std::vector<std::size_t>{2, 2, 4, 8}));
}

TEST(HeterAwareCounts, RequiresEnoughWorkers) {
  const Throughputs c = {1.0, 1.0};
  EXPECT_THROW(heter_aware_counts(c, 4, 2), std::invalid_argument);
}

TEST(CyclicAssignment, PaperExampleSupports) {
  // Example 1: n=[1,2,3,4,4], k=7 -> W4 wraps around to {0,1,2,6}.
  const std::vector<std::size_t> counts = {1, 2, 3, 4, 4};
  const auto assignment = cyclic_assignment(counts, 7);
  EXPECT_EQ(assignment[0], (std::vector<PartitionId>{0}));
  EXPECT_EQ(assignment[1], (std::vector<PartitionId>{1, 2}));
  EXPECT_EQ(assignment[2], (std::vector<PartitionId>{3, 4, 5}));
  EXPECT_EQ(assignment[3], (std::vector<PartitionId>{0, 1, 2, 6}));
  EXPECT_EQ(assignment[4], (std::vector<PartitionId>{3, 4, 5, 6}));
}

TEST(CyclicAssignment, RejectsOverfullWorker) {
  const std::vector<std::size_t> counts = {5, 3};
  EXPECT_THROW(cyclic_assignment(counts, 4), std::invalid_argument);
}

TEST(CyclicAssignment, RejectsNonMultipleTotal) {
  const std::vector<std::size_t> counts = {2, 3};
  EXPECT_THROW(cyclic_assignment(counts, 4), std::invalid_argument);
}

TEST(CyclicSchemeAssignment, UniformLoads) {
  const auto assignment = cyclic_scheme_assignment(6, 2);
  ASSERT_EQ(assignment.size(), 6u);
  for (const auto& parts : assignment) EXPECT_EQ(parts.size(), 3u);
  EXPECT_TRUE(is_valid_allocation(assignment, 6, 2));
}

TEST(ReplicationProfile, CountsCopies) {
  const Assignment assignment = {{0, 1}, {1, 0}};
  const auto copies = replication_profile(assignment, 2);
  EXPECT_EQ(copies, (std::vector<std::size_t>{2, 2}));
}

TEST(IsValidAllocation, DetectsDuplicateWithinWorker) {
  const Assignment bad = {{0, 0}, {1, 1}};
  EXPECT_FALSE(is_valid_allocation(bad, 2, 1));
}

TEST(IsValidAllocation, DetectsWrongReplication) {
  const Assignment bad = {{0}, {0}, {1}};
  EXPECT_FALSE(is_valid_allocation(bad, 2, 1));
}

// Property sweep: for a grid of (m, s, k) and random throughputs, the
// end-to-end allocation always replicates every partition exactly s+1 times
// across distinct workers.
struct AllocationCase {
  std::size_t m, s, k;
};

class AllocationSweep : public ::testing::TestWithParam<AllocationCase> {};

TEST_P(AllocationSweep, AlwaysValid) {
  const auto [m, s, k] = GetParam();
  Rng rng(m * 1000 + s * 100 + k);
  for (int trial = 0; trial < 20; ++trial) {
    Throughputs c(m);
    for (double& x : c) x = rng.uniform(0.5, 16.0);
    const auto counts = heter_aware_counts(c, k, s);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::size_t{0}),
              k * (s + 1));
    const auto assignment = cyclic_assignment(counts, k);
    EXPECT_TRUE(is_valid_allocation(assignment, k, s))
        << "m=" << m << " s=" << s << " k=" << k << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllocationSweep,
    ::testing::Values(AllocationCase{3, 1, 3}, AllocationCase{3, 1, 6},
                      AllocationCase{4, 1, 8}, AllocationCase{5, 1, 7},
                      AllocationCase{5, 2, 10}, AllocationCase{6, 2, 6},
                      AllocationCase{7, 2, 14}, AllocationCase{8, 1, 8},
                      AllocationCase{8, 3, 16}, AllocationCase{10, 2, 20},
                      AllocationCase{12, 3, 24}, AllocationCase{16, 4, 32},
                      AllocationCase{32, 2, 64}, AllocationCase{58, 3, 116}),
    [](const auto& test_info) {
      return "m" + std::to_string(test_info.param.m) + "_s" +
             std::to_string(test_info.param.s) + "_k" + std::to_string(test_info.param.k);
    });

}  // namespace
}  // namespace hgc
