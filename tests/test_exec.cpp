// Tests for the parallel sweep runtime: thread pool, grid expansion,
// deterministic execution, result tables, and the grid-spec parser.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "exec/figures.hpp"
#include "exec/sweep.hpp"
#include "exec/thread_pool.hpp"

namespace hgc::exec {
namespace {

std::string csv_of(const ResultTable& table) {
  std::ostringstream os;
  table.to_csv(os);
  return os.str();
}

// --- ThreadPool ---------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, SingleThreadWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, TasksWriteToPreassignedSlots) {
  ThreadPool pool(3);
  std::vector<int> slots(100, 0);
  for (int i = 0; i < 100; ++i)
    pool.submit([&slots, i] { slots[static_cast<std::size_t>(i)] = i + 1; });
  pool.wait_idle();
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(slots[static_cast<std::size_t>(i)], i + 1);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

// --- Grid expansion -----------------------------------------------------

SweepGrid small_grid() {
  SweepGrid grid;
  grid.clusters = {cluster_a()};
  grid.schemes = {SchemeKind::kCyclic, SchemeKind::kHeterAware};
  grid.s_values = {1};
  grid.iterations = 10;
  StragglerAxis none;
  StragglerAxis delayed;
  delayed.delay_factor = 2.0;
  delayed.fluctuation_sigma = 0.02;
  grid.models = {none, delayed};
  grid.seeds = {1, 2};
  return grid;
}

TEST(SweepGrid, ExpandsTheFullCartesianProduct) {
  const SweepGrid grid = small_grid();
  EXPECT_EQ(grid.num_cells(), 2u * 2u * 2u);
  const std::vector<Cell> cells = expand(grid);
  ASSERT_EQ(cells.size(), 8u);
  for (std::size_t i = 0; i < cells.size(); ++i)
    EXPECT_EQ(cells[i].index, i);
}

TEST(SweepGrid, ResolvesExactPartitionCountAndDelays) {
  const SweepGrid grid = small_grid();
  const std::vector<Cell> cells = expand(grid);
  const std::size_t exact = exact_partition_count(grid.clusters[0], 1);
  const double ideal = ideal_iteration_time(grid.clusters[0], 1);
  for (const Cell& cell : cells) {
    EXPECT_EQ(cell.experiment.k, exact);
    EXPECT_EQ(cell.experiment.s, 1u);
  }
  // The delayed model axis resolves its factor against the cluster.
  bool saw_delay = false;
  for (const Cell& cell : cells)
    if (cell.experiment.model.delay_seconds > 0.0) {
      EXPECT_DOUBLE_EQ(cell.experiment.model.delay_seconds, 2.0 * ideal);
      // kMatchS: victim count follows the cell's s.
      EXPECT_EQ(cell.experiment.model.num_stragglers, 1u);
      saw_delay = true;
    }
  EXPECT_TRUE(saw_delay);
}

TEST(SweepGrid, ForkedSeedsAreDistinctAndReproducible) {
  const SweepGrid grid = small_grid();
  const std::vector<Cell> a = expand(grid);
  const std::vector<Cell> b = expand(grid);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].forked_seed, b[i].forked_seed);
    for (std::size_t j = i + 1; j < a.size(); ++j)
      EXPECT_NE(a[i].forked_seed, a[j].forked_seed);
  }
}

TEST(SweepGrid, SingleValuedAxesStayOutOfRowCoordinates) {
  const SweepGrid grid = small_grid();
  const std::vector<Cell> cells = expand(grid);
  const auto has_axis = [](const Cell& cell, const std::string& name) {
    for (const auto& [axis_name, value] : cell.axes)
      if (axis_name == name) return true;
    return false;
  };
  for (const Cell& cell : cells) {
    EXPECT_TRUE(has_axis(cell, "cluster"));
    EXPECT_TRUE(has_axis(cell, "scheme"));
    EXPECT_TRUE(has_axis(cell, "model"));
    EXPECT_TRUE(has_axis(cell, "seed"));
    EXPECT_FALSE(has_axis(cell, "s"));      // single-valued
    EXPECT_FALSE(has_axis(cell, "sigma"));  // single-valued
  }
}

// --- Deterministic execution --------------------------------------------

TEST(RunSweep, BitIdenticalAcrossThreadCounts) {
  const SweepGrid grid = small_grid();
  const std::string serial = csv_of(run_sweep(grid, {.threads = 1}));
  const std::string parallel4 = csv_of(run_sweep(grid, {.threads = 4}));
  EXPECT_EQ(serial, parallel4);
  EXPECT_FALSE(serial.empty());
}

TEST(RunSweep, CachesAreResultTransparentAtAnyThreadCount) {
  // The tentpole invariant of the caching subsystem: a shared scheme cache
  // plus per-cell decoding caches must not change a byte of the table,
  // serial or parallel. (Runs under TSan in CI: cells on 4 pool threads
  // race on the shared SchemeCache.)
  const SweepGrid grid = small_grid();
  const std::string uncached = csv_of(run_sweep(grid, {.threads = 1}));

  // Collect the cache counters through the obs registry (the sweep-level
  // stats plumbing the old SweepCacheStats struct used to provide).
  obs::Registry::global().reset();
  obs::set_metrics_enabled(true);

  SchemeCache scheme_cache;
  obs::Snapshot snapshot;
  SweepOptions cached_serial;
  cached_serial.threads = 1;
  cached_serial.scheme_cache = &scheme_cache;
  cached_serial.decoding_cache_capacity = 256;
  cached_serial.metrics_snapshot = &snapshot;
  EXPECT_EQ(csv_of(run_sweep(grid, cached_serial)), uncached);

  SweepOptions cached_parallel = cached_serial;
  cached_parallel.threads = 4;
  EXPECT_EQ(csv_of(run_sweep(grid, cached_parallel)), uncached);
  obs::set_metrics_enabled(false);

  // The grid repeats schemes across seeds/models, so both caches must see
  // real traffic — hit rates, not just equality, prove the wiring is live.
  EXPECT_GT(scheme_cache.hits(), 0u);
  EXPECT_GT(snapshot.counter("scheme_cache.hits"), 0u);
  EXPECT_GT(snapshot.counter("decode_cache.hits") +
                snapshot.counter("decode_cache.misses"),
            0u);
}

TEST(RunSweep, ScenarioCellsAreCacheTransparentToo) {
  SweepGrid grid = scenarios_grid(15);
  grid.schemes = {SchemeKind::kHeterAware};
  const std::string uncached = csv_of(run_sweep(grid, {.threads = 2}));
  obs::Registry::global().reset();
  obs::set_metrics_enabled(true);
  SweepOptions cached;
  cached.threads = 2;
  SchemeCache scheme_cache;
  obs::Snapshot snapshot;
  cached.scheme_cache = &scheme_cache;
  cached.decoding_cache_capacity = 256;
  cached.metrics_snapshot = &snapshot;
  EXPECT_EQ(csv_of(run_sweep(grid, cached)), uncached);
  obs::set_metrics_enabled(false);
  // Churn/trace cells run tens of rounds against one scheme: the decoding
  // cache must have absorbed repeats.
  EXPECT_GT(snapshot.counter("decode_cache.hits"), 0u);
}

TEST(RunSweep, CustomCellFnSeesCustomAxes) {
  SweepGrid grid;
  grid.clusters = {cluster_a()};
  grid.schemes = {SchemeKind::kNaive};
  grid.iterations = 1;
  grid.custom_axes = {{"x", {1.0, 2.0}, {}}, {"y", {10.0, 20.0}, {}}};
  const CellFn fn = [&grid](const Cell& cell) {
    CellResult result;
    result.metrics.emplace_back(
        "product", cell.custom_value(grid, "x") * cell.custom_value(grid,
                                                                    "y"));
    return result;
  };
  const ResultTable table = run_sweep(grid, fn, {.threads = 2});
  ASSERT_EQ(table.size(), 4u);
  double v = 0.0;
  ASSERT_NE(table.find({{"x", "2"}, {"y", "20"}}), nullptr);
  table.find({{"x", "2"}, {"y", "20"}})->value("product", v);
  EXPECT_DOUBLE_EQ(v, 40.0);
}

TEST(RunSweep, CellExceptionsLandInTheNote) {
  SweepGrid grid;
  grid.clusters = {cluster_a()};
  grid.schemes = {SchemeKind::kNaive};
  grid.iterations = 1;
  const CellFn fn = [](const Cell&) -> CellResult {
    throw std::runtime_error("boom");
  };
  const ResultTable table = run_sweep(grid, fn, {.threads = 2});
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table.row(0).note, "error: boom");
}

TEST(RunSweep, ScenarioAxisRunsChurnAndTraceCells) {
  SweepGrid grid = scenarios_grid(20);
  grid.schemes = {SchemeKind::kHeterAware};
  const ResultTable table = run_sweep(grid, {.threads = 2});
  ASSERT_EQ(table.size(), 3u);
  const ResultRow* churn = table.find({{"scenario", "churn"}});
  ASSERT_NE(churn, nullptr);
  double reinstantiations = 0.0;
  ASSERT_TRUE(churn->value("reinstantiations", reinstantiations));
  EXPECT_GE(reinstantiations, 1.0);  // the demo schedule has two events
  const ResultRow* trace = table.find({{"scenario", "trace"}});
  ASSERT_NE(trace, nullptr);
  double p95 = 0.0;
  ASSERT_TRUE(trace->value("latency_p95", p95));
  EXPECT_GT(p95, 0.0);
}

// --- ResultTable --------------------------------------------------------

ResultRow make_row(const std::string& cluster, const std::string& seed,
                   double time_value, std::size_t samples) {
  ResultRow row;
  row.axes = {{"cluster", cluster}, {"seed", seed}};
  RunningStats stats;
  for (std::size_t i = 0; i < samples; ++i)
    stats.add(time_value + static_cast<double>(i));
  row.stats.emplace_back("time", stats);
  row.metrics.emplace_back("failures", 0.0);
  return row;
}

TEST(ResultTable, CsvIsStableAndComplete) {
  ResultTable table;
  table.add_row(make_row("A", "1", 1.0, 2));
  table.add_row(make_row("A", "2", 3.0, 2));
  const std::string csv = csv_of(table);
  EXPECT_NE(csv.find("cluster,seed,time_mean,time_stddev,time_count,"
                     "failures"),
            std::string::npos);
  EXPECT_NE(csv.find("A,1,1.5,"), std::string::npos);
}

TEST(ResultTable, JsonHasAxesAndMetrics) {
  ResultTable table;
  table.add_row(make_row("A", "1", 1.0, 2));
  std::ostringstream os;
  table.to_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"cluster\": \"A\""), std::string::npos);
  EXPECT_NE(json.find("\"time_mean\": 1.5"), std::string::npos);
}

TEST(ResultTable, AggregateMergesStatsExactly) {
  ResultTable table;
  table.add_row(make_row("A", "1", 1.0, 3));
  table.add_row(make_row("A", "2", 10.0, 5));
  table.add_row(make_row("B", "1", 2.0, 3));
  table.add_row(make_row("B", "2", 20.0, 5));
  const ResultTable merged = table.aggregate_over("seed");
  ASSERT_EQ(merged.size(), 2u);
  // Per-seed partials combine exactly: counts add, means pool.
  double count = 0.0, mean = 0.0;
  merged.find({{"cluster", "A"}})->value("time_count", count);
  merged.find({{"cluster", "A"}})->value("time_mean", mean);
  EXPECT_DOUBLE_EQ(count, 8.0);
  // Sequential stream: {1,2,3, 10,11,12,13,14} -> mean 8.25.
  EXPECT_DOUBLE_EQ(mean, 8.25);
  double cells = 0.0;
  merged.find({{"cluster", "B"}})->value("cells_merged", cells);
  EXPECT_DOUBLE_EQ(cells, 2.0);
}

TEST(ResultTable, PivotShowsMetricAndNotes) {
  ResultTable table;
  table.add_row(make_row("A", "1", 4.0, 1));
  ResultRow failed = make_row("B", "1", 0.0, 1);
  failed.note = "fail";
  table.add_row(failed);
  const TablePrinter pivoted = table.pivot("seed", "cluster", "time");
  std::ostringstream os;
  pivoted.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("4.0000"), std::string::npos);
  EXPECT_NE(text.find("fail"), std::string::npos);
}

TEST(ResultTable, FormatDoubleRoundTrips) {
  EXPECT_EQ(ResultTable::format_double(0.5), "0.5");
  EXPECT_EQ(ResultTable::format_double(1.0 / 3.0),
            ResultTable::format_double(1.0 / 3.0));
  EXPECT_EQ(std::stod(ResultTable::format_double(1.0 / 3.0)), 1.0 / 3.0);
}

// --- Grid-spec parsing --------------------------------------------------

TEST(GridSpec, ParsesAxesAndRanges) {
  const SweepGrid grid = parse_grid_spec(
      "clusters=A,B;schemes=heter,group;s=1,2;sigmas=0,0.2;seeds=1..4;"
      "iters=25;delay_factors=0,2;fault=1;fluct=0.05");
  EXPECT_EQ(grid.clusters.size(), 2u);
  EXPECT_EQ(grid.schemes.size(), 2u);
  EXPECT_EQ(grid.s_values, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(grid.sigmas, (std::vector<double>{0.0, 0.2}));
  EXPECT_EQ(grid.seeds, (std::vector<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_EQ(grid.iterations, 25u);
  ASSERT_EQ(grid.models.size(), 3u);  // two delay factors + fault
  EXPECT_TRUE(grid.models.back().fault);
  EXPECT_DOUBLE_EQ(grid.models[1].delay_factor, 2.0);
  EXPECT_DOUBLE_EQ(grid.models[0].fluctuation_sigma, 0.05);
}

TEST(GridSpec, ParsesScenarios) {
  const SweepGrid grid =
      parse_grid_spec("schemes=heter;iters=10;scenarios=static,churn,trace");
  ASSERT_EQ(grid.scenarios.size(), 3u);
  EXPECT_EQ(grid.scenarios[0].kind, ScenarioKind::kStatic);
  EXPECT_EQ(grid.scenarios[1].kind, ScenarioKind::kChurn);
  EXPECT_FALSE(grid.scenarios[1].churn_events.empty());
  EXPECT_EQ(grid.scenarios[2].kind, ScenarioKind::kTraceReplay);
  EXPECT_GT(grid.scenarios[2].trace.num_iterations(), 0u);
}

TEST(GridSpec, RejectsUnknownKeysAndValues) {
  EXPECT_THROW(parse_grid_spec("bogus=1"), std::invalid_argument);
  EXPECT_THROW(parse_grid_spec("clusters=Z"), std::invalid_argument);
  EXPECT_THROW(parse_grid_spec("schemes"), std::invalid_argument);
  EXPECT_THROW(parse_grid_spec("scenarios=warp"), std::invalid_argument);
}

/// EXPECT_THROW plus a check that the message contains `needle`.
void expect_spec_error(const std::string& spec, const std::string& needle) {
  try {
    parse_grid_spec(spec);
    FAIL() << "expected '" << spec << "' to be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "spec '" << spec << "' threw: " << e.what();
  }
}

TEST(GridSpec, RejectsNonIntegralAndNegativeCounts) {
  // Regression: these used to truncate (s=1.5 → 1) or wrap through
  // static_cast to huge size_t values (s=-1, k=-2, iters=-5) — silently.
  expect_spec_error("s=1.5", "'s'");
  expect_spec_error("s=-1", "'s'");
  expect_spec_error("k=-2", "'k'");
  expect_spec_error("k=2.25", "'k'");
  expect_spec_error("iters=-5", "'iters'");
  expect_spec_error("seeds=-3", "'seeds'");
  expect_spec_error("seeds=1..2.5", "'seeds'");
  expect_spec_error("stragglers=-1", "'stragglers'");
  // Plain integral values (including the k=0 sentinel) still parse.
  const SweepGrid grid = parse_grid_spec("s=2;k=0;iters=7;seeds=3");
  EXPECT_EQ(grid.s_values, (std::vector<std::size_t>{2}));
  EXPECT_EQ(grid.k_values, (std::vector<std::size_t>{0}));
  EXPECT_EQ(grid.iterations, 7u);
}

TEST(GridSpec, RejectsMultiSGridsOverDemoScenarioSchedules) {
  // Regression: the demo churn/trace schedules bind to s_values.front();
  // a grid like s=1,2;scenario=churn silently ran the s=1 schedule in
  // every cell.
  expect_spec_error("s=1,2;scenarios=churn;iters=10", "one s value");
  expect_spec_error("s=1,2;scenarios=trace;iters=10", "one s value");
  expect_spec_error("s=1,2;scenarios=static,churn;iters=10", "one s value");
  // A single s is fine, and so is multi-s over static-only scenarios.
  EXPECT_NO_THROW(parse_grid_spec("s=2;scenarios=churn;iters=10"));
  EXPECT_NO_THROW(parse_grid_spec("s=1,2;scenarios=static;iters=10"));
}

TEST(GridSpec, RejectsTracePathNoScenarioConsumes) {
  // Regression: trace=<path> was silently ignored when a scenarios= list
  // omitted 'trace' — the demo schedule ran while the operator believed
  // their recorded trace was driving the cells.
  expect_spec_error("scenarios=churn;trace=some.csv;iters=10",
                    "does not include 'trace'");
  expect_spec_error("scenarios=static;trace=some.csv", "trace=some.csv");
}

TEST(GridSpec, TracePathFeedsTheTraceScenarioAndLiftsTheMultiSBan) {
  const std::string path = "grid_spec_trace_tmp.csv";
  {
    std::ofstream out(path);
    out << "0.5,0,0,0,0,0,0,0\n0,0,0,0.25,0,0,0,0\n";
  }
  // With a recorded file the trace scenario no longer depends on s, so a
  // multi-s grid is legal again.
  const SweepGrid grid =
      parse_grid_spec("s=1,2;scenarios=trace;trace=" + path + ";iters=10");
  ASSERT_EQ(grid.scenarios.size(), 1u);
  EXPECT_EQ(grid.scenarios[0].kind, ScenarioKind::kTraceReplay);
  EXPECT_EQ(grid.scenarios[0].trace.num_iterations(), 2u);
  std::remove(path.c_str());
}

// --- Figure presets -----------------------------------------------------

TEST(Figures, EveryPresetBuilds) {
  for (const std::string& name : figure_names()) {
    const FigureSweep figure = make_figure(name);
    EXPECT_EQ(figure.name, name);
    EXPECT_GT(figure.grid.num_cells(), 0u) << name;
  }
  EXPECT_THROW(make_figure("fig99"), std::invalid_argument);
}

TEST(Figures, Table2MatchesClusterProperties) {
  const ResultTable table = run_figure(table2_sweep(), {.threads = 2});
  ASSERT_EQ(table.size(), 4u);
  double ratio = 0.0;
  table.find({{"cluster", "Cluster-A"}})
      ->value("heterogeneity_ratio", ratio);
  EXPECT_DOUBLE_EQ(ratio, 3.0);
}

TEST(Figures, Fig4EmitsIdenticalCurvesAtAnyThreadCount) {
  const FigureSweep figure = fig4_sweep(8);
  const std::string serial = csv_of(run_figure(figure, {.threads = 1}));
  const std::string parallel = csv_of(run_figure(figure, {.threads = 3}));
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("ssp"), std::string::npos);
}

}  // namespace
}  // namespace hgc::exec
