// Tests for the operator-authored scenario DSL: golden parses, every
// diagnostic (asserting the offending line number), and the sweep-level
// integration (scenario_file grids, thread-count determinism).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "exec/figures.hpp"
#include "exec/sweep.hpp"
#include "scenario/dsl.hpp"

namespace hgc {
namespace {

using scenario::ParseError;

engine::ScenarioScript parse(const std::string& text,
                             const std::string& base_dir = "") {
  std::istringstream in(text);
  return scenario::parse_scenario(in, "<test>", base_dir);
}

/// Assert that `text` fails to parse, at `line`, with `needle` in the
/// message.
void expect_error(const std::string& text, std::size_t line,
                  const std::string& needle,
                  const std::string& base_dir = "") {
  try {
    parse(text, base_dir);
    FAIL() << "expected a ParseError containing '" << needle << "'";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), line) << e.what();
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

/// A scratch file deleted on scope exit.
class TempFile {
 public:
  TempFile(std::string path, const std::string& contents)
      : path_(std::move(path)) {
    std::ofstream out(path_);
    out << contents;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// --- Golden parses -------------------------------------------------------

TEST(ScenarioDsl, ParsesEveryStatementKind) {
  const TempFile trace("dsl_golden_trace.csv",
                       "0.5,0,0\n0,0.25,0\n0,0,-1\n0.1,0.1,0.1\n");
  const auto script = parse(
      "# a full program\n"
      "workers 3\n"
      "splice trace dsl_golden_trace.csv rows 1..3\n"
      "repeat 2\n"
      "churn leave 2 @ 0.5   # drop the fast worker\n"
      "churn join vcpus=4 throughput=3.5 @ 1.0\n"
      "drift 1 speed 1.0 -> 0.25 over [0.2, 0.8]\n"
      "correlated stragglers {0, 1} p=0.5 dur=0.3 delay=0.7\n"
      "correlated stragglers {3} p=0.1 dur=1 fault\n",
      ".");
  EXPECT_EQ(script.workers, 3u);

  ASSERT_EQ(script.churn.size(), 2u);
  EXPECT_FALSE(script.churn[0].join);
  EXPECT_EQ(script.churn[0].worker, 2u);
  EXPECT_DOUBLE_EQ(script.churn[0].time, 0.5);
  EXPECT_TRUE(script.churn[1].join);
  EXPECT_EQ(script.churn[1].spec.vcpus, 4u);
  EXPECT_DOUBLE_EQ(script.churn[1].spec.throughput, 3.5);

  ASSERT_EQ(script.drifts.size(), 1u);
  EXPECT_EQ(script.drifts[0].worker, 1u);
  EXPECT_DOUBLE_EQ(script.drifts[0].from, 1.0);
  EXPECT_DOUBLE_EQ(script.drifts[0].to, 0.25);
  EXPECT_DOUBLE_EQ(script.drifts[0].t0, 0.2);
  EXPECT_DOUBLE_EQ(script.drifts[0].t1, 0.8);

  ASSERT_EQ(script.bursts.size(), 2u);
  EXPECT_EQ(script.bursts[0].workers, (std::vector<std::size_t>{0, 1}));
  EXPECT_DOUBLE_EQ(script.bursts[0].probability, 0.5);
  EXPECT_DOUBLE_EQ(script.bursts[0].duration, 0.3);
  EXPECT_DOUBLE_EQ(script.bursts[0].delay, 0.7);
  EXPECT_FALSE(script.bursts[0].fault);
  // Worker 3 only ever exists via the join — still a valid id.
  EXPECT_EQ(script.bursts[1].workers, (std::vector<std::size_t>{3}));
  EXPECT_TRUE(script.bursts[1].fault);

  // rows 1..3 of the 4-row file.
  ASSERT_EQ(script.splice.num_iterations(), 3u);
  EXPECT_EQ(script.splice.num_workers(), 3u);
  EXPECT_DOUBLE_EQ(script.splice.at(0, 1), 0.25);
  EXPECT_LT(script.splice.at(1, 2), 0.0);
  EXPECT_EQ(script.splice_repeat, 2u);
}

TEST(ScenarioDsl, JoinThroughputDefaultsToOnePerVcpu) {
  const auto script = parse(
      "workers 2\n"
      "churn join vcpus=8 @ 1.0\n"
      "churn join @ 2.0\n");
  ASSERT_EQ(script.churn.size(), 2u);
  EXPECT_DOUBLE_EQ(script.churn[0].spec.throughput, 8.0);
  EXPECT_EQ(script.churn[1].spec.vcpus, 1u);
  EXPECT_DOUBLE_EQ(script.churn[1].spec.throughput, 1.0);
}

TEST(ScenarioDsl, RepeatForeverAndDefaultRepeat) {
  const TempFile trace("dsl_repeat_trace.csv", "0,0\n");
  EXPECT_EQ(parse("workers 2\nsplice trace dsl_repeat_trace.csv\n", ".")
                .splice_repeat,
            1u);
  EXPECT_EQ(parse("workers 2\nsplice trace dsl_repeat_trace.csv\n"
                  "repeat forever\n",
                  ".")
                .splice_repeat,
            0u);
}

TEST(ScenarioDsl, LoadResolvesSplicePathsAgainstTheFileDirectory) {
  const TempFile trace("dsl_rel_trace.csv", "0.5,0\n0,0.5\n");
  const TempFile scn("dsl_rel_scenario.scn",
                     "workers 2\nsplice trace dsl_rel_trace.csv\n");
  // Loading by (relative) path works because the scenario sits next to the
  // trace; the splice path is resolved against the .scn directory, not the
  // process cwd per se.
  const auto script = scenario::load_scenario_file("./dsl_rel_scenario.scn");
  EXPECT_EQ(script.splice.num_iterations(), 2u);
  EXPECT_THROW(scenario::load_scenario_file("no_such_file.scn"),
               std::invalid_argument);
}

TEST(ScenarioDsl, ScenarioNameIsTheFileStem) {
  EXPECT_EQ(scenario::scenario_name("examples/churn_drift.scn"),
            "churn_drift");
  EXPECT_EQ(scenario::scenario_name("flaky.scn"), "flaky");
}

// --- Diagnostics (every one pins its line number) ------------------------

TEST(ScenarioDslErrors, UnknownStatementKeyword) {
  expect_error("workers 4\nchurm leave 1 @ 2\n", 2,
               "unknown statement 'churm'");
}

TEST(ScenarioDslErrors, WorkersMustComeFirst) {
  expect_error("churn leave 1 @ 2\n", 1,
               "first statement must declare 'workers");
  expect_error("# comment only\n\n", 2, "scenario is empty");
  expect_error("workers 4\nworkers 4\n", 2, "duplicate 'workers'");
  expect_error("workers 0\n", 1, "at least one worker");
  expect_error("workers 2.5\n", 1, "non-negative integer");
}

TEST(ScenarioDslErrors, ChurnShape) {
  expect_error("workers 4\nchurn hop 1 @ 2\n", 2, "'leave' or 'join'");
  expect_error("workers 4\nchurn leave 1 @ -2\n", 2, "non-negative");
  expect_error("workers 4\nchurn leave 1\n", 2, "expected '@'");
  expect_error("workers 4\nchurn join color=red @ 1\n", 2,
               "unknown churn join attribute 'color'");
  expect_error("workers 4\nchurn join vcpus=0 @ 1\n", 2, "at least 1");
}

TEST(ScenarioDslErrors, UnsortedChurnTimes) {
  expect_error(
      "workers 4\nchurn leave 1 @ 2.0\nchurn leave 2 @ 1.0\n", 3,
      "non-decreasing time order");
}

TEST(ScenarioDslErrors, UnknownOrDepartedChurnWorker) {
  expect_error("workers 4\nchurn leave 7 @ 1\n", 2, "unknown worker 7");
  expect_error(
      "workers 4\nchurn leave 2 @ 1\nchurn leave 2 @ 2\n", 3,
      "already left");
  // A join's fresh id can be named by a later leave — no error.
  EXPECT_NO_THROW(
      parse("workers 4\nchurn join @ 1\nchurn leave 4 @ 2\n"));
}

TEST(ScenarioDslErrors, DriftShapeAndRanges) {
  expect_error("workers 4\ndrift 1 pace 1 -> 2 over [0, 1]\n", 2,
               "drift wants");
  expect_error("workers 4\ndrift 1 speed 1 -> 0.5 over [2, 1]\n", 2,
               "t1 must exceed t0");
  expect_error("workers 4\ndrift 1 speed 0 -> 0.5 over [0, 1]\n", 2,
               "must be positive");
  expect_error("workers 4\ndrift 9 speed 1 -> 0.5 over [0, 1]\n", 2,
               "unknown worker 9 in drift");
}

TEST(ScenarioDslErrors, OverlappingDriftWindows) {
  expect_error(
      "workers 4\n"
      "drift 1 speed 1 -> 0.5 over [0, 2]\n"
      "drift 1 speed 0.5 -> 1 over [1, 3]\n",
      3, "drift windows for worker 1 overlap");
  // Different workers may overlap freely; same worker back-to-back is fine.
  EXPECT_NO_THROW(parse(
      "workers 4\n"
      "drift 1 speed 1 -> 0.5 over [0, 2]\n"
      "drift 2 speed 1 -> 0.5 over [1, 3]\n"
      "drift 1 speed 0.5 -> 1 over [2, 3]\n"));
}

TEST(ScenarioDslErrors, CorrelatedStragglerShape) {
  expect_error("workers 4\ncorrelated stragglers {} p=0.5 dur=1 fault\n", 2,
               "expected a worker id");
  expect_error(
      "workers 4\ncorrelated stragglers {1,1} p=0.5 dur=1 fault\n", 2,
      "duplicate worker 1");
  expect_error("workers 4\ncorrelated stragglers {1} dur=1 fault\n", 2,
               "need p=");
  expect_error("workers 4\ncorrelated stragglers {1} p=1.5 dur=1 fault\n",
               2, "p must be in (0, 1]");
  expect_error("workers 4\ncorrelated stragglers {1} p=0.5 fault\n", 2,
               "need dur=");
  expect_error("workers 4\ncorrelated stragglers {1} p=0.5 dur=1\n", 2,
               "delay=<seconds> or fault");
  expect_error(
      "workers 4\ncorrelated stragglers {1} p=0.5 dur=1 delay=1 fault\n",
      2, "not both");
  expect_error(
      "workers 4\ncorrelated stragglers {1} p=0.5 dur=1 size=3\n", 2,
      "unknown correlated-straggler attribute 'size'");
  expect_error("workers 4\ncorrelated stragglers {6} p=0.5 dur=1 fault\n",
               2, "unknown worker 6 in the straggler set");
}

TEST(ScenarioDslErrors, SpliceShapeAndBounds) {
  const TempFile trace("dsl_err_trace.csv", "0,0\n0,0\n");
  expect_error("workers 2\nsplice dsl_err_trace.csv\n", 2, "splice wants",
               ".");
  expect_error("workers 2\nsplice trace missing_file.csv\n", 2,
               "cannot open", ".");
  expect_error("workers 2\nsplice trace dsl_err_trace.csv rows 3..1\n", 2,
               "lo..hi", ".");
  expect_error("workers 2\nsplice trace dsl_err_trace.csv rows 1..5\n", 2,
               "exceeds the trace", ".");
  expect_error(
      "workers 2\nsplice trace dsl_err_trace.csv\n"
      "splice trace dsl_err_trace.csv\n",
      3, "duplicate splice", ".");
  expect_error("workers 3\nsplice trace dsl_err_trace.csv\n", 2,
               "2 columns but the scenario declares 3 workers", ".");
}

TEST(ScenarioDslErrors, RepeatShape) {
  const TempFile trace("dsl_rep_trace.csv", "0,0\n");
  expect_error("workers 2\nrepeat 2\n", 2, "repeat needs a 'splice trace'");
  expect_error("workers 2\nsplice trace dsl_rep_trace.csv\nrepeat 0\n", 3,
               "at least 1", ".");
  expect_error(
      "workers 2\nsplice trace dsl_rep_trace.csv\nrepeat 1\nrepeat 2\n", 4,
      "duplicate repeat", ".");
}

TEST(ScenarioDslErrors, LexicalNoise) {
  expect_error("workers 4\ndrift 1 speed 1.2.3 -> 2 over [0, 1]\n", 2,
               "malformed number");
  expect_error("workers 4\nchurn leave 1 @ 2 extra\n", 2,
               "unexpected 'extra' after the statement");
  expect_error("workers 4\ndrift 1 speed 1 -> 2 over (0, 1)\n", 2,
               "unexpected character '('");
  // Out-of-range ids must be rejected before the double→size_t cast (the
  // cast itself is UB for values this large).
  expect_error("workers 2e19\n", 1, "non-negative integer");
  expect_error("workers 4\nchurn leave 1e300 @ 1\n", 2,
               "non-negative integer");
}

// --- Sweep integration ---------------------------------------------------

/// Write a self-contained scenario next to its spliced trace.
struct ScenarioFixture {
  TempFile trace;
  TempFile scn;
  ScenarioFixture()
      : trace("dsl_grid_trace.csv",
              "0.1,0,0,0,0,0,0,0\n0,0,0,0,0,0,0,0.2\n"),
        scn("dsl_grid_scenario.scn",
            "workers 8\n"
            "splice trace dsl_grid_trace.csv\n"
            "repeat forever\n"
            "churn leave 7 @ 0.4\n"
            "drift 2 speed 1.0 -> 0.5 over [0.1, 0.6]\n"
            "correlated stragglers {0,1} p=0.25 dur=0.1 delay=0.3\n") {}
};

TEST(ScenarioDslGrid, ScenarioFileBecomesAnAxisPoint) {
  const ScenarioFixture fx;
  const exec::SweepGrid grid = exec::parse_grid_spec(
      "clusters=A;schemes=heter;iters=10;scenario_file=" + fx.scn.path());
  ASSERT_EQ(grid.scenarios.size(), 1u);
  EXPECT_EQ(grid.scenarios[0].kind, exec::ScenarioKind::kScript);
  EXPECT_EQ(grid.scenarios[0].name, "dsl_grid_scenario");
  EXPECT_EQ(grid.scenarios[0].script.workers, 8u);
  EXPECT_EQ(grid.scenarios[0].script.churn.size(), 1u);
}

TEST(ScenarioDslGrid, CombinesWithExplicitScenarioListAndRepeatedKeys) {
  const ScenarioFixture fx;
  const exec::SweepGrid grid = exec::parse_grid_spec(
      "clusters=A;schemes=heter;iters=10;scenarios=static;scenario_file=" +
      fx.scn.path() + ";scenario_file=" + fx.scn.path());
  ASSERT_EQ(grid.scenarios.size(), 3u);
  EXPECT_EQ(grid.scenarios[0].kind, exec::ScenarioKind::kStatic);
  EXPECT_EQ(grid.scenarios[1].kind, exec::ScenarioKind::kScript);
  EXPECT_EQ(grid.scenarios[2].kind, exec::ScenarioKind::kScript);
}

TEST(ScenarioDslGrid, RejectsWorkerCountAndClusterMismatches) {
  const TempFile small("dsl_small_scenario.scn", "workers 4\n");
  EXPECT_THROW(
      exec::parse_grid_spec("clusters=A;iters=5;scenario_file=" +
                            small.path()),
      std::invalid_argument);  // Cluster-A has 8 workers
  const ScenarioFixture fx;
  EXPECT_THROW(
      exec::parse_grid_spec("clusters=A,B;iters=5;scenario_file=" +
                            fx.scn.path()),
      std::invalid_argument);
}

TEST(ScenarioDslGrid, MultiSScenarioFileGridIsByteIdenticalAcrossThreads) {
  // The acceptance contract: a drift + correlated-straggler + trace-splice
  // scenario authored purely in text, gridded over multiple s values,
  // byte-identical at any thread count.
  const ScenarioFixture fx;
  // scenarios=static alongside the file also makes the scenario axis
  // multi-valued, so its names land in the row coordinates.
  const exec::SweepGrid grid = exec::parse_grid_spec(
      "clusters=A;schemes=naive,heter;s=1,2;fluct=0.02;stragglers=0;"
      "iters=12;scenarios=static;scenario_file=" +
      fx.scn.path());
  const auto csv_of = [](const exec::ResultTable& table) {
    std::ostringstream os;
    table.to_csv(os);
    return os.str();
  };
  const std::string serial = csv_of(exec::run_sweep(grid, {.threads = 1}));
  const std::string parallel =
      csv_of(exec::run_sweep(grid, {.threads = 4}));
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("dsl_grid_scenario"), std::string::npos);
  EXPECT_NE(serial.find("bursts"), std::string::npos);
}

}  // namespace
}  // namespace hgc
