// Tests for the observability layer: the metrics registry's concurrency and
// bucket semantics, trace-JSON well-formedness (parsed, not pattern-matched),
// and the zero-behavior-change contract — a sweep's ResultTable must be
// byte-identical with observability on or off, at any thread count.
//
// Global-state discipline: the registry and tracer are process-wide, so
// every test that enables either one disables it (and resets the tracer)
// before returning; tests never assume a zeroed registry without calling
// reset() themselves.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/sweep.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hgc {
namespace {

// Trace well-formedness is proven by parsing, not pattern-matching: the
// obs/json.hpp reader (originally written for these tests, since promoted
// into the library for Snapshot::read_json) loads the whole document.
using obs::JsonValue;
using obs::parse_json;

// --- Metrics registry ---------------------------------------------------

TEST(ObsRegistry, EightThreadHammerCountsExactly) {
  obs::Registry::global().reset();
  obs::set_metrics_enabled(true);
  const obs::Counter ones = obs::Registry::global().counter("t.hammer.ones");
  const obs::Counter threes =
      obs::Registry::global().counter("t.hammer.threes");
  const obs::Histogram hist = obs::Registry::global().histogram(
      "t.hammer.hist", {0.25, 0.5, 0.75});
  const obs::StatHandle stat = obs::Registry::global().stat("t.hammer.stat");

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        ones.add();
        threes.add(3);
        hist.observe(static_cast<double>((t + i) % 4) * 0.25);  // 0..0.75
        stat.observe(1.0);
      }
    });
  }
  for (auto& th : threads) th.join();

  const obs::Snapshot snap = obs::Registry::global().snapshot();
  EXPECT_EQ(snap.counter("t.hammer.ones"), kThreads * kPerThread);
  EXPECT_EQ(snap.counter("t.hammer.threes"), 3 * kThreads * kPerThread);
  const auto& h = snap.histograms.at("t.hammer.hist");
  EXPECT_EQ(h.total(), kThreads * kPerThread);
  const auto& s = snap.stats.at("t.hammer.stat");
  EXPECT_EQ(s.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(s.mean(), 1.0);

  obs::set_metrics_enabled(false);
}

TEST(ObsRegistry, HistogramBucketsAreUpperInclusive) {
  obs::Registry::global().reset();
  obs::set_metrics_enabled(true);
  const obs::Histogram h =
      obs::Registry::global().histogram("t.buckets", {1.0, 2.0, 4.0});
  h.observe(0.5);  // <= 1        -> bucket 0
  h.observe(1.0);  // == bound 0  -> bucket 0 (upper-inclusive)
  h.observe(1.5);  //             -> bucket 1
  h.observe(2.0);  // == bound 1  -> bucket 1
  h.observe(4.0);  // == bound 2  -> bucket 2
  h.observe(5.0);  // > last      -> overflow
  obs::set_metrics_enabled(false);

  const obs::Snapshot snap = obs::Registry::global().snapshot();
  const auto& hist = snap.histograms.at("t.buckets");
  ASSERT_EQ(hist.bounds.size(), 3u);
  ASSERT_EQ(hist.counts.size(), 4u);
  EXPECT_EQ(hist.counts[0], 2u);
  EXPECT_EQ(hist.counts[1], 2u);
  EXPECT_EQ(hist.counts[2], 1u);
  EXPECT_EQ(hist.counts[3], 1u);  // overflow
  EXPECT_EQ(hist.total(), 6u);
}

TEST(ObsRegistry, DisabledSitesRecordNothing) {
  obs::Registry::global().reset();
  obs::set_metrics_enabled(false);
  const obs::Counter c = obs::Registry::global().counter("t.disabled.c");
  const obs::Histogram h =
      obs::Registry::global().histogram("t.disabled.h", {1.0});
  const obs::Gauge g = obs::Registry::global().gauge("t.disabled.g");
  c.add(100);
  h.observe(0.5);
  g.set(7.0);
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  EXPECT_EQ(snap.counter("t.disabled.c"), 0u);
  EXPECT_EQ(snap.histograms.at("t.disabled.h").total(), 0u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("t.disabled.g").value, 0.0);
}

TEST(ObsRegistry, ResetZeroesValuesButHandlesStayLive) {
  obs::Registry::global().reset();
  obs::set_metrics_enabled(true);
  const obs::Counter c = obs::Registry::global().counter("t.reset.c");
  c.add(5);
  obs::Registry::global().reset();
  c.add(2);  // the pre-reset handle still points at a valid slot
  obs::set_metrics_enabled(false);
  EXPECT_EQ(obs::Registry::global().snapshot().counter("t.reset.c"), 2u);
}

TEST(ObsRegistry, SnapshotCounterIsZeroForUnknownNames) {
  EXPECT_EQ(obs::Registry::global().snapshot().counter("t.never.registered"),
            0u);
}

TEST(ObsRegistry, NameReuseAcrossKindsThrows) {
  obs::Registry::global().counter("t.kind.clash");
  EXPECT_THROW(obs::Registry::global().gauge("t.kind.clash"),
               std::invalid_argument);
  EXPECT_THROW(
      obs::Registry::global().histogram("t.kind.clash", {1.0}),
      std::invalid_argument);
}

TEST(ObsRegistry, SnapshotJsonNamesEveryRegisteredInstrument) {
  obs::Registry::global().reset();
  obs::set_metrics_enabled(true);
  obs::Registry::global().counter("t.json.c").add(4);
  obs::Registry::global().gauge("t.json.g").set(2.5);
  obs::set_metrics_enabled(false);
  std::ostringstream os;
  obs::Registry::global().snapshot().write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"t.json.c\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"t.json.g\": {\"value\": 2.5"), std::string::npos)
      << json;
}

// --- Trace JSON ---------------------------------------------------------

TEST(ObsTracer, EmitsWellFormedChromeTraceWithBothClocks) {
  obs::Tracer::global().reset();
  obs::set_trace_enabled(true);
  {
    HGC_TRACE_SCOPE("unit_span", "test", 42);
  }
  obs::trace_virtual_span(/*track=*/3, /*row=*/0, "round", "test", 0.5, 1.5);
  obs::trace_virtual_span(/*track=*/3, /*row=*/2, "compute", "test", 0.0,
                          0.25);
  obs::trace_virtual_instant(/*track=*/3, /*row=*/1, "fault", "test", 0.75);
  obs::set_trace_enabled(false);

  std::ostringstream os;
  obs::Tracer::global().write_json(os);
  obs::Tracer::global().reset();

  const JsonValue root = parse_json(os.str());
  ASSERT_EQ(root.type, JsonValue::Type::kObject);
  EXPECT_EQ(root.at("displayTimeUnit").string, "ms");
  EXPECT_EQ(root.at("droppedEvents").as_u64(), 0u);
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.type, JsonValue::Type::kArray);

  bool saw_wall_span = false, saw_virtual_span = false;
  bool saw_virtual_instant = false, saw_virtual_process_name = false;
  double wall_pid = -1.0, virtual_pid = -1.0;
  for (const JsonValue& e : events.array) {
    ASSERT_EQ(e.type, JsonValue::Type::kObject);
    const std::string& ph = e.at("ph").string;
    if (ph == "M") {
      if (e.at("name").string == "process_name" &&
          e.at("args").at("name").string.find("virtual clock") == 0)
        saw_virtual_process_name = true;
      continue;
    }
    ASSERT_TRUE(ph == "X" || ph == "i") << "unexpected phase " << ph;
    const std::string& name = e.at("name").string;
    if (name == "unit_span") {
      EXPECT_EQ(ph, "X");
      EXPECT_TRUE(e.has("dur"));
      EXPECT_EQ(e.at("args").at("v").number, 42.0);
      wall_pid = e.at("pid").number;
      saw_wall_span = true;
    } else if (name == "round") {
      EXPECT_EQ(ph, "X");
      EXPECT_DOUBLE_EQ(e.at("ts").number, 0.5e6);   // virtual s -> us
      EXPECT_DOUBLE_EQ(e.at("dur").number, 1.5e6);
      virtual_pid = e.at("pid").number;
      saw_virtual_span = true;
    } else if (name == "fault") {
      EXPECT_EQ(ph, "i");
      EXPECT_FALSE(e.has("dur"));
      saw_virtual_instant = true;
    }
  }
  EXPECT_TRUE(saw_wall_span);
  EXPECT_TRUE(saw_virtual_span);
  EXPECT_TRUE(saw_virtual_instant);
  EXPECT_TRUE(saw_virtual_process_name);
  // The two clocks must land on different Chrome process axes.
  EXPECT_GE(wall_pid, 0.0);
  EXPECT_GE(virtual_pid, 0.0);
  EXPECT_NE(wall_pid, virtual_pid);
  EXPECT_EQ(obs::Tracer::global().dropped(), 0u);
}

TEST(ObsTracer, DisabledScopesRecordNothing) {
  obs::Tracer::global().reset();
  obs::set_trace_enabled(false);
  {
    HGC_TRACE_SCOPE("should_not_appear", "test");
  }
  obs::trace_virtual_span(1, 0, "nor_this", "test", 0.0, 1.0);
  std::ostringstream os;
  obs::Tracer::global().write_json(os);
  const JsonValue root = parse_json(os.str());
  for (const JsonValue& e : root.at("traceEvents").array)
    EXPECT_EQ(e.at("ph").string, "M") << e.at("name").string;
}

TEST(ObsTracer, DropsAreCountedExportedAndWarnedOnce) {
  obs::Tracer::global().reset();
  obs::Registry::global().reset();
  obs::set_trace_buffer_capacity(4);
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  for (int i = 0; i < 10; ++i)
    obs::trace_virtual_instant(/*track=*/1, /*row=*/0, "spam", "test",
                               static_cast<double>(i));
  obs::set_trace_enabled(false);
  obs::set_metrics_enabled(false);
  obs::set_trace_buffer_capacity(1 << 20);

  EXPECT_EQ(obs::Tracer::global().dropped(), 6u);
  // The drop count is cross-posted to the metrics registry so fleet merges
  // can total trace loss without opening trace files.
  EXPECT_EQ(obs::Registry::global().snapshot().counter(
                "obs.trace.dropped_events"),
            6u);

  // write_json reports the loss in the file and warns once on stderr.
  testing::internal::CaptureStderr();
  std::ostringstream os;
  obs::Tracer::global().write_json(os);
  std::ostringstream again;
  obs::Tracer::global().write_json(again);
  const std::string warnings = testing::internal::GetCapturedStderr();
  EXPECT_NE(warnings.find("trace buffer overflow"), std::string::npos);
  EXPECT_EQ(warnings.find("trace buffer overflow"),
            warnings.rfind("trace buffer overflow"))
      << "warning should print once, got: " << warnings;
  const JsonValue root = parse_json(os.str());
  EXPECT_EQ(root.at("droppedEvents").as_u64(), 6u);
  EXPECT_EQ(root.at("traceEvents").array.size() -
                /* metadata rows: process + thread */ 2u,
            4u);
  obs::Tracer::global().reset();
  obs::Registry::global().reset();
}

// --- Zero behavior change under the sweep -------------------------------

exec::SweepGrid obs_grid() {
  exec::SweepGrid grid;
  grid.clusters = {cluster_a()};
  grid.schemes = {SchemeKind::kCyclic, SchemeKind::kHeterAware};
  grid.s_values = {1};
  grid.iterations = 12;
  exec::StragglerAxis delayed;
  delayed.delay_factor = 1.5;
  delayed.fluctuation_sigma = 0.05;
  grid.models = {exec::StragglerAxis{}, delayed};
  grid.seeds = {7, 8};
  return grid;
}

std::string csv_of(const exec::ResultTable& table) {
  std::ostringstream os;
  table.to_csv(os);
  return os.str();
}

TEST(ObsSweep, ResultTableIsByteIdenticalWithObservabilityOn) {
  const exec::SweepGrid grid = obs_grid();
  // Reference: observability fully off.
  const std::string plain = csv_of(exec::run_sweep(grid, {.threads = 1}));

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    obs::Registry::global().reset();
    obs::Tracer::global().reset();
    obs::set_metrics_enabled(true);
    obs::set_trace_enabled(true);
    obs::Snapshot snapshot;
    exec::SweepOptions opts;
    opts.threads = threads;
    opts.metrics_snapshot = &snapshot;
    const std::string instrumented = csv_of(exec::run_sweep(grid, opts));
    obs::set_metrics_enabled(false);
    obs::set_trace_enabled(false);

    EXPECT_EQ(instrumented, plain) << "threads=" << threads;
    // The run really was observed: the sink saw cells complete and solves
    // happen, and the tracer buffered events on both clocks.
    EXPECT_EQ(snapshot.counter("sweep.cells.done"), grid.num_cells());
    EXPECT_GT(snapshot.counter("engine.rounds"), 0u);
    std::ostringstream os;
    obs::Tracer::global().write_json(os);
    const JsonValue root = parse_json(os.str());
    bool saw_cell = false, saw_virtual = false;
    for (const JsonValue& e : root.at("traceEvents").array) {
      if (e.at("ph").string == "M") continue;
      if (e.at("name").string == "cell") saw_cell = true;
      if (e.at("pid").number > 1.0) saw_virtual = true;
    }
    EXPECT_TRUE(saw_cell) << "threads=" << threads;
    EXPECT_TRUE(saw_virtual) << "threads=" << threads;
    obs::Tracer::global().reset();
  }
}

}  // namespace
}  // namespace hgc
