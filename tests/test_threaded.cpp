// Tests for the real-thread BSP runtime: correctness under concurrency,
// straggler drops, and agreement with the serial reference — plus the
// parallel sweep runtime's determinism contract (same grid, any thread
// count, identical ResultTable).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>

#include "core/scheme_factory.hpp"
#include "exec/figures.hpp"
#include "exec/sweep.hpp"
#include "runtime/sim_trainer.hpp"
#include "runtime/threaded_trainer.hpp"

namespace hgc {
namespace {

Dataset small_data(std::uint64_t seed = 123) {
  Rng rng(seed);
  return make_gaussian_classification(48, 5, 3, 2.5, rng);
}

ThreadedTrainingConfig fast_config() {
  ThreadedTrainingConfig config;
  config.iterations = 8;
  config.sgd.learning_rate = 0.3;
  config.time_scale = 0.0;  // no physical sleeping: fastest possible test
  return config;
}

TEST(ThreadedTrainer, MatchesSerialTrajectory) {
  const Cluster cluster = cluster_a();
  const Dataset data = small_data();
  SoftmaxRegression model(5, 3);
  Rng rng(131);
  const auto scheme = make_scheme(SchemeKind::kHeterAware,
                                  cluster.throughputs(), 24, 1, rng);
  const ThreadedTrainingConfig config = fast_config();
  const auto threaded =
      train_bsp_threaded(*scheme, cluster, model, data, config);

  BspTrainingConfig serial_config;
  serial_config.iterations = config.iterations;
  serial_config.sgd = config.sgd;
  serial_config.seed = config.seed;
  const auto serial = train_serial(model, data, serial_config);

  ASSERT_EQ(threaded.final_params.size(), serial.final_params.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < serial.final_params.size(); ++i)
    worst = std::max(
        worst, std::abs(threaded.final_params[i] - serial.final_params[i]));
  EXPECT_LT(worst, 1e-6);
}

TEST(ThreadedTrainer, SurvivesFaultedWorkers) {
  const Cluster cluster = cluster_a();
  const Dataset data = small_data();
  SoftmaxRegression model(5, 3);
  Rng rng(132);
  const auto scheme = make_scheme(SchemeKind::kHeterAware,
                                  cluster.throughputs(), 24, 1, rng);
  ThreadedTrainingConfig config = fast_config();
  config.straggler_model.num_stragglers = 1;
  config.straggler_model.fault = true;
  const auto result =
      train_bsp_threaded(*scheme, cluster, model, data, config);
  // Every iteration completed and the loss went down despite one silent
  // worker per iteration.
  EXPECT_EQ(result.trace.points.back().iteration, config.iterations);
  EXPECT_LT(result.trace.final_loss(), result.trace.points.front().loss);
}

TEST(ThreadedTrainer, RefusesFaultsBeyondTolerance) {
  const Cluster cluster = cluster_a();
  const Dataset data = small_data();
  SoftmaxRegression model(5, 3);
  Rng rng(133);
  const auto scheme = make_scheme(SchemeKind::kHeterAware,
                                  cluster.throughputs(), 24, 1, rng);
  ThreadedTrainingConfig config = fast_config();
  config.straggler_model.num_stragglers = 2;  // > s = 1
  config.straggler_model.fault = true;
  EXPECT_THROW(train_bsp_threaded(*scheme, cluster, model, data, config),
               std::invalid_argument);
}

TEST(ThreadedTrainer, GroupSchemeWorksWithThreads) {
  const Cluster cluster = cluster_a();
  const Dataset data = small_data();
  SoftmaxRegression model(5, 3);
  Rng rng(134);
  const auto scheme = make_scheme(SchemeKind::kGroupBased,
                                  cluster.throughputs(), 24, 1, rng);
  ThreadedTrainingConfig config = fast_config();
  config.straggler_model.num_stragglers = 1;
  config.straggler_model.delay_seconds = 0.2;
  config.time_scale = 1e-3;  // physical delays so stragglers really lag
  const auto result =
      train_bsp_threaded(*scheme, cluster, model, data, config);
  EXPECT_EQ(result.trace.points.back().iteration, config.iterations);
  EXPECT_LT(result.trace.final_loss(), result.trace.points.front().loss);
}

TEST(ThreadedTrainer, DelayedStragglersGetDiscarded) {
  const Cluster cluster = cluster_a();
  const Dataset data = small_data();
  SoftmaxRegression model(5, 3);
  Rng rng(135);
  const auto scheme = make_scheme(SchemeKind::kHeterAware,
                                  cluster.throughputs(), 24, 1, rng);
  ThreadedTrainingConfig config = fast_config();
  config.iterations = 6;
  config.straggler_model.num_stragglers = 1;
  config.straggler_model.delay_seconds = 0.5;
  config.time_scale = 2e-3;  // delayed worker arrives ~1ms late
  const auto result =
      train_bsp_threaded(*scheme, cluster, model, data, config);
  // The delayed results from earlier iterations eventually arrive and are
  // dropped (not required — timing dependent — but the run must finish and
  // train correctly regardless).
  EXPECT_EQ(result.trace.points.back().iteration, config.iterations);
  EXPECT_LT(result.trace.final_loss(), result.trace.points.front().loss);
}

TEST(ThreadedTrainer, NaiveSchemeNeedsAllWorkers) {
  const Cluster cluster = cluster_a();
  const Dataset data = small_data();
  SoftmaxRegression model(5, 3);
  Rng rng(136);
  const auto scheme =
      make_scheme(SchemeKind::kNaive, cluster.throughputs(), 8, 0, rng);
  const auto result =
      train_bsp_threaded(*scheme, cluster, model, data, fast_config());
  EXPECT_EQ(result.trace.points.back().iteration, 8u);
}

TEST(ThreadedTrainer, WallClockTimesAreMonotone) {
  const Cluster cluster = cluster_a();
  const Dataset data = small_data();
  SoftmaxRegression model(5, 3);
  Rng rng(137);
  const auto scheme = make_scheme(SchemeKind::kHeterAware,
                                  cluster.throughputs(), 24, 1, rng);
  const auto result =
      train_bsp_threaded(*scheme, cluster, model, data, fast_config());
  for (std::size_t i = 1; i < result.trace.points.size(); ++i)
    EXPECT_GE(result.trace.points[i].time, result.trace.points[i - 1].time);
}

TEST(SweepDeterminism, IdenticalResultsAtOneFourAndHardwareThreads) {
  // The exec/ contract: a SweepGrid's ResultTable is bit-identical at any
  // thread count. Exercise a grid with every axis kind in play — two
  // schemes, two models (one resolved against ideal time), two seeds, an
  // estimation-error axis — and compare the byte-exact CSV export.
  exec::SweepGrid grid;
  grid.clusters = {cluster_a()};
  grid.schemes = {SchemeKind::kCyclic, SchemeKind::kHeterAware,
                  SchemeKind::kGroupBased};
  grid.sigmas = {0.0, 0.2};
  grid.seeds = {1, 2};
  grid.iterations = 12;
  exec::StragglerAxis none;
  exec::StragglerAxis delayed;
  delayed.delay_factor = 2.0;
  delayed.fluctuation_sigma = 0.05;
  grid.models = {none, delayed};

  const auto csv_at = [&grid](std::size_t threads) {
    std::ostringstream os;
    exec::run_sweep(grid, {.threads = threads}).to_csv(os);
    return os.str();
  };
  const std::string serial = csv_at(1);
  const std::string four = csv_at(4);
  const std::string hardware = csv_at(std::max<std::size_t>(
      1, std::thread::hardware_concurrency()));
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, four);
  EXPECT_EQ(serial, hardware);
}

TEST(SweepDeterminism, ScenarioCellsAreDeterministicToo) {
  exec::SweepGrid grid = exec::scenarios_grid(15);
  grid.schemes = {SchemeKind::kHeterAware, SchemeKind::kGroupBased};
  const auto csv_at = [&grid](std::size_t threads) {
    std::ostringstream os;
    exec::run_sweep(grid, {.threads = threads}).to_csv(os);
    return os.str();
  };
  EXPECT_EQ(csv_at(1), csv_at(4));
}

}  // namespace
}  // namespace hgc
