// End-to-end integration tests: the paper's headline claims reproduced at
// test scale — Fig. 2 (delay robustness), Fig. 3 (cluster generality),
// Fig. 4 (loss-vs-time ordering), Fig. 5 (resource usage ordering), and the
// Section V estimation-noise motivation for the group-based scheme.
#include <gtest/gtest.h>

#include "runtime/sim_trainer.hpp"
#include "runtime/ssp_trainer.hpp"
#include "sim/experiment.hpp"

namespace hgc {
namespace {

ExperimentConfig base_config(const Cluster& cluster, std::size_t s = 1) {
  ExperimentConfig config;
  config.s = s;
  config.k = exact_partition_count(cluster, s);
  config.iterations = 120;
  return config;
}

TEST(Fig2Shape, NaiveDegradesLinearlyCodedStaysFlat) {
  const Cluster cluster = cluster_a();
  const double t0 = ideal_iteration_time(cluster, 1);

  std::vector<double> naive_times, heter_times, group_times;
  for (const double delay : {0.0, 2.0 * t0, 4.0 * t0}) {
    ExperimentConfig config = base_config(cluster);
    config.model.num_stragglers = 1;
    config.model.delay_seconds = delay;
    const auto summaries = compare_schemes(
        {SchemeKind::kNaive, SchemeKind::kHeterAware, SchemeKind::kGroupBased},
        cluster, config);
    naive_times.push_back(summaries[0].mean_time());
    heter_times.push_back(summaries[1].mean_time());
    group_times.push_back(summaries[2].mean_time());
  }
  // Naive grows with the injected delay...
  EXPECT_GT(naive_times[1], naive_times[0] + t0);
  EXPECT_GT(naive_times[2], naive_times[1] + t0);
  // ...while the s-provisioned coded schemes absorb it completely.
  EXPECT_NEAR(heter_times[0], heter_times[2], 1e-9);
  EXPECT_NEAR(group_times[0], group_times[2], 1e-9);
}

TEST(Fig2Shape, SpeedupAtFaultApproachesHeterogeneityRatio) {
  const Cluster cluster = cluster_a();
  ExperimentConfig config = base_config(cluster);
  config.model.num_stragglers = 1;
  config.model.fault = true;
  const auto summaries = compare_schemes(
      {SchemeKind::kCyclic, SchemeKind::kHeterAware}, cluster, config);
  const double speedup = summaries[0].mean_time() / summaries[1].mean_time();
  EXPECT_NEAR(speedup, cluster.heterogeneity_ratio(), 0.4);  // ≈ 3×
}

TEST(Fig2Shape, TwoStragglerProvisioningAbsorbsTwoDelays) {
  const Cluster cluster = cluster_a();
  ExperimentConfig config = base_config(cluster, 2);
  config.model.num_stragglers = 2;
  config.model.delay_seconds = 10.0;
  const auto summaries = compare_schemes(
      {SchemeKind::kHeterAware, SchemeKind::kGroupBased}, cluster, config);
  for (const auto& summary : summaries) {
    EXPECT_EQ(summary.failures, 0u);
    EXPECT_LT(summary.mean_time(), 1.0);  // delay never surfaces
  }
}

TEST(Fig3Shape, HeterAwareWinsOnEveryCluster) {
  for (const Cluster& cluster : paper_clusters()) {
    ExperimentConfig config = base_config(cluster);
    config.iterations = 40;
    config.model.num_stragglers = 1;
    config.model.delay_seconds = 4.0 * ideal_iteration_time(cluster, 1);
    config.model.fluctuation_sigma = 0.05;
    const auto summaries = compare_schemes(
        {SchemeKind::kNaive, SchemeKind::kCyclic, SchemeKind::kHeterAware},
        cluster, config);
    EXPECT_LT(summaries[2].mean_time(), summaries[0].mean_time())
        << cluster.name() << ": heter vs naive";
    EXPECT_LT(summaries[2].mean_time(), summaries[1].mean_time())
        << cluster.name() << ": heter vs cyclic";
  }
}

TEST(Fig4Shape, TimeToTargetLossOrdering) {
  // Cluster-C at reduced scale is slow to simulate with training in the
  // loop; Cluster-A preserves the heterogeneity that drives the ordering.
  const Cluster cluster = cluster_a();
  Rng data_rng(2025);
  const Dataset data = make_gaussian_classification(96, 6, 3, 2.5, data_rng);
  SoftmaxRegression model(6, 3);

  BspTrainingConfig config;
  config.iterations = 40;
  config.sgd.learning_rate = 0.5;
  config.straggler_model.num_stragglers = 1;
  config.straggler_model.delay_seconds =
      2.0 * ideal_iteration_time(cluster, 1);
  const std::size_t k = exact_partition_count(cluster, 1);

  const auto heter = train_bsp_coded(SchemeKind::kHeterAware, cluster, model,
                                     data, k, 1, config);
  const auto cyclic = train_bsp_coded(SchemeKind::kCyclic, cluster, model,
                                      data, k, 1, config);
  const auto naive = train_bsp_coded(SchemeKind::kNaive, cluster, model, data,
                                     k, 1, config);

  SspTrainingConfig ssp_config;
  ssp_config.iterations = 40;
  ssp_config.learning_rate = 0.5;
  ssp_config.staleness = 2;
  ssp_config.straggler_model = config.straggler_model;
  const auto ssp = train_ssp(cluster, model, data, ssp_config);

  // Target: the loss the BSP runs provably reach (identical loss path per
  // iteration); cyclic/naive hit it at strictly later virtual times, and SSP
  // may never reach it (time_to_loss = inf), both consistent with Fig. 4.
  const double target = heter.trace.final_loss() + 1e-6;
  const double t_heter = heter.trace.time_to_loss(target);
  const double t_cyclic = cyclic.trace.time_to_loss(target);
  const double t_naive = naive.trace.time_to_loss(target);
  const double t_ssp = ssp.trace.time_to_loss(target);

  EXPECT_LT(t_heter, t_cyclic);
  EXPECT_LT(t_heter, t_naive);
  EXPECT_LT(t_heter, t_ssp);
}

TEST(Fig5Shape, ResourceUsageOrdering) {
  const Cluster cluster = cluster_a();
  ExperimentConfig config = base_config(cluster);
  config.model.fluctuation_sigma = 0.05;
  const auto summaries = compare_schemes(
      {SchemeKind::kNaive, SchemeKind::kCyclic, SchemeKind::kHeterAware,
       SchemeKind::kGroupBased},
      cluster, config);
  // Paper's ordering: naive lowest, cyclic middle, heter/group highest.
  EXPECT_LT(summaries[0].mean_usage(), summaries[1].mean_usage());
  EXPECT_LT(summaries[1].mean_usage(), summaries[2].mean_usage());
  EXPECT_GT(summaries[2].mean_usage(), 0.8);
  EXPECT_GT(summaries[3].mean_usage(), 0.8);
}

TEST(SectionV, GroupBasedAtLeastMatchesHeterUnderEstimationError) {
  // The motivation for the group-based variant: with noisy throughput
  // estimates, decoding from a fast complete group trims the tail that
  // misallocated workers add.
  const Cluster cluster = cluster_a();
  RunningStats heter_total, group_total;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ExperimentConfig config = base_config(cluster);
    config.iterations = 80;
    config.estimation_sigma = 0.3;
    config.model.fluctuation_sigma = 0.1;
    config.seed = seed;
    const auto summaries = compare_schemes(
        {SchemeKind::kHeterAware, SchemeKind::kGroupBased}, cluster, config);
    heter_total.add(summaries[0].mean_time());
    group_total.add(summaries[1].mean_time());
  }
  EXPECT_LE(group_total.mean(), heter_total.mean() * 1.02);
}

TEST(FaultTolerance, CodedSchemesNeverFailWithinProvisioning) {
  for (const std::size_t s : {std::size_t{1}, std::size_t{2}}) {
    const Cluster cluster = cluster_b();
    ExperimentConfig config = base_config(cluster, s);
    config.iterations = 60;
    config.model.num_stragglers = s;
    config.model.fault = true;
    const auto summaries = compare_schemes(
        {SchemeKind::kCyclic, SchemeKind::kHeterAware,
         SchemeKind::kGroupBased},
        cluster, config);
    for (const auto& summary : summaries)
      EXPECT_EQ(summary.failures, 0u) << summary.scheme << " s=" << s;
  }
}

TEST(FaultTolerance, ExceedingProvisioningFailsGracefully) {
  const Cluster cluster = cluster_a();
  ExperimentConfig config = base_config(cluster);
  config.iterations = 30;
  config.model.num_stragglers = 2;  // s = 1 provisioned
  config.model.fault = true;
  const auto summary =
      run_experiment(SchemeKind::kHeterAware, cluster, config);
  // Every iteration with 2 faults is undecodable and must be reported as a
  // failure rather than crashing or hanging.
  EXPECT_EQ(summary.failures, 30u);
}

}  // namespace
}  // namespace hgc
