// Tests for the engine scenario drivers: delay-trace replay and worker churn.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "engine/delay_trace.hpp"
#include "engine/scenario.hpp"

namespace hgc {
namespace {

using engine::ChurnConfig;
using engine::ChurnEvent;
using engine::DelayTrace;
using engine::TraceReplayConfig;

TEST(DelayTrace, ParsesCsvWithCommentsAndBlankLines) {
  std::istringstream in(
      "# provenance: crafted by hand\n"
      "0.0, 0.5, 0.0\n"
      "\n"
      "0.25,0.0,-1\n");
  const DelayTrace trace = engine::parse_delay_trace_csv(in);
  EXPECT_EQ(trace.num_iterations(), 2u);
  EXPECT_EQ(trace.num_workers(), 3u);
  EXPECT_DOUBLE_EQ(trace.at(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(trace.at(1, 0), 0.25);
  EXPECT_LT(trace.at(1, 2), 0.0);  // fault marker
}

TEST(DelayTrace, NegativeCellsBecomeFaults) {
  std::istringstream in("0.1,-1,0\n");
  const DelayTrace trace = engine::parse_delay_trace_csv(in);
  const IterationConditions cond = trace.conditions(0);
  EXPECT_DOUBLE_EQ(cond.delay[0], 0.1);
  EXPECT_FALSE(cond.faulted[0]);
  EXPECT_TRUE(cond.faulted[1]);
  EXPECT_DOUBLE_EQ(cond.delay[1], 0.0);
  EXPECT_DOUBLE_EQ(cond.speed_factor[2], 1.0);
}

TEST(DelayTrace, ReplayWrapsAroundTheTrace) {
  std::istringstream in("1,1\n2,2\n");
  const DelayTrace trace = engine::parse_delay_trace_csv(in);
  EXPECT_DOUBLE_EQ(trace.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(trace.at(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(trace.at(5, 1), 2.0);
}

TEST(DelayTrace, RejectsMalformedInput) {
  std::istringstream ragged("1,2\n3\n");
  EXPECT_THROW(engine::parse_delay_trace_csv(ragged), std::invalid_argument);
  std::istringstream garbage("1,oops\n");
  EXPECT_THROW(engine::parse_delay_trace_csv(garbage), std::invalid_argument);
  std::istringstream empty("# only a comment\n");
  EXPECT_THROW(engine::parse_delay_trace_csv(empty), std::invalid_argument);
  std::istringstream trailing("1,2x\n");
  EXPECT_THROW(engine::parse_delay_trace_csv(trailing), std::invalid_argument);
}

TEST(DelayTrace, RoundTripsThroughCsv) {
  const DelayTrace trace({{0.0, 1.5, -1.0}, {0.25, 0.0, 3.0}});
  std::ostringstream out;
  engine::write_delay_trace_csv(trace, out);
  std::istringstream in(out.str());
  const DelayTrace back = engine::parse_delay_trace_csv(in);
  EXPECT_EQ(back.rows(), trace.rows());
}

TEST(DelayTrace, WriteRoundTripsFullDoublePrecision) {
  // Regression: the writer used operator<<'s default 6 significant digits,
  // so any delay that wasn't short-decimal came back changed after a
  // save/load cycle — breaking the "same trace row drives every scheme"
  // fairness contract. Every double must survive write→parse exactly.
  const DelayTrace trace({{0.1 + 0.2, 1.0 / 3.0, 1.2345678901234567},
                          {1e-17, 123456.789012345, 9.87654321e+12},
                          {-1.0, 0.30000000000000004, 2.5e-300}});
  std::ostringstream out;
  engine::write_delay_trace_csv(trace, out);
  std::istringstream in(out.str());
  const DelayTrace back = engine::parse_delay_trace_csv(in);
  ASSERT_EQ(back.num_iterations(), trace.num_iterations());
  for (std::size_t r = 0; r < trace.num_iterations(); ++r)
    for (std::size_t w = 0; w < trace.num_workers(); ++w)
      EXPECT_EQ(back.at(r, w), trace.at(r, w))
          << "row " << r << ", worker " << w << " did not round-trip";
}

TEST(DelayTrace, LoadsFromFileAndRejectsMissingFile) {
  const std::string path = "delay_trace_test_tmp.csv";
  {
    std::ofstream out(path);
    out << "0.5,0\n0,0.5\n";
  }
  const DelayTrace trace = engine::load_delay_trace_csv(path);
  EXPECT_EQ(trace.num_iterations(), 2u);
  std::remove(path.c_str());
  EXPECT_THROW(engine::load_delay_trace_csv("does_not_exist.csv"),
               std::invalid_argument);
}

TEST(TraceReplay, AbsorbsTracedStragglersLikeTheModel) {
  // Worker 3 is delayed every iteration; s = 1 absorbs it, so heter-aware
  // replays at the ideal time as if the trace were clean.
  const Cluster cluster = cluster_a();
  std::vector<std::vector<double>> rows(10, std::vector<double>(8, 0.0));
  for (auto& row : rows) row[3] = 5.0;
  const DelayTrace trace(std::move(rows));

  TraceReplayConfig config;
  config.s = 1;
  config.k = 24;
  const auto result =
      engine::replay_trace(SchemeKind::kHeterAware, cluster, trace, config);
  EXPECT_EQ(result.iterations, 10u);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_NEAR(result.iteration_time.mean(), ideal_iteration_time(cluster, 1),
              1e-9);
  EXPECT_NEAR(result.latency.p99(), ideal_iteration_time(cluster, 1), 1e-9);
}

TEST(TraceReplay, FaultRowsKillNaiveButNotCoded) {
  const Cluster cluster = cluster_a();
  std::vector<std::vector<double>> rows(6, std::vector<double>(8, 0.0));
  rows[2][5] = -1.0;  // worker 5 faults on iteration 2 only
  const DelayTrace trace(std::move(rows));

  TraceReplayConfig config;
  config.s = 1;
  const auto results = engine::replay_trace_comparison(
      {SchemeKind::kNaive, SchemeKind::kHeterAware}, cluster, trace, config);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].failures, 1u);  // naive loses exactly the fault row
  EXPECT_EQ(results[1].failures, 0u);
}

TEST(TraceReplay, IterationCountDefaultsToTraceLengthAndWraps) {
  const Cluster cluster = cluster_a();
  const DelayTrace trace(
      std::vector<std::vector<double>>(4, std::vector<double>(8, 0.0)));
  TraceReplayConfig config;
  const auto one_pass =
      engine::replay_trace(SchemeKind::kCyclic, cluster, trace, config);
  EXPECT_EQ(one_pass.iterations, 4u);

  config.iterations = 10;  // wraps around the 4-row trace
  const auto wrapped =
      engine::replay_trace(SchemeKind::kCyclic, cluster, trace, config);
  EXPECT_EQ(wrapped.iterations, 10u);
  EXPECT_NEAR(wrapped.total_time, 2.5 * one_pass.total_time, 1e-9);
}

TEST(TraceReplay, RejectsWidthMismatch) {
  const Cluster cluster = cluster_a();  // 8 workers
  const DelayTrace trace({{0.0, 0.0, 0.0}});
  EXPECT_THROW(engine::replay_trace(SchemeKind::kCyclic, cluster, trace, {}),
               std::invalid_argument);
}

TEST(Churn, StableMembershipNeverReinstantiates) {
  ChurnConfig config;
  config.iterations = 20;
  config.model.num_stragglers = 1;
  config.model.delay_seconds = 0.2;
  const auto result =
      engine::run_churn_scenario(SchemeKind::kHeterAware, cluster_a(), config);
  EXPECT_EQ(result.iterations_run, 20u);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_EQ(result.reinstantiations, 0u);
  EXPECT_EQ(result.epoch_sizes, (std::vector<std::size_t>{8}));
  EXPECT_GT(result.total_time, 0.0);
  EXPECT_EQ(result.latency.count(), 20u);
  EXPECT_LE(result.latency.p50(), result.latency.p99());
}

TEST(Churn, LeaveAndJoinEachReinstantiate) {
  ChurnConfig config;
  config.iterations = 30;
  // After ~5 virtual seconds worker 7 (the fast one) leaves; later two fresh
  // workers join.
  config.events.push_back({0.05, false, 7, {}});
  config.events.push_back({0.30, true, 0, {4, 4.0}});
  config.events.push_back({0.30, true, 0, {2, 2.0}});
  const auto result =
      engine::run_churn_scenario(SchemeKind::kHeterAware, cluster_a(), config);
  EXPECT_EQ(result.reinstantiations, 2u);  // both joins land in one rebuild
  EXPECT_EQ(result.epoch_sizes, (std::vector<std::size_t>{8, 7, 9}));
  EXPECT_EQ(result.failures, 0u);
  EXPECT_EQ(result.iterations_run, 30u);
}

TEST(Churn, DepartedWorkerCanBeNamedByStableId) {
  ChurnConfig config;
  config.iterations = 10;
  config.events.push_back({0.0, true, 0, {8, 8.0}});   // joins as id 8
  config.events.push_back({0.10, false, 8, {}});       // and leaves again
  const auto result =
      engine::run_churn_scenario(SchemeKind::kCyclic, cluster_a(), config);
  EXPECT_EQ(result.reinstantiations, 2u);
  EXPECT_EQ(result.epoch_sizes, (std::vector<std::size_t>{8, 9, 8}));
}

TEST(Churn, RejectsBadEventStreams) {
  ChurnConfig config;
  config.iterations = 5;
  config.events.push_back({1.0, false, 3, {}});
  config.events.push_back({0.5, false, 4, {}});  // unsorted
  EXPECT_THROW(
      engine::run_churn_scenario(SchemeKind::kCyclic, cluster_a(), config),
      std::invalid_argument);

  ChurnConfig unknown;
  unknown.iterations = 5;
  unknown.events.push_back({0.0, false, 42, {}});  // no such worker
  EXPECT_THROW(
      engine::run_churn_scenario(SchemeKind::kCyclic, cluster_a(), unknown),
      std::invalid_argument);
}

TEST(Churn, RefusesToShrinkBelowTolerance) {
  const Cluster tiny("tiny", {{1, 1.0}, {1, 1.0}, {1, 1.0}});
  ChurnConfig config;
  config.iterations = 5;
  config.s = 1;
  config.events.push_back({0.0, false, 0, {}});  // 2 left < s + 2
  EXPECT_THROW(
      engine::run_churn_scenario(SchemeKind::kCyclic, tiny, config),
      std::invalid_argument);
}

using engine::ScenarioScript;
using engine::ScriptConfig;

TEST(ScenarioScript, DriftRampInterpolatesLinearly) {
  engine::DriftWindow drift;
  drift.worker = 0;
  drift.from = 1.0;
  drift.to = 0.5;
  drift.t0 = 2.0;
  drift.t1 = 4.0;
  EXPECT_DOUBLE_EQ(drift.factor_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(drift.factor_at(2.0), 1.0);
  EXPECT_DOUBLE_EQ(drift.factor_at(3.0), 0.75);
  EXPECT_DOUBLE_EQ(drift.factor_at(4.0), 0.5);
  EXPECT_DOUBLE_EQ(drift.factor_at(100.0), 0.5);
}

TEST(ScenarioScript, EmptyScriptMatchesChurnlessRun) {
  // A script with no statements beyond the worker count is exactly the
  // churn driver with no events.
  const Cluster cluster = cluster_a();
  ScenarioScript script;
  script.workers = 8;
  ScriptConfig config;
  config.iterations = 15;
  config.model.num_stragglers = 1;
  config.model.delay_seconds = 0.2;
  const auto run = engine::run_script_scenario(SchemeKind::kHeterAware,
                                               cluster, script, config);
  ChurnConfig churn_config;
  churn_config.iterations = 15;
  churn_config.model = config.model;
  const auto churn = engine::run_churn_scenario(SchemeKind::kHeterAware,
                                                cluster, churn_config);
  EXPECT_DOUBLE_EQ(run.total_time, churn.total_time);
  EXPECT_EQ(run.failures, churn.failures);
  EXPECT_EQ(run.bursts_started, 0u);
}

TEST(ScenarioScript, RejectsWorkerCountMismatch) {
  ScenarioScript script;
  script.workers = 4;  // Cluster-A has 8
  EXPECT_THROW(engine::run_script_scenario(SchemeKind::kCyclic, cluster_a(),
                                           script, {}),
               std::invalid_argument);
  ScenarioScript wide_splice;
  wide_splice.workers = 8;
  wide_splice.splice = DelayTrace({{0.0, 0.0, 0.0}});  // 3 columns
  EXPECT_THROW(engine::run_script_scenario(SchemeKind::kCyclic, cluster_a(),
                                           wide_splice, {}),
               std::invalid_argument);
}

TEST(ScenarioScript, SpliceOnlyScriptReplaysExactlyLikeTraceReplay) {
  // With a clean base model, a splice-only script must be the trace-replay
  // driver: same trace row, same virtual times, iteration for iteration.
  const Cluster cluster = cluster_a();
  std::vector<std::vector<double>> rows(6, std::vector<double>(8, 0.0));
  for (std::size_t r = 0; r < rows.size(); ++r) rows[r][r % 8] = 0.3;
  rows[2][5] = -1.0;
  const DelayTrace trace(rows);

  ScenarioScript script;
  script.workers = 8;
  script.splice = trace;
  script.splice_repeat = 0;  // wrap like the replay driver
  ScriptConfig config;
  config.iterations = 10;
  config.s = 1;
  const auto scripted = engine::run_script_scenario(SchemeKind::kHeterAware,
                                                    cluster, script, config);

  TraceReplayConfig replay_config;
  replay_config.iterations = 10;
  replay_config.s = 1;
  const auto replayed = engine::replay_trace(SchemeKind::kHeterAware,
                                             cluster, trace, replay_config);
  EXPECT_EQ(scripted.failures, replayed.failures);
  EXPECT_DOUBLE_EQ(scripted.iteration_time.mean(),
                   replayed.iteration_time.mean());
  EXPECT_DOUBLE_EQ(scripted.total_time, replayed.total_time);
}

TEST(ScenarioScript, SpliceRepeatStopsContributingAfterItsPasses) {
  // One pass over a one-row splice: iteration 0 is delayed, the rest are
  // clean, so the mean sits strictly between the clean and delayed times.
  const Cluster cluster = cluster_a();
  const double ideal = ideal_iteration_time(cluster, 1);
  std::vector<double> row(8, 0.0);
  row[0] = 5.0 * ideal;

  ScenarioScript once;
  once.workers = 8;
  once.splice = DelayTrace({row});
  once.splice_repeat = 1;
  ScriptConfig config;
  config.iterations = 4;
  config.s = 1;
  config.k = 24;
  const auto one_pass = engine::run_script_scenario(SchemeKind::kNaive,
                                                    cluster, once, config);

  ScenarioScript forever = once;
  forever.splice_repeat = 0;
  const auto wrapped = engine::run_script_scenario(SchemeKind::kNaive,
                                                   cluster, forever, config);
  ScenarioScript clean;
  clean.workers = 8;
  const auto baseline = engine::run_script_scenario(SchemeKind::kNaive,
                                                    cluster, clean, config);
  // Naive cannot mask the straggler: every wrapped round pays the delayed
  // time D, while one pass pays D once and the clean time C three times.
  const double d = wrapped.total_time / 4.0;
  const double c = baseline.total_time / 4.0;
  EXPECT_GT(d, c);
  EXPECT_NEAR(one_pass.total_time, d + 3.0 * c, 1e-9);
}

TEST(ScenarioScript, DriftSlowsTheDriftedWorker) {
  // Worker 0 collapses to 10% speed from t=0 on. Naive (k = m, everyone
  // must answer) pays the full slowdown every round.
  const Cluster cluster = cluster_a();
  ScenarioScript script;
  script.workers = 8;
  engine::DriftWindow drift;
  drift.worker = 0;
  drift.from = 0.1;
  drift.to = 0.1;
  drift.t0 = 0.0;
  drift.t1 = 1.0;
  script.drifts = {drift};

  ScriptConfig config;
  config.iterations = 8;
  config.s = 1;
  config.k = 24;
  const auto drifted = engine::run_script_scenario(SchemeKind::kNaive,
                                                   cluster, script, config);
  ScenarioScript clean;
  clean.workers = 8;
  const auto baseline = engine::run_script_scenario(SchemeKind::kNaive,
                                                    cluster, clean, config);
  EXPECT_GT(drifted.iteration_time.mean(),
            5.0 * baseline.iteration_time.mean());
}

TEST(ScenarioScript, CorrelatedFaultBurstOverwhelmsToleranceButNotTimeout) {
  // A p=1, effectively-permanent burst faults 3 workers at once; s=1
  // cannot decode any round, and the give-up timeout must keep the clock
  // moving (one ideal round time per failed iteration) instead of pinning
  // it inside the burst window forever.
  const Cluster cluster = cluster_a();
  ScenarioScript script;
  script.workers = 8;
  engine::CorrelatedStragglers burst;
  burst.workers = {0, 1, 2};
  burst.probability = 1.0;
  burst.duration = 1e9;
  burst.fault = true;
  script.bursts = {burst};

  ScriptConfig config;
  config.iterations = 6;
  config.s = 1;
  const auto run = engine::run_script_scenario(SchemeKind::kHeterAware,
                                               cluster, script, config);
  EXPECT_EQ(run.failures, 6u);
  EXPECT_EQ(run.bursts_started, 1u);
  EXPECT_NEAR(run.total_time, 6.0 * ideal_iteration_time(cluster, 1), 1e-9);
}

TEST(ScenarioScript, CorrelatedDelayBurstIsAbsorbedWithinTolerance) {
  // A single-worker burst within s=1 tolerance: heter-aware rides through
  // at the ideal time while the burst still fires.
  const Cluster cluster = cluster_a();
  ScenarioScript script;
  script.workers = 8;
  engine::CorrelatedStragglers burst;
  burst.workers = {3};
  burst.probability = 1.0;
  burst.duration = 1e9;
  burst.delay = 10.0;
  script.bursts = {burst};

  ScriptConfig config;
  config.iterations = 10;
  config.s = 1;
  config.k = 24;
  const auto run = engine::run_script_scenario(SchemeKind::kHeterAware,
                                               cluster, script, config);
  EXPECT_EQ(run.failures, 0u);
  EXPECT_EQ(run.bursts_started, 1u);
  EXPECT_NEAR(run.iteration_time.mean(), ideal_iteration_time(cluster, 1),
              1e-9);
}

TEST(ScenarioScript, DeterministicForFixedSeed) {
  const Cluster cluster = cluster_a();
  ScenarioScript script;
  script.workers = 8;
  engine::CorrelatedStragglers burst;
  burst.workers = {1, 2};
  burst.probability = 0.3;
  burst.duration = 0.1;
  burst.delay = 0.2;
  script.bursts = {burst};
  engine::DriftWindow drift;
  drift.worker = 4;
  drift.from = 1.0;
  drift.to = 0.6;
  drift.t0 = 0.1;
  drift.t1 = 0.5;
  script.drifts = {drift};
  script.churn.push_back({0.2, false, 7, {}});

  ScriptConfig config;
  config.iterations = 25;
  config.model.fluctuation_sigma = 0.05;
  config.seed = 7;
  const auto a = engine::run_script_scenario(SchemeKind::kHeterAware,
                                             cluster, script, config);
  const auto b = engine::run_script_scenario(SchemeKind::kHeterAware,
                                             cluster, script, config);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.bursts_started, b.bursts_started);
  EXPECT_EQ(a.reinstantiations, 1u);
  EXPECT_DOUBLE_EQ(a.latency.p95(), b.latency.p95());
}

TEST(Churn, DeterministicForFixedSeed) {
  ChurnConfig config;
  config.iterations = 25;
  config.model.num_stragglers = 1;
  config.model.fluctuation_sigma = 0.05;
  config.events.push_back({0.10, false, 2, {}});
  const auto a =
      engine::run_churn_scenario(SchemeKind::kHeterAware, cluster_a(), config);
  const auto b =
      engine::run_churn_scenario(SchemeKind::kHeterAware, cluster_a(), config);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.reinstantiations, b.reinstantiations);
  EXPECT_DOUBLE_EQ(a.latency.p95(), b.latency.p95());
}

}  // namespace
}  // namespace hgc
