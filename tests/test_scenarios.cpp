// Tests for the engine scenario drivers: delay-trace replay and worker churn.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "engine/delay_trace.hpp"
#include "engine/scenario.hpp"

namespace hgc {
namespace {

using engine::ChurnConfig;
using engine::ChurnEvent;
using engine::DelayTrace;
using engine::TraceReplayConfig;

TEST(DelayTrace, ParsesCsvWithCommentsAndBlankLines) {
  std::istringstream in(
      "# provenance: crafted by hand\n"
      "0.0, 0.5, 0.0\n"
      "\n"
      "0.25,0.0,-1\n");
  const DelayTrace trace = engine::parse_delay_trace_csv(in);
  EXPECT_EQ(trace.num_iterations(), 2u);
  EXPECT_EQ(trace.num_workers(), 3u);
  EXPECT_DOUBLE_EQ(trace.at(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(trace.at(1, 0), 0.25);
  EXPECT_LT(trace.at(1, 2), 0.0);  // fault marker
}

TEST(DelayTrace, NegativeCellsBecomeFaults) {
  std::istringstream in("0.1,-1,0\n");
  const DelayTrace trace = engine::parse_delay_trace_csv(in);
  const IterationConditions cond = trace.conditions(0);
  EXPECT_DOUBLE_EQ(cond.delay[0], 0.1);
  EXPECT_FALSE(cond.faulted[0]);
  EXPECT_TRUE(cond.faulted[1]);
  EXPECT_DOUBLE_EQ(cond.delay[1], 0.0);
  EXPECT_DOUBLE_EQ(cond.speed_factor[2], 1.0);
}

TEST(DelayTrace, ReplayWrapsAroundTheTrace) {
  std::istringstream in("1,1\n2,2\n");
  const DelayTrace trace = engine::parse_delay_trace_csv(in);
  EXPECT_DOUBLE_EQ(trace.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(trace.at(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(trace.at(5, 1), 2.0);
}

TEST(DelayTrace, RejectsMalformedInput) {
  std::istringstream ragged("1,2\n3\n");
  EXPECT_THROW(engine::parse_delay_trace_csv(ragged), std::invalid_argument);
  std::istringstream garbage("1,oops\n");
  EXPECT_THROW(engine::parse_delay_trace_csv(garbage), std::invalid_argument);
  std::istringstream empty("# only a comment\n");
  EXPECT_THROW(engine::parse_delay_trace_csv(empty), std::invalid_argument);
  std::istringstream trailing("1,2x\n");
  EXPECT_THROW(engine::parse_delay_trace_csv(trailing), std::invalid_argument);
}

TEST(DelayTrace, RoundTripsThroughCsv) {
  const DelayTrace trace({{0.0, 1.5, -1.0}, {0.25, 0.0, 3.0}});
  std::ostringstream out;
  engine::write_delay_trace_csv(trace, out);
  std::istringstream in(out.str());
  const DelayTrace back = engine::parse_delay_trace_csv(in);
  EXPECT_EQ(back.rows(), trace.rows());
}

TEST(DelayTrace, LoadsFromFileAndRejectsMissingFile) {
  const std::string path = "delay_trace_test_tmp.csv";
  {
    std::ofstream out(path);
    out << "0.5,0\n0,0.5\n";
  }
  const DelayTrace trace = engine::load_delay_trace_csv(path);
  EXPECT_EQ(trace.num_iterations(), 2u);
  std::remove(path.c_str());
  EXPECT_THROW(engine::load_delay_trace_csv("does_not_exist.csv"),
               std::invalid_argument);
}

TEST(TraceReplay, AbsorbsTracedStragglersLikeTheModel) {
  // Worker 3 is delayed every iteration; s = 1 absorbs it, so heter-aware
  // replays at the ideal time as if the trace were clean.
  const Cluster cluster = cluster_a();
  std::vector<std::vector<double>> rows(10, std::vector<double>(8, 0.0));
  for (auto& row : rows) row[3] = 5.0;
  const DelayTrace trace(std::move(rows));

  TraceReplayConfig config;
  config.s = 1;
  config.k = 24;
  const auto result =
      engine::replay_trace(SchemeKind::kHeterAware, cluster, trace, config);
  EXPECT_EQ(result.iterations, 10u);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_NEAR(result.iteration_time.mean(), ideal_iteration_time(cluster, 1),
              1e-9);
  EXPECT_NEAR(result.latency.p99(), ideal_iteration_time(cluster, 1), 1e-9);
}

TEST(TraceReplay, FaultRowsKillNaiveButNotCoded) {
  const Cluster cluster = cluster_a();
  std::vector<std::vector<double>> rows(6, std::vector<double>(8, 0.0));
  rows[2][5] = -1.0;  // worker 5 faults on iteration 2 only
  const DelayTrace trace(std::move(rows));

  TraceReplayConfig config;
  config.s = 1;
  const auto results = engine::replay_trace_comparison(
      {SchemeKind::kNaive, SchemeKind::kHeterAware}, cluster, trace, config);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].failures, 1u);  // naive loses exactly the fault row
  EXPECT_EQ(results[1].failures, 0u);
}

TEST(TraceReplay, IterationCountDefaultsToTraceLengthAndWraps) {
  const Cluster cluster = cluster_a();
  const DelayTrace trace(
      std::vector<std::vector<double>>(4, std::vector<double>(8, 0.0)));
  TraceReplayConfig config;
  const auto one_pass =
      engine::replay_trace(SchemeKind::kCyclic, cluster, trace, config);
  EXPECT_EQ(one_pass.iterations, 4u);

  config.iterations = 10;  // wraps around the 4-row trace
  const auto wrapped =
      engine::replay_trace(SchemeKind::kCyclic, cluster, trace, config);
  EXPECT_EQ(wrapped.iterations, 10u);
  EXPECT_NEAR(wrapped.total_time, 2.5 * one_pass.total_time, 1e-9);
}

TEST(TraceReplay, RejectsWidthMismatch) {
  const Cluster cluster = cluster_a();  // 8 workers
  const DelayTrace trace({{0.0, 0.0, 0.0}});
  EXPECT_THROW(engine::replay_trace(SchemeKind::kCyclic, cluster, trace, {}),
               std::invalid_argument);
}

TEST(Churn, StableMembershipNeverReinstantiates) {
  ChurnConfig config;
  config.iterations = 20;
  config.model.num_stragglers = 1;
  config.model.delay_seconds = 0.2;
  const auto result =
      engine::run_churn_scenario(SchemeKind::kHeterAware, cluster_a(), config);
  EXPECT_EQ(result.iterations_run, 20u);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_EQ(result.reinstantiations, 0u);
  EXPECT_EQ(result.epoch_sizes, (std::vector<std::size_t>{8}));
  EXPECT_GT(result.total_time, 0.0);
  EXPECT_EQ(result.latency.count(), 20u);
  EXPECT_LE(result.latency.p50(), result.latency.p99());
}

TEST(Churn, LeaveAndJoinEachReinstantiate) {
  ChurnConfig config;
  config.iterations = 30;
  // After ~5 virtual seconds worker 7 (the fast one) leaves; later two fresh
  // workers join.
  config.events.push_back({0.05, false, 7, {}});
  config.events.push_back({0.30, true, 0, {4, 4.0}});
  config.events.push_back({0.30, true, 0, {2, 2.0}});
  const auto result =
      engine::run_churn_scenario(SchemeKind::kHeterAware, cluster_a(), config);
  EXPECT_EQ(result.reinstantiations, 2u);  // both joins land in one rebuild
  EXPECT_EQ(result.epoch_sizes, (std::vector<std::size_t>{8, 7, 9}));
  EXPECT_EQ(result.failures, 0u);
  EXPECT_EQ(result.iterations_run, 30u);
}

TEST(Churn, DepartedWorkerCanBeNamedByStableId) {
  ChurnConfig config;
  config.iterations = 10;
  config.events.push_back({0.0, true, 0, {8, 8.0}});   // joins as id 8
  config.events.push_back({0.10, false, 8, {}});       // and leaves again
  const auto result =
      engine::run_churn_scenario(SchemeKind::kCyclic, cluster_a(), config);
  EXPECT_EQ(result.reinstantiations, 2u);
  EXPECT_EQ(result.epoch_sizes, (std::vector<std::size_t>{8, 9, 8}));
}

TEST(Churn, RejectsBadEventStreams) {
  ChurnConfig config;
  config.iterations = 5;
  config.events.push_back({1.0, false, 3, {}});
  config.events.push_back({0.5, false, 4, {}});  // unsorted
  EXPECT_THROW(
      engine::run_churn_scenario(SchemeKind::kCyclic, cluster_a(), config),
      std::invalid_argument);

  ChurnConfig unknown;
  unknown.iterations = 5;
  unknown.events.push_back({0.0, false, 42, {}});  // no such worker
  EXPECT_THROW(
      engine::run_churn_scenario(SchemeKind::kCyclic, cluster_a(), unknown),
      std::invalid_argument);
}

TEST(Churn, RefusesToShrinkBelowTolerance) {
  const Cluster tiny("tiny", {{1, 1.0}, {1, 1.0}, {1, 1.0}});
  ChurnConfig config;
  config.iterations = 5;
  config.s = 1;
  config.events.push_back({0.0, false, 0, {}});  // 2 left < s + 2
  EXPECT_THROW(
      engine::run_churn_scenario(SchemeKind::kCyclic, tiny, config),
      std::invalid_argument);
}

TEST(Churn, DeterministicForFixedSeed) {
  ChurnConfig config;
  config.iterations = 25;
  config.model.num_stragglers = 1;
  config.model.fluctuation_sigma = 0.05;
  config.events.push_back({0.10, false, 2, {}});
  const auto a =
      engine::run_churn_scenario(SchemeKind::kHeterAware, cluster_a(), config);
  const auto b =
      engine::run_churn_scenario(SchemeKind::kHeterAware, cluster_a(), config);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.reinstantiations, b.reinstantiations);
  EXPECT_DOUBLE_EQ(a.latency.p95(), b.latency.p95());
}

}  // namespace
}  // namespace hgc
