// Paper-scale consistency: the full Table II clusters (8..58 workers) at
// realistic partition counts — scheme construction, robustness spot checks,
// simulator/analytic agreement, and Monte Carlo validation that the Eq. 3
// worst case really is the ceiling of what the simulator can produce.
#include <gtest/gtest.h>

#include <cmath>

#include "core/group_based.hpp"
#include "core/robustness.hpp"
#include "core/scheme_factory.hpp"
#include "sim/experiment.hpp"

namespace hgc {
namespace {

class PaperScale : public ::testing::TestWithParam<std::size_t> {
 protected:
  Cluster cluster() const {
    switch (GetParam()) {
      case 0:
        return cluster_a();
      case 1:
        return cluster_b();
      case 2:
        return cluster_c();
      default:
        return cluster_d();
    }
  }
};

TEST_P(PaperScale, HeterAwareBuildsAndBalances) {
  const Cluster c = cluster();
  const std::size_t k = exact_partition_count(c, 1);
  Rng rng(301);
  const auto scheme =
      make_scheme(SchemeKind::kHeterAware, c.throughputs(), k, 1, rng);
  // Exactly integral shares: every worker's time is identical.
  const Throughputs t = c.throughputs();
  const double t0 = static_cast<double>(scheme->load(0)) / t[0];
  for (WorkerId w = 1; w < c.size(); ++w)
    EXPECT_NEAR(static_cast<double>(scheme->load(w)) / t[w], t0, 1e-9)
        << c.name() << " worker " << w;
}

TEST_P(PaperScale, SpotCheckStragglerPatterns) {
  // Brute force over all patterns is infeasible at m = 58; check every
  // singleton and a band of adjacent pairs (s = 2 code).
  const Cluster c = cluster();
  const std::size_t m = c.size();
  const std::size_t k = 2 * m;
  Rng rng(302);
  const auto scheme =
      make_scheme(SchemeKind::kHeterAware, c.throughputs(), k, 2, rng);
  for (WorkerId w = 0; w < m; ++w) {
    std::vector<bool> received(m, true);
    received[w] = false;
    if (w + 1 < m) received[w + 1] = false;
    const auto a = scheme->decoding_coefficients(received);
    ASSERT_TRUE(a.has_value()) << c.name() << " pair at " << w;
    const Vector ab = scheme->coding_matrix().apply_transpose(*a);
    for (double v : ab) EXPECT_NEAR(v, 1.0, 1e-6);
  }
}

TEST_P(PaperScale, SimulatorAgreesWithCompletionTime) {
  // The event simulator under clean conditions must reproduce the analytic
  // completion_time for the empty straggler set.
  const Cluster c = cluster();
  const std::size_t k = exact_partition_count(c, 1);
  Rng rng(303);
  const auto scheme =
      make_scheme(SchemeKind::kHeterAware, c.throughputs(), k, 1, rng);

  IterationConditions cond;
  cond.speed_factor.assign(c.size(), 1.0);
  cond.delay.assign(c.size(), 0.0);
  cond.faulted.assign(c.size(), false);
  const auto sim = simulate_iteration(*scheme, c, cond);
  ASSERT_TRUE(sim.decoded);

  // completion_time works in partition units; convert to seconds.
  const auto analytic = completion_time(*scheme, c.throughputs(), {});
  ASSERT_TRUE(analytic.has_value());
  EXPECT_NEAR(sim.time, *analytic / static_cast<double>(k), 1e-9);
}

TEST_P(PaperScale, MonteCarloNeverExceedsWorstCase) {
  // Random fault patterns within the budget can never beat Eq. 3's ceiling
  // (in partition units both sides use the same arithmetic).
  const Cluster c = cluster();
  const std::size_t m = c.size();
  const std::size_t s = 2;
  Rng rng(304);
  const auto scheme =
      make_scheme(SchemeKind::kHeterAware, c.throughputs(), 2 * m, s, rng);

  // Analytic ceiling: evaluate T(B, S) for the worst single pattern found
  // by randomized search (full enumeration is C(58, 2) = 1653 — fine).
  const auto ceiling = worst_case_time(*scheme, c.throughputs());
  ASSERT_TRUE(ceiling.has_value());

  Rng pattern_rng(305);
  for (int trial = 0; trial < 200; ++trial) {
    const auto victims = pattern_rng.sample_without_replacement(m, s);
    const auto t = completion_time(*scheme, c.throughputs(),
                                   StragglerSet(victims.begin(), victims.end()));
    ASSERT_TRUE(t.has_value());
    EXPECT_LE(*t, *ceiling + 1e-9) << c.name() << " trial " << trial;
  }
}

TEST_P(PaperScale, GroupSchemeScalesAndStaysDisjoint) {
  const Cluster c = cluster();
  const std::size_t k = exact_partition_count(c, 1);
  Rng rng(306);
  GroupBasedScheme scheme(c.throughputs(), k, 1, rng);
  EXPECT_TRUE(are_disjoint(scheme.groups()));
  EXPECT_LE(scheme.groups().size(), 2u);  // ≤ s + 1
  for (const Group& g : scheme.groups())
    EXPECT_TRUE(is_exact_cover(scheme.assignment(), k, g));
}

TEST_P(PaperScale, ExperimentHarnessRunsAllSchemes) {
  const Cluster c = cluster();
  ExperimentConfig config;
  config.s = 1;
  config.k = exact_partition_count(c, 1);
  config.iterations = 10;
  config.model.num_stragglers = 1;
  config.model.delay_seconds = 0.05;
  config.model.fluctuation_sigma = 0.05;
  const auto summaries = compare_schemes(paper_schemes(), c, config);
  for (const auto& summary : summaries) {
    EXPECT_EQ(summary.failures, 0u) << c.name() << " " << summary.scheme;
    EXPECT_GT(summary.mean_time(), 0.0);
    EXPECT_GT(summary.mean_usage(), 0.0);
    EXPECT_LE(summary.mean_usage(), 1.0 + 1e-9);
  }
}

std::string cluster_case_name(
    const ::testing::TestParamInfo<std::size_t>& info) {
  switch (info.param) {
    case 0:
      return "ClusterA";
    case 1:
      return "ClusterB";
    case 2:
      return "ClusterC";
    default:
      return "ClusterD";
  }
}

INSTANTIATE_TEST_SUITE_P(TableII, PaperScale,
                         ::testing::Values(0u, 1u, 2u, 3u),
                         cluster_case_name);

}  // namespace
}  // namespace hgc
