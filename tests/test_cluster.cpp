// Tests for the cluster model (Table II presets) and straggler injection.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "cluster/cluster.hpp"
#include "cluster/straggler.hpp"

namespace hgc {
namespace {

TEST(Cluster, TableIIWorkerCounts) {
  EXPECT_EQ(cluster_a().size(), 8u);
  EXPECT_EQ(cluster_b().size(), 16u);
  EXPECT_EQ(cluster_c().size(), 32u);
  EXPECT_EQ(cluster_d().size(), 58u);
}

TEST(Cluster, TableIIVcpuHistograms) {
  auto histogram = [](const Cluster& cluster) {
    std::map<unsigned, std::size_t> h;
    for (const auto& w : cluster.workers()) ++h[w.vcpus];
    return h;
  };
  const auto ha = histogram(cluster_a());
  EXPECT_EQ(ha.at(2), 2u);
  EXPECT_EQ(ha.at(4), 2u);
  EXPECT_EQ(ha.at(8), 3u);
  EXPECT_EQ(ha.at(12), 1u);
  const auto hd = histogram(cluster_d());
  EXPECT_EQ(hd.at(4), 4u);
  EXPECT_EQ(hd.at(8), 20u);
  EXPECT_EQ(hd.at(12), 18u);
  EXPECT_EQ(hd.at(16), 16u);
  EXPECT_EQ(hd.count(2), 0u);
}

TEST(Cluster, ThroughputProportionalToVcpus) {
  const Cluster c = cluster_a(0.5);
  for (const auto& w : c.workers())
    EXPECT_DOUBLE_EQ(w.throughput, 0.5 * w.vcpus);
}

TEST(Cluster, SortedSlowestFirst) {
  for (const Cluster& c : paper_clusters()) {
    const auto t = c.throughputs();
    for (std::size_t i = 1; i < t.size(); ++i) EXPECT_LE(t[i - 1], t[i]);
  }
}

TEST(Cluster, HeterogeneityRatioClusterA) {
  // Cluster-A: Σvcpus = 2·2+2·4+3·8+12 = 48, mean 6, min 2 → ratio 3. This
  // is the paper's headline 3× heter-vs-cyclic speedup at full fault.
  EXPECT_NEAR(cluster_a().heterogeneity_ratio(), 3.0, 1e-12);
}

TEST(Cluster, TotalAndMinThroughput) {
  const Cluster c = cluster_a();
  EXPECT_NEAR(c.total_throughput(), 48.0, 1e-12);
  EXPECT_NEAR(c.min_throughput(), 2.0, 1e-12);
}

TEST(Cluster, RejectsEmptyAndNonPositive) {
  EXPECT_THROW(Cluster("x", {}), std::invalid_argument);
  EXPECT_THROW(Cluster("x", {{2, 0.0}}), std::invalid_argument);
  EXPECT_THROW(
      Cluster::from_vcpu_histogram("x", {{0, 1}}), std::invalid_argument);
}

TEST(Cluster, WorkerAccessorBounds) {
  const Cluster c = cluster_a();
  EXPECT_NO_THROW(c.worker(7));
  EXPECT_THROW(c.worker(8), std::invalid_argument);
}

TEST(StragglerModel, NoOpByDefault) {
  Rng rng(61);
  StragglerModel model;
  const auto cond = model.draw(5, rng);
  EXPECT_EQ(cond.size(), 5u);
  for (std::size_t w = 0; w < 5; ++w) {
    EXPECT_DOUBLE_EQ(cond.speed_factor[w], 1.0);
    EXPECT_DOUBLE_EQ(cond.delay[w], 0.0);
    EXPECT_FALSE(cond.faulted[w]);
  }
}

TEST(StragglerModel, DelaysExactlyNWorkers) {
  Rng rng(62);
  StragglerModel model;
  model.num_stragglers = 2;
  model.delay_seconds = 1.5;
  for (int trial = 0; trial < 50; ++trial) {
    const auto cond = model.draw(6, rng);
    std::size_t delayed = 0;
    for (std::size_t w = 0; w < 6; ++w)
      if (cond.delay[w] > 0.0) {
        ++delayed;
        EXPECT_DOUBLE_EQ(cond.delay[w], 1.5);
      }
    EXPECT_EQ(delayed, 2u);
  }
}

TEST(StragglerModel, FaultsInsteadOfDelays) {
  Rng rng(63);
  StragglerModel model;
  model.num_stragglers = 1;
  model.fault = true;
  const auto cond = model.draw(4, rng);
  const auto faults = std::count(cond.faulted.begin(), cond.faulted.end(), true);
  EXPECT_EQ(faults, 1);
  for (double d : cond.delay) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(StragglerModel, VictimsVaryAcrossIterations) {
  Rng rng(64);
  StragglerModel model;
  model.num_stragglers = 1;
  model.delay_seconds = 1.0;
  std::set<std::size_t> victims;
  for (int trial = 0; trial < 100; ++trial) {
    const auto cond = model.draw(5, rng);
    for (std::size_t w = 0; w < 5; ++w)
      if (cond.delay[w] > 0.0) victims.insert(w);
  }
  EXPECT_EQ(victims.size(), 5u);  // everyone gets hit eventually
}

TEST(StragglerModel, FluctuationStaysBoundedAndCentered) {
  Rng rng(65);
  StragglerModel model;
  model.fluctuation_sigma = 0.1;
  double sum = 0.0;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial) {
    const auto cond = model.draw(10, rng);
    for (double f : cond.speed_factor) {
      EXPECT_GE(f, 1.0 - 0.3 - 1e-12);
      EXPECT_LE(f, 1.0 + 0.3 + 1e-12);
      sum += f;
    }
  }
  EXPECT_NEAR(sum / (trials * 10), 1.0, 0.01);
}

TEST(StragglerModel, RejectsBadConfig) {
  Rng rng(66);
  StragglerModel model;
  model.num_stragglers = 7;
  EXPECT_THROW(model.draw(5, rng), std::invalid_argument);
  model.num_stragglers = 0;
  model.delay_seconds = -1.0;
  EXPECT_THROW(model.draw(5, rng), std::invalid_argument);
}

TEST(EstimateThroughputs, ExactWhenSigmaZero) {
  Rng rng(67);
  const Throughputs truth = {2, 4, 8};
  EXPECT_EQ(estimate_throughputs(truth, 0.0, rng), truth);
}

TEST(EstimateThroughputs, NoisyButBoundedAndPositive) {
  Rng rng(68);
  const Throughputs truth = {2, 4, 8, 12, 16};
  for (int trial = 0; trial < 100; ++trial) {
    const auto est = estimate_throughputs(truth, 0.2, rng);
    for (std::size_t w = 0; w < truth.size(); ++w) {
      EXPECT_GT(est[w], 0.0);
      EXPECT_GE(est[w], truth[w] * (1.0 - 0.6) - 1e-12);
      EXPECT_LE(est[w], truth[w] * (1.0 + 0.6) + 1e-12);
    }
  }
}

}  // namespace
}  // namespace hgc
