// Tests for the snapshot layer on top of the metrics registry: the exact
// JSON round-trip, the associative fleet merge, Prometheus exposition, and
// the background Recorder.
//
// Exactness boundaries under test:
//   * integer state (counters, histogram bucket counts, sample counts,
//     gauge timestamps, reservoir rng state) round-trips and merges to the
//     bit, including values past 2^53 that a double cannot hold;
//   * doubles round-trip through JSON to the bit (to_chars shortest form);
//   * merge is exactly commutative and associative on all integer state;
//     floating-point moments (histogram sums, Welford mean/m2) agree
//     across merge orders only to rounding, and the tests assert exactly
//     that — near, not bitwise.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "util/stats.hpp"

namespace hgc {
namespace {

using obs::GaugeSnapshot;
using obs::HistogramSnapshot;
using obs::Snapshot;

std::string to_json(const Snapshot& snap, bool compact = false) {
  std::ostringstream os;
  snap.write_json(os, compact);
  return os.str();
}

// --- JSON round-trip ----------------------------------------------------

Snapshot wide_snapshot() {
  Snapshot s;
  s.unix_ns = 1'700'000'001'234'567'891;
  s.counters["c.past_double"] = (std::uint64_t{1} << 53) + 1;  // not a double
  s.counters["c.max"] = std::numeric_limits<std::uint64_t>::max();
  s.counters["c.zero"] = 0;
  s.gauges["g.pi"] = GaugeSnapshot{3.141592653589793, 1'700'000'000'000'000'123};
  s.gauges["g.tiny"] = GaugeSnapshot{-2.2250738585072014e-308, 0};
  HistogramSnapshot h;
  h.bounds = {0.001, 0.1, 2.5};
  h.counts = {1, 0, 7, 2};
  h.sum = 19.25 + 1e-9;
  s.histograms["h.lat"] = h;
  RunningStats st;
  st.add(0.1);
  st.add(0.7);
  st.add(1.0 / 3.0);
  s.stats["s.time"] = st;
  ReservoirQuantiles q(4, 99);
  for (int i = 0; i < 12; ++i) q.add(0.25 * i);  // saturates: state advances
  s.quantiles["q.lat"] = q;
  return s;
}

TEST(ObsSnapshotJson, RoundTripsToTheBitIncludingWideIntegers) {
  const Snapshot s = wide_snapshot();
  EXPECT_EQ(Snapshot::read_json(to_json(s)), s);
  EXPECT_EQ(Snapshot::read_json(to_json(s, /*compact=*/true)), s);
  // Compact really is one line (the recorder's JSONL contract).
  EXPECT_EQ(to_json(s, true).find('\n'), std::string::npos);
}

TEST(ObsSnapshotJson, EmptySnapshotRoundTrips) {
  const Snapshot empty;
  EXPECT_EQ(Snapshot::read_json(to_json(empty)), empty);
}

TEST(ObsSnapshotJson, RegistrySnapshotRoundTrips) {
  obs::Registry::global().reset();
  obs::set_metrics_enabled(true);
  obs::Registry::global().counter("t.rt.c").add(41);
  obs::Registry::global().gauge("t.rt.g").set(0.1 + 0.2);  // not exactly 0.3
  const obs::Histogram h =
      obs::Registry::global().histogram("t.rt.h", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  obs::Registry::global().stat("t.rt.s").observe(1.0 / 7.0);
  obs::Registry::global().quantile("t.rt.q").observe(2.5);
  obs::set_metrics_enabled(false);

  const Snapshot snap = obs::Registry::global().snapshot();
  EXPECT_GT(snap.unix_ns, 0);
  EXPECT_EQ(snap.gauges.at("t.rt.g").ts_unix_ns, snap.unix_ns);
  EXPECT_DOUBLE_EQ(snap.histograms.at("t.rt.h").sum, 0.5 + 1.5 + 9.0);
  EXPECT_EQ(Snapshot::read_json(to_json(snap)), snap);
  obs::Registry::global().reset();
}

TEST(ObsSnapshotJson, ReadsThePr6LegacyFormat) {
  // The PR 6 writer emitted gauges as bare numbers, histograms without a
  // sum, stats with stddev instead of m2, and quantiles as percentiles
  // only — all still ingestible.
  const std::string legacy = R"({
    "counters": {"old.c": 5},
    "gauges": {"old.g": 2.5},
    "histograms": {"old.h": {"bounds": [1, 2], "counts": [3, 0, 1],
                             "total": 4}},
    "stats": {"old.s": {"count": 3, "mean": 2, "stddev": 1, "min": 1,
                        "max": 3}},
    "quantiles": {"old.q": {"count": 9, "p50": 1.5, "p95": 2.9, "p99": 3}}
  })";
  const Snapshot s = Snapshot::read_json(legacy);
  EXPECT_EQ(s.unix_ns, 0);
  EXPECT_EQ(s.counter("old.c"), 5u);
  EXPECT_DOUBLE_EQ(s.gauge("old.g"), 2.5);
  EXPECT_EQ(s.gauges.at("old.g").ts_unix_ns, 0);
  EXPECT_EQ(s.histograms.at("old.h").total(), 4u);
  EXPECT_DOUBLE_EQ(s.histograms.at("old.h").sum, 0.0);
  const RunningStats& st = s.stats.at("old.s");
  EXPECT_EQ(st.count(), 3u);
  EXPECT_DOUBLE_EQ(st.mean(), 2.0);
  EXPECT_NEAR(st.stddev(), 1.0, 1e-12);  // m2 reconstructed from stddev
  EXPECT_EQ(s.quantiles.at("old.q").count(), 9u);
}

TEST(ObsSnapshotJson, MalformedInputThrows) {
  EXPECT_THROW(Snapshot::read_json("not json"), std::runtime_error);
  EXPECT_THROW(Snapshot::read_json("[1, 2]"), std::runtime_error);
  // Histogram with counts/bounds size mismatch.
  EXPECT_THROW(Snapshot::read_json(
                   R"({"histograms": {"h": {"bounds": [1], "counts": [1]}}})"),
               std::runtime_error);
}

// --- Merge --------------------------------------------------------------

/// A deterministic pseudo-random snapshot; overlapping names across seeds
/// exercise the fold paths, disjoint ones the insert paths.
Snapshot fuzz_snapshot(std::uint64_t seed) {
  std::uint64_t x = seed * 0x9e3779b97f4a7c15ULL + 1;
  const auto next = [&x]() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  Snapshot s;
  s.unix_ns = static_cast<std::int64_t>(next() % 1'000'000'000);
  s.counters["shared.a"] = next();
  s.counters["shared.b"] = next() % 1000;
  s.counters["only." + std::to_string(seed % 3)] = next();
  s.gauges["shared.g"] = GaugeSnapshot{
      static_cast<double>(next() % 997) / 31.0,
      static_cast<std::int64_t>(next() % 100)};
  HistogramSnapshot h;
  h.bounds = {1.0, 10.0, 100.0};
  h.counts = {next() % 50, next() % 50, next() % 50, next() % 50};
  h.sum = static_cast<double>(next() % 10'000) / 7.0;
  s.histograms["shared.h"] = h;
  RunningStats st;
  const std::size_t n = 1 + next() % 6;
  for (std::size_t i = 0; i < n; ++i)
    st.add(static_cast<double>(next() % 1000) / 13.0);
  s.stats["shared.s"] = st;
  ReservoirQuantiles q(8, seed + 1);
  const std::size_t m = next() % 20;
  for (std::size_t i = 0; i < m; ++i)
    q.add(static_cast<double>(next() % 1000) / 17.0);
  s.quantiles["shared.q"] = q;
  return s;
}

Snapshot merged(const Snapshot& a, const Snapshot& b) {
  Snapshot out = a;
  out.merge(b);
  return out;
}

/// Exact on all integer state, near on floating-point moments.
void expect_equivalent(const Snapshot& a, const Snapshot& b,
                       const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.unix_ns, b.unix_ns);
  EXPECT_EQ(a.counters, b.counters);  // exact, bitwise
  EXPECT_EQ(a.gauges, b.gauges);      // LWW over a total order: exact
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  for (const auto& [name, ha] : a.histograms) {
    const HistogramSnapshot& hb = b.histograms.at(name);
    EXPECT_EQ(ha.bounds, hb.bounds);
    EXPECT_EQ(ha.counts, hb.counts);  // exact, bitwise
    EXPECT_NEAR(ha.sum, hb.sum, 1e-9 * (1.0 + std::abs(ha.sum)));
  }
  ASSERT_EQ(a.stats.size(), b.stats.size());
  for (const auto& [name, sa] : a.stats) {
    const RunningStats& sb = b.stats.at(name);
    EXPECT_EQ(sa.count(), sb.count());  // exact
    EXPECT_NEAR(sa.mean(), sb.mean(), 1e-9 * (1.0 + std::abs(sa.mean())));
    EXPECT_NEAR(sa.m2(), sb.m2(), 1e-6 * (1.0 + std::abs(sa.m2())));
    EXPECT_EQ(sa.min(), sb.min());  // min/max of the same set: exact
    EXPECT_EQ(sa.max(), sb.max());
  }
  ASSERT_EQ(a.quantiles.size(), b.quantiles.size());
  for (const auto& [name, qa] : a.quantiles)
    EXPECT_EQ(qa.count(), b.quantiles.at(name).count());  // exact
}

TEST(ObsSnapshotMerge, SumsCountersAndHistogramsExactly) {
  Snapshot a = fuzz_snapshot(1);
  const Snapshot b = fuzz_snapshot(2);
  const std::uint64_t ca = a.counter("shared.a"), cb = b.counter("shared.a");
  const std::uint64_t h0a = a.histograms.at("shared.h").counts[0];
  const std::uint64_t h0b = b.histograms.at("shared.h").counts[0];
  a.merge(b);
  EXPECT_EQ(a.counter("shared.a"), ca + cb);  // wrapping-exact uint64 sum
  EXPECT_EQ(a.histograms.at("shared.h").counts[0], h0a + h0b);
  EXPECT_EQ(a.counter("only.1"), fuzz_snapshot(1).counter("only.1"));
  EXPECT_EQ(a.counter("only.2"), fuzz_snapshot(2).counter("only.2"));
}

TEST(ObsSnapshotMerge, IsCommutativeAndAssociative) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Snapshot a = fuzz_snapshot(3 * seed + 1);
    const Snapshot b = fuzz_snapshot(3 * seed + 2);
    const Snapshot c = fuzz_snapshot(3 * seed + 3);
    expect_equivalent(merged(a, b), merged(b, a),
                      "commutativity seed " + std::to_string(seed));
    expect_equivalent(merged(merged(a, b), c), merged(a, merged(b, c)),
                      "associativity seed " + std::to_string(seed));
  }
}

TEST(ObsSnapshotMerge, GaugesResolveLastWriteWinsByTimestamp) {
  Snapshot older, newer;
  older.gauges["g"] = GaugeSnapshot{1.0, 100};
  newer.gauges["g"] = GaugeSnapshot{2.0, 200};
  Snapshot ab = merged(older, newer);
  Snapshot ba = merged(newer, older);
  EXPECT_DOUBLE_EQ(ab.gauge("g"), 2.0);
  EXPECT_DOUBLE_EQ(ba.gauge("g"), 2.0);
  EXPECT_EQ(ab.gauges.at("g").ts_unix_ns, 200);
}

TEST(ObsSnapshotMerge, ThrowsOnHistogramBoundsMismatch) {
  Snapshot a, b;
  a.histograms["h"] = HistogramSnapshot{{1.0, 2.0}, {0, 0, 0}, 0.0};
  b.histograms["h"] = HistogramSnapshot{{1.0, 3.0}, {0, 0, 0}, 0.0};
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(ObsSnapshotMerge, MergedShardsMatchOneUnsplitRun) {
  // The fleet-merge contract hgc_obs relies on, in-process: a sweep split
  // by cluster, its per-shard registry snapshots merged, must report the
  // same counter totals as the unsplit run. (No shared caches — a cache
  // crossing the split boundary would legitimately change hit/miss.)
  exec::SweepGrid grid;
  grid.clusters = {cluster_a(), cluster_b()};
  grid.schemes = {SchemeKind::kCyclic, SchemeKind::kHeterAware};
  grid.s_values = {1};
  grid.seeds = {7};
  grid.iterations = 8;

  const auto run_for_snapshot = [](const exec::SweepGrid& g) {
    obs::Registry::global().reset();
    obs::set_metrics_enabled(true);
    Snapshot snap;
    exec::SweepOptions opts;
    opts.threads = 2;
    opts.metrics_snapshot = &snap;
    exec::run_sweep(g, opts);
    obs::set_metrics_enabled(false);
    return snap;
  };

  const Snapshot full = run_for_snapshot(grid);

  exec::SweepGrid shard_a = grid;
  shard_a.clusters = {cluster_a()};
  exec::SweepGrid shard_b = grid;
  shard_b.clusters = {cluster_b()};
  Snapshot combined = run_for_snapshot(shard_a);
  combined.merge(run_for_snapshot(shard_b));

  // Every counter the run touched, not a cherry-picked subset.
  EXPECT_EQ(combined.counters, full.counters);
  EXPECT_GT(full.counter("engine.rounds"), 0u);
  EXPECT_GT(full.counter("decode.solves"), 0u);
  EXPECT_EQ(full.counter("sweep.cells.done"), grid.num_cells());
  // Sample counts fold exactly too; the moments only to rounding.
  EXPECT_EQ(combined.stats.at("sweep.cell_seconds").count(),
            full.stats.at("sweep.cell_seconds").count());
  obs::Registry::global().reset();
}

// --- Prometheus ---------------------------------------------------------

TEST(ObsSnapshotPrometheus, CountersGaugesHistogramsRoundTrip) {
  Snapshot s;
  s.unix_ns = 1'700'000'000'123'456'789;
  s.counters["big.counter"] = (std::uint64_t{1} << 60) + 7;
  // A millisecond-aligned gauge timestamp survives the exposition format
  // (which carries milliseconds); sub-ms precision would not.
  s.gauges["mem.rss"] = GaugeSnapshot{0.1 + 0.2, 1'700'000'000'123'000'000};
  HistogramSnapshot h;
  h.bounds = {0.001, 0.1, 2.5};
  h.counts = {4, 0, 3, 1};
  h.sum = 7.625;
  s.histograms["solve.lat"] = h;

  std::ostringstream os;
  s.write_prometheus(os);
  const std::string text = os.str();
  // Spot-check the exposition shape before parsing it back.
  EXPECT_NE(text.find("# TYPE hgc_big_counter_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("hgc_solve_lat_bucket{le=\"+Inf\"} 8"),
            std::string::npos);
  EXPECT_NE(text.find("hgc_solve_lat_sum 7.625"), std::string::npos);

  std::istringstream is(text);
  const Snapshot back = Snapshot::read_prometheus(is);
  EXPECT_EQ(back.unix_ns, s.unix_ns);
  EXPECT_EQ(back.counters, s.counters);
  EXPECT_EQ(back.gauges, s.gauges);
  EXPECT_EQ(back.histograms, s.histograms);
}

TEST(ObsSnapshotPrometheus, StatsReconstructAndQuantilesReportSkipped) {
  Snapshot s;
  RunningStats st;
  st.add(1.0);
  st.add(2.5);
  st.add(4.0);
  s.stats["cell.seconds"] = st;
  ReservoirQuantiles q(4, 5);
  q.add(1.0);
  q.add(9.0);
  s.quantiles["round.latency"] = q;

  std::ostringstream os;
  s.write_prometheus(os);
  EXPECT_NE(os.str().find("quantile=\"0.95\""), std::string::npos);

  std::istringstream is(os.str());
  std::vector<std::string> skipped;
  const Snapshot back = Snapshot::read_prometheus(is, &skipped);
  ASSERT_EQ(skipped.size(), 1u);
  EXPECT_EQ(skipped[0], "round.latency");
  EXPECT_TRUE(back.quantiles.empty());
  // The stat-part gauges fold back into the stat, not into gauges.
  EXPECT_TRUE(back.gauges.empty());
  const RunningStats& rs = back.stats.at("cell.seconds");
  EXPECT_EQ(rs.count(), st.count());
  EXPECT_DOUBLE_EQ(rs.mean(), st.mean());
  EXPECT_DOUBLE_EQ(rs.min(), st.min());
  EXPECT_DOUBLE_EQ(rs.max(), st.max());
  EXPECT_NEAR(rs.m2(), st.m2(), 1e-9 * (1.0 + st.m2()));
}

// --- Recorder -----------------------------------------------------------

TEST(ObsRecorder, SamplesTheRegistryAndAppendsJsonl) {
  obs::Registry::global().reset();
  obs::set_metrics_enabled(true);
  const obs::Counter c = obs::Registry::global().counter("t.rec.ticks");

  std::ostringstream jsonl;
  obs::RecorderOptions opts;
  opts.interval_seconds = 0.005;
  opts.jsonl = &jsonl;
  obs::Recorder recorder(opts);
  recorder.start();
  for (int i = 0; i < 8; ++i) {
    c.add();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  recorder.stop();
  obs::set_metrics_enabled(false);

  const std::vector<Snapshot> samples = recorder.samples();
  ASSERT_FALSE(samples.empty());  // stop() always takes a final sample
  EXPECT_EQ(samples.back().counter("t.rec.ticks"), 8u);
  std::uint64_t prev = 0;
  for (const Snapshot& s : samples) {
    EXPECT_GE(s.counter("t.rec.ticks"), prev);  // counters are cumulative
    prev = s.counter("t.rec.ticks");
    EXPECT_GT(s.unix_ns, 0);
  }

  // Every JSONL line parses back to the corresponding ring sample.
  std::istringstream lines(jsonl.str());
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const Snapshot s = Snapshot::read_json(line);
    EXPECT_LE(s.counter("t.rec.ticks"), 8u);
    ++parsed;
  }
  EXPECT_EQ(parsed, samples.size());  // ring never wrapped at this length
  obs::Registry::global().reset();
}

TEST(ObsRecorder, RingStaysBounded) {
  obs::RecorderOptions opts;
  opts.interval_seconds = 0.001;
  opts.ring_capacity = 3;
  obs::Recorder recorder(opts);
  recorder.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  recorder.stop();
  const std::vector<Snapshot> samples = recorder.samples();
  EXPECT_EQ(samples.size(), 3u);  // wrapped several times, kept the last 3
  for (std::size_t i = 1; i < samples.size(); ++i)
    EXPECT_GE(samples[i].unix_ns, samples[i - 1].unix_ns);
}

TEST(ObsRecorder, StartStopRacesWritersAndSnapshotReaders) {
  // The TSan surface the `threaded` ctest label exists for: the sampler
  // thread snapshots the registry while writer threads bump counters,
  // reader threads take their own snapshots and drain samples(), and the
  // main thread churns start()/stop(). Assertions are deliberately light —
  // the test's job is to make every cross-thread edge visible to TSan.
  obs::Registry::global().reset();
  obs::set_metrics_enabled(true);
  const obs::Counter c = obs::Registry::global().counter("t.rec.race");

  obs::RecorderOptions opts;
  opts.interval_seconds = 0.001;
  opts.ring_capacity = 8;
  obs::Recorder recorder(opts);

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w)
    threads.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) c.add();
    });
  for (int r = 0; r < 2; ++r)
    threads.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        (void)obs::Registry::global().snapshot();
        (void)recorder.samples();
      }
    });

  for (int cycle = 0; cycle < 5; ++cycle) {
    recorder.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(4));
    recorder.stop();
    EXPECT_FALSE(recorder.samples().empty());  // stop() takes a final sample
  }

  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  obs::set_metrics_enabled(false);

  const std::vector<Snapshot> samples = recorder.samples();
  ASSERT_FALSE(samples.empty());
  for (std::size_t i = 1; i < samples.size(); ++i)
    EXPECT_GE(samples[i].counter("t.rec.race"),
              samples[i - 1].counter("t.rec.race"));
  obs::Registry::global().reset();
}

TEST(ObsRecorder, SweepBytesAreIdenticalWithRecorderOn) {
  exec::SweepGrid grid;
  grid.clusters = {cluster_a()};
  grid.schemes = {SchemeKind::kCyclic, SchemeKind::kHeterAware};
  grid.seeds = {7, 8};
  grid.iterations = 10;

  const auto csv_of = [](const exec::ResultTable& table) {
    std::ostringstream os;
    table.to_csv(os);
    return os.str();
  };
  exec::SweepOptions plain_opts;
  plain_opts.threads = 1;
  const std::string plain = csv_of(exec::run_sweep(grid, plain_opts));

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    obs::Registry::global().reset();
    obs::set_metrics_enabled(true);
    std::ostringstream jsonl;
    std::vector<Snapshot> series;
    exec::SweepOptions opts;
    opts.threads = threads;
    opts.metrics_interval_seconds = 0.002;
    opts.metrics_log = &jsonl;
    opts.metrics_series = &series;
    const std::string recorded = csv_of(exec::run_sweep(grid, opts));
    obs::set_metrics_enabled(false);

    EXPECT_EQ(recorded, plain) << "threads=" << threads;
    ASSERT_FALSE(series.empty());
    EXPECT_EQ(series.back().counter("sweep.cells.done"), grid.num_cells());
    EXPECT_FALSE(jsonl.str().empty());
  }
  obs::Registry::global().reset();
}

}  // namespace
}  // namespace hgc
