// Tests for the decoding-matrix builder (Eq. 2) and the streaming decoder.
#include <gtest/gtest.h>

#include "core/decoder.hpp"
#include "core/group_based.hpp"
#include "core/heter_aware.hpp"
#include "core/naive.hpp"
#include "core/robustness.hpp"
#include "util/rng.hpp"

namespace hgc {
namespace {

TEST(DecodingMatrix, OneRowPerPattern) {
  Rng rng(51);
  HeterAwareScheme scheme({1, 2, 3, 4, 4}, 7, 1, rng);
  const auto rows = build_decoding_matrix(scheme);
  EXPECT_EQ(rows.size(), 5u);  // C(5,1)
  for (const auto& row : rows) {
    // Coefficients vanish on the pattern's stragglers and reconstruct 1.
    for (WorkerId w : row.stragglers)
      EXPECT_DOUBLE_EQ(row.coefficients[w], 0.0);
    const Vector ab = scheme.coding_matrix().apply_transpose(row.coefficients);
    for (double v : ab) EXPECT_NEAR(v, 1.0, 1e-8);
  }
}

TEST(DecodingMatrix, PatternCountMatchesBinomial) {
  Rng rng(52);
  HeterAwareScheme scheme({2, 2, 3, 3, 4, 4}, 9, 2, rng);
  EXPECT_EQ(build_decoding_matrix(scheme).size(), 15u);  // C(6,2)
}

TEST(DecodingMatrix, NaiveHasSingleEmptyPattern) {
  NaiveScheme naive(4);
  const auto rows = build_decoding_matrix(naive);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].stragglers.empty());
  EXPECT_EQ(rows[0].coefficients, Vector(4, 1.0));
}

/// A deliberately broken scheme: decodable only when every worker responded
/// (claims) — or never (s = 0 case) — to exercise the builder's error paths.
class NeverDecodableScheme : public CodingScheme {
 public:
  NeverDecodableScheme(std::size_t m, std::size_t s)
      : CodingScheme(Matrix::ones(m, 1), Assignment(m, {0}), s) {}
  std::string name() const override { return "never-decodable"; }
  std::optional<Vector> decoding_coefficients(
      const std::vector<bool>&) const override {
    return std::nullopt;
  }
};

TEST(DecodingMatrix, EmptyPatternErrorDoesNotInventAWorkerId) {
  // s = 0 enumerates one empty pattern; the old message printed m ("worker
  // 2" here) as "the worker starting the pattern".
  NeverDecodableScheme scheme(2, 0);
  try {
    build_decoding_matrix(scheme);
    FAIL() << "expected DecodeError";
  } catch (const DecodeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("empty straggler pattern"), std::string::npos)
        << what;
    EXPECT_EQ(what.find("worker 2"), std::string::npos) << what;
  }
}

TEST(DecodingMatrix, NonEmptyPatternErrorNamesItsFirstWorker) {
  NeverDecodableScheme scheme(3, 1);
  try {
    build_decoding_matrix(scheme);
    FAIL() << "expected DecodeError";
  } catch (const DecodeError& e) {
    EXPECT_NE(std::string(e.what()).find("starting at worker 0"),
              std::string::npos)
        << e.what();
  }
}

TEST(StreamingDecoder, DecodesAtFirstSufficientArrival) {
  Rng rng(53);
  HeterAwareScheme scheme({1, 2, 3, 4, 4}, 7, 1, rng);
  StreamingDecoder decoder(scheme);

  // Per-partition scalar "gradients" 1..7; aggregate = 28.
  std::vector<Vector> grads(7);
  for (std::size_t p = 0; p < 7; ++p) grads[p] = {double(p + 1)};

  EXPECT_FALSE(decoder.add_result(0, encode_gradient(scheme, 0, grads)));
  EXPECT_FALSE(decoder.add_result(1, encode_gradient(scheme, 1, grads)));
  EXPECT_FALSE(decoder.add_result(2, encode_gradient(scheme, 2, grads)));
  EXPECT_FALSE(decoder.ready());
  // Fourth arrival: only one worker missing <= s, decodable.
  EXPECT_TRUE(decoder.add_result(3, encode_gradient(scheme, 3, grads)));
  EXPECT_TRUE(decoder.ready());
  EXPECT_EQ(decoder.results_received(), 4u);
  const Vector aggregate = decoder.aggregate();
  ASSERT_EQ(aggregate.size(), 1u);
  EXPECT_NEAR(aggregate[0], 28.0, 1e-8);
}

TEST(StreamingDecoder, ExtraResultsAreUnused) {
  Rng rng(54);
  HeterAwareScheme scheme({1, 2, 3, 4, 4}, 7, 1, rng);
  StreamingDecoder decoder(scheme);
  std::vector<Vector> grads(7);
  for (std::size_t p = 0; p < 7; ++p) grads[p] = {1.0};
  for (WorkerId w = 0; w < 4; ++w)
    decoder.add_result(w, encode_gradient(scheme, w, grads));
  ASSERT_TRUE(decoder.ready());
  // Late fifth result: recorded but not part of the decode.
  EXPECT_FALSE(decoder.add_result(4, encode_gradient(scheme, 4, grads)));
  const auto unused = decoder.unused_workers();
  EXPECT_EQ(unused, (std::vector<WorkerId>{4}));
}

TEST(StreamingDecoder, RejectsDuplicateResult) {
  Rng rng(55);
  HeterAwareScheme scheme({1, 2, 3, 4, 4}, 7, 1, rng);
  StreamingDecoder decoder(scheme);
  decoder.add_result(0, Vector{1.0});
  EXPECT_THROW(decoder.add_result(0, Vector{1.0}), std::invalid_argument);
}

TEST(StreamingDecoder, ThrowsBeforeReady) {
  Rng rng(56);
  HeterAwareScheme scheme({1, 2, 3, 4, 4}, 7, 1, rng);
  StreamingDecoder decoder(scheme);
  EXPECT_THROW(decoder.aggregate(), DecodeError);
  EXPECT_THROW(decoder.coefficients(), DecodeError);
}

TEST(StreamingDecoder, ResetAllowsReuse) {
  Rng rng(57);
  HeterAwareScheme scheme({1, 2, 3, 4, 4}, 7, 1, rng);
  StreamingDecoder decoder(scheme);
  std::vector<Vector> grads(7);
  for (std::size_t p = 0; p < 7; ++p) grads[p] = {2.0};
  for (WorkerId w = 0; w < 4; ++w)
    decoder.add_result(w, encode_gradient(scheme, w, grads));
  ASSERT_TRUE(decoder.ready());
  decoder.reset();
  EXPECT_FALSE(decoder.ready());
  EXPECT_EQ(decoder.results_received(), 0u);
  // Second iteration decodes again from scratch.
  for (WorkerId w = 1; w < 5; ++w)
    decoder.add_result(w, encode_gradient(scheme, w, grads));
  EXPECT_TRUE(decoder.ready());
  EXPECT_NEAR(decoder.aggregate()[0], 14.0, 1e-8);
}

TEST(StreamingDecoder, GroupFastPathDecodesBelowFullQuorum) {
  // Group-based {1,2,3,4,4}: groups {0,1,4} and {2,3}, so
  // min_results_required() is 2 — far below the m−s = 4 of heter-aware.
  // Arrival order 2, 3 completes a group: the first arrival must be skipped
  // by the fast path (count < min) and the second must decode immediately.
  Rng rng(41);
  GroupBasedScheme scheme({1, 2, 3, 4, 4}, 7, 1, rng);
  ASSERT_EQ(scheme.min_results_required(), 2u);
  StreamingDecoder decoder(scheme);
  std::vector<Vector> grads(7);
  for (std::size_t p = 0; p < 7; ++p) grads[p] = {double(p + 1)};

  EXPECT_FALSE(decoder.add_result(2, encode_gradient(scheme, 2, grads)));
  EXPECT_FALSE(decoder.ready());
  EXPECT_TRUE(decoder.add_result(3, encode_gradient(scheme, 3, grads)));
  EXPECT_TRUE(decoder.ready());
  EXPECT_EQ(decoder.results_received(), 2u);
  EXPECT_NEAR(decoder.aggregate()[0], 28.0, 1e-8);
}

TEST(StreamingDecoder, ArrivalOrderPastMinRequiresMoreSolves) {
  // Arrival order 0, 1, 2, 4: counts 2 and 3 are at/above the group-based
  // minimum but undecodable (no complete group, fewer than active−s
  // results), so the decoder keeps answering "not yet" until group {0,1,4}
  // completes on the fourth arrival. Worker 2's result ends up unused.
  Rng rng(41);
  GroupBasedScheme scheme({1, 2, 3, 4, 4}, 7, 1, rng);
  StreamingDecoder decoder(scheme);
  std::vector<Vector> grads(7);
  for (std::size_t p = 0; p < 7; ++p) grads[p] = {double(p + 1)};

  EXPECT_FALSE(decoder.add_result(0, encode_gradient(scheme, 0, grads)));
  EXPECT_FALSE(decoder.add_result(1, encode_gradient(scheme, 1, grads)));
  EXPECT_FALSE(decoder.add_result(2, encode_gradient(scheme, 2, grads)));
  EXPECT_TRUE(decoder.add_result(4, encode_gradient(scheme, 4, grads)));
  EXPECT_EQ(decoder.results_received(), 4u);
  EXPECT_NEAR(decoder.aggregate()[0], 28.0, 1e-8);
  EXPECT_DOUBLE_EQ(decoder.coefficients()[2], 0.0);
  EXPECT_EQ(decoder.unused_workers(), (std::vector<WorkerId>{2}));

  // A result arriving after decodability is recorded but changes nothing.
  EXPECT_FALSE(decoder.add_result(3, encode_gradient(scheme, 3, grads)));
  EXPECT_EQ(decoder.results_received(), 5u);
  EXPECT_NEAR(decoder.aggregate()[0], 28.0, 1e-8);
}

TEST(StreamingDecoder, DuplicateAfterDecodabilityStillThrows) {
  Rng rng(41);
  GroupBasedScheme scheme({1, 2, 3, 4, 4}, 7, 1, rng);
  StreamingDecoder decoder(scheme);
  std::vector<Vector> grads(7);
  for (std::size_t p = 0; p < 7; ++p) grads[p] = {1.0};
  decoder.add_result(2, encode_gradient(scheme, 2, grads));
  decoder.add_result(3, encode_gradient(scheme, 3, grads));
  ASSERT_TRUE(decoder.ready());
  EXPECT_THROW(decoder.add_result(2, encode_gradient(scheme, 2, grads)),
               std::invalid_argument);
}

TEST(StreamingDecoder, ResetClearsDuplicateTracking) {
  Rng rng(55);
  HeterAwareScheme scheme({1, 2, 3, 4, 4}, 7, 1, rng);
  StreamingDecoder decoder(scheme);
  decoder.add_result(0, Vector{1.0});
  decoder.reset();
  // The same worker may report again in the next iteration.
  EXPECT_NO_THROW(decoder.add_result(0, Vector{1.0}));
}

TEST(OnesInRowSpan, BasicGeometry) {
  const Matrix b{{1.0, 0.0}, {0.0, 1.0}, {2.0, 2.0}};
  const std::vector<std::size_t> both = {0, 1};
  EXPECT_TRUE(ones_in_row_span(b, both));
  const std::vector<std::size_t> third = {2};
  EXPECT_TRUE(ones_in_row_span(b, third));  // 0.5 * (2,2)
  const std::vector<std::size_t> first = {0};
  EXPECT_FALSE(ones_in_row_span(b, first));
  EXPECT_FALSE(ones_in_row_span(b, std::vector<std::size_t>{}));
}

TEST(ForEachStragglerPattern, CountsAndEarlyExit) {
  std::size_t count = 0;
  for_each_straggler_pattern(6, 2, [&](const StragglerSet&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 15u);  // C(6,2)

  count = 0;
  const bool completed = for_each_straggler_pattern(
      6, 2, [&](const StragglerSet&) { return ++count < 4; });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 4u);
}

TEST(ForEachStragglerPattern, ZeroStragglersVisitsOnce) {
  std::size_t count = 0;
  for_each_straggler_pattern(5, 0, [&](const StragglerSet& s) {
    EXPECT_TRUE(s.empty());
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1u);
}

TEST(CompletionTime, MatchesHandComputedOrder) {
  Rng rng(58);
  // c = [1,2,3,4,4], loads = [1,2,3,4,4] (partitions), t_i = load/c = 1 for
  // every worker; any single straggler still completes at t = 1.
  HeterAwareScheme scheme({1, 2, 3, 4, 4}, 7, 1, rng);
  const Throughputs c = {1, 2, 3, 4, 4};
  const auto t = completion_time(scheme, c, {2});
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 1.0, 1e-12);
}

TEST(CompletionTime, UndecodableReturnsNullopt) {
  NaiveScheme naive(3);
  const Throughputs c = {1, 1, 1};
  EXPECT_FALSE(completion_time(naive, c, {0}).has_value());
}

}  // namespace
}  // namespace hgc
