// Tests for online throughput estimation and adaptive re-coding.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/estimator.hpp"
#include "sim/adaptive.hpp"

namespace hgc {
namespace {

TEST(ThroughputEstimator, FirstObservationReplacesPrior) {
  ThroughputEstimator est({1.0, 1.0}, 0.2);
  est.observe(0, 0.5, 0.125);  // 4 datasets/s
  EXPECT_DOUBLE_EQ(est.estimates()[0], 4.0);
  EXPECT_DOUBLE_EQ(est.estimates()[1], 1.0);
  EXPECT_EQ(est.observations(0), 1u);
  EXPECT_EQ(est.observations(1), 0u);
}

TEST(ThroughputEstimator, EwmaConvergesToTrueRate) {
  ThroughputEstimator est({1.0}, 0.3);
  for (int i = 0; i < 50; ++i) est.observe(0, 0.1, 0.1 / 8.0);  // 8/s
  EXPECT_NEAR(est.estimates()[0], 8.0, 1e-6);
}

TEST(ThroughputEstimator, IgnoresUnusableSamples) {
  ThroughputEstimator est({2.0}, 0.5);
  est.observe(0, 0.0, 1.0);
  est.observe(0, 0.1, 0.0);
  est.observe(0, 0.1, std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(est.estimates()[0], 2.0);
  EXPECT_EQ(est.observations(0), 0u);
}

TEST(ThroughputEstimator, RelativeDeviation) {
  ThroughputEstimator est({2.0, 4.0}, 0.5);
  EXPECT_DOUBLE_EQ(est.relative_deviation({2.0, 4.0}), 0.0);
  EXPECT_NEAR(est.relative_deviation({1.0, 4.0}), 1.0, 1e-12);  // 2 vs 1
  EXPECT_NEAR(est.relative_deviation({2.0, 5.0}), 0.2, 1e-12);
}

TEST(ThroughputEstimator, RejectsBadConstruction) {
  EXPECT_THROW(ThroughputEstimator({}, 0.5), std::invalid_argument);
  EXPECT_THROW(ThroughputEstimator({1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(ThroughputEstimator({1.0}, 1.5), std::invalid_argument);
  EXPECT_THROW(ThroughputEstimator({-1.0}, 0.5), std::invalid_argument);
}

TEST(Adaptive, ColdStartLearnsHeterogeneity) {
  // Master starts believing all workers are equal (a cyclic-like code) and
  // must converge to near-optimal via telemetry alone.
  const Cluster cluster = cluster_a();
  AdaptiveConfig config;
  config.iterations = 200;
  config.k = 48;
  config.recode_every = 10;
  const auto result = run_adaptive(cluster, config);

  EXPECT_GT(result.recodes, 0u);
  EXPECT_EQ(result.failures, 0u);
  const double early = result.window_mean(0, 10);
  const double late = result.window_mean(150, 200);
  EXPECT_LT(late, 0.6 * early);  // large win once loads match speeds
  // Converged near the true optimum.
  EXPECT_NEAR(late, ideal_iteration_time(cluster, 1), 0.15 * early);
  // Estimates ended close to truth (relative error under 10%).
  const Throughputs truth = cluster.throughputs();
  for (std::size_t w = 0; w < truth.size(); ++w)
    EXPECT_NEAR(result.final_estimates[w] / truth[w], 1.0, 0.1)
        << "worker " << w;
}

TEST(Adaptive, StaticSchemeNeverRecodes) {
  const Cluster cluster = cluster_a();
  AdaptiveConfig config;
  config.iterations = 50;
  config.recode_every = 0;
  const auto result = run_adaptive(cluster, config);
  EXPECT_EQ(result.recodes, 0u);
}

TEST(Adaptive, RecoversFromDrift) {
  // A fast worker permanently slows 4× mid-run *while transient stragglers
  // keep occurring*. The static scheme must burn its straggler budget on
  // the drifted worker every iteration, so the transient victim's delay
  // surfaces; re-coding rebalances the drifted worker back into the fold
  // and keeps the budget for the transients. (Without transient noise,
  // straggler tolerance alone absorbs a single drifted worker — adaptive
  // only pays off once the budget is contended, which is the realistic
  // regime.)
  const Cluster cluster = cluster_a();
  AdaptiveConfig config;
  config.iterations = 300;
  config.k = 48;
  config.initial_estimates = cluster.throughputs();  // warm start
  config.model.num_stragglers = 1;
  config.model.delay_seconds = 4.0 * ideal_iteration_time(cluster, 1);
  config.drift.at_iteration = 100;
  config.drift.worker = 7;  // the 12-vCPU machine
  config.drift.factor = 0.25;

  AdaptiveConfig static_config = config;
  static_config.recode_every = 0;

  const auto adaptive = run_adaptive(cluster, config);
  const auto fixed = run_adaptive(cluster, static_config);

  // Before drift both run near the optimum.
  EXPECT_NEAR(adaptive.window_mean(0, 100), fixed.window_mean(0, 100),
              0.2 * fixed.window_mean(0, 100));
  // After settling, adaptive clearly beats static.
  const double adaptive_late = adaptive.window_mean(200, 300);
  const double fixed_late = fixed.window_mean(200, 300);
  EXPECT_LT(adaptive_late, 0.8 * fixed_late);
  EXPECT_GT(adaptive.recodes, 0u);
}

TEST(Adaptive, ThresholdSuppressesNeedlessRecodes) {
  // Warm start with exact estimates and no drift: deviations stay below the
  // threshold, so no recode should ever fire.
  const Cluster cluster = cluster_a();
  AdaptiveConfig config;
  config.iterations = 100;
  config.initial_estimates = cluster.throughputs();
  config.recode_threshold = 0.10;
  config.model.fluctuation_sigma = 0.02;
  const auto result = run_adaptive(cluster, config);
  EXPECT_EQ(result.recodes, 0u);
}

TEST(Adaptive, WindowMeanValidation) {
  const Cluster cluster = cluster_a();
  AdaptiveConfig config;
  config.iterations = 10;
  const auto result = run_adaptive(cluster, config);
  EXPECT_THROW(result.window_mean(5, 3), std::invalid_argument);
  EXPECT_THROW(result.window_mean(0, 11), std::invalid_argument);
  EXPECT_GT(result.window_mean(0, 10), 0.0);
}

}  // namespace
}  // namespace hgc
