// Tests for the event-driven iteration simulator and experiment harness.
#include <gtest/gtest.h>

#include "core/scheme_factory.hpp"
#include "sim/experiment.hpp"
#include "sim/iteration.hpp"

namespace hgc {
namespace {

IterationConditions clean_conditions(std::size_t m) {
  IterationConditions cond;
  cond.speed_factor.assign(m, 1.0);
  cond.delay.assign(m, 0.0);
  cond.faulted.assign(m, false);
  return cond;
}

TEST(SimulateIteration, HeterAwareHitsIdealTime) {
  Rng rng(71);
  const Cluster cluster = cluster_a();
  const auto scheme = make_scheme(SchemeKind::kHeterAware,
                                  cluster.throughputs(), 24, 1, rng);
  const auto result =
      simulate_iteration(*scheme, cluster, clean_conditions(8));
  ASSERT_TRUE(result.decoded);
  // Perfect proportional allocation: decode at (s+1)/Σc.
  EXPECT_NEAR(result.time, ideal_iteration_time(cluster, 1), 1e-9);
}

TEST(SimulateIteration, NaiveWaitsForSlowestWorker) {
  Rng rng(72);
  const Cluster cluster = cluster_a();
  const auto scheme =
      make_scheme(SchemeKind::kNaive, cluster.throughputs(), 8, 0, rng);
  const auto result =
      simulate_iteration(*scheme, cluster, clean_conditions(8));
  ASSERT_TRUE(result.decoded);
  // Naive: k = m = 8 equal partitions; slowest worker (c=2) takes
  // (1/8)/2 = 0.0625 s.
  EXPECT_NEAR(result.time, 0.0625, 1e-12);
  EXPECT_EQ(result.results_used, 8u);
}

TEST(SimulateIteration, CyclicPinnedToSlowestSurvivor) {
  Rng rng(73);
  const Cluster cluster = cluster_a();
  const auto scheme =
      make_scheme(SchemeKind::kCyclic, cluster.throughputs(), 8, 1, rng);
  const auto result =
      simulate_iteration(*scheme, cluster, clean_conditions(8));
  ASSERT_TRUE(result.decoded);
  // Cyclic load = s+1 = 2 of 8 partitions; needs m−s = 7 results, so the
  // 2nd slowest worker (c = 2) gates: (2/8)/2 = 0.125 s.
  EXPECT_NEAR(result.time, 0.125, 1e-12);
}

TEST(SimulateIteration, FaultKillsNaiveButNotCoded) {
  Rng rng(74);
  const Cluster cluster = cluster_a();
  auto cond = clean_conditions(8);
  cond.faulted[7] = true;  // fastest worker dies

  const auto naive =
      make_scheme(SchemeKind::kNaive, cluster.throughputs(), 8, 0, rng);
  EXPECT_FALSE(simulate_iteration(*naive, cluster, cond).decoded);

  const auto heter = make_scheme(SchemeKind::kHeterAware,
                                 cluster.throughputs(), 24, 1, rng);
  const auto result = simulate_iteration(*heter, cluster, cond);
  EXPECT_TRUE(result.decoded);
  EXPECT_NEAR(result.time, ideal_iteration_time(cluster, 1), 1e-9);
}

TEST(SimulateIteration, DelayOnStragglerIsAbsorbed) {
  Rng rng(75);
  const Cluster cluster = cluster_a();
  const auto heter = make_scheme(SchemeKind::kHeterAware,
                                 cluster.throughputs(), 24, 1, rng);
  auto cond = clean_conditions(8);
  cond.delay[3] = 100.0;  // one delayed worker, s = 1
  const auto result = simulate_iteration(*heter, cluster, cond);
  ASSERT_TRUE(result.decoded);
  EXPECT_NEAR(result.time, ideal_iteration_time(cluster, 1), 1e-9);
}

TEST(SimulateIteration, CommLatencyShiftsEverything) {
  Rng rng(76);
  const Cluster cluster = cluster_a();
  const auto heter = make_scheme(SchemeKind::kHeterAware,
                                 cluster.throughputs(), 24, 1, rng);
  SimParams params;
  params.comm_latency = 0.01;
  const auto result =
      simulate_iteration(*heter, cluster, clean_conditions(8), params);
  ASSERT_TRUE(result.decoded);
  EXPECT_NEAR(result.time, ideal_iteration_time(cluster, 1) + 0.01, 1e-9);
}

TEST(SimulateIteration, ResourceUsageNearOneWhenBalanced) {
  Rng rng(77);
  const Cluster cluster = cluster_a();
  const auto heter = make_scheme(SchemeKind::kHeterAware,
                                 cluster.throughputs(), 24, 1, rng);
  const auto result =
      simulate_iteration(*heter, cluster, clean_conditions(8));
  ASSERT_TRUE(result.decoded);
  // Every worker computes until the common decode time.
  EXPECT_GT(result.resource_usage, 0.95);
  EXPECT_LE(result.resource_usage, 1.0 + 1e-12);
}

TEST(SimulateIteration, NaiveResourceUsageLowOnHeterogeneousCluster) {
  Rng rng(78);
  const Cluster cluster = cluster_a();
  const auto naive =
      make_scheme(SchemeKind::kNaive, cluster.throughputs(), 8, 0, rng);
  const auto result =
      simulate_iteration(*naive, cluster, clean_conditions(8));
  ASSERT_TRUE(result.decoded);
  // Fast workers idle while the slowest finishes: usage = mean(c_min/c_i).
  EXPECT_LT(result.resource_usage, 0.6);
}

TEST(SimulateIteration, RejectsMismatchedSizes) {
  Rng rng(79);
  const Cluster cluster = cluster_a();
  const auto scheme =
      make_scheme(SchemeKind::kNaive, cluster.throughputs(), 8, 0, rng);
  EXPECT_THROW(
      simulate_iteration(*scheme, cluster, clean_conditions(5)),
      std::invalid_argument);
}

TEST(Experiment, DeterministicAcrossRuns) {
  const Cluster cluster = cluster_a();
  ExperimentConfig config;
  config.s = 1;
  config.iterations = 50;
  config.model.num_stragglers = 1;
  config.model.delay_seconds = 0.1;
  config.model.fluctuation_sigma = 0.05;
  const auto a = run_experiment(SchemeKind::kHeterAware, cluster, config);
  const auto b = run_experiment(SchemeKind::kHeterAware, cluster, config);
  EXPECT_DOUBLE_EQ(a.mean_time(), b.mean_time());
  EXPECT_DOUBLE_EQ(a.mean_usage(), b.mean_usage());
}

TEST(Experiment, SeedChangesResults) {
  const Cluster cluster = cluster_a();
  ExperimentConfig config;
  config.iterations = 50;
  config.model.fluctuation_sigma = 0.1;
  const auto a = run_experiment(SchemeKind::kHeterAware, cluster, config);
  config.seed = 777;
  const auto b = run_experiment(SchemeKind::kHeterAware, cluster, config);
  EXPECT_NE(a.mean_time(), b.mean_time());
}

TEST(Experiment, CompareRunsAllSchemes) {
  const Cluster cluster = cluster_a();
  ExperimentConfig config;
  config.iterations = 30;
  config.model.num_stragglers = 1;
  config.model.delay_seconds = 0.05;
  const auto summaries =
      compare_schemes(paper_schemes(), cluster, config);
  ASSERT_EQ(summaries.size(), 4u);
  EXPECT_EQ(summaries[0].scheme, "naive");
  EXPECT_EQ(summaries[3].scheme, "group-based");
  for (const auto& s : summaries) EXPECT_EQ(s.iterations, 30u);
}

TEST(Experiment, HeterBeatsCyclicOnHeterogeneousCluster) {
  const Cluster cluster = cluster_a();
  ExperimentConfig config;
  config.iterations = 100;
  config.model.num_stragglers = 1;
  config.model.fault = true;  // full stragglers: the paper's 3× setting
  config.k = exact_partition_count(cluster, config.s);  // 24: exact Eq. 5
  const auto summaries = compare_schemes(
      {SchemeKind::kCyclic, SchemeKind::kHeterAware}, cluster, config);
  const double speedup = summaries[0].mean_time() / summaries[1].mean_time();
  // Expected ratio ≈ mean(c)/min(c) = 3: the paper's headline speedup.
  EXPECT_GT(speedup, 2.5);
  EXPECT_LT(speedup, 3.3);
  EXPECT_EQ(summaries[0].failures, 0u);
  EXPECT_EQ(summaries[1].failures, 0u);
}

TEST(Experiment, NaiveFailsUnderFaults) {
  const Cluster cluster = cluster_a();
  ExperimentConfig config;
  config.iterations = 20;
  config.model.num_stragglers = 1;
  config.model.fault = true;
  const auto summary = run_experiment(SchemeKind::kNaive, cluster, config);
  EXPECT_EQ(summary.failures, 20u);
  EXPECT_TRUE(summary.ever_failed());
}

TEST(Experiment, FairnessContractIdenticalConditionsAcrossSchemes) {
  // The fairness contract of compare_schemes: every scheme run under the
  // same ExperimentConfig seed must observe the exact same per-iteration
  // straggler victims, fault flags, delays, and fluctuations — even though
  // schemes consume different amounts of construction randomness and
  // estimation noise is switched on.
  const Cluster cluster = cluster_a();
  ExperimentConfig config;
  config.iterations = 40;
  config.model.num_stragglers = 2;
  config.model.delay_seconds = 0.3;
  config.model.fluctuation_sigma = 0.1;
  config.estimation_sigma = 0.2;

  std::vector<IterationConditions> base_log;
  run_experiment(SchemeKind::kNaive, cluster, config, &base_log);
  ASSERT_EQ(base_log.size(), 40u);

  for (SchemeKind kind : {SchemeKind::kCyclic, SchemeKind::kHeterAware,
                          SchemeKind::kGroupBased}) {
    std::vector<IterationConditions> log;
    run_experiment(kind, cluster, config, &log);
    ASSERT_EQ(log.size(), base_log.size()) << to_string(kind);
    for (std::size_t i = 0; i < log.size(); ++i) {
      EXPECT_EQ(log[i].speed_factor, base_log[i].speed_factor)
          << to_string(kind) << " iteration " << i;
      EXPECT_EQ(log[i].delay, base_log[i].delay)
          << to_string(kind) << " iteration " << i;
      EXPECT_EQ(log[i].faulted, base_log[i].faulted)
          << to_string(kind) << " iteration " << i;
    }
  }
}

TEST(Experiment, ResolvePartitionsDefault) {
  ExperimentConfig config;
  EXPECT_EQ(resolve_partitions(config, 8), 16u);
  config.k = 24;
  EXPECT_EQ(resolve_partitions(config, 8), 24u);
}

TEST(Experiment, ExactPartitionCountTableII) {
  // Smallest k with integral Eq. 5 shares: k·c_i·(s+1)/Σc ∈ N for all i.
  EXPECT_EQ(exact_partition_count(cluster_a(), 1), 12u);   // k·c_i/24
  EXPECT_EQ(exact_partition_count(cluster_b(), 1), 29u);   // k·c_i/58
  EXPECT_EQ(exact_partition_count(cluster_c(), 1), 161u);  // k·c_i/161
  EXPECT_EQ(exact_partition_count(cluster_d(), 1), 81u);   // k·c_i/324
  // s = 2 on Cluster-A: 3k·c_i/48 = k·c_i/16 integral already at k = m = 8.
  EXPECT_EQ(exact_partition_count(cluster_a(), 2), 8u);
}

TEST(Experiment, ExactPartitionCountGivesOptimalTime) {
  for (const Cluster& cluster : paper_clusters()) {
    ExperimentConfig config;
    config.s = 1;
    config.k = exact_partition_count(cluster, 1);
    config.iterations = 3;
    const auto summary =
        run_experiment(SchemeKind::kHeterAware, cluster, config);
    EXPECT_NEAR(summary.mean_time(), ideal_iteration_time(cluster, 1), 1e-9)
        << cluster.name();
  }
}

}  // namespace
}  // namespace hgc
