// Tests for the LRU decoding-coefficient cache (the paper's "partially
// stored" decoding matrix, Section III-B).
#include <gtest/gtest.h>

#include "core/decoding_cache.hpp"
#include "core/heter_aware.hpp"
#include "util/rng.hpp"

namespace hgc {
namespace {

class DecodingCacheTest : public ::testing::Test {
 protected:
  DecodingCacheTest() : rng_(141), scheme_({1, 2, 3, 4, 4}, 7, 1, rng_) {}

  std::vector<bool> all_but(std::initializer_list<WorkerId> missing) const {
    std::vector<bool> received(5, true);
    for (WorkerId w : missing) received[w] = false;
    return received;
  }

  Rng rng_;
  HeterAwareScheme scheme_;
};

TEST_F(DecodingCacheTest, HitReturnsIdenticalCoefficients) {
  DecodingCache cache(scheme_);
  const auto first = cache.decode(all_but({2}));
  const auto second = cache.decode(all_but({2}));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(DecodingCacheTest, MatchesUncachedDecode) {
  DecodingCache cache(scheme_);
  for (WorkerId straggler = 0; straggler < 5; ++straggler) {
    const auto received = all_but({straggler});
    const auto cached = cache.decode(received);
    const auto direct = scheme_.decoding_coefficients(received);
    ASSERT_EQ(cached.has_value(), direct.has_value());
    EXPECT_EQ(*cached, *direct);
  }
  EXPECT_EQ(cache.misses(), 5u);
}

TEST_F(DecodingCacheTest, CachesNegativeResults) {
  DecodingCache cache(scheme_);
  const auto received = all_but({3, 4});  // 2 stragglers > s = 1
  EXPECT_FALSE(cache.decode(received).has_value());
  EXPECT_FALSE(cache.decode(received).has_value());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(DecodingCacheTest, EvictsLeastRecentlyUsed) {
  DecodingCache cache(scheme_, 2);
  cache.decode(all_but({0}));  // A
  cache.decode(all_but({1}));  // B
  cache.decode(all_but({0}));  // hit A, A becomes MRU
  cache.decode(all_but({2}));  // C evicts B (A was bumped by the hit)
  EXPECT_EQ(cache.size(), 2u);
  const std::size_t hits_before = cache.hits();
  cache.decode(all_but({0}));  // A survived: hit
  EXPECT_EQ(cache.hits(), hits_before + 1);
  const std::size_t misses_before = cache.misses();
  cache.decode(all_but({1}));  // B was evicted: miss (and now evicts C)
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST_F(DecodingCacheTest, ClearResets) {
  DecodingCache cache(scheme_);
  cache.decode(all_but({0}));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST_F(DecodingCacheTest, RejectsWrongWidth) {
  DecodingCache cache(scheme_);
  EXPECT_THROW(cache.decode(std::vector<bool>(3, true)),
               std::invalid_argument);
}

TEST_F(DecodingCacheTest, RejectsZeroCapacity) {
  EXPECT_THROW(DecodingCache(scheme_, 0), std::invalid_argument);
}

TEST(DecodingCacheWide, DistinguishesPatternsBeyond64Workers) {
  // 70 workers exercises the multi-word key path.
  Rng rng(142);
  Throughputs c(70, 1.0);
  HeterAwareScheme scheme(c, 70, 1, rng);
  DecodingCache cache(scheme);
  std::vector<bool> a(70, true), b(70, true);
  a[0] = false;
  b[69] = false;
  const auto ca = cache.decode(a);
  const auto cb = cache.decode(b);
  ASSERT_TRUE(ca.has_value());
  ASSERT_TRUE(cb.has_value());
  EXPECT_EQ(cache.misses(), 2u);  // distinct keys, both misses
  EXPECT_NE(*ca, *cb);
}

}  // namespace
}  // namespace hgc
