// Tests for the LRU decoding-coefficient cache (the paper's "partially
// stored" decoding matrix, Section III-B) and its wiring into the
// robustness hot paths (completion_time / worst_case_time), including the
// duplicate-tail-solve fix verified with a solve-counting scheme wrapper.
#include <gtest/gtest.h>

#include "core/decoding_cache.hpp"
#include "core/heter_aware.hpp"
#include "core/robustness.hpp"
#include "util/rng.hpp"

namespace hgc {
namespace {

class DecodingCacheTest : public ::testing::Test {
 protected:
  DecodingCacheTest() : rng_(141), scheme_({1, 2, 3, 4, 4}, 7, 1, rng_) {}

  std::vector<bool> all_but(std::initializer_list<WorkerId> missing) const {
    std::vector<bool> received(5, true);
    for (WorkerId w : missing) received[w] = false;
    return received;
  }

  Rng rng_;
  HeterAwareScheme scheme_;
};

TEST_F(DecodingCacheTest, HitReturnsIdenticalCoefficients) {
  DecodingCache cache(scheme_);
  const auto first = cache.decode(all_but({2}));
  const auto second = cache.decode(all_but({2}));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(DecodingCacheTest, MatchesUncachedDecode) {
  DecodingCache cache(scheme_);
  for (WorkerId straggler = 0; straggler < 5; ++straggler) {
    const auto received = all_but({straggler});
    const auto cached = cache.decode(received);
    const auto direct = scheme_.decoding_coefficients(received);
    ASSERT_EQ(cached.has_value(), direct.has_value());
    EXPECT_EQ(*cached, *direct);
  }
  EXPECT_EQ(cache.misses(), 5u);
}

TEST_F(DecodingCacheTest, CachesNegativeResults) {
  DecodingCache cache(scheme_);
  const auto received = all_but({3, 4});  // 2 stragglers > s = 1
  EXPECT_FALSE(cache.decode(received).has_value());
  EXPECT_FALSE(cache.decode(received).has_value());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(DecodingCacheTest, EvictsLeastRecentlyUsed) {
  DecodingCache cache(scheme_, 2);
  cache.decode(all_but({0}));  // A
  cache.decode(all_but({1}));  // B
  cache.decode(all_but({0}));  // hit A, A becomes MRU
  cache.decode(all_but({2}));  // C evicts B (A was bumped by the hit)
  EXPECT_EQ(cache.size(), 2u);
  const std::size_t hits_before = cache.hits();
  cache.decode(all_but({0}));  // A survived: hit
  EXPECT_EQ(cache.hits(), hits_before + 1);
  const std::size_t misses_before = cache.misses();
  cache.decode(all_but({1}));  // B was evicted: miss (and now evicts C)
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST_F(DecodingCacheTest, CapacityOneKeepsOnlyTheLatestPattern) {
  DecodingCache cache(scheme_, 1);
  cache.decode(all_but({0}));  // A cached
  EXPECT_EQ(cache.size(), 1u);
  cache.decode(all_but({1}));  // B evicts A immediately
  EXPECT_EQ(cache.size(), 1u);
  cache.decode(all_but({1}));  // B still resident
  EXPECT_EQ(cache.hits(), 1u);
  cache.decode(all_but({0}));  // A was evicted: miss again
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(DecodingCacheTest, ClearResets) {
  DecodingCache cache(scheme_);
  cache.decode(all_but({0}));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST_F(DecodingCacheTest, RejectsWrongWidth) {
  DecodingCache cache(scheme_);
  EXPECT_THROW(cache.decode(std::vector<bool>(3, true)),
               std::invalid_argument);
}

TEST_F(DecodingCacheTest, RejectsZeroCapacity) {
  EXPECT_THROW(DecodingCache(scheme_, 0), std::invalid_argument);
}

TEST(DecodingCacheWide, DistinguishesPatternsBeyond64Workers) {
  // 70 workers exercises the multi-word key path.
  Rng rng(142);
  Throughputs c(70, 1.0);
  HeterAwareScheme scheme(c, 70, 1, rng);
  DecodingCache cache(scheme);
  std::vector<bool> a(70, true), b(70, true);
  a[0] = false;
  b[69] = false;
  const auto ca = cache.decode(a);
  const auto cb = cache.decode(b);
  ASSERT_TRUE(ca.has_value());
  ASSERT_TRUE(cb.has_value());
  EXPECT_EQ(cache.misses(), 2u);  // distinct keys, both misses
  EXPECT_NE(*ca, *cb);
}

// Delegating wrapper that counts how many real decoding solves a call path
// performs — the instrument behind the duplicate-solve and cache-wiring
// assertions below.
class CountingScheme : public CodingScheme {
 public:
  explicit CountingScheme(const CodingScheme& inner)
      : CodingScheme(Matrix(inner.coding_matrix()),
                     Assignment(inner.assignment()),
                     inner.stragglers_tolerated()),
        inner_(inner) {}

  std::string name() const override { return "counting"; }

  std::optional<Vector> decoding_coefficients(
      const std::vector<bool>& received) const override {
    ++solves;
    return inner_.decoding_coefficients(received);
  }

  std::size_t min_results_required() const override {
    return inner_.min_results_required();
  }

  mutable std::size_t solves = 0;

 private:
  const CodingScheme& inner_;
};

// A scheme that can never decode and accepts probes from the first arrival
// on: the exact shape that used to trigger completion_time's redundant
// tail re-solve of the full received set.
class NeverDecodableScheme : public CodingScheme {
 public:
  NeverDecodableScheme()
      : CodingScheme(Matrix{{1, 1}, {1, 1}, {1, 1}},
                     Assignment{{0, 1}, {0, 1}, {0, 1}}, 1) {}

  std::string name() const override { return "never"; }

  std::optional<Vector> decoding_coefficients(
      const std::vector<bool>&) const override {
    ++solves;
    return std::nullopt;
  }

  std::size_t min_results_required() const override { return 1; }

  mutable std::size_t solves = 0;
};

TEST(CompletionTimeSolves, NoDuplicateSolveWhenLoopAlreadyTriedFullSet) {
  // 3 survivors, min_results_required = 1: the arrival loop attempts the
  // decode at counts 1, 2 and 3 — the last attempt IS the full received
  // set, so the undecodable tail must not re-run that identical solve.
  NeverDecodableScheme scheme;
  const Throughputs c = {1.0, 2.0, 3.0};
  EXPECT_FALSE(completion_time(scheme, c, {}).has_value());
  EXPECT_EQ(scheme.solves, 3u);
}

TEST(CompletionTimeSolves, TailStillRunsWhenLoopNeverReachedFullSet) {
  // Heter-aware with s = 1 has min_results_required = m - 1; with two
  // stragglers only m - 2 survivors arrive, the loop never attempts a
  // decode, and the tail case must still probe the full survivor set once.
  Rng rng(151);
  HeterAwareScheme inner({1, 2, 3, 4, 4}, 7, 1, rng);
  CountingScheme scheme(inner);
  const Throughputs c = {1.0, 2.0, 3.0, 4.0, 4.0};
  EXPECT_FALSE(completion_time(scheme, c, {3, 4}).has_value());
  EXPECT_EQ(scheme.solves, 1u);
}

TEST(CompletionTimeSolves, CacheAbsorbsRepeatedPatterns) {
  Rng rng(152);
  HeterAwareScheme inner({1, 2, 3, 4, 4}, 7, 1, rng);
  CountingScheme scheme(inner);
  const Throughputs c = {1.0, 2.0, 3.0, 4.0, 4.0};

  const auto uncached = completion_time(scheme, c, {2});
  const std::size_t solves_per_call = scheme.solves;
  ASSERT_TRUE(uncached.has_value());
  ASSERT_GE(solves_per_call, 1u);

  DecodingCache cache(scheme);
  const auto first = completion_time(scheme, c, {2}, &cache);
  const auto second = completion_time(scheme, c, {2}, &cache);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, *uncached);
  EXPECT_EQ(*second, *uncached);
  // The second cached call resolved entirely from the LRU.
  EXPECT_EQ(scheme.solves, 2 * solves_per_call);
  EXPECT_GT(cache.hits(), 0u);
}

TEST(WorstCaseTimeSolves, SharedCacheMatchesUncachedAndSavesSolves) {
  Rng rng(153);
  HeterAwareScheme inner({1, 2, 3, 4, 4}, 7, 2, rng);
  CountingScheme scheme(inner);
  const Throughputs c = {1.0, 2.0, 3.0, 4.0, 4.0};

  const auto uncached = worst_case_time(scheme, c);
  const std::size_t uncached_solves = scheme.solves;
  ASSERT_TRUE(uncached.has_value());

  scheme.solves = 0;
  DecodingCache cache(scheme);
  const auto cached = worst_case_time(scheme, c, &cache);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, *uncached);
  // Arrival prefixes overlap across the C(m, s) patterns, so the shared
  // cache must strictly reduce the number of real solves.
  EXPECT_LT(scheme.solves, uncached_solves);
  EXPECT_GT(cache.hits(), 0u);
}

}  // namespace
}  // namespace hgc
