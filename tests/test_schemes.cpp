// Tests for the baseline schemes (naive, cyclic, fractional repetition), the
// scheme factory, and the encode/combine gradient helpers.
#include <gtest/gtest.h>

#include "core/cyclic.hpp"
#include "core/fractional.hpp"
#include "core/naive.hpp"
#include "core/robustness.hpp"
#include "core/scheme_factory.hpp"
#include "util/rng.hpp"

namespace hgc {
namespace {

TEST(Naive, IdentityCodingMatrix) {
  NaiveScheme naive(4);
  EXPECT_EQ(naive.num_workers(), 4u);
  EXPECT_EQ(naive.num_partitions(), 4u);
  EXPECT_EQ(naive.stragglers_tolerated(), 0u);
  EXPECT_LT(
      Matrix::max_abs_diff(naive.coding_matrix(), Matrix::identity(4)), 1e-15);
  for (WorkerId w = 0; w < 4; ++w) EXPECT_EQ(naive.load(w), 1u);
}

TEST(Naive, NeedsEveryWorker) {
  NaiveScheme naive(3);
  std::vector<bool> received = {true, true, false};
  EXPECT_FALSE(naive.decoding_coefficients(received).has_value());
  received[2] = true;
  const auto a = naive.decoding_coefficients(received);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, Vector(3, 1.0));
}

TEST(Naive, MinResultsIsAll) {
  NaiveScheme naive(5);
  EXPECT_EQ(naive.min_results_required(), 5u);
}

TEST(Cyclic, UniformLoadsAndRobustness) {
  Rng rng(21);
  CyclicScheme cyclic(6, 2, rng);
  EXPECT_EQ(cyclic.num_partitions(), 6u);
  for (WorkerId w = 0; w < 6; ++w) EXPECT_EQ(cyclic.load(w), 3u);
  EXPECT_TRUE(satisfies_condition1(cyclic.coding_matrix(), 2));
}

TEST(Cyclic, DecodesWithAnyTwoMissing) {
  Rng rng(22);
  CyclicScheme cyclic(6, 2, rng);
  for (std::size_t a = 0; a < 6; ++a)
    for (std::size_t b = a + 1; b < 6; ++b) {
      std::vector<bool> received(6, true);
      received[a] = received[b] = false;
      const auto coeffs = cyclic.decoding_coefficients(received);
      ASSERT_TRUE(coeffs.has_value()) << a << "," << b;
      const Vector ab = cyclic.coding_matrix().apply_transpose(*coeffs);
      for (double v : ab) EXPECT_NEAR(v, 1.0, 1e-8);
    }
}

TEST(Cyclic, RefusesTooManyMissing) {
  Rng rng(23);
  CyclicScheme cyclic(5, 1, rng);
  std::vector<bool> received(5, true);
  received[0] = received[1] = false;
  EXPECT_FALSE(cyclic.decoding_coefficients(received).has_value());
}

TEST(Fractional, BlockStructure) {
  FractionalRepetitionScheme frc(6, 1);  // 3 blocks of 2 workers
  ASSERT_EQ(frc.blocks().size(), 3u);
  for (const auto& block : frc.blocks()) EXPECT_EQ(block.size(), 2u);
  EXPECT_TRUE(satisfies_condition1(frc.coding_matrix(), 1));
}

TEST(Fractional, DecodesFromOnePerBlock) {
  FractionalRepetitionScheme frc(6, 1);
  // Knock out one worker in every block (3 > s stragglers!) — FRC still
  // decodes because each block keeps one replica. min_results is 3, not 5.
  std::vector<bool> received = {true, false, false, true, true, false};
  const auto a = frc.decoding_coefficients(received);
  ASSERT_TRUE(a.has_value());
  const Vector ab = frc.coding_matrix().apply_transpose(*a);
  for (double v : ab) EXPECT_NEAR(v, 1.0, 1e-12);
  EXPECT_EQ(frc.min_results_required(), 3u);
}

TEST(Fractional, FailsWhenBlockWipedOut) {
  FractionalRepetitionScheme frc(6, 1);
  std::vector<bool> received = {false, false, true, true, true, true};
  EXPECT_FALSE(frc.decoding_coefficients(received).has_value());
}

TEST(Fractional, RequiresDivisibility) {
  EXPECT_THROW(FractionalRepetitionScheme(5, 1), std::invalid_argument);
  EXPECT_THROW(FractionalRepetitionScheme(6, 1, 7), std::invalid_argument);
  EXPECT_NO_THROW(FractionalRepetitionScheme(6, 1, 9));
}

TEST(Fractional, CustomPartitionCount) {
  FractionalRepetitionScheme frc(4, 1, 8);  // 2 blocks, stripes of 4
  EXPECT_EQ(frc.num_partitions(), 8u);
  for (WorkerId w = 0; w < 4; ++w) EXPECT_EQ(frc.load(w), 4u);
  EXPECT_TRUE(satisfies_condition1(frc.coding_matrix(), 1));
}

TEST(Factory, ParsesNames) {
  EXPECT_EQ(parse_scheme_kind("naive"), SchemeKind::kNaive);
  EXPECT_EQ(parse_scheme_kind("cyclic"), SchemeKind::kCyclic);
  EXPECT_EQ(parse_scheme_kind("heter"), SchemeKind::kHeterAware);
  EXPECT_EQ(parse_scheme_kind("heter-aware"), SchemeKind::kHeterAware);
  EXPECT_EQ(parse_scheme_kind("group"), SchemeKind::kGroupBased);
  EXPECT_EQ(parse_scheme_kind("fractional"),
            SchemeKind::kFractionalRepetition);
  EXPECT_THROW(parse_scheme_kind("bogus"), std::invalid_argument);
}

TEST(Factory, RoundTripNames) {
  for (SchemeKind kind : paper_schemes())
    EXPECT_EQ(parse_scheme_kind(to_string(kind)), kind);
}

TEST(Factory, BuildsEveryKind) {
  Rng rng(24);
  const Throughputs c = {2, 2, 4, 4, 8, 8};
  for (SchemeKind kind :
       {SchemeKind::kNaive, SchemeKind::kCyclic,
        SchemeKind::kFractionalRepetition, SchemeKind::kHeterAware,
        SchemeKind::kGroupBased}) {
    const auto scheme = make_scheme(kind, c, 12, 1, rng);
    ASSERT_NE(scheme, nullptr);
    EXPECT_EQ(scheme->num_workers(), 6u);
    EXPECT_EQ(to_string(kind), scheme->name());
  }
}

TEST(EncodeCombine, RoundTripsAggregateGradient) {
  Rng rng(25);
  const Throughputs c = {1, 2, 3, 4, 4};
  const auto scheme = make_scheme(SchemeKind::kHeterAware, c, 7, 1, rng);
  // Synthetic per-partition "gradients" of dimension 3.
  std::vector<Vector> grads(7);
  Vector expected(3, 0.0);
  for (std::size_t p = 0; p < 7; ++p) {
    grads[p] = {rng.normal(), rng.normal(), rng.normal()};
    axpy(1.0, grads[p], expected);
  }
  std::vector<Vector> coded(5);
  for (WorkerId w = 0; w < 5; ++w)
    coded[w] = encode_gradient(*scheme, w, grads);

  std::vector<bool> received(5, true);
  received[2] = false;  // one straggler
  coded[2].clear();
  const auto a = scheme->decoding_coefficients(received);
  ASSERT_TRUE(a.has_value());
  const Vector aggregate = combine_coded_gradients(*a, coded);
  ASSERT_EQ(aggregate.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(aggregate[i], expected[i], 1e-8);
}

TEST(EncodeCombine, RejectsMissingResultWithNonzeroCoefficient) {
  const Vector coefficients = {1.0, 1.0};
  std::vector<Vector> coded(2);
  coded[0] = {1.0};
  EXPECT_THROW(combine_coded_gradients(coefficients, coded),
               std::invalid_argument);
}

TEST(CodingScheme, RejectsSupportMismatch) {
  // Matrix support {0} but declared assignment {0,1}: constructor throws.
  class Broken : public CodingScheme {
   public:
    Broken() : CodingScheme(Matrix{{1.0, 0.0}}, {{0, 1}}, 0) {}
    std::string name() const override { return "broken"; }
    std::optional<Vector> decoding_coefficients(
        const std::vector<bool>&) const override {
      return std::nullopt;
    }
  };
  EXPECT_THROW(Broken{}, std::invalid_argument);
}

}  // namespace
}  // namespace hgc
