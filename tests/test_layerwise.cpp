// Tests for the layer-wise coded pipeline (compute/communication overlap,
// the paper's conclusion extension).
#include <gtest/gtest.h>

#include "core/scheme_factory.hpp"
#include "sim/layerwise.hpp"

namespace hgc {
namespace {

IterationConditions clean(std::size_t m) {
  IterationConditions cond;
  cond.speed_factor.assign(m, 1.0);
  cond.delay.assign(m, 0.0);
  cond.faulted.assign(m, false);
  return cond;
}

class LayerwiseTest : public ::testing::Test {
 protected:
  LayerwiseTest()
      : cluster_(cluster_a()),
        rng_(151),
        scheme_(make_scheme(SchemeKind::kHeterAware, cluster_.throughputs(),
                            24, 1, rng_)) {}

  Cluster cluster_;
  Rng rng_;
  std::unique_ptr<CodingScheme> scheme_;
};

TEST_F(LayerwiseTest, EqualLayersSumToOne) {
  const auto fractions = equal_layers(7);
  double total = 0.0;
  for (double f : fractions) total += f;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_THROW(equal_layers(0), std::invalid_argument);
}

TEST_F(LayerwiseTest, MonolithicMatchesPlainSimulatorWithoutComm) {
  LayerwiseParams params;  // single layer, no comm cost
  const auto layered =
      simulate_layerwise_iteration(*scheme_, cluster_, clean(8), params);
  const auto plain = simulate_iteration(*scheme_, cluster_, clean(8));
  ASSERT_TRUE(layered.decoded);
  ASSERT_TRUE(plain.decoded);
  EXPECT_NEAR(layered.time, plain.time, 1e-12);
}

TEST_F(LayerwiseTest, OverlapHidesTransferTime) {
  const double transfer = 0.5 * ideal_iteration_time(cluster_, 1);

  LayerwiseParams mono;
  mono.full_transfer_time = transfer;
  const auto monolithic =
      simulate_layerwise_iteration(*scheme_, cluster_, clean(8), mono);

  LayerwiseParams layered = mono;
  layered.layer_fractions = equal_layers(8);
  const auto pipelined =
      simulate_layerwise_iteration(*scheme_, cluster_, clean(8), layered);

  ASSERT_TRUE(monolithic.decoded);
  ASSERT_TRUE(pipelined.decoded);
  // Monolithic pays compute + full transfer; pipelining hides all but the
  // last layer's slice.
  EXPECT_LT(pipelined.time, monolithic.time - 0.5 * transfer);
}

TEST_F(LayerwiseTest, MoreLayersNeverSlower) {
  LayerwiseParams params;
  params.full_transfer_time = 0.02;
  double previous = 1e9;
  for (std::size_t layers : {1u, 2u, 4u, 16u}) {
    params.layer_fractions = equal_layers(layers);
    const auto result =
        simulate_layerwise_iteration(*scheme_, cluster_, clean(8), params);
    ASSERT_TRUE(result.decoded);
    EXPECT_LE(result.time, previous + 1e-12) << layers << " layers";
    previous = result.time;
  }
}

TEST_F(LayerwiseTest, PerMessageLatencyPenalizesOverSplitting) {
  // With a fixed cost per message, thousands of tiny layers lose: the last
  // layer still pays latency, and so does every other one... the *last*
  // layer's arrival = compute + latency + slice; latency is not amortized.
  LayerwiseParams coarse;
  coarse.full_transfer_time = 0.01;
  coarse.per_message_latency = 0.005;
  coarse.layer_fractions = equal_layers(2);
  LayerwiseParams fine = coarse;
  fine.layer_fractions = equal_layers(64);
  const auto coarse_result =
      simulate_layerwise_iteration(*scheme_, cluster_, clean(8), coarse);
  const auto fine_result =
      simulate_layerwise_iteration(*scheme_, cluster_, clean(8), fine);
  ASSERT_TRUE(coarse_result.decoded);
  ASSERT_TRUE(fine_result.decoded);
  // Finer layers shrink the exposed final slice (0.01/64 vs 0.01/2) but the
  // fixed latency stays; the gap must be bounded by the slice difference.
  EXPECT_NEAR(fine_result.time,
              coarse_result.time - (0.01 / 2 - 0.01 / 64), 1e-9);
}

TEST_F(LayerwiseTest, StragglerToleranceCarriesOver) {
  auto cond = clean(8);
  cond.faulted[7] = true;
  LayerwiseParams params;
  params.layer_fractions = equal_layers(4);
  params.full_transfer_time = 0.01;
  const auto result =
      simulate_layerwise_iteration(*scheme_, cluster_, cond, params);
  EXPECT_TRUE(result.decoded);

  cond.faulted[6] = true;  // two faults > s = 1
  const auto dead =
      simulate_layerwise_iteration(*scheme_, cluster_, cond, params);
  EXPECT_FALSE(dead.decoded);
}

TEST_F(LayerwiseTest, LayerTimesAreRecorded) {
  LayerwiseParams params;
  params.layer_fractions = {0.5, 0.3, 0.2};
  const auto result =
      simulate_layerwise_iteration(*scheme_, cluster_, clean(8), params);
  ASSERT_TRUE(result.decoded);
  ASSERT_EQ(result.layer_times.size(), 3u);
  // Later layers decode later (cumulative compute grows).
  EXPECT_LT(result.layer_times[0], result.layer_times[1]);
  EXPECT_LT(result.layer_times[1], result.layer_times[2]);
  EXPECT_DOUBLE_EQ(result.time, result.layer_times[2]);
}

TEST_F(LayerwiseTest, RejectsBadFractions) {
  LayerwiseParams params;
  params.layer_fractions = {0.5, 0.2};  // sums to 0.7
  EXPECT_THROW(
      simulate_layerwise_iteration(*scheme_, cluster_, clean(8), params),
      std::invalid_argument);
  params.layer_fractions = {1.5, -0.5};
  EXPECT_THROW(
      simulate_layerwise_iteration(*scheme_, cluster_, clean(8), params),
      std::invalid_argument);
}

}  // namespace
}  // namespace hgc
