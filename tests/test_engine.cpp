// Tests for the discrete-event engine: event queue, simulation clock,
// channel adapters, and the actor-based coded round.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/scheme_factory.hpp"
#include "engine/event_queue.hpp"
#include "engine/link.hpp"
#include "engine/round.hpp"
#include "engine/simulation.hpp"
#include "sim/iteration.hpp"

namespace hgc {
namespace {

using engine::EventQueue;
using engine::FixedLatencyLink;
using engine::NetworkLink;
using engine::RoundOptions;
using engine::RoundOutcome;
using engine::Simulation;

IterationConditions clean_conditions(std::size_t m) {
  IterationConditions cond;
  cond.speed_factor.assign(m, 1.0);
  cond.delay.assign(m, 0.0);
  cond.faulted.assign(m, false);
  return cond;
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.push(3.0, [&] { order.push_back(3); });
  queue.push(1.0, [&] { order.push_back(1); });
  queue.push(2.0, [&] { order.push_back(2); });
  while (!queue.empty()) queue.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i)
    queue.push(1.0, [&order, i] { order.push_back(i); });
  while (!queue.empty()) queue.pop().action();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueue, TagsBreakTimeTiesBeforeInsertionOrder) {
  // Tagged events at the same time fire in tag order regardless of when
  // they were scheduled — how SSP keeps its (time, worker) pop order.
  EventQueue queue;
  std::vector<int> order;
  queue.push(1.0, [&] { order.push_back(7); }, 7);
  queue.push(1.0, [&] { order.push_back(3); }, 3);
  queue.push(0.5, [&] { order.push_back(9); }, 9);  // earlier time wins
  queue.push(1.0, [&] { order.push_back(5); }, 5);
  while (!queue.empty()) queue.pop().action();
  EXPECT_EQ(order, (std::vector<int>{9, 3, 5, 7}));
}

TEST(EventQueue, CancelRemovesPendingEvent) {
  EventQueue queue;
  bool ran = false;
  const auto id = queue.push(1.0, [&] { ran = true; });
  queue.push(2.0, [] {});
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_FALSE(queue.cancel(id));  // second cancel is a no-op
  EXPECT_DOUBLE_EQ(queue.pop().time, 2.0);
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, MassCancellationCompactsWithoutDisturbingOrder) {
  // Cancel enough far-future timers to trigger heap compaction, then check
  // the surviving events still fire in exact (time, id) order.
  EventQueue queue;
  std::vector<engine::EventId> doomed;
  for (int i = 0; i < 150; ++i)
    doomed.push_back(queue.push(1e6 + i, [] {}));
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    queue.push(static_cast<double>(i), [&order, i] { order.push_back(i); });
  for (engine::EventId id : doomed) EXPECT_TRUE(queue.cancel(id));
  EXPECT_EQ(queue.size(), 10u);
  while (!queue.empty()) queue.pop().action();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(EventQueue, CancelAfterPopReturnsFalse) {
  EventQueue queue;
  const auto id = queue.push(1.0, [] {});
  queue.pop();
  EXPECT_FALSE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(12345));  // never existed
}

TEST(Simulation, ClockFollowsEventTimes) {
  Simulation sim;
  std::vector<double> seen;
  sim.schedule_at(2.5, [&] { seen.push_back(sim.now()); });
  sim.schedule_at(1.0, [&] { seen.push_back(sim.now()); });
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(seen, (std::vector<double>{1.0, 2.5}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
}

TEST(Simulation, HandlersMayScheduleMoreEvents) {
  Simulation sim;
  std::vector<double> ticks;
  std::function<void()> tick = [&] {
    ticks.push_back(sim.now());
    if (ticks.size() < 5) sim.schedule_after(1.0, tick);
  };
  sim.schedule_after(1.0, tick);
  sim.run();
  EXPECT_EQ(ticks, (std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}));
}

TEST(Simulation, RejectsPastAndNegative) {
  Simulation sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.run_until(1.0), std::invalid_argument);
}

TEST(Simulation, StopHaltsTheLoopAndResumeContinues) {
  Simulation sim;
  int ran = 0;
  for (int i = 1; i <= 4; ++i)
    sim.schedule_at(static_cast<double>(i), [&] {
      if (++ran == 2) sim.stop();
    });
  sim.run();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.resume();
  sim.run();
  EXPECT_EQ(ran, 4);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulation, RunUntilExecutesPrefixAndAdvancesClock) {
  Simulation sim;
  int ran = 0;
  sim.schedule_at(1.0, [&] { ++ran; });
  sim.schedule_at(3.0, [&] { ++ran; });
  EXPECT_EQ(sim.run_until(2.0), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(ran, 2);
}

TEST(Links, FixedLatencyShiftsArrival) {
  FixedLatencyLink link(0.25);
  const auto arrival = link.transmit(0, 1, 1000, 2.0);
  ASSERT_TRUE(arrival.has_value());
  EXPECT_DOUBLE_EQ(*arrival, 2.25);
  EXPECT_THROW(FixedLatencyLink(-0.1), std::invalid_argument);
}

TEST(Links, NetworkLinkForwardsDrops) {
  LinkParams params;
  params.drop_probability = 1.0;
  SimulatedNetwork network(4, params, Rng(9));
  NetworkLink link(network);
  EXPECT_FALSE(link.transmit(0, 3, 100, 0.0).has_value());
  EXPECT_EQ(network.messages_dropped(), 1u);
}

TEST(EngineRound, TimingOnlyHitsAnalyticDecodeTime) {
  Rng rng(81);
  const Cluster cluster = cluster_a();
  const auto scheme = make_scheme(SchemeKind::kHeterAware,
                                  cluster.throughputs(), 24, 1, rng);
  FixedLatencyLink link;
  const RoundOutcome round =
      engine::run_round(*scheme, cluster, clean_conditions(8), link);
  ASSERT_TRUE(round.decoded);
  EXPECT_NEAR(round.time, ideal_iteration_time(cluster, 1), 1e-9);
  EXPECT_TRUE(round.coefficients.has_value());
  EXPECT_TRUE(round.aggregate.empty());  // timing-only round carries no data
}

TEST(EngineRound, MasterStopsLoopAtFirstDecodableArrival) {
  Rng rng(82);
  const Cluster cluster = cluster_a();
  const auto scheme = make_scheme(SchemeKind::kHeterAware,
                                  cluster.throughputs(), 24, 1, rng);
  auto cond = clean_conditions(8);
  cond.delay[3] = 100.0;  // one straggler, s = 1: never waited for
  FixedLatencyLink link;
  const RoundOutcome round =
      engine::run_round(*scheme, cluster, cond, link);
  ASSERT_TRUE(round.decoded);
  EXPECT_NEAR(round.time, ideal_iteration_time(cluster, 1), 1e-9);
  EXPECT_EQ(round.results_used, 7u);
  // The straggler's delivery event never ran: the master released the
  // barrier and stopped the clock first.
  EXPECT_EQ(round.events_executed, 7u);
}

TEST(EngineRound, UndecodableRoundDrainsAndReportsFailure) {
  Rng rng(83);
  const Cluster cluster = cluster_a();
  const auto naive =
      make_scheme(SchemeKind::kNaive, cluster.throughputs(), 8, 0, rng);
  auto cond = clean_conditions(8);
  cond.faulted[2] = true;
  FixedLatencyLink link;
  const RoundOutcome round = engine::run_round(*naive, cluster, cond, link);
  EXPECT_FALSE(round.decoded);
  EXPECT_EQ(round.time, std::numeric_limits<double>::infinity());
  EXPECT_EQ(round.resource_usage, 0.0);
}

TEST(EngineRound, PayloadRoundRecoversAggregate) {
  Rng rng(84);
  const Throughputs c = {1, 2, 3, 4, 4};
  const Cluster cluster("five", {{1, 1.0}, {2, 2.0}, {3, 3.0}, {4, 4.0},
                                 {4, 4.0}});
  const auto scheme = make_scheme(SchemeKind::kHeterAware, c, 7, 1, rng);
  // Per-partition scalar "gradients" 1..7; aggregate = 28.
  std::vector<Vector> grads(7);
  for (std::size_t p = 0; p < 7; ++p) grads[p] = {double(p + 1)};
  auto cond = clean_conditions(5);
  cond.delay[1] = 50.0;  // absorbed by s = 1
  FixedLatencyLink link;
  RoundOptions options;
  options.partition_gradients = &grads;
  const RoundOutcome round =
      engine::run_round(*scheme, cluster, cond, link, options);
  ASSERT_TRUE(round.decoded);
  ASSERT_EQ(round.aggregate.size(), 1u);
  EXPECT_NEAR(round.aggregate[0], 28.0, 1e-8);
}

TEST(EngineRound, WireFramesOverNetworkRecoverAggregate) {
  Rng rng(85);
  const Throughputs c = {1, 2, 3, 4, 4};
  const Cluster cluster("five", {{1, 1.0}, {2, 2.0}, {3, 3.0}, {4, 4.0},
                                 {4, 4.0}});
  const auto scheme = make_scheme(SchemeKind::kHeterAware, c, 7, 1, rng);
  std::vector<Vector> grads(7);
  for (std::size_t p = 0; p < 7; ++p) grads[p] = {double(p + 1)};
  SimulatedNetwork network(6, LinkParams{}, Rng(86));
  NetworkLink link(network);
  RoundOptions options;
  options.partition_gradients = &grads;
  options.wire_frames = true;
  options.iteration = 17;
  const RoundOutcome round = engine::run_round(
      *scheme, cluster, clean_conditions(5), link, options);
  ASSERT_TRUE(round.decoded);
  ASSERT_EQ(round.aggregate.size(), 1u);
  EXPECT_NEAR(round.aggregate[0], 28.0, 1e-8);
  EXPECT_GT(network.bytes_sent(), 0u);
}

TEST(EngineRound, LostMessagesAreCountedAsDropped) {
  Rng rng(87);
  const Throughputs c = {1, 2, 3, 4, 4};
  const Cluster cluster("five", {{1, 1.0}, {2, 2.0}, {3, 3.0}, {4, 4.0},
                                 {4, 4.0}});
  const auto scheme = make_scheme(SchemeKind::kHeterAware, c, 7, 1, rng);
  std::vector<Vector> grads(7);
  for (std::size_t p = 0; p < 7; ++p) grads[p] = {1.0};
  LinkParams lossy;
  lossy.drop_probability = 1.0;
  SimulatedNetwork network(6, lossy, Rng(88));
  NetworkLink link(network);
  RoundOptions options;
  options.partition_gradients = &grads;
  options.wire_frames = true;
  const RoundOutcome round = engine::run_round(
      *scheme, cluster, clean_conditions(5), link, options);
  EXPECT_FALSE(round.decoded);
  EXPECT_EQ(round.dropped, 5u);
}

TEST(EngineRound, DeterministicAcrossCalls) {
  Rng rng(89);
  const Cluster cluster = cluster_a();
  const auto scheme = make_scheme(SchemeKind::kHeterAware,
                                  cluster.throughputs(), 24, 1, rng);
  auto cond = clean_conditions(8);
  cond.delay[5] = 0.3;
  cond.speed_factor[1] = 0.7;
  FixedLatencyLink link(0.01);
  const RoundOutcome a = engine::run_round(*scheme, cluster, cond, link);
  const RoundOutcome b = engine::run_round(*scheme, cluster, cond, link);
  ASSERT_TRUE(a.decoded);
  EXPECT_DOUBLE_EQ(a.time, b.time);
  EXPECT_EQ(a.results_used, b.results_used);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(EngineRound, RejectsMismatchedSizes) {
  Rng rng(90);
  const Cluster cluster = cluster_a();
  const auto scheme =
      make_scheme(SchemeKind::kNaive, cluster.throughputs(), 8, 0, rng);
  FixedLatencyLink link;
  EXPECT_THROW(
      engine::run_round(*scheme, cluster, clean_conditions(5), link),
      std::invalid_argument);
}

}  // namespace
}  // namespace hgc
