// Property tests for the linalg kernel + workspace layer: kernels against
// naive references, workspace/in-place solves against the allocating paths
// over randomized shapes (1e-12), and the zero-allocations-after-warm-up
// regression for robustness::satisfies_condition1, pinned with an
// instrumented global allocator.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "core/cyclic.hpp"
#include "core/robustness.hpp"
#include "linalg/kernels.hpp"
#include "linalg/lu.hpp"
#include "linalg/nullspace.hpp"
#include "linalg/qr.hpp"
#include "linalg/workspace.hpp"
#include "util/rng.hpp"

// Instruments this whole binary; the zero-alloc regression snapshots the
// counter around a warmed-up call, so gtest's own bookkeeping outside that
// window never pollutes the measurement.
#include "util/alloc_instrument.hpp"

namespace hgc {
namespace {

using alloc_instrument::allocation_count;

constexpr double kMatchTolerance = 1e-12;

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal();
  return m;
}

Vector random_vector(std::size_t n, Rng& rng) {
  Vector v(n);
  for (double& x : v) x = rng.normal();
  return v;
}

TEST(AllocationInstrument, CountsHeapAllocations) {
  const std::size_t before = allocation_count();
  Vector v(257, 1.0);
  EXPECT_GT(allocation_count(), before);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
}

// ------------------------------------------------- kernels vs references --

TEST(Kernels, DotMatchesNaive) {
  Rng rng(101);
  for (std::size_t n = 0; n < 135; n += (n < 9 ? 1 : 13)) {
    const Vector a = random_vector(n, rng);
    const Vector b = random_vector(n, rng);
    double ref = 0.0;
    for (std::size_t i = 0; i < n; ++i) ref += a[i] * b[i];
    EXPECT_NEAR(kernels::dot(a, b), ref, 1e-10) << "n=" << n;
  }
}

TEST(Kernels, DotIsDeterministic) {
  // Same input → bit-identical result, regardless of repetition.
  Rng rng(102);
  const Vector a = random_vector(1031, rng);
  const Vector b = random_vector(1031, rng);
  const double first = kernels::dot(a, b);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(kernels::dot(a, b), first);
}

TEST(Kernels, AxpyScalMatchNaive) {
  Rng rng(103);
  for (std::size_t n : {0u, 1u, 3u, 4u, 7u, 64u, 130u}) {
    const Vector x = random_vector(n, rng);
    Vector y = random_vector(n, rng);
    Vector ref = y;
    kernels::axpy(0.37, x, y);
    for (std::size_t i = 0; i < n; ++i) ref[i] += 0.37 * x[i];
    for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(y[i], ref[i]);

    kernels::scal(-1.25, y);
    for (std::size_t i = 0; i < n; ++i) ref[i] *= -1.25;
    for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(y[i], ref[i]);
  }
}

TEST(Kernels, GemvMatchesApply) {
  Rng rng(104);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = 1 + static_cast<std::size_t>(trial % 7);
    const std::size_t n = 1 + static_cast<std::size_t>((trial * 3) % 11);
    const Matrix a = random_matrix(m, n, rng);
    const Vector x = random_vector(n, rng);
    Vector y(m);
    kernels::gemv(a.data().data(), n, m, n, x, y);
    for (std::size_t r = 0; r < m; ++r) {
      double ref = 0.0;
      for (std::size_t c = 0; c < n; ++c) ref += a(r, c) * x[c];
      EXPECT_NEAR(y[r], ref, 1e-10);
    }
  }
}

TEST(Kernels, GemvTransposeMatchesNaive) {
  Rng rng(105);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = 1 + static_cast<std::size_t>(trial % 6);
    const std::size_t n = 1 + static_cast<std::size_t>((trial * 5) % 9);
    const Matrix a = random_matrix(m, n, rng);
    const Vector x = random_vector(m, rng);
    Vector y(n, 99.0);  // gemv_t must overwrite, not accumulate
    kernels::gemv_t(a.data().data(), n, m, n, x, y);
    for (std::size_t c = 0; c < n; ++c) {
      double ref = 0.0;
      for (std::size_t r = 0; r < m; ++r) ref += x[r] * a(r, c);
      EXPECT_NEAR(y[c], ref, 1e-10);
    }
  }
}

TEST(Kernels, Rank1UpdateMatchesNaive) {
  Rng rng(106);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = 1 + static_cast<std::size_t>(trial % 9);
    const std::size_t n = 1 + static_cast<std::size_t>((trial * 7) % 13);
    Matrix a = random_matrix(m, n, rng);
    Matrix ref = a;
    const Vector x = random_vector(m, rng);
    const Vector y = random_vector(n, rng);
    kernels::rank1_update(a.data().data(), n, m, n, 0.73, x, y);
    for (std::size_t r = 0; r < m; ++r)
      for (std::size_t c = 0; c < n; ++c) ref(r, c) += (0.73 * x[r]) * y[c];
    EXPECT_NEAR(Matrix::max_abs_diff(a, ref), 0.0, 1e-12);
  }
}

TEST(Kernels, GemvHonorsLeadingDimension) {
  // A 2×2 sub-block of a 3-column matrix: lda = 3 ≠ cols = 2.
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Vector x{1.0, 1.0};
  Vector y(2);
  kernels::gemv(a.data().data(), 3, 2, 2, x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
}

// ------------------------------- workspace solves vs allocating paths --

TEST(LuWorkspace, MatchesLuDecompositionOverRandomShapes) {
  Rng rng(107);
  LuWorkspace ws;  // one workspace across every shape
  Vector x;
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(trial % 9);
    const Matrix a = random_matrix(n, n, rng);
    const Vector b = random_vector(n, rng);
    ASSERT_TRUE(ws.factor(a)) << "random matrix singular?";
    ws.solve_into(b, x);
    const Vector ref = lu_solve(a, b);
    ASSERT_EQ(x.size(), ref.size());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(x[i], ref[i], kMatchTolerance) << "trial " << trial;
  }
}

TEST(LuWorkspace, FactorColsMatchesSelectCols) {
  Rng rng(108);
  const Matrix c = random_matrix(4, 9, rng);
  const std::vector<std::size_t> cols{7, 2, 5, 0};
  const Vector b{1.0, 1.0, 1.0, 1.0};
  LuWorkspace ws;
  Vector x;
  ASSERT_TRUE(ws.factor_cols(c, cols));
  ws.solve_into(b, x);
  const Vector ref = lu_solve(c.select_cols(cols), b);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(x[i], ref[i], kMatchTolerance);
}

TEST(LuWorkspace, SingularMatrixReportedAndSolveThrows) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  LuWorkspace ws;
  EXPECT_FALSE(lu_factor_into(a, ws));
  EXPECT_TRUE(ws.is_singular());
  Vector x;
  EXPECT_THROW(ws.solve_into(Vector{1.0, 1.0}, x), InternalError);
}

TEST(QrWorkspace, MatchesLeastSquaresOverRandomShapes) {
  Rng rng(109);
  QrWorkspace ws;  // one workspace across every shape
  Vector x;
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t m = 1 + static_cast<std::size_t>(trial % 8);
    const std::size_t n = 1 + static_cast<std::size_t>((trial * 3) % 6);
    const Matrix a = random_matrix(m, n, rng);
    const Vector b = random_vector(m, rng);
    const auto ref = least_squares(a, b);
    const InPlaceSolveInfo info = least_squares_into(a, b, ws, x);
    EXPECT_EQ(info.rank, ref.rank) << "trial " << trial;
    EXPECT_NEAR(info.residual, ref.residual, kMatchTolerance);
    ASSERT_EQ(x.size(), ref.x.size());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(x[i], ref.x[i], kMatchTolerance) << "trial " << trial;
  }
}

TEST(QrWorkspace, RankDeficientAgreesWithAllocatingPath) {
  Rng rng(110);
  Matrix a(5, 3);
  for (std::size_t i = 0; i < 5; ++i) {
    a(i, 0) = rng.normal();
    a(i, 1) = rng.normal();
    a(i, 2) = a(i, 0) + a(i, 1);  // rank 2
  }
  const Vector b = random_vector(5, rng);
  QrWorkspace ws;
  Vector x;
  const auto info = least_squares_into(a, b, ws, x);
  const auto ref = least_squares(a, b);
  EXPECT_EQ(info.rank, 2u);
  EXPECT_EQ(ref.rank, 2u);
  EXPECT_NEAR(info.residual, ref.residual, kMatchTolerance);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(x[i], ref.x[i], kMatchTolerance);
}

TEST(QrWorkspace, FactorTransposedMatchesMaterializedTranspose) {
  Rng rng(111);
  QrWorkspace ws;
  Vector x;
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t m = 4 + static_cast<std::size_t>(trial % 5);
    const std::size_t k = 2 + static_cast<std::size_t>((trial * 3) % 7);
    const Matrix b = random_matrix(m, k, rng);
    // A random row subset, unsorted order on odd trials.
    std::vector<std::size_t> rows;
    for (std::size_t w = 0; w < m; ++w)
      if (rng.uniform(0.0, 1.0) < 0.7) rows.push_back(w);
    if (rows.empty()) rows.push_back(trial % m);
    if (trial % 2 == 1) std::swap(rows.front(), rows.back());

    const Vector ones(k, 1.0);
    ws.factor_transposed(RowSelectView(b, rows));
    const double residual = ws.solve_into(ones, x);
    const auto ref = least_squares(b.select_rows(rows).transposed(), ones);
    EXPECT_EQ(ws.rank(), ref.rank) << "trial " << trial;
    EXPECT_NEAR(residual, ref.residual, kMatchTolerance);
    for (std::size_t i = 0; i < rows.size(); ++i)
      EXPECT_NEAR(x[i], ref.x[i], kMatchTolerance) << "trial " << trial;
  }
}

TEST(RowSelectView, RejectsOutOfRangeRows) {
  const Matrix b(3, 2);
  const std::vector<std::size_t> bad{1, 3};
  EXPECT_THROW(RowSelectView(b, bad), std::invalid_argument);
}

TEST(NullSpace, IntoVariantMatchesAllocating) {
  Rng rng(112);
  Matrix rref, basis;
  std::vector<std::size_t> pivots;
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t rows = 1 + static_cast<std::size_t>(trial % 4);
    const std::size_t cols = rows + static_cast<std::size_t>(trial % 3);
    const Matrix a = random_matrix(rows, cols, rng);
    null_space_basis_into(a, rref, pivots, basis);
    const Matrix ref = null_space_basis(a);
    ASSERT_EQ(basis.rows(), ref.rows());
    ASSERT_EQ(basis.cols(), ref.cols());
    EXPECT_NEAR(Matrix::max_abs_diff(basis, ref), 0.0, kMatchTolerance);
  }
}

// ------------------------------------------- decode-path equivalences --

TEST(Robustness, WorkspaceOverloadsAgreeOnRealScheme) {
  Rng rng(113);
  const CyclicScheme scheme(8, 2, rng);
  const Matrix& b = scheme.coding_matrix();
  SolveWorkspace ws;
  EXPECT_EQ(satisfies_condition1(b, 2),
            satisfies_condition1(b, 2, 1e-8, &ws));
  EXPECT_TRUE(satisfies_condition1(b, 2, 1e-8, &ws));
  // A matrix that is NOT robust must agree too.
  Matrix broken = b;
  for (std::size_t j = 0; j < broken.cols(); ++j) {
    broken(0, j) = 0.0;
    broken(1, j) = 0.0;
    broken(2, j) = 0.0;
  }
  EXPECT_EQ(satisfies_condition1(broken, 2),
            satisfies_condition1(broken, 2, 1e-8, &ws));

  std::vector<std::size_t> some_rows{0, 2, 3, 5, 6, 7};
  EXPECT_EQ(ones_in_row_span(b, some_rows, 1e-8),
            ones_in_row_span(b, some_rows, 1e-8, ws));
}

TEST(Robustness, Condition1ZeroAllocationsAfterWarmup) {
  Rng rng(114);
  const CyclicScheme scheme(8, 2, rng);
  const Matrix& b = scheme.coding_matrix();
  SolveWorkspace ws;
  // Warm-up sizes every buffer in the workspace (C(8,2) = 28 solves).
  ASSERT_TRUE(satisfies_condition1(b, 2, 1e-8, &ws));

  const std::size_t before = allocation_count();
  const bool ok = satisfies_condition1(b, 2, 1e-8, &ws);
  const std::size_t after = allocation_count();
  EXPECT_TRUE(ok);
  EXPECT_EQ(after - before, 0u)
      << "satisfies_condition1 allocated on a warmed-up workspace";
}

TEST(Robustness, WorkspaceSolvesAreHistoryIndependent) {
  // A workspace that just solved a big shape must give bit-identical
  // results on a small one (full state reset per factor) — this is what
  // lets the sweep share one workspace per thread without perturbing the
  // byte-identical-output contract.
  Rng rng(115);
  const Matrix big = random_matrix(12, 7, rng);
  const Matrix small = random_matrix(3, 2, rng);
  const Vector b_big = random_vector(12, rng);
  const Vector b_small = random_vector(3, rng);

  QrWorkspace fresh;
  Vector x_fresh;
  least_squares_into(small, b_small, fresh, x_fresh);

  QrWorkspace used;
  Vector x_used;
  least_squares_into(big, b_big, used, x_used);
  least_squares_into(small, b_small, used, x_used);

  ASSERT_EQ(x_used.size(), x_fresh.size());
  for (std::size_t i = 0; i < x_fresh.size(); ++i)
    EXPECT_EQ(x_used[i], x_fresh[i]);  // bitwise
}

TEST(Robustness, ThreadLocalWorkspacesSolveConcurrently) {
  // The sweep runs satisfies_condition1 from pool threads, each hitting the
  // function's thread_local default workspace. Hammer that path from many
  // threads at once (the reason this binary carries the `threaded` ctest
  // label and runs under TSan) and require every thread to reproduce the
  // single-threaded verdicts exactly.
  Rng rng(116);
  const CyclicScheme scheme(8, 2, rng);
  const Matrix& b = scheme.coding_matrix();
  Matrix broken = b;
  for (std::size_t j = 0; j < broken.cols(); ++j)
    broken(0, j) = broken(1, j) = broken(2, j) = 0.0;

  const bool good_ref = satisfies_condition1(b, 2);
  const bool broken_ref = satisfies_condition1(broken, 2);
  ASSERT_TRUE(good_ref);
  ASSERT_FALSE(broken_ref);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&] {
      for (int iter = 0; iter < 16; ++iter) {
        if (satisfies_condition1(b, 2) != good_ref ||
            satisfies_condition1(broken, 2) != broken_ref)
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---- Cross-backend bit-identity -----------------------------------------
//
// The sweep's byte-identical-output guarantee reduces to: every kernel
// backend produces the SAME BITS as the scalar reference for the same
// inputs. These tests compare through std::bit_cast — not a tolerance —
// over randomized shapes, deliberately misaligned spans (SIMD backends use
// unaligned loads; a backend that secretly required alignment would peel
// differently and change the summation order), and every tail length
// 0..15 around the 16-element block size.

// Restores whatever backend the process had selected, so these tests can
// flip backends without perturbing the rest of the binary.
class BackendRestorer {
 public:
  BackendRestorer() : original_(kernels::active_backend()) {}
  ~BackendRestorer() { kernels::set_backend(original_); }

 private:
  kernels::Backend original_;
};

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

std::vector<kernels::Backend> available_simd_backends() {
  std::vector<kernels::Backend> simd;
  for (kernels::Backend b :
       {kernels::Backend::kAvx2, kernels::Backend::kNeon})
    if (kernels::backend_available(b)) simd.push_back(b);
  return simd;
}

std::vector<double> random_buffer(std::size_t n, Rng& rng) {
  std::vector<double> buf(n);
  for (double& v : buf) v = rng.normal();
  return buf;
}

TEST(KernelBackends, VectorKernelsBitIdenticalToScalar) {
  const std::vector<kernels::Backend> simd = available_simd_backends();
  if (simd.empty()) GTEST_SKIP() << "no SIMD backend available on this host";
  BackendRestorer restore;
  Rng rng(20260807);

  // Every tail length 0..15 (sizes < 16 are all tail), plus bodies with
  // every tail on top, plus a couple of odd mid sizes.
  std::vector<std::size_t> lengths;
  for (std::size_t t = 0; t < 16; ++t) {
    lengths.push_back(t);
    lengths.push_back(128 + t);
  }
  lengths.push_back(33);
  lengths.push_back(95);

  for (kernels::Backend backend : simd) {
    for (std::size_t n : lengths) {
      for (std::size_t offset : {std::size_t{0}, std::size_t{1},
                                 std::size_t{3}}) {
        const std::vector<double> xa = random_buffer(offset + n, rng);
        const std::vector<double> xb = random_buffer(offset + n, rng);
        const std::vector<double> y0 = random_buffer(offset + n, rng);
        const double alpha = rng.normal();
        const std::span<const double> a =
            std::span<const double>(xa).subspan(offset);
        const std::span<const double> b =
            std::span<const double>(xb).subspan(offset);

        const std::vector<double> x4a = random_buffer(n, rng);
        const std::vector<double> x4b = random_buffer(n, rng);
        const double alpha4[4] = {rng.normal(), rng.normal(), rng.normal(),
                                  rng.normal()};
        const double* const x4[4] = {a.data(), x4a.data(), b.data(),
                                     x4b.data()};

        ASSERT_TRUE(kernels::set_backend(kernels::Backend::kScalar));
        const double dot_ref = kernels::dot(a, b);
        std::vector<double> axpy_ref = y0;
        kernels::axpy(alpha, a, std::span<double>(axpy_ref).subspan(offset));
        std::vector<double> scal_ref = y0;
        kernels::scal(alpha, std::span<double>(scal_ref).subspan(offset));
        std::vector<double> axpy4_ref = y0;
        kernels::axpy4(alpha4, x4,
                       std::span<double>(axpy4_ref).subspan(offset));

        ASSERT_TRUE(kernels::set_backend(backend));
        const double dot_simd = kernels::dot(a, b);
        std::vector<double> axpy_simd = y0;
        kernels::axpy(alpha, a,
                      std::span<double>(axpy_simd).subspan(offset));
        std::vector<double> scal_simd = y0;
        kernels::scal(alpha, std::span<double>(scal_simd).subspan(offset));
        std::vector<double> axpy4_simd = y0;
        kernels::axpy4(alpha4, x4,
                       std::span<double>(axpy4_simd).subspan(offset));

        const std::string where = std::string(kernels::backend_name(backend)) +
                                  " n=" + std::to_string(n) +
                                  " offset=" + std::to_string(offset);
        EXPECT_EQ(bits(dot_ref), bits(dot_simd)) << "dot " << where;
        for (std::size_t i = 0; i < axpy_ref.size(); ++i) {
          ASSERT_EQ(bits(axpy_ref[i]), bits(axpy_simd[i]))
              << "axpy[" << i << "] " << where;
          ASSERT_EQ(bits(scal_ref[i]), bits(scal_simd[i]))
              << "scal[" << i << "] " << where;
          ASSERT_EQ(bits(axpy4_ref[i]), bits(axpy4_simd[i]))
              << "axpy4[" << i << "] " << where;
        }
      }
    }
  }
}

TEST(KernelBackends, MatrixKernelsBitIdenticalToScalar) {
  const std::vector<kernels::Backend> simd = available_simd_backends();
  if (simd.empty()) GTEST_SKIP() << "no SIMD backend available on this host";
  BackendRestorer restore;
  Rng rng(977);

  struct Shape {
    std::size_t rows, cols, pad;  // lda = cols + pad exercises sub-blocks
  };
  const Shape shapes[] = {{1, 1, 0},  {2, 3, 0},  {3, 17, 2}, {5, 16, 0},
                          {7, 35, 3}, {8, 69, 1}, {58, 116, 0}};

  for (kernels::Backend backend : simd) {
    for (const Shape& s : shapes) {
      const std::size_t lda = s.cols + s.pad;
      const std::vector<double> a0 = random_buffer(s.rows * lda, rng);
      const std::vector<double> x_rows = random_buffer(s.rows, rng);
      const std::vector<double> x_cols = random_buffer(s.cols, rng);
      const double alpha = rng.normal();

      ASSERT_TRUE(kernels::set_backend(kernels::Backend::kScalar));
      std::vector<double> gemv_ref(s.rows);
      kernels::gemv(a0.data(), lda, s.rows, s.cols, x_cols, gemv_ref);
      std::vector<double> gemv_t_ref(s.cols);
      kernels::gemv_t(a0.data(), lda, s.rows, s.cols, x_rows, gemv_t_ref);
      std::vector<double> rank1_ref = a0;
      kernels::rank1_update(rank1_ref.data(), lda, s.rows, s.cols, alpha,
                            x_rows, x_cols);

      ASSERT_TRUE(kernels::set_backend(backend));
      std::vector<double> gemv_simd(s.rows);
      kernels::gemv(a0.data(), lda, s.rows, s.cols, x_cols, gemv_simd);
      std::vector<double> gemv_t_simd(s.cols);
      kernels::gemv_t(a0.data(), lda, s.rows, s.cols, x_rows, gemv_t_simd);
      std::vector<double> rank1_simd = a0;
      kernels::rank1_update(rank1_simd.data(), lda, s.rows, s.cols, alpha,
                            x_rows, x_cols);

      const std::string where = std::string(kernels::backend_name(backend)) +
                                " rows=" + std::to_string(s.rows) +
                                " cols=" + std::to_string(s.cols) +
                                " lda=" + std::to_string(lda);
      for (std::size_t r = 0; r < s.rows; ++r)
        ASSERT_EQ(bits(gemv_ref[r]), bits(gemv_simd[r]))
            << "gemv[" << r << "] " << where;
      for (std::size_t c = 0; c < s.cols; ++c)
        ASSERT_EQ(bits(gemv_t_ref[c]), bits(gemv_t_simd[c]))
            << "gemv_t[" << c << "] " << where;
      for (std::size_t i = 0; i < rank1_ref.size(); ++i)
        ASSERT_EQ(bits(rank1_ref[i]), bits(rank1_simd[i]))
            << "rank1[" << i << "] " << where;
    }
  }
}

TEST(KernelBackends, Axpy4MatchesFourSequentialAxpys) {
  // axpy4's contract: bit-identical to four sequential axpys, in every
  // backend (the blocked LU's determinism proof leans on this).
  BackendRestorer restore;
  Rng rng(4242);
  std::vector<kernels::Backend> backends = {kernels::Backend::kScalar};
  for (kernels::Backend b : available_simd_backends()) backends.push_back(b);
  for (kernels::Backend backend : backends) {
    ASSERT_TRUE(kernels::set_backend(backend));
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          std::size_t{96}, std::size_t{101}}) {
      const std::vector<double> x0 = random_buffer(n, rng);
      const std::vector<double> x1 = random_buffer(n, rng);
      const std::vector<double> x2 = random_buffer(n, rng);
      const std::vector<double> x3 = random_buffer(n, rng);
      const std::vector<double> y0 = random_buffer(n, rng);
      const double alpha[4] = {rng.normal(), rng.normal(), rng.normal(),
                               rng.normal()};
      const double* const x[4] = {x0.data(), x1.data(), x2.data(),
                                  x3.data()};
      std::vector<double> fused = y0;
      kernels::axpy4(alpha, x, fused);
      std::vector<double> sequential = y0;
      kernels::axpy(alpha[0], x0, sequential);
      kernels::axpy(alpha[1], x1, sequential);
      kernels::axpy(alpha[2], x2, sequential);
      kernels::axpy(alpha[3], x3, sequential);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(bits(fused[i]), bits(sequential[i]))
            << kernels::backend_name(backend) << " n=" << n << " i=" << i;
    }
  }
}

TEST(KernelBackends, NamesParseAndAvailabilityAgree) {
  BackendRestorer restore;
  // scalar is always present; names round-trip through the parser.
  EXPECT_TRUE(kernels::backend_available(kernels::Backend::kScalar));
  for (kernels::Backend b : {kernels::Backend::kScalar,
                             kernels::Backend::kAvx2,
                             kernels::Backend::kNeon}) {
    const auto parsed = kernels::parse_backend(kernels::backend_name(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
    // set_backend succeeds exactly when the backend is available.
    EXPECT_EQ(kernels::set_backend(b), kernels::backend_available(b));
  }
  EXPECT_FALSE(kernels::parse_backend("sse2").has_value());
  EXPECT_FALSE(kernels::parse_backend("").has_value());
  EXPECT_FALSE(kernels::parse_backend("AVX2").has_value());
}

}  // namespace
}  // namespace hgc
