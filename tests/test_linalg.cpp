// Unit and property tests for src/linalg: Matrix, LU, QR, null space.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/nullspace.hpp"
#include "linalg/qr.hpp"
#include "util/rng.hpp"

namespace hgc {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal();
  return m;
}

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  m(1, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndOnes) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i3(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
  const Matrix ones = Matrix::ones(2, 3);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(ones(r, c), 1.0);
}

TEST(Matrix, MultiplyMatchesHandComputed) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix ab = a * b;
  EXPECT_DOUBLE_EQ(ab(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(ab(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(ab(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(ab(1, 1), 50.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  const Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrip) {
  Rng rng(1);
  const Matrix a = random_matrix(4, 7, rng);
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a.transposed().transposed(), a), 0.0);
}

TEST(Matrix, ApplyAndApplyTranspose) {
  const Matrix a{{1.0, 0.0, 2.0}, {0.0, 3.0, 0.0}};
  const Vector x{1.0, 1.0, 1.0};
  const Vector ax = a.apply(x);
  EXPECT_EQ(ax, (Vector{3.0, 3.0}));
  const Vector y{1.0, 2.0};
  const Vector yta = a.apply_transpose(y);
  EXPECT_EQ(yta, (Vector{1.0, 6.0, 2.0}));
}

TEST(Matrix, SelectRowsAndCols) {
  const Matrix a{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const std::vector<std::size_t> rows = {2, 0};
  const Matrix sel = a.select_rows(rows);
  EXPECT_DOUBLE_EQ(sel(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(sel(1, 2), 3.0);
  const std::vector<std::size_t> cols = {1};
  const Matrix selc = a.select_cols(cols);
  EXPECT_EQ(selc.cols(), 1u);
  EXPECT_DOUBLE_EQ(selc(2, 0), 8.0);
}

TEST(Matrix, ArithmeticOperators) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{4, 3}, {2, 1}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
  const Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(diff(1, 1), 3.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
}

TEST(VectorOps, DotNormAxpy) {
  const Vector a{1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 9.0);
  EXPECT_DOUBLE_EQ(norm2(a), 3.0);
  Vector y{1.0, 1.0, 1.0};
  axpy(2.0, a, y);
  EXPECT_EQ(y, (Vector{3.0, 5.0, 5.0}));
  EXPECT_DOUBLE_EQ(max_abs(Vector{-4.0, 2.0}), 4.0);
}

TEST(Lu, SolvesKnownSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector b{3.0, 5.0};
  const Vector x = lu_solve(a, b);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, DeterminantAndInverse) {
  const Matrix a{{4.0, 7.0}, {2.0, 6.0}};
  LuDecomposition lu(a);
  EXPECT_NEAR(lu.determinant(), 10.0, 1e-12);
  const Matrix inv = lu.inverse();
  EXPECT_NEAR(Matrix::max_abs_diff(a * inv, Matrix::identity(2)), 0.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  LuDecomposition lu(a);
  EXPECT_TRUE(lu.is_singular());
  EXPECT_DOUBLE_EQ(lu.determinant(), 0.0);
  EXPECT_THROW(lu.solve(Vector{1.0, 1.0}), InternalError);
}

TEST(Lu, RejectsNonSquare) {
  EXPECT_THROW(LuDecomposition(Matrix(2, 3)), std::invalid_argument);
}

TEST(Lu, RandomSystemsResidual) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(trial % 8);
    const Matrix a = random_matrix(n, n, rng);
    Vector b(n);
    for (double& v : b) v = rng.normal();
    const Vector x = lu_solve(a, b);
    const Vector ax = a.apply(x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
  }
}

TEST(Lu, PermutationHeavySystem) {
  // Zero pivots on the diagonal force row exchanges.
  const Matrix a{{0.0, 1.0, 0.0}, {0.0, 0.0, 2.0}, {3.0, 0.0, 0.0}};
  const Vector b{1.0, 2.0, 3.0};
  const Vector x = lu_solve(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[2], 1.0, 1e-12);
}

TEST(Qr, LeastSquaresOverdetermined) {
  // Fit y = 2x + 1 through exact points: residual 0, exact coefficients.
  Matrix a(4, 2);
  Vector b(4);
  for (std::size_t i = 0; i < 4; ++i) {
    const double x = static_cast<double>(i);
    a(i, 0) = x;
    a(i, 1) = 1.0;
    b[i] = 2.0 * x + 1.0;
  }
  const auto ls = least_squares(a, b);
  EXPECT_EQ(ls.rank, 2u);
  EXPECT_NEAR(ls.x[0], 2.0, 1e-10);
  EXPECT_NEAR(ls.x[1], 1.0, 1e-10);
  EXPECT_NEAR(ls.residual, 0.0, 1e-10);
}

TEST(Qr, LeastSquaresInconsistentHasResidual) {
  const Matrix a{{1.0}, {1.0}};
  const Vector b{0.0, 2.0};
  const auto ls = least_squares(a, b);
  EXPECT_NEAR(ls.x[0], 1.0, 1e-10);
  EXPECT_NEAR(ls.residual, std::sqrt(2.0), 1e-10);
}

TEST(Qr, RankDetection) {
  Matrix a(4, 3);
  // Column 2 = column 0 + column 1 -> rank 2.
  Rng rng(3);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = rng.normal();
    a(i, 1) = rng.normal();
    a(i, 2) = a(i, 0) + a(i, 1);
  }
  EXPECT_EQ(matrix_rank(a), 2u);
  EXPECT_EQ(matrix_rank(Matrix::identity(5)), 5u);
  EXPECT_EQ(matrix_rank(Matrix(3, 3)), 0u);
}

TEST(Qr, UnderdeterminedBasicSolution) {
  // One equation, two unknowns: x + y = 2. Basic solution sets the free
  // variable to zero and must satisfy the equation.
  const Matrix a{{1.0, 1.0}};
  const Vector b{2.0};
  const auto ls = least_squares(a, b);
  EXPECT_EQ(ls.rank, 1u);
  EXPECT_NEAR(ls.x[0] + ls.x[1], 2.0, 1e-10);
  EXPECT_NEAR(ls.residual, 0.0, 1e-10);
}

TEST(Qr, RandomConsistentSystems) {
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t m = 3 + static_cast<std::size_t>(trial % 5);
    const std::size_t n = 2 + static_cast<std::size_t>(trial % 3);
    const Matrix a = random_matrix(m, n, rng);
    Vector x_true(n);
    for (double& v : x_true) v = rng.normal();
    const Vector b = a.apply(x_true);
    const auto ls = least_squares(a, b);
    EXPECT_NEAR(ls.residual, 0.0, 1e-8) << "trial " << trial;
  }
}

TEST(NullSpace, KnownKernel) {
  // a = [1 1 0; 0 0 1]: kernel spanned by (1, -1, 0).
  const Matrix a{{1.0, 1.0, 0.0}, {0.0, 0.0, 1.0}};
  const Matrix basis = null_space_basis(a);
  ASSERT_EQ(basis.cols(), 1u);
  const Vector v = basis.col(0);
  const Vector av = a.apply(v);
  EXPECT_NEAR(norm2(av), 0.0, 1e-10);
  EXPECT_GT(norm2(v), 0.0);
}

TEST(NullSpace, FullRankHasTrivialKernel) {
  EXPECT_EQ(null_space_basis(Matrix::identity(4)).cols(), 0u);
  EXPECT_TRUE(null_space_vector(Matrix::identity(4)).empty());
}

TEST(NullSpace, DimensionMatchesRankNullity) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t rows = 2 + static_cast<std::size_t>(trial % 4);
    const std::size_t cols = rows + 1 + static_cast<std::size_t>(trial % 3);
    const Matrix a = random_matrix(rows, cols, rng);  // full row rank w.p. 1
    const Matrix basis = null_space_basis(a);
    EXPECT_EQ(basis.cols(), cols - rows);
    // Every basis vector annihilates a.
    for (std::size_t c = 0; c < basis.cols(); ++c)
      EXPECT_NEAR(norm2(a.apply(basis.col(c))), 0.0, 1e-8);
  }
}

TEST(NullSpace, RrefPivots) {
  Matrix a{{0.0, 2.0, 4.0}, {1.0, 1.0, 1.0}};
  const auto pivots = reduce_to_rref(a);
  EXPECT_EQ(pivots, (std::vector<std::size_t>{0, 1}));
  // RREF: leading ones with zeros above/below.
  EXPECT_DOUBLE_EQ(a(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 0.0);
}

}  // namespace
}  // namespace hgc
