// Tests for Algorithm 1: the CB = 1 identity (Lemma 2), decoding-vector
// construction, and behavior on edge cases.
#include <gtest/gtest.h>

#include "core/alg1.hpp"
#include "core/allocation.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace hgc {
namespace {

Assignment example1_assignment() {
  return cyclic_assignment(std::vector<std::size_t>{1, 2, 3, 4, 4}, 7);
}

// a·B through the sparse kernel (B is CSR since the sparse refactor).
Vector apply_transpose(const SparseRowMatrix& b, const Vector& a) {
  Vector y(b.cols());
  sparse::gemv_t(b, a, y);
  return y;
}

TEST(Alg1, CbEqualsOnes) {
  Rng rng(11);
  const auto build = build_alg1(example1_assignment(), 7, 1, rng);
  const Matrix cb = build.code.c() * build.b.to_dense();
  EXPECT_LT(Matrix::max_abs_diff(cb, Matrix::ones(2, 7)), 1e-9);
}

TEST(Alg1, SupportMatchesAssignment) {
  Rng rng(12);
  const Assignment assignment = example1_assignment();
  const auto build = build_alg1(assignment, 7, 1, rng);
  for (std::size_t w = 0; w < assignment.size(); ++w) {
    const auto cols = build.b.row_cols(w);
    const std::vector<PartitionId> support(cols.begin(), cols.end());
    EXPECT_EQ(support, assignment[w]) << "worker " << w;
  }
}

TEST(Alg1, RejectsInvalidAllocation) {
  Rng rng(13);
  const Assignment bad = {{0}, {0}, {1}};  // partition 1 has 1 copy, 0 has 2
  EXPECT_THROW(build_alg1(bad, 2, 1, rng), std::invalid_argument);
}

TEST(Alg1, DecodeEveryStragglerSingleton) {
  Rng rng(14);
  const auto build = build_alg1(example1_assignment(), 7, 1, rng);
  const std::size_t m = 5;
  for (std::size_t straggler = 0; straggler < m; ++straggler) {
    std::vector<bool> received(m, true);
    received[straggler] = false;
    const auto a = build.code.decode(received, m);
    ASSERT_TRUE(a.has_value()) << "straggler " << straggler;
    EXPECT_DOUBLE_EQ((*a)[straggler], 0.0);
    // a·B = 1.
    const Vector ab = apply_transpose(build.b, *a);
    for (double v : ab) EXPECT_NEAR(v, 1.0, 1e-9);
  }
}

TEST(Alg1, DecodeWithNoStragglers) {
  Rng rng(15);
  const auto build = build_alg1(example1_assignment(), 7, 1, rng);
  const std::vector<bool> received(5, true);
  const auto a = build.code.decode(received, 5);
  ASSERT_TRUE(a.has_value());
  const Vector ab = apply_transpose(build.b, *a);
  for (double v : ab) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(Alg1, DecodeFailsBeyondTolerance) {
  Rng rng(16);
  const auto build = build_alg1(example1_assignment(), 7, 1, rng);
  std::vector<bool> received(5, true);
  received[3] = false;
  received[4] = false;  // two stragglers, s = 1
  EXPECT_FALSE(build.code.decode(received, 5).has_value());
}

TEST(Alg1, IdleWorkersGetZeroRowsAndStayOutOfDecoding) {
  Rng rng(17);
  // Worker 1 holds nothing; partitions replicated twice across 0, 2, 3.
  const Assignment assignment = {{0, 1}, {}, {0}, {1}};
  const auto build = build_alg1(assignment, 2, 1, rng);
  EXPECT_EQ(build.b.row_nnz(1), 0u);
  for (std::size_t j = 0; j < 2; ++j) EXPECT_DOUBLE_EQ(build.b.at(1, j), 0.0);
  EXPECT_EQ(build.code.workers(), (std::vector<WorkerId>{0, 2, 3}));
  // Decoding ignores worker 1's received flag entirely.
  std::vector<bool> received = {true, false, true, true};
  const auto a = build.code.decode(received, 4);
  ASSERT_TRUE(a.has_value());
  EXPECT_DOUBLE_EQ((*a)[1], 0.0);
}

TEST(Alg1, RequiresMoreActiveWorkersThanS) {
  Rng rng(18);
  // Only 2 active workers but s = 1 means each partition needs 2 copies on
  // distinct workers — fine; s = 2 would need 3 active workers.
  const Assignment assignment = {{0}, {0}, {}};
  EXPECT_NO_THROW(build_alg1(assignment, 1, 1, rng));
  const Assignment impossible = {{0}, {0}, {0}};
  // 3 copies, s=2, 3 active workers: active > s fails (3 > 2 holds), so this
  // one actually builds.
  EXPECT_NO_THROW(build_alg1(impossible, 1, 2, rng));
}

TEST(Alg1Code, EmptyCodeDecodesNothing) {
  const Alg1Code empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.decode(std::vector<bool>(3, true), 3).has_value());
}

// Property sweep: random heterogeneous allocations, every straggler pattern
// of size <= s decodes to exact coefficients.
struct Alg1Case {
  std::size_t m, s, k;
};

class Alg1Sweep : public ::testing::TestWithParam<Alg1Case> {};

TEST_P(Alg1Sweep, AllPatternsDecodeExactly) {
  const auto [m, s, k] = GetParam();
  Rng rng(1000 + m * 37 + s * 7 + k);
  Throughputs c(m);
  for (double& x : c) x = rng.uniform(1.0, 8.0);
  const auto assignment = cyclic_assignment(heter_aware_counts(c, k, s), k);
  const auto build = build_alg1(assignment, k, s, rng);

  // Enumerate straggler subsets of size exactly s via bitmask (m small).
  for (std::size_t mask = 0; mask < (std::size_t{1} << m); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcountll(mask)) > s) continue;
    std::vector<bool> received(m);
    for (std::size_t w = 0; w < m; ++w) received[w] = !(mask >> w & 1);
    const auto a = build.code.decode(received, m);
    ASSERT_TRUE(a.has_value()) << "mask " << mask;
    const Vector ab = apply_transpose(build.b, *a);
    for (double v : ab) EXPECT_NEAR(v, 1.0, 1e-7) << "mask " << mask;
    for (std::size_t w = 0; w < m; ++w) {
      if (mask >> w & 1) {
        EXPECT_DOUBLE_EQ((*a)[w], 0.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Alg1Sweep,
    ::testing::Values(Alg1Case{4, 1, 4}, Alg1Case{5, 1, 7}, Alg1Case{5, 2, 5},
                      Alg1Case{6, 1, 12}, Alg1Case{6, 2, 9}, Alg1Case{7, 3, 7},
                      Alg1Case{8, 2, 8}, Alg1Case{9, 1, 18},
                      Alg1Case{10, 2, 10}),
    [](const auto& test_info) {
      return "m" + std::to_string(test_info.param.m) + "_s" +
             std::to_string(test_info.param.s) + "_k" + std::to_string(test_info.param.k);
    });

}  // namespace
}  // namespace hgc
