// Tests for non-IID data tooling and the trainers' behaviour under skewed
// shards: BSP coded schemes stay exact, SSP and ignore-stragglers degrade —
// the statistical-efficiency argument behind Fig. 4.
#include <gtest/gtest.h>

#include "runtime/sim_trainer.hpp"
#include "runtime/ssp_trainer.hpp"

namespace hgc {
namespace {

Dataset make_data(std::uint64_t seed = 77, std::size_t n = 120) {
  Rng rng(seed);
  return make_gaussian_classification(n, 6, 4, 2.5, rng);
}

TEST(SortByLabel, GroupsRowsAndPreservesContent) {
  const Dataset data = make_data();
  const Dataset sorted = sort_by_label(data);
  ASSERT_EQ(sorted.size(), data.size());
  for (std::size_t i = 1; i < sorted.size(); ++i)
    EXPECT_LE(sorted.labels[i - 1], sorted.labels[i]);
  // Same label multiset.
  auto histogram = [](const Dataset& d) {
    std::vector<std::size_t> h(d.num_classes, 0);
    for (int l : d.labels) ++h[static_cast<std::size_t>(l)];
    return h;
  };
  EXPECT_EQ(histogram(sorted), histogram(data));
}

TEST(SortByLabel, ContiguousShardsBecomeClassPure) {
  const Dataset sorted = sort_by_label(make_data(77, 120));
  const auto shards = partition_rows(sorted.size(), 4);
  // 120 rows, 4 balanced classes, 4 shards: each shard is one class.
  for (const auto& shard : shards) {
    const auto h = label_histogram(sorted, shard);
    std::size_t nonzero = 0;
    for (std::size_t count : h) nonzero += count > 0 ? 1 : 0;
    EXPECT_EQ(nonzero, 1u);
  }
}

TEST(DirichletPartition, CoversEveryRowOnce) {
  const Dataset data = make_data();
  Rng rng(31);
  const auto parts = dirichlet_partition_rows(data, 6, 0.3, rng);
  ASSERT_EQ(parts.size(), 6u);
  std::vector<bool> seen(data.size(), false);
  for (const auto& part : parts) {
    EXPECT_FALSE(part.empty());
    for (std::size_t row : part) {
      EXPECT_FALSE(seen[row]);
      seen[row] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(DirichletPartition, SmallAlphaIsMoreSkewedThanLarge) {
  const Dataset data = make_data(78, 400);
  auto skew = [&](double alpha, std::uint64_t seed) {
    Rng rng(seed);
    const auto parts = dirichlet_partition_rows(data, 8, alpha, rng);
    // Mean over partitions of (max class share).
    double total = 0.0;
    for (const auto& part : parts) {
      const auto h = label_histogram(data, part);
      const double peak = static_cast<double>(
          *std::max_element(h.begin(), h.end()));
      total += peak / static_cast<double>(part.size());
    }
    return total / static_cast<double>(parts.size());
  };
  // Average over several seeds to keep the comparison stable.
  double skew_low = 0.0, skew_high = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    skew_low += skew(0.1, seed);
    skew_high += skew(100.0, seed);
  }
  EXPECT_GT(skew_low, skew_high + 0.1);
}

TEST(DirichletPartition, RejectsBadArgs) {
  const Dataset data = make_data();
  Rng rng(32);
  EXPECT_THROW(dirichlet_partition_rows(data, 0, 1.0, rng),
               std::invalid_argument);
  EXPECT_THROW(dirichlet_partition_rows(data, 4, 0.0, rng),
               std::invalid_argument);
}

TEST(IgnoreStragglers, FasterButBiasedOnNonIidData) {
  // On label-sorted data, dropping the slowest workers drops whole classes:
  // the coded scheme must reach a visibly lower loss for the same iteration
  // count, while ignore-stragglers finishes its iterations faster.
  const Cluster cluster = cluster_a();
  const Dataset data = sort_by_label(make_data(79, 160));
  SoftmaxRegression model(6, 4);
  BspTrainingConfig config;
  config.iterations = 60;
  config.sgd.learning_rate = 0.4;

  const auto coded = train_bsp_coded(SchemeKind::kHeterAware, cluster, model,
                                     data, 24, 1, config);
  const auto naive = train_bsp_coded(SchemeKind::kNaive, cluster, model,
                                     data, 24, 1, config);
  // Budget 2 drops both 2-vCPU twins (dropping only one leaves its equally
  // slow sibling gating the barrier).
  const auto ignore =
      train_bsp_ignore_stragglers(cluster, model, data, 2, config);

  EXPECT_EQ(ignore.failed_iterations, 0u);
  // Against its like-for-like uniform baseline (naive), dropping the
  // slowest shards is faster...
  EXPECT_LT(ignore.trace.total_time(), naive.trace.total_time());
  // ...but pays in accuracy: the always-dropped slow workers' classes are
  // systematically under-served (the approximation cost of [35]/[36]),
  // while the coded run computes the exact gradient every iteration.
  EXPECT_LT(coded.trace.final_loss(), ignore.trace.final_loss());
}

TEST(IgnoreStragglers, FailsOnlyBeyondBudget) {
  const Cluster cluster = cluster_a();
  const Dataset data = make_data();
  SoftmaxRegression model(6, 4);
  BspTrainingConfig config;
  config.iterations = 5;
  config.straggler_model.num_stragglers = 2;
  config.straggler_model.fault = true;
  // Budget s = 2 matches the faults: never fails.
  const auto ok =
      train_bsp_ignore_stragglers(cluster, model, data, 2, config);
  EXPECT_EQ(ok.failed_iterations, 0u);
  // Budget s = 1 < 2 faults: fails immediately.
  const auto bad =
      train_bsp_ignore_stragglers(cluster, model, data, 1, config);
  EXPECT_EQ(bad.failed_iterations, 1u);
}

TEST(SspNonIid, SkewedShardsHurtConvergence) {
  // Same work budget, same cluster: SSP on class-pure shards converges
  // worse than SSP on IID shards (unbalanced contributions now carry bias).
  const Cluster cluster = cluster_a();
  const Dataset iid = make_data(80, 160);
  const Dataset sorted = sort_by_label(iid);
  SoftmaxRegression model(6, 4);

  SspTrainingConfig config;
  config.iterations = 40;
  config.learning_rate = 0.4;
  config.staleness = 2;

  const auto on_iid = train_ssp(cluster, model, iid, config);
  const auto on_sorted = train_ssp(cluster, model, sorted, config);
  EXPECT_GT(on_sorted.trace.final_loss(),
            on_iid.trace.final_loss() - 1e-9);
}

TEST(SspNonIid, CustomShardsValidated) {
  const Cluster cluster = cluster_a();
  const Dataset data = make_data();
  SoftmaxRegression model(6, 4);
  SspTrainingConfig config;
  config.iterations = 2;
  config.shards.assign(3, {0});  // wrong count (m = 8)
  EXPECT_THROW(train_ssp(cluster, model, data, config),
               std::invalid_argument);
  config.shards.assign(8, {0});
  config.shards[4].clear();  // empty shard
  EXPECT_THROW(train_ssp(cluster, model, data, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace hgc
