// Randomized cross-component properties ("fuzz" sweeps): arrival-order
// invariance of the streaming decoder, monotonicity of decodability, cache
// vs direct agreement, and wire-format round-trips under random payloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/decoder.hpp"
#include "core/decoding_cache.hpp"
#include "core/robustness.hpp"
#include "core/scheme_factory.hpp"
#include "net/wire.hpp"
#include "util/rng.hpp"

namespace hgc {
namespace {

struct FuzzCase {
  SchemeKind kind;
  std::size_t m, s;
};

std::string fuzz_name(const ::testing::TestParamInfo<FuzzCase>& info) {
  std::string name = to_string(info.param.kind);
  for (char& ch : name)
    if (ch == '-') ch = '_';
  return name + "_m" + std::to_string(info.param.m) + "_s" +
         std::to_string(info.param.s);
}

class DecoderFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(DecoderFuzz, ArrivalOrderNeverChangesTheAggregate) {
  const auto [kind, m, s] = GetParam();
  Rng rng(3000 + m * 7 + s);
  Throughputs c(m);
  for (double& x : c) x = rng.uniform(1.0, 8.0);
  const auto scheme = make_scheme(kind, c, 2 * m, s, rng);
  const std::size_t k = scheme->num_partitions();

  // Random per-partition gradients of dimension 5.
  std::vector<Vector> grads(k);
  Vector expected(5, 0.0);
  for (auto& g : grads) {
    g.resize(5);
    for (double& v : g) v = rng.normal();
    axpy(1.0, g, expected);
  }
  std::vector<Vector> coded(m);
  std::vector<WorkerId> senders;
  for (WorkerId w = 0; w < m; ++w) {
    if (scheme->load(w) == 0) continue;
    coded[w] = encode_gradient(*scheme, w, grads);
    senders.push_back(w);
  }

  for (int trial = 0; trial < 20; ++trial) {
    auto order = senders;
    rng.shuffle(std::span<WorkerId>(order));
    StreamingDecoder decoder(*scheme);
    bool done = false;
    for (WorkerId w : order) {
      decoder.add_result(w, coded[w]);
      if (decoder.ready()) {
        done = true;
        break;
      }
    }
    ASSERT_TRUE(done) << "all results in, still undecodable";
    const Vector aggregate = decoder.aggregate();
    for (std::size_t i = 0; i < 5; ++i)
      EXPECT_NEAR(aggregate[i], expected[i], 1e-6)
          << to_string(kind) << " trial " << trial;
  }
}

TEST_P(DecoderFuzz, DecodabilityIsMonotoneInReceivedSet) {
  const auto [kind, m, s] = GetParam();
  Rng rng(4000 + m * 11 + s);
  Throughputs c(m);
  for (double& x : c) x = rng.uniform(1.0, 8.0);
  const auto scheme = make_scheme(kind, c, 2 * m, s, rng);

  for (int trial = 0; trial < 50; ++trial) {
    std::vector<bool> received(m);
    for (std::size_t w = 0; w < m; ++w) received[w] = rng.bernoulli(0.6);
    // Idle workers never respond.
    for (std::size_t w = 0; w < m; ++w)
      if (scheme->load(w) == 0) received[w] = false;
    if (!scheme->decoding_coefficients(received)) continue;
    // Adding one more result must never break decodability.
    for (std::size_t w = 0; w < m; ++w) {
      if (received[w] || scheme->load(w) == 0) continue;
      auto more = received;
      more[w] = true;
      EXPECT_TRUE(scheme->decoding_coefficients(more).has_value())
          << to_string(kind) << " adding worker " << w;
    }
  }
}

TEST_P(DecoderFuzz, CacheAgreesWithDirectDecode) {
  const auto [kind, m, s] = GetParam();
  Rng rng(5000 + m * 13 + s);
  Throughputs c(m);
  for (double& x : c) x = rng.uniform(1.0, 8.0);
  const auto scheme = make_scheme(kind, c, 2 * m, s, rng);
  DecodingCache cache(*scheme, 16);

  for (int trial = 0; trial < 100; ++trial) {
    std::vector<bool> received(m);
    for (std::size_t w = 0; w < m; ++w) received[w] = rng.bernoulli(0.7);
    const auto cached = cache.decode(received);
    const auto direct = scheme->decoding_coefficients(received);
    ASSERT_EQ(cached.has_value(), direct.has_value()) << "trial " << trial;
    if (cached) {
      EXPECT_EQ(*cached, *direct);
    }
  }
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DecoderFuzz,
    ::testing::Values(FuzzCase{SchemeKind::kCyclic, 6, 2},
                      FuzzCase{SchemeKind::kCyclic, 9, 1},
                      FuzzCase{SchemeKind::kFractionalRepetition, 8, 1},
                      FuzzCase{SchemeKind::kHeterAware, 5, 1},
                      FuzzCase{SchemeKind::kHeterAware, 8, 2},
                      FuzzCase{SchemeKind::kHeterAware, 10, 3},
                      FuzzCase{SchemeKind::kGroupBased, 5, 1},
                      FuzzCase{SchemeKind::kGroupBased, 8, 2},
                      FuzzCase{SchemeKind::kGroupBased, 10, 3}),
    fuzz_name);

TEST(WireFuzz, RandomPayloadsRoundTrip) {
  Rng rng(6000);
  for (int trial = 0; trial < 200; ++trial) {
    GradientMessage message;
    message.worker = static_cast<std::uint32_t>(rng.uniform_int(0, 1000));
    message.iteration =
        static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
    message.payload.resize(
        static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (double& v : message.payload) v = rng.normal(0.0, 1e6);
    EXPECT_EQ(decode_message(encode_message(message)), message);
  }
}

TEST(WireFuzz, RandomGarbageNeverCrashes) {
  Rng rng(7000);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::byte> garbage(
        static_cast<std::size_t>(rng.uniform_int(0, 128)));
    for (auto& b : garbage)
      b = static_cast<std::byte>(rng.uniform_int(0, 255));
    try {
      const GradientMessage message = decode_message(garbage);
      // Astronomically unlikely: random bytes passing the CRC. If it ever
      // happens the message must at least be internally consistent.
      EXPECT_EQ(garbage.size(), frame_size(message.payload.size()));
    } catch (const WireError&) {
      // expected path
    }
  }
}

TEST(RobustnessFuzz, WorstCaseTimeNeverBelowCleanTime) {
  // Stragglers can only slow an iteration down.
  Rng rng(8000);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = 4 + static_cast<std::size_t>(trial % 5);
    const std::size_t s = 1 + static_cast<std::size_t>(trial % 2);
    Throughputs c(m);
    for (double& x : c) x = rng.uniform(1.0, 8.0);
    const auto scheme = make_scheme(SchemeKind::kHeterAware, c, 2 * m, s, rng);
    const auto clean = completion_time(*scheme, c, {});
    const auto worst = worst_case_time(*scheme, c);
    ASSERT_TRUE(clean.has_value());
    ASSERT_TRUE(worst.has_value());
    EXPECT_GE(*worst, *clean - 1e-12);
  }
}

}  // namespace
}  // namespace hgc
