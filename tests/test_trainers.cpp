// Tests for the virtual-clock BSP trainer and the SSP baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "runtime/sim_trainer.hpp"
#include "runtime/ssp_trainer.hpp"

namespace hgc {
namespace {

Dataset small_data(std::uint64_t seed = 99) {
  Rng rng(seed);
  return make_gaussian_classification(64, 6, 3, 2.5, rng);
}

TEST(BspTrainer, LossDecreases) {
  const Cluster cluster = cluster_a();
  const Dataset data = small_data();
  SoftmaxRegression model(6, 3);
  BspTrainingConfig config;
  config.iterations = 40;
  config.sgd.learning_rate = 0.5;
  const auto result = train_bsp_coded(SchemeKind::kHeterAware, cluster, model,
                                      data, 24, 1, config);
  ASSERT_GE(result.trace.points.size(), 2u);
  EXPECT_LT(result.trace.final_loss(), result.trace.points.front().loss);
  EXPECT_EQ(result.failed_iterations, 0u);
}

TEST(BspTrainer, CodedTrajectoriesMatchSerialExactly) {
  // BSP exactness: with any decodable coded scheme, the parameter sequence
  // matches serial full-batch SGD up to floating-point combination error —
  // even while stragglers are being dropped every iteration.
  const Cluster cluster = cluster_a();
  const Dataset data = small_data();
  SoftmaxRegression model(6, 3);
  BspTrainingConfig config;
  config.iterations = 15;
  config.sgd.learning_rate = 0.3;
  config.straggler_model.num_stragglers = 1;
  config.straggler_model.delay_seconds = 0.5;

  const auto serial = train_serial(model, data, config);
  for (SchemeKind kind :
       {SchemeKind::kNaive, SchemeKind::kCyclic, SchemeKind::kHeterAware,
        SchemeKind::kGroupBased}) {
    BspTrainingConfig cfg = config;
    if (kind == SchemeKind::kNaive)
      cfg.straggler_model = {};  // naive cannot drop anyone
    const auto coded =
        train_bsp_coded(kind, cluster, model, data, 24, 1, cfg);
    ASSERT_EQ(coded.final_params.size(), serial.final_params.size());
    double worst = 0.0;
    for (std::size_t i = 0; i < serial.final_params.size(); ++i)
      worst = std::max(worst, std::abs(coded.final_params[i] -
                                       serial.final_params[i]));
    EXPECT_LT(worst, 1e-6) << to_string(kind);
  }
}

TEST(BspTrainer, HeterAwareClockFasterThanCyclic) {
  const Cluster cluster = cluster_a();
  const Dataset data = small_data();
  SoftmaxRegression model(6, 3);
  BspTrainingConfig config;
  config.iterations = 20;
  config.straggler_model.num_stragglers = 1;
  config.straggler_model.fault = true;
  const auto heter = train_bsp_coded(SchemeKind::kHeterAware, cluster, model,
                                     data, 24, 1, config);
  const auto cyclic = train_bsp_coded(SchemeKind::kCyclic, cluster, model,
                                      data, 24, 1, config);
  EXPECT_LT(heter.trace.total_time(), cyclic.trace.total_time());
  // Same iteration count, same loss path: heter reaches the same loss
  // sooner (the essence of Fig. 4).
  EXPECT_NEAR(heter.trace.final_loss(), cyclic.trace.final_loss(), 1e-9);
}

TEST(BspTrainer, NaiveStopsAtFirstFault) {
  const Cluster cluster = cluster_a();
  const Dataset data = small_data();
  SoftmaxRegression model(6, 3);
  BspTrainingConfig config;
  config.iterations = 10;
  config.straggler_model.num_stragglers = 1;
  config.straggler_model.fault = true;
  const auto result = train_bsp_coded(SchemeKind::kNaive, cluster, model,
                                      data, 8, 0, config);
  EXPECT_EQ(result.failed_iterations, 1u);
  EXPECT_LT(result.trace.points.back().iteration, 10u);
}

TEST(BspTrainer, RecordEveryThinsTrace) {
  const Cluster cluster = cluster_a();
  const Dataset data = small_data();
  SoftmaxRegression model(6, 3);
  BspTrainingConfig config;
  config.iterations = 20;
  config.record_every = 5;
  const auto result = train_bsp_coded(SchemeKind::kHeterAware, cluster, model,
                                      data, 24, 1, config);
  // Points at iterations 0, 5, 10, 15, 20.
  EXPECT_EQ(result.trace.points.size(), 5u);
}

TEST(BspTrainer, TimeToLossMonotoneInTarget) {
  const Cluster cluster = cluster_a();
  const Dataset data = small_data();
  SoftmaxRegression model(6, 3);
  BspTrainingConfig config;
  config.iterations = 30;
  config.sgd.learning_rate = 0.5;
  const auto result = train_bsp_coded(SchemeKind::kHeterAware, cluster, model,
                                      data, 24, 1, config);
  const double loose = result.trace.time_to_loss(1.0);
  const double tight = result.trace.time_to_loss(0.5);
  EXPECT_LE(loose, tight);
}

TEST(SspTrainer, LossDecreases) {
  const Cluster cluster = cluster_a();
  const Dataset data = small_data();
  SoftmaxRegression model(6, 3);
  SspTrainingConfig config;
  config.iterations = 40;
  config.learning_rate = 0.5;
  const auto result = train_ssp(cluster, model, data, config);
  ASSERT_GE(result.trace.points.size(), 2u);
  EXPECT_LT(result.trace.final_loss(), result.trace.points.front().loss);
}

TEST(SspTrainer, StalenessBoundLimitsClockSpread) {
  const Cluster cluster = cluster_a();
  const Dataset data = small_data();
  SoftmaxRegression model(6, 3);
  SspTrainingConfig config;
  config.iterations = 30;
  config.staleness = 2;
  const auto result = train_ssp(cluster, model, data, config);
  // The spread can exceed the staleness by at most 1 transiently (the
  // in-flight computation that started legally).
  EXPECT_LE(result.mean_clock_spread, 3.0 + 1e-9);
}

TEST(SspTrainer, HeterogeneityCausesBlocking) {
  const Dataset data = small_data();
  SoftmaxRegression model(6, 3);
  SspTrainingConfig config;
  config.iterations = 30;
  config.staleness = 1;
  // On the heterogeneous Cluster-A the 12-vCPU worker runs 6× faster than
  // the 2-vCPU ones; with staleness 1 it must block regularly — the paper's
  // "reaches the staleness threshold nearly every step".
  const auto result = train_ssp(cluster_a(), model, data, config);
  EXPECT_GT(result.blocked_fraction, 0.1);

  // On a homogeneous cluster with no noise nobody blocks... clocks advance
  // in lockstep.
  const Cluster flat("flat", std::vector<WorkerSpec>(8, {4, 4.0}));
  const auto flat_result = train_ssp(flat, model, data, config);
  EXPECT_LE(flat_result.blocked_fraction, result.blocked_fraction);
}

TEST(SspTrainer, DeterministicForFixedSeed) {
  const Cluster cluster = cluster_a();
  const Dataset data = small_data();
  SoftmaxRegression model(6, 3);
  SspTrainingConfig config;
  config.iterations = 10;
  const auto a = train_ssp(cluster, model, data, config);
  const auto b = train_ssp(cluster, model, data, config);
  ASSERT_EQ(a.trace.points.size(), b.trace.points.size());
  EXPECT_DOUBLE_EQ(a.trace.final_loss(), b.trace.final_loss());
  EXPECT_DOUBLE_EQ(a.trace.total_time(), b.trace.total_time());
}

TEST(SspTrainer, ConvergesWorseThanBspPerGradientWork) {
  // Same total gradient computations: BSP reaches a lower loss because its
  // updates are exact — the statistical-efficiency gap of Fig. 4.
  const Cluster cluster = cluster_a();
  const Dataset data = small_data();
  SoftmaxRegression model(6, 3);

  BspTrainingConfig bsp_config;
  bsp_config.iterations = 30;
  bsp_config.sgd.learning_rate = 0.5;
  const auto bsp = train_bsp_coded(SchemeKind::kHeterAware, cluster, model,
                                   data, 24, 1, bsp_config);

  SspTrainingConfig ssp_config;
  ssp_config.iterations = 30;
  ssp_config.learning_rate = 0.5;
  ssp_config.staleness = 3;
  const auto ssp = train_ssp(cluster, model, data, ssp_config);

  EXPECT_LE(bsp.trace.final_loss(), ssp.trace.final_loss() + 0.05);
}

}  // namespace
}  // namespace hgc
