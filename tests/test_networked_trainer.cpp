// Tests for the full-stack networked trainer and the bursty straggler
// process.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "runtime/networked_trainer.hpp"
#include "runtime/sim_trainer.hpp"

namespace hgc {
namespace {

Dataset small_data(std::uint64_t seed = 211) {
  Rng rng(seed);
  return make_gaussian_classification(64, 5, 3, 2.5, rng);
}

TEST(NetworkedTrainer, LosslessRunMatchesSerial) {
  const Cluster cluster = cluster_a();
  const Dataset data = small_data();
  SoftmaxRegression model(5, 3);
  NetworkedTrainingConfig config;
  config.iterations = 12;
  config.sgd.learning_rate = 0.3;
  config.link = {0.001, 1e9, 0.0};
  const auto net_run = train_bsp_networked(SchemeKind::kHeterAware, cluster,
                                           model, data, 24, 1, config);

  BspTrainingConfig serial_config;
  serial_config.iterations = 12;
  serial_config.sgd.learning_rate = 0.3;
  serial_config.seed = config.seed;
  const auto serial = train_serial(model, data, serial_config);

  double worst = 0.0;
  for (std::size_t i = 0; i < serial.final_params.size(); ++i)
    worst = std::max(worst, std::abs(net_run.final_params[i] -
                                     serial.final_params[i]));
  EXPECT_LT(worst, 1e-6);
  EXPECT_EQ(net_run.rounds_retried, 0u);
  EXPECT_EQ(net_run.rounds_abandoned, 0u);
  EXPECT_GT(net_run.bytes_sent, 0u);
}

TEST(NetworkedTrainer, ModerateLossStaysExactViaCoding) {
  // 3% per-message loss, s = 2: most rounds decode despite drops, and each
  // decoded update equals the exact full gradient, so the final parameters
  // still track serial SGD bit-for-bit in iteration count.
  const Cluster cluster = cluster_a();
  const Dataset data = small_data();
  SoftmaxRegression model(5, 3);
  NetworkedTrainingConfig config;
  config.iterations = 15;
  config.sgd.learning_rate = 0.3;
  config.link = {0.001, 1e9, 0.03};
  const auto run = train_bsp_networked(SchemeKind::kHeterAware, cluster,
                                       model, data, 16, 2, config);
  EXPECT_EQ(run.rounds_abandoned, 0u);
  EXPECT_GT(run.messages_dropped, 0u);  // losses did happen
  // Every applied update was exact, so the loss is identical to a serial
  // run of the same length.
  BspTrainingConfig serial_config;
  serial_config.iterations = 15;
  serial_config.sgd.learning_rate = 0.3;
  serial_config.seed = config.seed;
  const auto serial = train_serial(model, data, serial_config);
  EXPECT_NEAR(run.trace.final_loss(), serial.trace.final_loss(), 1e-7);
}

TEST(NetworkedTrainer, HeavyLossCostsRetriesNotCorrectness) {
  const Cluster cluster = cluster_a();
  const Dataset data = small_data();
  SoftmaxRegression model(5, 3);
  NetworkedTrainingConfig config;
  config.iterations = 10;
  config.link = {0.001, 1e9, 0.25};  // brutal: expect many failed rounds
  const auto run = train_bsp_networked(SchemeKind::kHeterAware, cluster,
                                       model, data, 16, 1, config);
  EXPECT_GT(run.rounds_retried, 0u);
  // Whatever made it through is exact; loss never increases along the trace
  // beyond float jitter.
  for (std::size_t i = 1; i < run.trace.points.size(); ++i)
    EXPECT_LE(run.trace.points[i].loss,
              run.trace.points[i - 1].loss + 1e-6);
}

TEST(NetworkedTrainer, NaiveCannotSurviveLoss) {
  const Cluster cluster = cluster_a();
  const Dataset data = small_data();
  SoftmaxRegression model(5, 3);
  NetworkedTrainingConfig config;
  config.iterations = 8;
  config.max_round_retries = 2;
  config.link = {0.001, 1e9, 0.2};
  const auto run = train_bsp_networked(SchemeKind::kNaive, cluster, model,
                                       data, 8, 0, config);
  // With 8 messages/round at 20% loss, a clean round is rare; most
  // iterations exhaust their retries.
  EXPECT_GT(run.rounds_abandoned + run.rounds_retried, 4u);
}

TEST(StragglerProcess, ZeroPersistenceMatchesIidCounts) {
  StragglerModel model;
  model.num_stragglers = 2;
  model.delay_seconds = 1.0;
  StragglerProcess process(model, 0.0, 6, Rng(221));
  for (int i = 0; i < 50; ++i) {
    const auto cond = process.next();
    std::size_t delayed = 0;
    for (double d : cond.delay) delayed += d > 0.0 ? 1 : 0;
    EXPECT_EQ(delayed, 2u);
  }
}

TEST(StragglerProcess, FullPersistenceFreezesVictims) {
  StragglerModel model;
  model.num_stragglers = 2;
  model.delay_seconds = 1.0;
  StragglerProcess process(model, 1.0, 6, Rng(222));
  process.next();
  const auto first = process.victims();
  for (int i = 0; i < 20; ++i) {
    process.next();
    EXPECT_EQ(process.victims(), first);
  }
}

TEST(StragglerProcess, PersistenceIncreasesOverlap) {
  auto mean_overlap = [](double persistence) {
    StragglerModel model;
    model.num_stragglers = 2;
    model.delay_seconds = 1.0;
    StragglerProcess process(model, persistence, 10, Rng(223));
    process.next();
    auto previous = process.victims();
    double overlap_total = 0.0;
    for (int i = 0; i < 300; ++i) {
      process.next();
      const auto& current = process.victims();
      std::set<WorkerId> prev_set(previous.begin(), previous.end());
      std::size_t overlap = 0;
      for (WorkerId w : current) overlap += prev_set.count(w);
      overlap_total += static_cast<double>(overlap);
      previous = current;
    }
    return overlap_total / 300.0;
  };
  EXPECT_GT(mean_overlap(0.9), mean_overlap(0.0) + 0.5);
}

TEST(StragglerProcess, FaultModeMarksVictims) {
  StragglerModel model;
  model.num_stragglers = 1;
  model.fault = true;
  StragglerProcess process(model, 0.5, 4, Rng(224));
  const auto cond = process.next();
  std::size_t faults = 0;
  for (bool f : cond.faulted) faults += f ? 1 : 0;
  EXPECT_EQ(faults, 1u);
}

TEST(StragglerProcess, RejectsBadPersistence) {
  StragglerModel model;
  EXPECT_THROW(StragglerProcess(model, -0.1, 4, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(StragglerProcess(model, 1.1, 4, Rng(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hgc
