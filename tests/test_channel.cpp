// Unit tests for the MPSC channel underpinning the threaded runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "runtime/channel.hpp"

namespace hgc {
namespace {

TEST(Channel, FifoWithinSingleProducer) {
  Channel<int> channel;
  for (int i = 0; i < 10; ++i) channel.send(i);
  for (int i = 0; i < 10; ++i) {
    const auto value = channel.receive();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, i);
  }
}

TEST(Channel, ReceiveBlocksUntilSend) {
  Channel<int> channel;
  std::atomic<bool> received{false};
  std::thread consumer([&] {
    const auto value = channel.receive();
    EXPECT_TRUE(value.has_value());
    EXPECT_EQ(*value, 42);
    received = true;
  });
  // Give the consumer a moment to block, then unblock it.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(received.load());
  channel.send(42);
  consumer.join();
  EXPECT_TRUE(received.load());
}

TEST(Channel, CloseWakesBlockedReceiver) {
  Channel<int> channel;
  std::thread consumer([&] {
    const auto value = channel.receive();
    EXPECT_FALSE(value.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  channel.close();
  consumer.join();
}

TEST(Channel, DrainsQueuedMessagesAfterClose) {
  Channel<int> channel;
  channel.send(1);
  channel.send(2);
  channel.close();
  EXPECT_EQ(channel.receive(), std::optional<int>(1));
  EXPECT_EQ(channel.receive(), std::optional<int>(2));
  EXPECT_FALSE(channel.receive().has_value());
}

TEST(Channel, SendAfterCloseIsDropped) {
  Channel<int> channel;
  channel.close();
  channel.send(7);  // no-op by contract (late straggler results)
  EXPECT_FALSE(channel.receive().has_value());
}

TEST(Channel, ManyProducersAllMessagesArrive) {
  Channel<int> channel;
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&channel, p] {
      for (int i = 0; i < kPerProducer; ++i)
        channel.send(p * kPerProducer + i);
    });

  std::vector<bool> seen(kProducers * kPerProducer, false);
  for (int received = 0; received < kProducers * kPerProducer; ++received) {
    const auto value = channel.receive();
    ASSERT_TRUE(value.has_value());
    ASSERT_GE(*value, 0);
    ASSERT_LT(*value, kProducers * kPerProducer);
    EXPECT_FALSE(seen[static_cast<std::size_t>(*value)]) << "duplicate";
    seen[static_cast<std::size_t>(*value)] = true;
  }
  for (std::thread& t : producers) t.join();
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Channel, MoveOnlyPayloads) {
  Channel<std::unique_ptr<int>> channel;
  channel.send(std::make_unique<int>(5));
  auto value = channel.receive();
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(**value, 5);
}

}  // namespace
}  // namespace hgc
