// The sparse coding layer's contract, pinned:
//   * SparseRowBuilder/from_dense/to_dense structural semantics (sorted
//     columns, dropped zeros, duplicate detection, exact round trips);
//   * the sparse kernels' documented accumulation orders, bit-compared
//     (std::bit_cast, not a tolerance) against the dense references over
//     every kernel backend the host has;
//   * sparse-vs-dense bit-identity where it matters end to end: the solve
//     packing (factor_transposed's sparse scatter vs the dense gather),
//     encode_gradient, and decoding_coefficients, over scheme kinds ×
//     backends × straggler patterns;
//   * the incremental streaming decoder (valid, possibly non-canonical
//     coefficients) against the canonical path;
//   * sample_straggler_patterns' exact/sampled auto-selection and its
//     documented RNG stream;
//   * a threaded hammer racing the lazy dense view and concurrent decodes
//     (this file carries the `threaded` ctest label and runs under TSan).
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <numeric>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "core/coding_scheme.hpp"
#include "core/cyclic.hpp"
#include "core/decoder.hpp"
#include "core/decoding_cache.hpp"
#include "core/robustness.hpp"
#include "core/scheme_factory.hpp"
#include "linalg/kernels.hpp"
#include "linalg/sparse.hpp"
#include "linalg/workspace.hpp"
#include "util/rng.hpp"

namespace hgc {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

std::vector<kernels::Backend> all_available_backends() {
  std::vector<kernels::Backend> backends = {kernels::Backend::kScalar};
  for (kernels::Backend b :
       {kernels::Backend::kAvx2, kernels::Backend::kNeon})
    if (kernels::backend_available(b)) backends.push_back(b);
  return backends;
}

class BackendRestorer {
 public:
  BackendRestorer() : original_(kernels::active_backend()) {}
  ~BackendRestorer() { kernels::set_backend(original_); }

 private:
  kernels::Backend original_;
};

/// Random sparse matrix with ~`fill` density and no stored zeros (normal
/// draws are never exactly 0.0).
SparseRowMatrix random_sparse(std::size_t rows, std::size_t cols, double fill,
                              Rng& rng) {
  SparseRowBuilder builder(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      if (rng.uniform(0.0, 1.0) < fill) builder.set(r, c, rng.normal());
  return builder.build();
}

/// Paper-like heterogeneous throughputs for m workers (2..16 vCPU spread).
Throughputs spread_throughputs(std::size_t m) {
  Throughputs c(m);
  const double levels[] = {2.0, 4.0, 8.0, 12.0, 16.0};
  for (std::size_t w = 0; w < m; ++w) c[w] = levels[w % 5];
  return c;
}

// ------------------------------------------------ structure semantics --

TEST(SparseBuilder, SortsColumnsAndDropsZeros) {
  SparseRowBuilder builder(3, 8);
  builder.set(1, 5, 2.5);
  builder.set(1, 0, -1.0);
  builder.set(1, 3, 4.0);
  builder.set(2, 7, 0.0);  // dropped: support semantics
  builder.set(0, 2, 1.0);
  const SparseRowMatrix m = builder.build();

  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 8u);
  EXPECT_EQ(m.nnz(), 4u);
  EXPECT_EQ(m.row_nnz(0), 1u);
  EXPECT_EQ(m.row_nnz(1), 3u);
  EXPECT_EQ(m.row_nnz(2), 0u);  // the zero never entered the structure

  const auto cols = m.row_cols(1);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], 0u);
  EXPECT_EQ(cols[1], 3u);
  EXPECT_EQ(cols[2], 5u);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 3), 4.0);
  EXPECT_DOUBLE_EQ(m.at(1, 5), 2.5);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);  // absent ⇒ 0.0
  EXPECT_DOUBLE_EQ(m.at(2, 7), 0.0);
}

TEST(SparseBuilder, DuplicateEntryThrows) {
  SparseRowBuilder builder(2, 4);
  builder.set(0, 1, 1.0);
  builder.set(0, 1, 2.0);
  EXPECT_THROW(builder.build(), std::invalid_argument);
}

TEST(SparseRowMatrix, DenseRoundTripIsExact) {
  Rng rng(301);
  const SparseRowMatrix sparse = random_sparse(7, 11, 0.3, rng);
  const Matrix dense = sparse.to_dense();
  const SparseRowMatrix back = SparseRowMatrix::from_dense(dense);

  ASSERT_EQ(back.rows(), sparse.rows());
  ASSERT_EQ(back.cols(), sparse.cols());
  ASSERT_EQ(back.nnz(), sparse.nnz());
  for (std::size_t r = 0; r < sparse.rows(); ++r) {
    const auto cols_a = sparse.row_cols(r);
    const auto cols_b = back.row_cols(r);
    const auto vals_a = sparse.row_values(r);
    const auto vals_b = back.row_values(r);
    ASSERT_EQ(cols_a.size(), cols_b.size()) << "row " << r;
    for (std::size_t i = 0; i < cols_a.size(); ++i) {
      EXPECT_EQ(cols_a[i], cols_b[i]) << "row " << r;
      EXPECT_EQ(bits(vals_a[i]), bits(vals_b[i])) << "row " << r;
    }
  }
  // And the dense materialization fills absent entries with +0.0 exactly.
  for (std::size_t r = 0; r < sparse.rows(); ++r)
    for (std::size_t c = 0; c < sparse.cols(); ++c)
      EXPECT_EQ(bits(dense(r, c)), bits(sparse.at(r, c)));
}

// ----------------------------------------- kernel accumulation orders --

TEST(SparseKernels, RowDotAndGemvFollowAscendingScalarChain) {
  Rng rng(302);
  const SparseRowMatrix a = random_sparse(9, 14, 0.35, rng);
  std::vector<double> x(a.cols());
  for (double& v : x) v = rng.normal();

  std::vector<double> y(a.rows(), 99.0);  // gemv must overwrite
  sparse::gemv(a, x, y);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    // The documented order: one scalar chain over nonzeros, columns
    // ascending. Reproduce it exactly and require the same bits.
    const auto cols = a.row_cols(r);
    const auto vals = a.row_values(r);
    double ref = 0.0;
    for (std::size_t i = 0; i < cols.size(); ++i) ref += vals[i] * x[cols[i]];
    EXPECT_EQ(bits(sparse::row_dot(a, r, x)), bits(ref)) << "row " << r;
    EXPECT_EQ(bits(y[r]), bits(ref)) << "row " << r;
  }
}

TEST(SparseKernels, GemvTransposeBitIdenticalToDenseOnEveryBackend) {
  // The load-bearing kernel contract: sparse gemv_t sums each y[c] in row
  // order — the dense kernels::gemv_t order with structural zeros skipped —
  // so the verification product a·B never changes a byte going sparse, on
  // any backend.
  BackendRestorer restore;
  Rng rng(303);
  for (const auto& [rows, cols, fill] :
       {std::tuple{1ul, 1ul, 1.0}, {5ul, 9ul, 0.4}, {16ul, 33ul, 0.2},
        {58ul, 116ul, 0.05}}) {
    const SparseRowMatrix a = random_sparse(rows, cols, fill, rng);
    const Matrix dense = a.to_dense();
    std::vector<double> x(rows);
    for (double& v : x) v = rng.normal();

    for (kernels::Backend backend : all_available_backends()) {
      ASSERT_TRUE(kernels::set_backend(backend));
      std::vector<double> y_sparse(cols, 99.0);
      sparse::gemv_t(a, x, y_sparse);
      std::vector<double> y_dense(cols, -99.0);
      kernels::gemv_t(dense.data().data(), cols, rows, cols, x, y_dense);
      for (std::size_t c = 0; c < cols; ++c)
        ASSERT_EQ(bits(y_sparse[c]), bits(y_dense[c]))
            << kernels::backend_name(backend) << " rows=" << rows
            << " cols=" << cols << " c=" << c;
    }
  }
}

TEST(SparseKernels, AddScaledRowMatchesGemvTDecomposition) {
  Rng rng(304);
  const SparseRowMatrix a = random_sparse(6, 10, 0.4, rng);
  std::vector<double> x(a.rows());
  for (double& v : x) v = rng.normal();

  std::vector<double> via_kernel(a.cols(), 99.0);
  sparse::gemv_t(a, x, via_kernel);
  // gemv_t is definitionally: zero, then add_scaled_row per row ascending.
  std::vector<double> via_rows(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r)
    sparse::add_scaled_row(a, r, x[r], via_rows);
  for (std::size_t c = 0; c < a.cols(); ++c)
    EXPECT_EQ(bits(via_kernel[c]), bits(via_rows[c])) << "c=" << c;
}

// ----------------------- sparse vs dense bit-identity, end to end --------

/// Straggler patterns exercised per scheme: none, a prefix, a scattered
/// pair, the last workers.
std::vector<std::vector<bool>> receive_patterns(std::size_t m,
                                                std::size_t s) {
  std::vector<std::vector<bool>> patterns;
  patterns.emplace_back(m, true);
  for (std::size_t variant = 0; variant < 3 && s > 0; ++variant) {
    std::vector<bool> received(m, true);
    for (std::size_t i = 0; i < s; ++i) {
      const std::size_t straggler = variant == 0   ? i
                                    : variant == 1 ? (3 * i + 1) % m
                                                   : m - 1 - i;
      received[straggler] = false;
    }
    patterns.push_back(std::move(received));
  }
  return patterns;
}

TEST(SparseSchemes, SolvePackingBitIdenticalToDenseGather) {
  // QrWorkspace::factor_transposed's sparse overload zero-fills and
  // scatters; the dense overload gathers. Identical packed buffer ⇒
  // identical factorization bytes ⇒ identical solve bytes. Pin the solve
  // output across scheme kinds × backends × row subsets.
  BackendRestorer restore;
  const std::size_t k = 16, s = 2;
  for (SchemeKind kind :
       {SchemeKind::kNaive, SchemeKind::kCyclic,
        SchemeKind::kFractionalRepetition, SchemeKind::kHeterAware,
        SchemeKind::kGroupBased}) {
    // Fractional repetition needs (s+1) | m; 9 workers for it, 8 elsewhere.
    const std::size_t m = kind == SchemeKind::kFractionalRepetition ? 9 : 8;
    const Throughputs c = spread_throughputs(m);
    Rng rng(305);
    const auto scheme = make_scheme(kind, c, k, s, rng);
    const SparseRowMatrix& b = scheme->sparse_matrix();
    const Matrix dense = b.to_dense();
    const Vector ones(b.cols(), 1.0);

    for (const auto& received : receive_patterns(scheme->num_workers(), s)) {
      std::vector<std::size_t> rows;
      for (std::size_t w = 0; w < received.size(); ++w)
        if (received[w]) rows.push_back(w);

      for (kernels::Backend backend : all_available_backends()) {
        ASSERT_TRUE(kernels::set_backend(backend));
        QrWorkspace ws_sparse, ws_dense;
        Vector x_sparse, x_dense;
        ws_sparse.factor_transposed(b, rows);
        const double r_sparse = ws_sparse.solve_into(ones, x_sparse);
        ws_dense.factor_transposed(RowSelectView(dense, rows));
        const double r_dense = ws_dense.solve_into(ones, x_dense);

        const std::string where = to_string(kind) + std::string(" on ") +
                                  kernels::backend_name(backend);
        EXPECT_EQ(ws_sparse.rank(), ws_dense.rank()) << where;
        EXPECT_EQ(bits(r_sparse), bits(r_dense)) << where;
        ASSERT_EQ(x_sparse.size(), x_dense.size()) << where;
        for (std::size_t i = 0; i < x_sparse.size(); ++i)
          ASSERT_EQ(bits(x_sparse[i]), bits(x_dense[i]))
              << where << " x[" << i << "]";
      }
    }
  }
}

TEST(SparseSchemes, DecodingCoefficientsBitIdenticalAcrossBackends) {
  // The public decode output itself: same bytes on every backend (the
  // sparse kernels are scalar by design; the dense solve underneath is
  // already backend-pinned).
  BackendRestorer restore;
  const std::vector<kernels::Backend> backends = all_available_backends();
  const std::size_t m = 8, k = 16, s = 2;
  const Throughputs c = spread_throughputs(m);
  for (SchemeKind kind : paper_schemes()) {
    Rng rng(306);
    const auto scheme = make_scheme(kind, c, k, s, rng);
    for (const auto& received :
         receive_patterns(scheme->num_workers(),
                          scheme->stragglers_tolerated())) {
      ASSERT_TRUE(kernels::set_backend(kernels::Backend::kScalar));
      const auto ref = scheme->decoding_coefficients(received);
      ASSERT_TRUE(ref.has_value()) << to_string(kind);
      for (kernels::Backend backend : backends) {
        ASSERT_TRUE(kernels::set_backend(backend));
        const auto got = scheme->decoding_coefficients(received);
        ASSERT_TRUE(got.has_value());
        ASSERT_EQ(got->size(), ref->size());
        for (std::size_t i = 0; i < ref->size(); ++i)
          ASSERT_EQ(bits((*got)[i]), bits((*ref)[i]))
              << to_string(kind) << " on "
              << kernels::backend_name(backend) << " a[" << i << "]";
      }
    }
  }
}

TEST(SparseSchemes, EncodeGradientMatchesDenseAxpyOrder) {
  // encode_gradient iterates the sparse row; the pre-sparse implementation
  // swept all k partitions with dense coefficients. Same partition order,
  // and a zero-coefficient axpy contributes ±0.0 to finite accumulators —
  // bit-identical, pinned here against a dense reference on every backend.
  BackendRestorer restore;
  const std::size_t m = 8, k = 16, s = 2;
  const Throughputs c = spread_throughputs(m);
  const std::size_t dim = 33;
  for (SchemeKind kind : paper_schemes()) {
    Rng rng(307);
    const auto scheme = make_scheme(kind, c, k, s, rng);
    const Matrix dense = scheme->sparse_matrix().to_dense();
    std::vector<Vector> gradients(scheme->num_partitions());
    for (auto& g : gradients) {
      g.resize(dim);
      for (double& v : g) v = rng.normal();
    }
    for (kernels::Backend backend : all_available_backends()) {
      ASSERT_TRUE(kernels::set_backend(backend));
      for (WorkerId w = 0; w < scheme->num_workers(); ++w) {
        const Vector coded = encode_gradient(*scheme, w, gradients);
        Vector ref(dim, 0.0);
        for (std::size_t p = 0; p < scheme->num_partitions(); ++p)
          kernels::axpy(dense(w, p), gradients[p], ref);
        for (std::size_t i = 0; i < dim; ++i)
          ASSERT_EQ(bits(coded[i]), bits(ref[i]))
              << to_string(kind) << " on "
              << kernels::backend_name(backend) << " worker " << w;
      }
    }
  }
}

TEST(SparseSchemes, AssignmentDerivedFromRowStructure) {
  // Satellite: the assignment is the row structure, no dense scan.
  const std::size_t m = 12, k = 24, s = 2;
  Rng rng(308);
  const auto scheme =
      make_scheme(SchemeKind::kHeterAware, spread_throughputs(m), k, s, rng);
  const SparseRowMatrix& b = scheme->sparse_matrix();
  ASSERT_EQ(scheme->assignment().size(), m);
  for (WorkerId w = 0; w < m; ++w) {
    const auto cols = b.row_cols(w);
    const auto& assigned = scheme->assignment()[w];
    ASSERT_EQ(assigned.size(), cols.size()) << "worker " << w;
    for (std::size_t i = 0; i < cols.size(); ++i)
      EXPECT_EQ(assigned[i], cols[i]) << "worker " << w;
    EXPECT_EQ(scheme->load(w), cols.size());
  }
}

// --------------------------------------------- incremental decoding --

TEST(IncrementalDecoder, AgreesWithCanonicalOnDecodabilityAndAggregate) {
  Rng rng(309);
  const CyclicScheme scheme(8, 2, rng);
  const std::size_t k = scheme.num_partitions();
  const std::size_t dim = 17;
  std::vector<Vector> gradients(k);
  Vector expected(dim, 0.0);
  for (auto& g : gradients) {
    g.resize(dim);
    for (double& v : g) v = rng.normal();
    for (std::size_t i = 0; i < dim; ++i) expected[i] += g[i];
  }

  // Several arrival orders, including ones where early prefixes cannot
  // decode yet.
  const std::vector<std::vector<WorkerId>> orders = {
      {0, 1, 2, 3, 4, 5},       {7, 6, 5, 4, 3, 2},
      {0, 4, 1, 5, 2, 6, 3, 7}, {3, 0, 6, 2, 7, 5}};
  for (const auto& order : orders) {
    StreamingDecoder canonical(scheme);
    StreamingDecoder incremental(scheme, nullptr,
                                 DecodeStrategy::kIncremental);
    for (WorkerId w : order) {
      Vector coded = encode_gradient(scheme, w, gradients);
      canonical.add_result(w, coded);
      incremental.add_result(w, std::move(coded));
      ASSERT_EQ(incremental.ready(), canonical.ready())
          << "after worker " << w;
    }
    ASSERT_TRUE(incremental.ready());

    // The incremental coefficients may not be the canonical bytes, but they
    // must be valid: a·B = 1 and the aggregate must be Σ g_j.
    Vector a(scheme.num_workers(), 0.0);
    const Vector& coeffs = incremental.coefficients();
    ASSERT_EQ(coeffs.size(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = coeffs[i];
    Vector product(k);
    sparse::gemv_t(scheme.sparse_matrix(), a, product);
    for (std::size_t j = 0; j < k; ++j)
      EXPECT_NEAR(product[j], 1.0, 1e-8) << "a·B column " << j;

    const Vector aggregate = incremental.aggregate();
    const Vector canonical_aggregate = canonical.aggregate();
    for (std::size_t i = 0; i < dim; ++i) {
      EXPECT_NEAR(aggregate[i], expected[i], 1e-8);
      EXPECT_NEAR(aggregate[i], canonical_aggregate[i], 1e-8);
    }
  }
}

TEST(IncrementalDecoder, ResetSupportsReuseAcrossIterations) {
  Rng rng(310);
  const CyclicScheme scheme(6, 1, rng);
  std::vector<Vector> gradients(scheme.num_partitions());
  for (auto& g : gradients) {
    g.resize(5);
    for (double& v : g) v = rng.normal();
  }
  StreamingDecoder decoder(scheme, nullptr, DecodeStrategy::kIncremental);
  for (int iteration = 0; iteration < 3; ++iteration) {
    for (WorkerId w = 0; w + 1 < scheme.num_workers(); ++w)
      decoder.add_result(w, encode_gradient(scheme, w, gradients));
    ASSERT_TRUE(decoder.ready()) << "iteration " << iteration;
    decoder.reset();
    EXPECT_FALSE(decoder.ready());
    EXPECT_EQ(decoder.results_received(), 0u);
  }
}

TEST(IncrementalDecoder, RejectsDecodingCacheCombination) {
  Rng rng(311);
  const CyclicScheme scheme(6, 1, rng);
  DecodingCache cache(scheme);
  EXPECT_THROW(
      StreamingDecoder(scheme, &cache, DecodeStrategy::kIncremental),
      std::invalid_argument);
}

// ------------------------------------------- straggler pattern sampling --

TEST(StragglerSampling, CountSaturatesAtCap) {
  EXPECT_EQ(count_straggler_patterns(8, 2, 1000), 28u);
  EXPECT_EQ(count_straggler_patterns(8, 6, 1000), 28u);  // symmetry
  EXPECT_EQ(count_straggler_patterns(8, 0, 1000), 1u);
  EXPECT_EQ(count_straggler_patterns(8, 8, 1000), 1u);
  EXPECT_EQ(count_straggler_patterns(10000, 2, 1000), 1000u);  // saturated
  EXPECT_EQ(count_straggler_patterns(10000, 5000, 7), 7u);
}

TEST(StragglerSampling, AutoSelectsExactEnumerationWhenFeasible) {
  // C(8,2) = 28 ≤ 100 ⇒ the exact lexicographic enumeration runs, seed
  // ignored.
  std::vector<StragglerSet> exact;
  for_each_straggler_pattern(8, 2, [&](const StragglerSet& p) {
    exact.push_back(p);
    return true;
  });
  ASSERT_EQ(exact.size(), 28u);

  for (std::uint64_t seed : {1ull, 99ull}) {
    std::vector<StragglerSet> sampled;
    sample_straggler_patterns(8, 2, 100, seed, [&](const StragglerSet& p) {
      sampled.push_back(p);
      return true;
    });
    EXPECT_EQ(sampled, exact) << "seed " << seed;
  }
}

TEST(StragglerSampling, SampledModeIsSeededAndWellFormed) {
  // C(100,3) = 161700 > 50 ⇒ sampled mode: exactly 50 patterns, each a
  // sorted s-subset of [0, m), reproducible per seed.
  const std::size_t m = 100, s = 3, budget = 50;
  const auto draw = [&](std::uint64_t seed) {
    std::vector<StragglerSet> patterns;
    sample_straggler_patterns(m, s, budget, seed,
                              [&](const StragglerSet& p) {
                                patterns.push_back(p);
                                return true;
                              });
    return patterns;
  };
  const auto first = draw(42);
  ASSERT_EQ(first.size(), budget);
  for (const StragglerSet& p : first) {
    ASSERT_EQ(p.size(), s);
    for (std::size_t i = 0; i < s; ++i) {
      EXPECT_LT(p[i], m);
      if (i > 0) {
        EXPECT_LT(p[i - 1], p[i]);  // sorted, distinct
      }
    }
  }
  EXPECT_EQ(draw(42), first);   // same seed ⇒ same stream
  EXPECT_NE(draw(43), first);   // different seed ⇒ different patterns
}

TEST(StragglerSampling, EarlyExitPropagates) {
  std::size_t visited = 0;
  const bool completed =
      sample_straggler_patterns(100, 3, 50, 7, [&](const StragglerSet&) {
        return ++visited < 10;
      });
  EXPECT_FALSE(completed);
  EXPECT_EQ(visited, 10u);
}

TEST(Robustness, EstimateMatchesExhaustiveWorstCase) {
  Rng rng(312);
  const CyclicScheme scheme(8, 2, rng);
  const Throughputs c = spread_throughputs(8);
  const auto exact = worst_case_time(scheme, c);
  ASSERT_TRUE(exact.has_value());

  const RobustnessEstimate estimate =
      estimate_worst_case_time(scheme, c, 1000, /*seed=*/5);
  EXPECT_TRUE(estimate.exhaustive);
  EXPECT_EQ(estimate.patterns_checked, 29u);  // C(8,2) + zero-straggler
  EXPECT_EQ(estimate.undecodable, 0u);
  EXPECT_DOUBLE_EQ(estimate.worst_time, *exact);
}

TEST(Robustness, SparseOnesInRowSpanAgreesWithDense) {
  Rng rng(313);
  const CyclicScheme scheme(8, 2, rng);
  const SparseRowMatrix& b = scheme.sparse_matrix();
  const Matrix dense = b.to_dense();
  SolveWorkspace ws;
  StragglerSet pattern;
  for_each_straggler_pattern(8, 2, [&](const StragglerSet& stragglers) {
    std::vector<std::size_t> rows;
    for (std::size_t w = 0; w < 8; ++w)
      if (std::find(stragglers.begin(), stragglers.end(), w) ==
          stragglers.end())
        rows.push_back(w);
    EXPECT_EQ(ones_in_row_span(b, rows, 1e-8, ws),
              ones_in_row_span(dense, rows, 1e-8, ws));
    EXPECT_EQ(ones_in_row_span(b, rows), ones_in_row_span(dense, rows));
    return true;
  }, pattern);
}

// ----------------------------------------------------- threaded hammer --

TEST(SparseThreaded, ConcurrentLazyDenseViewAndDecodesAreExact) {
  // Sweep threads share one scheme: the first coding_matrix() call races
  // the lazy dense-view materialization (std::call_once), while other
  // threads decode and encode concurrently. Every thread must reproduce
  // the single-threaded bytes exactly. Runs under TSan via the `threaded`
  // ctest label.
  const std::size_t m = 32, k = 64, s = 2;
  Rng rng(314);
  const auto scheme =
      make_scheme(SchemeKind::kHeterAware, spread_throughputs(m), k, s, rng);

  // References computed BEFORE any dense-view access (decode and encode run
  // purely off the sparse structure), so the threads below genuinely race
  // the first materialization.
  const auto patterns = receive_patterns(m, s);
  std::vector<Vector> reference_coefficients;
  for (const auto& received : patterns) {
    const auto a = scheme->decoding_coefficients(received);
    ASSERT_TRUE(a.has_value());
    reference_coefficients.push_back(*a);
  }
  std::vector<Vector> gradients(k);
  for (auto& g : gradients) {
    g.resize(9);
    for (double& v : g) v = rng.normal();
  }
  const Vector reference_coded = encode_gradient(*scheme, 3, gradients);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&, t] {
      for (int iter = 0; iter < 16; ++iter) {
        // Race the lazy dense view; its bytes must equal the sparse form.
        const Matrix& dense = scheme->coding_matrix();
        if (dense.rows() != m || dense.cols() != k)
          mismatches.fetch_add(1, std::memory_order_relaxed);
        const auto& received = patterns[static_cast<std::size_t>(
            (t + iter) % static_cast<int>(patterns.size()))];
        const auto a = scheme->decoding_coefficients(received);
        const Vector& ref = reference_coefficients[static_cast<std::size_t>(
            (t + iter) % static_cast<int>(patterns.size()))];
        if (!a || a->size() != ref.size()) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (std::size_t i = 0; i < ref.size(); ++i)
          if (bits((*a)[i]) != bits(ref[i]))
            mismatches.fetch_add(1, std::memory_order_relaxed);
        const Vector coded = encode_gradient(*scheme, 3, gradients);
        for (std::size_t i = 0; i < coded.size(); ++i)
          if (bits(coded[i]) != bits(reference_coded[i]))
            mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);

  // The racing threads materialized the dense view; it must be the exact
  // sparse bytes.
  const Matrix& dense = scheme->coding_matrix();
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < k; ++c)
      ASSERT_EQ(bits(dense(r, c)), bits(scheme->sparse_matrix().at(r, c)));
}

TEST(SparseThreaded, ConcurrentIncrementalDecodersAreIndependent) {
  // One scheme, many incremental decoders (one per thread, as the engine
  // would own them) hammering sparse row reads concurrently.
  Rng rng(315);
  const CyclicScheme scheme(12, 2, rng);
  std::vector<Vector> gradients(scheme.num_partitions());
  Vector expected(7, 0.0);
  for (auto& g : gradients) {
    g.resize(7);
    for (double& v : g) v = rng.normal();
    for (std::size_t i = 0; i < 7; ++i) expected[i] += g[i];
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&, t] {
      StreamingDecoder decoder(scheme, nullptr,
                               DecodeStrategy::kIncremental);
      for (int iter = 0; iter < 8; ++iter) {
        decoder.reset();
        for (WorkerId w = 0; w < scheme.num_workers(); ++w) {
          const WorkerId rotated =
              (w + static_cast<WorkerId>(t)) % scheme.num_workers();
          if (static_cast<int>(rotated) % 11 == t % 11 && w < 2) continue;
          decoder.add_result(rotated,
                             encode_gradient(scheme, rotated, gradients));
          if (decoder.ready()) break;
        }
        if (!decoder.ready()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const Vector aggregate = decoder.aggregate();
        for (std::size_t i = 0; i < expected.size(); ++i)
          if (std::abs(aggregate[i] - expected[i]) > 1e-8)
            failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace hgc
