// Unit tests for src/util: RNG, stats, tables, args.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace hgc {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i)
    if (a.uniform() != b.uniform()) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformStaysInOpenInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(0.0, 1.0);
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRejectsBadBounds) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(42);
  Rng child1 = parent.fork();
  Rng child2 = parent.fork();
  // Children must differ from each other and advance independently.
  EXPECT_NE(child1.uniform(), child2.uniform());
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(42), b(42);
  Rng ca = a.fork(), cb = b.fork();
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(ca.uniform(), cb.uniform());
}

TEST(Rng, TruncatedNormalRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.truncated_normal(0.0, 1.0, -0.5, 0.5);
    EXPECT_GE(x, -0.5);
    EXPECT_LE(x, 0.5);
  }
}

TEST(Rng, TruncatedNormalPathologicalBoundsClamps) {
  Rng rng(3);
  // Bounds far from the mean: resampling gives up and clamps.
  const double x = rng.truncated_normal(0.0, 0.001, 5.0, 6.0);
  EXPECT_GE(x, 5.0);
  EXPECT_LE(x, 6.0);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndSorted) {
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.sample_without_replacement(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    for (std::size_t i = 1; i < sample.size(); ++i)
      EXPECT_LT(sample[i - 1], sample[i]);
    for (std::size_t v : sample) EXPECT_LT(v, 20u);
  }
}

TEST(Rng, SampleWholePopulation) {
  Rng rng(5);
  const auto sample = rng.sample_without_replacement(5, 5);
  EXPECT_EQ(sample, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, SampleRejectsOversizedRequest) {
  Rng rng(5);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 2000; ++i)
    ++seen[static_cast<std::size_t>(rng.uniform_int(0, 4))];
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i < 25 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Stats, PercentileSingleElement) {
  const std::vector<double> xs = {42.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 37.0), 42.0);
}

TEST(Stats, PercentileRejectsBadInput) {
  const std::vector<double> empty;
  EXPECT_THROW(percentile(empty, 50.0), std::invalid_argument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(percentile(xs, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 101.0), std::invalid_argument);
}

TEST(ReservoirQuantiles, ExactWhileUnderCapacity) {
  ReservoirQuantiles q(1024);
  for (int i = 100; i >= 1; --i) q.add(static_cast<double>(i));
  EXPECT_EQ(q.count(), 100u);
  EXPECT_EQ(q.sample_size(), 100u);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(100.0), 100.0);
  EXPECT_DOUBLE_EQ(q.p50(), 50.5);
  std::vector<double> xs(100);
  for (int i = 0; i < 100; ++i) xs[i] = i + 1.0;
  EXPECT_DOUBLE_EQ(q.p95(), percentile(xs, 95.0));
  EXPECT_DOUBLE_EQ(q.p99(), percentile(xs, 99.0));
}

TEST(ReservoirQuantiles, ApproximatesLargeStreams) {
  // 200k uniform(0,1) samples through a 512-slot reservoir: quantiles land
  // within a few percent of truth.
  ReservoirQuantiles q(512);
  Rng rng(21);
  for (int i = 0; i < 200000; ++i) q.add(rng.uniform());
  EXPECT_EQ(q.count(), 200000u);
  EXPECT_EQ(q.sample_size(), 512u);
  EXPECT_NEAR(q.p50(), 0.5, 0.08);
  EXPECT_NEAR(q.p95(), 0.95, 0.05);
  EXPECT_NEAR(q.p99(), 0.99, 0.03);
  EXPECT_LE(q.p50(), q.p95());
  EXPECT_LE(q.p95(), q.p99());
}

TEST(ReservoirQuantiles, DeterministicForSeedAndOrder) {
  ReservoirQuantiles a(64, 7), b(64, 7);
  Rng ra(3), rb(3);
  for (int i = 0; i < 5000; ++i) a.add(ra.normal());
  for (int i = 0; i < 5000; ++i) b.add(rb.normal());
  EXPECT_DOUBLE_EQ(a.p50(), b.p50());
  EXPECT_DOUBLE_EQ(a.p99(), b.p99());
}

TEST(RunningStats, MergeTreeMatchesSequentialStream) {
  // The parallel-sweep discipline: per-cell partials merged in a fixed order
  // must equal one sequential pass for counts and means.
  RunningStats sequential;
  std::vector<RunningStats> partials(8);
  Rng rng(23);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.exponential(0.5);
    sequential.add(x);
    partials[static_cast<std::size_t>(i) % 8].add(x);
  }
  RunningStats merged;
  for (const RunningStats& p : partials) merged.merge(p);
  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_NEAR(merged.mean(), sequential.mean(), 1e-12);
  EXPECT_NEAR(merged.sum(), sequential.sum(), 1e-9);
  EXPECT_NEAR(merged.stddev(), sequential.stddev(), 1e-10);
  EXPECT_DOUBLE_EQ(merged.min(), sequential.min());
  EXPECT_DOUBLE_EQ(merged.max(), sequential.max());
}

TEST(ReservoirQuantiles, MergeUnderCapacityEqualsSequential) {
  // While both operands retain their whole streams the merged reservoir is
  // the concatenated stream: quantiles match a single-pass reservoir exactly.
  ReservoirQuantiles left(1024), right(1024), sequential(1024);
  for (int i = 0; i < 300; ++i) {
    left.add(static_cast<double>(i));
    sequential.add(static_cast<double>(i));
  }
  for (int i = 300; i < 500; ++i) {
    right.add(static_cast<double>(i));
    sequential.add(static_cast<double>(i));
  }
  left.merge(right);
  EXPECT_EQ(left.count(), 500u);
  EXPECT_EQ(left.sample_size(), 500u);
  EXPECT_DOUBLE_EQ(left.p50(), sequential.p50());
  EXPECT_DOUBLE_EQ(left.p95(), sequential.p95());
  EXPECT_DOUBLE_EQ(left.p99(), sequential.p99());
}

TEST(ReservoirQuantiles, MergeIsDeterministicAndCountExact) {
  auto fill = [](ReservoirQuantiles& q, std::uint64_t seed, int n) {
    Rng rng(seed);
    for (int i = 0; i < n; ++i) q.add(rng.normal());
  };
  ReservoirQuantiles a1(128, 7), a2(128, 7), b1(128, 9), b2(128, 9);
  fill(a1, 3, 4000);
  fill(a2, 3, 4000);
  fill(b1, 5, 6000);
  fill(b2, 5, 6000);
  a1.merge(b1);
  a2.merge(b2);
  EXPECT_EQ(a1.count(), 10000u);
  EXPECT_EQ(a1.sample_size(), 128u);
  // Same operands, same merge: bit-identical quantiles.
  EXPECT_DOUBLE_EQ(a1.p50(), a2.p50());
  EXPECT_DOUBLE_EQ(a1.p95(), a2.p95());
  EXPECT_DOUBLE_EQ(a1.p99(), a2.p99());
}

TEST(ReservoirQuantiles, MergedQuantilesApproximatePooledStream) {
  ReservoirQuantiles a(512, 11), b(512, 13);
  Rng rng(31);
  std::vector<double> pooled;
  for (int i = 0; i < 30000; ++i) {
    const double x = rng.uniform();
    pooled.push_back(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), 30000u);
  EXPECT_NEAR(a.p50(), percentile(pooled, 50.0), 0.08);
  EXPECT_NEAR(a.p95(), percentile(pooled, 95.0), 0.05);
}

TEST(ReservoirQuantiles, MergeWeighsSaturatedOperandsByCount) {
  // 2000 high-valued observations squeezed through a small saturated
  // reservoir must dominate 10 low-valued ones even though the retained
  // samples are closer in size (32 vs 10): the merge weighs elements by
  // the observations they stand for, not one each.
  ReservoirQuantiles small(1024), saturated(32, 5);
  for (int i = 0; i < 10; ++i) small.add(0.0);
  Rng rng(41);
  for (int i = 0; i < 2000; ++i) saturated.add(100.0 + rng.uniform());
  small.merge(saturated);
  EXPECT_EQ(small.count(), 2010u);
  // True p50 of the pooled stream is ~100.5; equal-weight concatenation
  // of the samples would put ~24% of the mass at 0 and drag p25 to 0.
  EXPECT_GT(small.p50(), 99.0);
  EXPECT_GT(small.quantile(25.0), 99.0);
}

TEST(ReservoirQuantiles, AdoptSubsamplesUniformlyNotByPrefix) {
  // A small empty reservoir adopting a large unsaturated one (whose sample
  // is in insertion order) must subsample uniformly: keeping a prefix of
  // 500 ascending values would drag p50 to ~16 instead of ~250.
  ReservoirQuantiles dst(32), src(1024);
  for (int i = 0; i < 500; ++i) src.add(static_cast<double>(i));
  dst.merge(src);
  EXPECT_EQ(dst.count(), 500u);
  EXPECT_EQ(dst.sample_size(), 32u);
  EXPECT_NEAR(dst.p50(), 249.5, 90.0);
}

TEST(ReservoirQuantiles, MergeWithEmptySides) {
  ReservoirQuantiles a(64), b(64);
  for (int i = 1; i <= 10; ++i) a.add(static_cast<double>(i));
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 10u);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 10u);
  EXPECT_DOUBLE_EQ(b.p50(), 5.5);
}

TEST(ReservoirQuantiles, RejectsBadInput) {
  EXPECT_THROW(ReservoirQuantiles(0), std::invalid_argument);
  ReservoirQuantiles q;
  EXPECT_THROW(q.quantile(50.0), std::invalid_argument);  // empty
  q.add(1.0);
  EXPECT_THROW(q.quantile(-1.0), std::invalid_argument);
  EXPECT_THROW(q.quantile(101.0), std::invalid_argument);
}

TEST(Stats, KahanSumHandlesSmallTerms) {
  std::vector<double> xs(1000000, 1e-10);
  xs.push_back(1.0);
  EXPECT_NEAR(kahan_sum(xs), 1.0 + 1e-4, 1e-12);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 1.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"scheme", "time"});
  table.add_row({"naive", "1.5"});
  table.add_row({"heter-aware", "0.333"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("scheme"), std::string::npos);
  EXPECT_NE(out.find("heter-aware"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TablePrinter, RejectsRaggedRow) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TablePrinter, NumFormatsFixed) {
  EXPECT_EQ(TablePrinter::num(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
}

TEST(Args, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--iters", "50", "--sigma=0.25", "--verbose"};
  Args args(5, argv);
  EXPECT_EQ(args.get_int("iters", 0), 50);
  EXPECT_DOUBLE_EQ(args.get_double("sigma", 0.0), 0.25);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
  EXPECT_NO_THROW(args.check_unused());
}

TEST(Args, GetListAccumulatesRepeatedFlags) {
  const char* argv[] = {"prog", "--scenario-file", "a.scn",
                        "--scenario-file=b.scn", "--scenario-file", "c.scn",
                        "--other", "x"};
  Args args(8, argv);
  EXPECT_EQ(args.get_list("scenario-file"),
            (std::vector<std::string>{"a.scn", "b.scn", "c.scn"}));
  // Single-value accessors keep their last-wins behaviour.
  EXPECT_EQ(args.get("scenario-file", ""), "c.scn");
  EXPECT_EQ(args.get_list("other"), (std::vector<std::string>{"x"}));
  EXPECT_TRUE(args.get_list("absent").empty());
  EXPECT_NO_THROW(args.check_unused());
}

TEST(Args, GetListRejectsBareFlags) {
  const char* argv[] = {"prog", "--scenario-file", "--threads", "4"};
  Args args(4, argv);
  EXPECT_THROW(args.get_list("scenario-file"), std::invalid_argument);
}

TEST(Args, DetectsUnusedOptions) {
  const char* argv[] = {"prog", "--typo", "3"};
  Args args(3, argv);
  EXPECT_THROW(args.check_unused(), std::invalid_argument);
}

TEST(Args, RejectsMalformedOption) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(Args(2, argv), std::invalid_argument);
}

TEST(Args, BooleanParsing) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=maybe"};
  Args args(4, argv);
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_THROW(args.get_bool("c", false), std::invalid_argument);
}

TEST(Args, BareFlagRejectsValueTypedReads) {
  // `--csv --threads 4`: the value of --csv was swallowed by the next
  // option; reading it as a string must fail loudly, not return "true"
  // (which used to end up as a file literally named "true").
  const char* argv[] = {"prog", "--csv", "--threads", "4"};
  Args args(4, argv);
  EXPECT_EQ(args.get_int("threads", 0), 4);
  try {
    args.get("csv", "-");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--csv"), std::string::npos);
  }
  // The same bare token is still a perfectly good boolean.
  EXPECT_TRUE(args.get_bool("csv", false));
}

TEST(Args, BareFlagRejectsNumericReads) {
  const char* argv[] = {"prog", "--iters", "--csv", "out.csv"};
  Args args(4, argv);
  EXPECT_THROW(args.get_int("iters", 7), std::invalid_argument);
  EXPECT_THROW(args.get_double("iters", 0.5), std::invalid_argument);
}

TEST(Args, MalformedNumbersNameTheFlag) {
  const char* argv[] = {"prog", "--iters=abc", "--sigma=0.5x", "--k=12"};
  Args args(4, argv);
  EXPECT_EQ(args.get_int("k", 0), 12);
  try {
    args.get_int("iters", 0);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--iters=abc"), std::string::npos);
  }
  try {
    args.get_double("sigma", 0.0);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--sigma=0.5x"), std::string::npos);
  }
}

TEST(Args, NegativeValuesStillParse) {
  const char* argv[] = {"prog", "--delta", "-3", "--offset=-0.25"};
  Args args(4, argv);
  EXPECT_EQ(args.get_int("delta", 0), -3);
  EXPECT_DOUBLE_EQ(args.get_double("offset", 0.0), -0.25);
}

TEST(Args, TokenSpanConstructorMatchesArgv) {
  // The bench mains pre-split argv (google-benchmark keeps --benchmark_*)
  // and feed the rest in as tokens; both `--flag value` and `--flag=value`
  // must parse under the same strict rules, errors naming the flag.
  const std::vector<std::string> tokens = {"--json", "out.json",
                                           "--iters=12", "--quiet"};
  Args args{std::span<const std::string>(tokens)};
  EXPECT_EQ(args.get("json", "-"), "out.json");
  EXPECT_EQ(args.get_int("iters", 0), 12);
  EXPECT_TRUE(args.get_bool("quiet", false));
  EXPECT_NO_THROW(args.check_unused());

  const std::vector<std::string> bare = {"--json", "--iters", "3"};
  Args swallowed{std::span<const std::string>(bare)};
  try {
    swallowed.get("json", "-");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--json"), std::string::npos);
  }

  const std::vector<std::string> malformed = {"oops"};
  EXPECT_THROW(Args{std::span<const std::string>(malformed)},
               std::invalid_argument);
}

}  // namespace
}  // namespace hgc
