// Tests for the shared scheme-construction cache: key semantics (what may
// and may not be shared across sweep cells), result-transparency against
// the uncached construction path, stats, and thread-safety (this file is
// part of the CI TSan build).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/scheme_cache.hpp"
#include "util/rng.hpp"

namespace hgc {
namespace {

const Throughputs kClusterLike = {2.0, 4.0, 6.0, 8.0, 8.0};

void expect_same_matrix(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      EXPECT_EQ(a(r, c), b(r, c)) << "entry (" << r << ", " << c << ")";
}

TEST(SchemeCacheTraits, ClassifiesConstructionInputs) {
  EXPECT_FALSE(scheme_uses_construction_rng(SchemeKind::kNaive));
  EXPECT_FALSE(
      scheme_uses_construction_rng(SchemeKind::kFractionalRepetition));
  EXPECT_TRUE(scheme_uses_construction_rng(SchemeKind::kCyclic));
  EXPECT_TRUE(scheme_uses_construction_rng(SchemeKind::kHeterAware));
  EXPECT_TRUE(scheme_uses_construction_rng(SchemeKind::kGroupBased));

  EXPECT_FALSE(scheme_uses_throughputs(SchemeKind::kNaive));
  EXPECT_FALSE(scheme_uses_throughputs(SchemeKind::kCyclic));
  EXPECT_FALSE(scheme_uses_throughputs(SchemeKind::kFractionalRepetition));
  EXPECT_TRUE(scheme_uses_throughputs(SchemeKind::kHeterAware));
  EXPECT_TRUE(scheme_uses_throughputs(SchemeKind::kGroupBased));
}

TEST(SchemeCache, HitReturnsTheSameInstance) {
  SchemeCache cache;
  const auto first =
      cache.get_or_create(SchemeKind::kHeterAware, kClusterLike, 10, 1, 7);
  const auto second =
      cache.get_or_create(SchemeKind::kHeterAware, kClusterLike, 10, 1, 7);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SchemeCache, MatchesUncachedConstruction) {
  // Result-transparency: the cache must build exactly what run_experiment's
  // uncached path builds — Rng(seed) fed straight into make_scheme.
  // 6 workers so fractional repetition's (s+1) | m divisibility holds.
  const Throughputs six = {2.0, 4.0, 6.0, 8.0, 8.0, 4.0};
  SchemeCache cache;
  for (const SchemeKind kind :
       {SchemeKind::kNaive, SchemeKind::kCyclic,
        SchemeKind::kFractionalRepetition, SchemeKind::kHeterAware,
        SchemeKind::kGroupBased}) {
    const auto cached = cache.get_or_create(kind, six, 12, 1, 99);
    Rng rng(99);
    const auto direct = make_scheme(kind, six, 12, 1, rng);
    expect_same_matrix(cached->coding_matrix(), direct->coding_matrix());
  }
}

TEST(SchemeCache, DeterministicSchemesShareAcrossSeeds) {
  SchemeCache cache;
  const auto naive_a =
      cache.get_or_create(SchemeKind::kNaive, kClusterLike, 10, 1, 1);
  const auto naive_b =
      cache.get_or_create(SchemeKind::kNaive, kClusterLike, 10, 1, 2);
  EXPECT_EQ(naive_a.get(), naive_b.get());

  // 6 workers so (s+1) | m holds for fractional repetition.
  const Throughputs six(6, 1.0);
  const auto frac_a = cache.get_or_create(
      SchemeKind::kFractionalRepetition, six, 6, 1, 1);
  const auto frac_b = cache.get_or_create(
      SchemeKind::kFractionalRepetition, six, 6, 1, 2);
  EXPECT_EQ(frac_a.get(), frac_b.get());
}

TEST(SchemeCache, RandomizedSchemesKeyOnSeed) {
  SchemeCache cache;
  const auto a =
      cache.get_or_create(SchemeKind::kHeterAware, kClusterLike, 10, 1, 1);
  const auto b =
      cache.get_or_create(SchemeKind::kHeterAware, kClusterLike, 10, 1, 2);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(SchemeCache, ThroughputObliviousSchemesShareAcrossClusters) {
  SchemeCache cache;
  Throughputs other = kClusterLike;
  other[0] *= 3.0;  // same size, different speeds
  const auto a =
      cache.get_or_create(SchemeKind::kCyclic, kClusterLike, 10, 1, 5);
  const auto b = cache.get_or_create(SchemeKind::kCyclic, other, 10, 1, 5);
  EXPECT_EQ(a.get(), b.get());

  // Throughput-aware schemes must NOT share across different estimates —
  // this is why estimation_sigma > 0 (seed-dependent estimates) keeps
  // heter/group cells separate per seed even before the seed is folded in.
  const auto ha =
      cache.get_or_create(SchemeKind::kHeterAware, kClusterLike, 10, 1, 5);
  const auto hb =
      cache.get_or_create(SchemeKind::kHeterAware, other, 10, 1, 5);
  EXPECT_NE(ha.get(), hb.get());
}

TEST(SchemeCache, DistinguishesKAndS) {
  SchemeCache cache;
  const auto base =
      cache.get_or_create(SchemeKind::kHeterAware, kClusterLike, 10, 1, 5);
  const auto other_k =
      cache.get_or_create(SchemeKind::kHeterAware, kClusterLike, 12, 1, 5);
  const auto other_s =
      cache.get_or_create(SchemeKind::kHeterAware, kClusterLike, 10, 2, 5);
  EXPECT_NE(base.get(), other_k.get());
  EXPECT_NE(base.get(), other_s.get());
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(SchemeCache, ClearResets) {
  SchemeCache cache;
  cache.get_or_create(SchemeKind::kNaive, kClusterLike, 10, 1, 1);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(SchemeCache, ConcurrentLookupsAgreeOnOneInstance) {
  // Hammer a small key set from many threads; every thread must observe the
  // same instance per key. Runs under TSan in CI to prove the shared-mutex
  // discipline is race-free.
  SchemeCache cache;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 50;
  std::vector<std::vector<const CodingScheme*>> seen(
      kThreads, std::vector<const CodingScheme*>(2, nullptr));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &cache, &seen] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        const auto heter = cache.get_or_create(SchemeKind::kHeterAware,
                                               kClusterLike, 10, 1, 3);
        const auto cyclic = cache.get_or_create(SchemeKind::kCyclic,
                                                kClusterLike, 10, 1, 3);
        if (seen[t][0] == nullptr) seen[t][0] = heter.get();
        if (seen[t][1] == nullptr) seen[t][1] = cyclic.get();
        EXPECT_EQ(seen[t][0], heter.get());
        EXPECT_EQ(seen[t][1], cyclic.get());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[0][0], seen[t][0]);
    EXPECT_EQ(seen[0][1], seen[t][1]);
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits() + cache.misses(), kThreads * kRounds * 2);
}

}  // namespace
}  // namespace hgc
