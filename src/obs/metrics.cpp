#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <stdexcept>

namespace hgc::obs {

namespace detail {

std::atomic<bool> g_metrics_enabled{false};

namespace {

/// RAII lease tying one shard to one thread. The lease is thread_local: the
/// first instrumented event on a thread acquires a shard (recycling one a
/// dead thread released, values intact), and thread exit returns it to the
/// registry's free pool without clearing it — counters are cumulative, so
/// a recycled shard just keeps accumulating.
struct ShardLease {
  Shard* shard = nullptr;
  ~ShardLease() {
    if (shard) Registry::global().release_shard(*shard);
  }
};

thread_local ShardLease t_lease;

}  // namespace

Shard& local_shard() {
  if (!t_lease.shard) t_lease.shard = &Registry::global().acquire_shard();
  return *t_lease.shard;
}

std::atomic<std::uint64_t>& gauge_slot(std::uint32_t index) {
  return Registry::global().gauges_[index];
}

}  // namespace detail

void set_metrics_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------- handles --

void Gauge::set(double value) const {
  if (!metrics_enabled()) return;
  detail::gauge_slot(index).store(std::bit_cast<std::uint64_t>(value),
                                  std::memory_order_relaxed);
}

void Histogram::observe_enabled(double x) const {
  // Upper-inclusive buckets: the first bound >= x; past the last bound the
  // sample lands in the overflow slot.
  const double* end = bounds + num_bounds;
  const auto bucket =
      static_cast<std::uint32_t>(std::lower_bound(bounds, end, x) - bounds);
  detail::Shard& shard = detail::local_shard();
  shard.slots[first_slot + bucket].fetch_add(1, std::memory_order_relaxed);
  // The sum slot holds a bit-cast double. CAS-add instead of fetch_add:
  // the shard belongs to this thread, so the loop runs once in practice —
  // only a concurrent snapshot() ever reads it, and never writes.
  std::atomic<std::uint64_t>& sum_slot =
      shard.slots[first_slot + num_bounds + 1];
  std::uint64_t observed = sum_slot.load(std::memory_order_relaxed);
  while (!sum_slot.compare_exchange_weak(
      observed, std::bit_cast<std::uint64_t>(
                    std::bit_cast<double>(observed) + x),
      std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
}

void StatHandle::observe_enabled(double x) const {
  detail::Shard& shard = detail::local_shard();
  std::lock_guard<std::mutex> lock(shard.sample_mu);
  if (shard.stats.size() <= index) shard.stats.resize(index + 1);
  shard.stats[index].add(x);
}

void QuantileHandle::observe_enabled(double x) const {
  detail::Shard& shard = detail::local_shard();
  std::lock_guard<std::mutex> lock(shard.sample_mu);
  if (shard.quantiles.size() <= index) shard.quantiles.resize(index + 1);
  shard.quantiles[index].add(x);
}

// Snapshot serialization (write_json/read_json/merge/prometheus) lives in
// obs/snapshot.cpp — this file owns the registry and the hot-path handles.

// --------------------------------------------------------------- registry --

Registry& Registry::global() {
  // Leaked on purpose: thread_local shard leases release into the registry
  // during thread teardown, which can run after static destructors.
  static Registry* instance = new Registry();
  return *instance;
}

detail::Shard& Registry::acquire_shard() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_)
    if (!shard->in_use) {
      shard->in_use = true;
      return *shard;
    }
  shards_.push_back(std::make_unique<detail::Shard>());
  shards_.back()->in_use = true;
  return *shards_.back();
}

void Registry::release_shard(detail::Shard& shard) {
  std::lock_guard<std::mutex> lock(mu_);
  shard.in_use = false;  // values survive for snapshot() and reuse
}

const Registry::Entry& Registry::register_entry(const std::string& name,
                                                Kind kind,
                                                std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = entries_.find(name); it != entries_.end()) {
    if (it->second.kind != kind)
      throw std::invalid_argument("obs: instrument '" + name +
                                  "' re-registered as a different kind");
    if (kind == Kind::kHistogram && *it->second.bounds != bounds)
      throw std::invalid_argument("obs: histogram '" + name +
                                  "' re-registered with different bounds");
    return it->second;
  }

  Entry entry;
  entry.kind = kind;
  switch (kind) {
    case Kind::kCounter: {
      if (next_slot_ + 1 > detail::kMaxSlots)
        throw std::length_error("obs: counter slot budget exhausted");
      entry.index = next_slot_++;
      break;
    }
    case Kind::kGauge: {
      if (next_gauge_ + 1 > detail::kMaxGauges)
        throw std::length_error("obs: gauge budget exhausted");
      entry.index = next_gauge_++;
      break;
    }
    case Kind::kHistogram: {
      if (bounds.empty() ||
          !std::is_sorted(bounds.begin(), bounds.end()) ||
          std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end())
        throw std::invalid_argument(
            "obs: histogram '" + name +
            "' needs strictly increasing, non-empty bounds");
      const std::uint32_t slots =
          static_cast<std::uint32_t>(bounds.size()) + 2;  // + overflow + sum
      if (next_slot_ + slots > detail::kMaxSlots)
        throw std::length_error("obs: histogram slot budget exhausted");
      entry.index = next_slot_;
      next_slot_ += slots;
      entry.num_bounds = static_cast<std::uint32_t>(bounds.size());
      bounds_storage_.push_back(
          std::make_unique<const std::vector<double>>(std::move(bounds)));
      entry.bounds = bounds_storage_.back().get();
      break;
    }
    case Kind::kStat:
      entry.index = next_stat_++;
      break;
    case Kind::kQuantile:
      entry.index = next_quantile_++;
      break;
  }
  return entries_.emplace(name, entry).first->second;
}

Counter Registry::counter(const std::string& name) {
  return Counter{register_entry(name, Kind::kCounter).index};
}

Gauge Registry::gauge(const std::string& name) {
  return Gauge{register_entry(name, Kind::kGauge).index};
}

Histogram Registry::histogram(const std::string& name,
                              std::vector<double> bounds) {
  const Entry& entry =
      register_entry(name, Kind::kHistogram, std::move(bounds));
  return Histogram{entry.index, entry.num_bounds, entry.bounds->data()};
}

StatHandle Registry::stat(const std::string& name) {
  return StatHandle{register_entry(name, Kind::kStat).index};
}

QuantileHandle Registry::quantile(const std::string& name) {
  return QuantileHandle{register_entry(name, Kind::kQuantile).index};
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.unix_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::system_clock::now().time_since_epoch())
                     .count();

  // Sum the slot-backed instruments across every shard (live and released —
  // released shards still hold counts from threads that exited).
  const auto slot_sum = [this](std::uint32_t slot) {
    std::uint64_t sum = 0;
    for (const auto& shard : shards_)
      sum += shard->slots[slot].load(std::memory_order_relaxed);
    return sum;
  };

  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snap.counters[name] = slot_sum(entry.index);
        break;
      case Kind::kGauge:
        snap.gauges[name] = GaugeSnapshot{
            std::bit_cast<double>(
                gauges_[entry.index].load(std::memory_order_relaxed)),
            snap.unix_ns};
        break;
      case Kind::kHistogram: {
        HistogramSnapshot h;
        h.bounds = *entry.bounds;
        h.counts.resize(entry.num_bounds + 1);
        for (std::uint32_t b = 0; b <= entry.num_bounds; ++b)
          h.counts[b] = slot_sum(entry.index + b);
        for (const auto& shard : shards_)
          h.sum += std::bit_cast<double>(
              shard->slots[entry.index + entry.num_bounds + 1].load(
                  std::memory_order_relaxed));
        snap.histograms[name] = std::move(h);
        break;
      }
      case Kind::kStat: {
        RunningStats merged;
        for (const auto& shard : shards_) {
          std::lock_guard<std::mutex> slock(shard->sample_mu);
          if (entry.index < shard->stats.size())
            merged.merge(shard->stats[entry.index]);
        }
        snap.stats[name] = merged;
        break;
      }
      case Kind::kQuantile: {
        ReservoirQuantiles merged;
        for (const auto& shard : shards_) {
          std::lock_guard<std::mutex> slock(shard->sample_mu);
          if (entry.index < shard->quantiles.size())
            merged.merge(shard->quantiles[entry.index]);
        }
        snap.quantiles[name] = std::move(merged);
        break;
      }
    }
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    for (auto& slot : shard->slots)
      slot.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> slock(shard->sample_mu);
    shard->stats.clear();
    shard->quantiles.clear();
  }
  for (auto& gauge : gauges_) gauge.store(0, std::memory_order_relaxed);
}

}  // namespace hgc::obs
