// Snapshot serialization and fleet folding: exact JSON round-trip, the
// associative merge, and Prometheus text exposition. Kept apart from
// metrics.cpp so the registry's hot-path translation unit stays free of
// formatting code.
//
// Exactness contract: write_json emits 64-bit integers as plain integer
// tokens and doubles in std::to_chars shortest-round-trip form, so
// read_json(write_json(s)) == s to the bit — including counters past 2^53
// and the reservoir's splitmix64 state. Prometheus is lossier by design
// (quantile reservoirs are not in the exposition, gauge timestamps are
// millisecond-granular); read_prometheus reports what it had to drop.
#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "obs/json.hpp"

namespace hgc::obs {

std::uint64_t HistogramSnapshot::total() const {
  std::uint64_t n = 0;
  for (std::uint64_t c : counts) n += c;
  return n;
}

std::uint64_t Snapshot::counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double Snapshot::gauge(const std::string& name) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second.value;
}

// ------------------------------------------------------------ json writer --

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_json_double(std::ostream& os, double v) {
  // JSON has no Infinity/NaN; null keeps the file parseable (and reads
  // back as 0 — metrics values are finite in practice).
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  os.write(buf, result.ptr - buf);
}

double json_number(const JsonValue& v) {
  if (v.type == JsonValue::Type::kNull) return 0.0;  // non-finite placeholder
  if (v.type != JsonValue::Type::kNumber)
    throw std::runtime_error("snapshot: expected a number");
  return v.number;
}

}  // namespace

void Snapshot::write_json(std::ostream& os, bool compact) const {
  // Pretty output puts one instrument per line; compact (the recorder's
  // JSONL row format) collapses all whitespace. Same tokens either way.
  const char* nl = compact ? "" : "\n";
  const char* ind1 = compact ? "" : "  ";
  const char* ind2 = compact ? "" : "    ";
  const char* co = compact ? ":" : ": ";

  os << '{' << nl;
  os << ind1 << "\"snapshot_unix_ns\"" << co << unix_ns << ',' << nl;

  os << ind1 << "\"counters\"" << co << '{';
  const char* sep = "";
  for (const auto& [name, value] : counters) {
    os << sep << nl << ind2;
    write_json_string(os, name);
    os << co << value;
    sep = ",";
  }
  os << (counters.empty() ? "" : nl) << (counters.empty() ? "" : ind1) << "},"
     << nl;

  os << ind1 << "\"gauges\"" << co << '{';
  sep = "";
  for (const auto& [name, g] : gauges) {
    os << sep << nl << ind2;
    write_json_string(os, name);
    os << co << "{\"value\"" << co;
    write_json_double(os, g.value);
    os << (compact ? "," : ", ") << "\"ts_unix_ns\"" << co << g.ts_unix_ns
       << '}';
    sep = ",";
  }
  os << (gauges.empty() ? "" : nl) << (gauges.empty() ? "" : ind1) << "},"
     << nl;

  const char* isp = compact ? "," : ", ";

  os << ind1 << "\"histograms\"" << co << '{';
  sep = "";
  for (const auto& [name, h] : histograms) {
    os << sep << nl << ind2;
    write_json_string(os, name);
    os << co << "{\"bounds\"" << co << '[';
    const char* isep = "";
    for (double b : h.bounds) {
      os << isep;
      write_json_double(os, b);
      isep = isp;
    }
    os << "]" << isp << "\"counts\"" << co << '[';
    isep = "";
    for (std::uint64_t c : h.counts) {
      os << isep << c;
      isep = isp;
    }
    os << "]" << isp << "\"sum\"" << co;
    write_json_double(os, h.sum);
    os << isp << "\"total\"" << co << h.total() << '}';
    sep = ",";
  }
  os << (histograms.empty() ? "" : nl) << (histograms.empty() ? "" : ind1)
     << "}," << nl;

  os << ind1 << "\"stats\"" << co << '{';
  sep = "";
  for (const auto& [name, s] : stats) {
    os << sep << nl << ind2;
    write_json_string(os, name);
    os << co << "{\"count\"" << co << s.count() << isp << "\"mean\"" << co;
    write_json_double(os, s.mean());
    os << isp << "\"m2\"" << co;
    write_json_double(os, s.m2());
    os << isp << "\"min\"" << co;
    write_json_double(os, s.min());
    os << isp << "\"max\"" << co;
    write_json_double(os, s.max());
    // Derived, ignored by read_json — kept for humans reading the file.
    os << isp << "\"stddev\"" << co;
    write_json_double(os, s.stddev());
    os << '}';
    sep = ",";
  }
  os << (stats.empty() ? "" : nl) << (stats.empty() ? "" : ind1) << "},"
     << nl;

  os << ind1 << "\"quantiles\"" << co << '{';
  sep = "";
  for (const auto& [name, q] : quantiles) {
    os << sep << nl << ind2;
    write_json_string(os, name);
    os << co << "{\"count\"" << co << q.count() << isp << "\"capacity\"" << co
       << q.capacity() << isp << "\"state\"" << co << q.rng_state() << isp
       << "\"sample\"" << co << '[';
    const char* isep = "";
    for (double x : q.retained()) {
      os << isep;
      write_json_double(os, x);
      isep = isp;
    }
    os << ']';
    if (q.count() > 0) {
      // Derived, ignored by read_json.
      os << isp << "\"p50\"" << co;
      write_json_double(os, q.p50());
      os << isp << "\"p95\"" << co;
      write_json_double(os, q.p95());
      os << isp << "\"p99\"" << co;
      write_json_double(os, q.p99());
    }
    os << '}';
    sep = ",";
  }
  os << (quantiles.empty() ? "" : nl) << (quantiles.empty() ? "" : ind1)
     << '}' << nl;

  os << '}';
  if (!compact) os << '\n';
}

// ------------------------------------------------------------ json reader --

Snapshot Snapshot::read_json(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  return read_json(buf.str());
}

Snapshot Snapshot::read_json(const std::string& text) {
  const JsonValue root = parse_json(text);
  if (root.type != JsonValue::Type::kObject)
    throw std::runtime_error("snapshot: top level must be an object");

  Snapshot s;
  if (root.has("snapshot_unix_ns"))
    s.unix_ns = root.at("snapshot_unix_ns").as_i64();

  if (root.has("counters"))
    for (const auto& [name, v] : root.at("counters").object)
      s.counters[name] = v.as_u64();

  if (root.has("gauges"))
    for (const auto& [name, v] : root.at("gauges").object) {
      if (v.type == JsonValue::Type::kObject) {
        s.gauges[name] = GaugeSnapshot{json_number(v.at("value")),
                                       v.at("ts_unix_ns").as_i64()};
      } else {
        // PR 6 format: gauges were bare numbers with no snapshot time.
        s.gauges[name] = GaugeSnapshot{json_number(v), 0};
      }
    }

  if (root.has("histograms"))
    for (const auto& [name, v] : root.at("histograms").object) {
      HistogramSnapshot h;
      for (const JsonValue& b : v.at("bounds").array)
        h.bounds.push_back(json_number(b));
      for (const JsonValue& c : v.at("counts").array)
        h.counts.push_back(c.as_u64());
      if (h.counts.size() != h.bounds.size() + 1)
        throw std::runtime_error("snapshot: histogram '" + name +
                                 "' counts/bounds size mismatch");
      h.sum = v.has("sum") ? json_number(v.at("sum")) : 0.0;  // PR 6: no sum
      s.histograms[name] = std::move(h);
    }

  if (root.has("stats"))
    for (const auto& [name, v] : root.at("stats").object) {
      const std::uint64_t count = v.at("count").as_u64();
      double m2 = 0.0;
      if (v.has("m2")) {
        m2 = json_number(v.at("m2"));
      } else if (v.has("stddev") && count > 1) {
        // PR 6 format carried only the derived stddev; invert it. Lossy to
        // rounding, which is the best a legacy file permits.
        const double sd = json_number(v.at("stddev"));
        m2 = sd * sd * static_cast<double>(count - 1);
      }
      s.stats[name] = RunningStats::from_parts(
          count, count ? json_number(v.at("mean")) : 0.0, m2,
          count ? json_number(v.at("min")) : 0.0,
          count ? json_number(v.at("max")) : 0.0);
    }

  if (root.has("quantiles"))
    for (const auto& [name, v] : root.at("quantiles").object) {
      const std::uint64_t count = v.at("count").as_u64();
      if (v.has("capacity")) {
        std::vector<double> sample;
        for (const JsonValue& x : v.at("sample").array)
          sample.push_back(json_number(x));
        s.quantiles.emplace(
            name, ReservoirQuantiles::from_parts(v.at("capacity").as_u64(),
                                                 v.at("state").as_u64(), count,
                                                 std::move(sample)));
      } else {
        // PR 6 format kept only count + derived percentiles: the reservoir
        // is unrecoverable, so restore the count over an empty sample.
        s.quantiles.emplace(name, ReservoirQuantiles::from_parts(
                                      1024, 0x5eed, count, {}));
      }
    }

  return s;
}

// ------------------------------------------------------------------ merge --

void Snapshot::merge(const Snapshot& other) {
  unix_ns = std::max(unix_ns, other.unix_ns);

  for (const auto& [name, v] : other.counters) counters[name] += v;

  for (const auto& [name, g] : other.gauges) {
    const auto [it, inserted] = gauges.emplace(name, g);
    if (inserted) continue;
    // Last-write-wins by snapshot time; ties break toward the larger value
    // so the resolution is a total order and merge stays commutative.
    if (std::tie(g.ts_unix_ns, g.value) >
        std::tie(it->second.ts_unix_ns, it->second.value))
      it->second = g;
  }

  for (const auto& [name, h] : other.histograms) {
    const auto [it, inserted] = histograms.emplace(name, h);
    if (inserted) continue;
    if (it->second.bounds != h.bounds)
      throw std::invalid_argument("snapshot: histogram '" + name +
                                  "' merged with different bucket bounds");
    for (std::size_t b = 0; b < h.counts.size(); ++b)
      it->second.counts[b] += h.counts[b];
    it->second.sum += h.sum;
  }

  for (const auto& [name, st] : other.stats) stats[name].merge(st);

  for (const auto& [name, q] : other.quantiles) {
    // emplace a copy rather than merging into a default-constructed
    // reservoir: the copy preserves the operand's capacity and stream state.
    const auto [it, inserted] = quantiles.emplace(name, q);
    if (!inserted) it->second.merge(q);
  }
}

// ------------------------------------------------------------- prometheus --

namespace {

/// `decode_cache.hits` -> `hgc_decode_cache_hits`.
std::string prom_name(const std::string& dotted) {
  std::string out = "hgc_";
  for (char c : dotted)
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  return out;
}

void prom_value(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
    return;
  }
  if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
    return;
  }
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  os.write(buf, result.ptr - buf);
}

double parse_prom_double(const std::string& raw) {
  if (raw == "+Inf" || raw == "Inf")
    return std::numeric_limits<double>::infinity();
  if (raw == "-Inf") return -std::numeric_limits<double>::infinity();
  if (raw == "NaN") return std::numeric_limits<double>::quiet_NaN();
  double v = 0.0;
  const auto result = std::from_chars(raw.data(), raw.data() + raw.size(), v);
  if (result.ec != std::errc{} || result.ptr != raw.data() + raw.size())
    throw std::runtime_error("prometheus: bad float: " + raw);
  return v;
}

std::uint64_t parse_prom_u64(const std::string& raw) {
  std::uint64_t v = 0;
  const auto result = std::from_chars(raw.data(), raw.data() + raw.size(), v);
  if (result.ec != std::errc{} || result.ptr != raw.data() + raw.size())
    throw std::runtime_error("prometheus: bad integer: " + raw);
  return v;
}

std::int64_t parse_prom_i64(const std::string& raw) {
  std::int64_t v = 0;
  const auto result = std::from_chars(raw.data(), raw.data() + raw.size(), v);
  if (result.ec != std::errc{} || result.ptr != raw.data() + raw.size())
    throw std::runtime_error("prometheus: bad integer: " + raw);
  return v;
}

struct PromSample {
  std::map<std::string, std::string> labels;
  std::string value;  ///< raw token, parsed per-kind for exactness
  std::string ts;     ///< optional trailing timestamp (milliseconds)
};

}  // namespace

void Snapshot::write_prometheus(std::ostream& os) const {
  // `# HELP` carries the original dotted name (plus an `hgc:` marker for
  // families that need one) so read_prometheus can reverse the mapping.
  if (unix_ns != 0) {
    os << "# HELP hgc_snapshot_unix_ns snapshot wall time, unix ns\n"
          "# TYPE hgc_snapshot_unix_ns gauge\n"
          "hgc_snapshot_unix_ns "
       << unix_ns << "\n";
  }

  for (const auto& [name, v] : counters) {
    const std::string f = prom_name(name) + "_total";
    os << "# HELP " << f << ' ' << name << "\n# TYPE " << f << " counter\n"
       << f << ' ' << v << "\n";
  }

  for (const auto& [name, g] : gauges) {
    const std::string f = prom_name(name);
    os << "# HELP " << f << ' ' << name << "\n# TYPE " << f << " gauge\n"
       << f << ' ';
    prom_value(os, g.value);
    if (g.ts_unix_ns != 0) os << ' ' << g.ts_unix_ns / 1'000'000;
    os << "\n";
  }

  for (const auto& [name, h] : histograms) {
    const std::string f = prom_name(name);
    os << "# HELP " << f << ' ' << name << "\n# TYPE " << f << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      cum += h.counts[b];
      os << f << "_bucket{le=\"";
      prom_value(os, h.bounds[b]);
      os << "\"} " << cum << "\n";
    }
    cum += h.counts.back();
    os << f << "_bucket{le=\"+Inf\"} " << cum << "\n";
    os << f << "_sum ";
    prom_value(os, h.sum);
    os << "\n" << f << "_count " << cum << "\n";
  }

  for (const auto& [name, s] : stats) {
    const std::string f = prom_name(name);
    os << "# HELP " << f << ' ' << name << " hgc:stat\n# TYPE " << f
       << " summary\n";
    os << f << "_sum ";
    prom_value(os, s.sum());
    os << "\n" << f << "_count " << s.count() << "\n";
    const std::pair<const char*, double> parts[] = {
        {"_mean", s.mean()}, {"_min", s.min()},
        {"_max", s.max()},   {"_stddev", s.stddev()}};
    for (const auto& [suffix, value] : parts) {
      os << "# HELP " << f << suffix << ' ' << name
         << " hgc:stat-part\n# TYPE " << f << suffix << " gauge\n"
         << f << suffix << ' ';
      prom_value(os, value);
      os << "\n";
    }
  }

  for (const auto& [name, q] : quantiles) {
    const std::string f = prom_name(name);
    os << "# HELP " << f << ' ' << name << " hgc:quantile\n# TYPE " << f
       << " summary\n";
    if (q.count() > 0) {
      const std::pair<const char*, double> qs[] = {
          {"0.5", q.p50()}, {"0.95", q.p95()}, {"0.99", q.p99()}};
      for (const auto& [label, value] : qs) {
        os << f << "{quantile=\"" << label << "\"} ";
        prom_value(os, value);
        os << "\n";
      }
    }
    os << f << "_count " << q.count() << "\n";
  }
}

Snapshot Snapshot::read_prometheus(std::istream& is,
                                   std::vector<std::string>* skipped) {
  std::map<std::string, std::vector<PromSample>> samples;
  std::map<std::string, std::string> help_text, type_of;
  std::vector<std::string> order;  // families, in `# TYPE` line order

  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kw, fam;
      ls >> hash >> kw >> fam;
      if (kw == "HELP") {
        std::string rest;
        std::getline(ls, rest);
        if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
        help_text[fam] = rest;
      } else if (kw == "TYPE") {
        std::string t;
        ls >> t;
        type_of[fam] = t;
        order.push_back(fam);
      }
      continue;
    }

    const std::size_t brace = line.find('{');
    const std::size_t space = line.find(' ');
    if (space == std::string::npos)
      throw std::runtime_error("prometheus: malformed line: " + line);
    PromSample sample;
    std::string metric;
    std::size_t rest_pos;
    if (brace != std::string::npos && brace < space) {
      metric = line.substr(0, brace);
      const std::size_t close = line.find('}', brace);
      if (close == std::string::npos)
        throw std::runtime_error("prometheus: unterminated labels: " + line);
      std::string labels = line.substr(brace + 1, close - brace - 1);
      std::istringstream lab(labels);
      std::string item;
      while (std::getline(lab, item, ',')) {
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) continue;
        std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        if (val.size() >= 2 && val.front() == '"' && val.back() == '"')
          val = val.substr(1, val.size() - 2);
        sample.labels[key] = val;
      }
      rest_pos = close + 1;
    } else {
      metric = line.substr(0, space);
      rest_pos = space;
    }
    std::istringstream rs(line.substr(rest_pos));
    rs >> sample.value >> sample.ts;
    samples[metric].push_back(std::move(sample));
  }

  const auto first = [&samples](const std::string& metric) -> PromSample& {
    const auto it = samples.find(metric);
    if (it == samples.end() || it->second.empty())
      throw std::runtime_error("prometheus: missing series: " + metric);
    return it->second.front();
  };

  Snapshot snap;
  for (const std::string& fam : order) {
    if (fam == "hgc_snapshot_unix_ns") {
      snap.unix_ns = parse_prom_i64(first(fam).value);
      continue;
    }
    // HELP text is "<original.dotted.name> [hgc:marker]".
    std::string orig = help_text[fam], marker;
    if (const std::size_t sp = orig.rfind(' '); sp != std::string::npos &&
        orig.compare(sp + 1, 4, "hgc:") == 0) {
      marker = orig.substr(sp + 1);
      orig.resize(sp);
    }
    if (orig.empty())
      throw std::runtime_error("prometheus: family '" + fam +
                               "' has no HELP line with its original name");
    const std::string& type = type_of[fam];

    if (type == "counter") {
      snap.counters[orig] = parse_prom_u64(first(fam).value);
    } else if (type == "gauge") {
      if (marker == "hgc:stat-part") continue;  // folded into its stat below
      const PromSample& sample = first(fam);
      snap.gauges[orig] = GaugeSnapshot{
          parse_prom_double(sample.value),
          sample.ts.empty() ? 0 : parse_prom_i64(sample.ts) * 1'000'000};
    } else if (type == "histogram") {
      HistogramSnapshot h;
      std::uint64_t prev = 0;
      const auto it = samples.find(fam + "_bucket");
      if (it == samples.end())
        throw std::runtime_error("prometheus: histogram '" + fam +
                                 "' has no _bucket series");
      for (const PromSample& bucket : it->second) {
        const auto le = bucket.labels.find("le");
        if (le == bucket.labels.end())
          throw std::runtime_error("prometheus: bucket without le label");
        const std::uint64_t cum = parse_prom_u64(bucket.value);
        if (cum < prev)
          throw std::runtime_error("prometheus: non-cumulative buckets in " +
                                   fam);
        h.counts.push_back(cum - prev);
        prev = cum;
        if (le->second != "+Inf") h.bounds.push_back(
            parse_prom_double(le->second));
      }
      if (h.counts.size() != h.bounds.size() + 1)
        throw std::runtime_error("prometheus: histogram '" + fam +
                                 "' is missing its +Inf bucket");
      h.sum = parse_prom_double(first(fam + "_sum").value);
      snap.histograms[orig] = std::move(h);
    } else if (type == "summary") {
      if (marker == "hgc:quantile") {
        // The reservoir's state is not in the exposition; report the loss
        // instead of fabricating an estimator.
        if (skipped) skipped->push_back(orig);
        continue;
      }
      const std::uint64_t count = parse_prom_u64(first(fam + "_count").value);
      const double mean = parse_prom_double(first(fam + "_mean").value);
      const double sd = parse_prom_double(first(fam + "_stddev").value);
      snap.stats[orig] = RunningStats::from_parts(
          count, mean,
          count > 1 ? sd * sd * static_cast<double>(count - 1) : 0.0,
          parse_prom_double(first(fam + "_min").value),
          parse_prom_double(first(fam + "_max").value));
    }
  }
  return snap;
}

}  // namespace hgc::obs
