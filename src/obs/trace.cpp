#include "obs/trace.hpp"

#include <charconv>
#include <chrono>
#include <cmath>
#include <iostream>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace hgc::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/// Per-buffer cap: ~1M events per thread, far above any smoke-sized trace;
/// beyond it we count drops rather than OOM a million-cell sweep someone
/// traced by accident. Settable (set_trace_buffer_capacity) so tests can
/// exercise the drop path without a million-event warmup.
std::atomic<std::size_t> g_buffer_cap{1 << 20};

/// Arms the one-time incomplete-trace warning write_json prints to stderr;
/// reset() re-arms it alongside clearing the drop counts it reports.
std::atomic<bool> g_drop_warned{false};

struct TraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
  std::uint32_t id = 0;  ///< stable row id for wall events
  bool in_use = false;   ///< guarded by the tracer state mutex
};

/// File-local tracer state, leaked for the same reason as the metrics
/// registry: thread_local buffer leases release during thread teardown,
/// which can outlive static destructors.
struct TracerState {
  std::mutex mu;  ///< guards the buffer list
  std::vector<std::unique_ptr<TraceBuffer>> buffers;
  std::atomic<std::int64_t> epoch_ns{0};

  TraceBuffer& acquire() {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& buffer : buffers)
      if (!buffer->in_use) {
        buffer->in_use = true;
        return *buffer;
      }
    buffers.push_back(std::make_unique<TraceBuffer>());
    buffers.back()->in_use = true;
    buffers.back()->id = static_cast<std::uint32_t>(buffers.size() - 1);
    return *buffers.back();
  }

  void release(TraceBuffer& buffer) {
    std::lock_guard<std::mutex> lock(mu);
    buffer.in_use = false;  // events stay for write_json
  }
};

TracerState& state() {
  static TracerState* instance = new TracerState();
  return *instance;
}

struct BufferLease {
  TraceBuffer* buffer = nullptr;
  ~BufferLease() {
    if (buffer) state().release(*buffer);
  }
};

thread_local BufferLease t_buffer_lease;

TraceBuffer& local_buffer() {
  if (!t_buffer_lease.buffer) t_buffer_lease.buffer = &state().acquire();
  return *t_buffer_lease.buffer;
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();
  return *instance;
}

void set_trace_enabled(bool on) {
  // Re-anchor the wall epoch on enable so traces start near t = 0.
  if (on) state().epoch_ns.store(steady_now_ns(), std::memory_order_relaxed);
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

void set_trace_buffer_capacity(std::size_t cap) {
  g_buffer_cap.store(cap, std::memory_order_relaxed);
}

double Tracer::now_us() const {
  const std::int64_t epoch = state().epoch_ns.load(std::memory_order_relaxed);
  return static_cast<double>(steady_now_ns() - epoch) * 1e-3;
}

void Tracer::record(TraceEvent event) {
  TraceBuffer& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (!event.virtual_clock) event.row = buffer.id;
  if (buffer.events.size() >= g_buffer_cap.load(std::memory_order_relaxed)) {
    ++buffer.dropped;
    if (metrics_enabled()) {
      // Cross-posted to the metrics registry so a fleet merge can total
      // trace loss without reading every trace file.
      static const Counter dropped_events =
          Registry::global().counter("obs.trace.dropped_events");
      dropped_events.add();
    }
    return;
  }
  buffer.events.push_back(event);
}

void Tracer::reset() {
  TracerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  for (const auto& buffer : s.buffers) {
    std::lock_guard<std::mutex> block(buffer->mu);
    buffer->events.clear();
    buffer->dropped = 0;
  }
  g_drop_warned.store(false, std::memory_order_relaxed);
}

std::uint64_t Tracer::dropped() const {
  TracerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::uint64_t total = 0;
  for (const auto& buffer : s.buffers) {
    std::lock_guard<std::mutex> block(buffer->mu);
    total += buffer->dropped;
  }
  return total;
}

namespace {

constexpr std::uint32_t kWallPid = 1;
/// Virtual track t maps to pid 1 + t (tracks start at 1, so pids 2, 3, ...)
/// and the wall process keeps pid 1 to itself.
constexpr std::uint32_t kVirtualPidBase = 1;

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_json_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "0";
    return;
  }
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  os.write(buf, result.ptr - buf);
}

void write_metadata(std::ostream& os, const char* which, std::uint32_t pid,
                    std::uint32_t tid, bool with_tid, const std::string& name,
                    const char*& sep) {
  os << sep << "\n  {\"ph\": \"M\", \"name\": \"" << which
     << "\", \"pid\": " << pid;
  if (with_tid) os << ", \"tid\": " << tid;
  os << ", \"args\": {\"name\": ";
  write_json_string(os, name);
  os << "}}";
  sep = ",";
}

}  // namespace

void Tracer::write_json(std::ostream& os) const {
  TracerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);

  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  const char* sep = "";

  // Name the processes/threads first so the viewer labels the wall rows by
  // pool thread and the virtual rows master / worker w.
  std::set<std::uint32_t> wall_rows;
  std::set<std::pair<std::uint32_t, std::uint32_t>> virtual_rows;
  std::uint64_t total_dropped = 0;
  for (const auto& buffer : s.buffers) {
    std::lock_guard<std::mutex> block(buffer->mu);
    total_dropped += buffer->dropped;
    for (const TraceEvent& event : buffer->events) {
      if (event.virtual_clock)
        virtual_rows.insert({event.track, event.row});
      else
        wall_rows.insert(event.row);
    }
  }
  if (!wall_rows.empty())
    write_metadata(os, "process_name", kWallPid, 0, false,
                   "wall clock (sweep execution)", sep);
  for (std::uint32_t row : wall_rows)
    write_metadata(os, "thread_name", kWallPid, row, true,
                   "thread " + std::to_string(row), sep);
  std::set<std::uint32_t> named_tracks;
  for (const auto& [track, row] : virtual_rows) {
    if (named_tracks.insert(track).second)
      write_metadata(os, "process_name", kVirtualPidBase + track, 0, false,
                     "virtual clock (cell " + std::to_string(track - 1) + ")",
                     sep);
    write_metadata(os, "thread_name", kVirtualPidBase + track, row, true,
                   row == 0 ? std::string("master")
                            : "worker " + std::to_string(row - 1),
                   sep);
  }

  for (const auto& buffer : s.buffers) {
    std::lock_guard<std::mutex> block(buffer->mu);
    for (const TraceEvent& event : buffer->events) {
      const std::uint32_t pid =
          event.virtual_clock ? kVirtualPidBase + event.track : kWallPid;
      os << sep << "\n  {\"ph\": \""
         << (event.phase == TraceEvent::Phase::kComplete ? "X" : "i")
         << "\", \"name\": ";
      write_json_string(os, event.name);
      os << ", \"cat\": ";
      write_json_string(os, event.cat);
      os << ", \"pid\": " << pid << ", \"tid\": " << event.row
         << ", \"ts\": ";
      write_json_double(os, event.ts_us);
      if (event.phase == TraceEvent::Phase::kComplete) {
        os << ", \"dur\": ";
        write_json_double(os, event.dur_us);
      } else {
        os << ", \"s\": \"t\"";
      }
      if (event.arg != kNoTraceArg)
        os << ", \"args\": {\"v\": " << event.arg << "}";
      os << "}";
      sep = ",";
    }
  }
  os << "\n], \"droppedEvents\": " << total_dropped << "}\n";

  if (total_dropped > 0 &&
      !g_drop_warned.exchange(true, std::memory_order_relaxed)) {
    std::cerr << "hgc: warning: trace buffer overflow — " << total_dropped
              << " event(s) dropped; the trace file is incomplete (raise the "
                 "buffer cap with set_trace_buffer_capacity)\n";
  }
}

// ------------------------------------------------------------- TraceScope --

void TraceScope::begin(const char* name, const char* cat, std::int64_t arg) {
  name_ = name;
  cat_ = cat;
  arg_ = arg;
  start_us_ = Tracer::global().now_us();
}

void TraceScope::end() {
  TraceEvent event;
  event.name = name_;
  event.cat = cat_;
  event.phase = TraceEvent::Phase::kComplete;
  event.virtual_clock = false;
  event.ts_us = start_us_;
  event.dur_us = Tracer::global().now_us() - start_us_;
  event.arg = arg_;
  Tracer::global().record(event);
}

}  // namespace hgc::obs
