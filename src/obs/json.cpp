#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace hgc::obs {

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto it = object.find(key);
  if (it == object.end())
    throw std::runtime_error("json: missing key: " + key);
  return it->second;
}

std::uint64_t JsonValue::as_u64() const {
  if (type != Type::kNumber)
    throw std::runtime_error("json: expected a number, got raw '" + raw + "'");
  std::uint64_t value = 0;
  const auto result =
      std::from_chars(raw.data(), raw.data() + raw.size(), value);
  if (result.ec != std::errc{} || result.ptr != raw.data() + raw.size())
    throw std::runtime_error("json: not an exact uint64: " + raw);
  return value;
}

std::int64_t JsonValue::as_i64() const {
  if (type != Type::kNumber)
    throw std::runtime_error("json: expected a number, got raw '" + raw + "'");
  std::int64_t value = 0;
  const auto result =
      std::from_chars(raw.data(), raw.data() + raw.size(), value);
  if (result.ec != std::errc{} || result.ptr != raw.data() + raw.size())
    throw std::runtime_error("json: not an exact int64: " + raw);
  return value;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size())
      throw std::runtime_error("json: trailing garbage at byte " +
                               std::to_string(pos_));
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  char peek() {
    skip_ws();
    if (pos_ >= s_.size())
      throw std::runtime_error("json: unexpected end of input");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c)
      throw std::runtime_error(std::string("json: expected '") + c +
                               "' at byte " + std::to_string(pos_));
    ++pos_;
  }
  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return literal("true", bool_value(true));
      case 'f': return literal("false", bool_value(false));
      case 'n': return literal("null", JsonValue{});
      default: return number();
    }
  }
  static JsonValue bool_value(bool b) {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    v.boolean = b;
    return v;
  }
  JsonValue literal(const std::string& word, JsonValue v) {
    if (s_.compare(pos_, word.size(), word) != 0)
      throw std::runtime_error("json: bad literal at byte " +
                               std::to_string(pos_));
    pos_ += word.size();
    return v;
  }
  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValue key = string_value();
      expect(':');
      v.object[key.string] = value();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }
  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }
  JsonValue string_value() {
    expect('"');
    JsonValue v;
    v.type = JsonValue::Type::kString;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) throw std::runtime_error("json: bad escape");
        char e = s_[pos_++];
        switch (e) {
          case 'n': v.string += '\n'; break;
          case 't': v.string += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size())
              throw std::runtime_error("json: bad \\u escape");
            unsigned code = 0;
            const auto result = std::from_chars(
                s_.data() + pos_, s_.data() + pos_ + 4, code, 16);
            if (result.ec != std::errc{} || result.ptr != s_.data() + pos_ + 4)
              throw std::runtime_error("json: bad \\u escape");
            pos_ += 4;
            // Our emitters only escape control bytes; anything else decodes
            // to '?' — callers never inspect escaped payloads.
            v.string += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: v.string += e;
        }
      } else {
        v.string += c;
      }
    }
    expect('"');
    return v;
  }
  JsonValue number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start)
      throw std::runtime_error("json: bad token at byte " +
                               std::to_string(pos_));
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.raw = s_.substr(start, pos_ - start);
    const auto result =
        std::from_chars(v.raw.data(), v.raw.data() + v.raw.size(), v.number);
    if (result.ec != std::errc{} || result.ptr != v.raw.data() + v.raw.size())
      throw std::runtime_error("json: bad number: " + v.raw);
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) { return Parser(text).parse(); }

}  // namespace hgc::obs
