// Minimal JSON reader for the observability layer.
//
// Promoted out of tests/test_obs.cpp once snapshots grew a read path: the
// same parser that proved trace files well-formed now ingests metrics
// snapshots for Snapshot::read_json, hgc_obs, and the recorder's JSONL.
// Scope is deliberately small — parse a complete document into a tree of
// values; no streaming, no writer (each emitter keeps its own, because the
// byte-stable output formats are contracts of their owners).
//
// Exactness: JSON numbers are kept both as a double and as the raw token
// text. 64-bit counters and splitmix64 reservoir states do not fit a
// double past 2^53, so integer reads (as_u64 / as_i64) reparse the raw
// text and round-trip all 64 bits.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hgc::obs {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string raw;  ///< numbers only: the exact source token
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  /// Object member access; throws std::runtime_error naming a missing key.
  const JsonValue& at(const std::string& key) const;
  bool has(const std::string& key) const { return object.count(key) > 0; }

  /// Exact 64-bit reads from the raw token (throws on non-numbers, signs
  /// that do not fit, or fractional tokens).
  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
};

/// Parse one complete JSON document; throws std::runtime_error with the
/// offending byte offset on malformed input.
JsonValue parse_json(const std::string& text);

}  // namespace hgc::obs
