// Background metrics sampler — the time axis of the observability layer.
//
// Registry::snapshot() is a point-in-time view; the Recorder turns it into
// a series by sampling on its own thread at a fixed interval. Samples land
// in a fixed-capacity ring buffer (oldest overwritten — steady memory no
// matter how long the run) and, optionally, append to a JSONL stream (one
// compact Snapshot per line) for offline rate analysis with hgc_obs.
//
// Isolation contract: the recorder only ever *reads* the registry — it
// takes snapshots on its own thread and touches nothing the cells write.
// A run with the recorder on produces byte-identical ResultTable output to
// a run without it, at any thread count (CI diffs this).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace hgc::obs {

struct RecorderOptions {
  /// Seconds between samples. Must be > 0 to start().
  double interval_seconds = 1.0;
  /// Ring capacity in samples; the default keeps ten minutes at 1 Hz.
  std::size_t ring_capacity = 600;
  /// Optional sink: one compact Snapshot JSON per line, appended at each
  /// sample. Not owned; must outlive stop(). Unlike the ring this keeps
  /// every sample, so long runs should point it at a file.
  std::ostream* jsonl = nullptr;
};

class Recorder {
 public:
  explicit Recorder(RecorderOptions opts);
  ~Recorder();  ///< stops (taking the final sample) if still running

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Launch the sampler thread. No-op when already running.
  void start();

  /// Take one final sample (so short runs always record something), then
  /// join the thread. No-op when not running.
  void stop();

  /// The ring's contents, oldest first. Callable any time; while running
  /// it returns a consistent copy under the sampler's lock.
  std::vector<Snapshot> samples() const;

 private:
  void sample_once(std::unique_lock<std::mutex>& lock);
  void run();

  RecorderOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stopping_ = false;
  std::vector<Snapshot> ring_;   ///< ring storage, capacity opts_.ring_capacity
  std::size_t ring_next_ = 0;    ///< next write slot once the ring is full
  std::thread thread_;
};

}  // namespace hgc::obs
