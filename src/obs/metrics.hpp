// Process-wide metrics registry — the counting half of the observability
// layer (the tracing half lives in obs/trace.hpp).
//
// Design constraints, in priority order:
//   1. Near-zero disabled cost. Every hot-path site compiles to one relaxed
//      atomic load and a predictable branch when metrics are off
//      (`metrics_enabled()` below); the sweep's decode hot path must not pay
//      for instrumentation it is not using (BM_ObsOverhead* pins this).
//   2. Lock-free enabled hot path. Increments land in per-thread shards of
//      relaxed atomics — no mutex, no contention, no ordering that a solve
//      loop would stall on. Aggregation happens only in snapshot().
//   3. Zero behavior change. Nothing here ever feeds back into results:
//      counters are out-of-band by construction, exactly like the cache
//      hit/miss stats they replace.
//
// Handle model: a site registers once (function-local static) and keeps a
// trivially-copyable handle whose increment indexes a fixed slot:
//
//   if (obs::metrics_enabled()) {
//     static const obs::Counter hits =
//         obs::Registry::global().counter("decode_cache.hits");
//     hits.add();
//   }
//
// The registry is a leaked global singleton: thread_local shard leases may
// be destroyed after main() returns, so the registry must outlive every
// static-destruction order the standard allows. Shards released by exiting
// threads keep their values (counters are cumulative) and are recycled for
// new threads, so a pool that is torn down and rebuilt never loses counts
// and never grows the shard list unboundedly.
//
// Five instrument kinds:
//   * Counter    — monotonically increasing uint64 (hits, misses, rounds).
//   * Gauge      — last-write-wins double (cells.total; registry-global,
//                  not sharded — gauges are set from one site, rarely).
//   * Histogram  — fixed upper-inclusive bucket bounds + overflow bucket
//                  (solve latencies; bucket = first bound >= x).
//   * Stat       — RunningStats (mean/min/max/stddev) per shard, merged on
//                  snapshot via RunningStats::merge.
//   * Quantile   — ReservoirQuantiles per shard, merged on snapshot via
//                  its deterministic merge.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace hgc::obs {

namespace detail {

/// Global enable gate; read relaxed on every instrumented site.
extern std::atomic<bool> g_metrics_enabled;

/// Shard slot budget. 1024 counters/histogram-buckets is ~20x the current
/// instrumentation; registration throws past it rather than corrupting.
inline constexpr std::size_t kMaxSlots = 1024;
inline constexpr std::size_t kMaxGauges = 64;

/// One thread's slice of every counter and histogram bucket. Slots are
/// relaxed atomics so snapshot() can read them while the owner increments;
/// the sample instruments (stats/quantiles) are mutex-guarded per shard —
/// uncontended in steady state, only snapshot() ever takes them from
/// another thread.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxSlots> slots{};
  std::mutex sample_mu;
  std::vector<RunningStats> stats;               // indexed by stat id
  std::vector<ReservoirQuantiles> quantiles;     // indexed by quantile id
  bool in_use = false;                           // guarded by registry mutex
};

/// The calling thread's shard, acquiring (or recycling) one on first use.
Shard& local_shard();

/// Registry-global gauge storage (bit-cast doubles).
std::atomic<std::uint64_t>& gauge_slot(std::uint32_t index);

}  // namespace detail

/// True when metrics collection is on. Relaxed: a site that races an
/// enable/disable transition may record or skip one event, which is fine —
/// metrics are diagnostics, and the contract is only that the *disabled*
/// steady state costs one load + branch.
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on);

/// Monotonic counter handle. Trivially copyable; cache in a function-local
/// static and call add() on the hot path.
struct Counter {
  std::uint32_t slot = 0;
  void add(std::uint64_t n = 1) const {
    if (!metrics_enabled()) return;
    detail::local_shard().slots[slot].fetch_add(n,
                                                std::memory_order_relaxed);
  }
};

/// Last-write-wins double gauge (registry-global, not per-thread).
struct Gauge {
  std::uint32_t index = 0;
  void set(double value) const;
};

/// Fixed-bucket histogram handle. Bucket b counts samples with
/// x <= bounds[b] (upper-inclusive); the final slot is the overflow bucket
/// for x > bounds.back(). One extra slot accumulates the sum of observed
/// values (bit-cast double, CAS-added — uncontended on the per-thread
/// shard) so the Prometheus exposition can emit the standard `_sum` series.
struct Histogram {
  std::uint32_t first_slot = 0;
  std::uint32_t num_bounds = 0;
  const double* bounds = nullptr;  ///< owned by the (leaked) registry
  void observe(double x) const {
    if (!metrics_enabled()) return;
    observe_enabled(x);
  }
  void observe_enabled(double x) const;
};

/// RunningStats handle (mean/variance/min/max across all threads).
struct StatHandle {
  std::uint32_t index = 0;
  void observe(double x) const {
    if (!metrics_enabled()) return;
    observe_enabled(x);
  }
  void observe_enabled(double x) const;
};

/// ReservoirQuantiles handle (p50/p95/p99 across all threads).
struct QuantileHandle {
  std::uint32_t index = 0;
  void observe(double x) const {
    if (!metrics_enabled()) return;
    observe_enabled(x);
  }
  void observe_enabled(double x) const;
};

/// A merged, point-in-time view of every registered instrument.
struct HistogramSnapshot {
  std::vector<double> bounds;        ///< upper-inclusive bucket bounds
  std::vector<std::uint64_t> counts; ///< bounds.size() + 1 (overflow last)
  double sum = 0.0;                  ///< sum of observed values
  std::uint64_t total() const;

  friend bool operator==(const HistogramSnapshot& a,
                         const HistogramSnapshot& b) {
    return a.bounds == b.bounds && a.counts == b.counts && a.sum == b.sum;
  }
};

/// A gauge value plus the wall time of the snapshot it came from — merge
/// resolves conflicting gauges last-write-wins by this timestamp, so the
/// freshest shard's reading survives a fleet fold regardless of merge
/// order (ties break toward the larger value, keeping merge commutative).
struct GaugeSnapshot {
  double value = 0.0;
  std::int64_t ts_unix_ns = 0;

  friend bool operator==(const GaugeSnapshot& a, const GaugeSnapshot& b) {
    return a.value == b.value && a.ts_unix_ns == b.ts_unix_ns;
  }
};

struct Snapshot {
  /// Wall time (unix epoch, ns) when Registry::snapshot() ran; 0 on a
  /// default-constructed snapshot. hgc_obs diff turns two timestamps into
  /// per-second rates; merge keeps the max.
  std::int64_t unix_ns = 0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, RunningStats> stats;
  std::map<std::string, ReservoirQuantiles> quantiles;

  /// Named counter value; 0 when never registered (snapshots are sparse in
  /// nothing — every registered name appears — so 0 also means "no site
  /// registered it yet").
  std::uint64_t counter(const std::string& name) const;

  /// Named gauge value; 0.0 when never registered.
  double gauge(const std::string& name) const;

  /// Stable JSON: one object per instrument kind, keys sorted (std::map),
  /// doubles in shortest-round-trip form (to_chars), 64-bit integers as
  /// exact integer tokens. `compact` collapses all whitespace to one line
  /// (the recorder's JSONL format). read_json(write_json(s)) == s to the
  /// bit either way.
  void write_json(std::ostream& os, bool compact = false) const;

  /// Parse a snapshot written by write_json. Tolerates the PR 6 format
  /// (gauges as bare numbers → timestamp 0, stats without "m2" → derived
  /// from stddev); throws std::runtime_error on malformed input.
  static Snapshot read_json(std::istream& is);
  static Snapshot read_json(const std::string& text);

  /// Fold another snapshot into this one — the fleet-merge primitive.
  /// Exact and associative: counters and histogram buckets sum, histogram
  /// sums add, gauges resolve last-write-wins by timestamp, stats and
  /// quantiles merge via RunningStats::merge / ReservoirQuantiles::merge
  /// (counts exact; floating-point moments agree across merge orders to
  /// rounding). Throws std::invalid_argument when the same histogram name
  /// arrives with different bucket bounds.
  void merge(const Snapshot& other);

  /// Prometheus text exposition (version 0.0.4): counters as `_total`,
  /// histograms as cumulative `_bucket{le=...}` + `_sum`/`_count`, stats
  /// as `_sum`/`_count` summaries plus `_mean`/`_min`/`_max`/`_stddev`
  /// gauges,
  /// quantile estimators as summaries with `quantile` labels. Original
  /// dotted metric names ride along in `# HELP` lines so read_prometheus
  /// can restore them.
  void write_prometheus(std::ostream& os) const;

  /// Parse write_prometheus output back into a snapshot. Counters, gauges
  /// and histograms round-trip; stats come back with count/mean/min/max
  /// exact and variance reconstructed from the stddev line; quantile
  /// summaries cannot be reconstructed (their reservoir state is not in
  /// the exposition) and are reported via `skipped` instead.
  static Snapshot read_prometheus(std::istream& is,
                                  std::vector<std::string>* skipped = nullptr);

  friend bool operator==(const Snapshot& a, const Snapshot& b) {
    return a.unix_ns == b.unix_ns && a.counters == b.counters &&
           a.gauges == b.gauges && a.histograms == b.histograms &&
           a.stats == b.stats && a.quantiles == b.quantiles;
  }
};

/// The process-wide registry. Registration is mutex-guarded and expected at
/// site-initialization frequency (function-local statics); the returned
/// handles are valid forever — reset() clears values, never registrations,
/// so cached handles in statics survive.
class Registry {
 public:
  static Registry& global();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Idempotent by name: re-registering returns the same handle. Throws
  /// std::invalid_argument when a name is reused across instrument kinds
  /// (or a histogram is re-registered with different bounds) and
  /// std::length_error when the slot budget is exhausted.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name, std::vector<double> bounds);
  StatHandle stat(const std::string& name);
  QuantileHandle quantile(const std::string& name);

  /// Merge every shard (live and recycled) into one view.
  Snapshot snapshot() const;

  /// Zero all values; registrations and outstanding handles stay valid.
  void reset();

  /// Internal — the thread_local shard lease in metrics.cpp checks a shard
  /// out per thread and returns it (values intact) on thread exit.
  detail::Shard& acquire_shard();
  void release_shard(detail::Shard& shard);

 private:
  friend std::atomic<std::uint64_t>& detail::gauge_slot(std::uint32_t);

  Registry() = default;

  enum class Kind { kCounter, kGauge, kHistogram, kStat, kQuantile };
  struct Entry {
    Kind kind;
    std::uint32_t index = 0;       ///< slot / gauge / stat / quantile id
    std::uint32_t num_bounds = 0;  ///< histograms only
    const std::vector<double>* bounds = nullptr;  ///< histograms only
  };

  const Entry& register_entry(const std::string& name, Kind kind,
                              std::vector<double> bounds = {});

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::uint32_t next_slot_ = 0;
  std::uint32_t next_gauge_ = 0;
  std::uint32_t next_stat_ = 0;
  std::uint32_t next_quantile_ = 0;
  /// Histogram bounds live here so handles can point at stable storage
  /// (the registry is leaked, so "stable" means process-lifetime).
  std::vector<std::unique_ptr<const std::vector<double>>> bounds_storage_;
  std::vector<std::unique_ptr<detail::Shard>> shards_;
  std::array<std::atomic<std::uint64_t>, detail::kMaxGauges> gauges_{};
};

}  // namespace hgc::obs
