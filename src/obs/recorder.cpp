#include "obs/recorder.hpp"

#include <chrono>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace hgc::obs {

Recorder::Recorder(RecorderOptions opts) : opts_(opts) {
  if (opts_.ring_capacity == 0)
    throw std::invalid_argument("obs: recorder ring capacity must be > 0");
  ring_.reserve(opts_.ring_capacity);
}

Recorder::~Recorder() { stop(); }

void Recorder::start() {
  std::unique_lock<std::mutex> lock(mu_);
  if (running_) return;
  if (!(opts_.interval_seconds > 0.0))
    throw std::invalid_argument("obs: recorder interval must be > 0");
  running_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { run(); });
}

void Recorder::stop() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::unique_lock<std::mutex> lock(mu_);
  running_ = false;
}

std::vector<Snapshot> Recorder::samples() const {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<Snapshot> out;
  out.reserve(ring_.size());
  // Oldest first: once full, ring_next_ points at the oldest entry.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
  return out;
}

void Recorder::sample_once(std::unique_lock<std::mutex>& lock) {
  // Snapshot outside the recorder lock: Registry::snapshot() takes the
  // registry mutex and per-shard sample locks, and samples() callers must
  // not wait on that.
  lock.unlock();
  Snapshot snap = Registry::global().snapshot();
  lock.lock();
  if (opts_.jsonl) {
    snap.write_json(*opts_.jsonl, /*compact=*/true);
    *opts_.jsonl << '\n';
  }
  if (ring_.size() < opts_.ring_capacity) {
    ring_.push_back(std::move(snap));
  } else {
    ring_[ring_next_] = std::move(snap);
    ring_next_ = (ring_next_ + 1) % opts_.ring_capacity;
  }
}

void Recorder::run() {
  const auto interval = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(opts_.interval_seconds));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) break;
    sample_once(lock);
  }
  // Final sample on the way out so even runs shorter than one interval
  // record their end state.
  sample_once(lock);
}

}  // namespace hgc::obs
