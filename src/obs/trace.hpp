// Dual-clock tracer — Chrome trace_event JSON for the sweep runtime.
//
// Two clocks share one file, separated by Chrome's process axis:
//   * Wall clock (pid 1): real execution. HGC_TRACE_SCOPE spans around
//     sweep cells, thread-pool tasks, scheme construction, decode solves
//     and LU/QR factors; one Chrome "thread" row per pool thread.
//   * Virtual clock (pid 2 + track): the engine's simulated time. Each
//     sweep cell claims track = cell.index + 1 and lays its rounds out on
//     rows: row 0 = master (round spans, give-ups, undecodable instants),
//     row 1 + w = worker w (compute / straggle / transmit spans, fault and
//     lost-message instants). Virtual seconds are scaled to microseconds so
//     chrome://tracing (or ui.perfetto.dev) renders both clocks natively.
//
// Same cost contract as obs/metrics.hpp: one relaxed atomic load + branch
// per site when tracing is off. Enabled appends go to per-thread buffers
// (mutex-guarded, but only write_json/reset ever touch another thread's
// buffer, so the lock is uncontended on the hot path); buffers cap at
// kMaxEventsPerThread and count drops instead of growing unboundedly.
//
// Event names/categories are `const char*` and must be string literals (or
// otherwise outlive the tracer) — buffers store the pointers, not copies.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>

namespace hgc::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}

/// True when trace collection is on (relaxed; see obs/metrics.hpp for the
/// race tolerance rationale).
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Enabling (re)captures the wall-clock epoch: wall timestamps are
/// microseconds since the most recent enable, keeping the trace near t = 0.
void set_trace_enabled(bool on);

/// Override the per-thread buffer cap (default 1M events). Mostly a test
/// knob — production traces should raise it rather than silently dropping.
/// Applies to subsequent record() calls; events already buffered stay.
void set_trace_buffer_capacity(std::size_t cap);

/// Sentinel for "no numeric argument" on an event.
inline constexpr std::int64_t kNoTraceArg =
    std::numeric_limits<std::int64_t>::min();

struct TraceEvent {
  enum class Phase : std::uint8_t { kComplete, kInstant };
  const char* name = "";
  const char* cat = "";
  Phase phase = Phase::kComplete;
  bool virtual_clock = false;
  /// Virtual events: track (usually cell.index + 1) picks the Chrome
  /// process, row the thread (0 = master, 1 + w = worker w). Wall events
  /// ignore both; their row is the recording thread's buffer id.
  std::uint32_t track = 0;
  std::uint32_t row = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;  ///< complete spans only
  std::int64_t arg = kNoTraceArg;
};

class Tracer {
 public:
  static Tracer& global();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Append to the calling thread's buffer (drop-counting past the cap).
  /// Wall events get their row stamped from the thread's buffer id.
  void record(TraceEvent event);

  /// Wall microseconds since the last enable.
  double now_us() const;

  /// Merge every buffer into one Chrome-loadable JSON object
  /// ({"traceEvents": [...], "displayTimeUnit": "ms", "droppedEvents": N}
  /// plus process/thread name metadata). Safe to call while disabled;
  /// events stay buffered until reset(). When N > 0 a one-time warning
  /// goes to stderr — the file is valid but incomplete.
  void write_json(std::ostream& os) const;

  /// Drop all buffered events (buffers stay leased to their threads) and
  /// re-arm the write_json incomplete-trace warning.
  void reset();

  /// Total events dropped because a thread buffer was full. Also exported
  /// as the `obs.trace.dropped_events` registry counter when metrics are
  /// enabled at drop time.
  std::uint64_t dropped() const;

 private:
  Tracer() = default;
};

/// RAII wall-clock span: stamps the start on construction and records a
/// complete event on destruction. No-op (one load + branch) when tracing
/// is off at construction time.
class TraceScope {
 public:
  TraceScope(const char* name, const char* cat,
             std::int64_t arg = kNoTraceArg)
      : active_(trace_enabled()) {
    if (active_) begin(name, cat, arg);
  }
  ~TraceScope() {
    if (active_) end();
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  void begin(const char* name, const char* cat, std::int64_t arg);
  void end();

  bool active_;
  // Deliberately uninitialized unless active_: begin() fills them, and the
  // disabled path must not pay four dead stores per site.
  const char* name_;
  const char* cat_;
  std::int64_t arg_;
  double start_us_;
};

// Declare a scoped wall-clock span: HGC_TRACE_SCOPE("cell", "sweep", idx).
#define HGC_OBS_CONCAT_IMPL(a, b) a##b
#define HGC_OBS_CONCAT(a, b) HGC_OBS_CONCAT_IMPL(a, b)
#define HGC_TRACE_SCOPE(...) \
  ::hgc::obs::TraceScope HGC_OBS_CONCAT(hgc_trace_scope_, __LINE__)(__VA_ARGS__)

/// Record a virtual-clock span on (track, row); times in virtual seconds.
/// No-op when tracing is off or track == 0 (the "no track assigned"
/// sentinel the engine threads through its options).
inline void trace_virtual_span(std::uint32_t track, std::uint32_t row,
                               const char* name, const char* cat,
                               double start_seconds, double duration_seconds,
                               std::int64_t arg = kNoTraceArg) {
  if (!trace_enabled() || track == 0) return;
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.phase = TraceEvent::Phase::kComplete;
  event.virtual_clock = true;
  event.track = track;
  event.row = row;
  event.ts_us = start_seconds * 1e6;
  event.dur_us = duration_seconds * 1e6;
  event.arg = arg;
  Tracer::global().record(event);
}

/// Record a virtual-clock instant on (track, row) at `t_seconds`.
inline void trace_virtual_instant(std::uint32_t track, std::uint32_t row,
                                  const char* name, const char* cat,
                                  double t_seconds,
                                  std::int64_t arg = kNoTraceArg) {
  if (!trace_enabled() || track == 0) return;
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.phase = TraceEvent::Phase::kInstant;
  event.virtual_clock = true;
  event.track = track;
  event.row = row;
  event.ts_us = t_seconds * 1e6;
  event.arg = arg;
  Tracer::global().record(event);
}

}  // namespace hgc::obs
