// Abstract interface of a gradient coding strategy (Section III-B).
//
// A scheme owns the coding matrix B ∈ R^{m×k}: row i holds worker i's linear
// encoding coefficients, its support is worker i's data assignment. The only
// runtime question the master ever asks is: "given which workers have
// responded so far, can I reconstruct Σ g_j — and with what coefficients?"
// decoding_coefficients() answers it; everything else is bookkeeping.
//
// B is ≤(s+1)-sparse per row for every paper scheme, so the PRIMARY
// representation is a SparseRowMatrix: construction, encode, decode packing
// and the load/assignment accessors all run off nonzero structure — O(m·s)
// instead of the dense O(m·k) that walls out 10k-worker clusters. A dense
// view still exists for the small-m solve paths and external consumers, but
// it materializes lazily on first request and never on the scale path.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/types.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "linalg/workspace.hpp"

namespace hgc {

/// Base class for all gradient coding strategies.
class CodingScheme {
 public:
  virtual ~CodingScheme() = default;

  CodingScheme(const CodingScheme&) = delete;
  CodingScheme& operator=(const CodingScheme&) = delete;

  /// Human-readable scheme name ("heter-aware", "cyclic", ...).
  virtual std::string name() const = 0;

  std::size_t num_workers() const { return coding_matrix_.rows(); }
  std::size_t num_partitions() const { return coding_matrix_.cols(); }

  /// Number of stragglers this instance is provisioned to tolerate.
  std::size_t stragglers_tolerated() const { return s_; }

  /// The coding matrix B in its native sparse form — the representation
  /// every hot path should consume.
  const SparseRowMatrix& sparse_matrix() const { return coding_matrix_; }

  /// Dense view of B, materialized lazily on first call (thread-safe) and
  /// cached. At 10k workers this is gigabytes — keep it off scale paths;
  /// it exists for small-m solve/debug consumers only.
  const Matrix& coding_matrix() const;

  /// Data-partition assignment (supp(b_i) per worker).
  const Assignment& assignment() const { return assignment_; }

  /// Number of partitions worker w computes per iteration (||b_w||_0) —
  /// read straight off the sparse row structure.
  std::size_t load(WorkerId w) const { return coding_matrix_.row_nnz(w); }

  /// Decoding coefficients a with supp(a) ⊆ received and a·B = 1_{1×k}, or
  /// nullopt when the received set cannot reconstruct the gradient yet.
  /// `received[w]` is true when worker w's coded result has arrived.
  virtual std::optional<Vector> decoding_coefficients(
      const std::vector<bool>& received) const = 0;

  /// Cheap lower bound on how many results must have arrived before
  /// decoding_coefficients can possibly succeed; the master uses it to skip
  /// pointless solves while results trickle in.
  virtual std::size_t min_results_required() const {
    return num_workers() - s_;
  }

 protected:
  /// Derived constructors hand over the finished matrix and assignment;
  /// the support of B must equal the assignment exactly (checked in
  /// O(nnz)).
  CodingScheme(SparseRowMatrix b, Assignment assignment, std::size_t s);

  /// Same, but the assignment IS the row structure: derived directly from
  /// the sparse rows in O(nnz), no scan, no redundant validation.
  CodingScheme(SparseRowMatrix b, std::size_t s);

  /// Dense convenience for constructors/tests that still build a Matrix;
  /// converts via SparseRowMatrix::from_dense (support = entries != 0.0).
  CodingScheme(const Matrix& b, Assignment assignment, std::size_t s);

  /// Generic decodability fallback: least-squares solve of B_Rᵀ·x = 1 with a
  /// residual test. Works for any B; O(k·|R|²). Scratch (the row selection,
  /// the packed B_Rᵀ, QR factors, rhs) lives in a per-thread workspace, so
  /// repeated calls allocate nothing but the returned coefficient vector.
  std::optional<Vector> generic_decode(const std::vector<bool>& received)
      const;

  /// Same, against a caller-owned workspace (e.g. one reused across a whole
  /// robustness enumeration). Never share a workspace between threads.
  std::optional<Vector> generic_decode(const std::vector<bool>& received,
                                       SolveWorkspace& ws) const;

 private:
  SparseRowMatrix coding_matrix_;
  Assignment assignment_;
  std::size_t s_;
  // Lazily materialized dense view; guarded so concurrent sweep threads
  // sharing one scheme race-free. Logically const — a pure function of
  // coding_matrix_.
  mutable Matrix dense_view_;
  mutable std::once_flag dense_view_once_;
};

/// Worker-side encoding: g̃_w = Σ_j B(w,j)·g_j over the partitions worker w
/// holds. `partition_gradients[j]` is g_j; only the supported entries are
/// touched, so callers may leave other slots empty.
Vector encode_gradient(const CodingScheme& scheme, WorkerId worker,
                       const std::vector<Vector>& partition_gradients);

/// Master-side reconstruction: Σ_w a_w·g̃_w. `coded[w]` may be empty when
/// a_w == 0 (worker never responded).
Vector combine_coded_gradients(std::span<const double> coefficients,
                               const std::vector<Vector>& coded);

}  // namespace hgc
