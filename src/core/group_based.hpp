// The paper's second contribution (Section V): the group-based coding scheme
// (Alg. 3). Built on the same heterogeneity-aware allocation as Alg. 1, it
// detects groups — worker sets whose assignments exactly partition the data —
// sets their coefficients to 1, and covers the remaining workers with an
// Alg. 1 code of tolerance s−P (P = number of kept groups).
//
// Why it helps: a complete group decodes by plain summation using only |G|
// results, often far fewer than the m−s results Alg. 1 needs. When throughput
// estimates are imperfect (the practical regime the paper targets), whichever
// group happens to finish first bounds the iteration, shaving the tail that
// estimation error would otherwise add.
#pragma once

#include "core/alg1.hpp"
#include "core/coding_scheme.hpp"
#include "core/groups.hpp"
#include "util/rng.hpp"

namespace hgc {

/// Group-based gradient coding scheme (Alg. 2 + Alg. 3).
class GroupBasedScheme : public CodingScheme {
 public:
  /// Build from throughput estimates. `limits` bounds the exact-cover
  /// search; defaults are generous for the allocator's cyclic supports.
  GroupBasedScheme(const Throughputs& c, std::size_t k, std::size_t s,
                   Rng& rng, const GroupSearchLimits& limits = {});

  std::string name() const override { return "group-based"; }

  /// Decoding order mirrors Alg. 3: (1) any complete group sums directly,
  /// (2) the Alg.1 sub-code over non-group workers (tolerance s−P),
  /// (3) generic least-squares once enough results arrived (covers mixed
  /// combinations the two fast paths cannot express).
  std::optional<Vector> decoding_coefficients(
      const std::vector<bool>& received) const override;

  std::size_t min_results_required() const override;

  /// Kept (pairwise-disjoint) groups; P = groups().size() ≤ s+1.
  const std::vector<Group>& groups() const { return groups_; }

  /// The Alg.1 code over non-group workers; empty when P = s+1.
  const Alg1Code& sub_code() const { return sub_code_; }

  struct Build;  // implementation detail, defined in the .cpp

 private:
  explicit GroupBasedScheme(Build build, std::size_t s);

  std::vector<Group> groups_;
  Alg1Code sub_code_;
};

}  // namespace hgc
