#include "core/heter_aware.hpp"

#include "core/allocation.hpp"

namespace hgc {
namespace {

Alg1Build build_from_throughputs(const Throughputs& c, std::size_t k,
                                 std::size_t s, Rng& rng) {
  const auto counts = heter_aware_counts(c, k, s);
  const auto assignment = cyclic_assignment(counts, k);
  return build_alg1(assignment, k, s, rng);
}

}  // namespace

HeterAwareScheme::HeterAwareScheme(Alg1Build build, std::size_t s)
    // The single-argument base constructor derives the assignment straight
    // from the sparse row structure — the old O(m·k) assignment_from_matrix
    // dense scan is gone.
    : CodingScheme(std::move(build.b), s), code_(std::move(build.code)) {}

HeterAwareScheme::HeterAwareScheme(const Throughputs& c, std::size_t k,
                                   std::size_t s, Rng& rng)
    : HeterAwareScheme(build_from_throughputs(c, k, s, rng), s) {}

std::optional<Vector> HeterAwareScheme::decoding_coefficients(
    const std::vector<bool>& received) const {
  if (count_received(received) < min_results_required()) return std::nullopt;
  if (auto fast = code_.decode(received, num_workers())) return fast;
  return generic_decode(received);
}

std::size_t HeterAwareScheme::min_results_required() const {
  // All active workers minus s must respond; idle (zero-load) workers never
  // send anything, so they are excluded from the count.
  return code_.workers().size() - stragglers_tolerated();
}

}  // namespace hgc
