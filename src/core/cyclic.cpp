#include "core/cyclic.hpp"

#include "core/allocation.hpp"

namespace hgc {

CyclicScheme::CyclicScheme(Alg1Build build, std::size_t s)
    : CodingScheme(build.b,
                   cyclic_scheme_assignment(build.b.rows(), s), s),
      code_(std::move(build.code)) {}

CyclicScheme::CyclicScheme(std::size_t m, std::size_t s, Rng& rng)
    : CyclicScheme(build_alg1(cyclic_scheme_assignment(m, s), m, s, rng), s) {}

std::optional<Vector> CyclicScheme::decoding_coefficients(
    const std::vector<bool>& received) const {
  if (count_received(received) < min_results_required()) return std::nullopt;
  if (auto fast = code_.decode(received, num_workers())) return fast;
  return generic_decode(received);
}

}  // namespace hgc
