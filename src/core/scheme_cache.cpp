#include "core/scheme_cache.hpp"

#include <bit>
#include <mutex>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hgc {

bool scheme_uses_construction_rng(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNaive:
    case SchemeKind::kFractionalRepetition:
      return false;
    case SchemeKind::kCyclic:
    case SchemeKind::kHeterAware:
    case SchemeKind::kGroupBased:
      return true;
  }
  throw InternalError("unhandled SchemeKind");
}

bool scheme_uses_throughputs(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNaive:
    case SchemeKind::kCyclic:
    case SchemeKind::kFractionalRepetition:
      return false;
    case SchemeKind::kHeterAware:
    case SchemeKind::kGroupBased:
      return true;
  }
  throw InternalError("unhandled SchemeKind");
}

std::size_t SchemeCache::KeyHash::operator()(const Key& key) const {
  // FNV-1a over the scalar fields and the throughput bit patterns (the key
  // stores bits, so hash and equality see the exact same representation).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t word) {
    h ^= word;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<std::uint64_t>(key.kind));
  mix(key.m);
  mix(key.k);
  mix(key.s);
  mix(key.seed);
  for (std::uint64_t bits : key.c_bits) mix(bits);
  return static_cast<std::size_t>(h);
}

std::shared_ptr<const CodingScheme> SchemeCache::get_or_create(
    SchemeKind kind, const Throughputs& c, std::size_t k, std::size_t s,
    std::uint64_t construction_seed) {
  Key key;
  key.kind = kind;
  key.m = c.size();
  key.k = k;
  key.s = s;
  key.seed = scheme_uses_construction_rng(kind) ? construction_seed : 0;
  if (scheme_uses_throughputs(kind)) {
    key.c_bits.reserve(c.size());
    for (double ci : c) key.c_bits.push_back(std::bit_cast<std::uint64_t>(ci));
  }

  {
    std::shared_lock lock(mutex_);
    if (const auto it = map_.find(key); it != map_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (obs::metrics_enabled()) {
        static const obs::Counter cache_hits =
            obs::Registry::global().counter("scheme_cache.hits");
        cache_hits.add();
      }
      return it->second;
    }
  }

  // Construct outside any lock — Alg. 1 / the group search is the expensive
  // part and must not serialize readers. Exactly mirrors run_experiment's
  // uncached path: a fresh Rng seeded with the construction seed.
  HGC_TRACE_SCOPE("scheme_construct", "cache",
                  static_cast<std::int64_t>(k));
  Rng construction_rng(construction_seed);
  std::shared_ptr<const CodingScheme> scheme =
      make_scheme(kind, c, k, s, construction_rng);
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (obs::metrics_enabled()) {
    static const obs::Counter cache_misses =
        obs::Registry::global().counter("scheme_cache.misses");
    cache_misses.add();
  }

  std::unique_lock lock(mutex_);
  // A racing thread may have inserted the same key first; keep its instance
  // so every caller shares one scheme.
  return map_.try_emplace(std::move(key), std::move(scheme)).first->second;
}

std::size_t SchemeCache::size() const {
  std::shared_lock lock(mutex_);
  return map_.size();
}

void SchemeCache::clear() {
  std::unique_lock lock(mutex_);
  map_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace hgc
