// Offline decoding-matrix construction (Eq. 2) and a streaming decoder.
//
// The paper stores the decoding matrix A ∈ R^{S×m} (one row per straggler
// pattern, S = C(m, s)) for "regular" patterns and solves irregular ones in
// real time. StreamingDecoder is that real-time path packaged for the
// simulator and the threaded runtime: feed results as they arrive, ask
// whether the aggregate is ready.
#pragma once

#include <optional>
#include <vector>

#include "core/coding_scheme.hpp"
#include "core/decoding_cache.hpp"
#include "core/types.hpp"
#include "linalg/incremental_qr.hpp"

namespace hgc {

/// How StreamingDecoder tests decodability as results arrive.
enum class DecodeStrategy {
  /// Re-solve the prefix through the scheme's canonical decode (fast paths
  /// + pivoted least squares). This is the byte-identity reference path —
  /// every CSV the repo pins flows through it.
  kCanonical,
  /// Maintain an append-only QR of (B_R)ᵀ across arrivals: O(k·n) per
  /// arrival instead of a fresh O(k·n²) factorization per prefix check.
  /// Produces valid coefficients (a·B = 1 within the decode tolerance) but
  /// NOT necessarily the canonical bytes — the unpivoted incremental
  /// factorization may pick a different basic solution. Opt-in, and
  /// incompatible with a DecodingCache (the cache stores canonical rows).
  kIncremental,
};

/// One row of the decoding matrix: the straggler pattern it serves and the
/// worker coefficients that recover the gradient under that pattern.
struct DecodingRow {
  StragglerSet stragglers;
  Vector coefficients;  // a_i with supp ⊆ survivors, a·B = 1
};

/// Materialize the full decoding matrix of Eq. 2: one row per pattern of
/// exactly s stragglers. Exponential in m; meant for small m (tests, the
/// paper's "partially stored" table for regular patterns).
std::vector<DecodingRow> build_decoding_matrix(const CodingScheme& scheme);

/// scheme.decoding_coefficients(received) wrapped in the observability
/// layer: counts `decode.solves`, samples `decode.solve_seconds`, and opens
/// a wall-clock "decode_solve" trace span. The single real-time-solve entry
/// point for both the uncached decoder path and a DecodingCache miss —
/// result-identical to calling the scheme directly (everything recorded is
/// out of band).
std::optional<Vector> solve_decoding_coefficients(
    const CodingScheme& scheme, const std::vector<bool>& received);

/// Incremental master-side decoder. Results are added in arrival order; the
/// decoder re-checks decodability per arrival (skipping checks that cannot
/// succeed yet) and caches the coefficients once found.
class StreamingDecoder {
 public:
  /// `cache`, when non-null, must wrap the same scheme instance; decodability
  /// checks then go through its LRU (the paper's "regular stragglers"
  /// optimization) instead of re-solving per arrival. The cache may be
  /// shared across iterations but not across threads. A cache and
  /// DecodeStrategy::kIncremental are mutually exclusive.
  explicit StreamingDecoder(const CodingScheme& scheme,
                            DecodingCache* cache = nullptr,
                            DecodeStrategy strategy = DecodeStrategy::kCanonical);

  /// Record worker w's coded gradient. Returns true if the aggregate became
  /// decodable with this arrival.
  bool add_result(WorkerId w, Vector coded_gradient);

  bool ready() const { return coefficients_.has_value(); }
  std::size_t results_received() const { return received_count_; }

  /// The decoded aggregate Σ g_j. Throws DecodeError if !ready().
  Vector aggregate() const;

  /// Coefficients used for the decode (for inspection/tests).
  const Vector& coefficients() const;

  /// Workers whose results ended up unused (coefficient 0 despite arriving);
  /// feeds the resource-usage metric of Fig. 5.
  std::vector<WorkerId> unused_workers() const;

  /// Reset for the next iteration, keeping the scheme.
  void reset();

 private:
  bool try_decode_incremental();

  const CodingScheme& scheme_;
  DecodingCache* cache_;
  DecodeStrategy strategy_;
  std::vector<bool> received_;
  std::vector<Vector> coded_;
  std::size_t received_count_ = 0;
  std::optional<Vector> coefficients_;
  // kIncremental state: the growing factorization of (B_R)ᵀ plus the
  // arrival order its columns were appended in.
  IncrementalQr iqr_;
  std::vector<WorkerId> arrival_order_;
};

}  // namespace hgc
