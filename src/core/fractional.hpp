// Fractional repetition scheme of Tandon et al. [12] (extension).
//
// The paper describes but does not run this baseline (it needs (s+1) | m and
// is on par with the cyclic scheme); we implement it for completeness and for
// ablation benches. Workers are split into s+1 replica groups; group g
// mirrors the g-th "stripe" of partitions with coefficient 1, so each
// partition is replicated s+1 times and any single surviving replica group
// decodes by plain summation.
#pragma once

#include "core/coding_scheme.hpp"

namespace hgc {

/// Fractional repetition gradient code [12]: requires (s+1) | m and
/// m | k·(s+1) — the default k = m always qualifies.
class FractionalRepetitionScheme : public CodingScheme {
 public:
  /// m workers, k partitions (defaulted to m when 0), tolerance s.
  FractionalRepetitionScheme(std::size_t m, std::size_t s, std::size_t k = 0);

  std::string name() const override { return "fractional-repetition"; }

  std::optional<Vector> decoding_coefficients(
      const std::vector<bool>& received) const override;

  /// A complete set of gradients needs one worker from each of the
  /// m/(s+1) blocks; this can be far fewer than m−s results.
  std::size_t min_results_required() const override;

  /// Worker block layout: block(b) lists the s+1 workers replicating
  /// stripe b.
  const std::vector<std::vector<WorkerId>>& blocks() const { return blocks_; }

  struct Layout;  // implementation detail, defined in the .cpp

 private:
  explicit FractionalRepetitionScheme(Layout layout, std::size_t s);

  std::vector<std::vector<WorkerId>> blocks_;
  std::vector<std::vector<PartitionId>> stripe_partitions_;
};

}  // namespace hgc
