// Cached decoding coefficients — the paper's storage optimization.
//
// Section III-B: "the decoding matrix A could be partially stored specially
// for regular stragglers. As to decoding functions designed for unregular
// stragglers, the decoding vectors could be solved in realtime." In steady
// state the same few workers straggle (consistent heterogeneity, a flaky
// VM), so the master keeps an LRU map from the received-set bitmask to the
// solved coefficients and only falls back to the O(s³)/least-squares solve
// on a miss.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "core/coding_scheme.hpp"

namespace hgc {

/// LRU cache wrapper around CodingScheme::decoding_coefficients.
class DecodingCache {
 public:
  /// `capacity` bounds the number of distinct receive patterns kept; the
  /// paper's "regular stragglers" working set is tiny (≤ C(m, s) patterns,
  /// usually a handful).
  explicit DecodingCache(const CodingScheme& scheme,
                         std::size_t capacity = 256);

  /// Cached or freshly-solved coefficients; nullopt results (undecodable
  /// sets) are also cached so repeated early probes stay cheap.
  std::optional<Vector> decode(const std::vector<bool>& received);

  /// The scheme this cache solves for; callers wiring the cache into a
  /// decoder must pair it with the same scheme instance.
  const CodingScheme& scheme() const { return scheme_; }

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }
  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

  void clear();

 private:
  /// Pack received flags into 64-bit words for hashing/equality.
  static std::vector<std::uint64_t> pack(const std::vector<bool>& received);

  struct KeyHash {
    std::size_t operator()(const std::vector<std::uint64_t>& key) const;
  };

  struct Entry {
    std::vector<std::uint64_t> key;
    std::optional<Vector> coefficients;
  };

  const CodingScheme& scheme_;
  std::size_t capacity_;
  std::list<Entry> entries_;  // front = most recently used
  std::unordered_map<std::vector<std::uint64_t>, std::list<Entry>::iterator,
                     KeyHash>
      index_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace hgc
