// The paper's first contribution (Section IV): heterogeneity-aware gradient
// coding. Data partitions are allocated proportionally to worker throughput
// (Eq. 5, cyclic placement Eq. 6) and the coding matrix is built by Alg. 1,
// which makes the code robust to any s stragglers (Theorem 4) and optimal in
// worst-case iteration time, T(B) = (s+1)k / Σc (Theorem 5).
#pragma once

#include "core/alg1.hpp"
#include "core/coding_scheme.hpp"
#include "util/rng.hpp"

namespace hgc {

/// Heter-aware gradient coding scheme (Alg. 1 over Eq. 5/6 allocation).
class HeterAwareScheme : public CodingScheme {
 public:
  /// Build a code for workers with (estimated) throughputs `c`, k data
  /// partitions and tolerance for any s stragglers. Randomness for the
  /// auxiliary matrix C comes from `rng`.
  HeterAwareScheme(const Throughputs& c, std::size_t k, std::size_t s,
                   Rng& rng);

  std::string name() const override { return "heter-aware"; }

  /// Fast O(s³) decode via the stored C (null-space on straggler columns);
  /// falls back to the generic least-squares path only if C is degenerate.
  std::optional<Vector> decoding_coefficients(
      const std::vector<bool>& received) const override;

  std::size_t min_results_required() const override;

  /// The auxiliary random matrix (exposed for tests of properties P1/P2).
  const Alg1Code& code() const { return code_; }

 private:
  HeterAwareScheme(Alg1Build build, std::size_t s);

  Alg1Code code_;
};

}  // namespace hgc
