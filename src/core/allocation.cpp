#include "core/allocation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace hgc {

std::vector<std::size_t> proportional_counts(std::span<const double> weights,
                                             std::size_t total,
                                             std::size_t cap) {
  const std::size_t m = weights.size();
  HGC_REQUIRE(m > 0, "need at least one worker");
  HGC_REQUIRE(total <= cap * m, "total exceeds cap * workers");
  double weight_sum = 0.0;
  for (double w : weights) {
    HGC_REQUIRE(w >= 0.0 && std::isfinite(w), "weights must be finite, >= 0");
    weight_sum += w;
  }
  HGC_REQUIRE(weight_sum > 0.0, "at least one weight must be positive");

  std::vector<double> ideal(m);
  for (std::size_t i = 0; i < m; ++i)
    ideal[i] = static_cast<double>(total) * weights[i] / weight_sum;

  std::vector<std::size_t> counts(m);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < m; ++i) {
    counts[i] = std::min(static_cast<std::size_t>(std::floor(ideal[i])), cap);
    assigned += counts[i];
  }
  HGC_ASSERT(assigned <= total, "floor allocation overshot the total");

  // Hand out the remainder one unit at a time to the worker with the largest
  // unmet ideal share that still has cap headroom. Ties resolve to the lower
  // index, keeping the function deterministic.
  for (std::size_t left = total - assigned; left > 0; --left) {
    std::size_t best = m;  // sentinel: none found yet
    double best_deficit = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m; ++i) {
      if (counts[i] >= cap) continue;
      const double deficit = ideal[i] - static_cast<double>(counts[i]);
      if (deficit > best_deficit) {
        best_deficit = deficit;
        best = i;
      }
    }
    HGC_ASSERT(best < m, "no worker with cap headroom left");
    ++counts[best];
  }
  return counts;
}

std::vector<std::size_t> heter_aware_counts(const Throughputs& c,
                                            std::size_t k, std::size_t s) {
  HGC_REQUIRE(k > 0, "need at least one partition");
  HGC_REQUIRE(s + 1 <= c.size(),
              "cannot tolerate s stragglers with m <= s workers");
  return proportional_counts(c, k * (s + 1), k);
}

Assignment cyclic_assignment(std::span<const std::size_t> counts,
                             std::size_t k) {
  HGC_REQUIRE(k > 0, "need at least one partition");
  std::size_t total = 0;
  for (std::size_t n : counts) {
    HGC_REQUIRE(n <= k,
                "a worker cannot hold more than k partitions (distinctness)");
    total += n;
  }
  HGC_REQUIRE(total % k == 0,
              "total copies must be a multiple of k for uniform replication");

  Assignment assignment(counts.size());
  std::size_t offset = 0;  // n'_i in the paper
  for (std::size_t w = 0; w < counts.size(); ++w) {
    auto& mine = assignment[w];
    mine.reserve(counts[w]);
    for (std::size_t t = 0; t < counts[w]; ++t)
      mine.push_back((offset + t) % k);
    std::sort(mine.begin(), mine.end());
    offset += counts[w];
  }
  return assignment;
}

Assignment cyclic_scheme_assignment(std::size_t m, std::size_t s) {
  HGC_REQUIRE(s < m, "cyclic scheme requires s < m");
  const std::vector<std::size_t> counts(m, s + 1);
  return cyclic_assignment(counts, m);
}

std::vector<std::size_t> replication_profile(const Assignment& assignment,
                                             std::size_t k) {
  std::vector<std::size_t> copies(k, 0);
  for (const auto& partitions : assignment)
    for (PartitionId p : partitions) {
      HGC_REQUIRE(p < k, "partition id out of range");
      ++copies[p];
    }
  return copies;
}

bool is_valid_allocation(const Assignment& assignment, std::size_t k,
                         std::size_t s) {
  // Distinctness within each worker (each partition at most once per worker).
  for (const auto& partitions : assignment) {
    for (std::size_t i = 1; i < partitions.size(); ++i)
      if (partitions[i] == partitions[i - 1]) return false;
  }
  const auto copies = replication_profile(assignment, k);
  return std::all_of(copies.begin(), copies.end(),
                     [&](std::size_t c) { return c == s + 1; });
}

}  // namespace hgc
