// Shared vocabulary types for the gradient-coding layer.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hgc {

/// Index of a worker in [0, m).
using WorkerId = std::size_t;

/// Index of a data partition in [0, k).
using PartitionId = std::size_t;

/// Data-partition assignment: assignment[i] lists the partitions held by
/// worker i, sorted ascending. This is supp(b_i) in the paper's notation.
using Assignment = std::vector<std::vector<PartitionId>>;

/// A set of workers believed to be stragglers (the paper's S).
using StragglerSet = std::vector<WorkerId>;

/// Per-worker throughputs c_i: data partitions a worker can process per unit
/// time (estimated by sampling in the paper, Section III-C).
using Throughputs = std::vector<double>;

/// Render an assignment as e.g. "W0:{0,1} W1:{2}" for diagnostics.
std::string to_string(const Assignment& assignment);

/// Convert received-flags (size m) to the list of missing worker ids.
std::vector<WorkerId> missing_workers(const std::vector<bool>& received);

/// Count how many flags are set.
std::size_t count_received(const std::vector<bool>& received);

}  // namespace hgc
