#include "core/robustness.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace hgc {

bool ones_in_row_span(const Matrix& b, std::span<const std::size_t> rows,
                      double tolerance) {
  thread_local SolveWorkspace ws;
  return ones_in_row_span(b, rows, tolerance, ws);
}

bool ones_in_row_span(const Matrix& b, std::span<const std::size_t> rows,
                      double tolerance, SolveWorkspace& ws) {
  if (rows.empty()) return false;
  // Least-squares B_Rᵀ·x = 1 with a residual test, solved straight against
  // the selected rows (no select_rows/transposed temporaries).
  ws.qr.factor_transposed(RowSelectView(b, rows));
  ws.rhs.assign(b.cols(), 1.0);
  return ws.qr.solve_into(ws.rhs, ws.x) <= tolerance;
}

bool ones_in_row_span(const SparseRowMatrix& b,
                      std::span<const std::size_t> rows, double tolerance) {
  thread_local SolveWorkspace ws;
  return ones_in_row_span(b, rows, tolerance, ws);
}

bool ones_in_row_span(const SparseRowMatrix& b,
                      std::span<const std::size_t> rows, double tolerance,
                      SolveWorkspace& ws) {
  if (rows.empty()) return false;
  // Identical solve to the dense variant: the sparse scatter packs a
  // byte-identical B_Rᵀ (see QrWorkspace::factor_transposed).
  ws.qr.factor_transposed(b, rows);
  ws.rhs.assign(b.cols(), 1.0);
  return ws.qr.solve_into(ws.rhs, ws.x) <= tolerance;
}

std::size_t count_straggler_patterns(std::size_t m, std::size_t s,
                                     std::size_t cap) {
  HGC_REQUIRE(s <= m, "cannot choose more stragglers than workers");
  const std::size_t r = std::min(s, m - s);
  // Multiplicative formula with exact intermediate division; 128-bit
  // intermediates cannot overflow because n is capped each step.
  unsigned __int128 n = 1;
  for (std::size_t i = 1; i <= r; ++i) {
    n = n * (m - r + i) / i;
    if (n >= cap) return cap;
  }
  return static_cast<std::size_t>(n);
}

bool satisfies_condition1(const Matrix& b, std::size_t s, double tolerance,
                          SolveWorkspace* ws) {
  const std::size_t m = b.rows();
  HGC_REQUIRE(s < m, "condition 1 needs s < m");
  thread_local SolveWorkspace shared;
  SolveWorkspace& w = ws ? *ws : shared;
  // Equivalent formulation: for every straggler pattern of exactly s
  // workers, the surviving rows span the ones vector. One workspace serves
  // the whole C(m, s) enumeration: indices holds the survivors, indices2
  // backs the pattern buffer, and the QR factors are re-packed per pattern.
  std::vector<std::size_t>& survivors = w.indices;
  return for_each_straggler_pattern(
      m, s,
      [&](const StragglerSet& stragglers) {
        survivors.clear();
        std::size_t next = 0;
        for (std::size_t worker = 0; worker < m; ++worker) {
          if (next < stragglers.size() && stragglers[next] == worker)
            ++next;
          else
            survivors.push_back(worker);
        }
        return ones_in_row_span(b, survivors, tolerance, w);
      },
      w.indices2);
}

std::optional<double> completion_time(const CodingScheme& scheme,
                                      const Throughputs& c,
                                      const StragglerSet& stragglers,
                                      DecodingCache* cache) {
  const std::size_t m = scheme.num_workers();
  HGC_REQUIRE(c.size() == m, "one throughput per worker");
  HGC_REQUIRE(!cache || &cache->scheme() == &scheme,
              "decoding cache must wrap the queried scheme");
  const auto decodable = [&](const std::vector<bool>& received) {
    return cache ? cache->decode(received).has_value()
                 : scheme.decoding_coefficients(received).has_value();
  };

  std::vector<bool> is_straggler(m, false);
  for (WorkerId w : stragglers) {
    HGC_REQUIRE(w < m, "straggler id out of range");
    is_straggler[w] = true;
  }

  // Finish times of surviving workers that actually hold data; the paper's
  // full-straggler assumption means stragglers never arrive.
  std::vector<std::pair<double, WorkerId>> arrivals;
  for (std::size_t w = 0; w < m; ++w) {
    if (is_straggler[w] || scheme.load(w) == 0) continue;
    HGC_REQUIRE(c[w] > 0.0, "non-straggler throughput must be positive");
    arrivals.emplace_back(static_cast<double>(scheme.load(w)) / c[w], w);
  }
  std::sort(arrivals.begin(), arrivals.end());

  std::vector<bool> received(m, false);
  std::size_t count = 0;
  bool tried_full_set = false;
  for (const auto& [time, w] : arrivals) {
    received[w] = true;
    ++count;
    if (count < scheme.min_results_required()) continue;
    if (count == arrivals.size()) tried_full_set = true;
    if (decodable(received)) return time;
  }
  // Tail case: min_results_required can exceed the survivor count, so try
  // one final decode with everything received — unless the loop's last
  // attempt already was the full set, in which case re-solving the identical
  // system would only confirm the failure.
  if (!arrivals.empty() && !tried_full_set && decodable(received))
    return arrivals.back().first;
  return std::nullopt;
}

std::optional<double> worst_case_time(const CodingScheme& scheme,
                                      const Throughputs& c,
                                      DecodingCache* cache) {
  const std::size_t s = scheme.stragglers_tolerated();
  double worst = 0.0;
  // Patterns with fewer than s stragglers are dominated by some s-pattern
  // (removing a straggler can only speed decoding up), so exact-s suffices;
  // we still include the zero-straggler case to cover s = 0 schemes.
  const auto none = completion_time(scheme, c, {}, cache);
  if (!none) return std::nullopt;
  worst = *none;

  const bool ok = for_each_straggler_pattern(
      scheme.num_workers(), s, [&](const StragglerSet& pattern) {
        const auto t = completion_time(scheme, c, pattern, cache);
        if (!t) return false;
        worst = std::max(worst, *t);
        return true;
      });
  if (!ok) return std::nullopt;
  return worst;
}

RobustnessEstimate estimate_worst_case_time(const CodingScheme& scheme,
                                            const Throughputs& c,
                                            std::size_t max_patterns,
                                            std::uint64_t seed,
                                            DecodingCache* cache) {
  const std::size_t m = scheme.num_workers();
  const std::size_t s = scheme.stragglers_tolerated();
  RobustnessEstimate estimate;
  estimate.exhaustive =
      count_straggler_patterns(m, s, max_patterns + 1) <= max_patterns;

  const auto check = [&](const StragglerSet& pattern) {
    ++estimate.patterns_checked;
    const auto t = completion_time(scheme, c, pattern, cache);
    if (t)
      estimate.worst_time = std::max(estimate.worst_time, *t);
    else
      ++estimate.undecodable;
    return true;  // never early-exit: we are estimating, not certifying
  };
  check({});  // zero-straggler baseline, covering s = 0 schemes
  sample_straggler_patterns(m, s, max_patterns, seed, check);
  return estimate;
}

double optimal_time_bound(const Throughputs& c, std::size_t k, std::size_t s) {
  // lint:allow(raw-fp-accumulation): fixed begin->end order over per-cluster throughputs; analytic bound, not decode
  const double total = std::accumulate(c.begin(), c.end(), 0.0);
  HGC_REQUIRE(total > 0.0, "total throughput must be positive");
  return static_cast<double>((s + 1) * k) / total;
}

}  // namespace hgc
