#include "core/alg1.hpp"

#include <algorithm>
#include <cmath>

#include "core/allocation.hpp"
#include "linalg/lu.hpp"
#include "linalg/nullspace.hpp"
#include "util/error.hpp"

namespace hgc {
namespace {
constexpr double kSumTolerance = 1e-12;
}

Alg1Code::Alg1Code(Matrix c, std::vector<WorkerId> workers, std::size_t s)
    : c_(std::move(c)), workers_(std::move(workers)), s_(s) {
  HGC_REQUIRE(c_.rows() == s_ + 1, "C must have s+1 rows");
  HGC_REQUIRE(c_.cols() == workers_.size(), "one C column per worker");
}

std::optional<Vector> Alg1Code::decode(const std::vector<bool>& received,
                                       std::size_t total_workers) const {
  if (empty()) return std::nullopt;
  HGC_REQUIRE(received.size() >= total_workers, "received flags too short");

  // Local straggler set: this code's workers whose results are missing.
  std::vector<std::size_t> missing_cols;
  for (std::size_t j = 0; j < workers_.size(); ++j) {
    HGC_REQUIRE(workers_[j] < total_workers, "worker id out of range");
    if (!received[workers_[j]]) missing_cols.push_back(j);
  }
  if (missing_cols.size() > s_) return std::nullopt;

  // Find λ ∈ R^{s+1}, λ·C_S = 0, Σλ ≠ 0 (Lemma 2's decoding argument).
  Vector lambda;
  double lambda_sum = 0.0;
  if (missing_cols.empty()) {
    // No stragglers: any row combination works; take the first row (λ = e₁).
    lambda.assign(s_ + 1, 0.0);
    lambda[0] = 1.0;
    lambda_sum = 1.0;
  } else {
    const Matrix c_s = c_.select_cols(missing_cols);
    const Matrix basis = null_space_basis(c_s.transposed());
    if (basis.cols() == 0) return std::nullopt;  // numerically degenerate C
    // Property (P2) guarantees some null vector with nonzero coordinate sum;
    // with a multi-dimensional null space individual basis vectors may still
    // sum to ~0, so scan for the best-conditioned one.
    std::size_t best = basis.cols();
    for (std::size_t col = 0; col < basis.cols(); ++col) {
      double sum = 0.0;
      for (std::size_t r = 0; r <= s_; ++r) sum += basis(r, col);
      if (std::abs(sum) > std::abs(lambda_sum)) {
        lambda_sum = sum;
        best = col;
      }
    }
    if (best == basis.cols() || std::abs(lambda_sum) < kSumTolerance)
      return std::nullopt;  // (P2) violated — probability-zero event
    lambda = basis.col(best);
  }

  // a = λ·C / Σλ, scattered to global worker slots.
  Vector coefficients(total_workers, 0.0);
  for (std::size_t j = 0; j < workers_.size(); ++j) {
    double value = 0.0;
    for (std::size_t r = 0; r <= s_; ++r) value += lambda[r] * c_(r, j);
    coefficients[workers_[j]] = value / lambda_sum;
  }
  // Entries on missing workers are λ·C_S/Σλ = 0 by construction; zero them
  // exactly so callers can rely on supp(a) ⊆ received.
  for (std::size_t j : missing_cols) coefficients[workers_[j]] = 0.0;
  return coefficients;
}

Alg1Build build_alg1(const Assignment& assignment, std::size_t k,
                     std::size_t s, Rng& rng) {
  const std::size_t m = assignment.size();
  HGC_REQUIRE(is_valid_allocation(assignment, k, s),
              "assignment must replicate every partition exactly s+1 times");

  // Active workers: those holding at least one partition. C gets one column
  // per active worker; idle workers keep zero rows and stay out of decoding.
  std::vector<WorkerId> active;
  for (std::size_t w = 0; w < m; ++w)
    if (!assignment[w].empty()) active.push_back(w);
  HGC_REQUIRE(active.size() > s, "need more than s active workers");

  std::vector<std::size_t> col_of(m, m);  // global worker -> C column
  for (std::size_t j = 0; j < active.size(); ++j) col_of[active[j]] = j;

  Matrix c(s + 1, active.size());
  for (std::size_t r = 0; r <= s; ++r)
    for (std::size_t j = 0; j < active.size(); ++j)
      c(r, j) = rng.uniform(0.0, 1.0);

  // Holders of each partition (exactly s+1 workers, validated above).
  std::vector<std::vector<WorkerId>> holders(k);
  for (std::size_t w = 0; w < m; ++w)
    for (PartitionId p : assignment[w]) holders[p].push_back(w);

  Matrix b(m, k);
  for (PartitionId p = 0; p < k; ++p) {
    std::vector<std::size_t> cols(holders[p].size());
    for (std::size_t i = 0; i < holders[p].size(); ++i)
      cols[i] = col_of[holders[p][i]];
    const Matrix c_p = c.select_cols(cols);
    const Vector ones(s + 1, 1.0);
    // C_p is (s+1)×(s+1) and nonsingular w.p. 1 (property P1, Lemma 3).
    const Vector d = lu_solve(c_p, ones);
    for (std::size_t i = 0; i < holders[p].size(); ++i)
      b(holders[p][i], p) = d[i];
  }

  return {std::move(b), Alg1Code(std::move(c), std::move(active), s)};
}

}  // namespace hgc
