#include "core/alg1.hpp"

#include <algorithm>
#include <cmath>

#include "core/allocation.hpp"
#include "linalg/nullspace.hpp"
#include "linalg/workspace.hpp"
#include "util/error.hpp"

namespace hgc {
namespace {
constexpr double kSumTolerance = 1e-12;

/// Per-thread scratch for the Lemma 2 decode: the packed C_Sᵀ, its RREF and
/// null-space basis, plus the missing-column selection. Reused call over
/// call, so novel straggler patterns stop costing per-decode allocations.
struct Alg1DecodeWorkspace {
  Matrix cst;
  Matrix rref;
  Matrix basis;
  std::vector<std::size_t> pivots;
  std::vector<std::size_t> missing;
};

}  // namespace

Alg1Code::Alg1Code(Matrix c, std::vector<WorkerId> workers, std::size_t s)
    : c_(std::move(c)), workers_(std::move(workers)), s_(s) {
  HGC_REQUIRE(c_.rows() == s_ + 1, "C must have s+1 rows");
  HGC_REQUIRE(c_.cols() == workers_.size(), "one C column per worker");
}

std::optional<Vector> Alg1Code::decode(const std::vector<bool>& received,
                                       std::size_t total_workers) const {
  if (empty()) return std::nullopt;
  HGC_REQUIRE(received.size() >= total_workers, "received flags too short");

  thread_local Alg1DecodeWorkspace ws;

  // Local straggler set: this code's workers whose results are missing.
  std::vector<std::size_t>& missing_cols = ws.missing;
  missing_cols.clear();
  for (std::size_t j = 0; j < workers_.size(); ++j) {
    HGC_REQUIRE(workers_[j] < total_workers, "worker id out of range");
    if (!received[workers_[j]]) missing_cols.push_back(j);
  }
  if (missing_cols.size() > s_) return std::nullopt;

  Vector coefficients(total_workers, 0.0);
  if (missing_cols.empty()) {
    // No stragglers: any row combination works; take the first row (λ = e₁,
    // Σλ = 1), so a = first row of C.
    for (std::size_t j = 0; j < workers_.size(); ++j)
      coefficients[workers_[j]] = c_(0, j);
    return coefficients;
  }

  // Find λ ∈ R^{s+1}, λ·C_S = 0, Σλ ≠ 0 (Lemma 2's decoding argument).
  // Pack C_Sᵀ straight from C (entry (i, r) = C(r, missing[i])) and take
  // its null space through the reused scratch.
  ws.cst.reshape(missing_cols.size(), s_ + 1);
  for (std::size_t i = 0; i < missing_cols.size(); ++i)
    for (std::size_t r = 0; r <= s_; ++r)
      ws.cst(i, r) = c_(r, missing_cols[i]);
  null_space_basis_into(ws.cst, ws.rref, ws.pivots, ws.basis);
  const Matrix& basis = ws.basis;
  if (basis.cols() == 0) return std::nullopt;  // numerically degenerate C

  // Property (P2) guarantees some null vector with nonzero coordinate sum;
  // with a multi-dimensional null space individual basis vectors may still
  // sum to ~0, so scan for the best-conditioned one.
  double lambda_sum = 0.0;
  std::size_t best = basis.cols();
  for (std::size_t col = 0; col < basis.cols(); ++col) {
    double sum = 0.0;
    for (std::size_t r = 0; r <= s_; ++r) sum += basis(r, col);
    if (std::abs(sum) > std::abs(lambda_sum)) {
      lambda_sum = sum;
      best = col;
    }
  }
  if (best == basis.cols() || std::abs(lambda_sum) < kSumTolerance)
    return std::nullopt;  // (P2) violated — probability-zero event

  // a = λ·C / Σλ, scattered to global worker slots (λ read in place from
  // the basis column — no copy).
  for (std::size_t j = 0; j < workers_.size(); ++j) {
    double value = 0.0;
    // lint:allow(raw-fp-accumulation): s+1 terms in fixed r order; decode coefficients, not the kernel hot path
    for (std::size_t r = 0; r <= s_; ++r) value += basis(r, best) * c_(r, j);
    coefficients[workers_[j]] = value / lambda_sum;
  }
  // Entries on missing workers are λ·C_S/Σλ = 0 by construction; zero them
  // exactly so callers can rely on supp(a) ⊆ received.
  for (std::size_t j : missing_cols) coefficients[workers_[j]] = 0.0;
  return coefficients;
}

Alg1Build build_alg1(const Assignment& assignment, std::size_t k,
                     std::size_t s, Rng& rng) {
  const std::size_t m = assignment.size();
  HGC_REQUIRE(is_valid_allocation(assignment, k, s),
              "assignment must replicate every partition exactly s+1 times");

  // Active workers: those holding at least one partition. C gets one column
  // per active worker; idle workers keep zero rows and stay out of decoding.
  std::vector<WorkerId> active;
  for (std::size_t w = 0; w < m; ++w)
    if (!assignment[w].empty()) active.push_back(w);
  HGC_REQUIRE(active.size() > s, "need more than s active workers");

  std::vector<std::size_t> col_of(m, m);  // global worker -> C column
  for (std::size_t j = 0; j < active.size(); ++j) col_of[active[j]] = j;

  Matrix c(s + 1, active.size());
  for (std::size_t r = 0; r <= s; ++r)
    for (std::size_t j = 0; j < active.size(); ++j)
      c(r, j) = rng.uniform(0.0, 1.0);

  // Holders of each partition (exactly s+1 workers, validated above).
  std::vector<std::vector<WorkerId>> holders(k);
  for (std::size_t w = 0; w < m; ++w)
    for (PartitionId p : assignment[w]) holders[p].push_back(w);

  // B is built sparse: exactly (s+1)·k entries regardless of m, so the
  // construction cost no longer carries the O(m·k) dense footprint that
  // walled out 10k-worker rounds.
  SparseRowBuilder b(m, k);
  // One LU workspace serves all k per-partition solves: C_p is
  // (s+1)×(s+1) for every partition, so after partition 0 the factor and
  // solution buffers are warm and the loop allocates nothing.
  LuWorkspace lu;
  Vector d;
  std::vector<std::size_t> cols;
  const Vector ones(s + 1, 1.0);
  for (PartitionId p = 0; p < k; ++p) {
    cols.resize(holders[p].size());
    for (std::size_t i = 0; i < holders[p].size(); ++i)
      cols[i] = col_of[holders[p][i]];
    // C_p is (s+1)×(s+1) and nonsingular w.p. 1 (property P1, Lemma 3);
    // solve_into's singularity assert covers the probability-zero event.
    lu.factor_cols(c, cols);
    lu.solve_into(ones, d);
    for (std::size_t i = 0; i < holders[p].size(); ++i)
      b.set(holders[p][i], p, d[i]);
  }

  return {b.build(), Alg1Code(std::move(c), std::move(active), s)};
}

}  // namespace hgc
