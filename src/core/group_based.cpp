#include "core/group_based.hpp"

#include <algorithm>

#include "core/allocation.hpp"
#include "util/error.hpp"

namespace hgc {

struct GroupBasedScheme::Build {
  SparseRowMatrix b;
  Assignment assignment;
  std::vector<Group> groups;
  Alg1Code sub_code;
};

namespace {

GroupBasedScheme::Build make_build(const Throughputs& c, std::size_t k,
                                   std::size_t s, Rng& rng,
                                   const GroupSearchLimits& limits) {
  const auto counts = heter_aware_counts(c, k, s);
  Assignment assignment = cyclic_assignment(counts, k);
  const std::size_t m = assignment.size();

  // Alg. 2: enumerate groups in the support, then prune to disjointness.
  std::vector<Group> groups =
      prune_groups(find_all_groups(assignment, k, limits));
  const std::size_t p = groups.size();
  HGC_ASSERT(p <= s + 1,
             "disjoint groups cannot exceed the replication factor");

  std::vector<bool> in_group(m, false);
  for (const Group& g : groups)
    for (WorkerId w : g) in_group[w] = true;

  // Alg. 3: coefficient 1 for group workers on their own partitions.
  SparseRowBuilder b(m, k);
  for (const Group& g : groups)
    for (WorkerId w : g)
      for (PartitionId partition : assignment[w]) b.set(w, partition, 1.0);

  // Non-group workers form an Alg.1 sub-code with tolerance s' = s − P.
  // Their supports cover every partition exactly s+1−P times because each
  // kept group absorbs exactly one copy per partition.
  Alg1Code sub_code;
  Assignment sub_assignment(m);
  bool any_residual = false;
  for (std::size_t w = 0; w < m; ++w) {
    if (!in_group[w] && !assignment[w].empty()) {
      sub_assignment[w] = assignment[w];
      any_residual = true;
    }
  }
  if (any_residual) {
    HGC_ASSERT(p <= s, "residual workers imply P <= s");
    Alg1Build sub = build_alg1(sub_assignment, k, s - p, rng);
    for (std::size_t w = 0; w < m; ++w) {
      if (sub_assignment[w].empty()) continue;
      const auto cols = sub.b.row_cols(w);
      const auto values = sub.b.row_values(w);
      for (std::size_t i = 0; i < cols.size(); ++i)
        b.set(w, cols[i], values[i]);
    }
    sub_code = std::move(sub.code);
  }

  return {b.build(), std::move(assignment), std::move(groups),
          std::move(sub_code)};
}

}  // namespace

GroupBasedScheme::GroupBasedScheme(Build build, std::size_t s)
    : CodingScheme(std::move(build.b), std::move(build.assignment), s),
      groups_(std::move(build.groups)),
      sub_code_(std::move(build.sub_code)) {}

GroupBasedScheme::GroupBasedScheme(const Throughputs& c, std::size_t k,
                                   std::size_t s, Rng& rng,
                                   const GroupSearchLimits& limits)
    : GroupBasedScheme(make_build(c, k, s, rng, limits), s) {}

std::optional<Vector> GroupBasedScheme::decoding_coefficients(
    const std::vector<bool>& received) const {
  HGC_REQUIRE(received.size() == num_workers(),
              "received flags must have one entry per worker");

  // (1) Any complete group: a = 1_G (Eq. 8).
  for (const Group& g : groups_) {
    const bool complete = std::all_of(
        g.begin(), g.end(), [&](WorkerId w) { return received[w]; });
    if (complete) {
      Vector coefficients(num_workers(), 0.0);
      for (WorkerId w : g) coefficients[w] = 1.0;
      return coefficients;
    }
  }

  // (2) The Alg.1 sub-code over the non-group workers.
  if (!sub_code_.empty()) {
    if (auto fast = sub_code_.decode(received, num_workers())) return fast;
  }

  // (3) Mixed combinations: only worth a least-squares solve once at least
  // (active − s) results arrived — the point at which Theorem 6 guarantees
  // decodability.
  std::size_t active = 0;
  for (const auto& partitions : assignment())
    if (!partitions.empty()) ++active;
  if (count_received(received) >= active - stragglers_tolerated())
    return generic_decode(received);
  return std::nullopt;
}

std::size_t GroupBasedScheme::min_results_required() const {
  std::size_t smallest = num_workers() - stragglers_tolerated();
  for (const Group& g : groups_)
    smallest = std::min(smallest, g.size());
  if (!sub_code_.empty()) {
    const std::size_t sub_need =
        sub_code_.workers().size() - sub_code_.stragglers_tolerated();
    smallest = std::min(smallest, sub_need);
  }
  return smallest;
}

}  // namespace hgc
