#include "core/coding_scheme.hpp"

#include <algorithm>

#include "linalg/kernels.hpp"
#include "util/error.hpp"

namespace hgc {
namespace {
// A least-squares residual below this bound certifies 1 ∈ rowspan(B_R).
constexpr double kDecodeResidualTolerance = 1e-8;

void check_shape(const SparseRowMatrix& b, std::size_t assignment_rows,
                 std::size_t s) {
  HGC_REQUIRE(assignment_rows == b.rows(),
              "assignment must have one entry per worker");
  HGC_REQUIRE(s < b.rows(),
              "cannot tolerate as many stragglers as there are workers");
}
}  // namespace

CodingScheme::CodingScheme(SparseRowMatrix b, Assignment assignment,
                           std::size_t s)
    : coding_matrix_(std::move(b)),
      assignment_(std::move(assignment)),
      s_(s) {
  check_shape(coding_matrix_, assignment_.size(), s_);
  // The coding matrix's support must match the declared assignment exactly;
  // the simulator derives per-worker compute load from the assignment and
  // the decoder trusts the matrix, so a mismatch would silently skew both.
  // Sparse rows store exactly the nonzeros in ascending column order, so
  // this is a direct O(nnz) sequence compare — not the old O(m·k) scan.
  for (std::size_t w = 0; w < assignment_.size(); ++w) {
    const auto cols = coding_matrix_.row_cols(w);
    HGC_REQUIRE(std::equal(cols.begin(), cols.end(), assignment_[w].begin(),
                           assignment_[w].end()),
                "coding-matrix support differs from assignment");
  }
}

CodingScheme::CodingScheme(SparseRowMatrix b, std::size_t s)
    : coding_matrix_(std::move(b)), s_(s) {
  check_shape(coding_matrix_, coding_matrix_.rows(), s_);
  // The assignment IS the row structure: supp(b_w), already ascending.
  assignment_.resize(coding_matrix_.rows());
  for (std::size_t w = 0; w < coding_matrix_.rows(); ++w) {
    const auto cols = coding_matrix_.row_cols(w);
    assignment_[w].assign(cols.begin(), cols.end());
  }
}

CodingScheme::CodingScheme(const Matrix& b, Assignment assignment,
                           std::size_t s)
    : CodingScheme(SparseRowMatrix::from_dense(b), std::move(assignment), s) {}

const Matrix& CodingScheme::coding_matrix() const {
  std::call_once(dense_view_once_,
                 [this] { dense_view_ = coding_matrix_.to_dense(); });
  return dense_view_;
}

std::optional<Vector> CodingScheme::generic_decode(
    const std::vector<bool>& received) const {
  // One workspace per thread: the sweep runtime's worker threads each warm
  // up their own buffers once and then solve allocation-free. Results never
  // depend on workspace history, so this cannot perturb determinism.
  thread_local SolveWorkspace ws;
  return generic_decode(received, ws);
}

std::optional<Vector> CodingScheme::generic_decode(
    const std::vector<bool>& received, SolveWorkspace& ws) const {
  HGC_REQUIRE(received.size() == num_workers(),
              "received flags must have one entry per worker");
  std::vector<std::size_t>& rows = ws.indices;
  rows.clear();
  for (std::size_t w = 0; w < received.size(); ++w)
    if (received[w]) rows.push_back(w);
  if (rows.empty()) return std::nullopt;

  // Solve B_Rᵀ·x = 1 (k equations, |R| unknowns) packed straight from the
  // sparse rows of B — byte-identical to the old dense gather (see
  // QrWorkspace::factor_transposed's sparse overload).
  ws.qr.factor_transposed(coding_matrix_, rows);
  ws.rhs.assign(num_partitions(), 1.0);
  const double residual = ws.qr.solve_into(ws.rhs, ws.x);
  if (residual > kDecodeResidualTolerance) return std::nullopt;

  Vector coefficients(num_workers(), 0.0);
  for (std::size_t i = 0; i < rows.size(); ++i)
    coefficients[rows[i]] = ws.x[i];
  return coefficients;
}

Vector encode_gradient(const CodingScheme& scheme, WorkerId worker,
                       const std::vector<Vector>& partition_gradients) {
  HGC_REQUIRE(worker < scheme.num_workers(), "worker id out of range");
  HGC_REQUIRE(partition_gradients.size() == scheme.num_partitions(),
              "need one gradient slot per partition");
  const SparseRowMatrix& b = scheme.sparse_matrix();
  const auto cols = b.row_cols(worker);
  const auto values = b.row_values(worker);
  if (cols.empty()) return {};

  // Same coefficients in the same ascending-partition order as the old
  // dense-indexed loop, so every axpy — and every output byte — matches.
  const std::size_t dim = partition_gradients[cols.front()].size();
  Vector coded(dim, 0.0);
  for (std::size_t i = 0; i < cols.size(); ++i) {
    const Vector& g = partition_gradients[cols[i]];
    HGC_REQUIRE(g.size() == dim, "partition gradients must share a dimension");
    kernels::axpy(values[i], g, coded);
  }
  return coded;
}

Vector combine_coded_gradients(std::span<const double> coefficients,
                               const std::vector<Vector>& coded) {
  HGC_REQUIRE(coefficients.size() == coded.size(),
              "one coefficient per worker result");
  std::size_t dim = 0;
  for (std::size_t w = 0; w < coded.size(); ++w)
    if (coefficients[w] != 0.0 && !coded[w].empty()) {
      dim = coded[w].size();
      break;
    }
  Vector aggregate(dim, 0.0);
  for (std::size_t w = 0; w < coded.size(); ++w) {
    if (coefficients[w] == 0.0) continue;
    HGC_REQUIRE(!coded[w].empty(),
                "nonzero coefficient for a worker that sent no result");
    HGC_REQUIRE(coded[w].size() == dim, "coded gradients must share a size");
    kernels::axpy(coefficients[w], coded[w], aggregate);
  }
  return aggregate;
}

}  // namespace hgc
