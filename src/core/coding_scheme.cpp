#include "core/coding_scheme.hpp"

#include <algorithm>

#include "linalg/kernels.hpp"
#include "util/error.hpp"

namespace hgc {
namespace {
// A least-squares residual below this bound certifies 1 ∈ rowspan(B_R).
constexpr double kDecodeResidualTolerance = 1e-8;
}  // namespace

CodingScheme::CodingScheme(Matrix b, Assignment assignment, std::size_t s)
    : coding_matrix_(std::move(b)),
      assignment_(std::move(assignment)),
      s_(s) {
  HGC_REQUIRE(assignment_.size() == coding_matrix_.rows(),
              "assignment must have one entry per worker");
  HGC_REQUIRE(s_ < coding_matrix_.rows(),
              "cannot tolerate as many stragglers as there are workers");
  // The coding matrix's support must match the declared assignment exactly;
  // the simulator derives per-worker compute load from the assignment and
  // the decoder trusts the matrix, so a mismatch would silently skew both.
  for (std::size_t w = 0; w < assignment_.size(); ++w) {
    std::vector<PartitionId> support;
    for (std::size_t j = 0; j < coding_matrix_.cols(); ++j)
      if (coding_matrix_(w, j) != 0.0) support.push_back(j);
    HGC_REQUIRE(support == assignment_[w],
                "coding-matrix support differs from assignment");
  }
}

std::optional<Vector> CodingScheme::generic_decode(
    const std::vector<bool>& received) const {
  // One workspace per thread: the sweep runtime's worker threads each warm
  // up their own buffers once and then solve allocation-free. Results never
  // depend on workspace history, so this cannot perturb determinism.
  thread_local SolveWorkspace ws;
  return generic_decode(received, ws);
}

std::optional<Vector> CodingScheme::generic_decode(
    const std::vector<bool>& received, SolveWorkspace& ws) const {
  HGC_REQUIRE(received.size() == num_workers(),
              "received flags must have one entry per worker");
  std::vector<std::size_t>& rows = ws.indices;
  rows.clear();
  for (std::size_t w = 0; w < received.size(); ++w)
    if (received[w]) rows.push_back(w);
  if (rows.empty()) return std::nullopt;

  // Solve B_Rᵀ·x = 1 (k equations, |R| unknowns) straight against the
  // selected rows of B — no select_rows/transposed temporaries.
  ws.qr.factor_transposed(RowSelectView(coding_matrix_, rows));
  ws.rhs.assign(num_partitions(), 1.0);
  const double residual = ws.qr.solve_into(ws.rhs, ws.x);
  if (residual > kDecodeResidualTolerance) return std::nullopt;

  Vector coefficients(num_workers(), 0.0);
  for (std::size_t i = 0; i < rows.size(); ++i)
    coefficients[rows[i]] = ws.x[i];
  return coefficients;
}

Vector encode_gradient(const CodingScheme& scheme, WorkerId worker,
                       const std::vector<Vector>& partition_gradients) {
  HGC_REQUIRE(worker < scheme.num_workers(), "worker id out of range");
  HGC_REQUIRE(partition_gradients.size() == scheme.num_partitions(),
              "need one gradient slot per partition");
  const auto& mine = scheme.assignment()[worker];
  if (mine.empty()) return {};

  const std::size_t dim = partition_gradients[mine.front()].size();
  Vector coded(dim, 0.0);
  for (PartitionId p : mine) {
    const Vector& g = partition_gradients[p];
    HGC_REQUIRE(g.size() == dim, "partition gradients must share a dimension");
    kernels::axpy(scheme.coding_matrix()(worker, p), g, coded);
  }
  return coded;
}

Vector combine_coded_gradients(std::span<const double> coefficients,
                               const std::vector<Vector>& coded) {
  HGC_REQUIRE(coefficients.size() == coded.size(),
              "one coefficient per worker result");
  std::size_t dim = 0;
  for (std::size_t w = 0; w < coded.size(); ++w)
    if (coefficients[w] != 0.0 && !coded[w].empty()) {
      dim = coded[w].size();
      break;
    }
  Vector aggregate(dim, 0.0);
  for (std::size_t w = 0; w < coded.size(); ++w) {
    if (coefficients[w] == 0.0) continue;
    HGC_REQUIRE(!coded[w].empty(),
                "nonzero coefficient for a worker that sent no result");
    HGC_REQUIRE(coded[w].size() == dim, "coded gradients must share a size");
    kernels::axpy(coefficients[w], coded[w], aggregate);
  }
  return aggregate;
}

}  // namespace hgc
