// Shared cache of constructed coding schemes — the sweep-level half of the
// caching subsystem (ROADMAP "sweep-level caching").
//
// Scheme construction (Alg. 1's least-squares per worker, the group search)
// is a deterministic function of (kind, k, s, estimated throughputs,
// construction seed): run_experiment always seeds a fresh Rng from the
// experiment seed before calling make_scheme. Sweep cells that differ only
// in axes the construction never sees (straggler model, fluctuation,
// iteration count — and, for the deterministic schemes, the seed) therefore
// rebuild byte-identical B matrices from scratch. This cache interns them:
// one shared_ptr<const CodingScheme> per distinct construction input, safe
// to share read-only across pool threads.
//
// Key semantics (what can and cannot be shared):
//   * kind, k, s and m = c.size() are always part of the key.
//   * The estimated-throughputs vector is folded in only for the
//     throughput-aware schemes (heter-aware, group-based); naive, cyclic and
//     fractional repetition ignore c by design and share across clusters of
//     equal size.
//   * The construction seed is folded in only for the randomized schemes
//     (cyclic, heter-aware, group-based draw the random C matrix from the
//     construction Rng); naive and fractional repetition are deterministic
//     and share across seeds.
// Note that with estimation_sigma > 0 the *estimated* throughputs are
// themselves seed-dependent, so throughput-aware schemes never share across
// seeds in that regime even before the seed is folded in — the seed fold
// matters exactly when sigma == 0.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "core/scheme_factory.hpp"

namespace hgc {

/// True when make_scheme(kind, ...) draws from the construction Rng.
bool scheme_uses_construction_rng(SchemeKind kind);

/// True when make_scheme(kind, ...) reads the throughput estimates.
bool scheme_uses_throughputs(SchemeKind kind);

/// Thread-safe (shared-mutex, read-mostly) map from a scheme fingerprint to
/// a shared immutable scheme instance. Result-transparent by construction:
/// get_or_create builds a missing entry exactly the way run_experiment
/// would — Rng(construction_seed) fed to make_scheme — so cached and
/// uncached runs produce identical schemes.
class SchemeCache {
 public:
  SchemeCache() = default;
  SchemeCache(const SchemeCache&) = delete;
  SchemeCache& operator=(const SchemeCache&) = delete;

  /// Return the cached scheme for this fingerprint, constructing and
  /// inserting it on a miss. Concurrent misses on the same key may both
  /// construct; the first insert wins and the duplicate is discarded, so
  /// callers always agree on one instance.
  std::shared_ptr<const CodingScheme> get_or_create(
      SchemeKind kind, const Throughputs& c, std::size_t k, std::size_t s,
      std::uint64_t construction_seed);

  std::size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::size_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;

  void clear();

 private:
  struct Key {
    SchemeKind kind;
    std::size_t m;
    std::size_t k;
    std::size_t s;
    std::uint64_t seed;  ///< 0 for deterministic constructions
    /// Bit patterns of the estimated throughputs (empty for
    /// throughput-oblivious schemes). Stored as bits, not doubles, so the
    /// defaulted equality agrees with the hash: -0.0 and +0.0 are distinct
    /// keys and a NaN key equals itself, keeping the unordered_map
    /// contract even for pathological caller input.
    std::vector<std::uint64_t> c_bits;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };

  mutable std::shared_mutex mutex_;
  std::unordered_map<Key, std::shared_ptr<const CodingScheme>, KeyHash> map_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
};

}  // namespace hgc
