#include "core/groups.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "util/error.hpp"

namespace hgc {
namespace {

/// Fixed-size bitset over k partitions backed by 64-bit words.
class PartitionMask {
 public:
  explicit PartitionMask(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  void set(std::size_t i) { words_[i / 64] |= std::uint64_t{1} << (i % 64); }

  bool any_overlap(const PartitionMask& other) const {
    for (std::size_t w = 0; w < words_.size(); ++w)
      if (words_[w] & other.words_[w]) return true;
    return false;
  }

  bool is_subset_of(const PartitionMask& other) const {
    for (std::size_t w = 0; w < words_.size(); ++w)
      if (words_[w] & ~other.words_[w]) return false;
    return true;
  }

  bool test(std::size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1;
  }

  void add(const PartitionMask& other) {
    for (std::size_t w = 0; w < words_.size(); ++w)
      words_[w] |= other.words_[w];
  }

  void remove(const PartitionMask& other) {
    for (std::size_t w = 0; w < words_.size(); ++w)
      words_[w] &= ~other.words_[w];
  }

  bool empty() const {
    for (std::uint64_t w : words_)
      if (w) return false;
    return true;
  }

  /// Index of the lowest set bit; bits_ if none.
  std::size_t lowest() const {
    for (std::size_t w = 0; w < words_.size(); ++w)
      if (words_[w])
        return w * 64 +
               static_cast<std::size_t>(std::countr_zero(words_[w]));
    return bits_;
  }

 private:
  std::size_t bits_;
  std::vector<std::uint64_t> words_;
};

struct GroupSearch {
  const std::vector<PartitionMask>& worker_masks;
  const std::vector<std::vector<WorkerId>>& holders;
  const GroupSearchLimits& limits;
  std::vector<Group>& out;
  std::size_t nodes = 0;

  bool exhausted() const {
    return out.size() >= limits.max_groups || nodes >= limits.max_nodes;
  }

  void dfs(PartitionMask& remaining, Group& chosen) {
    if (exhausted()) return;
    ++nodes;
    if (remaining.empty()) {
      // All partitions covered: `chosen` is an exact cover.
      out.push_back(chosen);
      return;
    }
    const std::size_t lowest = remaining.lowest();
    // Branch on the lowest uncovered partition: exactly one worker in any
    // cover supplies it, so every cover is enumerated exactly once.
    for (WorkerId w : holders[lowest]) {
      const PartitionMask& mask = worker_masks[w];
      if (!mask.is_subset_of(remaining)) continue;
      chosen.push_back(w);
      remaining.remove(mask);
      dfs(remaining, chosen);
      remaining.add(mask);
      chosen.pop_back();
      if (exhausted()) return;
    }
  }
};

}  // namespace

std::vector<Group> find_all_groups(const Assignment& assignment,
                                   std::size_t k,
                                   const GroupSearchLimits& limits) {
  HGC_REQUIRE(k > 0, "need at least one partition");
  const std::size_t m = assignment.size();

  std::vector<PartitionMask> worker_masks;
  worker_masks.reserve(m);
  for (std::size_t w = 0; w < m; ++w) {
    PartitionMask mask(k);
    for (PartitionId p : assignment[w]) {
      HGC_REQUIRE(p < k, "partition id out of range");
      mask.set(p);
    }
    worker_masks.push_back(std::move(mask));
  }

  std::vector<std::vector<WorkerId>> holders(k);
  for (std::size_t w = 0; w < m; ++w)
    for (PartitionId p : assignment[w]) holders[p].push_back(w);

  std::vector<Group> groups;
  PartitionMask remaining(k);
  for (std::size_t p = 0; p < k; ++p) remaining.set(p);
  Group chosen;
  GroupSearch search{worker_masks, holders, limits, groups};
  search.dfs(remaining, chosen);

  for (Group& g : groups) std::sort(g.begin(), g.end());
  std::sort(groups.begin(), groups.end());
  return groups;
}

std::vector<Group> prune_groups(std::vector<Group> groups) {
  auto intersects = [](const Group& a, const Group& b) {
    // Both sorted: linear merge scan.
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] == b[j]) return true;
      if (a[i] < b[j])
        ++i;
      else
        ++j;
    }
    return false;
  };

  while (true) {
    const std::size_t n = groups.size();
    std::vector<std::size_t> conflicts(n, 0);
    bool any = false;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        if (intersects(groups[i], groups[j])) {
          ++conflicts[i];
          ++conflicts[j];
          any = true;
        }
    if (!any) break;

    // Remove the group with the most conflicts; break ties toward the larger
    // group (harder to complete at runtime), then the later index.
    std::size_t victim = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (conflicts[i] > conflicts[victim] ||
          (conflicts[i] == conflicts[victim] &&
           groups[i].size() >= groups[victim].size()))
        victim = i;
    }
    groups.erase(groups.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  return groups;
}

bool is_exact_cover(const Assignment& assignment, std::size_t k,
                    const Group& group) {
  std::vector<std::size_t> copies(k, 0);
  for (WorkerId w : group) {
    if (w >= assignment.size()) return false;
    for (PartitionId p : assignment[w]) {
      if (p >= k) return false;
      ++copies[p];
    }
  }
  return std::all_of(copies.begin(), copies.end(),
                     [](std::size_t c) { return c == 1; });
}

bool are_disjoint(const std::vector<Group>& groups) {
  std::vector<WorkerId> all;
  for (const Group& g : groups) all.insert(all.end(), g.begin(), g.end());
  std::sort(all.begin(), all.end());
  return std::adjacent_find(all.begin(), all.end()) == all.end();
}

}  // namespace hgc
