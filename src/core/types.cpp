#include "core/types.hpp"

#include <sstream>

namespace hgc {

std::string to_string(const Assignment& assignment) {
  std::ostringstream os;
  for (std::size_t w = 0; w < assignment.size(); ++w) {
    if (w) os << ' ';
    os << 'W' << w << ":{";
    for (std::size_t i = 0; i < assignment[w].size(); ++i) {
      if (i) os << ',';
      os << assignment[w][i];
    }
    os << '}';
  }
  return os.str();
}

std::vector<WorkerId> missing_workers(const std::vector<bool>& received) {
  std::vector<WorkerId> missing;
  for (std::size_t w = 0; w < received.size(); ++w)
    if (!received[w]) missing.push_back(w);
  return missing;
}

std::size_t count_received(const std::vector<bool>& received) {
  std::size_t n = 0;
  for (bool r : received) n += r ? 1 : 0;
  return n;
}

}  // namespace hgc
