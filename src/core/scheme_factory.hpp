// Uniform construction of every scheme the evaluation compares.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/coding_scheme.hpp"
#include "util/rng.hpp"

namespace hgc {

/// The coding strategies evaluated in Section VI (plus fractional
/// repetition, which the paper discusses but does not run).
enum class SchemeKind {
  kNaive,
  kCyclic,
  kFractionalRepetition,
  kHeterAware,
  kGroupBased,
};

/// Parse "naive" | "cyclic" | "fractional" | "heter" | "group".
SchemeKind parse_scheme_kind(const std::string& name);

std::string to_string(SchemeKind kind);

/// The four schemes the paper's figures compare, in plot order.
std::vector<SchemeKind> paper_schemes();

/// Build a scheme for m = c.size() workers with throughput estimates c,
/// k data partitions and straggler tolerance s.
///
/// Baselines ignore what they ignore by design: naive ignores c and s and
/// uses k = m; cyclic and fractional repetition ignore c (uniform loads).
std::unique_ptr<CodingScheme> make_scheme(SchemeKind kind,
                                          const Throughputs& c, std::size_t k,
                                          std::size_t s, Rng& rng);

}  // namespace hgc
