// The uncoded baseline: the dataset is split evenly, every worker computes
// its own share (B = I), and the master must wait for all m results. Zero
// redundancy, zero straggler tolerance — the paper's "Naive" scheme.
#pragma once

#include "core/coding_scheme.hpp"

namespace hgc {

/// Naive uncoded distribution: k = m, B = I_m, s = 0.
class NaiveScheme : public CodingScheme {
 public:
  explicit NaiveScheme(std::size_t m);

  std::string name() const override { return "naive"; }

  /// Decodable only once every worker has responded (all coefficients 1).
  std::optional<Vector> decoding_coefficients(
      const std::vector<bool>& received) const override;
};

}  // namespace hgc
