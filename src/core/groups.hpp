// Algorithm 2 of the paper: finding and pruning groups.
//
// A *group* is a set of workers whose data assignments exactly partition the
// dataset (condition ⋆: pairwise-disjoint supports whose union is all of D).
// Any fully-arrived group decodes the gradient by plain summation, using as
// few as m−s (often far fewer) results — the lever Section V pulls when
// throughput estimates are noisy. Kept groups must also be pairwise
// worker-disjoint (condition ⋆⋆), which is what lets Theorem 6 charge one
// straggler per damaged group.
//
// FindAllGroups is an exact-cover enumeration (Algorithm-X branching rule:
// always extend on the lowest-index uncovered partition, so each cover is
// produced exactly once). Exact cover is NP-complete in general, so the
// search carries node/solution caps; on the contiguous cyclic supports the
// heterogeneity-aware allocator emits, the caps are never approached.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace hgc {

/// A group: worker ids, sorted ascending.
using Group = std::vector<WorkerId>;

/// Search limits for FindAllGroups.
struct GroupSearchLimits {
  std::size_t max_groups = 256;   ///< stop after this many covers found
  std::size_t max_nodes = 200000; ///< stop after this many search nodes
};

/// Enumerate worker sets satisfying condition ⋆ (exact covers of the k
/// partitions by the workers' assignments). Workers with empty assignments
/// never join a group.
std::vector<Group> find_all_groups(const Assignment& assignment,
                                   std::size_t k,
                                   const GroupSearchLimits& limits = {});

/// Condition ⋆⋆: drop groups until the survivors are pairwise
/// worker-disjoint. Greedy rule from the paper: repeatedly remove the group
/// that intersects the most others (ties: the larger group, then the later
/// one), so small easily-completed groups survive.
std::vector<Group> prune_groups(std::vector<Group> groups);

/// True iff `group` exactly partitions the k partitions (condition ⋆).
bool is_exact_cover(const Assignment& assignment, std::size_t k,
                    const Group& group);

/// True iff all groups are pairwise worker-disjoint (condition ⋆⋆).
bool are_disjoint(const std::vector<Group>& groups);

}  // namespace hgc
