// Verification utilities: Condition 1 (Lemma 1), worst-case iteration time
// T(B) (Eq. 3), and the optimal bound of Theorem 5. These power the test
// suite's brute-force sweeps and the benches' analytic cross-checks.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>

#include "core/coding_scheme.hpp"
#include "core/decoding_cache.hpp"
#include "core/types.hpp"
#include "linalg/matrix.hpp"

namespace hgc {

/// Does 1_{1×k} lie in the row span of B restricted to `rows`?
bool ones_in_row_span(const Matrix& b, std::span<const std::size_t> rows,
                      double tolerance = 1e-8);

/// Brute-force Condition 1: every (m−s)-subset of rows spans the all-ones
/// vector. Exponential in m — intended for test-sized instances; callers
/// should keep C(m, s) under ~10⁶.
bool satisfies_condition1(const Matrix& b, std::size_t s,
                          double tolerance = 1e-8);

/// Visit every straggler pattern with exactly `s` stragglers; the callback
/// receives the sorted straggler set. Returns false if the callback ever
/// returned false (early exit), true otherwise.
bool for_each_straggler_pattern(
    std::size_t m, std::size_t s,
    const std::function<bool(const StragglerSet&)>& visit);

/// Completion time of the whole task for a given straggler pattern
/// (Section III-C): the master takes results in the order of worker finish
/// times t_i = ||b_i||_0 / c_i, skipping stragglers, and stops at the first
/// decodable prefix. Returns the stop time, or nullopt if the survivors
/// cannot decode at all. `cache`, when non-null, must wrap `scheme`; prefix
/// decodability checks then hit its LRU, which pays off when the same
/// arrival prefixes recur (repeated calls, the worst_case_time enumeration).
std::optional<double> completion_time(const CodingScheme& scheme,
                                      const Throughputs& c,
                                      const StragglerSet& stragglers,
                                      DecodingCache* cache = nullptr);

/// Worst-case completion time T(B) over all patterns with at most s
/// stragglers (Eq. 3), evaluated by brute force. Nullopt if some pattern is
/// undecodable (the scheme is not robust). The optional `cache` is shared
/// across the whole C(m, s) enumeration, where arrival prefixes overlap
/// heavily between patterns.
std::optional<double> worst_case_time(const CodingScheme& scheme,
                                      const Throughputs& c,
                                      DecodingCache* cache = nullptr);

/// Theorem 5's lower bound for any s-tolerant code on workers c:
/// (s+1)·k / Σc.
double optimal_time_bound(const Throughputs& c, std::size_t k, std::size_t s);

}  // namespace hgc
