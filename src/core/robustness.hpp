// Verification utilities: Condition 1 (Lemma 1), worst-case iteration time
// T(B) (Eq. 3), and the optimal bound of Theorem 5. These power the test
// suite's brute-force sweeps and the benches' analytic cross-checks.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <optional>
#include <utility>

#include "core/coding_scheme.hpp"
#include "core/decoding_cache.hpp"
#include "core/types.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "linalg/workspace.hpp"
#include "util/rng.hpp"

namespace hgc {

/// Does 1_{1×k} lie in the row span of B restricted to `rows`?
bool ones_in_row_span(const Matrix& b, std::span<const std::size_t> rows,
                      double tolerance = 1e-8);

/// Workspace-threaded variant: the packed B_Rᵀ, QR factors and rhs all live
/// in `ws`, so a whole enumeration of row subsets solves allocation-free.
bool ones_in_row_span(const Matrix& b, std::span<const std::size_t> rows,
                      double tolerance, SolveWorkspace& ws);

/// Sparse-native variants: pack B_Rᵀ straight from the CSR rows (byte-
/// identical packed buffer to the dense gather), no dense materialization.
bool ones_in_row_span(const SparseRowMatrix& b,
                      std::span<const std::size_t> rows,
                      double tolerance = 1e-8);
bool ones_in_row_span(const SparseRowMatrix& b,
                      std::span<const std::size_t> rows, double tolerance,
                      SolveWorkspace& ws);

/// C(m, s), saturating at `cap` — the cheap "is exact enumeration feasible?"
/// probe behind sample_straggler_patterns' auto-selection.
std::size_t count_straggler_patterns(std::size_t m, std::size_t s,
                                     std::size_t cap);

/// Brute-force Condition 1: every (m−s)-subset of rows spans the all-ones
/// vector. Exponential in m — intended for test-sized instances; callers
/// should keep C(m, s) under ~10⁶. One workspace (caller's `ws`, or a
/// per-thread default) is reused across the entire pattern enumeration;
/// after one warm-up call per shape the check performs zero heap
/// allocations (pinned by test_kernels' instrumented allocator).
bool satisfies_condition1(const Matrix& b, std::size_t s,
                          double tolerance = 1e-8,
                          SolveWorkspace* ws = nullptr);

/// Visit every straggler pattern with exactly `s` stragglers; the callback
/// receives the sorted straggler set (the caller-provided scratch buffer,
/// reused between patterns). Returns false if the callback ever returned
/// false (early exit), true otherwise.
template <typename Visit>
bool for_each_straggler_pattern(std::size_t m, std::size_t s, Visit&& visit,
                                StragglerSet& pattern) {
  HGC_REQUIRE(s <= m, "cannot choose more stragglers than workers");
  pattern.resize(s);
  // Lexicographic enumeration of all C(m, s) subsets.
  std::iota(pattern.begin(), pattern.end(), 0);
  if (s == 0) return static_cast<bool>(visit(std::as_const(pattern)));
  while (true) {
    if (!visit(std::as_const(pattern))) return false;
    // Advance to the next combination.
    std::size_t i = s;
    while (i-- > 0) {
      if (pattern[i] != i + m - s) {
        ++pattern[i];
        for (std::size_t j = i + 1; j < s; ++j)
          pattern[j] = pattern[j - 1] + 1;
        break;
      }
      if (i == 0) return true;  // wrapped: enumeration complete
    }
  }
}

/// Convenience overload owning its pattern buffer (one allocation).
template <typename Visit>
bool for_each_straggler_pattern(std::size_t m, std::size_t s, Visit&& visit) {
  StragglerSet pattern;
  return for_each_straggler_pattern(m, s, std::forward<Visit>(visit),
                                    pattern);
}

/// Seeded, deterministic sibling of for_each_straggler_pattern for instances
/// where C(m, s) is astronomical (10k-worker clusters). When
/// C(m, s) <= max_patterns the EXACT lexicographic enumeration runs (same
/// visit order as for_each_straggler_pattern, seed unused); otherwise
/// exactly `max_patterns` patterns are drawn from Rng(seed).
///
/// The sampled RNG stream is part of the function's contract: pattern i
/// consumes exactly s uniform_int draws — Floyd's algorithm over
/// j = m−s … m−1, inserting uniform_int(0, j) (or j itself on collision) —
/// and the visited pattern is sorted ascending. Duplicate patterns across
/// draws are possible and intentional (unbiased estimation); callbacks see
/// the same reused scratch buffer semantics as the exact enumeration.
/// Returns false iff the callback ever returned false (early exit).
template <typename Visit>
bool sample_straggler_patterns(std::size_t m, std::size_t s,
                               std::size_t max_patterns, std::uint64_t seed,
                               Visit&& visit, StragglerSet& pattern) {
  HGC_REQUIRE(s <= m, "cannot choose more stragglers than workers");
  HGC_REQUIRE(max_patterns > 0, "need a positive pattern budget");
  if (count_straggler_patterns(m, s, max_patterns + 1) <= max_patterns)
    return for_each_straggler_pattern(m, s, std::forward<Visit>(visit),
                                      pattern);
  Rng rng(seed);
  pattern.clear();
  pattern.reserve(s);
  for (std::size_t draw = 0; draw < max_patterns; ++draw) {
    pattern.clear();
    // Floyd's algorithm: uniform over s-subsets in exactly s draws.
    for (std::size_t j = m - s; j < m; ++j) {
      const auto t = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(j)));
      if (std::find(pattern.begin(), pattern.end(), t) != pattern.end())
        pattern.push_back(j);
      else
        pattern.push_back(t);
    }
    std::sort(pattern.begin(), pattern.end());
    if (!visit(std::as_const(pattern))) return false;
  }
  return true;
}

/// Convenience overload owning its pattern buffer (one allocation).
template <typename Visit>
bool sample_straggler_patterns(std::size_t m, std::size_t s,
                               std::size_t max_patterns, std::uint64_t seed,
                               Visit&& visit) {
  StragglerSet pattern;
  return sample_straggler_patterns(m, s, max_patterns, seed,
                                   std::forward<Visit>(visit), pattern);
}

/// Completion time of the whole task for a given straggler pattern
/// (Section III-C): the master takes results in the order of worker finish
/// times t_i = ||b_i||_0 / c_i, skipping stragglers, and stops at the first
/// decodable prefix. Returns the stop time, or nullopt if the survivors
/// cannot decode at all. `cache`, when non-null, must wrap `scheme`; prefix
/// decodability checks then hit its LRU, which pays off when the same
/// arrival prefixes recur (repeated calls, the worst_case_time enumeration).
std::optional<double> completion_time(const CodingScheme& scheme,
                                      const Throughputs& c,
                                      const StragglerSet& stragglers,
                                      DecodingCache* cache = nullptr);

/// Worst-case completion time T(B) over all patterns with at most s
/// stragglers (Eq. 3), evaluated by brute force. Nullopt if some pattern is
/// undecodable (the scheme is not robust). The optional `cache` is shared
/// across the whole C(m, s) enumeration, where arrival prefixes overlap
/// heavily between patterns.
std::optional<double> worst_case_time(const CodingScheme& scheme,
                                      const Throughputs& c,
                                      DecodingCache* cache = nullptr);

/// What a sampled robustness probe saw. `worst_time` is exact when
/// `exhaustive`, otherwise a lower bound on T(B) (sampling can only miss
/// bad patterns, never invent them).
struct RobustnessEstimate {
  std::size_t patterns_checked = 0;
  std::size_t undecodable = 0;   ///< patterns whose survivors cannot decode
  double worst_time = 0.0;       ///< max completion time over decodable ones
  bool exhaustive = false;       ///< true when all C(m,s)+1 patterns ran
};

/// Sampled sibling of worst_case_time: checks the zero-straggler pattern
/// plus (up to) `max_patterns` exact-s patterns via
/// sample_straggler_patterns(seed). Unlike worst_case_time it never early-
/// exits — undecodable patterns are counted, making the result a robustness
/// *estimate* usable at 10k-worker scale where C(m, s) is astronomical.
RobustnessEstimate estimate_worst_case_time(const CodingScheme& scheme,
                                            const Throughputs& c,
                                            std::size_t max_patterns,
                                            std::uint64_t seed,
                                            DecodingCache* cache = nullptr);

/// Theorem 5's lower bound for any s-tolerant code on workers c:
/// (s+1)·k / Σc.
double optimal_time_bound(const Throughputs& c, std::size_t k, std::size_t s);

}  // namespace hgc
