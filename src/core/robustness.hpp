// Verification utilities: Condition 1 (Lemma 1), worst-case iteration time
// T(B) (Eq. 3), and the optimal bound of Theorem 5. These power the test
// suite's brute-force sweeps and the benches' analytic cross-checks.
#pragma once

#include <cstddef>
#include <numeric>
#include <optional>
#include <utility>

#include "core/coding_scheme.hpp"
#include "core/decoding_cache.hpp"
#include "core/types.hpp"
#include "linalg/matrix.hpp"
#include "linalg/workspace.hpp"

namespace hgc {

/// Does 1_{1×k} lie in the row span of B restricted to `rows`?
bool ones_in_row_span(const Matrix& b, std::span<const std::size_t> rows,
                      double tolerance = 1e-8);

/// Workspace-threaded variant: the packed B_Rᵀ, QR factors and rhs all live
/// in `ws`, so a whole enumeration of row subsets solves allocation-free.
bool ones_in_row_span(const Matrix& b, std::span<const std::size_t> rows,
                      double tolerance, SolveWorkspace& ws);

/// Brute-force Condition 1: every (m−s)-subset of rows spans the all-ones
/// vector. Exponential in m — intended for test-sized instances; callers
/// should keep C(m, s) under ~10⁶. One workspace (caller's `ws`, or a
/// per-thread default) is reused across the entire pattern enumeration;
/// after one warm-up call per shape the check performs zero heap
/// allocations (pinned by test_kernels' instrumented allocator).
bool satisfies_condition1(const Matrix& b, std::size_t s,
                          double tolerance = 1e-8,
                          SolveWorkspace* ws = nullptr);

/// Visit every straggler pattern with exactly `s` stragglers; the callback
/// receives the sorted straggler set (the caller-provided scratch buffer,
/// reused between patterns). Returns false if the callback ever returned
/// false (early exit), true otherwise.
template <typename Visit>
bool for_each_straggler_pattern(std::size_t m, std::size_t s, Visit&& visit,
                                StragglerSet& pattern) {
  HGC_REQUIRE(s <= m, "cannot choose more stragglers than workers");
  pattern.resize(s);
  // Lexicographic enumeration of all C(m, s) subsets.
  std::iota(pattern.begin(), pattern.end(), 0);
  if (s == 0) return static_cast<bool>(visit(std::as_const(pattern)));
  while (true) {
    if (!visit(std::as_const(pattern))) return false;
    // Advance to the next combination.
    std::size_t i = s;
    while (i-- > 0) {
      if (pattern[i] != i + m - s) {
        ++pattern[i];
        for (std::size_t j = i + 1; j < s; ++j)
          pattern[j] = pattern[j - 1] + 1;
        break;
      }
      if (i == 0) return true;  // wrapped: enumeration complete
    }
  }
}

/// Convenience overload owning its pattern buffer (one allocation).
template <typename Visit>
bool for_each_straggler_pattern(std::size_t m, std::size_t s, Visit&& visit) {
  StragglerSet pattern;
  return for_each_straggler_pattern(m, s, std::forward<Visit>(visit),
                                    pattern);
}

/// Completion time of the whole task for a given straggler pattern
/// (Section III-C): the master takes results in the order of worker finish
/// times t_i = ||b_i||_0 / c_i, skipping stragglers, and stops at the first
/// decodable prefix. Returns the stop time, or nullopt if the survivors
/// cannot decode at all. `cache`, when non-null, must wrap `scheme`; prefix
/// decodability checks then hit its LRU, which pays off when the same
/// arrival prefixes recur (repeated calls, the worst_case_time enumeration).
std::optional<double> completion_time(const CodingScheme& scheme,
                                      const Throughputs& c,
                                      const StragglerSet& stragglers,
                                      DecodingCache* cache = nullptr);

/// Worst-case completion time T(B) over all patterns with at most s
/// stragglers (Eq. 3), evaluated by brute force. Nullopt if some pattern is
/// undecodable (the scheme is not robust). The optional `cache` is shared
/// across the whole C(m, s) enumeration, where arrival prefixes overlap
/// heavily between patterns.
std::optional<double> worst_case_time(const CodingScheme& scheme,
                                      const Throughputs& c,
                                      DecodingCache* cache = nullptr);

/// Theorem 5's lower bound for any s-tolerant code on workers c:
/// (s+1)·k / Σc.
double optimal_time_bound(const Throughputs& c, std::size_t k, std::size_t s);

}  // namespace hgc
