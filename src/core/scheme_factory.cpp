#include "core/scheme_factory.hpp"

#include "core/cyclic.hpp"
#include "core/fractional.hpp"
#include "core/group_based.hpp"
#include "core/heter_aware.hpp"
#include "core/naive.hpp"
#include "util/error.hpp"

namespace hgc {

SchemeKind parse_scheme_kind(const std::string& name) {
  if (name == "naive") return SchemeKind::kNaive;
  if (name == "cyclic") return SchemeKind::kCyclic;
  if (name == "fractional") return SchemeKind::kFractionalRepetition;
  if (name == "heter" || name == "heter-aware") return SchemeKind::kHeterAware;
  if (name == "group" || name == "group-based") return SchemeKind::kGroupBased;
  throw std::invalid_argument("unknown scheme: " + name);
}

std::string to_string(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNaive:
      return "naive";
    case SchemeKind::kCyclic:
      return "cyclic";
    case SchemeKind::kFractionalRepetition:
      return "fractional-repetition";
    case SchemeKind::kHeterAware:
      return "heter-aware";
    case SchemeKind::kGroupBased:
      return "group-based";
  }
  throw InternalError("unhandled SchemeKind");
}

std::vector<SchemeKind> paper_schemes() {
  return {SchemeKind::kNaive, SchemeKind::kCyclic, SchemeKind::kHeterAware,
          SchemeKind::kGroupBased};
}

std::unique_ptr<CodingScheme> make_scheme(SchemeKind kind,
                                          const Throughputs& c, std::size_t k,
                                          std::size_t s, Rng& rng) {
  const std::size_t m = c.size();
  HGC_REQUIRE(m > 0, "need at least one worker");
  switch (kind) {
    case SchemeKind::kNaive:
      return std::make_unique<NaiveScheme>(m);
    case SchemeKind::kCyclic:
      return std::make_unique<CyclicScheme>(m, s, rng);
    case SchemeKind::kFractionalRepetition:
      return std::make_unique<FractionalRepetitionScheme>(m, s);
    case SchemeKind::kHeterAware:
      return std::make_unique<HeterAwareScheme>(c, k, s, rng);
    case SchemeKind::kGroupBased:
      return std::make_unique<GroupBasedScheme>(c, k, s, rng);
  }
  throw InternalError("unhandled SchemeKind");
}

}  // namespace hgc
