// Algorithm 1 of the paper: constructing the coding matrix B from a random
// auxiliary matrix C (Lemmas 2 and 3).
//
// Draw C ∈ (0,1)^{(s+1)×m'} uniformly at random over the m' active workers
// (those holding at least one partition). For each partition j, the s+1
// workers holding it index an (s+1)×(s+1) submatrix C_j; solving
// C_j · d = 1_{s+1} and embedding d into column j of B yields C·B = 1, which
// gives Condition 1 (robustness) and an O(s³) decoding rule.
#pragma once

#include <optional>
#include <vector>

#include "core/types.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "util/rng.hpp"

namespace hgc {

/// The decodable structure Alg.1 leaves behind: the random matrix C plus the
/// mapping from its columns to global worker ids. Decoding for a straggler
/// set S reduces to a null-space solve on the straggler columns of C
/// (Section III-B), independent of k.
class Alg1Code {
 public:
  Alg1Code() = default;
  Alg1Code(Matrix c, std::vector<WorkerId> workers, std::size_t s);

  /// Decoding coefficients over `total_workers` slots: zero outside this
  /// code's workers and on non-received workers; a·B = 1 on success. Fails
  /// (nullopt) when more than s of this code's workers are missing.
  std::optional<Vector> decode(const std::vector<bool>& received,
                               std::size_t total_workers) const;

  std::size_t stragglers_tolerated() const { return s_; }
  const std::vector<WorkerId>& workers() const { return workers_; }
  const Matrix& c() const { return c_; }
  bool empty() const { return workers_.empty(); }

 private:
  Matrix c_;                       // (s+1) × |workers|
  std::vector<WorkerId> workers_;  // global ids of the code's columns
  std::size_t s_ = 0;
};

/// Result of running Algorithm 1 over an assignment.
struct Alg1Build {
  SparseRowMatrix b;  ///< m×k coding matrix (inactive workers: empty rows)
  Alg1Code code;      ///< fast decoder state
};

/// Run Algorithm 1. `assignment` must replicate every partition exactly s+1
/// times across distinct workers (is_valid_allocation). Workers with no
/// partitions get zero rows and take no part in decoding.
Alg1Build build_alg1(const Assignment& assignment, std::size_t k,
                     std::size_t s, Rng& rng);

}  // namespace hgc
