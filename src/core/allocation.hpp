// Heterogeneity-aware data allocation (Section IV-A, Eq. 5 and Eq. 6).
//
// n_i = k(s+1) · c_i / Σc partitions go to worker i, assigned cyclically so
// that each of the k partitions lands on exactly s+1 distinct workers. The
// paper assumes the n_i are integers; real throughputs rarely oblige, so
// proportional_counts() uses largest-remainder rounding that preserves the
// total and the n_i ≤ k cap (the cap is what guarantees distinctness of the
// s+1 replicas under cyclic assignment).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace hgc {

/// Split `total` units proportionally to `weights`, returning non-negative
/// integer counts with sum exactly `total` and every count ≤ `cap`.
/// Largest-remainder (Hamilton) rounding; overflow beyond the cap is
/// redistributed to the workers with the largest unmet fractional share.
/// Requires total ≤ cap·weights.size() and at least one positive weight.
std::vector<std::size_t> proportional_counts(std::span<const double> weights,
                                             std::size_t total,
                                             std::size_t cap);

/// Eq. 5: per-worker partition counts for a heterogeneity-aware code with k
/// partitions tolerating s stragglers on workers with throughputs c.
std::vector<std::size_t> heter_aware_counts(const Throughputs& c,
                                            std::size_t k, std::size_t s);

/// Eq. 6: cyclic assignment. Worker i receives partitions
/// (n'_i .. n'_i + n_i − 1) mod k with n'_i = Σ_{j<i} n_j. Requires every
/// count ≤ k and Σ counts divisible by k (so each partition is covered the
/// same number of times). Returned partition lists are sorted.
Assignment cyclic_assignment(std::span<const std::size_t> counts,
                             std::size_t k);

/// Uniform allocation of the cyclic scheme of Tandon et al. [12]:
/// every worker gets exactly s+1 of the k = m partitions.
Assignment cyclic_scheme_assignment(std::size_t m, std::size_t s);

/// How many workers hold each partition (the replication profile). A valid
/// s-tolerant allocation has every entry equal to s+1.
std::vector<std::size_t> replication_profile(const Assignment& assignment,
                                             std::size_t k);

/// True iff every partition is held by exactly s+1 distinct workers.
bool is_valid_allocation(const Assignment& assignment, std::size_t k,
                         std::size_t s);

}  // namespace hgc
