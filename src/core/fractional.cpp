#include "core/fractional.hpp"

#include "util/error.hpp"

namespace hgc {

struct FractionalRepetitionScheme::Layout {
  SparseRowMatrix b;
  Assignment assignment;
  std::vector<std::vector<WorkerId>> blocks;
  std::vector<std::vector<PartitionId>> stripes;
};

namespace {

FractionalRepetitionScheme::Layout make_layout(std::size_t m, std::size_t s,
                                               std::size_t k) {
  HGC_REQUIRE(m > 0, "need at least one worker");
  HGC_REQUIRE(s < m, "fractional repetition requires s < m");
  HGC_REQUIRE(m % (s + 1) == 0, "fractional repetition requires (s+1) | m");
  const std::size_t num_blocks = m / (s + 1);
  HGC_REQUIRE(k % num_blocks == 0,
              "fractional repetition requires (m/(s+1)) | k");
  const std::size_t stripe_size = k / num_blocks;

  FractionalRepetitionScheme::Layout layout;
  layout.assignment.resize(m);
  layout.blocks.resize(num_blocks);
  layout.stripes.resize(num_blocks);

  SparseRowBuilder b(m, k);
  for (std::size_t blk = 0; blk < num_blocks; ++blk) {
    for (std::size_t i = 0; i < stripe_size; ++i)
      layout.stripes[blk].push_back(blk * stripe_size + i);
    for (std::size_t r = 0; r <= s; ++r) {
      const WorkerId w = blk * (s + 1) + r;
      layout.blocks[blk].push_back(w);
      layout.assignment[w] = layout.stripes[blk];
      for (PartitionId p : layout.stripes[blk]) b.set(w, p, 1.0);
    }
  }
  layout.b = b.build();
  return layout;
}

}  // namespace

FractionalRepetitionScheme::FractionalRepetitionScheme(Layout layout,
                                                       std::size_t s)
    : CodingScheme(std::move(layout.b), std::move(layout.assignment), s),
      blocks_(std::move(layout.blocks)),
      stripe_partitions_(std::move(layout.stripes)) {}

FractionalRepetitionScheme::FractionalRepetitionScheme(std::size_t m,
                                                       std::size_t s,
                                                       std::size_t k)
    : FractionalRepetitionScheme(make_layout(m, s, k == 0 ? m : k), s) {}

std::optional<Vector> FractionalRepetitionScheme::decoding_coefficients(
    const std::vector<bool>& received) const {
  HGC_REQUIRE(received.size() == num_workers(),
              "received flags must have one entry per worker");
  Vector coefficients(num_workers(), 0.0);
  for (const auto& block : blocks_) {
    bool covered = false;
    for (WorkerId w : block) {
      if (received[w]) {
        coefficients[w] = 1.0;  // any single replica carries the whole stripe
        covered = true;
        break;
      }
    }
    if (!covered) return std::nullopt;
  }
  return coefficients;
}

std::size_t FractionalRepetitionScheme::min_results_required() const {
  return blocks_.size();
}

}  // namespace hgc
