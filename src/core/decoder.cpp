#include "core/decoder.hpp"

#include "core/robustness.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace hgc {
namespace {
// Mirrors coding_scheme.cpp's bound: a least-squares residual below this
// certifies 1 ∈ rowspan(B_R), here read off the incremental factorization.
constexpr double kDecodeResidualTolerance = 1e-8;
}  // namespace

std::optional<Vector> solve_decoding_coefficients(
    const CodingScheme& scheme, const std::vector<bool>& received) {
  if (!obs::metrics_enabled() && !obs::trace_enabled())
    return scheme.decoding_coefficients(received);

  HGC_TRACE_SCOPE("decode_solve", "decode");
  if (!obs::metrics_enabled()) return scheme.decoding_coefficients(received);

  static const obs::Counter solves =
      obs::Registry::global().counter("decode.solves");
  // Log-spaced upper-inclusive bounds bracketing the µs-to-ms solves the
  // coding-matrix sizes produce; anything slower lands in overflow.
  static const obs::Histogram solve_seconds =
      obs::Registry::global().histogram(
          "decode.solve_seconds",
          {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0});
  solves.add();
  Stopwatch timer;
  auto coefficients = scheme.decoding_coefficients(received);
  solve_seconds.observe(timer.seconds());
  return coefficients;
}

std::vector<DecodingRow> build_decoding_matrix(const CodingScheme& scheme) {
  const std::size_t m = scheme.num_workers();
  const std::size_t s = scheme.stragglers_tolerated();
  std::vector<DecodingRow> rows;
  for_each_straggler_pattern(m, s, [&](const StragglerSet& pattern) {
    std::vector<bool> received(m, true);
    for (WorkerId w : pattern) received[w] = false;
    // Workers with no data never respond regardless of the pattern.
    for (std::size_t w = 0; w < m; ++w)
      if (scheme.load(w) == 0) received[w] = false;
    auto coefficients = scheme.decoding_coefficients(received);
    if (!coefficients) {
      // s = 0 enumerates one empty pattern; naming "the worker starting the
      // pattern" would print m, which is not a worker id.
      if (pattern.empty())
        throw DecodeError(
            "scheme cannot decode even with every data-holding worker "
            "present (empty straggler pattern)");
      throw DecodeError("scheme is not robust to pattern starting at worker " +
                        std::to_string(pattern.front()));
    }
    rows.push_back({pattern, std::move(*coefficients)});
    return true;
  });
  return rows;
}

StreamingDecoder::StreamingDecoder(const CodingScheme& scheme,
                                   DecodingCache* cache,
                                   DecodeStrategy strategy)
    : scheme_(scheme),
      cache_(cache),
      strategy_(strategy),
      received_(scheme.num_workers(), false),
      coded_(scheme.num_workers()) {
  HGC_REQUIRE(!cache_ || &cache_->scheme() == &scheme_,
              "decoding cache must wrap the decoder's scheme");
  HGC_REQUIRE(!cache_ || strategy_ == DecodeStrategy::kCanonical,
              "a decoding cache and the incremental strategy are exclusive");
  if (strategy_ == DecodeStrategy::kIncremental) {
    const Vector ones(scheme_.num_partitions(), 1.0);
    iqr_.reset(ones);
  }
}

bool StreamingDecoder::add_result(WorkerId w, Vector coded_gradient) {
  HGC_REQUIRE(w < received_.size(), "worker id out of range");
  HGC_REQUIRE(!received_[w], "duplicate result from worker");
  received_[w] = true;
  coded_[w] = std::move(coded_gradient);
  ++received_count_;
  if (coefficients_) return false;  // already decodable, extra result unused
  if (strategy_ == DecodeStrategy::kIncremental) {
    // Fold worker w's B row into the factorization even before enough
    // results arrived — that is the whole point: per-arrival cost stays
    // O(k·rank) and the decodability test below is a free residual read.
    const SparseRowMatrix& b = scheme_.sparse_matrix();
    iqr_.append_scattered(b.row_cols(w), b.row_values(w));
    arrival_order_.push_back(w);
    if (received_count_ < scheme_.min_results_required()) return false;
    return try_decode_incremental();
  }
  if (received_count_ < scheme_.min_results_required()) return false;
  coefficients_ = cache_ ? cache_->decode(received_)
                         : solve_decoding_coefficients(scheme_, received_);
  return coefficients_.has_value();
}

bool StreamingDecoder::try_decode_incremental() {
  if (iqr_.residual_norm() > kDecodeResidualTolerance) return false;
  Vector x;
  iqr_.solve_into(x);
  Vector coefficients(scheme_.num_workers(), 0.0);
  for (std::size_t i = 0; i < arrival_order_.size(); ++i)
    coefficients[arrival_order_[i]] = x[i];
  coefficients_ = std::move(coefficients);
  return true;
}

Vector StreamingDecoder::aggregate() const {
  if (!coefficients_)
    throw DecodeError("aggregate requested before the code is decodable");
  return combine_coded_gradients(*coefficients_, coded_);
}

const Vector& StreamingDecoder::coefficients() const {
  if (!coefficients_)
    throw DecodeError("coefficients requested before the code is decodable");
  return *coefficients_;
}

std::vector<WorkerId> StreamingDecoder::unused_workers() const {
  std::vector<WorkerId> unused;
  for (std::size_t w = 0; w < received_.size(); ++w) {
    const bool used =
        coefficients_ && (*coefficients_)[w] != 0.0;
    if (received_[w] && !used) unused.push_back(w);
  }
  return unused;
}

void StreamingDecoder::reset() {
  std::fill(received_.begin(), received_.end(), false);
  for (auto& v : coded_) v.clear();
  received_count_ = 0;
  coefficients_.reset();
  if (strategy_ == DecodeStrategy::kIncremental) {
    arrival_order_.clear();
    const Vector ones(scheme_.num_partitions(), 1.0);
    iqr_.reset(ones);
  }
}

}  // namespace hgc
