#include "core/decoding_cache.hpp"

#include "core/decoder.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace hgc {

DecodingCache::DecodingCache(const CodingScheme& scheme, std::size_t capacity)
    : scheme_(scheme), capacity_(capacity) {
  HGC_REQUIRE(capacity > 0, "cache capacity must be positive");
}

std::vector<std::uint64_t> DecodingCache::pack(
    const std::vector<bool>& received) {
  std::vector<std::uint64_t> words((received.size() + 63) / 64, 0);
  for (std::size_t i = 0; i < received.size(); ++i)
    if (received[i]) words[i / 64] |= std::uint64_t{1} << (i % 64);
  return words;
}

std::size_t DecodingCache::KeyHash::operator()(
    const std::vector<std::uint64_t>& key) const {
  // FNV-1a over the words.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t word : key) {
    h ^= word;
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(h);
}

std::optional<Vector> DecodingCache::decode(
    const std::vector<bool>& received) {
  HGC_REQUIRE(received.size() == scheme_.num_workers(),
              "received flags must have one entry per worker");
  auto key = pack(received);
  if (const auto it = index_.find(key); it != index_.end()) {
    ++hits_;
    if (obs::metrics_enabled()) {
      static const obs::Counter cache_hits =
          obs::Registry::global().counter("decode_cache.hits");
      cache_hits.add();
    }
    entries_.splice(entries_.begin(), entries_, it->second);  // bump to MRU
    return it->second->coefficients;
  }

  ++misses_;
  if (obs::metrics_enabled()) {
    static const obs::Counter cache_misses =
        obs::Registry::global().counter("decode_cache.misses");
    cache_misses.add();
  }
  auto coefficients = solve_decoding_coefficients(scheme_, received);
  entries_.push_front({key, coefficients});
  index_[std::move(key)] = entries_.begin();
  if (entries_.size() > capacity_) {
    index_.erase(entries_.back().key);
    entries_.pop_back();
  }
  return coefficients;
}

void DecodingCache::clear() {
  entries_.clear();
  index_.clear();
  hits_ = misses_ = 0;
}

}  // namespace hgc
