// The cyclic repetition scheme of Tandon et al. [12] — the paper's main
// baseline. Uniform allocation: k = m partitions, every worker holds exactly
// s+1 of them in cyclic order, regardless of worker throughput. Construction
// and decoding reuse Alg. 1 (the original paper's construction is the
// homogeneous special case).
#pragma once

#include "core/alg1.hpp"
#include "core/coding_scheme.hpp"
#include "util/rng.hpp"

namespace hgc {

/// Cyclic gradient coding [12]: heterogeneity-blind baseline.
class CyclicScheme : public CodingScheme {
 public:
  /// m workers, k = m partitions, tolerance s (requires s < m).
  CyclicScheme(std::size_t m, std::size_t s, Rng& rng);

  std::string name() const override { return "cyclic"; }

  std::optional<Vector> decoding_coefficients(
      const std::vector<bool>& received) const override;

  const Alg1Code& code() const { return code_; }

 private:
  CyclicScheme(Alg1Build build, std::size_t s);

  Alg1Code code_;
};

}  // namespace hgc
