#include "core/naive.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hgc {
namespace {

// Sparse m×m identity: O(m) storage instead of the dense O(m²) that made
// the uncoded baseline the most expensive scheme to *construct* at scale.
SparseRowMatrix sparse_identity(std::size_t m) {
  SparseRowBuilder b(m, m);
  for (std::size_t w = 0; w < m; ++w) b.set(w, w, 1.0);
  return b.build();
}

}  // namespace

NaiveScheme::NaiveScheme(std::size_t m)
    : CodingScheme(sparse_identity(m), 0) {
  HGC_REQUIRE(m > 0, "need at least one worker");
}

std::optional<Vector> NaiveScheme::decoding_coefficients(
    const std::vector<bool>& received) const {
  HGC_REQUIRE(received.size() == num_workers(),
              "received flags must have one entry per worker");
  if (!std::all_of(received.begin(), received.end(),
                   [](bool r) { return r; }))
    return std::nullopt;
  return Vector(num_workers(), 1.0);
}

}  // namespace hgc
