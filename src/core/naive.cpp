#include "core/naive.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hgc {
namespace {

Assignment identity_assignment(std::size_t m) {
  Assignment assignment(m);
  for (std::size_t w = 0; w < m; ++w) assignment[w] = {w};
  return assignment;
}

}  // namespace

NaiveScheme::NaiveScheme(std::size_t m)
    : CodingScheme(Matrix::identity(m), identity_assignment(m), 0) {
  HGC_REQUIRE(m > 0, "need at least one worker");
}

std::optional<Vector> NaiveScheme::decoding_coefficients(
    const std::vector<bool>& received) const {
  HGC_REQUIRE(received.size() == num_workers(),
              "received flags must have one entry per worker");
  if (!std::all_of(received.begin(), received.end(),
                   [](bool r) { return r; }))
    return std::nullopt;
  return Vector(num_workers(), 1.0);
}

}  // namespace hgc
