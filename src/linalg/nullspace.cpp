#include "linalg/nullspace.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.hpp"

namespace hgc {

void reduce_to_rref(Matrix& a, std::vector<std::size_t>& pivots,
                    double tolerance) {
  pivots.clear();
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < cols && pivot_row < rows; ++col) {
    // Partial pivot within this column.
    std::size_t best_row = pivot_row;
    double best = std::abs(a(pivot_row, col));
    for (std::size_t r = pivot_row + 1; r < rows; ++r) {
      const double cand = std::abs(a(r, col));
      if (cand > best) {
        best = cand;
        best_row = r;
      }
    }
    if (best <= tolerance) continue;  // free column
    if (best_row != pivot_row) {
      const auto from = a.row(best_row);
      const auto to = a.row(pivot_row);
      std::swap_ranges(from.begin(), from.end(), to.begin());
    }

    const double inv = 1.0 / a(pivot_row, col);
    kernels::scal(inv, a.row(pivot_row));
    a(pivot_row, col) = 1.0;  // kill roundoff on the pivot itself

    for (std::size_t r = 0; r < rows; ++r) {
      if (r == pivot_row) continue;
      const double factor = a(r, col);
      if (factor == 0.0) continue;
      kernels::axpy(-factor, a.row(pivot_row), a.row(r));
      a(r, col) = 0.0;
    }
    pivots.push_back(col);
    ++pivot_row;
  }
}

std::vector<std::size_t> reduce_to_rref(Matrix& a, double tolerance) {
  std::vector<std::size_t> pivots;
  reduce_to_rref(a, pivots, tolerance);
  return pivots;
}

void null_space_basis_into(const Matrix& a, Matrix& rref,
                           std::vector<std::size_t>& pivots, Matrix& basis,
                           double tolerance) {
  HGC_REQUIRE(!a.empty(), "null space of an empty matrix");
  rref.reshape(a.rows(), a.cols());
  std::copy(a.data().begin(), a.data().end(), rref.data().begin());
  reduce_to_rref(rref, pivots, tolerance);
  const std::size_t cols = a.cols();

  basis.reshape(cols, cols - pivots.size());
  std::fill(basis.data().begin(), basis.data().end(), 0.0);
  // Walk the columns once: pivot columns are skipped, each free column
  // becomes one basis vector with its pivot variables read off the RREF.
  std::size_t next_pivot = 0;
  std::size_t fi = 0;
  for (std::size_t c = 0; c < cols; ++c) {
    if (next_pivot < pivots.size() && pivots[next_pivot] == c) {
      ++next_pivot;
      continue;
    }
    basis(c, fi) = 1.0;
    for (std::size_t pi = 0; pi < pivots.size(); ++pi)
      basis(pivots[pi], fi) = -rref(pi, c);
    ++fi;
  }
}

Matrix null_space_basis(const Matrix& a, double tolerance) {
  Matrix rref, basis;
  std::vector<std::size_t> pivots;
  null_space_basis_into(a, rref, pivots, basis, tolerance);
  return basis;
}

Vector null_space_vector(const Matrix& a, double tolerance) {
  const Matrix basis = null_space_basis(a, tolerance);
  if (basis.cols() == 0) return {};
  return basis.col(0);
}

}  // namespace hgc
