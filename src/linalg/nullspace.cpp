#include "linalg/nullspace.hpp"

#include <algorithm>
#include <cmath>

namespace hgc {

std::vector<std::size_t> reduce_to_rref(Matrix& a, double tolerance) {
  std::vector<std::size_t> pivots;
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < cols && pivot_row < rows; ++col) {
    // Partial pivot within this column.
    std::size_t best_row = pivot_row;
    double best = std::abs(a(pivot_row, col));
    for (std::size_t r = pivot_row + 1; r < rows; ++r) {
      const double cand = std::abs(a(r, col));
      if (cand > best) {
        best = cand;
        best_row = r;
      }
    }
    if (best <= tolerance) continue;  // free column
    if (best_row != pivot_row)
      for (std::size_t c = 0; c < cols; ++c)
        std::swap(a(best_row, c), a(pivot_row, c));

    const double inv = 1.0 / a(pivot_row, col);
    for (std::size_t c = 0; c < cols; ++c) a(pivot_row, c) *= inv;
    a(pivot_row, col) = 1.0;  // kill roundoff on the pivot itself

    for (std::size_t r = 0; r < rows; ++r) {
      if (r == pivot_row) continue;
      const double factor = a(r, col);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < cols; ++c)
        a(r, c) -= factor * a(pivot_row, c);
      a(r, col) = 0.0;
    }
    pivots.push_back(col);
    ++pivot_row;
  }
  return pivots;
}

Matrix null_space_basis(const Matrix& a, double tolerance) {
  HGC_REQUIRE(!a.empty(), "null space of an empty matrix");
  Matrix rref = a;
  const std::vector<std::size_t> pivots = reduce_to_rref(rref, tolerance);
  const std::size_t cols = a.cols();

  std::vector<std::size_t> free_cols;
  {
    std::size_t next_pivot = 0;
    for (std::size_t c = 0; c < cols; ++c) {
      if (next_pivot < pivots.size() && pivots[next_pivot] == c)
        ++next_pivot;
      else
        free_cols.push_back(c);
    }
  }

  Matrix basis(cols, free_cols.size());
  for (std::size_t fi = 0; fi < free_cols.size(); ++fi) {
    const std::size_t free_col = free_cols[fi];
    basis(free_col, fi) = 1.0;
    // Pivot variables read off the RREF: x_pivot = -rref(row, free_col).
    for (std::size_t pi = 0; pi < pivots.size(); ++pi)
      basis(pivots[pi], fi) = -rref(pi, free_col);
  }
  return basis;
}

Vector null_space_vector(const Matrix& a, double tolerance) {
  const Matrix basis = null_space_basis(a, tolerance);
  if (basis.cols() == 0) return {};
  return basis.col(0);
}

}  // namespace hgc
