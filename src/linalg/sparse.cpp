#include "linalg/sparse.hpp"

#include <algorithm>

namespace hgc {

double SparseRowMatrix::at(std::size_t r, std::size_t c) const {
  HGC_REQUIRE(r < rows() && c < cols_, "sparse index out of range");
  const auto cols = row_cols(r);
  const auto it = std::lower_bound(cols.begin(), cols.end(), c);
  if (it == cols.end() || *it != c) return 0.0;
  return row_values(r)[static_cast<std::size_t>(it - cols.begin())];
}

SparseRowMatrix SparseRowMatrix::from_dense(const Matrix& dense) {
  SparseRowMatrix out;
  out.cols_ = dense.cols();
  out.row_ptr_.assign(1, 0);
  out.row_ptr_.reserve(dense.rows() + 1);
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    const auto row = dense.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c] != 0.0) {
        out.col_idx_.push_back(c);
        out.values_.push_back(row[c]);
      }
    }
    out.row_ptr_.push_back(out.values_.size());
  }
  return out;
}

Matrix SparseRowMatrix::to_dense() const {
  Matrix dense(rows(), cols_);
  for (std::size_t r = 0; r < rows(); ++r) {
    const auto cols = row_cols(r);
    const auto values = row_values(r);
    const auto out = dense.row(r);
    for (std::size_t i = 0; i < cols.size(); ++i) out[cols[i]] = values[i];
  }
  return dense;
}

SparseRowBuilder::SparseRowBuilder(std::size_t rows, std::size_t cols)
    : cols_(cols), entries_(rows) {
  HGC_REQUIRE(cols > 0, "sparse builder needs at least one column");
}

void SparseRowBuilder::set(std::size_t r, std::size_t c, double v) {
  HGC_REQUIRE(r < entries_.size() && c < cols_,
              "sparse builder index out of range");
  if (v == 0.0) return;  // structural zero: support semantics
  entries_[r].emplace_back(c, v);
}

SparseRowMatrix SparseRowBuilder::build() {
  SparseRowMatrix out;
  out.cols_ = cols_;
  out.row_ptr_.assign(1, 0);
  out.row_ptr_.reserve(entries_.size() + 1);
  std::size_t nnz = 0;
  for (const auto& row : entries_) nnz += row.size();
  out.col_idx_.reserve(nnz);
  out.values_.reserve(nnz);
  for (auto& row : entries_) {
    std::sort(row.begin(), row.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t i = 1; i < row.size(); ++i)
      HGC_REQUIRE(row[i].first != row[i - 1].first,
                  "duplicate sparse entry for one (row, col)");
    for (const auto& [col, value] : row) {
      out.col_idx_.push_back(col);
      out.values_.push_back(value);
    }
    out.row_ptr_.push_back(out.values_.size());
  }
  entries_.clear();
  return out;
}

namespace sparse {

double row_dot(const SparseRowMatrix& a, std::size_t r,
               std::span<const double> x) noexcept {
  const auto cols = a.row_cols(r);
  const auto values = a.row_values(r);
  // Ascending-column scalar chain: rows are ≤(s+1)-sparse by construction,
  // so this order (not a lane tree) is the documented contract.
  double sum = 0.0;
  for (std::size_t i = 0; i < cols.size(); ++i)
    sum += values[i] * x[cols[i]];
  return sum;
}

void gemv(const SparseRowMatrix& a, std::span<const double> x,
          std::span<double> y) noexcept {
  for (std::size_t r = 0; r < a.rows(); ++r) y[r] = row_dot(a, r, x);
}

void gemv_t(const SparseRowMatrix& a, std::span<const double> x,
            std::span<double> y) noexcept {
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) add_scaled_row(a, r, x[r], y);
}

void add_scaled_row(const SparseRowMatrix& a, std::size_t r, double alpha,
                    std::span<double> y) noexcept {
  const auto cols = a.row_cols(r);
  const auto values = a.row_values(r);
  for (std::size_t i = 0; i < cols.size(); ++i)
    y[cols[i]] += alpha * values[i];
}

}  // namespace sparse
}  // namespace hgc
