// Allocation-free dense kernels under every solve in the decode hot path.
//
// These are the named inner loops of the library: axpy/dot/scal/gemv plus a
// row-blocked rank-1 update. All of them operate on caller-provided storage
// (spans or raw row-major blocks with a leading dimension) and never
// allocate. Since PR 9 they dispatch through a per-process backend table
// (scalar / AVX2 / NEON) selected once at startup — see "Backends" below —
// and every backend implements the SAME summation order, so the backend
// choice never changes a byte of output.
//
// Determinism contract (the sweep's byte-identical-output guarantee relies
// on this): every kernel uses a FIXED, data-independent summation order.
//   * dot() accumulates SIXTEEN interleaved lanes — lane l sums elements
//     l, l+16, l+32, … in ascending index order — and combines them in a
//     fixed tree chosen to map exactly onto four 4-wide vector
//     accumulators:
//         u_s = (lane_s + lane_{s+4}) + (lane_{s+8} + lane_{s+12})
//         result = (u_0 + u_1) + (u_2 + u_3)
//     for s = 0..3, then adds the scalar tail (n mod 16 elements) in
//     ascending order. The order depends only on the span length, never on
//     alignment, thread count, backend, or call history. (The AVX2 backend
//     keeps lanes s, s+4, s+8, s+12 in vector-lane s of four 256-bit
//     accumulators, so its lanewise adds and ordered horizontal reduce
//     reproduce this tree operation-for-operation; NEON uses eight 2-wide
//     accumulators with the analogous pairing.)
//   * gemv() reduces each output element with dot()'s order — row blocking
//     in a backend may interleave rows for throughput, but each row keeps
//     its own sixteen accumulators, so per-element arithmetic is unchanged.
//   * gemv_t() and rank1_update() have no reductions — each output element
//     is updated by one in-order pass over the rows, and every per-element
//     update is a single mul + add in every backend (the AVX2/NEON TUs are
//     compiled with FP contraction off, so no backend fuses them).
// Results are therefore bit-identical for identical inputs across runs,
// thread counts, call sites, and backends. Changing any loop here changes
// numeric results globally; re-baseline the figure outputs if you do.
// (PR 9 did exactly that once: the dot order went from four lanes to the
// sixteen lanes above so that a SIMD backend could beat the scalar one
// instead of merely matching its four-adds-in-flight latency ceiling.)
//
// Backends: the table is chosen on first kernel use (or explicitly via
// set_backend) in this priority order:
//   1. the HGC_KERNEL_BACKEND environment variable (scalar|avx2|neon),
//      when set to an available backend — an unknown or unavailable name
//      warns once on stderr and falls back to auto-detection;
//   2. the best backend the host supports (cpuid): avx2, then neon;
//   3. scalar.
// apps expose the same override as a --kernel-backend flag. Selection is a
// single atomic pointer install: benign if two threads race to first use,
// and set_backend() mid-run only affects subsequent calls (the sweep sets
// it before any cell runs).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string_view>

namespace hgc::kernels {

// ---- Backend selection --------------------------------------------------

enum class Backend : int { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// The backend servicing kernel calls, selecting one (env override, then
/// cpuid) on first use.
Backend active_backend() noexcept;

/// Force the active backend. Returns false (and changes nothing) when the
/// backend is not available on this build/host.
bool set_backend(Backend backend) noexcept;

/// Whether a backend is compiled in AND executable on this host.
bool backend_available(Backend backend) noexcept;

/// Stable lower-case name: "scalar", "avx2", "neon".
const char* backend_name(Backend backend) noexcept;

/// Parse a backend name as spelled by backend_name (and the
/// HGC_KERNEL_BACKEND / --kernel-backend overrides).
std::optional<Backend> parse_backend(std::string_view name) noexcept;

// ---- Kernels ------------------------------------------------------------

/// Σ a[i]·b[i] with the sixteen-lane order documented above. Lengths must
/// match (checked by the hgc::dot wrapper; this layer trusts its caller).
double dot(std::span<const double> a, std::span<const double> b) noexcept;

/// y ← y + alpha·x (elementwise; no reduction, order-insensitive).
void axpy(double alpha, std::span<const double> x,
          std::span<double> y) noexcept;

/// Four fused axpys: per element, y[i] += alpha[0]·x[0][i], then
/// alpha[1]·x[1][i], then [2], then [3] — chained in that exact order, each
/// a single mul + add, so the result is bit-identical to four sequential
/// axpy() calls while y streams through cache once instead of four times.
/// The blocked LU's trailing update is built on this.
void axpy4(const double (&alpha)[4], const double* const (&x)[4],
           std::span<double> y) noexcept;

/// x ← alpha·x.
void scal(double alpha, std::span<double> x) noexcept;

/// y ← A·x for a row-major block: y[r] = dot(A[r,0..cols), x).
/// `a` points at the first element, rows are `lda` doubles apart (lda ≥
/// cols, so sub-blocks of a larger matrix work).
void gemv(const double* a, std::size_t lda, std::size_t rows,
          std::size_t cols, std::span<const double> x,
          std::span<double> y) noexcept;

/// y ← Aᵀ·x, accumulated row-wise: y is zeroed, then row r contributes
/// x[r]·A[r,·] via axpy, r ascending — each y[c] sums in row order.
void gemv_t(const double* a, std::size_t lda, std::size_t rows,
            std::size_t cols, std::span<const double> x,
            std::span<double> y) noexcept;

/// A ← A + alpha·x·yᵀ, blocked four rows at a time so y streams through
/// cache once per block. Per-element arithmetic is a single mul + add,
/// so the row blocking cannot change results.
void rank1_update(double* a, std::size_t lda, std::size_t rows,
                  std::size_t cols, double alpha, std::span<const double> x,
                  std::span<const double> y) noexcept;

}  // namespace hgc::kernels
