// Allocation-free dense kernels under every solve in the decode hot path.
//
// These are the named inner loops of the library: axpy/dot/scal/gemv plus a
// row-blocked rank-1 update. All of them operate on caller-provided storage
// (spans or raw row-major blocks with a leading dimension), never allocate,
// and are the single place a future SIMD port has to touch.
//
// Determinism contract (the sweep's byte-identical-output guarantee relies
// on this): every kernel uses a FIXED, data-independent summation order.
//   * dot() accumulates four interleaved lanes — lane l sums elements
//     l, l+4, l+8, … in ascending index order — and combines them as
//     (lane0 + lane1) + (lane2 + lane3), then adds the scalar tail in
//     ascending order. The order depends only on the span length, never on
//     alignment, thread count, or call history.
//   * gemv() reduces each output element with dot(), so it inherits that
//     order; gemv_t() and rank1_update() have no reductions — each output
//     element is updated by one in-order pass over the rows.
// Results are therefore bit-identical for identical inputs across runs,
// thread counts, and call sites. Changing any loop here changes numeric
// results globally; re-baseline the figure outputs if you do.
#pragma once

#include <cstddef>
#include <span>

namespace hgc::kernels {

/// Σ a[i]·b[i] with the four-lane order documented above. Lengths must match
/// (checked by the hgc::dot wrapper; this layer trusts its caller).
double dot(std::span<const double> a, std::span<const double> b) noexcept;

/// y ← y + alpha·x (elementwise; no reduction, order-insensitive).
void axpy(double alpha, std::span<const double> x,
          std::span<double> y) noexcept;

/// x ← alpha·x.
void scal(double alpha, std::span<double> x) noexcept;

/// y ← A·x for a row-major block: y[r] = dot(A[r,0..cols), x).
/// `a` points at the first element, rows are `lda` doubles apart (lda ≥
/// cols, so sub-blocks of a larger matrix work).
void gemv(const double* a, std::size_t lda, std::size_t rows,
          std::size_t cols, std::span<const double> x,
          std::span<double> y) noexcept;

/// y ← Aᵀ·x, accumulated row-wise: y is zeroed, then row r contributes
/// x[r]·A[r,·] via axpy, r ascending — each y[c] sums in row order.
void gemv_t(const double* a, std::size_t lda, std::size_t rows,
            std::size_t cols, std::span<const double> x,
            std::span<double> y) noexcept;

/// A ← A + alpha·x·yᵀ, blocked four rows at a time so y streams through
/// cache once per block. Per-element arithmetic is a single fused update,
/// so the row blocking cannot change results.
void rank1_update(double* a, std::size_t lda, std::size_t rows,
                  std::size_t cols, double alpha, std::span<const double> x,
                  std::span<const double> y) noexcept;

}  // namespace hgc::kernels
