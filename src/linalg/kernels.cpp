#include "linalg/kernels.hpp"

namespace hgc::kernels {

double dot(std::span<const double> a, std::span<const double> b) noexcept {
  const std::size_t n = a.size();
  const double* pa = a.data();
  const double* pb = b.data();
  // Four independent lanes break the add dependency chain; the combine
  // order (l0+l1)+(l2+l3) is part of the determinism contract in the
  // header — do not "simplify" it to a left fold.
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += pa[i] * pb[i];
    l1 += pa[i + 1] * pb[i + 1];
    l2 += pa[i + 2] * pb[i + 2];
    l3 += pa[i + 3] * pb[i + 3];
  }
  double acc = (l0 + l1) + (l2 + l3);
  for (; i < n; ++i) acc += pa[i] * pb[i];
  return acc;
}

void axpy(double alpha, std::span<const double> x,
          std::span<double> y) noexcept {
  const std::size_t n = x.size();
  const double* px = x.data();
  double* py = y.data();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    py[i] += alpha * px[i];
    py[i + 1] += alpha * px[i + 1];
    py[i + 2] += alpha * px[i + 2];
    py[i + 3] += alpha * px[i + 3];
  }
  for (; i < n; ++i) py[i] += alpha * px[i];
}

void scal(double alpha, std::span<double> x) noexcept {
  const std::size_t n = x.size();
  double* px = x.data();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    px[i] *= alpha;
    px[i + 1] *= alpha;
    px[i + 2] *= alpha;
    px[i + 3] *= alpha;
  }
  for (; i < n; ++i) px[i] *= alpha;
}

void gemv(const double* a, std::size_t lda, std::size_t rows,
          std::size_t cols, std::span<const double> x,
          std::span<double> y) noexcept {
  for (std::size_t r = 0; r < rows; ++r)
    y[r] = dot({a + r * lda, cols}, x);
}

void gemv_t(const double* a, std::size_t lda, std::size_t rows,
            std::size_t cols, std::span<const double> x,
            std::span<double> y) noexcept {
  double* py = y.data();
  for (std::size_t c = 0; c < cols; ++c) py[c] = 0.0;
  for (std::size_t r = 0; r < rows; ++r)
    axpy(x[r], {a + r * lda, cols}, {py, cols});
}

void rank1_update(double* a, std::size_t lda, std::size_t rows,
                  std::size_t cols, double alpha, std::span<const double> x,
                  std::span<const double> y) noexcept {
  const double* py = y.data();
  std::size_t r = 0;
  // Four-row blocks: y is read once per block instead of once per row.
  for (; r + 4 <= rows; r += 4) {
    double* a0 = a + r * lda;
    double* a1 = a0 + lda;
    double* a2 = a1 + lda;
    double* a3 = a2 + lda;
    const double s0 = alpha * x[r];
    const double s1 = alpha * x[r + 1];
    const double s2 = alpha * x[r + 2];
    const double s3 = alpha * x[r + 3];
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = py[c];
      a0[c] += s0 * v;
      a1[c] += s1 * v;
      a2[c] += s2 * v;
      a3[c] += s3 * v;
    }
  }
  for (; r < rows; ++r) {
    double* ar = a + r * lda;
    const double s = alpha * x[r];
    for (std::size_t c = 0; c < cols; ++c) ar[c] += s * py[c];
  }
}

}  // namespace hgc::kernels
