// Scalar backend + the per-process backend dispatch.
//
// The scalar implementations below are the reference spelling of the
// documented summation order in kernels.hpp: sixteen named accumulators in
// dot (GCC maps them onto SSE register pairs on x86, so "scalar" is the
// portable baseline, not a strawman), elementwise mul+add everywhere else.
// The SIMD TUs (kernels_avx2.cpp / kernels_neon.cpp) reproduce the same
// order with vector registers; CI byte-diffs sweep output across backends,
// so any divergence is a build-breaking bug, not a tolerance question.
#include "linalg/kernels.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "linalg/kernels_dispatch.hpp"
#include "obs/metrics.hpp"
#include "util/cpu.hpp"

namespace hgc::kernels {

namespace detail {
namespace {

double dot_scalar(const double* pa, const double* pb,
                  std::size_t n) noexcept {
  // Sixteen independent lanes; the combine tree below is the determinism
  // contract in the header (it mirrors four 4-wide vector accumulators) —
  // do not "simplify" it to a left fold.
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  double l4 = 0.0, l5 = 0.0, l6 = 0.0, l7 = 0.0;
  double l8 = 0.0, l9 = 0.0, l10 = 0.0, l11 = 0.0;
  double l12 = 0.0, l13 = 0.0, l14 = 0.0, l15 = 0.0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    l0 += pa[i] * pb[i];
    l1 += pa[i + 1] * pb[i + 1];
    l2 += pa[i + 2] * pb[i + 2];
    l3 += pa[i + 3] * pb[i + 3];
    l4 += pa[i + 4] * pb[i + 4];
    l5 += pa[i + 5] * pb[i + 5];
    l6 += pa[i + 6] * pb[i + 6];
    l7 += pa[i + 7] * pb[i + 7];
    l8 += pa[i + 8] * pb[i + 8];
    l9 += pa[i + 9] * pb[i + 9];
    l10 += pa[i + 10] * pb[i + 10];
    l11 += pa[i + 11] * pb[i + 11];
    l12 += pa[i + 12] * pb[i + 12];
    l13 += pa[i + 13] * pb[i + 13];
    l14 += pa[i + 14] * pb[i + 14];
    l15 += pa[i + 15] * pb[i + 15];
  }
  const double u0 = (l0 + l4) + (l8 + l12);
  const double u1 = (l1 + l5) + (l9 + l13);
  const double u2 = (l2 + l6) + (l10 + l14);
  const double u3 = (l3 + l7) + (l11 + l15);
  double acc = (u0 + u1) + (u2 + u3);
  for (; i < n; ++i) acc += pa[i] * pb[i];
  return acc;
}

void axpy_scalar(double alpha, const double* px, double* py,
                 std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    py[i] += alpha * px[i];
    py[i + 1] += alpha * px[i + 1];
    py[i + 2] += alpha * px[i + 2];
    py[i + 3] += alpha * px[i + 3];
  }
  for (; i < n; ++i) py[i] += alpha * px[i];
}

void axpy4_scalar(const double* alpha, const double* const* px, double* py,
                  std::size_t n) noexcept {
  const double a0 = alpha[0], a1 = alpha[1], a2 = alpha[2], a3 = alpha[3];
  const double* x0 = px[0];
  const double* x1 = px[1];
  const double* x2 = px[2];
  const double* x3 = px[3];
  for (std::size_t i = 0; i < n; ++i) {
    double v = py[i];
    v += a0 * x0[i];
    v += a1 * x1[i];
    v += a2 * x2[i];
    v += a3 * x3[i];
    py[i] = v;
  }
}

void scal_scalar(double alpha, double* px, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    px[i] *= alpha;
    px[i + 1] *= alpha;
    px[i + 2] *= alpha;
    px[i + 3] *= alpha;
  }
  for (; i < n; ++i) px[i] *= alpha;
}

void gemv_scalar(const double* a, std::size_t lda, std::size_t rows,
                 std::size_t cols, const double* x, double* y) noexcept {
  for (std::size_t r = 0; r < rows; ++r)
    y[r] = dot_scalar(a + r * lda, x, cols);
}

void gemv_t_scalar(const double* a, std::size_t lda, std::size_t rows,
                   std::size_t cols, const double* x, double* y) noexcept {
  for (std::size_t c = 0; c < cols; ++c) y[c] = 0.0;
  for (std::size_t r = 0; r < rows; ++r)
    axpy_scalar(x[r], a + r * lda, y, cols);
}

void rank1_update_scalar(double* a, std::size_t lda, std::size_t rows,
                         std::size_t cols, double alpha, const double* x,
                         const double* y) noexcept {
  std::size_t r = 0;
  // Four-row blocks: y is read once per block instead of once per row.
  for (; r + 4 <= rows; r += 4) {
    double* a0 = a + r * lda;
    double* a1 = a0 + lda;
    double* a2 = a1 + lda;
    double* a3 = a2 + lda;
    const double s0 = alpha * x[r];
    const double s1 = alpha * x[r + 1];
    const double s2 = alpha * x[r + 2];
    const double s3 = alpha * x[r + 3];
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = y[c];
      a0[c] += s0 * v;
      a1[c] += s1 * v;
      a2[c] += s2 * v;
      a3[c] += s3 * v;
    }
  }
  for (; r < rows; ++r) {
    double* ar = a + r * lda;
    const double s = alpha * x[r];
    for (std::size_t c = 0; c < cols; ++c) ar[c] += s * y[c];
  }
}

}  // namespace

const KernelTable kScalarTable = {
    .dot = dot_scalar,
    .axpy = axpy_scalar,
    .axpy4 = axpy4_scalar,
    .scal = scal_scalar,
    .gemv = gemv_scalar,
    .gemv_t = gemv_t_scalar,
    .rank1_update = rank1_update_scalar,
};

}  // namespace detail

namespace {

const detail::KernelTable* table_for(Backend backend) noexcept {
  switch (backend) {
    case Backend::kScalar:
      return &detail::kScalarTable;
    case Backend::kAvx2:
      return util::cpu_supports_avx2() ? detail::avx2_table() : nullptr;
    case Backend::kNeon:
      return util::cpu_supports_neon() ? detail::neon_table() : nullptr;
  }
  return nullptr;
}

// The installed table and its enum tag. Both are written exactly once per
// selection (release), read with acquire on the cold path only — steady
// state is one predictable-branch acquire load per kernel call.
std::atomic<const detail::KernelTable*> g_table{nullptr};
std::atomic<Backend> g_backend{Backend::kScalar};

void publish(Backend backend, const detail::KernelTable* table) noexcept {
  g_backend.store(backend, std::memory_order_release);
  g_table.store(table, std::memory_order_release);
  if (obs::metrics_enabled()) {
    // Snapshots record which backend produced the numbers (a gauge: the
    // last selection wins, which is also the one that served the run).
    obs::Registry::global()
        .gauge("kernels.backend")
        .set(static_cast<double>(static_cast<int>(backend)));
  }
}

Backend auto_detect() noexcept {
  if (table_for(Backend::kAvx2) != nullptr) return Backend::kAvx2;
  if (table_for(Backend::kNeon) != nullptr) return Backend::kNeon;
  return Backend::kScalar;
}

// Cold path: consult HGC_KERNEL_BACKEND, then cpuid. Racing first calls
// all compute the same answer, so the unsynchronized double-publish is
// benign.
const detail::KernelTable& select_initial() noexcept {
  Backend chosen = auto_detect();
  if (const char* env = std::getenv("HGC_KERNEL_BACKEND")) {
    const std::optional<Backend> named = parse_backend(env);
    if (!named.has_value()) {
      std::fprintf(stderr,
                   "hgc: HGC_KERNEL_BACKEND='%s' is not a backend name "
                   "(scalar|avx2|neon); auto-detecting '%s' instead\n",
                   env, backend_name(chosen));
    } else if (table_for(*named) == nullptr) {
      std::fprintf(stderr,
                   "hgc: HGC_KERNEL_BACKEND=%s is not available on this "
                   "build/host; auto-detecting '%s' instead\n",
                   backend_name(*named), backend_name(chosen));
    } else {
      chosen = *named;
    }
  }
  const detail::KernelTable* table = table_for(chosen);
  publish(chosen, table);
  return *table;
}

inline const detail::KernelTable& active_table() noexcept {
  const detail::KernelTable* table = g_table.load(std::memory_order_acquire);
  if (table != nullptr) [[likely]]
    return *table;
  return select_initial();
}

}  // namespace

Backend active_backend() noexcept {
  active_table();  // force selection on first use
  return g_backend.load(std::memory_order_acquire);
}

bool set_backend(Backend backend) noexcept {
  const detail::KernelTable* table = table_for(backend);
  if (table == nullptr) return false;
  publish(backend, table);
  return true;
}

bool backend_available(Backend backend) noexcept {
  return table_for(backend) != nullptr;
}

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

std::optional<Backend> parse_backend(std::string_view name) noexcept {
  if (name == "scalar") return Backend::kScalar;
  if (name == "avx2") return Backend::kAvx2;
  if (name == "neon") return Backend::kNeon;
  return std::nullopt;
}

double dot(std::span<const double> a, std::span<const double> b) noexcept {
  return active_table().dot(a.data(), b.data(), a.size());
}

void axpy(double alpha, std::span<const double> x,
          std::span<double> y) noexcept {
  active_table().axpy(alpha, x.data(), y.data(), x.size());
}

void axpy4(const double (&alpha)[4], const double* const (&x)[4],
           std::span<double> y) noexcept {
  active_table().axpy4(alpha, x, y.data(), y.size());
}

void scal(double alpha, std::span<double> x) noexcept {
  active_table().scal(alpha, x.data(), x.size());
}

void gemv(const double* a, std::size_t lda, std::size_t rows,
          std::size_t cols, std::span<const double> x,
          std::span<double> y) noexcept {
  active_table().gemv(a, lda, rows, cols, x.data(), y.data());
}

void gemv_t(const double* a, std::size_t lda, std::size_t rows,
            std::size_t cols, std::span<const double> x,
            std::span<double> y) noexcept {
  active_table().gemv_t(a, lda, rows, cols, x.data(), y.data());
}

void rank1_update(double* a, std::size_t lda, std::size_t rows,
                  std::size_t cols, double alpha, std::span<const double> x,
                  std::span<const double> y) noexcept {
  active_table().rank1_update(a, lda, rows, cols, alpha, x.data(), y.data());
}

}  // namespace hgc::kernels
