// Column-append Householder QR for truly incremental decoding.
//
// The streaming decode problem is least squares over (B_R)ᵀ·a = 1_k where
// R grows one received row at a time. Re-factoring per prefix costs
// O(n³) per arrival — O(n⁴) per round. IncrementalQr instead maintains an
// UNPIVOTED Householder factorization in arrival order and appends one
// column in O(rows·rank): apply the existing reflectors to the new column,
// form (or skip) one new reflector, and fold it into the running Qᵀ·b.
// The residual of the growing system is readable at every step for free
// (‖Qᵀb‖ below the rank index), so the decoder can test decodability per
// arrival without a solve.
//
// Numerically this is NOT the canonical column-pivoted factorization in
// QrWorkspace: pivot order there depends on all columns at once, so an
// append-only factorization cannot reproduce its bytes. Dependent columns
// here get coefficient 0 (the free-variable convention), which is a valid
// — but potentially different — basic solution. Callers that need the
// repo-wide byte-identity contract must keep using QrWorkspace; this class
// backs the opt-in DecodeStrategy::kIncremental path only.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace hgc {

/// Append-only Householder QR (no pivoting). Columns arrive one at a time;
/// dependent columns are detected and excluded from the factor (their
/// solution coefficient is fixed to zero). Storage is reused across
/// reset() calls — steady-state appends allocate nothing once capacity
/// covers the shape.
class IncrementalQr {
 public:
  /// Start a fresh factorization of a rows×0 matrix with right-hand side
  /// `rhs` (length = row count). Keeps allocated capacity.
  void reset(std::span<const double> rhs, double tolerance = 1e-10);

  /// Append one column given as a sparse scatter (ascending indices into
  /// [0, rows)). Returns true when the column was independent and grew the
  /// rank; false when it was (numerically) dependent on the columns so far.
  bool append_scattered(std::span<const std::size_t> indices,
                        std::span<const double> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols_appended() const { return independent_.size(); }
  std::size_t rank() const { return rank_; }

  /// ‖A·x − b‖₂ of the current least-squares optimum — available without
  /// solving: the norm of Qᵀb below the rank index.
  double residual_norm() const;

  /// Write the basic least-squares solution: one coefficient per appended
  /// column, in append order; dependent columns get exactly 0.0. x is
  /// resized to cols_appended().
  void solve_into(Vector& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t rank_ = 0;
  double tolerance_ = 1e-10;
  double max_col_norm_sq_ = 0.0;  // running max of appended ‖col‖² — sets
                                  // the dependence threshold scale
  // Column-major rows_×(rank_+1) working storage: stored column j holds
  // R(0..j, j) on and above the diagonal and reflector j's tail (v, with
  // v[j] ≡ 1 implicit) below it. The incoming column is staged in slot
  // rank_, so a rejected (dependent) column is overwritten by the next
  // append.
  std::vector<double> fac_;
  std::vector<double> betas_;      // reflector scales, one per rank
  std::vector<double> qtb_;        // running Qᵀ·b
  std::vector<char> independent_;  // per appended column, in append order
};

}  // namespace hgc
