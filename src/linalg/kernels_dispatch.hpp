// Internal dispatch table for the kernel backends (scalar / AVX2 / NEON).
//
// Each backend is one TU providing a KernelTable of raw-pointer entry
// points; kernels.cpp selects exactly one table per process (cpuid + the
// HGC_KERNEL_BACKEND override) and the public span-based API in kernels.hpp
// forwards through it. Every table entry implements the SAME documented
// summation order (see kernels.hpp) — a backend that cannot reproduce the
// order bit-for-bit must not exist, because the sweep's byte-identity
// contract diffs backends against each other in CI.
//
// This header is internal to src/linalg/: nothing outside the backend TUs
// and kernels.cpp may include it.
#pragma once

#include <cstddef>

namespace hgc::kernels::detail {

struct KernelTable {
  double (*dot)(const double* a, const double* b, std::size_t n) noexcept;
  void (*axpy)(double alpha, const double* x, double* y,
               std::size_t n) noexcept;
  void (*axpy4)(const double* alpha, const double* const* x, double* y,
                std::size_t n) noexcept;
  void (*scal)(double alpha, double* x, std::size_t n) noexcept;
  void (*gemv)(const double* a, std::size_t lda, std::size_t rows,
               std::size_t cols, const double* x, double* y) noexcept;
  void (*gemv_t)(const double* a, std::size_t lda, std::size_t rows,
                 std::size_t cols, const double* x, double* y) noexcept;
  void (*rank1_update)(double* a, std::size_t lda, std::size_t rows,
                       std::size_t cols, double alpha, const double* x,
                       const double* y) noexcept;
};

// The portable reference implementation; always present.
extern const KernelTable kScalarTable;

/// The AVX2 table, or nullptr when the toolchain could not build the AVX2
/// TU (non-x86 target or a compiler without -mavx2). Whether the *host* can
/// execute it is a separate runtime question (util::cpu_supports_avx2).
const KernelTable* avx2_table() noexcept;

/// The NEON table, or nullptr when not built (non-ARM target).
const KernelTable* neon_table() noexcept;

}  // namespace hgc::kernels::detail
