// NEON backend: the documented sixteen-lane summation order on 128-bit
// registers (AArch64 Advanced SIMD, two doubles per register).
//
// Compiled with -ffp-contract=off and written with explicit vmulq/vaddq
// pairs (never vfmaq): a fused multiply-add rounds once where the
// contract's mul+add rounds twice, which would break bit-identity with the
// scalar backend.
//
// Lane mapping: accumulator q_t covers elements i+2t, i+2t+1 of each
// 16-element block, so vector-lane j of q_t is scalar lane 2t+j. The
// documented tree u_s = (lane_s + lane_{s+4}) + (lane_{s+8} + lane_{s+12})
// groups lanes whose indices differ by 4 — lanes 4 apart sit in registers
// 2 apart in the same vector lane — so
//     w0 = (q0 + q2) + (q4 + q6)   holds [u_0, u_1]
//     w1 = (q1 + q3) + (q5 + q7)   holds [u_2, u_3]
// and (w0[0] + w0[1]) + (w1[0] + w1[1]) = (u_0+u_1)+(u_2+u_3) finishes the
// reduce exactly as documented.
//
// This backend has no CI leg (the fleet is x86); the bit-identity property
// test in tests/test_kernels.cpp covers it on any ARM host that runs the
// suite.
#include "linalg/kernels_dispatch.hpp"

#if defined(__aarch64__) || defined(__ARM_NEON)

#include <arm_neon.h>

namespace hgc::kernels::detail {
namespace {

double dot_neon(const double* pa, const double* pb, std::size_t n) noexcept {
  float64x2_t q0 = vdupq_n_f64(0.0), q1 = vdupq_n_f64(0.0);
  float64x2_t q2 = vdupq_n_f64(0.0), q3 = vdupq_n_f64(0.0);
  float64x2_t q4 = vdupq_n_f64(0.0), q5 = vdupq_n_f64(0.0);
  float64x2_t q6 = vdupq_n_f64(0.0), q7 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    q0 = vaddq_f64(q0, vmulq_f64(vld1q_f64(pa + i), vld1q_f64(pb + i)));
    q1 = vaddq_f64(q1,
                   vmulq_f64(vld1q_f64(pa + i + 2), vld1q_f64(pb + i + 2)));
    q2 = vaddq_f64(q2,
                   vmulq_f64(vld1q_f64(pa + i + 4), vld1q_f64(pb + i + 4)));
    q3 = vaddq_f64(q3,
                   vmulq_f64(vld1q_f64(pa + i + 6), vld1q_f64(pb + i + 6)));
    q4 = vaddq_f64(q4,
                   vmulq_f64(vld1q_f64(pa + i + 8), vld1q_f64(pb + i + 8)));
    q5 = vaddq_f64(q5, vmulq_f64(vld1q_f64(pa + i + 10),
                                 vld1q_f64(pb + i + 10)));
    q6 = vaddq_f64(q6, vmulq_f64(vld1q_f64(pa + i + 12),
                                 vld1q_f64(pb + i + 12)));
    q7 = vaddq_f64(q7, vmulq_f64(vld1q_f64(pa + i + 14),
                                 vld1q_f64(pb + i + 14)));
  }
  const float64x2_t w0 = vaddq_f64(vaddq_f64(q0, q2), vaddq_f64(q4, q6));
  const float64x2_t w1 = vaddq_f64(vaddq_f64(q1, q3), vaddq_f64(q5, q7));
  double acc = (vgetq_lane_f64(w0, 0) + vgetq_lane_f64(w0, 1)) +
               (vgetq_lane_f64(w1, 0) + vgetq_lane_f64(w1, 1));
  for (; i < n; ++i) acc += pa[i] * pb[i];
  return acc;
}

void axpy_neon(double alpha, const double* px, double* py,
               std::size_t n) noexcept {
  const float64x2_t av = vdupq_n_f64(alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(py + i, vaddq_f64(vld1q_f64(py + i),
                                vmulq_f64(av, vld1q_f64(px + i))));
  for (; i < n; ++i) py[i] += alpha * px[i];
}

void axpy4_neon(const double* alpha, const double* const* px, double* py,
                std::size_t n) noexcept {
  const float64x2_t a0 = vdupq_n_f64(alpha[0]);
  const float64x2_t a1 = vdupq_n_f64(alpha[1]);
  const float64x2_t a2 = vdupq_n_f64(alpha[2]);
  const float64x2_t a3 = vdupq_n_f64(alpha[3]);
  const double* x0 = px[0];
  const double* x1 = px[1];
  const double* x2 = px[2];
  const double* x3 = px[3];
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    float64x2_t v = vld1q_f64(py + i);
    v = vaddq_f64(v, vmulq_f64(a0, vld1q_f64(x0 + i)));
    v = vaddq_f64(v, vmulq_f64(a1, vld1q_f64(x1 + i)));
    v = vaddq_f64(v, vmulq_f64(a2, vld1q_f64(x2 + i)));
    v = vaddq_f64(v, vmulq_f64(a3, vld1q_f64(x3 + i)));
    vst1q_f64(py + i, v);
  }
  for (; i < n; ++i) {
    double v = py[i];
    v += alpha[0] * x0[i];
    v += alpha[1] * x1[i];
    v += alpha[2] * x2[i];
    v += alpha[3] * x3[i];
    py[i] = v;
  }
}

void scal_neon(double alpha, double* px, std::size_t n) noexcept {
  const float64x2_t av = vdupq_n_f64(alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(px + i, vmulq_f64(vld1q_f64(px + i), av));
  for (; i < n; ++i) px[i] *= alpha;
}

void gemv_neon(const double* a, std::size_t lda, std::size_t rows,
               std::size_t cols, const double* x, double* y) noexcept {
  for (std::size_t r = 0; r < rows; ++r)
    y[r] = dot_neon(a + r * lda, x, cols);
}

void gemv_t_neon(const double* a, std::size_t lda, std::size_t rows,
                 std::size_t cols, const double* x, double* y) noexcept {
  for (std::size_t c = 0; c < cols; ++c) y[c] = 0.0;
  for (std::size_t r = 0; r < rows; ++r)
    axpy_neon(x[r], a + r * lda, y, cols);
}

void rank1_update_neon(double* a, std::size_t lda, std::size_t rows,
                       std::size_t cols, double alpha, const double* x,
                       const double* y) noexcept {
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    double* a0 = a + r * lda;
    double* a1 = a0 + lda;
    double* a2 = a1 + lda;
    double* a3 = a2 + lda;
    const float64x2_t s0 = vdupq_n_f64(alpha * x[r]);
    const float64x2_t s1 = vdupq_n_f64(alpha * x[r + 1]);
    const float64x2_t s2 = vdupq_n_f64(alpha * x[r + 2]);
    const float64x2_t s3 = vdupq_n_f64(alpha * x[r + 3]);
    std::size_t c = 0;
    for (; c + 2 <= cols; c += 2) {
      const float64x2_t v = vld1q_f64(y + c);
      vst1q_f64(a0 + c, vaddq_f64(vld1q_f64(a0 + c), vmulq_f64(s0, v)));
      vst1q_f64(a1 + c, vaddq_f64(vld1q_f64(a1 + c), vmulq_f64(s1, v)));
      vst1q_f64(a2 + c, vaddq_f64(vld1q_f64(a2 + c), vmulq_f64(s2, v)));
      vst1q_f64(a3 + c, vaddq_f64(vld1q_f64(a3 + c), vmulq_f64(s3, v)));
    }
    for (; c < cols; ++c) {
      const double v = y[c];
      a0[c] += (alpha * x[r]) * v;
      a1[c] += (alpha * x[r + 1]) * v;
      a2[c] += (alpha * x[r + 2]) * v;
      a3[c] += (alpha * x[r + 3]) * v;
    }
  }
  for (; r < rows; ++r) {
    double* ar = a + r * lda;
    const float64x2_t sv = vdupq_n_f64(alpha * x[r]);
    const double s = alpha * x[r];
    std::size_t c = 0;
    for (; c + 2 <= cols; c += 2)
      vst1q_f64(ar + c, vaddq_f64(vld1q_f64(ar + c),
                                  vmulq_f64(sv, vld1q_f64(y + c))));
    for (; c < cols; ++c) ar[c] += s * y[c];
  }
}

const KernelTable kNeonTable = {
    .dot = dot_neon,
    .axpy = axpy_neon,
    .axpy4 = axpy4_neon,
    .scal = scal_neon,
    .gemv = gemv_neon,
    .gemv_t = gemv_t_neon,
    .rank1_update = rank1_update_neon,
};

}  // namespace

const KernelTable* neon_table() noexcept { return &kNeonTable; }

}  // namespace hgc::kernels::detail

#else  // not an ARM target

namespace hgc::kernels::detail {

const KernelTable* neon_table() noexcept { return nullptr; }

}  // namespace hgc::kernels::detail

#endif
