#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "linalg/kernels.hpp"

namespace hgc {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    HGC_REQUIRE(row.size() == cols_, "ragged initializer for Matrix");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::ones(std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  std::fill(m.data_.begin(), m.data_.end(), 1.0);
  return m;
}

std::span<double> Matrix::row(std::size_t r) {
  HGC_REQUIRE(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  HGC_REQUIRE(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

Vector Matrix::col(std::size_t c) const {
  HGC_REQUIRE(c < cols_, "column index out of range");
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::set_row(std::size_t r, std::span<const double> values) {
  HGC_REQUIRE(values.size() == cols_, "row length mismatch");
  std::copy(values.begin(), values.end(), row(r).begin());
}

void Matrix::set_col(std::size_t c, std::span<const double> values) {
  HGC_REQUIRE(c < cols_, "column index out of range");
  HGC_REQUIRE(values.size() == rows_, "column length mismatch");
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = values[r];
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

Matrix Matrix::select_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    HGC_REQUIRE(indices[i] < rows_, "row selection out of range");
    out.set_row(i, row(indices[i]));
  }
  return out;
}

Matrix Matrix::select_cols(std::span<const std::size_t> indices) const {
  Matrix out(rows_, indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    HGC_REQUIRE(indices[i] < cols_, "column selection out of range");
    for (std::size_t r = 0; r < rows_; ++r) out(r, i) = (*this)(r, indices[i]);
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  HGC_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  HGC_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  HGC_REQUIRE(a.cols_ == b.rows_, "inner dimensions must agree");
  Matrix out(a.rows_, b.cols_);
  for (std::size_t i = 0; i < a.rows_; ++i) {
    for (std::size_t t = 0; t < a.cols_; ++t) {
      const double aij = a(i, t);
      if (aij == 0.0) continue;
      const double* brow = b.data_.data() + t * b.cols_;
      double* orow = out.data_.data() + i * out.cols_;
      for (std::size_t j = 0; j < b.cols_; ++j) orow[j] += aij * brow[j];
    }
  }
  return out;
}

Vector Matrix::apply(std::span<const double> x) const {
  HGC_REQUIRE(x.size() == cols_, "vector length must equal matrix cols");
  Vector out(rows_);
  kernels::gemv(data_.data(), cols_, rows_, cols_, x, out);
  return out;
}

Vector Matrix::apply_transpose(std::span<const double> x) const {
  HGC_REQUIRE(x.size() == rows_, "vector length must equal matrix rows");
  Vector out(cols_);
  kernels::gemv_t(data_.data(), cols_, rows_, cols_, x, out);
  return out;
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  HGC_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_, "shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    worst = std::max(worst, std::abs(a.data_[i] - b.data_[i]));
  return worst;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < m.cols(); ++c)
      os << std::setw(10) << std::setprecision(4) << m(r, c)
         << (c + 1 == m.cols() ? "" : " ");
    os << (r + 1 == m.rows() ? "]" : "\n");
  }
  return os;
}

// The checked public helpers forward to the unrolled kernels layer, so the
// whole library (ML substrate included) shares one set of inner loops.
double dot(std::span<const double> a, std::span<const double> b) {
  HGC_REQUIRE(a.size() == b.size(), "dot length mismatch");
  return kernels::dot(a, b);
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  HGC_REQUIRE(x.size() == y.size(), "axpy length mismatch");
  kernels::axpy(alpha, x, y);
}

void scale(double alpha, std::span<double> x) { kernels::scal(alpha, x); }

Vector add(std::span<const double> a, std::span<const double> b) {
  HGC_REQUIRE(a.size() == b.size(), "add length mismatch");
  Vector out(a.begin(), a.end());
  axpy(1.0, b, out);
  return out;
}

Vector subtract(std::span<const double> a, std::span<const double> b) {
  HGC_REQUIRE(a.size() == b.size(), "subtract length mismatch");
  Vector out(a.begin(), a.end());
  axpy(-1.0, b, out);
  return out;
}

double max_abs(std::span<const double> a) {
  double worst = 0.0;
  for (double x : a) worst = std::max(worst, std::abs(x));
  return worst;
}

}  // namespace hgc
