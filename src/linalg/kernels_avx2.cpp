// AVX2 backend: the documented sixteen-lane summation order on 256-bit
// registers.
//
// Compiled with -mavx2 -mno-fma -ffp-contract=off (set per-file in
// CMakeLists): no FMA and no compiler contraction, because a fused
// multiply-add rounds once where the contract's mul+add rounds twice — the
// bit-identity CI diff against the scalar backend would catch it, so the
// flags make the invariant a build property instead of a test finding.
//
// Lane mapping (the reason the scalar order was chosen the way it was):
// accumulator ymm_s covers elements i+4s .. i+4s+3 of each 16-element
// block, so vector-lane j of ymm_s is scalar lane 4s+j. The lanewise
// combine (ymm_0+ymm_1)+(ymm_2+ymm_3) therefore computes
// u_j = (lane_j + lane_{j+4}) + (lane_{j+8} + lane_{j+12}) in vector-lane
// j, and the ordered horizontal reduce (u_0+u_1)+(u_2+u_3) finishes the
// documented tree exactly.
//
// Only this TU (and kernels_neon.cpp) may contain vector intrinsics; the
// hgc_lint `intrinsics-outside-linalg` rule enforces that tree-wide.
#include "linalg/kernels_dispatch.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace hgc::kernels::detail {
namespace {

// Ordered horizontal reduce of u = [u0, u1, u2, u3]: (u0 + u1) + (u2 + u3).
inline double hreduce(__m256d u) noexcept {
  const __m128d lo = _mm256_castpd256_pd128(u);
  const __m128d hi = _mm256_extractf128_pd(u, 1);
  const double u0 = _mm_cvtsd_f64(lo);
  const double u1 = _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
  const double u2 = _mm_cvtsd_f64(hi);
  const double u3 = _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
  return (u0 + u1) + (u2 + u3);
}

double dot_avx2(const double* pa, const double* pb, std::size_t n) noexcept {
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd();
  __m256d a3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    a0 = _mm256_add_pd(
        a0, _mm256_mul_pd(_mm256_loadu_pd(pa + i), _mm256_loadu_pd(pb + i)));
    a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(pa + i + 4),
                                         _mm256_loadu_pd(pb + i + 4)));
    a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_loadu_pd(pa + i + 8),
                                         _mm256_loadu_pd(pb + i + 8)));
    a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_loadu_pd(pa + i + 12),
                                         _mm256_loadu_pd(pb + i + 12)));
  }
  double acc =
      hreduce(_mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3)));
  for (; i < n; ++i) acc += pa[i] * pb[i];
  return acc;
}

void axpy_avx2(double alpha, const double* px, double* py,
               std::size_t n) noexcept {
  const __m256d av = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d y = _mm256_loadu_pd(py + i);
    const __m256d x = _mm256_loadu_pd(px + i);
    _mm256_storeu_pd(py + i, _mm256_add_pd(y, _mm256_mul_pd(av, x)));
  }
  for (; i < n; ++i) py[i] += alpha * px[i];
}

void axpy4_avx2(const double* alpha, const double* const* px, double* py,
                std::size_t n) noexcept {
  const __m256d a0 = _mm256_set1_pd(alpha[0]);
  const __m256d a1 = _mm256_set1_pd(alpha[1]);
  const __m256d a2 = _mm256_set1_pd(alpha[2]);
  const __m256d a3 = _mm256_set1_pd(alpha[3]);
  const double* x0 = px[0];
  const double* x1 = px[1];
  const double* x2 = px[2];
  const double* x3 = px[3];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d v = _mm256_loadu_pd(py + i);
    v = _mm256_add_pd(v, _mm256_mul_pd(a0, _mm256_loadu_pd(x0 + i)));
    v = _mm256_add_pd(v, _mm256_mul_pd(a1, _mm256_loadu_pd(x1 + i)));
    v = _mm256_add_pd(v, _mm256_mul_pd(a2, _mm256_loadu_pd(x2 + i)));
    v = _mm256_add_pd(v, _mm256_mul_pd(a3, _mm256_loadu_pd(x3 + i)));
    _mm256_storeu_pd(py + i, v);
  }
  for (; i < n; ++i) {
    double v = py[i];
    v += alpha[0] * x0[i];
    v += alpha[1] * x1[i];
    v += alpha[2] * x2[i];
    v += alpha[3] * x3[i];
    py[i] = v;
  }
}

void scal_avx2(double alpha, double* px, std::size_t n) noexcept {
  const __m256d av = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(px + i, _mm256_mul_pd(_mm256_loadu_pd(px + i), av));
  for (; i < n; ++i) px[i] *= alpha;
}

void gemv_avx2(const double* a, std::size_t lda, std::size_t rows,
               std::size_t cols, const double* x, double* y) noexcept {
  // Two rows per pass share the x loads; each row keeps its own four
  // accumulators, so each output element still reduces in dot()'s exact
  // order — the blocking buys throughput (eight adds in flight), not a
  // different tree.
  std::size_t r = 0;
  for (; r + 2 <= rows; r += 2) {
    const double* r0 = a + r * lda;
    const double* r1 = r0 + lda;
    __m256d p0 = _mm256_setzero_pd(), p1 = _mm256_setzero_pd();
    __m256d p2 = _mm256_setzero_pd(), p3 = _mm256_setzero_pd();
    __m256d q0 = _mm256_setzero_pd(), q1 = _mm256_setzero_pd();
    __m256d q2 = _mm256_setzero_pd(), q3 = _mm256_setzero_pd();
    std::size_t c = 0;
    for (; c + 16 <= cols; c += 16) {
      const __m256d x0 = _mm256_loadu_pd(x + c);
      const __m256d x1 = _mm256_loadu_pd(x + c + 4);
      const __m256d x2 = _mm256_loadu_pd(x + c + 8);
      const __m256d x3 = _mm256_loadu_pd(x + c + 12);
      p0 = _mm256_add_pd(p0, _mm256_mul_pd(_mm256_loadu_pd(r0 + c), x0));
      p1 = _mm256_add_pd(p1, _mm256_mul_pd(_mm256_loadu_pd(r0 + c + 4), x1));
      p2 = _mm256_add_pd(p2, _mm256_mul_pd(_mm256_loadu_pd(r0 + c + 8), x2));
      p3 = _mm256_add_pd(p3,
                         _mm256_mul_pd(_mm256_loadu_pd(r0 + c + 12), x3));
      q0 = _mm256_add_pd(q0, _mm256_mul_pd(_mm256_loadu_pd(r1 + c), x0));
      q1 = _mm256_add_pd(q1, _mm256_mul_pd(_mm256_loadu_pd(r1 + c + 4), x1));
      q2 = _mm256_add_pd(q2, _mm256_mul_pd(_mm256_loadu_pd(r1 + c + 8), x2));
      q3 = _mm256_add_pd(q3,
                         _mm256_mul_pd(_mm256_loadu_pd(r1 + c + 12), x3));
    }
    double acc0 =
        hreduce(_mm256_add_pd(_mm256_add_pd(p0, p1), _mm256_add_pd(p2, p3)));
    double acc1 =
        hreduce(_mm256_add_pd(_mm256_add_pd(q0, q1), _mm256_add_pd(q2, q3)));
    for (std::size_t cc = c; cc < cols; ++cc) {
      acc0 += r0[cc] * x[cc];
      acc1 += r1[cc] * x[cc];
    }
    y[r] = acc0;
    y[r + 1] = acc1;
  }
  for (; r < rows; ++r) y[r] = dot_avx2(a + r * lda, x, cols);
}

void gemv_t_avx2(const double* a, std::size_t lda, std::size_t rows,
                 std::size_t cols, const double* x, double* y) noexcept {
  for (std::size_t c = 0; c < cols; ++c) y[c] = 0.0;
  for (std::size_t r = 0; r < rows; ++r)
    axpy_avx2(x[r], a + r * lda, y, cols);
}

void rank1_update_avx2(double* a, std::size_t lda, std::size_t rows,
                       std::size_t cols, double alpha, const double* x,
                       const double* y) noexcept {
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    double* a0 = a + r * lda;
    double* a1 = a0 + lda;
    double* a2 = a1 + lda;
    double* a3 = a2 + lda;
    const __m256d s0 = _mm256_set1_pd(alpha * x[r]);
    const __m256d s1 = _mm256_set1_pd(alpha * x[r + 1]);
    const __m256d s2 = _mm256_set1_pd(alpha * x[r + 2]);
    const __m256d s3 = _mm256_set1_pd(alpha * x[r + 3]);
    std::size_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      const __m256d v = _mm256_loadu_pd(y + c);
      _mm256_storeu_pd(a0 + c, _mm256_add_pd(_mm256_loadu_pd(a0 + c),
                                             _mm256_mul_pd(s0, v)));
      _mm256_storeu_pd(a1 + c, _mm256_add_pd(_mm256_loadu_pd(a1 + c),
                                             _mm256_mul_pd(s1, v)));
      _mm256_storeu_pd(a2 + c, _mm256_add_pd(_mm256_loadu_pd(a2 + c),
                                             _mm256_mul_pd(s2, v)));
      _mm256_storeu_pd(a3 + c, _mm256_add_pd(_mm256_loadu_pd(a3 + c),
                                             _mm256_mul_pd(s3, v)));
    }
    for (; c < cols; ++c) {
      const double v = y[c];
      a0[c] += (alpha * x[r]) * v;
      a1[c] += (alpha * x[r + 1]) * v;
      a2[c] += (alpha * x[r + 2]) * v;
      a3[c] += (alpha * x[r + 3]) * v;
    }
  }
  for (; r < rows; ++r) {
    double* ar = a + r * lda;
    const __m256d sv = _mm256_set1_pd(alpha * x[r]);
    const double s = alpha * x[r];
    std::size_t c = 0;
    for (; c + 4 <= cols; c += 4)
      _mm256_storeu_pd(
          ar + c, _mm256_add_pd(_mm256_loadu_pd(ar + c),
                                _mm256_mul_pd(sv, _mm256_loadu_pd(y + c))));
    for (; c < cols; ++c) ar[c] += s * y[c];
  }
}

const KernelTable kAvx2Table = {
    .dot = dot_avx2,
    .axpy = axpy_avx2,
    .axpy4 = axpy4_avx2,
    .scal = scal_avx2,
    .gemv = gemv_avx2,
    .gemv_t = gemv_t_avx2,
    .rank1_update = rank1_update_avx2,
};

}  // namespace

const KernelTable* avx2_table() noexcept { return &kAvx2Table; }

}  // namespace hgc::kernels::detail

#else  // !defined(__AVX2__)

namespace hgc::kernels::detail {

const KernelTable* avx2_table() noexcept { return nullptr; }

}  // namespace hgc::kernels::detail

#endif
