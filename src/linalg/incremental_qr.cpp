#include "linalg/incremental_qr.hpp"

#include <algorithm>
#include <cmath>

namespace hgc {

void IncrementalQr::reset(std::span<const double> rhs, double tolerance) {
  HGC_REQUIRE(!rhs.empty(), "incremental QR needs at least one row");
  rows_ = rhs.size();
  rank_ = 0;
  tolerance_ = tolerance;
  max_col_norm_sq_ = 0.0;
  qtb_.assign(rhs.begin(), rhs.end());
  betas_.clear();
  independent_.clear();
  fac_.clear();
}

bool IncrementalQr::append_scattered(std::span<const std::size_t> indices,
                                     std::span<const double> values) {
  HGC_REQUIRE(indices.size() == values.size(),
              "scatter index/value length mismatch");
  // Stage the incoming column in slot rank_ (a previously rejected column
  // is simply overwritten).
  fac_.resize((rank_ + 1) * rows_);
  double* col = fac_.data() + rank_ * rows_;
  std::fill(col, col + rows_, 0.0);
  double norm_sq = 0.0;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    HGC_REQUIRE(indices[i] < rows_, "scatter index out of range");
    col[indices[i]] = values[i];
    norm_sq += values[i] * values[i];
  }
  max_col_norm_sq_ = std::max(max_col_norm_sq_, norm_sq);

  // Apply the existing reflectors in order: H_j acts on indices [j, rows).
  for (std::size_t j = 0; j < rank_; ++j) {
    const double* v = fac_.data() + j * rows_;
    double t = col[j];  // v[j] ≡ 1
    for (std::size_t i = j + 1; i < rows_; ++i) t += v[i] * col[i];
    t *= betas_[j];
    col[j] -= t;
    for (std::size_t i = j + 1; i < rows_; ++i) col[i] -= t * v[i];
  }

  // Dependence test on the projected tail, scaled like the canonical
  // factorization's threshold: tolerance · max(1, largest column norm).
  double tail_sq = 0.0;
  for (std::size_t i = rank_; i < rows_; ++i) tail_sq += col[i] * col[i];
  const double threshold =
      tolerance_ * std::max(1.0, std::sqrt(max_col_norm_sq_));
  if (rank_ >= rows_ || std::sqrt(tail_sq) <= threshold) {
    independent_.push_back(0);
    return false;
  }

  // Form the new reflector: reflect the tail onto alpha·e_rank with
  // alpha = −sign(col[rank])·‖tail‖ (the stable sign choice), store the
  // normalized v (v[rank] ≡ 1) below the diagonal and beta = −v₀/alpha.
  const double norm = std::sqrt(tail_sq);
  const double alpha = col[rank_] >= 0.0 ? -norm : norm;
  const double v0 = col[rank_] - alpha;
  for (std::size_t i = rank_ + 1; i < rows_; ++i) col[i] /= v0;
  col[rank_] = alpha;  // R's new diagonal entry
  const double beta = -v0 / alpha;
  betas_.push_back(beta);

  // Fold the reflector into the running Qᵀ·b.
  double t = qtb_[rank_];
  for (std::size_t i = rank_ + 1; i < rows_; ++i) t += col[i] * qtb_[i];
  t *= beta;
  qtb_[rank_] -= t;
  for (std::size_t i = rank_ + 1; i < rows_; ++i) qtb_[i] -= t * col[i];

  ++rank_;
  independent_.push_back(1);
  return true;
}

double IncrementalQr::residual_norm() const {
  double sum = 0.0;
  for (std::size_t i = rank_; i < rows_; ++i) sum += qtb_[i] * qtb_[i];
  return std::sqrt(sum);
}

void IncrementalQr::solve_into(Vector& x) const {
  // Back-substitute R (rank_×rank_, upper triangle of the stored columns)
  // against qtb_[0:rank_), then expand to append order with zeros in the
  // dependent slots.
  x.assign(independent_.size(), 0.0);
  if (rank_ == 0) return;
  Vector y(qtb_.begin(), qtb_.begin() + static_cast<std::ptrdiff_t>(rank_));
  for (std::size_t jj = rank_; jj-- > 0;) {
    const double* col = fac_.data() + jj * rows_;
    y[jj] /= col[jj];
    for (std::size_t i = 0; i < jj; ++i) y[i] -= col[i] * y[jj];
  }
  std::size_t stored = 0;
  for (std::size_t c = 0; c < independent_.size(); ++c)
    if (independent_[c]) x[c] = y[stored++];
}

}  // namespace hgc
