#include "linalg/qr.hpp"

#include <algorithm>
#include <cmath>

namespace hgc {

ColumnPivotedQr::ColumnPivotedQr(Matrix a, double tolerance)
    : qr_(std::move(a)) {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  HGC_REQUIRE(m > 0 && n > 0, "QR of an empty matrix");
  const std::size_t steps = std::min(m, n);
  beta_.assign(steps, 0.0);
  perm_.resize(n);
  for (std::size_t j = 0; j < n; ++j) perm_[j] = j;

  // Squared norms of the trailing part of each column, downdated per step.
  Vector col_norms(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) acc += qr_(i, j) * qr_(i, j);
    col_norms[j] = acc;
  }
  const double scale_ref = std::sqrt(
      *std::max_element(col_norms.begin(), col_norms.end()));
  const double threshold = tolerance * std::max(1.0, scale_ref);

  for (std::size_t step = 0; step < steps; ++step) {
    // Greedy pivot: column with the largest remaining norm.
    std::size_t pivot = step;
    for (std::size_t j = step + 1; j < n; ++j)
      if (col_norms[j] > col_norms[pivot]) pivot = j;
    if (pivot != step) {
      for (std::size_t i = 0; i < m; ++i) std::swap(qr_(i, pivot), qr_(i, step));
      std::swap(col_norms[pivot], col_norms[step]);
      std::swap(perm_[pivot], perm_[step]);
    }

    // Householder reflector for rows step..m-1 of column step.
    double norm_x = 0.0;
    for (std::size_t i = step; i < m; ++i) norm_x += qr_(i, step) * qr_(i, step);
    norm_x = std::sqrt(norm_x);
    if (norm_x < threshold) {
      beta_[step] = 0.0;  // column (and all that follow) numerically zero
      continue;
    }
    const double alpha = qr_(step, step) >= 0.0 ? -norm_x : norm_x;
    const double v0 = qr_(step, step) - alpha;
    // v = x - alpha*e1, normalized so v[0] = 1; stored below the diagonal.
    for (std::size_t i = step + 1; i < m; ++i) qr_(i, step) /= v0;
    beta_[step] = -v0 / alpha;
    qr_(step, step) = alpha;

    // Apply (I - beta v vᵀ) to the trailing columns.
    for (std::size_t j = step + 1; j < n; ++j) {
      double w = qr_(step, j);
      for (std::size_t i = step + 1; i < m; ++i) w += qr_(i, step) * qr_(i, j);
      w *= beta_[step];
      qr_(step, j) -= w;
      for (std::size_t i = step + 1; i < m; ++i)
        qr_(i, j) -= w * qr_(i, step);
      col_norms[j] -= qr_(step, j) * qr_(step, j);
      col_norms[j] = std::max(col_norms[j], 0.0);
    }
    col_norms[step] = 0.0;
  }

  // Numerical rank: diagonal entries of R above the threshold.
  rank_ = 0;
  for (std::size_t i = 0; i < steps; ++i) {
    if (std::abs(qr_(i, i)) > threshold) ++rank_;
  }
}

void ColumnPivotedQr::apply_qt(Vector& v) const {
  const std::size_t m = qr_.rows();
  for (std::size_t step = 0; step < beta_.size(); ++step) {
    if (beta_[step] == 0.0) continue;
    double w = v[step];
    for (std::size_t i = step + 1; i < m; ++i) w += qr_(i, step) * v[i];
    w *= beta_[step];
    v[step] -= w;
    for (std::size_t i = step + 1; i < m; ++i) v[i] -= w * qr_(i, step);
  }
}

LeastSquaresResult ColumnPivotedQr::solve(std::span<const double> b) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  HGC_REQUIRE(b.size() == m, "rhs length mismatch");

  Vector y(b.begin(), b.end());
  apply_qt(y);

  // Back substitution on the leading rank_×rank_ block of R.
  Vector z(rank_, 0.0);
  for (std::size_t ii = rank_; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < rank_; ++j) acc -= qr_(ii, j) * z[j];
    z[ii] = acc / qr_(ii, ii);
  }

  // Basic solution: pivot columns get z, free columns get zero.
  Vector x(n, 0.0);
  for (std::size_t j = 0; j < rank_; ++j) x[perm_[j]] = z[j];

  // Residual: rows of Qᵀb not reachable by the rank columns, plus any
  // neglected coupling R[0:r, r:] (zero here because free vars are zero).
  double res2 = 0.0;
  for (std::size_t i = rank_; i < m; ++i) res2 += y[i] * y[i];
  return {std::move(x), std::sqrt(res2), rank_};
}

std::size_t matrix_rank(const Matrix& a, double tolerance) {
  if (a.empty()) return 0;
  return ColumnPivotedQr(a, tolerance).rank();
}

LeastSquaresResult least_squares(Matrix a, std::span<const double> b,
                                 double tolerance) {
  return ColumnPivotedQr(std::move(a), tolerance).solve(b);
}

}  // namespace hgc
