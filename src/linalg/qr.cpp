#include "linalg/qr.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.hpp"

namespace hgc {
namespace linalg_detail {

std::size_t qr_factor_inplace(Matrix& qr, Vector& beta,
                              std::vector<std::size_t>& perm,
                              Vector& col_norms, Vector& update,
                              double tolerance) {
  const std::size_t m = qr.rows();
  const std::size_t n = qr.cols();
  HGC_REQUIRE(m > 0 && n > 0, "QR of an empty matrix");
  const std::size_t steps = std::min(m, n);
  beta.assign(steps, 0.0);
  perm.resize(n);
  for (std::size_t j = 0; j < n; ++j) perm[j] = j;

  // Squared norms of the trailing part of each column, downdated per step.
  col_norms.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const auto row = qr.row(i);
    for (std::size_t j = 0; j < n; ++j) col_norms[j] += row[j] * row[j];
  }
  const double scale_ref =
      std::sqrt(*std::max_element(col_norms.begin(), col_norms.end()));
  const double threshold = tolerance * std::max(1.0, scale_ref);

  update.resize(n);
  for (std::size_t step = 0; step < steps; ++step) {
    // Greedy pivot: column with the largest remaining norm.
    std::size_t pivot = step;
    for (std::size_t j = step + 1; j < n; ++j)
      if (col_norms[j] > col_norms[pivot]) pivot = j;
    if (pivot != step) {
      for (std::size_t i = 0; i < m; ++i)
        std::swap(qr(i, pivot), qr(i, step));
      std::swap(col_norms[pivot], col_norms[step]);
      std::swap(perm[pivot], perm[step]);
    }

    // Householder reflector for rows step..m-1 of column step.
    double norm_x = 0.0;
    for (std::size_t i = step; i < m; ++i)
      norm_x += qr(i, step) * qr(i, step);
    norm_x = std::sqrt(norm_x);
    if (norm_x < threshold) {
      beta[step] = 0.0;  // column (and all that follow) numerically zero
      continue;
    }
    const double alpha = qr(step, step) >= 0.0 ? -norm_x : norm_x;
    const double v0 = qr(step, step) - alpha;
    // v = x - alpha*e1, normalized so v[0] = 1; stored below the diagonal.
    for (std::size_t i = step + 1; i < m; ++i) qr(i, step) /= v0;
    beta[step] = -v0 / alpha;
    qr(step, step) = alpha;

    // Apply (I - beta v vᵀ) to the trailing columns, restructured row-major
    // over the kernels: w = (trailing A)ᵀ·v accumulates per output element
    // in the same ascending-row order the old column loop used, then each
    // row takes one axpy. Same arithmetic, cache-friendly traversal.
    const std::size_t trail = n - step - 1;
    if (trail == 0) {
      col_norms[step] = 0.0;
      continue;
    }
    const std::span<double> w(update.data(), trail);
    const auto top = qr.row(step).subspan(step + 1);
    std::copy(top.begin(), top.end(), w.begin());
    for (std::size_t i = step + 1; i < m; ++i)
      kernels::axpy(qr(i, step), qr.row(i).subspan(step + 1), w);
    kernels::scal(beta[step], w);
    kernels::axpy(-1.0, w, qr.row(step).subspan(step + 1));
    for (std::size_t i = step + 1; i < m; ++i)
      kernels::axpy(-qr(i, step), w, qr.row(i).subspan(step + 1));
    for (std::size_t j = step + 1; j < n; ++j) {
      col_norms[j] -= qr(step, j) * qr(step, j);
      col_norms[j] = std::max(col_norms[j], 0.0);
    }
    col_norms[step] = 0.0;
  }

  // Numerical rank: diagonal entries of R above the threshold.
  std::size_t rank = 0;
  for (std::size_t i = 0; i < steps; ++i)
    if (std::abs(qr(i, i)) > threshold) ++rank;
  return rank;
}

double qr_solve_inplace(const Matrix& qr, const Vector& beta,
                        const std::vector<std::size_t>& perm,
                        std::size_t rank, Vector& y, Vector& x) {
  const std::size_t m = qr.rows();
  const std::size_t n = qr.cols();
  HGC_REQUIRE(y.size() == m, "rhs length mismatch");

  // y ← Qᵀy (reflectors stored below the diagonal).
  for (std::size_t step = 0; step < beta.size(); ++step) {
    if (beta[step] == 0.0) continue;
    double w = y[step];
    for (std::size_t i = step + 1; i < m; ++i) w += qr(i, step) * y[i];
    w *= beta[step];
    y[step] -= w;
    for (std::size_t i = step + 1; i < m; ++i) y[i] -= w * qr(i, step);
  }

  // Back substitution on the leading rank×rank block of R, in place over
  // y's prefix (y[j] for j > ii already holds z_j when row ii is reduced).
  for (std::size_t ii = rank; ii-- > 0;) {
    const double acc =
        y[ii] - kernels::dot({qr.row(ii).data() + ii + 1, rank - ii - 1},
                             {y.data() + ii + 1, rank - ii - 1});
    y[ii] = acc / qr(ii, ii);
  }

  // Basic solution: pivot columns get z, free columns get zero.
  x.assign(n, 0.0);
  for (std::size_t j = 0; j < rank; ++j) x[perm[j]] = y[j];

  // Residual: rows of Qᵀb not reachable by the rank columns, plus any
  // neglected coupling R[0:r, r:] (zero here because free vars are zero).
  double res2 = 0.0;
  for (std::size_t i = rank; i < m; ++i) res2 += y[i] * y[i];
  return std::sqrt(res2);
}

}  // namespace linalg_detail

ColumnPivotedQr::ColumnPivotedQr(Matrix a, double tolerance)
    : qr_(std::move(a)) {
  Vector col_norms, update;
  rank_ = linalg_detail::qr_factor_inplace(qr_, beta_, perm_, col_norms,
                                           update, tolerance);
}

LeastSquaresResult ColumnPivotedQr::solve(std::span<const double> b) const {
  HGC_REQUIRE(b.size() == qr_.rows(), "rhs length mismatch");
  Vector y(b.begin(), b.end());
  Vector x;
  const double residual =
      linalg_detail::qr_solve_inplace(qr_, beta_, perm_, rank_, y, x);
  return {std::move(x), residual, rank_};
}

std::size_t matrix_rank(const Matrix& a, double tolerance) {
  if (a.empty()) return 0;
  return ColumnPivotedQr(a, tolerance).rank();
}

LeastSquaresResult least_squares(Matrix a, std::span<const double> b,
                                 double tolerance) {
  return ColumnPivotedQr(std::move(a), tolerance).solve(b);
}

}  // namespace hgc
