// CSR sparse row matrix — the sparse half of the determinism contract.
//
// The paper's coding matrices are ≤(s+1)-sparse per row by construction
// (every worker holds at most s+1 partitions), yet at 10k+ workers a dense
// m×k Matrix is a multi-gigabyte wall: the scheme constructors, the
// encode/decode paths and the robustness sweeps all walk O(m·k) storage for
// O(m·s) information. SparseRowMatrix stores exactly the nonzero structure
// (CSR: row pointers, column indices, values), and the kernels below give
// the coding layer sparse dot/gemv/gemv_t/axpy analogues with a FIXED,
// documented accumulation order so that going sparse never changes a byte
// of output.
//
// Determinism contract (mirrors linalg/kernels.hpp for the dense side):
//   * Within a row, nonzeros are stored in strictly ascending column order
//     (the builder sorts, from_dense scans ascending) — every kernel walks
//     them in that order.
//   * row_dot() accumulates the ≤(s+1) products of one row left to right in
//     a single scalar chain. Rows here are short by construction, so no
//     lane tree: the ascending-column scalar order IS the contract.
//   * gemv() reduces each output element with row_dot()'s order, rows
//     ascending.
//   * gemv_t() has no reductions: y is zeroed, then row r contributes
//     x[r]·row(r) via one in-order pass, r ascending — each y[c] sums in
//     row order, exactly the dense kernels::gemv_t order with the
//     structural zeros skipped. Skipping a structural zero drops a
//     `y[c] += x[r]·0.0` term, which is bit-identical for every finite
//     y[c] except the pathological -0.0 + 0.0 = +0.0 case; coding-layer
//     accumulators never hold -0.0 (they start at +0.0 and schemes store
//     no signed zeros — the support validation rejects stored zeros).
//   * The dense-solve packing (QrWorkspace::factor_transposed's sparse
//     overload) zero-fills and scatters, producing a byte-identical packed
//     buffer to the dense gather — so LU/QR results are unchanged bytes.
// Changing any loop here changes numeric results globally; re-baseline the
// figure outputs if you do.
//
// Like the rest of src/linalg/, this layer is allocation-free on the hot
// path: kernels never allocate, and the builder/conversions allocate only
// at construction time.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace hgc {

/// Immutable CSR matrix of doubles. Row r's nonzeros live at positions
/// [row_ptr[r], row_ptr[r+1]) of col_idx/values, columns strictly
/// ascending. Construct via SparseRowBuilder or from_dense().
class SparseRowMatrix {
 public:
  SparseRowMatrix() = default;

  std::size_t rows() const { return row_ptr_.size() - 1; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }
  bool empty() const { return rows() == 0 || cols_ == 0; }

  /// Number of nonzeros in row r (the coding layer's per-worker load).
  std::size_t row_nnz(std::size_t r) const {
    HGC_ASSERT(r < rows(), "sparse row index out of range");
    return row_ptr_[r + 1] - row_ptr_[r];
  }

  /// Column indices of row r, strictly ascending.
  std::span<const std::size_t> row_cols(std::size_t r) const {
    HGC_ASSERT(r < rows(), "sparse row index out of range");
    return {col_idx_.data() + row_ptr_[r], row_nnz(r)};
  }

  /// Values of row r, parallel to row_cols(r).
  std::span<const double> row_values(std::size_t r) const {
    HGC_ASSERT(r < rows(), "sparse row index out of range");
    return {values_.data() + row_ptr_[r], row_nnz(r)};
  }

  /// Entry (r, c); 0.0 when absent from the structure. Binary search over
  /// the row — O(log row_nnz), for tests and spot checks, not hot loops.
  double at(std::size_t r, std::size_t c) const;

  /// Convert a dense matrix, keeping entries that compare != 0.0 (signed
  /// zeros are structural zeros, matching the dense support convention).
  static SparseRowMatrix from_dense(const Matrix& dense);

  /// Materialize the dense equivalent (absent entries become +0.0, so a
  /// from_dense round trip of a support-clean matrix is byte-identical).
  Matrix to_dense() const;

 private:
  friend class SparseRowBuilder;

  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_ = {0};
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

/// Accumulates (row, col, value) triplets in any order, then build() sorts
/// each row by column and packs the CSR arrays. Exists because the scheme
/// constructors write column-wise (Alg. 1 solves one partition — one B
/// column — at a time). Entries with value exactly 0.0 are dropped
/// (support semantics); duplicate (row, col) pairs are a caller bug and
/// throw at build().
class SparseRowBuilder {
 public:
  SparseRowBuilder(std::size_t rows, std::size_t cols);

  /// Record entry (r, c) = v. O(1) amortized.
  void set(std::size_t r, std::size_t c, double v);

  /// Pack into an immutable SparseRowMatrix. The builder is left empty.
  SparseRowMatrix build();

 private:
  std::size_t cols_ = 0;
  // Per-row (col, value) triplet lists, sorted at build() time.
  std::vector<std::vector<std::pair<std::size_t, double>>> entries_;
};

namespace sparse {

/// Σ over row r's nonzeros of value·x[col], ascending column order, one
/// scalar accumulation chain (the documented sparse order).
double row_dot(const SparseRowMatrix& a, std::size_t r,
               std::span<const double> x) noexcept;

/// y ← A·x: y[r] = row_dot(a, r, x), rows ascending. y must have
/// a.rows() elements.
void gemv(const SparseRowMatrix& a, std::span<const double> x,
          std::span<double> y) noexcept;

/// y ← Aᵀ·x, accumulated row-wise: y is zeroed, then row r contributes
/// x[r]·row(r) in ascending column order, r ascending — the dense
/// kernels::gemv_t order with structural zeros skipped. y must have
/// a.cols() elements.
void gemv_t(const SparseRowMatrix& a, std::span<const double> x,
            std::span<double> y) noexcept;

/// y ← y + alpha·row(r): one in-order pass over row r's nonzeros; each
/// touched y[c] takes a single mul + add (the sparse axpy).
void add_scaled_row(const SparseRowMatrix& a, std::size_t r, double alpha,
                    std::span<double> y) noexcept;

}  // namespace sparse
}  // namespace hgc
