// Dense row-major matrix and vector helpers.
//
// Sized for the library's needs: coding matrices are m×k with m, k in the
// tens-to-hundreds, and the ML substrate's parameter vectors are dense
// doubles. No expression templates — clarity over peak FLOPs.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace hgc {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// Zero-initialized rows×cols matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Construct from nested braces: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  /// All-ones matrix (the paper's 1-matrix).
  static Matrix ones(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  /// Re-dimension to rows×cols, reusing the existing heap buffer whenever
  /// its capacity allows (the workspace layer's no-allocation-after-warm-up
  /// guarantee depends on this). Contents are unspecified afterwards —
  /// callers are expected to overwrite every entry.
  void reshape(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  double& operator()(std::size_t r, std::size_t c) {
    HGC_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    HGC_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Contiguous view of row r.
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  Vector col(std::size_t c) const;
  void set_row(std::size_t r, std::span<const double> values);
  void set_col(std::size_t c, std::span<const double> values);

  Matrix transposed() const;

  /// Submatrix keeping the given rows (in the given order; repeats allowed).
  Matrix select_rows(std::span<const std::size_t> indices) const;
  /// Submatrix keeping the given columns (in the given order).
  Matrix select_cols(std::span<const std::size_t> indices) const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Matrix product (naive triple loop with the k-loop innermost hoisted).
  friend Matrix operator*(const Matrix& a, const Matrix& b);

  /// Matrix-vector product a·x.
  Vector apply(std::span<const double> x) const;
  /// Row-vector product xᵀ·a (length-rows x, returns length-cols).
  Vector apply_transpose(std::span<const double> x) const;

  /// Max |a_ij − b_ij|; matrices must be the same shape.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

  /// Frobenius norm.
  double frobenius_norm() const;

  friend std::ostream& operator<<(std::ostream& os, const Matrix& m);

  std::span<const double> data() const { return data_; }
  std::span<double> data() { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// --- vector helpers (used heavily by the coding and ML layers) ---

double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);
/// y ← y + alpha·x
void axpy(double alpha, std::span<const double> x, std::span<double> y);
/// x ← alpha·x
void scale(double alpha, std::span<double> x);
Vector add(std::span<const double> a, std::span<const double> b);
Vector subtract(std::span<const double> a, std::span<const double> b);
double max_abs(std::span<const double> a);

}  // namespace hgc
