// LU decomposition with partial pivoting.
//
// Alg. 1 of the paper solves C_i · d = 1 for every data partition; the
// matrices are (s+1)×(s+1) with s small, so a dense LU is the right tool.
#pragma once

#include "linalg/matrix.hpp"

namespace hgc {

/// PA = LU factorization of a square matrix; solve/det/inverse on top of it.
class LuDecomposition {
 public:
  /// Factor a square matrix. Throws std::invalid_argument for non-square
  /// input. Singularity is detected lazily: is_singular() or solve().
  explicit LuDecomposition(Matrix a);

  /// True if a pivot underflowed the singularity threshold.
  bool is_singular() const { return singular_; }

  /// Solve A·x = b. Throws hgc::InternalError if the matrix is singular.
  Vector solve(std::span<const double> b) const;

  /// Solve A·X = B column by column.
  Matrix solve(const Matrix& b) const;

  Matrix inverse() const;

  /// Determinant (product of pivots with permutation sign).
  double determinant() const;

 private:
  Matrix lu_;                       // packed L (unit diagonal) and U
  std::vector<std::size_t> perm_;   // row permutation
  int sign_ = 1;
  bool singular_ = false;
};

/// Convenience wrapper: solve a single system without keeping the factors.
Vector lu_solve(Matrix a, std::span<const double> b);

namespace linalg_detail {

/// In-place PA = LU core shared by LuDecomposition and LuWorkspace: factors
/// `lu` destructively (packed L below, U on/above the diagonal), fills the
/// row permutation and its sign. Returns false when a pivot underflowed the
/// singularity threshold. Allocation-free once perm has capacity.
bool lu_factor_inplace(Matrix& lu, std::vector<std::size_t>& perm, int& sign);

/// Forward/back substitution against packed factors; x must have length n.
void lu_solve_inplace(const Matrix& lu, const std::vector<std::size_t>& perm,
                      std::span<const double> b, std::span<double> x);

}  // namespace linalg_detail
}  // namespace hgc
