// Null-space computation via Gauss-Jordan elimination.
//
// The fast decoding path of the paper (Section III-B / Lemma 2) needs a
// nonzero λ with λ·C_S = 0 for the straggler columns C_S — i.e. a null-space
// vector of C_Sᵀ. The null space is (s+1−|S|)-dimensional, so it always
// exists when |S| ≤ s.
#pragma once

#include "linalg/matrix.hpp"

namespace hgc {

/// Orthogonal-free basis of the null space of `a`: returns a matrix whose
/// columns span {x : a·x = 0}. Empty (0 columns) when a has full column rank.
Matrix null_space_basis(const Matrix& a, double tolerance = 1e-10);

/// One nonzero null-space vector of `a`, or an empty vector when the null
/// space is trivial.
Vector null_space_vector(const Matrix& a, double tolerance = 1e-10);

/// Reduced row-echelon form (in place); returns the pivot column indices.
std::vector<std::size_t> reduce_to_rref(Matrix& a, double tolerance = 1e-10);

/// Allocation-free variant: pivot columns land in `pivots` (cleared first,
/// reused capacity).
void reduce_to_rref(Matrix& a, std::vector<std::size_t>& pivots,
                    double tolerance = 1e-10);

/// Allocation-free null_space_basis over caller-owned scratch: `rref` is
/// overwritten with the RREF of `a`, `pivots` with its pivot columns, and
/// `basis` is reshaped to a.cols()×nullity. No heap traffic once the
/// scratch buffers have warmed up to the shape. Used by the Alg. 1 decode
/// hot path with one workspace per thread.
void null_space_basis_into(const Matrix& a, Matrix& rref,
                           std::vector<std::size_t>& pivots, Matrix& basis,
                           double tolerance = 1e-10);

}  // namespace hgc
