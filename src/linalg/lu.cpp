#include "linalg/lu.hpp"

#include <array>
#include <cmath>

#include "linalg/kernels.hpp"

namespace hgc {
namespace {
constexpr double kPivotTolerance = 1e-12;

// Panel width for the blocked factorization. 32 trailing-row factors plus a
// 32-row pivot panel fit comfortably in L1/L2 at the sweep's sizes, and the
// trailing matrix is streamed n/32 times instead of n times.
constexpr std::size_t kLuPanel = 32;
}  // namespace

namespace linalg_detail {

// Right-looking blocked LU with partial pivoting.
//
// Columns are processed in panels of kLuPanel. Within a panel, each column
// is pivoted and factored eagerly, but its axpy update touches only the
// remaining PANEL columns; the update of everything right of the panel is
// deferred. After the panel, one row-ascending pass applies all deferred
// contributions: row r receives those of panel columns j < min(r, k1) in
// ascending j, fused four columns per sweep so the trailing row is read
// and written once per FOUR updates instead of once per update — that
// fusion, not the panel split alone, is where the measured win comes from.
// Ascending r makes the pass correct — a panel row j < k1 is fully updated
// (it is a finished U row) before any row r > j reads its trailing part —
// so the single loop covers both the U12 triangular solve and the A22
// rank-kLuPanel update.
//
// Determinism: every element (r, c) still receives its updates as the same
// ascending-j sequence an unblocked same-order elimination would apply —
// axpy4 chains its four adds in argument order per element, bit-identical
// to four sequential axpys in every backend — and pivot columns are always
// fully updated before they are searched, so pivot choices are blocking-
// and backend-independent.
//
// Near-singular columns (pivot below tolerance) are skipped exactly as
// before: no swap, no factors, raw values stay below the diagonal, and the
// deferred pass drops the column via `skip` (compaction preserves the
// ascending-j order of the survivors).
bool lu_factor_inplace(Matrix& lu, std::vector<std::size_t>& perm,
                       int& sign) {
  const std::size_t n = lu.rows();
  perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  sign = 1;
  bool singular = false;

  for (std::size_t k0 = 0; k0 < n; k0 += kLuPanel) {
    const std::size_t k1 = std::min(k0 + kLuPanel, n);
    std::array<bool, kLuPanel> skip{};

    // Factor the panel: pivot + eliminate, updating panel columns only.
    for (std::size_t col = k0; col < k1; ++col) {
      // Partial pivoting: bring the largest remaining |entry| to the
      // diagonal. Column col is fully up to date here (previous panels'
      // deferred passes plus this panel's eager updates).
      std::size_t pivot = col;
      double best = std::abs(lu(col, col));
      for (std::size_t r = col + 1; r < n; ++r) {
        const double cand = std::abs(lu(r, col));
        if (cand > best) {
          best = cand;
          pivot = r;
        }
      }
      if (best < kPivotTolerance) {
        singular = true;
        skip[col - k0] = true;
        continue;
      }
      if (pivot != col) {
        for (std::size_t c = 0; c < n; ++c)
          std::swap(lu(pivot, c), lu(col, c));
        std::swap(perm[pivot], perm[col]);
        sign = -sign;
      }
      const double inv_diag = 1.0 / lu(col, col);
      const auto pivot_tail = lu.row(col).subspan(col + 1, k1 - col - 1);
      for (std::size_t r = col + 1; r < n; ++r) {
        const double factor = lu(r, col) * inv_diag;
        lu(r, col) = factor;
        kernels::axpy(-factor, pivot_tail,
                      lu.row(r).subspan(col + 1, k1 - col - 1));
      }
    }

    // Deferred trailing pass (fused U12 solve + A22 update; see above).
    if (k1 == n) continue;
    const std::size_t len = n - k1;
    for (std::size_t r = k0 + 1; r < n; ++r) {
      const std::size_t jmax = std::min(r, k1);
      // Compact the non-skipped contributions, then apply them four per
      // sweep through kernels::axpy4 (bit-identical to four sequential
      // axpys by its contract) — the fusion batches memory traffic, not
      // arithmetic.
      const double* u[kLuPanel];
      double f[kLuPanel];
      std::size_t cnt = 0;
      for (std::size_t j = k0; j < jmax; ++j) {
        if (skip[j - k0]) continue;
        f[cnt] = -lu(r, j);
        u[cnt] = lu.row(j).data() + k1;
        ++cnt;
      }
      const std::span<double> target(lu.row(r).data() + k1, len);
      std::size_t g = 0;
      for (; g + 4 <= cnt; g += 4) {
        const double alpha[4] = {f[g], f[g + 1], f[g + 2], f[g + 3]};
        const double* const x[4] = {u[g], u[g + 1], u[g + 2], u[g + 3]};
        kernels::axpy4(alpha, x, target);
      }
      for (; g < cnt; ++g)
        kernels::axpy(f[g], std::span<const double>(u[g], len), target);
    }
  }
  return !singular;
}

void lu_solve_inplace(const Matrix& lu, const std::vector<std::size_t>& perm,
                      std::span<const double> b, std::span<double> x) {
  const std::size_t n = lu.rows();
  // Forward substitution with the permuted rhs (L has unit diagonal).
  for (std::size_t i = 0; i < n; ++i)
    x[i] = b[perm[i]] - kernels::dot(lu.row(i).first(i), x.first(i));
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    const double acc =
        x[ii] - kernels::dot(lu.row(ii).subspan(ii + 1), x.subspan(ii + 1));
    x[ii] = acc / lu(ii, ii);
  }
}

}  // namespace linalg_detail

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  HGC_REQUIRE(lu_.rows() == lu_.cols(), "LU requires a square matrix");
  singular_ = !linalg_detail::lu_factor_inplace(lu_, perm_, sign_);
}

Vector LuDecomposition::solve(std::span<const double> b) const {
  HGC_REQUIRE(b.size() == lu_.rows(), "rhs length mismatch");
  HGC_ASSERT(!singular_, "solve() on a singular matrix");
  Vector x(lu_.rows());
  linalg_detail::lu_solve_inplace(lu_, perm_, b, x);
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  HGC_REQUIRE(b.rows() == lu_.rows(), "rhs row count mismatch");
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c)
    x.set_col(c, solve(b.col(c)));
  return x;
}

Matrix LuDecomposition::inverse() const {
  return solve(Matrix::identity(lu_.rows()));
}

double LuDecomposition::determinant() const {
  if (singular_) return 0.0;
  double det = static_cast<double>(sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Vector lu_solve(Matrix a, std::span<const double> b) {
  return LuDecomposition(std::move(a)).solve(b);
}

}  // namespace hgc
