#include "linalg/lu.hpp"

#include <cmath>

namespace hgc {
namespace {
constexpr double kPivotTolerance = 1e-12;
}

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  HGC_REQUIRE(lu_.rows() == lu_.cols(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: bring the largest remaining |entry| to the diagonal.
    std::size_t pivot = col;
    double best = std::abs(lu_(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double cand = std::abs(lu_(r, col));
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    if (best < kPivotTolerance) {
      singular_ = true;
      continue;
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(lu_(pivot, c), lu_(col, c));
      std::swap(perm_[pivot], perm_[col]);
      sign_ = -sign_;
    }
    const double inv_diag = 1.0 / lu_(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu_(r, col) * inv_diag;
      lu_(r, col) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = col + 1; c < n; ++c)
        lu_(r, c) -= factor * lu_(col, c);
    }
  }
}

Vector LuDecomposition::solve(std::span<const double> b) const {
  HGC_REQUIRE(b.size() == lu_.rows(), "rhs length mismatch");
  HGC_ASSERT(!singular_, "solve() on a singular matrix");
  const std::size_t n = lu_.rows();
  Vector x(n);
  // Forward substitution with the permuted rhs (L has unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  HGC_REQUIRE(b.rows() == lu_.rows(), "rhs row count mismatch");
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c)
    x.set_col(c, solve(b.col(c)));
  return x;
}

Matrix LuDecomposition::inverse() const {
  return solve(Matrix::identity(lu_.rows()));
}

double LuDecomposition::determinant() const {
  if (singular_) return 0.0;
  double det = static_cast<double>(sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Vector lu_solve(Matrix a, std::span<const double> b) {
  return LuDecomposition(std::move(a)).solve(b);
}

}  // namespace hgc
