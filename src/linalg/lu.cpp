#include "linalg/lu.hpp"

#include <cmath>

#include "linalg/kernels.hpp"

namespace hgc {
namespace {
constexpr double kPivotTolerance = 1e-12;
}

namespace linalg_detail {

bool lu_factor_inplace(Matrix& lu, std::vector<std::size_t>& perm,
                       int& sign) {
  const std::size_t n = lu.rows();
  perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  sign = 1;
  bool singular = false;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: bring the largest remaining |entry| to the diagonal.
    std::size_t pivot = col;
    double best = std::abs(lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double cand = std::abs(lu(r, col));
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    if (best < kPivotTolerance) {
      singular = true;
      continue;
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(lu(pivot, c), lu(col, c));
      std::swap(perm[pivot], perm[col]);
      sign = -sign;
    }
    const double inv_diag = 1.0 / lu(col, col);
    const auto pivot_tail = lu.row(col).subspan(col + 1);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu(r, col) * inv_diag;
      lu(r, col) = factor;
      if (factor == 0.0) continue;
      kernels::axpy(-factor, pivot_tail, lu.row(r).subspan(col + 1));
    }
  }
  return !singular;
}

void lu_solve_inplace(const Matrix& lu, const std::vector<std::size_t>& perm,
                      std::span<const double> b, std::span<double> x) {
  const std::size_t n = lu.rows();
  // Forward substitution with the permuted rhs (L has unit diagonal).
  for (std::size_t i = 0; i < n; ++i)
    x[i] = b[perm[i]] - kernels::dot(lu.row(i).first(i), x.first(i));
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    const double acc =
        x[ii] - kernels::dot(lu.row(ii).subspan(ii + 1), x.subspan(ii + 1));
    x[ii] = acc / lu(ii, ii);
  }
}

}  // namespace linalg_detail

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  HGC_REQUIRE(lu_.rows() == lu_.cols(), "LU requires a square matrix");
  singular_ = !linalg_detail::lu_factor_inplace(lu_, perm_, sign_);
}

Vector LuDecomposition::solve(std::span<const double> b) const {
  HGC_REQUIRE(b.size() == lu_.rows(), "rhs length mismatch");
  HGC_ASSERT(!singular_, "solve() on a singular matrix");
  Vector x(lu_.rows());
  linalg_detail::lu_solve_inplace(lu_, perm_, b, x);
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  HGC_REQUIRE(b.rows() == lu_.rows(), "rhs row count mismatch");
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c)
    x.set_col(c, solve(b.col(c)));
  return x;
}

Matrix LuDecomposition::inverse() const {
  return solve(Matrix::identity(lu_.rows()));
}

double LuDecomposition::determinant() const {
  if (singular_) return 0.0;
  double det = static_cast<double>(sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Vector lu_solve(Matrix a, std::span<const double> b) {
  return LuDecomposition(std::move(a)).solve(b);
}

}  // namespace hgc
