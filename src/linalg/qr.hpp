// Householder QR with column pivoting: rank-revealing least squares.
//
// The master's generic decodability test asks whether some combination of the
// received coded gradients reconstructs the all-ones row: a least-squares
// solve of B_Rᵀ·x = 1 followed by a residual check (Section III-B of the
// paper). B_R can be rank-deficient (e.g. group-based codes with coefficient-1
// rows), so the factorization must be rank revealing.
#pragma once

#include "linalg/matrix.hpp"

namespace hgc {

/// Solution of min ‖A·x − b‖₂ with diagnostic residual.
struct LeastSquaresResult {
  Vector x;         ///< basic solution (free variables set to zero)
  double residual;  ///< ‖A·x − b‖₂
  std::size_t rank; ///< numerical rank of A
};

/// A·P = Q·R with Householder reflections and greedy column pivoting.
class ColumnPivotedQr {
 public:
  explicit ColumnPivotedQr(Matrix a, double tolerance = 1e-10);

  std::size_t rank() const { return rank_; }
  std::size_t rows() const { return qr_.rows(); }
  std::size_t cols() const { return qr_.cols(); }

  /// Least-squares solve against the factored matrix.
  LeastSquaresResult solve(std::span<const double> b) const;

 private:
  Matrix qr_;                      // R in the upper triangle, reflectors below
  Vector beta_;                    // reflector scales
  std::vector<std::size_t> perm_;  // column permutation (perm_[j] = original)
  std::size_t rank_ = 0;
};

/// Numerical rank via column-pivoted QR.
std::size_t matrix_rank(const Matrix& a, double tolerance = 1e-10);

/// Convenience one-shot least squares.
LeastSquaresResult least_squares(Matrix a, std::span<const double> b,
                                 double tolerance = 1e-10);

namespace linalg_detail {

/// In-place column-pivoted Householder QR core shared by ColumnPivotedQr
/// and QrWorkspace. Factors `qr` destructively (R in the upper triangle,
/// reflectors below); beta/perm are resized to fit, col_norms and update
/// are scratch. Returns the numerical rank. Allocation-free once every
/// buffer has capacity for the shape.
std::size_t qr_factor_inplace(Matrix& qr, Vector& beta,
                              std::vector<std::size_t>& perm,
                              Vector& col_norms, Vector& update,
                              double tolerance);

/// Least-squares solve from packed factors. `y` enters holding a copy of
/// the rhs and is clobbered (Qᵀb, then the back-substituted z in its
/// prefix); the basic solution lands in x (resized, free variables zero).
/// Returns the residual norm.
double qr_solve_inplace(const Matrix& qr, const Vector& beta,
                        const std::vector<std::size_t>& perm,
                        std::size_t rank, Vector& y, Vector& x);

}  // namespace linalg_detail
}  // namespace hgc
