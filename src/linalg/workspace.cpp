#include "linalg/workspace.hpp"

#include <algorithm>

#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hgc {

// ------------------------------------------------------------ LuWorkspace --

bool LuWorkspace::factor(const Matrix& a) {
  HGC_REQUIRE(a.rows() == a.cols(), "LU requires a square matrix");
  lu_.reshape(a.rows(), a.cols());
  std::copy(a.data().begin(), a.data().end(), lu_.data().begin());
  return factor_packed();
}

bool LuWorkspace::factor_cols(const Matrix& a,
                              std::span<const std::size_t> cols) {
  HGC_REQUIRE(a.rows() == cols.size(),
              "LU requires a square matrix (rows vs selected cols)");
  lu_.reshape(a.rows(), cols.size());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    HGC_REQUIRE(cols[i] < a.cols(), "column selection out of range");
    for (std::size_t r = 0; r < a.rows(); ++r) lu_(r, i) = a(r, cols[i]);
  }
  return factor_packed();
}

bool LuWorkspace::factor_packed() {
  // Disabled observability cost here is one relaxed load + branch per
  // handle: this sits under every decode solve and must stay allocation-
  // free and branch-predictable (BM_KernelLuSolveWorkspace pins it).
  HGC_TRACE_SCOPE("lu_factor", "linalg",
                  static_cast<std::int64_t>(lu_.rows()));
  if (obs::metrics_enabled()) {
    static const obs::Counter factors =
        obs::Registry::global().counter("linalg.lu_factors");
    factors.add();
  }
  singular_ = !linalg_detail::lu_factor_inplace(lu_, perm_, sign_);
  return !singular_;
}

void LuWorkspace::solve_into(std::span<const double> b, Vector& x) const {
  HGC_REQUIRE(b.size() == lu_.rows(), "rhs length mismatch");
  HGC_ASSERT(!singular_, "solve_into() on a singular matrix");
  x.resize(lu_.rows());
  linalg_detail::lu_solve_inplace(lu_, perm_, b, x);
}

// ------------------------------------------------------------ QrWorkspace --

void QrWorkspace::factor(const Matrix& a, double tolerance) {
  qr_.reshape(a.rows(), a.cols());
  std::copy(a.data().begin(), a.data().end(), qr_.data().begin());
  factor_packed(tolerance);
}

void QrWorkspace::factor_transposed(const RowSelectView& view,
                                    double tolerance) {
  // Pack viewᵀ: entry (j, i) = view(i, j). Rows of the base matrix are
  // contiguous reads; the strided writes are cheap at coding-matrix sizes.
  qr_.reshape(view.cols(), view.rows());
  for (std::size_t i = 0; i < view.rows(); ++i) {
    const auto row = view.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) qr_(j, i) = row[j];
  }
  factor_packed(tolerance);
}

void QrWorkspace::factor_transposed(const SparseRowMatrix& b,
                                    std::span<const std::size_t> rows,
                                    double tolerance) {
  // Pack (B_R)ᵀ column by column: zero-fill, then scatter row i's nonzeros
  // down column i. The packed bytes equal the dense gather's (absent
  // entries are +0.0 there too), so sparse vs dense packing cannot change
  // a factorization bit.
  qr_.reshape(b.cols(), rows.size());
  std::fill(qr_.data().begin(), qr_.data().end(), 0.0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    HGC_REQUIRE(rows[i] < b.rows(), "row selection out of range");
    const auto cols = b.row_cols(rows[i]);
    const auto values = b.row_values(rows[i]);
    for (std::size_t j = 0; j < cols.size(); ++j)
      qr_(cols[j], i) = values[j];
  }
  factor_packed(tolerance);
}

void QrWorkspace::factor_packed(double tolerance) {
  HGC_TRACE_SCOPE("qr_factor", "linalg",
                  static_cast<std::int64_t>(qr_.rows()));
  if (obs::metrics_enabled()) {
    static const obs::Counter factors =
        obs::Registry::global().counter("linalg.qr_factors");
    factors.add();
  }
  rank_ = linalg_detail::qr_factor_inplace(qr_, beta_, perm_, col_norms_,
                                           update_, tolerance);
}

double QrWorkspace::solve_into(std::span<const double> b, Vector& x) {
  HGC_REQUIRE(b.size() == qr_.rows(), "rhs length mismatch");
  y_.assign(b.begin(), b.end());
  return linalg_detail::qr_solve_inplace(qr_, beta_, perm_, rank_, y_, x);
}

InPlaceSolveInfo least_squares_into(const Matrix& a,
                                    std::span<const double> b,
                                    QrWorkspace& ws, Vector& x,
                                    double tolerance) {
  ws.factor(a, tolerance);
  InPlaceSolveInfo info;
  info.residual = ws.solve_into(b, x);
  info.rank = ws.rank();
  return info;
}

}  // namespace hgc
