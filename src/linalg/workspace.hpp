// Reusable factorization workspaces and in-place solve APIs.
//
// Every novel straggler pattern costs a dense solve over a small coding
// matrix (Algorithm 1, the generic decodability test, Condition-1 sweeps).
// The one-shot helpers (lu_solve, least_squares) allocate factor and
// scratch buffers per call; at sweep/robustness scale that per-call traffic
// dominates. A workspace owns those buffers and reuses them call over call:
// after one warm-up solve per shape, further solves of the same (or
// smaller) shape perform ZERO heap allocations — test_kernels pins that
// with an instrumented allocator.
//
// Threading: a workspace is mutable scratch — never share one across
// threads. Results never depend on workspace history (every factor() fully
// overwrites the packed state), so per-thread reuse cannot perturb the
// sweep's byte-identical-output contract. The decode hot paths keep one
// workspace per thread via `thread_local`, which hands each sweep worker
// thread its own set for free.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace hgc {

/// A non-owning view of selected rows of a matrix (repeats allowed, any
/// order). Lets solvers gather B_R straight from B without materializing
/// select_rows(...)/transposed() temporaries. Both the matrix and the index
/// storage must outlive the view.
class RowSelectView {
 public:
  RowSelectView(const Matrix& base, std::span<const std::size_t> rows)
      : base_(&base), indices_(rows) {
    for (std::size_t r : rows)
      HGC_REQUIRE(r < base.rows(), "row selection out of range");
  }

  std::size_t rows() const { return indices_.size(); }
  std::size_t cols() const { return base_->cols(); }
  std::span<const double> row(std::size_t i) const {
    return base_->row(indices_[i]);
  }

 private:
  const Matrix* base_;
  std::span<const std::size_t> indices_;
};

/// PA = LU with partial pivoting over owned, reusable storage.
class LuWorkspace {
 public:
  /// Copy `a` (square) into the reused buffer and factor. Returns false
  /// when a pivot underflowed the singularity threshold.
  bool factor(const Matrix& a);

  /// Factor the square gather a[:, cols] without materializing select_cols.
  bool factor_cols(const Matrix& a, std::span<const std::size_t> cols);

  bool is_singular() const { return singular_; }

  /// Solve A·x = b against the last factor; x is resized (no allocation
  /// once its capacity covers the shape). Throws hgc::InternalError when
  /// the factored matrix was singular.
  void solve_into(std::span<const double> b, Vector& x) const;

 private:
  bool factor_packed();

  Matrix lu_;
  std::vector<std::size_t> perm_;
  int sign_ = 1;
  bool singular_ = false;
};

/// Householder QR with column pivoting over owned, reusable storage; the
/// rank-revealing least-squares engine behind the generic decodability test.
class QrWorkspace {
 public:
  /// Copy `a` into the reused buffer and factor.
  void factor(const Matrix& a, double tolerance = 1e-10);

  /// Factor viewᵀ — i.e. (B_R)ᵀ for a row selection of B — gathered
  /// directly from the base matrix, no temporaries.
  void factor_transposed(const RowSelectView& view, double tolerance = 1e-10);

  /// Factor (B_R)ᵀ for a row selection of a sparse B: each selected row is
  /// zero-filled then scattered into its packed column. For a support-clean
  /// matrix the packed buffer is byte-identical to the dense gather above,
  /// so the factorization — and every downstream solve byte — is unchanged.
  void factor_transposed(const SparseRowMatrix& b,
                         std::span<const std::size_t> rows,
                         double tolerance = 1e-10);

  std::size_t rank() const { return rank_; }
  std::size_t rows() const { return qr_.rows(); }
  std::size_t cols() const { return qr_.cols(); }

  /// Least-squares min ‖A·x − b‖₂ against the last factor. Writes the basic
  /// solution into x (resized; free variables zero) and returns the
  /// residual norm.
  double solve_into(std::span<const double> b, Vector& x);

 private:
  void factor_packed(double tolerance);

  Matrix qr_;
  Vector beta_;
  Vector col_norms_;              // pivot bookkeeping scratch
  Vector update_;                 // trailing-update row scratch
  Vector y_;                      // rhs working copy for solves
  std::vector<std::size_t> perm_;
  std::size_t rank_ = 0;
};

/// The bundle the decode/robustness hot paths thread through their loops:
/// both factorization engines plus the index and vector scratch the callers
/// need to stay allocation-free.
struct SolveWorkspace {
  QrWorkspace qr;
  LuWorkspace lu;
  Vector rhs;                          ///< right-hand sides (e.g. all-ones)
  Vector x;                            ///< solution scratch
  std::vector<std::size_t> indices;    ///< row/column selections
  std::vector<std::size_t> indices2;   ///< second selection (enumerations)
};

/// Shape + diagnostics of an in-place least-squares solve.
struct InPlaceSolveInfo {
  double residual = 0.0;
  std::size_t rank = 0;
};

/// Factor `a` into the workspace's reused storage; false when singular.
inline bool lu_factor_into(const Matrix& a, LuWorkspace& ws) {
  return ws.factor(a);
}

/// One-stop in-place least squares: factor `a` in ws, solve for b, write
/// the basic solution into x. Equivalent to least_squares() minus the
/// per-call allocations.
InPlaceSolveInfo least_squares_into(const Matrix& a,
                                    std::span<const double> b,
                                    QrWorkspace& ws, Vector& x,
                                    double tolerance = 1e-10);

}  // namespace hgc
