#include "util/args.hpp"

#include <sstream>
#include <stdexcept>

#include "util/error.hpp"

namespace hgc {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    HGC_REQUIRE(token.rfind("--", 0) == 0,
                "options must start with --, got: " + token);
    token.erase(0, 2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      values_[token.substr(0, eq)] = token.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[token] = argv[++i];
    } else {
      values_[token] = "true";  // bare flag
    }
  }
}

bool Args::has(const std::string& key) const {
  queried_.insert(key);
  return values_.count(key) > 0;
}

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  queried_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& key,
                           std::int64_t fallback) const {
  const std::string raw = get(key, "");
  if (raw.empty()) return fallback;
  return std::stoll(raw);
}

double Args::get_double(const std::string& key, double fallback) const {
  const std::string raw = get(key, "");
  if (raw.empty()) return fallback;
  return std::stod(raw);
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  const std::string raw = get(key, "");
  if (raw.empty()) return fallback;
  if (raw == "true" || raw == "1" || raw == "yes") return true;
  if (raw == "false" || raw == "0" || raw == "no") return false;
  throw std::invalid_argument("not a boolean: --" + key + "=" + raw);
}

void Args::check_unused() const {
  std::ostringstream unknown;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (queried_.count(key) == 0) unknown << " --" << key;
  }
  const std::string list = unknown.str();
  if (!list.empty())
    throw std::invalid_argument("unrecognized options:" + list);
}

}  // namespace hgc
