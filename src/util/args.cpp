#include "util/args.hpp"

#include <sstream>
#include <stdexcept>

#include "util/error.hpp"

namespace hgc {

Args::Args(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  tokens.reserve(argc > 0 ? static_cast<std::size_t>(argc) - 1 : 0);
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  *this = Args(std::span<const std::string>(tokens));
}

Args::Args(std::span<const std::string> tokens) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    std::string token = tokens[i];
    HGC_REQUIRE(token.rfind("--", 0) == 0,
                "options must start with --, got: " + token);
    token.erase(0, 2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      values_[token.substr(0, eq)] = token.substr(eq + 1);
      lists_[token.substr(0, eq)].push_back(token.substr(eq + 1));
      bare_flags_.erase(token.substr(0, eq));
    } else if (i + 1 < tokens.size() &&
               tokens[i + 1].rfind("--", 0) != 0) {
      values_[token] = tokens[++i];
      lists_[token].push_back(tokens[i]);
      bare_flags_.erase(token);
    } else {
      // Bare flag: remember it as such so a value-typed read of this key
      // fails loudly instead of yielding the literal string "true".
      values_[token] = "true";
      bare_flags_.insert(token);
    }
  }
}

bool Args::has(const std::string& key) const {
  queried_.insert(key);
  return values_.count(key) > 0;
}

const std::string* Args::find_value(const std::string& key) const {
  queried_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return nullptr;
  if (bare_flags_.count(key) > 0)
    throw std::invalid_argument(
        "--" + key + " requires a value (it was given as a bare flag; was "
        "the value swallowed by the next option?)");
  return &it->second;
}

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  const std::string* raw = find_value(key);
  return raw ? *raw : fallback;
}

std::int64_t Args::get_int(const std::string& key,
                           std::int64_t fallback) const {
  const std::string* raw = find_value(key);
  if (!raw) return fallback;
  try {
    std::size_t consumed = 0;
    const std::int64_t value = std::stoll(*raw, &consumed);
    if (consumed != raw->size())
      throw std::invalid_argument("trailing characters");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("not an integer: --" + key + "=" + *raw);
  }
}

double Args::get_double(const std::string& key, double fallback) const {
  const std::string* raw = find_value(key);
  if (!raw) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(*raw, &consumed);
    if (consumed != raw->size())
      throw std::invalid_argument("trailing characters");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("not a number: --" + key + "=" + *raw);
  }
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  // Deliberately not find_value: a bare flag is the idiomatic way to say
  // true, so bools read the raw stored value.
  queried_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& raw = it->second;
  if (raw == "true" || raw == "1" || raw == "yes") return true;
  if (raw == "false" || raw == "0" || raw == "no") return false;
  throw std::invalid_argument("not a boolean: --" + key + "=" + raw);
}

std::vector<std::string> Args::get_list(const std::string& key) const {
  // find_value enforces the bare-flag rule and marks the key queried.
  if (find_value(key) == nullptr) return {};
  const auto it = lists_.find(key);
  return it == lists_.end() ? std::vector<std::string>{} : it->second;
}

void Args::check_unused() const {
  std::ostringstream unknown;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (queried_.count(key) == 0) unknown << " --" << key;
  }
  const std::string list = unknown.str();
  if (!list.empty())
    throw std::invalid_argument("unrecognized options:" + list);
}

}  // namespace hgc
