// Small descriptive-statistics helpers used by the simulator and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hgc {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm), used to
/// aggregate per-iteration metrics without storing every sample.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Unbiased sample standard deviation; 0 with fewer than two samples.
double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, q in [0, 100]. Copies and sorts.
double percentile(std::span<const double> xs, double q);

double median(std::span<const double> xs);

/// Sum with Kahan compensation (iteration-time totals accumulate millions of
/// small terms in long sweeps).
double kahan_sum(std::span<const double> xs);

}  // namespace hgc
