// Small descriptive-statistics helpers used by the simulator and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hgc {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm), used to
/// aggregate per-iteration metrics without storing every sample.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }
  /// Raw second central moment (Welford's M2) — exposed so snapshots can
  /// serialize the exact accumulator state; variance() is derived from it.
  double m2() const { return count_ ? m2_ : 0.0; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

  /// Rebuild an accumulator from serialized state (obs::Snapshot JSON).
  /// The fields are taken verbatim, so read(write(s)) == s to the bit.
  static RunningStats from_parts(std::size_t count, double mean, double m2,
                                 double min, double max);

  /// Exact state equality (the snapshot round-trip contract). Compares the
  /// raw fields with operator== — fine for the finite values stats hold.
  friend bool operator==(const RunningStats& a, const RunningStats& b) {
    return a.count_ == b.count_ && a.mean_ == b.mean_ && a.m2_ == b.m2_ &&
           a.min_ == b.min_ && a.max_ == b.max_;
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Streaming quantile estimator over a fixed-capacity uniform reservoir
/// (Vitter's algorithm R) — the engine's round-latency reporting wants
/// p50/p95/p99 without storing every sample of a long run. Quantiles are
/// exact while count() <= capacity and an unbiased-sample estimate after.
/// Replacement decisions come from an internal splitmix64 stream, so results
/// are deterministic for a given seed and insertion order.
class ReservoirQuantiles {
 public:
  explicit ReservoirQuantiles(std::size_t capacity = 1024,
                              std::uint64_t seed = 0x5eed);

  void add(double x);

  /// Total samples observed (not just those retained).
  std::size_t count() const { return count_; }
  std::size_t sample_size() const { return sample_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Linear-interpolated quantile, q in [0, 100]. Requires count() > 0.
  double quantile(double q) const;
  double p50() const { return quantile(50.0); }
  double p95() const { return quantile(95.0); }
  double p99() const { return quantile(99.0); }

  /// The retained sample in insertion/replacement order, and the internal
  /// selection-stream state — together with count() and capacity() this is
  /// the complete serializable state of the estimator.
  const std::vector<double>& retained() const { return sample_; }
  std::uint64_t rng_state() const { return state_; }

  /// Rebuild an estimator from serialized state (obs::Snapshot JSON); the
  /// sample must fit the capacity and count must cover the sample.
  static ReservoirQuantiles from_parts(std::size_t capacity,
                                       std::uint64_t state, std::size_t count,
                                       std::vector<double> sample);

  /// Exact state equality (the snapshot round-trip contract).
  friend bool operator==(const ReservoirQuantiles& a,
                         const ReservoirQuantiles& b) {
    return a.capacity_ == b.capacity_ && a.count_ == b.count_ &&
           a.state_ == b.state_ && a.sample_ == b.sample_;
  }

  /// Merge another reservoir into this one (parallel reduction).
  ///
  /// Determinism note: the result is a pure function of the two operands
  /// (the selection stream is seeded from both reservoirs' states and
  /// counts), so a merge tree evaluated in a fixed order yields bit-identical
  /// results regardless of which thread produced each partial. count() is
  /// exact. The retained sample is a weight-equalized draw from the two
  /// samples — while both operands still retain their full streams (and
  /// they fit) it equals the concatenated sequential stream; once either
  /// side has saturated it is an unbiased estimate, not the byte-identical
  /// reservoir a single sequential pass would have kept.
  void merge(const ReservoirQuantiles& other);

 private:
  std::uint64_t next_u64();

  std::vector<double> sample_;
  std::size_t capacity_;
  std::size_t count_ = 0;
  std::uint64_t state_;
};

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Unbiased sample standard deviation; 0 with fewer than two samples.
double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, q in [0, 100]. Copies and sorts.
double percentile(std::span<const double> xs, double q);

double median(std::span<const double> xs);

/// Sum with Kahan compensation (iteration-time totals accumulate millions of
/// small terms in long sweeps).
double kahan_sum(std::span<const double> xs);

}  // namespace hgc
