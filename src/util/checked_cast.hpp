// checked_cast<T>(v): integral narrowing that throws instead of wrapping.
//
// The sweep stack's determinism contract means a silent wraparound (a
// size_t cell index truncated into a uint32_t trace track, a negative CLI
// value reinterpreted as a huge size_t) would not crash — it would quietly
// produce different-but-plausible output. Every intentional narrowing of an
// integral value goes through here so the out-of-range case is a loud
// exception at the conversion site, with both the value and the target
// range in the message. In-range casts compile down to the plain
// static_cast (two comparisons against constants, no allocation).
#pragma once

#include <concepts>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

namespace hgc {

/// Thrown by checked_cast when the value does not fit the target type.
class narrowing_error : public std::range_error {
 public:
  using std::range_error::range_error;
};

/// Convert `value` to To, throwing narrowing_error if the round trip would
/// change the value (out of range, or sign-flipped). Both types must be
/// integral; bool is excluded on both sides because a checked bool cast is
/// always a logic error.
template <std::integral To, std::integral From>
  requires(!std::same_as<To, bool> && !std::same_as<From, bool>)
constexpr To checked_cast(From value) {
  if (!std::in_range<To>(value)) {
    throw narrowing_error(
        "checked_cast: value " + std::to_string(value) +
        " out of range [" +
        std::to_string(std::numeric_limits<To>::min()) + ", " +
        std::to_string(std::numeric_limits<To>::max()) + "]");
  }
  return static_cast<To>(value);
}

}  // namespace hgc
