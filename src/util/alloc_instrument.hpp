// Binary-wide heap-allocation instrumentation for benches and tests.
//
// Including this header replaces the global replaceable allocation
// functions with malloc-backed versions that bump one relaxed counter, so a
// bench can report allocations-per-iteration and a test can pin a
// zero-allocation contract exactly.
//
// IMPORTANT: include from EXACTLY ONE translation unit of the instrumented
// binary (the replacement operators are deliberately non-inline — the
// standard forbids inline replacements — so a second including TU is a
// duplicate-symbol link error, never a silent half-instrumented binary).
// Never include it from library code.
#pragma once

#include <atomic>
#include <cstdlib>
#include <new>

namespace hgc::alloc_instrument {

inline std::atomic<std::size_t> g_allocations{0};

/// Total replaceable-new calls since process start.
inline std::size_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace hgc::alloc_instrument

// GCC's pairing heuristic flags malloc-backed replacement allocators even
// though new/delete are replaced as a consistent pair — silence it here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  hgc::alloc_instrument::g_allocations.fetch_add(1,
                                                 std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  hgc::alloc_instrument::g_allocations.fetch_add(1,
                                                 std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop
