// Fixed-width console tables.
//
// Every bench binary prints the rows/series of the paper table or figure it
// regenerates; TablePrinter keeps that output aligned and diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hgc {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Render with column separators and a header rule.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

  /// Format helper: fixed-point double with the given precision.
  static std::string num(double value, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hgc
