// Host CPU feature detection for the kernel backend dispatch.
//
// One query per ISA extension the kernel layer can use, answered at runtime
// (cpuid on x86; compile-target checks on ARM, where NEON presence is a
// baseline guarantee of the AArch64 ABI rather than a runtime flag). Kept in
// util/ so the linalg layer's backend selection has no inline asm or
// compiler-builtin calls of its own.
#pragma once

namespace hgc::util {

/// True when the host CPU executes AVX2 instructions (x86 cpuid; always
/// false on other architectures).
bool cpu_supports_avx2() noexcept;

/// True when the host CPU executes Advanced SIMD (NEON) instructions.
/// AArch64 mandates NEON, so this is a compile-target fact there.
bool cpu_supports_neon() noexcept;

}  // namespace hgc::util
