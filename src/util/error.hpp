// Error-handling helpers.
//
// Public-API precondition violations throw std::invalid_argument (callers can
// recover); broken internal invariants throw hgc::InternalError (they cannot).
// Both macros capture the failing expression and location so failures in
// simulations and property sweeps are diagnosable without a debugger.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hgc {

/// Thrown when an internal invariant is violated; indicates a library bug.
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a gradient cannot be recovered from the surviving workers
/// (more stragglers than the scheme was provisioned for).
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

[[noreturn]] inline void throw_invalid(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_internal(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace hgc

/// Validate a caller-supplied argument; throws std::invalid_argument.
#define HGC_REQUIRE(expr, msg)                                          \
  do {                                                                  \
    if (!(expr))                                                        \
      ::hgc::detail::throw_invalid(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)

/// Validate an internal invariant; throws hgc::InternalError.
#define HGC_ASSERT(expr, msg)                                           \
  do {                                                                  \
    if (!(expr))                                                        \
      ::hgc::detail::throw_internal(#expr, __FILE__, __LINE__, (msg));  \
  } while (0)
