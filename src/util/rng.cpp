#include "util/rng.hpp"

#include <algorithm>

namespace hgc {

double Rng::truncated_normal(double mean, double stddev, double lo,
                             double hi) {
  HGC_REQUIRE(lo <= hi, "truncated_normal bounds must satisfy lo <= hi");
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = normal(mean, stddev);
    if (x >= lo && x <= hi) return x;
  }
  return std::clamp(mean, lo, hi);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t count) {
  HGC_REQUIRE(count <= n, "cannot sample more elements than the population");
  // Partial Fisher-Yates: O(n) memory but exact uniformity; n here is a
  // worker count (tens), so simplicity beats a reservoir.
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  std::sort(pool.begin(), pool.end());
  return pool;
}

}  // namespace hgc
