// Wall-clock stopwatch for the threaded runtime and benches.
#pragma once

#include <chrono>

namespace hgc {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  // lint:allow(nondeterministic-seed): measurement utility; results are reported, never fed back into simulation state
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hgc
