// Deterministic random-number generation.
//
// All stochastic components (random coding matrix C, runtime fluctuation,
// straggler selection, synthetic datasets) draw from hgc::Rng so that every
// experiment is reproducible from a single seed. Rng::fork() derives an
// independent stream, letting parallel components stay deterministic
// regardless of scheduling.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace hgc {

/// splitmix64 finalizer: scrambles a 64-bit value into a well-mixed one.
/// Shared by Rng::fork (child-seed derivation) and the lightweight counter
/// streams that cannot afford a full mt19937_64 (e.g. ReservoirQuantiles).
inline std::uint64_t splitmix64_mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Seeded pseudo-random generator with convenience draws used across the
/// library. Wraps std::mt19937_64; copyable and cheap to fork.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed), seed_(seed) {}

  /// Derive an independent child stream. Successive calls yield distinct
  /// streams; the parent advances deterministically.
  Rng fork() {
    // splitmix64 of the next raw draw decorrelates child seeds even for
    // consecutive parent states.
    return Rng(splitmix64_mix(engine_() + 0x9e3779b97f4a7c15ULL));
  }

  std::uint64_t seed() const { return seed_; }

  /// Uniform double in the open interval (lo, hi); never returns lo exactly,
  /// which Alg.1 relies on (entries of C must be nonzero).
  double uniform(double lo = 0.0, double hi = 1.0) {
    HGC_REQUIRE(lo < hi, "uniform bounds must satisfy lo < hi");
    double u;
    do {
      u = std::uniform_real_distribution<double>(lo, hi)(engine_);
    } while (u == lo);
    return u;
  }

  /// Gaussian draw.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Gaussian truncated to [lo, hi] by resampling (clamps after 64 tries so
  /// pathological bounds cannot hang a simulation).
  double truncated_normal(double mean, double stddev, double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    HGC_REQUIRE(lo <= hi, "uniform_int bounds must satisfy lo <= hi");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Exponential draw with the given rate (lambda).
  double exponential(double rate) {
    HGC_REQUIRE(rate > 0.0, "exponential rate must be positive");
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Bernoulli draw.
  bool bernoulli(double p) {
    HGC_REQUIRE(p >= 0.0 && p <= 1.0, "probability must be in [0,1]");
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Choose `count` distinct indices from [0, n) uniformly at random.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t count);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace hgc
