#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hgc {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

RunningStats RunningStats::from_parts(std::size_t count, double mean,
                                      double m2, double min, double max) {
  RunningStats s;
  if (count == 0) return s;  // an empty accumulator is all-zeros by class
  s.count_ = count;
  s.mean_ = mean;
  s.m2_ = m2;
  s.min_ = min;
  s.max_ = max;
  return s;
}

ReservoirQuantiles::ReservoirQuantiles(std::size_t capacity,
                                       std::uint64_t seed)
    : capacity_(capacity), state_(seed) {
  HGC_REQUIRE(capacity > 0, "reservoir capacity must be positive");
  sample_.reserve(capacity);
}

std::uint64_t ReservoirQuantiles::next_u64() {
  // splitmix64 counter stream: small, fast, and plenty for reservoir
  // replacement indices.
  return splitmix64_mix(state_ += 0x9e3779b97f4a7c15ULL);
}

void ReservoirQuantiles::add(double x) {
  ++count_;
  if (sample_.size() < capacity_) {
    sample_.push_back(x);
    return;
  }
  // Algorithm R: keep the new sample with probability capacity / count.
  const std::uint64_t slot = next_u64() % count_;
  if (slot < capacity_) sample_[slot] = x;
}

ReservoirQuantiles ReservoirQuantiles::from_parts(std::size_t capacity,
                                                  std::uint64_t state,
                                                  std::size_t count,
                                                  std::vector<double> sample) {
  HGC_REQUIRE(sample.size() <= capacity,
              "reservoir sample larger than its capacity");
  HGC_REQUIRE(count >= sample.size(),
              "reservoir count smaller than its retained sample");
  ReservoirQuantiles q(capacity, state);
  q.state_ = state;  // the ctor folds nothing in, but be explicit
  q.count_ = count;
  q.sample_ = std::move(sample);
  return q;
}

namespace {

/// Uniformly select `n` of `src`'s elements in random order (partial
/// Fisher-Yates driven by the caller's deterministic stream). A plain
/// prefix would be biased: an unsaturated reservoir's sample is in
/// insertion order.
template <typename NextFn>
std::vector<double> take_random(std::vector<double> src, std::size_t n,
                                NextFn&& next) {
  n = std::min(n, src.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = i + next() % (src.size() - i);
    std::swap(src[i], src[j]);
  }
  src.resize(n);
  return src;
}

}  // namespace

void ReservoirQuantiles::merge(const ReservoirQuantiles& other) {
  if (other.count_ == 0) return;
  std::uint64_t state = splitmix64_mix(
      state_ ^ (other.state_ * 0x9e3779b97f4a7c15ULL) ^
      (count_ + 0x632be59bd9b4e019ULL * other.count_));
  const auto next = [&state]() {
    return splitmix64_mix(state += 0x9e3779b97f4a7c15ULL);
  };
  if (count_ == 0) {
    // Adopt the other's retained sample, uniformly subsampled to this
    // capacity when it does not fit.
    sample_ = other.sample_.size() <= capacity_
                  ? other.sample_
                  : take_random(other.sample_, capacity_, next);
    count_ = other.count_;
    state_ = state;
    return;
  }
  if (count_ == sample_.size() && other.count_ == other.sample_.size() &&
      sample_.size() + other.sample_.size() <= capacity_) {
    // Both operands still retain their full streams: concatenation equals
    // the sequential result exactly. (A saturated operand must go through
    // the weighted path below even if its sample would fit — its elements
    // each stand for count/sample_size observations, not one.)
    sample_.insert(sample_.end(), other.sample_.begin(), other.sample_.end());
    count_ += other.count_;
    state_ = splitmix64_mix(state_ ^ other.state_);
    return;
  }
  // Weighted merge: each retained element stands for count/sample_size
  // stream observations. Equalize per-element weights first — uniformly
  // downsample the lighter side to its equivalent length at the heavier
  // weight — then interleave proportionally to remaining counts, truncated
  // at capacity. The selection stream is derived from both operands so the
  // merge is a deterministic function of (this, other).
  const double weight_a =
      static_cast<double>(count_) / static_cast<double>(sample_.size());
  const double weight_b = static_cast<double>(other.count_) /
                          static_cast<double>(other.sample_.size());
  const double weight = std::max(weight_a, weight_b);
  const std::vector<double> from_a = take_random(
      sample_,
      static_cast<std::size_t>(
          std::llround(static_cast<double>(count_) / weight)),
      next);
  const std::vector<double> from_b = take_random(
      other.sample_,
      static_cast<std::size_t>(
          std::llround(static_cast<double>(other.count_) / weight)),
      next);
  std::vector<double> merged;
  merged.reserve(std::min(capacity_, from_a.size() + from_b.size()));
  std::size_t ia = 0, ib = 0;
  while (merged.size() < capacity_ &&
         (ia < from_a.size() || ib < from_b.size())) {
    const double ra = static_cast<double>(from_a.size() - ia);
    const double rb = static_cast<double>(from_b.size() - ib);
    const double u = static_cast<double>(next() >> 11) * 0x1.0p-53 * (ra + rb);
    if (ib >= from_b.size() || (ia < from_a.size() && u < ra))
      merged.push_back(from_a[ia++]);
    else
      merged.push_back(from_b[ib++]);
  }
  sample_ = std::move(merged);
  count_ += other.count_;
  state_ = state;
}

double ReservoirQuantiles::quantile(double q) const {
  HGC_REQUIRE(count_ > 0, "quantile of an empty reservoir");
  return percentile(sample_, q);
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return kahan_sum(xs) / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double q) {
  HGC_REQUIRE(!xs.empty(), "percentile of an empty sample");
  HGC_REQUIRE(q >= 0.0 && q <= 100.0, "percentile q must be in [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double kahan_sum(std::span<const double> xs) {
  double sum = 0.0;
  double carry = 0.0;
  for (double x : xs) {
    const double y = x - carry;
    const double t = sum + y;
    carry = (t - sum) - y;
    sum = t;
  }
  return sum;
}

}  // namespace hgc
