// Minimal command-line parsing for the bench and example binaries.
//
// Supports `--key value` and `--key=value` pairs plus boolean `--flag`.
// Unrecognized keys raise an error so sweep scripts fail loudly on typos,
// and so do value-typed reads of a bare flag (`--csv --threads 4` must not
// silently write a file named "true") and malformed numbers
// (`--threads=abc` names the offending flag instead of leaking a bare
// std::stoll exception).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

namespace hgc {

/// Parsed command-line options with typed, defaulted accessors.
class Args {
 public:
  Args(int argc, const char* const* argv);

  /// Parse an already-tokenized option list (no program name). Lets a main
  /// that shares argv with another parser — e.g. the bench binaries, which
  /// split off google-benchmark's --benchmark_* flags — route its own flags
  /// through the same strict `--key value` / `--key=value` rules, with
  /// errors that name the offending flag.
  explicit Args(std::span<const std::string> tokens);

  bool has(const std::string& key) const;

  /// Value-typed accessors. A key that was given as a bare flag (no `=value`
  /// and no following value token) throws std::invalid_argument naming the
  /// flag; get_int/get_double additionally reject values that are not (in
  /// their entirety) valid numbers.
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;

  /// Boolean accessor: bare `--flag` means true; `=true/1/yes` and
  /// `=false/0/no` are accepted, anything else throws.
  bool get_bool(const std::string& key, bool fallback) const;

  /// Every value given for `key`, in command-line order — repeatable flags
  /// (`--scenario-file a.scn --scenario-file b.scn`) accumulate here while
  /// the single-value accessors keep their last-wins behaviour. Empty when
  /// the key is absent; throws naming the flag when its last occurrence
  /// was a bare flag.
  std::vector<std::string> get_list(const std::string& key) const;

  /// Throws std::invalid_argument if any provided key was never queried;
  /// call after all get()s to catch misspelled options.
  void check_unused() const;

 private:
  /// Raw value, or nullptr when the key is absent; throws when the key was
  /// given as a bare flag (value-typed accessors only).
  const std::string* find_value(const std::string& key) const;

  std::map<std::string, std::string> values_;
  /// All values per key, in command-line order (bare occurrences excluded).
  std::map<std::string, std::vector<std::string>> lists_;
  std::set<std::string> bare_flags_;  ///< keys given without a value
  mutable std::set<std::string> queried_;
};

}  // namespace hgc
