// Minimal command-line parsing for the bench and example binaries.
//
// Supports `--key value` and `--key=value` pairs plus boolean `--flag`.
// Unrecognized keys raise an error so sweep scripts fail loudly on typos.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace hgc {

/// Parsed command-line options with typed, defaulted accessors.
class Args {
 public:
  Args(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Throws std::invalid_argument if any provided key was never queried;
  /// call after all get()s to catch misspelled options.
  void check_unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> queried_;
};

}  // namespace hgc
