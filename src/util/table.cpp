#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace hgc {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  HGC_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  HGC_REQUIRE(cells.size() == headers_.size(),
              "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 == row.size() ? " |" : " | ");
    }
    os << '\n';
  };

  emit(headers_);
  os << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-');
    os << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string TablePrinter::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace hgc
