#include "util/cpu.hpp"

namespace hgc::util {

bool cpu_supports_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_supports_neon() noexcept {
#if defined(__aarch64__) || defined(__ARM_NEON)
  return true;
#else
  return false;
#endif
}

}  // namespace hgc::util
