#include "exec/result_table.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>

#include "util/error.hpp"

namespace hgc::exec {

namespace {

/// Append `name` to `out` if not already present (first-appearance order).
void note_column(std::vector<std::string>& out, const std::string& name) {
  if (std::find(out.begin(), out.end(), name) == out.end())
    out.push_back(name);
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c == '\r') {
      out += "\\r";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

const std::string* ResultRow::axis(const std::string& name) const {
  for (const auto& [axis_name, value] : axes)
    if (axis_name == name) return &value;
  return nullptr;
}

bool ResultRow::value(const std::string& name, double& out) const {
  for (const auto& [metric_name, v] : metrics) {
    if (metric_name == name) {
      out = v;
      return true;
    }
  }
  for (const auto& [stat_name, s] : stats) {
    if (name == stat_name || name == stat_name + "_mean") {
      out = s.mean();
      return true;
    }
    if (name == stat_name + "_stddev") {
      out = s.stddev();
      return true;
    }
    if (name == stat_name + "_count") {
      out = static_cast<double>(s.count());
      return true;
    }
  }
  for (const auto& [q_name, q] : quantiles) {
    const bool has = q.count() > 0;
    if (name == q_name + "_p50" || name == q_name) {
      out = has ? q.p50() : 0.0;
      return true;
    }
    if (name == q_name + "_p95") {
      out = has ? q.p95() : 0.0;
      return true;
    }
    if (name == q_name + "_p99") {
      out = has ? q.p99() : 0.0;
      return true;
    }
  }
  return false;
}

std::vector<std::string> ResultTable::columns() const {
  std::vector<std::string> axis_cols, value_cols;
  bool any_note = false;
  for (const ResultRow& row : rows_) {
    for (const auto& [name, unused] : row.axes) note_column(axis_cols, name);
    for (const auto& [name, unused] : row.stats) {
      note_column(value_cols, name + "_mean");
      note_column(value_cols, name + "_stddev");
      note_column(value_cols, name + "_count");
    }
    for (const auto& [name, unused] : row.quantiles) {
      note_column(value_cols, name + "_p50");
      note_column(value_cols, name + "_p95");
      note_column(value_cols, name + "_p99");
    }
    for (const auto& [name, unused] : row.metrics)
      note_column(value_cols, name);
    any_note = any_note || !row.note.empty();
  }
  axis_cols.insert(axis_cols.end(), value_cols.begin(), value_cols.end());
  if (any_note) axis_cols.push_back("note");
  return axis_cols;
}

void ResultTable::to_csv(std::ostream& os) const {
  const std::vector<std::string> cols = columns();
  for (std::size_t i = 0; i < cols.size(); ++i)
    os << (i ? "," : "") << csv_escape(cols[i]);
  os << '\n';
  for (const ResultRow& row : rows_) {
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (i) os << ',';
      const std::string& col = cols[i];
      if (col == "note") {
        os << csv_escape(row.note);
        continue;
      }
      if (const std::string* axis_value = row.axis(col)) {
        os << csv_escape(*axis_value);
        continue;
      }
      double v;
      if (row.value(col, v)) os << format_double(v);
    }
    os << '\n';
  }
}

void ResultTable::to_json(std::ostream& os) const {
  const std::vector<std::string> cols = columns();
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const ResultRow& row = rows_[r];
    os << "  {\"axes\": {";
    for (std::size_t i = 0; i < row.axes.size(); ++i)
      os << (i ? ", " : "") << '"' << json_escape(row.axes[i].first)
         << "\": \"" << json_escape(row.axes[i].second) << '"';
    os << "}, \"metrics\": {";
    bool first = true;
    for (const std::string& col : cols) {
      if (col == "note" || row.axis(col)) continue;
      double v;
      if (!row.value(col, v)) continue;
      os << (first ? "" : ", ") << '"' << json_escape(col) << "\": ";
      if (std::isfinite(v))
        os << format_double(v);
      else
        os << '"' << format_double(v) << '"';
      first = false;
    }
    os << '}';
    if (!row.note.empty())
      os << ", \"note\": \"" << json_escape(row.note) << '"';
    os << '}' << (r + 1 < rows_.size() ? "," : "") << '\n';
  }
  os << "]\n";
}

TablePrinter ResultTable::pivot(const std::string& row_axis,
                                const std::string& col_axis,
                                const std::string& metric,
                                int precision) const {
  std::vector<std::string> row_keys, col_keys;
  for (const ResultRow& row : rows_) {
    if (const std::string* v = row.axis(row_axis)) note_column(row_keys, *v);
    if (const std::string* v = row.axis(col_axis)) note_column(col_keys, *v);
  }
  std::vector<std::string> headers = {row_axis};
  headers.insert(headers.end(), col_keys.begin(), col_keys.end());
  TablePrinter table(std::move(headers));
  for (const std::string& rk : row_keys) {
    std::vector<std::string> cells = {rk};
    for (const std::string& ck : col_keys) {
      const ResultRow* row = find({{row_axis, rk}, {col_axis, ck}});
      std::string cell;
      double v;
      if (!row)
        cell = "";
      else if (!row->note.empty())
        cell = row->note;
      else if (row->value(metric, v))
        cell = TablePrinter::num(v, precision);
      cells.push_back(std::move(cell));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

ResultTable ResultTable::aggregate_over(const std::string& axis) const {
  // Accumulators per group, in first-appearance order.
  struct Group {
    ResultRow row;  ///< axes minus `axis`; stats/quantiles merged in place
    std::vector<std::pair<std::string, RunningStats>> metric_acc;
    std::size_t cells = 0;
  };
  std::vector<Group> groups;
  std::map<std::string, std::size_t> index;
  for (const ResultRow& row : rows_) {
    std::string key;
    for (const auto& [name, value] : row.axes)
      if (name != axis) key += name + '\x1f' + value + '\x1e';
    auto [it, inserted] = index.try_emplace(key, groups.size());
    if (inserted) {
      Group g;
      for (const auto& av : row.axes)
        if (av.first != axis) g.row.axes.push_back(av);
      groups.push_back(std::move(g));
    }
    Group& g = groups[it->second];
    ++g.cells;
    if (g.row.note.empty()) g.row.note = row.note;
    for (const auto& [name, s] : row.stats) {
      auto pos = std::find_if(g.row.stats.begin(), g.row.stats.end(),
                              [&](const auto& p) { return p.first == name; });
      if (pos == g.row.stats.end())
        g.row.stats.emplace_back(name, s);
      else
        pos->second.merge(s);
    }
    for (const auto& [name, q] : row.quantiles) {
      auto pos =
          std::find_if(g.row.quantiles.begin(), g.row.quantiles.end(),
                       [&](const auto& p) { return p.first == name; });
      if (pos == g.row.quantiles.end())
        g.row.quantiles.emplace_back(name, q);
      else
        pos->second.merge(q);
    }
    for (const auto& [name, v] : row.metrics) {
      auto pos = std::find_if(g.metric_acc.begin(), g.metric_acc.end(),
                              [&](const auto& p) { return p.first == name; });
      if (pos == g.metric_acc.end()) {
        g.metric_acc.emplace_back(name, RunningStats{});
        pos = std::prev(g.metric_acc.end());
      }
      pos->second.add(v);
    }
  }
  ResultTable out;
  for (Group& g : groups) {
    for (const auto& [name, acc] : g.metric_acc)
      g.row.metrics.emplace_back(name, acc.mean());
    g.row.metrics.emplace_back("cells_merged",
                               static_cast<double>(g.cells));
    out.add_row(std::move(g.row));
  }
  return out;
}

const ResultRow* ResultTable::find(
    const std::vector<std::pair<std::string, std::string>>& where) const {
  for (const ResultRow& row : rows_) {
    bool match = true;
    for (const auto& [name, value] : where) {
      const std::string* v = row.axis(name);
      if (!v || *v != value) {
        match = false;
        break;
      }
    }
    if (match) return &row;
  }
  return nullptr;
}

std::string ResultTable::format_double(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  HGC_REQUIRE(ec == std::errc(), "double formatting failed");
  return std::string(buf, ptr);
}

}  // namespace hgc::exec
