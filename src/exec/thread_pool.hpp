// Work-stealing thread pool for sweep execution.
//
// Each worker thread owns a deque; submit() distributes tasks round-robin
// across the deques, a worker pops from the back of its own deque (LIFO,
// cache-friendly) and steals from the front of a victim's (FIFO, oldest
// first) when its own runs dry. Determinism of sweep results does NOT depend
// on the pool: tasks write to pre-assigned slots, so any interleaving yields
// the same output. The pool only decides wall-clock speed.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hgc::exec {

/// Fixed-size pool of worker threads with per-thread work-stealing deques.
class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1; callers pass default_threads() for "use
  /// the machine").
  explicit ThreadPool(std::size_t threads);

  /// Drains remaining tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw (wrap fallible work yourself).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

  /// Total tasks executed via steals (not from the owner's own deque);
  /// diagnostics for tests and the sweep CLI's --verbose output.
  std::size_t steals() const;

  /// hardware_concurrency, floored at 1.
  static std::size_t default_threads();

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  bool try_pop_own(std::size_t self, std::function<void()>& task);
  bool try_steal(std::size_t self, std::function<void()>& task);
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  mutable std::mutex state_mu_;
  std::condition_variable work_cv_;   ///< wakes idle workers
  std::condition_variable idle_cv_;   ///< wakes wait_idle()
  std::size_t unfinished_ = 0;        ///< submitted but not yet completed
  std::size_t next_queue_ = 0;        ///< round-robin submit cursor
  std::size_t steals_ = 0;
  bool stopping_ = false;
};

}  // namespace hgc::exec
