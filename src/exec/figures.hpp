// Preset sweep declarations for every paper figure and ablation, shared by
// the refactored bench binaries and the hgc_sweep CLI — one declaration per
// figure, two front ends. Also the `--grid` spec parser: a compact
// `key=v1,v2;key=...` text format for ad-hoc grids.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/sweep.hpp"

namespace hgc::exec {

/// A named, runnable figure: its grid plus (optionally) a custom cell body.
struct FigureSweep {
  std::string name;
  std::string description;
  SweepGrid grid;
  CellFn fn;  ///< null = the built-in scenario-dispatching cell body
};

/// Run a figure at the requested parallelism.
ResultTable run_figure(const FigureSweep& figure,
                       const SweepOptions& opts = {});

// --- Paper figures ------------------------------------------------------

/// Fig. 2 panel: Cluster-A, fixed s, delay factors 0..8× ideal plus fault,
/// all four schemes. One grid per panel (s = 1, s = 2).
SweepGrid fig2_grid(std::size_t s, std::size_t iterations);

/// Fig. 3: clusters B/C/D, s = 1, one straggler at 4× ideal, 5% fluctuation.
SweepGrid fig3_grid(std::size_t iterations);

/// Fig. 5: clusters A–D, s = 1, one straggler at 2× ideal, 5% fluctuation;
/// the metric of interest is `usage`.
SweepGrid fig5_grid(std::size_t iterations);

/// Fig. 4 main panel: loss-vs-time training on Cluster-C; series axis =
/// the four coded schemes (BSP) plus SSP. Cells train real models and emit
/// the sampled curve as t<i>/loss<i> metrics plus final_loss/final_time.
FigureSweep fig4_sweep(std::size_t iterations);

/// Fig. 4 non-IID panel: label-sorted shards on Cluster-A; series axis =
/// coded BSP, SSP, ignore-stragglers.
FigureSweep fig4_noniid_sweep(std::size_t iterations);

/// Table II derived quantities per cluster (m, Σc, min c, heterogeneity
/// ratio, exact k, ideal iteration time).
FigureSweep table2_sweep();

// --- Ablations ----------------------------------------------------------

/// Estimation-error ablation: σ × {cyclic, heter, group} × seeds 1..n on
/// Cluster-A. Aggregate over "seed" before presenting.
SweepGrid sigma_grid(std::size_t iterations, std::size_t num_seeds);

/// Message-loss ablation: drop probability × schemes over the real wire
/// stack (custom cell body running net/coded_round).
FigureSweep loss_sweep(std::size_t iterations);

/// Layerwise ablation: transfer/compute ratio × layer count, heter-aware on
/// Cluster-A (custom cell body running the pipelined simulator).
FigureSweep layerwise_sweep(std::size_t iterations);

/// Adaptive re-coding ablation: phase {cold, drift} × mode {static,
/// adaptive}; cells emit w0..w4 window means plus recodes.
FigureSweep adaptive_sweep(std::size_t iterations);

/// Scenario-axis demo: the four schemes × {static, churn, trace} on
/// Cluster-A — the engine's scenario drivers as one more sweep axis.
SweepGrid scenarios_grid(std::size_t iterations);

// --- Scenario building blocks -------------------------------------------

/// A small deterministic churn schedule for `cluster`: the fastest worker
/// leaves a quarter of the way in, an 8-vCPU replacement joins at 60%.
std::vector<engine::ChurnEvent> demo_churn_events(const Cluster& cluster,
                                                  std::size_t iterations,
                                                  std::size_t s);

/// A deterministic synthetic delay trace (rows × cluster.size()): a
/// rotating straggler with occasional faults, delays scaled to the
/// cluster's ideal iteration time.
engine::DelayTrace demo_delay_trace(const Cluster& cluster, std::size_t rows,
                                    std::size_t s);

// --- CLI plumbing -------------------------------------------------------

/// Shared CLI plumbing for the figure benches: `--iters N --threads N`.
struct BenchArgs {
  std::size_t iterations = 0;
  SweepOptions options;
};

/// Parse a figure bench's command line (rejecting unknown flags).
BenchArgs parse_bench_args(int argc, const char* const* argv,
                           std::size_t default_iters);

/// Names accepted by make_figure / hgc_sweep --grid.
std::vector<std::string> figure_names();

/// Build a preset by name ("fig2", "fig3", "fig4", "fig4_noniid", "fig5",
/// "table2", "sigma", "loss", "layerwise", "adaptive", "scenarios").
/// `iterations` = 0 uses the preset's default. Throws std::invalid_argument
/// for unknown names.
FigureSweep make_figure(const std::string& name, std::size_t iterations = 0);

/// Parse a `key=v1,v2;key=...` grid spec. Keys: clusters (A–D), schemes
/// (naive|cyclic|fractional|heter|group), s, k, sigmas, seeds (list or
/// a..b), iters, stragglers (count or "s"), delay_factors (× ideal),
/// delays (seconds), fault (0/1), fluct, latency, scenarios
/// (static|churn|trace), trace (CSV path for the trace scenario),
/// scenario_file (DSL files, comma-separated and accumulating across
/// repeats of the key; each file is one point on the scenario axis).
/// Unknown keys, non-integral counts (s=1.5, k=-2), a trace= that no
/// scenario consumes, and multi-s grids over the s-derived demo
/// churn/trace schedules all throw std::invalid_argument.
SweepGrid parse_grid_spec(const std::string& spec);

/// Load a scenario DSL file (scenario/dsl.hpp) into one scenario-axis
/// point named after the file's stem.
ScenarioSpec load_scenario_spec(const std::string& path);

/// Append DSL scenario files to the grid's scenario axis. When
/// `axis_is_explicit` is false and the axis is the lone default static
/// point, the files replace it (that point is a placeholder, not an
/// operator choice); an explicit axis is kept and the files append after
/// it. Validates that the grid has a single cluster and that each file's
/// declared worker count matches it. Used by parse_grid_spec
/// (scenario_file=) and hgc_sweep (--scenario-file with a preset grid).
void append_scenario_files(SweepGrid& grid,
                           const std::vector<std::string>& paths,
                           bool axis_is_explicit = false);

}  // namespace hgc::exec
