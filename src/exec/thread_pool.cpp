#include "exec/thread_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace hgc::exec {

ThreadPool::ThreadPool(std::size_t threads) {
  HGC_REQUIRE(threads > 0, "thread pool needs at least one worker");
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    // The push must happen under state_mu_ (the cv mutex): a worker whose
    // wait predicate just scanned this queue as empty is only guaranteed to
    // see the task — or the notify — if the modification is ordered by the
    // mutex it evaluates the predicate under. Lock order state_mu_ → queue
    // mutex matches the predicate's.
    std::lock_guard<std::mutex> lock(state_mu_);
    ++unfinished_;
    WorkerQueue& q = *queues_[next_queue_];
    next_queue_ = (next_queue_ + 1) % queues_.size();
    std::lock_guard<std::mutex> qlock(q.mu);
    q.tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(state_mu_);
  idle_cv_.wait(lock, [this] { return unfinished_ == 0; });
}

std::size_t ThreadPool::steals() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return steals_;
}

std::size_t ThreadPool::default_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

bool ThreadPool::try_pop_own(std::size_t self, std::function<void()>& task) {
  WorkerQueue& q = *queues_[self];
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.tasks.empty()) return false;
  task = std::move(q.tasks.back());
  q.tasks.pop_back();
  return true;
}

bool ThreadPool::try_steal(std::size_t self, std::function<void()>& task) {
  const std::size_t n = queues_.size();
  for (std::size_t offset = 1; offset < n; ++offset) {
    WorkerQueue& victim = *queues_[(self + offset) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.tasks.empty()) continue;
    task = std::move(victim.tasks.front());
    victim.tasks.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    bool stolen = false;
    if (!try_pop_own(self, task)) {
      stolen = try_steal(self, task);
      if (!stolen) {
        std::unique_lock<std::mutex> lock(state_mu_);
        // Re-check under the lock: a submit may have raced the failed scans.
        work_cv_.wait(lock, [this, self] {
          if (stopping_) return true;
          for (const auto& q : queues_) {
            std::lock_guard<std::mutex> qlock(q->mu);
            if (!q->tasks.empty()) return true;
          }
          return false;
        });
        if (stopping_) return;
        continue;  // scan again outside the state lock
      }
    }
    {
      HGC_TRACE_SCOPE("task", "exec", static_cast<std::int64_t>(self));
      task();
    }
    if (obs::metrics_enabled()) {
      static const obs::Counter tasks =
          obs::Registry::global().counter("exec.tasks");
      tasks.add();
    }
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      if (stolen) ++steals_;
      if (--unfinished_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace hgc::exec
