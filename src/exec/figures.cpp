#include "exec/figures.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "ml/dataset.hpp"
#include "ml/model.hpp"
#include "net/coded_round.hpp"
#include "net/network.hpp"
#include "runtime/sim_trainer.hpp"
#include "runtime/ssp_trainer.hpp"
#include "scenario/dsl.hpp"
#include "sim/adaptive.hpp"
#include "sim/iteration.hpp"
#include "sim/layerwise.hpp"
#include "util/args.hpp"
#include "util/checked_cast.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace hgc::exec {

namespace {

/// Curve points → flat metrics (t<i>, loss<i>), plus the final summary.
void emit_trace(const LossTrace& trace, CellResult& result) {
  for (std::size_t i = 0; i < trace.points.size(); ++i) {
    result.metrics.emplace_back("t" + std::to_string(i),
                                trace.points[i].time);
    result.metrics.emplace_back("loss" + std::to_string(i),
                                trace.points[i].loss);
  }
  result.metrics.emplace_back("final_time", trace.total_time());
  result.metrics.emplace_back("final_loss", trace.final_loss());
}

}  // namespace

ResultTable run_figure(const FigureSweep& figure, const SweepOptions& opts) {
  return figure.fn ? run_sweep(figure.grid, figure.fn, opts)
                   : run_sweep(figure.grid, opts);
}

SweepGrid fig2_grid(std::size_t s, std::size_t iterations) {
  SweepGrid grid;
  grid.clusters = {cluster_a()};
  grid.schemes = paper_schemes();
  grid.s_values = {s};
  grid.iterations = iterations;
  grid.models.clear();
  for (double factor : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    StragglerAxis axis;
    axis.label = TablePrinter::num(factor, 1) + " x ideal";
    axis.delay_factor = factor;
    axis.fluctuation_sigma = 0.02;
    grid.models.push_back(axis);
  }
  StragglerAxis fault;
  fault.label = "fault (inf)";
  fault.fault = true;
  fault.fluctuation_sigma = 0.02;
  grid.models.push_back(fault);
  return grid;
}

SweepGrid fig3_grid(std::size_t iterations) {
  SweepGrid grid;
  grid.clusters = {cluster_b(), cluster_c(), cluster_d()};
  grid.schemes = paper_schemes();
  grid.iterations = iterations;
  StragglerAxis model;
  model.num_stragglers = 1;
  model.delay_factor = 4.0;
  model.fluctuation_sigma = 0.05;
  grid.models = {model};
  return grid;
}

SweepGrid fig5_grid(std::size_t iterations) {
  SweepGrid grid;
  grid.clusters = paper_clusters();
  grid.schemes = paper_schemes();
  grid.iterations = iterations;
  StragglerAxis straggler;
  straggler.num_stragglers = 1;
  straggler.delay_factor = 2.0;
  straggler.fluctuation_sigma = 0.05;
  grid.models = {straggler};
  return grid;
}

FigureSweep fig4_sweep(std::size_t iterations) {
  FigureSweep figure;
  figure.name = "fig4";
  figure.description =
      "training loss vs time on Cluster-C: coded BSP schemes + SSP";
  SweepGrid& grid = figure.grid;
  grid.clusters = {cluster_c()};
  grid.schemes = {SchemeKind::kNaive};  // placeholder; series is the axis
  grid.iterations = iterations;
  StragglerAxis straggler;
  straggler.num_stragglers = 1;
  straggler.delay_factor = 2.0;
  straggler.fluctuation_sigma = 0.05;
  grid.models = {straggler};
  grid.custom_axes = {{"series",
                       {0.0, 1.0, 2.0, 3.0, 4.0},
                       {"naive", "cyclic", "heter-aware", "group-based",
                        "ssp"}}};

  // One dataset shared read-only by every cell, exactly as the bench builds
  // it; regenerating per cell would be deterministic too, just wasteful.
  Rng data_rng(11);
  auto data = std::make_shared<const Dataset>(
      make_synthetic_cifar10(1024, data_rng, 32));
  figure.fn = [data](const Cell& cell) {
    SoftmaxRegression model(data->dim(), data->num_classes);
    const std::size_t series =
        static_cast<std::size_t>(cell.custom.at(0));
    const std::size_t iters = cell.experiment.iterations;
    const std::size_t record_every =
        std::max<std::size_t>(1, iters / 8);
    CellResult result;
    if (series < 4) {
      BspTrainingConfig config;
      config.iterations = iters;
      config.sgd.learning_rate = 0.4;
      config.straggler_model = cell.experiment.model;
      config.seed = cell.experiment.seed;
      config.record_every = record_every;
      const auto bsp = train_bsp_coded(paper_schemes()[series],
                                       *cell.cluster, model, *data,
                                       cell.experiment.k, cell.experiment.s,
                                       config);
      emit_trace(bsp.trace, result);
      result.metrics.emplace_back(
          "failed_iters", static_cast<double>(bsp.failed_iterations));
    } else {
      SspTrainingConfig config;
      config.iterations = iters;
      config.learning_rate = 0.4;
      config.staleness = 3;
      config.straggler_model = cell.experiment.model;
      config.seed = cell.experiment.seed;
      config.record_every = record_every;
      const auto ssp = train_ssp(*cell.cluster, model, *data, config);
      emit_trace(ssp.trace, result);
      result.metrics.emplace_back("failed_iters", 0.0);
    }
    return result;
  };
  return figure;
}

FigureSweep fig4_noniid_sweep(std::size_t iterations) {
  FigureSweep figure;
  figure.name = "fig4_noniid";
  figure.description =
      "final loss on label-sorted shards (Cluster-A): coded BSP vs the "
      "approximate baselines";
  SweepGrid& grid = figure.grid;
  grid.clusters = {cluster_a()};
  grid.schemes = {SchemeKind::kHeterAware};
  grid.iterations = iterations;
  grid.custom_axes = {{"series",
                       {0.0, 1.0, 2.0},
                       {"heter-aware (coded BSP)", "ssp",
                        "ignore-stragglers [35,36]"}}};

  Rng noniid_rng(13);
  auto sorted = std::make_shared<const Dataset>(
      sort_by_label(make_gaussian_classification(256, 16, 4, 2.5,
                                                 noniid_rng)));
  figure.fn = [sorted](const Cell& cell) {
    SoftmaxRegression model(sorted->dim(), sorted->num_classes);
    const std::size_t series =
        static_cast<std::size_t>(cell.custom.at(0));
    const std::size_t iters = cell.experiment.iterations;
    CellResult result;
    if (series == 0) {
      BspTrainingConfig config;
      config.iterations = iters;
      config.sgd.learning_rate = 0.4;
      config.seed = cell.experiment.seed;
      config.record_every = std::max<std::size_t>(1, iters / 8);
      const auto bsp = train_bsp_coded(
          SchemeKind::kHeterAware, *cell.cluster, model, *sorted,
          cell.experiment.k, cell.experiment.s, config);
      result.metrics.emplace_back("final_loss", bsp.trace.final_loss());
    } else if (series == 1) {
      SspTrainingConfig config;
      config.iterations = iters;
      config.learning_rate = 0.4;
      config.staleness = 3;
      config.seed = cell.experiment.seed;
      config.record_every = std::max<std::size_t>(1, iters / 8);
      const auto ssp = train_ssp(*cell.cluster, model, *sorted, config);
      result.metrics.emplace_back("final_loss", ssp.trace.final_loss());
    } else {
      BspTrainingConfig config;
      config.iterations = iters;
      config.sgd.learning_rate = 0.4;
      config.seed = cell.experiment.seed;
      config.record_every = std::max<std::size_t>(1, iters / 8);
      const auto dropped = train_bsp_ignore_stragglers(
          *cell.cluster, model, *sorted, cell.experiment.s, config);
      result.metrics.emplace_back("final_loss",
                                  dropped.trace.final_loss());
    }
    return result;
  };
  return figure;
}

FigureSweep table2_sweep() {
  FigureSweep figure;
  figure.name = "table2";
  figure.description = "Table II derived quantities per cluster";
  SweepGrid& grid = figure.grid;
  grid.clusters = paper_clusters();
  grid.schemes = {SchemeKind::kNaive};  // unused by the cell body
  grid.iterations = 1;
  figure.fn = [](const Cell& cell) {
    const Cluster& cluster = *cell.cluster;
    CellResult result;
    result.metrics.emplace_back("m", static_cast<double>(cluster.size()));
    result.metrics.emplace_back("total_throughput",
                                cluster.total_throughput());
    result.metrics.emplace_back("min_throughput", cluster.min_throughput());
    result.metrics.emplace_back("heterogeneity_ratio",
                                cluster.heterogeneity_ratio());
    result.metrics.emplace_back(
        "exact_k", static_cast<double>(exact_partition_count(cluster, 1)));
    result.metrics.emplace_back("ideal_time",
                                ideal_iteration_time(cluster, 1));
    return result;
  };
  return figure;
}

SweepGrid sigma_grid(std::size_t iterations, std::size_t num_seeds) {
  SweepGrid grid;
  grid.clusters = {cluster_a()};
  grid.schemes = {SchemeKind::kCyclic, SchemeKind::kHeterAware,
                  SchemeKind::kGroupBased};
  grid.sigmas = {0.0, 0.1, 0.2, 0.3, 0.5};
  grid.seeds.clear();
  for (std::uint64_t seed = 1; seed <= num_seeds; ++seed)
    grid.seeds.push_back(seed);
  grid.iterations = iterations;
  StragglerAxis model;
  model.fluctuation_sigma = 0.05;
  model.num_stragglers = 0;
  grid.models = {model};
  return grid;
}

FigureSweep loss_sweep(std::size_t iterations) {
  FigureSweep figure;
  figure.name = "loss";
  figure.description =
      "per-message drop probability over real wire frames (Cluster-A, "
      "s = 2)";
  SweepGrid& grid = figure.grid;
  grid.clusters = {cluster_a()};
  grid.schemes = paper_schemes();
  grid.s_values = {2};
  grid.iterations = iterations;
  grid.custom_axes = {{"drop", {0.0, 0.02, 0.05, 0.10, 0.20}, {}}};
  figure.fn = [](const Cell& cell) {
    const Cluster& cluster = *cell.cluster;
    const std::size_t m = cluster.size();
    const std::size_t k = cell.experiment.k;
    const double drop = cell.custom.at(0);
    // Tiny synthetic partition gradients (dimension 8) — the cell measures
    // protocol behaviour, not FLOPs.
    Rng grad_rng(23);
    std::vector<Vector> grads(k);
    for (auto& g : grads) {
      g.resize(8);
      for (double& v : g) v = grad_rng.normal();
    }
    Rng scheme_rng(29);
    const auto scheme = make_scheme(cell.scheme, cluster.throughputs(), k,
                                    cell.experiment.s, scheme_rng);
    std::vector<Vector> local = grads;
    local.resize(scheme->num_partitions(), Vector(8, 0.1));
    SimulatedNetwork network(m + 1, {0.001, 1e8, drop}, Rng(31));
    StragglerModel model;
    model.fluctuation_sigma = 0.02;
    Rng condition_rng(37);
    CellResult result;
    RunningStats times;
    std::size_t failures = 0;
    const std::size_t iters = cell.experiment.iterations;
    for (std::size_t iter = 0; iter < iters; ++iter) {
      const auto cond = model.draw(m, condition_rng);
      const auto round =
          run_coded_round(*scheme, cluster, cond, local, network, iter);
      if (round.decoded)
        times.add(round.time);
      else
        ++failures;
    }
    result.stats.emplace_back("time", times);
    result.metrics.emplace_back(
        "fail_pct", 100.0 * static_cast<double>(failures) /
                        static_cast<double>(iters));
    return result;
  };
  return figure;
}

FigureSweep layerwise_sweep(std::size_t iterations) {
  FigureSweep figure;
  figure.name = "layerwise";
  figure.description =
      "layer-wise coded sends: transfer/compute ratio x layer count "
      "(Cluster-A, heter-aware)";
  SweepGrid& grid = figure.grid;
  grid.clusters = {cluster_a()};
  grid.schemes = {SchemeKind::kHeterAware};
  grid.k_values = {24};
  grid.iterations = iterations;
  grid.custom_axes = {
      {"transfer", {0.25, 0.5, 1.0, 2.0}, {}},
      {"layers", {1.0, 2.0, 4.0, 8.0, 32.0}, {"L=1", "L=2", "L=4", "L=8",
                                              "L=32"}}};
  figure.fn = [](const Cell& cell) {
    const Cluster& cluster = *cell.cluster;
    Rng scheme_rng(19);
    const auto scheme =
        make_scheme(cell.scheme, cluster.throughputs(), cell.experiment.k,
                    cell.experiment.s, scheme_rng);
    const double t0 = ideal_iteration_time(cluster, cell.experiment.s);
    LayerwiseParams params;
    params.layer_fractions =
        equal_layers(static_cast<std::size_t>(cell.custom.at(1)));
    params.full_transfer_time = cell.custom.at(0) * t0;
    params.per_message_latency = 0.002 * t0;
    StragglerModel model;
    model.num_stragglers = 1;
    model.delay_seconds = 2.0 * t0;
    model.fluctuation_sigma = 0.05;
    Rng condition_rng(101);
    RunningStats stats;
    for (std::size_t iter = 0; iter < cell.experiment.iterations; ++iter) {
      const auto cond = model.draw(cluster.size(), condition_rng);
      const auto sim =
          simulate_layerwise_iteration(*scheme, cluster, cond, params);
      if (sim.decoded) stats.add(sim.time);
    }
    CellResult result;
    result.stats.emplace_back("time", stats);
    return result;
  };
  return figure;
}

FigureSweep adaptive_sweep(std::size_t iterations) {
  FigureSweep figure;
  figure.name = "adaptive";
  figure.description =
      "adaptive re-coding: cold start and drift, static vs adaptive "
      "(Cluster-A, heter-aware)";
  SweepGrid& grid = figure.grid;
  grid.clusters = {cluster_a()};
  grid.schemes = {SchemeKind::kHeterAware};
  grid.iterations = iterations;
  grid.custom_axes = {{"phase", {0.0, 1.0}, {"cold-start", "drift"}},
                      {"mode", {0.0, 1.0}, {"static", "adaptive"}}};
  figure.fn = [](const Cell& cell) {
    const Cluster& cluster = *cell.cluster;
    const std::size_t iters = cell.experiment.iterations;
    const bool drift = cell.custom.at(0) > 0.5;
    const bool adaptive = cell.custom.at(1) > 0.5;
    AdaptiveConfig config;
    config.iterations = iters;
    config.k = 48;
    config.recode_every = adaptive ? 10 : 0;
    config.seed = cell.experiment.seed;
    if (drift) {
      config.initial_estimates = cluster.throughputs();
      config.model.num_stragglers = 1;
      config.model.delay_seconds =
          4.0 * ideal_iteration_time(cluster, config.s);
      config.drift.at_iteration = iters / 3;
      config.drift.worker = cluster.size() - 1;
      config.drift.factor = 0.25;
    }
    const AdaptiveResult run = run_adaptive(cluster, config);
    CellResult result;
    const std::size_t w = std::max<std::size_t>(1, iters / 5);
    for (std::size_t i = 0; i < 5; ++i)
      result.metrics.emplace_back("w" + std::to_string(i),
                                  run.window_mean(i * w, (i + 1) * w));
    result.metrics.emplace_back("recodes",
                                static_cast<double>(run.recodes));
    result.metrics.emplace_back("failures",
                                static_cast<double>(run.failures));
    return result;
  };
  return figure;
}

SweepGrid scenarios_grid(std::size_t iterations) {
  SweepGrid grid;
  grid.clusters = {cluster_a()};
  grid.schemes = paper_schemes();
  grid.iterations = iterations;
  StragglerAxis straggler;
  straggler.num_stragglers = 1;
  straggler.delay_factor = 2.0;
  straggler.fluctuation_sigma = 0.05;
  grid.models = {straggler};
  ScenarioSpec churn;
  churn.name = "churn";
  churn.kind = ScenarioKind::kChurn;
  churn.churn_events = demo_churn_events(grid.clusters[0], iterations, 1);
  ScenarioSpec trace;
  trace.name = "trace";
  trace.kind = ScenarioKind::kTraceReplay;
  trace.trace = demo_delay_trace(grid.clusters[0], 64, 1);
  grid.scenarios = {ScenarioSpec{}, churn, trace};
  return grid;
}

std::vector<engine::ChurnEvent> demo_churn_events(const Cluster& cluster,
                                                  std::size_t iterations,
                                                  std::size_t s) {
  const double horizon =
      static_cast<double>(iterations) * ideal_iteration_time(cluster, s);
  engine::ChurnEvent leave;
  leave.time = 0.25 * horizon;
  leave.join = false;
  leave.worker = cluster.size() - 1;
  engine::ChurnEvent join;
  join.time = 0.6 * horizon;
  join.join = true;
  join.spec = WorkerSpec{8, 8.0};
  return {leave, join};
}

engine::DelayTrace demo_delay_trace(const Cluster& cluster, std::size_t rows,
                                    std::size_t s) {
  const double ideal = ideal_iteration_time(cluster, s);
  const std::size_t m = cluster.size();
  std::vector<std::vector<double>> data;
  data.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<double> row(m, 0.0);
    const std::size_t victim = r % m;
    if (r % 7 == 3)
      row[victim] = -1.0;  // fail-stop
    else if (r % 2 == 0)
      row[victim] = 2.0 * ideal;
    else
      row[victim] = 0.5 * ideal;
    data.push_back(std::move(row));
  }
  return engine::DelayTrace(std::move(data));
}

BenchArgs parse_bench_args(int argc, const char* const* argv,
                           std::size_t default_iters) {
  Args args(argc, argv);
  BenchArgs parsed;
  // checked_cast: a negative --iters/--threads throws instead of wrapping
  // into an absurd size_t.
  parsed.iterations = checked_cast<std::size_t>(
      args.get_int("iters", static_cast<std::int64_t>(default_iters)));
  parsed.options.threads =
      checked_cast<std::size_t>(args.get_int("threads", 0));
  args.check_unused();
  return parsed;
}

std::vector<std::string> figure_names() {
  return {"fig2",  "fig3",      "fig4",     "fig4_noniid", "fig5",
          "table2", "sigma",    "loss",     "layerwise",   "adaptive",
          "scenarios"};
}

FigureSweep make_figure(const std::string& name, std::size_t iterations) {
  const auto iters = [iterations](std::size_t fallback) {
    return iterations == 0 ? fallback : iterations;
  };
  if (name == "fig2") {
    // Both panels in one grid: s becomes an axis.
    FigureSweep figure;
    figure.name = name;
    figure.description = "Fig. 2: time/iter vs injected delay (Cluster-A)";
    figure.grid = fig2_grid(1, iters(300));
    figure.grid.s_values = {1, 2};
    return figure;
  }
  if (name == "fig3")
    return {name, "Fig. 3: scheme comparison across clusters B/C/D",
            fig3_grid(iters(200)), nullptr};
  if (name == "fig4") return fig4_sweep(iters(80));
  if (name == "fig4_noniid") return fig4_noniid_sweep(iters(80));
  if (name == "fig5")
    return {name, "Fig. 5: computing-resource usage per scheme",
            fig5_grid(iters(200)), nullptr};
  if (name == "table2") return table2_sweep();
  if (name == "sigma")
    return {name, "ablation: throughput-estimation error x scheme",
            sigma_grid(iters(150), 10), nullptr};
  if (name == "loss") return loss_sweep(iters(300));
  if (name == "layerwise") return layerwise_sweep(iters(200));
  if (name == "adaptive") return adaptive_sweep(iters(300));
  if (name == "scenarios")
    return {name,
            "engine scenario drivers (static/churn/trace) as a sweep axis",
            scenarios_grid(iters(150)), nullptr};
  throw std::invalid_argument("unknown figure: " + name);
}

// --- Grid-spec parsing --------------------------------------------------

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

double parse_double(const std::string& text) {
  std::size_t used = 0;
  const double v = std::stod(text, &used);
  if (used != text.size())
    throw std::invalid_argument("bad number in grid spec: " + text);
  return v;
}

std::vector<double> parse_doubles(const std::string& text) {
  std::vector<double> out;
  for (const std::string& part : split(text, ','))
    out.push_back(parse_double(part));
  return out;
}

/// Non-negative integral value for grid key `key`. A plain static_cast here
/// used to truncate `s=1.5` to 1 and wrap `s=-1` / `k=-2` / `iters=-5` to
/// huge size_t values — both silently.
std::size_t parse_size(const std::string& key, const std::string& text) {
  double v = std::numeric_limits<double>::quiet_NaN();
  try {
    v = parse_double(text);
  } catch (const std::exception&) {
    // fall through to the named error below
  }
  if (!(v >= 0.0) || v != std::floor(v) ||
      v > 9007199254740992.0 /* 2^53 */)
    throw std::invalid_argument("grid spec key '" + key +
                                "' wants a non-negative integer, got: " +
                                text);
  return static_cast<std::size_t>(v);
}

std::vector<std::size_t> parse_sizes(const std::string& key,
                                     const std::string& text) {
  std::vector<std::size_t> out;
  for (const std::string& part : split(text, ','))
    out.push_back(parse_size(key, part));
  return out;
}

std::vector<std::uint64_t> parse_seed_list(const std::string& key,
                                           const std::string& text) {
  std::vector<std::uint64_t> out;
  for (const std::string& part : split(text, ',')) {
    const std::size_t dots = part.find("..");
    if (dots != std::string::npos) {
      const auto lo = parse_size(key, part.substr(0, dots));
      const auto hi = parse_size(key, part.substr(dots + 2));
      HGC_REQUIRE(lo <= hi, "seed range must be lo..hi");
      for (std::uint64_t seed = lo; seed <= hi; ++seed)
        out.push_back(seed);
    } else {
      out.push_back(parse_size(key, part));
    }
  }
  return out;
}

Cluster cluster_by_name(const std::string& name) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (key == "a" || key == "cluster-a") return cluster_a();
  if (key == "b" || key == "cluster-b") return cluster_b();
  if (key == "c" || key == "cluster-c") return cluster_c();
  if (key == "d" || key == "cluster-d") return cluster_d();
  // Beyond-paper scale preset: "scale-<workers>" (or "scale<workers>")
  // builds the synthetic heterogeneous cluster the sparse coding layer
  // exists for, e.g. scale-10000 for the CI 10k churn smoke.
  if (key.rfind("scale", 0) == 0) {
    std::string digits = key.substr(5);
    if (!digits.empty() && digits.front() == '-') digits = digits.substr(1);
    if (!digits.empty() &&
        std::all_of(digits.begin(), digits.end(),
                    [](unsigned char c) { return std::isdigit(c); }))
      return scale_cluster(std::stoul(digits));
  }
  throw std::invalid_argument("unknown cluster: " + name);
}

}  // namespace

SweepGrid parse_grid_spec(const std::string& spec) {
  SweepGrid grid;
  std::vector<double> delay_factors, delays;
  bool fault = false;
  double fluct = 0.0;
  std::size_t stragglers = kMatchS;
  bool any_model_key = false;
  std::vector<std::string> scenario_names;
  std::vector<std::string> scenario_files;
  std::string trace_path;

  for (const std::string& entry : split(spec, ';')) {
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("grid spec entry needs key=value: " +
                                  entry);
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "clusters" || key == "cluster") {
      grid.clusters.clear();
      for (const std::string& name : split(value, ','))
        grid.clusters.push_back(cluster_by_name(name));
    } else if (key == "schemes" || key == "scheme") {
      grid.schemes.clear();
      for (const std::string& name : split(value, ','))
        grid.schemes.push_back(parse_scheme_kind(name));
    } else if (key == "s") {
      grid.s_values = parse_sizes(key, value);
    } else if (key == "k") {
      grid.k_values = parse_sizes(key, value);
    } else if (key == "sigmas" || key == "sigma") {
      grid.sigmas = parse_doubles(value);
    } else if (key == "seeds" || key == "seed") {
      grid.seeds = parse_seed_list(key, value);
    } else if (key == "iters" || key == "iterations") {
      grid.iterations = parse_size(key, value);
    } else if (key == "stragglers") {
      any_model_key = true;
      stragglers = value == "s" ? kMatchS : parse_size(key, value);
    } else if (key == "delay_factors" || key == "delay_factor") {
      any_model_key = true;
      delay_factors = parse_doubles(value);
    } else if (key == "delays" || key == "delay") {
      any_model_key = true;
      delays = parse_doubles(value);
    } else if (key == "fault") {
      any_model_key = true;
      fault = parse_double(value) != 0.0;
    } else if (key == "fluct") {
      any_model_key = true;
      fluct = parse_double(value);
    } else if (key == "latency") {
      grid.sim.comm_latency = parse_double(value);
    } else if (key == "scenarios" || key == "scenario") {
      scenario_names = split(value, ',');
    } else if (key == "scenario_file" || key == "scenario_files") {
      // Accumulates across repeats of the key: each file is one more point
      // on the scenario axis.
      for (const std::string& path : split(value, ','))
        scenario_files.push_back(path);
    } else if (key == "trace") {
      trace_path = value;
    } else {
      throw std::invalid_argument("unknown grid spec key: " + key);
    }
  }

  if (any_model_key) {
    grid.models.clear();
    const auto base = [&]() {
      StragglerAxis axis;
      axis.num_stragglers = stragglers;
      axis.fluctuation_sigma = fluct;
      return axis;
    };
    for (double factor : delay_factors) {
      StragglerAxis axis = base();
      axis.delay_factor = factor;
      grid.models.push_back(axis);
    }
    for (double seconds : delays) {
      StragglerAxis axis = base();
      axis.delay_seconds = seconds;
      grid.models.push_back(axis);
    }
    if (fault) {
      StragglerAxis axis = base();
      axis.fault = true;
      grid.models.push_back(axis);
    }
    if (grid.models.empty()) {
      StragglerAxis axis = base();
      if (axis.num_stragglers == kMatchS) axis.num_stragglers = 0;
      grid.models.push_back(axis);
    }
  }

  if (!scenario_names.empty()) {
    // Churn schedules and delay traces are bound to one concrete cluster
    // (event times scale with its ideal iteration time, trace columns with
    // its worker count) — reject grids that would silently run cluster A's
    // schedule on cluster B.
    const bool engine_scenarios =
        std::any_of(scenario_names.begin(), scenario_names.end(),
                    [](const std::string& n) { return n != "static"; });
    if (engine_scenarios && grid.clusters.size() > 1)
      throw std::invalid_argument(
          "churn/trace scenarios support a single cluster per grid spec");
    const bool names_trace =
        std::find(scenario_names.begin(), scenario_names.end(), "trace") !=
        scenario_names.end();
    // A trace= path is only consumed by the 'trace' scenario; dropping it
    // on the floor would replay the demo schedule while the operator
    // believes their recorded file is driving the run.
    if (!trace_path.empty() && !names_trace)
      throw std::invalid_argument(
          "trace=" + trace_path +
          " has no effect: the scenarios= list does not include 'trace'");
    // The demo churn schedule and the demo trace are derived from a single
    // s value (their horizon/delays scale with ideal_iteration_time); a
    // multi-s grid would silently replay the first s's schedule in every
    // other s's cells.
    const bool demo_schedule =
        std::find(scenario_names.begin(), scenario_names.end(), "churn") !=
            scenario_names.end() ||
        (names_trace && trace_path.empty());
    if (demo_schedule && grid.s_values.size() > 1)
      throw std::invalid_argument(
          "scenarios=churn/trace builds its demo schedule from one s "
          "value, but the grid has " +
          std::to_string(grid.s_values.size()) +
          " — use a single s, point trace= at a recorded file, or author "
          "the scenario as a scenario_file=");
    grid.scenarios.clear();
    for (const std::string& name : scenario_names) {
      ScenarioSpec scenario;
      scenario.name = name;
      if (name == "static") {
        scenario.kind = ScenarioKind::kStatic;
      } else if (name == "churn") {
        scenario.kind = ScenarioKind::kChurn;
        scenario.churn_events = demo_churn_events(
            grid.clusters.front(), grid.iterations, grid.s_values.front());
      } else if (name == "trace") {
        scenario.kind = ScenarioKind::kTraceReplay;
        scenario.trace =
            trace_path.empty()
                ? demo_delay_trace(grid.clusters.front(), 64,
                                   grid.s_values.front())
                : engine::load_delay_trace_csv(trace_path);
      } else {
        throw std::invalid_argument("unknown scenario: " + name);
      }
      grid.scenarios.push_back(std::move(scenario));
    }
  } else if (!trace_path.empty()) {
    if (!scenario_files.empty())
      throw std::invalid_argument(
          "trace=" + trace_path +
          " has no effect: the scenario axis comes from scenario_file=; "
          "add scenarios=trace or splice the trace inside the scenario "
          "file");
    if (grid.clusters.size() > 1)
      throw std::invalid_argument(
          "trace replay supports a single cluster per grid spec");
    ScenarioSpec scenario;
    scenario.name = "trace";
    scenario.kind = ScenarioKind::kTraceReplay;
    scenario.trace = engine::load_delay_trace_csv(trace_path);
    grid.scenarios = {std::move(scenario)};
  }

  append_scenario_files(grid, scenario_files,
                        /*axis_is_explicit=*/!scenario_names.empty());
  return grid;
}

ScenarioSpec load_scenario_spec(const std::string& path) {
  ScenarioSpec spec;
  spec.name = scenario::scenario_name(path);
  spec.kind = ScenarioKind::kScript;
  spec.script = scenario::load_scenario_file(path);
  return spec;
}

void append_scenario_files(SweepGrid& grid,
                           const std::vector<std::string>& paths,
                           bool axis_is_explicit) {
  if (paths.empty()) return;
  if (grid.clusters.size() > 1)
    throw std::invalid_argument(
        "scenario files support a single cluster per grid (each declares "
        "one worker count)");
  if (!axis_is_explicit && grid.scenarios.size() == 1 &&
      grid.scenarios.front().kind == ScenarioKind::kStatic &&
      grid.scenarios.front().name == "static")
    grid.scenarios.clear();
  for (const std::string& path : paths) {
    ScenarioSpec spec = load_scenario_spec(path);
    if (spec.script.workers != grid.clusters.front().size())
      throw std::invalid_argument(
          path + " declares " + std::to_string(spec.script.workers) +
          " workers but " + grid.clusters.front().name() + " has " +
          std::to_string(grid.clusters.front().size()));
    grid.scenarios.push_back(std::move(spec));
  }
}

}  // namespace hgc::exec
