// Aggregated sweep output.
//
// run_sweep() assembles one ResultRow per cell, in cell-index order, on the
// calling thread — so the table's contents are bit-identical at any thread
// count. A row carries three kinds of values: plain scalar metrics,
// mergeable RunningStats accumulators, and mergeable ReservoirQuantiles
// (the latter two let aggregate_over() combine per-seed partials exactly
// instead of averaging averages). CSV and JSON exports are byte-stable:
// doubles render via a fixed shortest-round-trip format, columns follow
// first-appearance order across rows.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace hgc::exec {

/// One sweep cell's outcome: its coordinates plus everything it measured.
struct ResultRow {
  /// (axis name, axis value) pairs identifying the cell, in axis order.
  std::vector<std::pair<std::string, std::string>> axes;
  /// Scalar metrics (counts, ratios, one-off values).
  std::vector<std::pair<std::string, double>> metrics;
  /// Mergeable accumulators; exported as <name>_mean / <name>_stddev /
  /// <name>_count columns.
  std::vector<std::pair<std::string, RunningStats>> stats;
  /// Mergeable quantile sketches; exported as <name>_p50/_p95/_p99 columns.
  std::vector<std::pair<std::string, ReservoirQuantiles>> quantiles;
  /// Non-empty marks a degenerate cell ("fail", an exception message, ...);
  /// pivots print it in place of the value.
  std::string note;

  const std::string* axis(const std::string& name) const;
  /// Look up a value by column name: plain metric, then stat (mean, or the
  /// _mean/_stddev/_count suffixes), then quantile (_p50/_p95/_p99).
  /// Returns false when the row has no such column.
  bool value(const std::string& name, double& out) const;
};

/// Ordered collection of sweep rows with deterministic exports.
class ResultTable {
 public:
  void add_row(ResultRow row) { rows_.push_back(std::move(row)); }

  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const std::vector<ResultRow>& rows() const { return rows_; }
  const ResultRow& row(std::size_t i) const { return rows_.at(i); }

  /// Column names in export order: axes, then metric/stat/quantile columns
  /// in first-appearance order.
  std::vector<std::string> columns() const;

  /// Byte-stable CSV: header row, then one line per row; missing columns
  /// render empty, a non-empty note lands in a trailing `note` column.
  void to_csv(std::ostream& os) const;

  /// Byte-stable JSON: array of {axes: {...}, metrics: {...}, note?} objects.
  void to_json(std::ostream& os) const;

  /// Figure-style view: rows keyed by `row_axis`, one column per value of
  /// `col_axis`, cells showing `metric` (or the row's note when set). Rows
  /// and columns appear in first-appearance order.
  TablePrinter pivot(const std::string& row_axis, const std::string& col_axis,
                     const std::string& metric, int precision = 4) const;

  /// Collapse `axis` (typically "seed"): rows agreeing on every other axis
  /// merge into one — stats and quantiles via their exact merge() (so the
  /// combined mean/stddev equals one pass over all the samples), plain
  /// metrics into a RunningStats over the per-row values reported as the
  /// mean. Performed serially in row order: deterministic.
  ResultTable aggregate_over(const std::string& axis) const;

  /// First row matching every (axis, value) constraint, or nullptr.
  const ResultRow* find(
      const std::vector<std::pair<std::string, std::string>>& where) const;

  /// Shortest round-trip decimal rendering of a double ("%.17g trimmed"):
  /// the single formatting used by CSV/JSON so exports compare bytewise.
  static std::string format_double(double v);

 private:
  std::vector<ResultRow> rows_;
};

}  // namespace hgc::exec
