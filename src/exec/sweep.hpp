// Declarative parallel experiment sweeps.
//
// The paper's evaluation is a grid: scheme × cluster × straggler model ×
// estimation error × seed (× scenario). A SweepGrid declares the axes once;
// expand() takes the cartesian product into independent Cells; run_sweep()
// executes the cells on a work-stealing ThreadPool and assembles a
// ResultTable.
//
// Determinism contract: results are bit-identical at ANY thread count
// (including 1). Three rules make that hold:
//   1. every cell's randomness derives from its own config — the built-in
//      cell bodies reseed from the seed axis; custom bodies needing
//      auxiliary randomness use Cell::forked_seed, assigned from root_seed
//      at expansion time in cell-index order, before anything runs;
//   2. a cell writes only to its pre-assigned results slot;
//   3. the table is assembled serially in cell-index order after the pool
//      drains — cross-cell aggregation (aggregate_over) happens there, never
//      concurrently.
// The linalg layer under the cells' decode solves keeps one SolveWorkspace
// per thread (thread_local in the hot paths), so each pool worker reuses
// its own factor/scratch buffers across cells — allocation-free
// steady-state without any sharing. Workspace state never influences
// results (every factor fully overwrites it), so rule 1 is unaffected.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/straggler.hpp"
#include "core/scheme_cache.hpp"
#include "core/scheme_factory.hpp"
#include "engine/delay_trace.hpp"
#include "engine/scenario.hpp"
#include "exec/result_table.hpp"
#include "obs/metrics.hpp"
#include "sim/experiment.hpp"

namespace hgc::exec {

/// Sentinel: a StragglerAxis whose victim count follows the cell's s value.
inline constexpr std::size_t kMatchS = static_cast<std::size_t>(-1);

/// One point on the straggler-model axis. Delays are declared relative to
/// the balanced optimum so one axis serves every cluster and s value:
/// resolved delay = delay_seconds + delay_factor · ideal_iteration_time.
struct StragglerAxis {
  std::string label;        ///< axis value in the table; "" = auto-generated
  std::size_t num_stragglers = kMatchS;
  double delay_factor = 0.0;   ///< × ideal_iteration_time(cluster, s)
  double delay_seconds = 0.0;  ///< absolute seconds, added on top
  bool fault = false;
  double fluctuation_sigma = 0.0;

  std::string name() const;  ///< label, or an auto-description of the knobs
};

/// What a cell runs: the analytic experiment harness or one of the engine's
/// scenario drivers.
enum class ScenarioKind { kStatic, kChurn, kTraceReplay, kScript };

/// One point on the scenario axis.
struct ScenarioSpec {
  std::string name = "static";
  ScenarioKind kind = ScenarioKind::kStatic;
  /// kChurn: membership events, sorted by time.
  std::vector<engine::ChurnEvent> churn_events;
  /// kTraceReplay: recorded per-worker delays (columns must match the
  /// cluster the cell runs on).
  engine::DelayTrace trace;
  /// kScript: a compiled operator-authored scenario (churn + drift +
  /// correlated bursts + trace splice), usually from a DSL file. Its
  /// declared worker count must match the cluster the cell runs on.
  engine::ScenarioScript script;
};

/// A caller-defined numeric axis, exposed to custom cell functions (message
/// drop probability, layer count, transfer ratio, ...).
struct CustomAxis {
  std::string name;
  std::vector<double> values;
  /// Optional display labels, parallel to values; empty = numeric.
  std::vector<std::string> labels;
};

/// The declarative grid. Every vector is one axis of the cartesian product;
/// single-element axes are fixed parameters and stay out of the row axes.
struct SweepGrid {
  std::vector<Cluster> clusters = {cluster_a()};
  std::vector<SchemeKind> schemes = paper_schemes();
  std::vector<std::size_t> s_values = {1};
  /// Partition counts; 0 = exact_partition_count(cluster, s) for static
  /// cells (the figures' choice) and "scheme default" for scenario cells.
  std::vector<std::size_t> k_values = {0};
  std::vector<StragglerAxis> models = {{}};
  std::vector<double> sigmas = {0.0};      ///< estimation error σ
  std::vector<std::uint64_t> seeds = {42};
  std::vector<ScenarioSpec> scenarios = {{}};
  std::vector<CustomAxis> custom_axes;

  std::size_t iterations = 300;
  SimParams sim;
  /// Root of the per-cell forked RNG streams (auxiliary randomness for
  /// custom cell functions; the experiment itself reseeds from the seed
  /// axis).
  std::uint64_t root_seed = 0x5eed;

  std::size_t num_cells() const;
};

/// One expanded cell: resolved config plus its coordinates in the grid.
/// Holds a pointer into the grid's clusters — the grid must outlive it.
struct Cell {
  std::size_t index = 0;  ///< row order; also the results slot
  const Cluster* cluster = nullptr;
  SchemeKind scheme = SchemeKind::kNaive;
  std::size_t scenario_index = 0;
  /// Fully resolved experiment parameters (k, model delays, sigma, seed).
  ExperimentConfig experiment;
  /// Custom-axis values for this cell, one per grid.custom_axes entry.
  std::vector<double> custom;
  /// Deterministic per-cell seed forked from grid.root_seed, for custom
  /// cell bodies that need randomness beyond the seed axis (the built-in
  /// bodies and the figure presets reseed from experiment.seed instead).
  std::uint64_t forked_seed = 0;
  /// Precomputed (axis, value) coordinates for the result row.
  std::vector<std::pair<std::string, std::string>> axes;

  /// Value of the named custom axis (by grid order); throws if absent.
  double custom_value(const SweepGrid& grid, const std::string& name) const;
};

/// What a cell reports back; everything lands in the cell's ResultRow.
struct CellResult {
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<std::pair<std::string, RunningStats>> stats;
  std::vector<std::pair<std::string, ReservoirQuantiles>> quantiles;
  std::string note;  ///< "fail" / error text; empty = healthy
};

/// A cell body. Must be safe to call concurrently with itself on different
/// cells (capture shared inputs by const reference only).
using CellFn = std::function<CellResult(const Cell&)>;

struct SweepOptions {
  std::size_t threads = 0;  ///< 0 = ThreadPool::default_threads()
  /// Shared scheme-construction cache (thread-safe; cells differing only in
  /// axes the construction ignores reuse one scheme). nullptr = off.
  SchemeCache* scheme_cache = nullptr;
  /// Per-cell decoding-coefficient LRU capacity; 0 = off. Each cell owns its
  /// cache, keeping cells race-free at any thread count.
  std::size_t decoding_cache_capacity = 0;
  /// When non-null, run_sweep fills this with a merged obs::Registry
  /// snapshot after the pool drains — cache hit/miss counters, decode-solve
  /// totals, per-cell timing stats. Out of band by construction: the
  /// snapshot never feeds back into the ResultTable, so instrumented and
  /// uninstrumented runs emit identical bytes. (Counters are process-wide
  /// and cumulative; callers wanting per-sweep deltas reset the registry
  /// before the run.)
  obs::Snapshot* metrics_snapshot = nullptr;
  /// > 0 runs an obs::Recorder for the duration of the sweep, sampling the
  /// registry every interval on a background thread. Read-only against the
  /// registry, so the ResultTable stays byte-identical with it on or off.
  double metrics_interval_seconds = 0.0;
  /// Optional recorder sink: one compact snapshot JSON per line (JSONL),
  /// appended at every sample. Not owned; ignored unless the recorder runs.
  std::ostream* metrics_log = nullptr;
  /// When non-null (and the recorder ran), filled with the recorder's ring
  /// contents — the last ~600 samples, oldest first — after the pool drains.
  std::vector<obs::Snapshot>* metrics_series = nullptr;
};

/// Expand the grid into cells (cartesian product, deterministic order:
/// cluster, scenario, s, k, sigma, model, custom axes, seed, scheme — scheme
/// varies fastest so adjacent rows compare schemes).
std::vector<Cell> expand(const SweepGrid& grid);

/// Run every cell of `grid` through `fn` on `opts.threads` workers.
/// Exceptions inside a cell are caught and reported in the row's note.
ResultTable run_sweep(const SweepGrid& grid, const CellFn& fn,
                      const SweepOptions& opts = {});

/// run_sweep with the built-in cell body, dispatching on the cell's
/// scenario: kStatic → sim/experiment (stats: time, usage; "fail" note when
/// any iteration was undecodable), kChurn → engine churn driver (stats:
/// time; quantiles: latency; metrics: reinstantiations, failures),
/// kTraceReplay → engine trace replay (stats: time; quantiles: latency),
/// kScript → engine script driver (adds a bursts metric; the cell's
/// straggler-model axis supplies the base conditions the script composes
/// onto).
ResultTable run_sweep(const SweepGrid& grid, const SweepOptions& opts = {});

}  // namespace hgc::exec
