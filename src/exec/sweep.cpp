#include "exec/sweep.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <utility>

#include "exec/thread_pool.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "sim/iteration.hpp"
#include "util/checked_cast.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace hgc::exec {

std::string StragglerAxis::name() const {
  if (!label.empty()) return label;
  if (fault) return "fault";
  std::string out;
  if (delay_factor > 0.0) out = TablePrinter::num(delay_factor, 1) + "x ideal";
  if (delay_seconds > 0.0) {
    if (!out.empty()) out += " + ";
    out += TablePrinter::num(delay_seconds, 3) + "s";
  }
  if (out.empty())
    out = fluctuation_sigma > 0.0 ? "fluct only" : "none";
  return out;
}

std::size_t SweepGrid::num_cells() const {
  std::size_t n = clusters.size() * schemes.size() * s_values.size() *
                  k_values.size() * models.size() * sigmas.size() *
                  seeds.size() * scenarios.size();
  for (const CustomAxis& axis : custom_axes) n *= axis.values.size();
  return n;
}

double Cell::custom_value(const SweepGrid& grid,
                          const std::string& name) const {
  for (std::size_t i = 0; i < grid.custom_axes.size(); ++i)
    if (grid.custom_axes[i].name == name) return custom.at(i);
  throw std::invalid_argument("unknown custom axis: " + name);
}

namespace {

std::string custom_axis_label(const CustomAxis& axis, std::size_t i) {
  if (i < axis.labels.size()) return axis.labels[i];
  return ResultTable::format_double(axis.values[i]);
}

}  // namespace

std::vector<Cell> expand(const SweepGrid& grid) {
  HGC_REQUIRE(!grid.clusters.empty() && !grid.schemes.empty() &&
                  !grid.s_values.empty() && !grid.k_values.empty() &&
                  !grid.models.empty() && !grid.sigmas.empty() &&
                  !grid.seeds.empty() && !grid.scenarios.empty(),
              "every sweep axis needs at least one value");
  for (const CustomAxis& axis : grid.custom_axes)
    HGC_REQUIRE(!axis.values.empty(),
                "every custom axis needs at least one value");

  std::vector<Cell> cells;
  cells.reserve(grid.num_cells());
  // Odometer over the custom axes (empty = a single all-zeros setting).
  std::vector<std::size_t> custom_idx(grid.custom_axes.size(), 0);
  const auto advance_custom = [&]() -> bool {
    for (std::size_t i = custom_idx.size(); i-- > 0;) {
      if (++custom_idx[i] < grid.custom_axes[i].values.size()) return true;
      custom_idx[i] = 0;
    }
    return false;
  };

  for (std::size_t ci = 0; ci < grid.clusters.size(); ++ci) {
    const Cluster& cluster = grid.clusters[ci];
    for (std::size_t sci = 0; sci < grid.scenarios.size(); ++sci) {
      const ScenarioSpec& scenario = grid.scenarios[sci];
      for (std::size_t s : grid.s_values) {
        for (std::size_t k : grid.k_values) {
          for (double sigma : grid.sigmas) {
            for (const StragglerAxis& model : grid.models) {
              std::fill(custom_idx.begin(), custom_idx.end(), 0);
              do {
                for (std::uint64_t seed : grid.seeds) {
                  for (SchemeKind scheme : grid.schemes) {
                    Cell cell;
                    cell.index = cells.size();
                    cell.cluster = &cluster;
                    cell.scheme = scheme;
                    cell.scenario_index = sci;

                    ExperimentConfig& config = cell.experiment;
                    config.s = s;
                    // k = 0 means "the figures' exact partition count" for
                    // static cells; scenario drivers keep their own 0
                    // semantics (2 × active workers).
                    config.k = (k == 0 && scenario.kind ==
                                              ScenarioKind::kStatic)
                                   ? exact_partition_count(cluster, s)
                                   : k;
                    config.model.num_stragglers =
                        model.num_stragglers == kMatchS ? s
                                                        : model.num_stragglers;
                    config.model.delay_seconds =
                        model.delay_seconds +
                        model.delay_factor * ideal_iteration_time(cluster, s);
                    config.model.fault = model.fault;
                    config.model.fluctuation_sigma = model.fluctuation_sigma;
                    config.estimation_sigma = sigma;
                    config.iterations = grid.iterations;
                    config.seed = seed;
                    config.sim = grid.sim;

                    cell.custom.reserve(custom_idx.size());
                    for (std::size_t i = 0; i < custom_idx.size(); ++i)
                      cell.custom.push_back(
                          grid.custom_axes[i].values[custom_idx[i]]);

                    // Row coordinates: single-valued axes are fixed
                    // parameters and stay out of the row key; cluster
                    // always identifies a row.
                    cell.axes.emplace_back("cluster", cluster.name());
                    if (grid.scenarios.size() > 1)
                      cell.axes.emplace_back("scenario", scenario.name);
                    if (grid.s_values.size() > 1)
                      cell.axes.emplace_back("s", std::to_string(s));
                    if (grid.k_values.size() > 1)
                      // k = 0 is the "exact partition count" sentinel; the
                      // resolved value varies per cluster and s, so label
                      // the axis honestly rather than "0".
                      cell.axes.emplace_back(
                          "k", k == 0 ? "auto" : std::to_string(k));
                    if (grid.sigmas.size() > 1)
                      cell.axes.emplace_back(
                          "sigma", ResultTable::format_double(sigma));
                    if (grid.models.size() > 1)
                      cell.axes.emplace_back("model", model.name());
                    for (std::size_t i = 0; i < custom_idx.size(); ++i)
                      cell.axes.emplace_back(
                          grid.custom_axes[i].name,
                          custom_axis_label(grid.custom_axes[i],
                                            custom_idx[i]));
                    if (grid.seeds.size() > 1)
                      cell.axes.emplace_back("seed", std::to_string(seed));
                    if (grid.schemes.size() > 1)
                      cell.axes.emplace_back("scheme", to_string(scheme));

                    cells.push_back(std::move(cell));
                  }
                }
              } while (advance_custom());
            }
          }
        }
      }
    }
  }

  // Fork the per-cell streams last, in index order, so the discipline is
  // independent of how the loops above evolve.
  Rng root(grid.root_seed);
  for (Cell& cell : cells) cell.forked_seed = root.fork().seed();
  return cells;
}

namespace {

/// The cell's virtual-clock trace track (cell.index + 1; track 0 means
/// "untracked"). Resolved once per cell body so a disabled tracer costs one
/// relaxed load per cell, not per round.
std::uint32_t cell_trace_track(const Cell& cell) {
  return obs::trace_enabled() ? checked_cast<std::uint32_t>(cell.index + 1)
                              : 0;
}

CellResult run_static_cell(const Cell& cell, const SweepOptions& opts) {
  ExperimentConfig config = cell.experiment;
  config.scheme_cache = opts.scheme_cache;
  config.decoding_cache_capacity = opts.decoding_cache_capacity;
  config.sim.trace_track = cell_trace_track(cell);
  const SchemeSummary summary =
      run_experiment(cell.scheme, *cell.cluster, config);
  CellResult result;
  result.stats.emplace_back("time", summary.iteration_time);
  result.stats.emplace_back("usage", summary.resource_usage);
  result.metrics.emplace_back("failures",
                              static_cast<double>(summary.failures));
  if (summary.ever_failed()) result.note = "fail";
  return result;
}

CellResult run_churn_cell(const Cell& cell, const ScenarioSpec& scenario,
                          const SweepOptions& opts) {
  engine::ChurnConfig config;
  config.iterations = cell.experiment.iterations;
  config.s = cell.experiment.s;
  config.k = cell.experiment.k;
  config.model = cell.experiment.model;
  config.sim = cell.experiment.sim;
  config.seed = cell.experiment.seed;
  config.events = scenario.churn_events;
  config.decoding_cache_capacity = opts.decoding_cache_capacity;
  config.sim.trace_track = cell_trace_track(cell);
  const engine::ChurnResult churn =
      engine::run_churn_scenario(cell.scheme, *cell.cluster, config);
  CellResult result;
  result.stats.emplace_back("time", churn.iteration_time);
  result.quantiles.emplace_back("latency", churn.latency);
  result.metrics.emplace_back("failures",
                              static_cast<double>(churn.failures));
  result.metrics.emplace_back("reinstantiations",
                              static_cast<double>(churn.reinstantiations));
  result.metrics.emplace_back("total_time", churn.total_time);
  return result;
}

CellResult run_script_cell(const Cell& cell, const ScenarioSpec& scenario,
                           const SweepOptions& opts) {
  engine::ScriptConfig config;
  config.iterations = cell.experiment.iterations;
  config.s = cell.experiment.s;
  config.k = cell.experiment.k;
  config.model = cell.experiment.model;
  config.sim = cell.experiment.sim;
  config.seed = cell.experiment.seed;
  config.decoding_cache_capacity = opts.decoding_cache_capacity;
  config.sim.trace_track = cell_trace_track(cell);
  const engine::ScriptResult run = engine::run_script_scenario(
      cell.scheme, *cell.cluster, scenario.script, config);
  CellResult result;
  result.stats.emplace_back("time", run.iteration_time);
  result.quantiles.emplace_back("latency", run.latency);
  result.metrics.emplace_back("failures",
                              static_cast<double>(run.failures));
  result.metrics.emplace_back("reinstantiations",
                              static_cast<double>(run.reinstantiations));
  result.metrics.emplace_back("bursts",
                              static_cast<double>(run.bursts_started));
  result.metrics.emplace_back("total_time", run.total_time);
  return result;
}

CellResult run_trace_cell(const Cell& cell, const ScenarioSpec& scenario,
                          const SweepOptions& opts) {
  engine::TraceReplayConfig config;
  config.iterations = cell.experiment.iterations;
  config.s = cell.experiment.s;
  config.k = cell.experiment.k;
  config.sim = cell.experiment.sim;
  config.seed = cell.experiment.seed;
  config.decoding_cache_capacity = opts.decoding_cache_capacity;
  config.sim.trace_track = cell_trace_track(cell);
  const engine::TraceReplayResult replay = engine::replay_trace(
      cell.scheme, *cell.cluster, scenario.trace, config);
  CellResult result;
  result.stats.emplace_back("time", replay.iteration_time);
  result.quantiles.emplace_back("latency", replay.latency);
  result.metrics.emplace_back("failures",
                              static_cast<double>(replay.failures));
  result.metrics.emplace_back("total_time", replay.total_time);
  return result;
}

}  // namespace

ResultTable run_sweep(const SweepGrid& grid, const CellFn& fn,
                      const SweepOptions& opts) {
  const std::vector<Cell> cells = expand(grid);
  std::vector<CellResult> results(cells.size());
  if (obs::metrics_enabled()) {
    static const obs::Gauge cells_total =
        obs::Registry::global().gauge("sweep.cells.total");
    cells_total.set(static_cast<double>(cells.size()));
  }
  const auto guarded = [&fn](const Cell& cell) -> CellResult {
    // Per-cell observability: a wall-clock span (arg = cell index, so the
    // trace row maps back to a ResultTable row), progress counters for
    // --progress, and a cell-duration stat. All out of band — the
    // CellResult bytes are untouched.
    HGC_TRACE_SCOPE("cell", "sweep", static_cast<std::int64_t>(cell.index));
    const bool metrics = obs::metrics_enabled();
    Stopwatch timer;
    CellResult result;
    try {
      result = fn(cell);
    } catch (const std::exception& e) {
      result.note = std::string("error: ") + e.what();
      if (metrics) {
        static const obs::Counter cells_failed =
            obs::Registry::global().counter("sweep.cells.failed");
        cells_failed.add();
      }
    }
    if (metrics) {
      static const obs::Counter cells_done =
          obs::Registry::global().counter("sweep.cells.done");
      static const obs::StatHandle cell_seconds =
          obs::Registry::global().stat("sweep.cell_seconds");
      cells_done.add();
      cell_seconds.observe(timer.seconds());
    }
    return result;
  };
  std::unique_ptr<obs::Recorder> recorder;
  if (opts.metrics_interval_seconds > 0.0) {
    obs::RecorderOptions ropts;
    ropts.interval_seconds = opts.metrics_interval_seconds;
    ropts.jsonl = opts.metrics_log;
    recorder = std::make_unique<obs::Recorder>(ropts);
    recorder->start();
  }
  ThreadPool pool(opts.threads ? opts.threads : ThreadPool::default_threads());
  for (const Cell& cell : cells)
    pool.submit([&guarded, &cell, &results] {
      results[cell.index] = guarded(cell);
    });
  pool.wait_idle();
  if (recorder) {
    recorder->stop();
    if (opts.metrics_series) *opts.metrics_series = recorder->samples();
  }
  if (opts.metrics_snapshot)
    *opts.metrics_snapshot = obs::Registry::global().snapshot();

  ResultTable table;
  for (const Cell& cell : cells) {
    CellResult& r = results[cell.index];
    ResultRow row;
    row.axes = cell.axes;
    row.metrics = std::move(r.metrics);
    row.stats = std::move(r.stats);
    row.quantiles = std::move(r.quantiles);
    row.note = std::move(r.note);
    table.add_row(std::move(row));
  }
  return table;
}

ResultTable run_sweep(const SweepGrid& grid, const SweepOptions& opts) {
  const CellFn fn = [&grid, &opts](const Cell& cell) {
    const ScenarioSpec& scenario = grid.scenarios[cell.scenario_index];
    switch (scenario.kind) {
      case ScenarioKind::kChurn:
        return run_churn_cell(cell, scenario, opts);
      case ScenarioKind::kTraceReplay:
        return run_trace_cell(cell, scenario, opts);
      case ScenarioKind::kScript:
        return run_script_cell(cell, scenario, opts);
      case ScenarioKind::kStatic:
        break;
    }
    return run_static_cell(cell, opts);
  };
  return run_sweep(grid, fn, opts);
}

}  // namespace hgc::exec
