#include "sim/iteration.hpp"

#include <utility>

#include "engine/link.hpp"
#include "engine/round.hpp"
#include "util/error.hpp"

namespace hgc {

IterationResult simulate_iteration(const CodingScheme& scheme,
                                   const Cluster& cluster,
                                   const IterationConditions& conditions,
                                   const SimParams& params,
                                   DecodingCache* decoding_cache,
                                   double trace_time_base) {
  HGC_REQUIRE(params.comm_latency >= 0.0, "latency must be non-negative");

  // Timing-only round on the event engine over a constant-latency link.
  engine::FixedLatencyLink link(params.comm_latency);
  engine::RoundOptions options;
  options.decoding_cache = decoding_cache;
  options.trace_track = params.trace_track;
  options.trace_time_base = trace_time_base;
  engine::RoundOutcome round =
      engine::run_round(scheme, cluster, conditions, link, options);

  IterationResult result;
  result.decoded = round.decoded;
  result.time = round.time;
  result.results_used = round.results_used;
  result.resource_usage = round.resource_usage;
  result.coefficients = std::move(round.coefficients);
  result.compute_times = std::move(round.compute_times);
  return result;
}

double ideal_iteration_time(const Cluster& cluster, std::size_t s) {
  return static_cast<double>(s + 1) / cluster.total_throughput();
}

}  // namespace hgc
