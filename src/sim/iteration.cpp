#include "sim/iteration.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hgc {

IterationResult simulate_iteration(const CodingScheme& scheme,
                                   const Cluster& cluster,
                                   const IterationConditions& conditions,
                                   const SimParams& params) {
  const std::size_t m = scheme.num_workers();
  HGC_REQUIRE(cluster.size() == m, "cluster size must match scheme workers");
  HGC_REQUIRE(conditions.size() == m, "conditions size must match workers");
  HGC_REQUIRE(params.comm_latency >= 0.0, "latency must be non-negative");

  const std::size_t k = scheme.num_partitions();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Per-worker compute and arrival times.
  std::vector<double> compute_time(m, kInf);
  std::vector<std::pair<double, WorkerId>> arrivals;
  for (WorkerId w = 0; w < m; ++w) {
    if (conditions.faulted[w] || scheme.load(w) == 0) continue;
    const double rate =
        cluster.worker(w).throughput * conditions.speed_factor[w];
    HGC_ASSERT(rate > 0.0, "effective worker rate must be positive");
    const double share =
        static_cast<double>(scheme.load(w)) / static_cast<double>(k);
    compute_time[w] = share / rate;
    arrivals.emplace_back(
        compute_time[w] + conditions.delay[w] + params.comm_latency, w);
  }
  std::sort(arrivals.begin(), arrivals.end());

  IterationResult result;
  result.compute_times = compute_time;
  std::vector<bool> received(m, false);
  std::size_t count = 0;
  for (const auto& [at, w] : arrivals) {
    received[w] = true;
    ++count;
    if (count < scheme.min_results_required()) continue;
    if (auto coefficients = scheme.decoding_coefficients(received)) {
      result.decoded = true;
      result.time = at;
      result.results_used = count;
      result.coefficients = std::move(coefficients);
      break;
    }
  }
  if (!result.decoded) return result;

  // Resource usage: busy = computing time clipped to the iteration window.
  double busy_total = 0.0;
  for (WorkerId w = 0; w < m; ++w) {
    if (conditions.faulted[w]) continue;
    if (compute_time[w] == kInf) continue;  // idle worker, no data
    busy_total += std::min(compute_time[w], result.time);
  }
  result.resource_usage =
      busy_total / (static_cast<double>(m) * result.time);
  return result;
}

double ideal_iteration_time(const Cluster& cluster, std::size_t s) {
  return static_cast<double>(s + 1) / cluster.total_throughput();
}

}  // namespace hgc
