// Multi-iteration experiment harness: builds a scheme from (possibly noisy)
// throughput estimates, replays many iterations under a straggler model, and
// aggregates the metrics the paper's figures report. Fairness contract: when
// comparing schemes, every scheme sees the *same* per-iteration conditions
// (same victims, same fluctuations), achieved by drawing conditions from a
// dedicated RNG stream reset per scheme.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/straggler.hpp"
#include "core/scheme_cache.hpp"
#include "core/scheme_factory.hpp"
#include "sim/iteration.hpp"
#include "util/stats.hpp"

namespace hgc {

/// Everything that defines one experiment cell (one bar/point in a figure).
struct ExperimentConfig {
  std::size_t k = 0;  ///< partitions for heterogeneity-aware schemes; 0 = 2m
  std::size_t s = 1;  ///< provisioned straggler tolerance
  StragglerModel model;
  /// Throughput-estimation error σ (Section V motivation); 0 = exact.
  double estimation_sigma = 0.0;
  std::size_t iterations = 300;
  std::uint64_t seed = 42;
  SimParams sim;
  /// Shared, thread-safe scheme-construction cache; nullptr = construct
  /// from scratch. Result-transparent: the cache builds missing entries
  /// exactly like the uncached path (Rng(seed) into make_scheme).
  SchemeCache* scheme_cache = nullptr;
  /// Capacity of the per-run decoding-coefficient LRU (paper Section III-B
  /// "regular stragglers"); 0 disables it. The cache lives for the duration
  /// of one run_experiment call, so it is never shared across threads.
  std::size_t decoding_cache_capacity = 0;
};

/// Aggregated outcome of an experiment cell for one scheme.
struct SchemeSummary {
  std::string scheme;
  RunningStats iteration_time;  ///< decoded iterations only
  RunningStats resource_usage;
  std::size_t failures = 0;     ///< iterations that could not decode
  std::size_t iterations = 0;
  /// Decoding-cache traffic (both 0 when the cache was disabled). Reported
  /// out of band — never part of the figure metrics, so cached and uncached
  /// runs stay byte-identical.
  std::size_t decode_hits = 0;
  std::size_t decode_misses = 0;

  double mean_time() const { return iteration_time.mean(); }
  double mean_usage() const { return resource_usage.mean(); }
  bool ever_failed() const { return failures > 0; }
};

/// Run one scheme through the experiment. When `conditions_log` is non-null
/// the per-iteration conditions are appended to it, which is how tests pin
/// down the fairness contract (identical logs across schemes).
SchemeSummary run_experiment(SchemeKind kind, const Cluster& cluster,
                             const ExperimentConfig& config,
                             std::vector<IterationConditions>* conditions_log =
                                 nullptr);

/// Run several schemes under identical per-iteration conditions.
std::vector<SchemeSummary> compare_schemes(
    const std::vector<SchemeKind>& kinds, const Cluster& cluster,
    const ExperimentConfig& config);

/// Resolve the partition-count default (k = 2m when config.k == 0).
std::size_t resolve_partitions(const ExperimentConfig& config,
                               std::size_t num_workers);

/// Smallest k in [m, max_k] for which the Eq. 5 allocation is exactly
/// integral on this cluster (every worker's ideal share k(s+1)c_i/Σc is a
/// whole number), so heter-aware lands exactly on the Theorem 5 optimum.
/// Falls back to 2m when no such k exists in range. For Table II clusters
/// with s = 1 this returns Σc/2 (24, 58, 161, 324 for A–D).
std::size_t exact_partition_count(const Cluster& cluster, std::size_t s,
                                  std::size_t max_k = 2048);

}  // namespace hgc
