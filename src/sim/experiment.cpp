#include "sim/experiment.hpp"

#include <cmath>

#include "util/error.hpp"

namespace hgc {

std::size_t resolve_partitions(const ExperimentConfig& config,
                               std::size_t num_workers) {
  return config.k == 0 ? 2 * num_workers : config.k;
}

std::size_t exact_partition_count(const Cluster& cluster, std::size_t s,
                                  std::size_t max_k) {
  const Throughputs c = cluster.throughputs();
  const double total = cluster.total_throughput();
  for (std::size_t k = cluster.size(); k <= max_k; ++k) {
    bool integral = true;
    for (double ci : c) {
      const double share =
          static_cast<double>(k * (s + 1)) * ci / total;
      if (std::abs(share - std::round(share)) > 1e-9 ||
          share > static_cast<double>(k) + 1e-9) {
        integral = false;
        break;
      }
    }
    if (integral) return k;
  }
  return 2 * cluster.size();
}

SchemeSummary run_experiment(SchemeKind kind, const Cluster& cluster,
                             const ExperimentConfig& config,
                             std::vector<IterationConditions>* conditions_log) {
  HGC_REQUIRE(config.iterations > 0, "need at least one iteration");
  const std::size_t m = cluster.size();
  const std::size_t k = resolve_partitions(config, m);

  // Three independent, seed-derived streams so that (a) per-iteration
  // conditions are identical across schemes, (b) construction randomness and
  // estimation noise do not perturb the condition stream.
  Rng estimation_rng(config.seed + 0x9e37);
  Rng condition_rng(config.seed + 0x79b9);

  const Throughputs truth = cluster.throughputs();
  const Throughputs estimated =
      estimate_throughputs(truth, config.estimation_sigma, estimation_rng);
  // Construction is a deterministic function of (kind, estimated, k, s,
  // seed), which is what makes the shared cache result-transparent; the
  // uncached path below is what the cache replays on a miss.
  std::shared_ptr<const CodingScheme> scheme;
  if (config.scheme_cache) {
    scheme = config.scheme_cache->get_or_create(kind, estimated, k, config.s,
                                                config.seed);
  } else {
    Rng construction_rng(config.seed);
    scheme = make_scheme(kind, estimated, k, config.s, construction_rng);
  }

  std::optional<DecodingCache> decoding_cache;
  if (config.decoding_cache_capacity > 0)
    decoding_cache.emplace(*scheme, config.decoding_cache_capacity);

  SchemeSummary summary;
  summary.scheme = scheme->name();
  summary.iterations = config.iterations;
  // Accumulated virtual time, only for laying iterations out end-to-end on
  // the trace's virtual-clock track; results never read it.
  double trace_clock = 0.0;
  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    const IterationConditions conditions = config.model.draw(m, condition_rng);
    if (conditions_log) conditions_log->push_back(conditions);
    const IterationResult result =
        simulate_iteration(*scheme, cluster, conditions, config.sim,
                           decoding_cache ? &*decoding_cache : nullptr,
                           trace_clock);
    if (!result.decoded) {
      ++summary.failures;
      // Advance the trace clock past the failed round anyway so its
      // undecodable marker does not pile onto the next iteration's span.
      trace_clock += ideal_iteration_time(cluster, config.s);
      continue;
    }
    trace_clock += result.time;
    summary.iteration_time.add(result.time);
    summary.resource_usage.add(result.resource_usage);
  }
  if (decoding_cache) {
    summary.decode_hits = decoding_cache->hits();
    summary.decode_misses = decoding_cache->misses();
  }
  return summary;
}

std::vector<SchemeSummary> compare_schemes(
    const std::vector<SchemeKind>& kinds, const Cluster& cluster,
    const ExperimentConfig& config) {
  std::vector<SchemeSummary> summaries;
  summaries.reserve(kinds.size());
  // run_experiment reseeds its streams from config.seed, so every scheme
  // replays the same straggler victims and fluctuations.
  for (SchemeKind kind : kinds)
    summaries.push_back(run_experiment(kind, cluster, config));
  return summaries;
}

}  // namespace hgc
