#include "sim/layerwise.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hgc {

std::vector<double> equal_layers(std::size_t count) {
  HGC_REQUIRE(count > 0, "need at least one layer");
  return std::vector<double>(count, 1.0 / static_cast<double>(count));
}

LayerwiseResult simulate_layerwise_iteration(const CodingScheme& scheme,
                                             const Cluster& cluster,
                                             const IterationConditions& cond,
                                             const LayerwiseParams& params) {
  const std::size_t m = scheme.num_workers();
  HGC_REQUIRE(cluster.size() == m, "cluster size must match scheme workers");
  HGC_REQUIRE(cond.size() == m, "conditions size must match workers");
  HGC_REQUIRE(params.per_message_latency >= 0.0 &&
                  params.full_transfer_time >= 0.0,
              "communication costs must be non-negative");

  std::vector<double> fractions =
      params.layer_fractions.empty() ? std::vector<double>{1.0}
                                     : params.layer_fractions;
  double total_fraction = 0.0;
  for (double f : fractions) {
    HGC_REQUIRE(f > 0.0, "layer fractions must be positive");
    total_fraction += f;
  }
  HGC_REQUIRE(std::abs(total_fraction - 1.0) < 1e-6,
              "layer fractions must sum to 1");
  const std::size_t num_layers = fractions.size();

  // Per-worker total compute time (as in the monolithic simulator).
  const std::size_t k = scheme.num_partitions();
  std::vector<double> total_compute(m, 0.0);
  std::vector<bool> active(m, false);
  for (WorkerId w = 0; w < m; ++w) {
    if (cond.faulted[w] || scheme.load(w) == 0) continue;
    const double rate =
        cluster.worker(w).throughput * cond.speed_factor[w];
    const double share =
        static_cast<double>(scheme.load(w)) / static_cast<double>(k);
    total_compute[w] = share / rate;
    active[w] = true;
  }

  LayerwiseResult result;
  result.layer_times.assign(num_layers, 0.0);

  double cumulative = 0.0;
  for (std::size_t layer = 0; layer < num_layers; ++layer) {
    cumulative += fractions[layer];
    // Layer arrival per worker: injected delay stalls the start of compute;
    // transfer overlaps the next layer's compute (dedicated send thread).
    std::vector<std::pair<double, WorkerId>> arrivals;
    for (WorkerId w = 0; w < m; ++w) {
      if (!active[w]) continue;
      const double compute_done = cond.delay[w] + cumulative * total_compute[w];
      arrivals.emplace_back(compute_done + params.per_message_latency +
                                fractions[layer] * params.full_transfer_time,
                            w);
    }
    std::sort(arrivals.begin(), arrivals.end());

    std::vector<bool> received(m, false);
    std::size_t count = 0;
    bool layer_decoded = false;
    for (const auto& [at, w] : arrivals) {
      received[w] = true;
      ++count;
      if (count < scheme.min_results_required()) continue;
      if (scheme.decoding_coefficients(received)) {
        result.layer_times[layer] = at;
        layer_decoded = true;
        break;
      }
    }
    if (!layer_decoded) return result;  // decoded stays false
  }

  result.decoded = true;
  result.time = *std::max_element(result.layer_times.begin(),
                                  result.layer_times.end());
  return result;
}

}  // namespace hgc
