// Adaptive coded execution: close the estimate → allocate → observe loop.
//
// The paper constructs its code once from sampled throughputs. This module
// adds the operational layer a deployment needs: start from *no knowledge*
// (uniform estimates), observe per-iteration compute times, update an EWMA
// estimator, and periodically rebuild the heterogeneity-aware code when the
// estimates have drifted past a threshold. Handles both cold start (learning
// the cluster's heterogeneity from scratch) and drift (a worker permanently
// slowing mid-run, e.g. a noisy neighbor).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/estimator.hpp"
#include "cluster/straggler.hpp"
#include "core/scheme_factory.hpp"
#include "sim/iteration.hpp"
#include "util/stats.hpp"

namespace hgc {

/// A permanent mid-run change to one worker's true speed.
struct DriftEvent {
  std::size_t at_iteration = 0;  ///< 0 = no drift
  WorkerId worker = 0;
  double factor = 1.0;  ///< multiplies the worker's true throughput
};

/// Configuration of an adaptive run.
struct AdaptiveConfig {
  std::size_t iterations = 300;
  std::size_t s = 1;
  std::size_t k = 0;  ///< 0 = 2m
  SchemeKind kind = SchemeKind::kHeterAware;
  /// Re-examine the estimates every this many iterations (0 = never, i.e. a
  /// static scheme built from the initial estimates).
  std::size_t recode_every = 20;
  /// Rebuild only if estimates deviate from the ones the current scheme was
  /// built with by more than this relative amount.
  double recode_threshold = 0.10;
  double ewma_smoothing = 0.25;
  /// Initial throughput estimates; empty = uniform (cold start).
  Throughputs initial_estimates;
  StragglerModel model;
  SimParams sim;
  DriftEvent drift;
  std::uint64_t seed = 42;
};

/// Outcome of an adaptive run.
struct AdaptiveResult {
  std::vector<double> iteration_times;  ///< +inf where undecodable
  RunningStats overall;                 ///< decodable iterations only
  std::size_t recodes = 0;              ///< scheme rebuilds performed
  std::size_t failures = 0;
  Throughputs final_estimates;

  /// Mean iteration time over [begin, end) of the run (skips failures).
  double window_mean(std::size_t begin, std::size_t end) const;
};

/// Run the adaptive executor on `cluster` (true speeds, unknown to the
/// master). With recode_every = 0 this measures the static baseline under
/// identical conditions.
AdaptiveResult run_adaptive(const Cluster& cluster,
                            const AdaptiveConfig& config);

}  // namespace hgc
