// Single-iteration discrete-event simulation of the master/worker protocol.
//
// Workers start computing at t = 0. Worker w holding load(w) of the k
// partitions finishes computing at (load/k) / (throughput·speed_factor),
// then its coded result reaches the master after its injected delay plus the
// communication latency. The master processes arrivals in time order and
// stops at the first decodable prefix — exactly the T(B, S) semantics of
// Section III-C generalized to delayed (not just full) stragglers.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/straggler.hpp"
#include "core/coding_scheme.hpp"
#include "core/decoding_cache.hpp"

namespace hgc {

/// Knobs that are properties of the platform rather than the scheme.
struct SimParams {
  /// Fixed result-transfer latency (seconds) added to every arrival.
  double comm_latency = 0.0;
  /// Observability routing — never affects results. Non-zero assigns the
  /// virtual-clock trace track the engine lays this run's rounds out on
  /// (sweep cells use cell.index + 1); 0 = no virtual trace events.
  std::uint32_t trace_track = 0;
};

/// Outcome of one simulated iteration.
struct IterationResult {
  bool decoded = false;
  /// Master decode time (seconds); +inf when the iteration cannot complete
  /// (e.g. naive scheme with a faulted worker).
  double time = std::numeric_limits<double>::infinity();
  /// Results that had arrived when decoding succeeded.
  std::size_t results_used = 0;
  /// Fig. 5 metric: Σ busy_i / (m · T). A worker is busy while computing
  /// (waiting in a delay queue is not busy); faulted workers contribute 0;
  /// workers still computing at T are clipped to T.
  double resource_usage = 0.0;
  /// Decoding coefficients at the stop time (supp ⊆ arrived workers,
  /// a·B = 1); trainers combine real coded gradients with them.
  std::optional<Vector> coefficients;
  /// Per-worker pure compute durations this iteration (+inf for faulted or
  /// idle workers); feeds online throughput estimation.
  std::vector<double> compute_times;
};

/// Simulate one iteration of `scheme` on `cluster` under `conditions`.
/// `decoding_cache`, when non-null, must wrap `scheme`; callers replaying
/// many iterations share it so recurring straggler patterns decode from the
/// LRU instead of re-solving (result-transparent either way).
/// `trace_time_base` is the caller's accumulated virtual clock, placing this
/// iteration on the params.trace_track timeline (observability only).
IterationResult simulate_iteration(const CodingScheme& scheme,
                                   const Cluster& cluster,
                                   const IterationConditions& conditions,
                                   const SimParams& params = {},
                                   DecodingCache* decoding_cache = nullptr,
                                   double trace_time_base = 0.0);

/// The balanced-optimum iteration time (s+1)/Σw of Theorem 5 translated to
/// cluster units (datasets/second); what heter-aware achieves with exact
/// estimates and no noise.
double ideal_iteration_time(const Cluster& cluster, std::size_t s);

}  // namespace hgc
