#include "sim/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace hgc {

double AdaptiveResult::window_mean(std::size_t begin, std::size_t end) const {
  HGC_REQUIRE(begin <= end && end <= iteration_times.size(),
              "window out of range");
  RunningStats stats;
  for (std::size_t i = begin; i < end; ++i)
    if (std::isfinite(iteration_times[i])) stats.add(iteration_times[i]);
  return stats.mean();
}

AdaptiveResult run_adaptive(const Cluster& cluster,
                            const AdaptiveConfig& config) {
  const std::size_t m = cluster.size();
  HGC_REQUIRE(config.iterations > 0, "need at least one iteration");
  const std::size_t k = config.k == 0 ? 2 * m : config.k;

  Rng construction_rng(config.seed);
  Rng condition_rng(config.seed + 0x79b9);

  // The master's belief about worker speeds; cold start = uniform.
  Throughputs initial = config.initial_estimates;
  if (initial.empty()) initial.assign(m, 1.0);
  HGC_REQUIRE(initial.size() == m, "initial estimates size mismatch");
  ThroughputEstimator estimator(initial, config.ewma_smoothing);

  Throughputs scheme_basis = estimator.estimates();
  auto scheme =
      make_scheme(config.kind, scheme_basis, k, config.s, construction_rng);

  AdaptiveResult result;
  result.iteration_times.reserve(config.iterations);

  for (std::size_t iter = 1; iter <= config.iterations; ++iter) {
    IterationConditions conditions = config.model.draw(m, condition_rng);
    // Apply the permanent drift on top of the transient fluctuation.
    if (config.drift.at_iteration > 0 && iter >= config.drift.at_iteration) {
      HGC_REQUIRE(config.drift.worker < m, "drift worker out of range");
      conditions.speed_factor[config.drift.worker] *= config.drift.factor;
    }

    const IterationResult sim_result =
        simulate_iteration(*scheme, cluster, conditions, config.sim);
    if (!sim_result.decoded) {
      ++result.failures;
      result.iteration_times.push_back(
          std::numeric_limits<double>::infinity());
    } else {
      result.iteration_times.push_back(sim_result.time);
      result.overall.add(sim_result.time);
    }

    // Telemetry: observed compute durations update the estimator (workers
    // report their own compute time with the result / heartbeat).
    for (WorkerId w = 0; w < m; ++w) {
      const double seconds = sim_result.compute_times[w];
      if (!std::isfinite(seconds)) continue;
      const double fraction = static_cast<double>(scheme->load(w)) /
                              static_cast<double>(scheme->num_partitions());
      estimator.observe(w, fraction, seconds);
    }

    // Periodic re-code when the belief drifted enough.
    if (config.recode_every > 0 && iter % config.recode_every == 0) {
      if (estimator.relative_deviation(scheme_basis) >
          config.recode_threshold) {
        scheme_basis = estimator.estimates();
        scheme = make_scheme(config.kind, scheme_basis, k, config.s,
                             construction_rng);
        ++result.recodes;
      }
    }
  }

  result.final_estimates = estimator.estimates();
  return result;
}

}  // namespace hgc
