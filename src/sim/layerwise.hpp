// Layer-wise coded gradients — the extension sketched in the paper's
// conclusion ("still half of resource is idle due to communication overhead
// … this can be solved by combined techniques proposed by [42] that code
// gradients layer by layer", i.e. Poseidon-style compute/communication
// overlap).
//
// Model: the gradient splits into L layers with work/size fractions f_l
// (backprop produces them sequentially). A worker finishing layer l encodes
// and ships it immediately while computing layer l+1, so transfer of early
// layers hides behind compute of later ones. The master decodes each layer
// independently (all layers share the same coding matrix B); the iteration
// completes when the last layer decodes. Monolithic coding is the L = 1
// special case.
#pragma once

#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/straggler.hpp"
#include "core/coding_scheme.hpp"
#include "sim/iteration.hpp"

namespace hgc {

/// Communication/layering knobs for the pipelined simulation.
struct LayerwiseParams {
  /// Work & size fraction of each layer; must sum to ~1. Empty = {1.0}
  /// (monolithic).
  std::vector<double> layer_fractions;
  /// Per-message fixed latency (seconds); paid once per layer message.
  double per_message_latency = 0.0;
  /// Seconds to transfer one *full* coded gradient; a layer costs its
  /// fraction of this.
  double full_transfer_time = 0.0;
};

/// Outcome of a pipelined iteration.
struct LayerwiseResult {
  bool decoded = false;
  double time = 0.0;               ///< last layer's decode time
  std::vector<double> layer_times; ///< decode time per layer
};

/// Simulate one iteration with layer-wise coded sends.
LayerwiseResult simulate_layerwise_iteration(const CodingScheme& scheme,
                                             const Cluster& cluster,
                                             const IterationConditions& cond,
                                             const LayerwiseParams& params);

/// Equal layer fractions helper.
std::vector<double> equal_layers(std::size_t count);

}  // namespace hgc
