#include "ml/gradient.hpp"

#include <numeric>

#include "util/error.hpp"

namespace hgc {

Vector partition_gradient(const Model& model, const Dataset& data,
                          std::span<const std::size_t> rows,
                          std::span<const double> params) {
  Vector grad(model.num_params(), 0.0);
  model.loss_and_gradient(data, rows, params, grad);
  return grad;
}

std::vector<Vector> all_partition_gradients(
    const Model& model, const Dataset& data,
    const std::vector<std::vector<std::size_t>>& partitions,
    std::span<const double> params) {
  std::vector<Vector> grads;
  grads.reserve(partitions.size());
  for (const auto& rows : partitions)
    grads.push_back(partition_gradient(model, data, rows, params));
  return grads;
}

Vector full_gradient(const Model& model, const Dataset& data,
                     std::span<const double> params) {
  return partition_gradient(model, data, all_rows(data.size()), params);
}

double mean_loss(const Model& model, const Dataset& data,
                 std::span<const double> params) {
  HGC_REQUIRE(data.size() > 0, "empty dataset");
  const auto rows = all_rows(data.size());
  return model.loss(data, rows, params) / static_cast<double>(data.size());
}

Vector numeric_gradient(const Model& model, const Dataset& data,
                        std::span<const std::size_t> rows,
                        std::span<const double> params, double step) {
  Vector perturbed(params.begin(), params.end());
  Vector grad(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    perturbed[i] = params[i] + step;
    const double up = model.loss(data, rows, perturbed);
    perturbed[i] = params[i] - step;
    const double down = model.loss(data, rows, perturbed);
    perturbed[i] = params[i];
    grad[i] = (up - down) / (2.0 * step);
  }
  return grad;
}

std::vector<std::size_t> all_rows(std::size_t n) {
  std::vector<std::size_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0);
  return rows;
}

}  // namespace hgc
