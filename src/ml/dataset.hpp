// Datasets and partitioning for the learning experiments.
//
// Substitution note (see DESIGN.md §5): the paper trains AlexNet/CIFAR-10 and
// ResNet34/ImageNet on PyTorch. Gradient coding is agnostic to what produces
// the per-partition gradient vectors, so we substitute a synthetic
// Gaussian-cluster classification task whose gradients are computed by the
// from-scratch models in model.hpp. The synthetic-CIFAR generator mimics
// CIFAR-10's shape at reduced dimensionality (10 classes, configurable
// feature dim) and gives every experiment a reproducible data source.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace hgc {

/// Dense classification dataset.
struct Dataset {
  Matrix features;          ///< n × d
  std::vector<int> labels;  ///< length n, values in [0, num_classes)
  std::size_t num_classes = 0;

  std::size_t size() const { return features.rows(); }
  std::size_t dim() const { return features.cols(); }
};

/// Gaussian-cluster classification: class means drawn on a sphere of radius
/// `separation`, unit-variance features around them. separation ≈ 2-3 gives
/// a learnable-but-not-trivial task.
Dataset make_gaussian_classification(std::size_t n, std::size_t dim,
                                     std::size_t classes, double separation,
                                     Rng& rng);

/// CIFAR-10-shaped synthetic stand-in: 10 classes, default 64 features.
Dataset make_synthetic_cifar10(std::size_t n, Rng& rng,
                               std::size_t dim = 64);

/// Row indices of each of the k partitions (contiguous, near-equal; the
/// first n % k partitions get one extra row).
std::vector<std::vector<std::size_t>> partition_rows(std::size_t n,
                                                     std::size_t k);

/// Reorder a dataset so rows are grouped by label. Combined with contiguous
/// partitioning this produces *non-IID* shards (each worker sees few
/// classes) — the regime where SSP's unbalanced contributions visibly hurt
/// convergence (the paper's second argument against SSP in Fig. 4). BSP
/// coded schemes are immune: their decoded gradient is the exact full-batch
/// gradient regardless of how rows are laid out.
Dataset sort_by_label(const Dataset& data);

/// Non-IID partitioner: distribute each class's rows over the k partitions
/// with Dirichlet(alpha) proportions (small alpha = highly skewed shards;
/// alpha → ∞ = IID). Every partition is guaranteed at least one row.
std::vector<std::vector<std::size_t>> dirichlet_partition_rows(
    const Dataset& data, std::size_t k, double alpha, Rng& rng);

/// Class histogram of a row subset (length num_classes).
std::vector<std::size_t> label_histogram(const Dataset& data,
                                         std::span<const std::size_t> rows);

}  // namespace hgc
