#include "ml/model.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.hpp"
#include "util/error.hpp"

namespace hgc {

double softmax_cross_entropy(std::span<double> logits, int label,
                             std::span<double> grad_logits) {
  HGC_REQUIRE(label >= 0 && static_cast<std::size_t>(label) < logits.size(),
              "label out of range");
  const double peak = *std::max_element(logits.begin(), logits.end());
  double z = 0.0;
  for (double& v : logits) {
    v = std::exp(v - peak);
    z += v;
  }
  const double inv_z = 1.0 / z;
  const double prob_label =
      logits[static_cast<std::size_t>(label)] * inv_z;
  if (!grad_logits.empty()) {
    HGC_REQUIRE(grad_logits.size() == logits.size(), "gradient size mismatch");
    for (std::size_t c = 0; c < logits.size(); ++c)
      grad_logits[c] = logits[c] * inv_z;
    grad_logits[static_cast<std::size_t>(label)] -= 1.0;
  }
  return -std::log(std::max(prob_label, 1e-300));
}

// ---------------------------------------------------------------- Softmax --

SoftmaxRegression::SoftmaxRegression(std::size_t dim, std::size_t classes)
    : dim_(dim), classes_(classes) {
  HGC_REQUIRE(dim > 0 && classes >= 2, "degenerate model shape");
}

std::size_t SoftmaxRegression::num_params() const {
  return classes_ * dim_ + classes_;
}

double SoftmaxRegression::loss_and_gradient(const Dataset& data,
                                            std::span<const std::size_t> rows,
                                            std::span<const double> params,
                                            std::span<double> grad) const {
  HGC_REQUIRE(params.size() == num_params(), "params size mismatch");
  HGC_REQUIRE(grad.size() == num_params(), "grad size mismatch");
  HGC_REQUIRE(data.dim() == dim_ && data.num_classes == classes_,
              "dataset shape mismatch");
  const std::span<const double> w = params.subspan(0, classes_ * dim_);
  const std::span<const double> b = params.subspan(classes_ * dim_, classes_);
  const std::span<double> gw = grad.subspan(0, classes_ * dim_);
  const std::span<double> gb = grad.subspan(classes_ * dim_, classes_);

  Vector logits(classes_);
  Vector dlogits(classes_);
  double total_loss = 0.0;
  for (std::size_t row : rows) {
    const auto x = data.features.row(row);
    kernels::gemv(w.data(), dim_, classes_, dim_, x, logits);
    kernels::axpy(1.0, b, logits);
    total_loss += softmax_cross_entropy(logits, data.labels[row], dlogits);
    kernels::rank1_update(gw.data(), dim_, classes_, dim_, 1.0, dlogits, x);
    kernels::axpy(1.0, dlogits, gb);
  }
  return total_loss;
}

double SoftmaxRegression::loss(const Dataset& data,
                               std::span<const std::size_t> rows,
                               std::span<const double> params) const {
  HGC_REQUIRE(params.size() == num_params(), "params size mismatch");
  const std::span<const double> w = params.subspan(0, classes_ * dim_);
  const std::span<const double> b = params.subspan(classes_ * dim_, classes_);
  Vector logits(classes_);
  double total_loss = 0.0;
  for (std::size_t row : rows) {
    const auto x = data.features.row(row);
    kernels::gemv(w.data(), dim_, classes_, dim_, x, logits);
    kernels::axpy(1.0, b, logits);
    total_loss += softmax_cross_entropy(logits, data.labels[row], {});
  }
  return total_loss;
}

double SoftmaxRegression::accuracy(const Dataset& data,
                                   std::span<const std::size_t> rows,
                                   std::span<const double> params) const {
  if (rows.empty()) return 0.0;
  const std::span<const double> w = params.subspan(0, classes_ * dim_);
  const std::span<const double> b = params.subspan(classes_ * dim_, classes_);
  std::size_t correct = 0;
  Vector logits(classes_);
  for (std::size_t row : rows) {
    const auto x = data.features.row(row);
    kernels::gemv(w.data(), dim_, classes_, dim_, x, logits);
    kernels::axpy(1.0, b, logits);
    const auto best = static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
    correct += best == data.labels[row] ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(rows.size());
}

Vector SoftmaxRegression::init_params(Rng& rng) const {
  Vector params(num_params(), 0.0);
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim_));
  for (std::size_t i = 0; i < classes_ * dim_; ++i)
    params[i] = rng.normal(0.0, scale);
  return params;  // biases start at zero
}

// -------------------------------------------------------------------- MLP --

Mlp::Mlp(std::size_t dim, std::size_t hidden, std::size_t classes)
    : dim_(dim), hidden_(hidden), classes_(classes) {
  HGC_REQUIRE(dim > 0 && hidden > 0 && classes >= 2, "degenerate model shape");
}

std::size_t Mlp::num_params() const {
  return hidden_ * dim_ + hidden_ + classes_ * hidden_ + classes_;
}

void Mlp::forward(const Dataset& data, std::size_t row,
                  std::span<const double> params, std::span<double> hidden,
                  std::span<double> logits) const {
  const std::span<const double> w1 = params.subspan(0, hidden_ * dim_);
  const std::span<const double> b1 = params.subspan(hidden_ * dim_, hidden_);
  const std::span<const double> w2 =
      params.subspan(hidden_ * dim_ + hidden_, classes_ * hidden_);
  const std::span<const double> b2 =
      params.subspan(hidden_ * dim_ + hidden_ + classes_ * hidden_, classes_);

  const auto x = data.features.row(row);
  kernels::gemv(w1.data(), dim_, hidden_, dim_, x, hidden);
  for (std::size_t h = 0; h < hidden_; ++h) {
    const double pre = hidden[h] + b1[h];
    hidden[h] = pre > 0.0 ? pre : 0.0;  // ReLU
  }
  kernels::gemv(w2.data(), hidden_, classes_, hidden_, hidden, logits);
  kernels::axpy(1.0, b2, logits);
}

double Mlp::loss_and_gradient(const Dataset& data,
                              std::span<const std::size_t> rows,
                              std::span<const double> params,
                              std::span<double> grad) const {
  HGC_REQUIRE(params.size() == num_params(), "params size mismatch");
  HGC_REQUIRE(grad.size() == num_params(), "grad size mismatch");
  HGC_REQUIRE(data.dim() == dim_ && data.num_classes == classes_,
              "dataset shape mismatch");
  const std::span<const double> w2 =
      params.subspan(hidden_ * dim_ + hidden_, classes_ * hidden_);
  const std::span<double> gw1 = grad.subspan(0, hidden_ * dim_);
  const std::span<double> gb1 = grad.subspan(hidden_ * dim_, hidden_);
  const std::span<double> gw2 =
      grad.subspan(hidden_ * dim_ + hidden_, classes_ * hidden_);
  const std::span<double> gb2 =
      grad.subspan(hidden_ * dim_ + hidden_ + classes_ * hidden_, classes_);

  Vector hidden(hidden_), logits(classes_), dlogits(classes_),
      dhidden(hidden_);
  double total_loss = 0.0;
  for (std::size_t row : rows) {
    forward(data, row, params, hidden, logits);
    total_loss += softmax_cross_entropy(logits, data.labels[row], dlogits);

    // Output layer gradients.
    kernels::rank1_update(gw2.data(), hidden_, classes_, hidden_, 1.0,
                          dlogits, hidden);
    kernels::axpy(1.0, dlogits, gb2);
    // Backprop into the hidden layer (ReLU mask: hidden > 0).
    kernels::gemv_t(w2.data(), hidden_, classes_, hidden_, dlogits, dhidden);
    const auto x = data.features.row(row);
    for (std::size_t h = 0; h < hidden_; ++h) {
      if (hidden[h] <= 0.0) continue;
      kernels::axpy(dhidden[h], x, {gw1.data() + h * dim_, dim_});
      gb1[h] += dhidden[h];
    }
  }
  return total_loss;
}

double Mlp::loss(const Dataset& data, std::span<const std::size_t> rows,
                 std::span<const double> params) const {
  HGC_REQUIRE(params.size() == num_params(), "params size mismatch");
  Vector hidden(hidden_), logits(classes_);
  double total_loss = 0.0;
  for (std::size_t row : rows) {
    forward(data, row, params, hidden, logits);
    total_loss += softmax_cross_entropy(logits, data.labels[row], {});
  }
  return total_loss;
}

double Mlp::accuracy(const Dataset& data, std::span<const std::size_t> rows,
                     std::span<const double> params) const {
  if (rows.empty()) return 0.0;
  Vector hidden(hidden_), logits(classes_);
  std::size_t correct = 0;
  for (std::size_t row : rows) {
    forward(data, row, params, hidden, logits);
    const auto best = static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
    correct += best == data.labels[row] ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(rows.size());
}

Vector Mlp::init_params(Rng& rng) const {
  Vector params(num_params(), 0.0);
  // He initialization for the ReLU layer, Xavier-ish for the output.
  const double scale1 = std::sqrt(2.0 / static_cast<double>(dim_));
  const double scale2 = 1.0 / std::sqrt(static_cast<double>(hidden_));
  for (std::size_t i = 0; i < hidden_ * dim_; ++i)
    params[i] = rng.normal(0.0, scale1);
  const std::size_t w2_offset = hidden_ * dim_ + hidden_;
  for (std::size_t i = 0; i < classes_ * hidden_; ++i)
    params[w2_offset + i] = rng.normal(0.0, scale2);
  return params;
}

// ------------------------------------------------------- Linear regression --

LinearRegression::LinearRegression(std::size_t dim) : dim_(dim) {
  HGC_REQUIRE(dim > 0, "degenerate model shape");
}

double LinearRegression::predict(const Dataset& data, std::size_t row,
                                 std::span<const double> params) const {
  return dot(params.subspan(0, dim_), data.features.row(row)) + params[dim_];
}

double LinearRegression::loss_and_gradient(const Dataset& data,
                                           std::span<const std::size_t> rows,
                                           std::span<const double> params,
                                           std::span<double> grad) const {
  HGC_REQUIRE(params.size() == num_params(), "params size mismatch");
  HGC_REQUIRE(grad.size() == num_params(), "grad size mismatch");
  HGC_REQUIRE(data.dim() == dim_, "dataset shape mismatch");
  double total_loss = 0.0;
  const std::span<double> gw = grad.subspan(0, dim_);
  for (std::size_t row : rows) {
    const double target = static_cast<double>(data.labels[row]);
    const double residual = predict(data, row, params) - target;
    total_loss += 0.5 * residual * residual;
    axpy(residual, data.features.row(row), gw);
    grad[dim_] += residual;
  }
  return total_loss;
}

double LinearRegression::loss(const Dataset& data,
                              std::span<const std::size_t> rows,
                              std::span<const double> params) const {
  HGC_REQUIRE(params.size() == num_params(), "params size mismatch");
  double total_loss = 0.0;
  for (std::size_t row : rows) {
    const double target = static_cast<double>(data.labels[row]);
    const double residual = predict(data, row, params) - target;
    total_loss += 0.5 * residual * residual;
  }
  return total_loss;
}

double LinearRegression::accuracy(const Dataset& data,
                                  std::span<const std::size_t> rows,
                                  std::span<const double> params) const {
  if (rows.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t row : rows) {
    const auto rounded = static_cast<int>(
        std::lround(predict(data, row, params)));
    correct += rounded == data.labels[row] ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(rows.size());
}

Vector LinearRegression::init_params(Rng& rng) const {
  Vector params(num_params(), 0.0);
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim_));
  for (std::size_t i = 0; i < dim_; ++i) params[i] = rng.normal(0.0, scale);
  return params;
}

}  // namespace hgc
