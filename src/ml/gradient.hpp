// Partition-gradient helpers shared by the trainers and the test suite.
#pragma once

#include <vector>

#include "ml/dataset.hpp"
#include "ml/model.hpp"

namespace hgc {

/// Sum-gradient over one row subset (the paper's g_i for partition i).
Vector partition_gradient(const Model& model, const Dataset& data,
                          std::span<const std::size_t> rows,
                          std::span<const double> params);

/// All k partition gradients.
std::vector<Vector> all_partition_gradients(
    const Model& model, const Dataset& data,
    const std::vector<std::vector<std::size_t>>& partitions,
    std::span<const double> params);

/// Full-dataset sum gradient (equals Σ of the partition gradients).
Vector full_gradient(const Model& model, const Dataset& data,
                     std::span<const double> params);

/// Mean loss over the whole dataset.
double mean_loss(const Model& model, const Dataset& data,
                 std::span<const double> params);

/// Central-difference numeric gradient for model verification (tests).
Vector numeric_gradient(const Model& model, const Dataset& data,
                        std::span<const std::size_t> rows,
                        std::span<const double> params, double step = 1e-5);

/// All row indices [0, n).
std::vector<std::size_t> all_rows(std::size_t n);

}  // namespace hgc
