#include "ml/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace hgc {

Dataset make_gaussian_classification(std::size_t n, std::size_t dim,
                                     std::size_t classes, double separation,
                                     Rng& rng) {
  HGC_REQUIRE(n > 0 && dim > 0 && classes >= 2, "degenerate dataset shape");
  HGC_REQUIRE(separation > 0.0, "separation must be positive");

  // Class means: random Gaussian directions scaled to `separation`.
  Matrix means(classes, dim);
  for (std::size_t c = 0; c < classes; ++c) {
    double norm = 0.0;
    for (std::size_t j = 0; j < dim; ++j) {
      means(c, j) = rng.normal();
      norm += means(c, j) * means(c, j);
    }
    norm = std::sqrt(norm);
    for (std::size_t j = 0; j < dim; ++j)
      means(c, j) *= separation / norm;
  }

  Dataset ds;
  ds.features = Matrix(n, dim);
  ds.labels.resize(n);
  ds.num_classes = classes;
  for (std::size_t i = 0; i < n; ++i) {
    const auto label = static_cast<int>(i % classes);  // balanced classes
    ds.labels[i] = label;
    for (std::size_t j = 0; j < dim; ++j)
      ds.features(i, j) =
          means(static_cast<std::size_t>(label), j) + rng.normal();
  }
  return ds;
}

Dataset make_synthetic_cifar10(std::size_t n, Rng& rng, std::size_t dim) {
  return make_gaussian_classification(n, dim, 10, 2.5, rng);
}

std::vector<std::vector<std::size_t>> partition_rows(std::size_t n,
                                                     std::size_t k) {
  HGC_REQUIRE(k > 0, "need at least one partition");
  HGC_REQUIRE(n >= k, "fewer rows than partitions");
  std::vector<std::vector<std::size_t>> parts(k);
  const std::size_t base = n / k;
  const std::size_t extra = n % k;
  std::size_t next = 0;
  for (std::size_t p = 0; p < k; ++p) {
    const std::size_t count = base + (p < extra ? 1 : 0);
    parts[p].reserve(count);
    for (std::size_t i = 0; i < count; ++i) parts[p].push_back(next++);
  }
  HGC_ASSERT(next == n, "partitioning must cover every row exactly once");
  return parts;
}

Dataset sort_by_label(const Dataset& data) {
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return data.labels[a] < data.labels[b];
                   });
  Dataset sorted;
  sorted.features = Matrix(data.size(), data.dim());
  sorted.labels.resize(data.size());
  sorted.num_classes = data.num_classes;
  for (std::size_t i = 0; i < order.size(); ++i) {
    sorted.features.set_row(i, data.features.row(order[i]));
    sorted.labels[i] = data.labels[order[i]];
  }
  return sorted;
}

std::vector<std::vector<std::size_t>> dirichlet_partition_rows(
    const Dataset& data, std::size_t k, double alpha, Rng& rng) {
  HGC_REQUIRE(k > 0, "need at least one partition");
  HGC_REQUIRE(alpha > 0.0, "Dirichlet concentration must be positive");
  HGC_REQUIRE(data.size() >= k, "fewer rows than partitions");

  // Rows of each class, shuffled for tie-breaking.
  std::vector<std::vector<std::size_t>> class_rows(data.num_classes);
  for (std::size_t i = 0; i < data.size(); ++i)
    class_rows[static_cast<std::size_t>(data.labels[i])].push_back(i);

  std::vector<std::vector<std::size_t>> parts(k);
  for (auto& rows : class_rows) {
    rng.shuffle(std::span<std::size_t>(rows));
    // Dirichlet(alpha) via normalized Gamma draws; Gamma(alpha,1) sampled
    // with the Marsaglia-Tsang-free fallback of summing exponentials is
    // wrong for non-integer alpha, so use the std library's gamma.
    std::vector<double> weights(k);
    double total = 0.0;
    for (double& w : weights) {
      w = std::gamma_distribution<double>(alpha, 1.0)(rng.engine());
      w = std::max(w, 1e-12);
      total += w;
    }
    std::size_t cursor = 0;
    for (std::size_t p = 0; p < k; ++p) {
      const auto take = static_cast<std::size_t>(std::llround(
          static_cast<double>(rows.size()) * weights[p] / total));
      const std::size_t end =
          p + 1 == k ? rows.size() : std::min(rows.size(), cursor + take);
      for (; cursor < end; ++cursor) parts[p].push_back(rows[cursor]);
    }
  }

  // Guarantee no empty partition: steal one row from the largest.
  for (std::size_t p = 0; p < k; ++p) {
    if (!parts[p].empty()) continue;
    auto largest = std::max_element(
        parts.begin(), parts.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    HGC_ASSERT(largest->size() > 1, "not enough rows to fill partitions");
    parts[p].push_back(largest->back());
    largest->pop_back();
  }
  for (auto& rows : parts) std::sort(rows.begin(), rows.end());
  return parts;
}

std::vector<std::size_t> label_histogram(const Dataset& data,
                                         std::span<const std::size_t> rows) {
  std::vector<std::size_t> histogram(data.num_classes, 0);
  for (std::size_t row : rows) {
    HGC_REQUIRE(row < data.size(), "row index out of range");
    ++histogram[static_cast<std::size_t>(data.labels[row])];
  }
  return histogram;
}

}  // namespace hgc
