#include "ml/sgd.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hgc {

SgdOptimizer::SgdOptimizer(SgdOptions options, std::size_t num_params)
    : options_(options) {
  HGC_REQUIRE(options_.learning_rate > 0.0, "learning rate must be positive");
  HGC_REQUIRE(options_.momentum >= 0.0 && options_.momentum < 1.0,
              "momentum must lie in [0, 1)");
  HGC_REQUIRE(options_.weight_decay >= 0.0, "weight decay must be >= 0");
  if (options_.momentum > 0.0) velocity_.assign(num_params, 0.0);
}

void SgdOptimizer::step(std::span<double> params,
                        std::span<const double> grad) {
  HGC_REQUIRE(params.size() == grad.size(), "params/grad size mismatch");
  const double lr = options_.learning_rate;
  const double wd = options_.weight_decay;
  if (options_.momentum == 0.0) {
    for (std::size_t i = 0; i < params.size(); ++i)
      params[i] -= lr * (grad[i] + wd * params[i]);
    return;
  }
  HGC_REQUIRE(velocity_.size() == params.size(),
              "optimizer built for a different parameter count");
  const double mu = options_.momentum;
  for (std::size_t i = 0; i < params.size(); ++i) {
    velocity_[i] = mu * velocity_[i] + grad[i] + wd * params[i];
    params[i] -= lr * velocity_[i];
  }
}

void SgdOptimizer::reset() {
  std::fill(velocity_.begin(), velocity_.end(), 0.0);
}

}  // namespace hgc
