// Differentiable models with a flat-parameter API.
//
// Every model exposes loss/gradient over an arbitrary row subset against a
// caller-owned flat parameter vector. Gradients are *sums* over the rows
// (not means): partial gradients over partitions then add up to the full-
// dataset gradient exactly — the property gradient coding depends on
// (g = Σ g_i, Section III-A). Trainers normalize by the dataset size.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "ml/dataset.hpp"
#include "util/rng.hpp"

namespace hgc {

/// Interface for models trained by distributed gradient descent.
class Model {
 public:
  virtual ~Model() = default;

  virtual std::string name() const = 0;
  virtual std::size_t num_params() const = 0;

  /// Σ over `rows` of per-sample loss; adds Σ of per-sample gradients into
  /// `grad` (caller zeroes it). params/grad have num_params() entries.
  virtual double loss_and_gradient(const Dataset& data,
                                   std::span<const std::size_t> rows,
                                   std::span<const double> params,
                                   std::span<double> grad) const = 0;

  /// Σ of per-sample losses only.
  virtual double loss(const Dataset& data, std::span<const std::size_t> rows,
                      std::span<const double> params) const = 0;

  /// Fraction of `rows` classified correctly.
  virtual double accuracy(const Dataset& data,
                          std::span<const std::size_t> rows,
                          std::span<const double> params) const = 0;

  /// Small random initialization.
  virtual Vector init_params(Rng& rng) const = 0;
};

/// Multinomial logistic (softmax) regression: W ∈ R^{classes×dim}, b ∈
/// R^{classes}; flat layout [W row-major, b].
class SoftmaxRegression : public Model {
 public:
  SoftmaxRegression(std::size_t dim, std::size_t classes);

  std::string name() const override { return "softmax-regression"; }
  std::size_t num_params() const override;
  double loss_and_gradient(const Dataset& data,
                           std::span<const std::size_t> rows,
                           std::span<const double> params,
                           std::span<double> grad) const override;
  double loss(const Dataset& data, std::span<const std::size_t> rows,
              std::span<const double> params) const override;
  double accuracy(const Dataset& data, std::span<const std::size_t> rows,
                  std::span<const double> params) const override;
  Vector init_params(Rng& rng) const override;

 private:
  std::size_t dim_;
  std::size_t classes_;
};

/// One-hidden-layer perceptron with ReLU: W1 ∈ R^{hidden×dim}, b1,
/// W2 ∈ R^{classes×hidden}, b2; flat layout [W1, b1, W2, b2]. Stands in for
/// the paper's DNN workloads (the coding layer only sees gradient vectors).
class Mlp : public Model {
 public:
  Mlp(std::size_t dim, std::size_t hidden, std::size_t classes);

  std::string name() const override { return "mlp"; }
  std::size_t num_params() const override;
  double loss_and_gradient(const Dataset& data,
                           std::span<const std::size_t> rows,
                           std::span<const double> params,
                           std::span<double> grad) const override;
  double loss(const Dataset& data, std::span<const std::size_t> rows,
              std::span<const double> params) const override;
  double accuracy(const Dataset& data, std::span<const std::size_t> rows,
                  std::span<const double> params) const override;
  Vector init_params(Rng& rng) const override;

 private:
  /// Forward pass for one sample; returns logits, optionally keeps the
  /// hidden activations for backprop.
  void forward(const Dataset& data, std::size_t row,
               std::span<const double> params, std::span<double> hidden,
               std::span<double> logits) const;

  std::size_t dim_;
  std::size_t hidden_;
  std::size_t classes_;
};

/// Least-squares linear regression: y ≈ wᵀx + b with per-sample loss
/// ½(ŷ − y)². Targets are derived from labels (regression on the class
/// index) unless a target column is supplied. Included because the coded-
/// computation lines of work the paper contrasts against ([13], [29]-[33])
/// are *restricted* to linear models — gradient coding handles this model
/// and the nonlinear ones above through the same interface.
class LinearRegression : public Model {
 public:
  explicit LinearRegression(std::size_t dim);

  std::string name() const override { return "linear-regression"; }
  std::size_t num_params() const override { return dim_ + 1; }
  double loss_and_gradient(const Dataset& data,
                           std::span<const std::size_t> rows,
                           std::span<const double> params,
                           std::span<double> grad) const override;
  double loss(const Dataset& data, std::span<const std::size_t> rows,
              std::span<const double> params) const override;
  /// Fraction of rows whose rounded prediction equals the label.
  double accuracy(const Dataset& data, std::span<const std::size_t> rows,
                  std::span<const double> params) const override;
  Vector init_params(Rng& rng) const override;

 private:
  double predict(const Dataset& data, std::size_t row,
                 std::span<const double> params) const;

  std::size_t dim_;
};

/// Numerically stable softmax cross-entropy over `logits` against `label`;
/// when `grad_logits` is non-empty, writes (softmax − onehot) into it.
double softmax_cross_entropy(std::span<double> logits, int label,
                             std::span<double> grad_logits);

}  // namespace hgc
