// Stochastic gradient descent with momentum — the optimizer used by every
// trainer (BSP coded, SSP, serial reference).
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace hgc {

/// SGD hyperparameters.
struct SgdOptions {
  double learning_rate = 0.1;
  double momentum = 0.0;      ///< classical momentum; 0 disables
  double weight_decay = 0.0;  ///< L2 coefficient added to the gradient
};

/// Stateful SGD stepper (owns the velocity buffer when momentum is on).
class SgdOptimizer {
 public:
  SgdOptimizer(SgdOptions options, std::size_t num_params);

  /// In-place update: params ← params − lr · (grad + wd·params), with
  /// momentum folded in when configured. `grad` must already be the *mean*
  /// gradient (trainers normalize the coded sums before stepping).
  void step(std::span<double> params, std::span<const double> grad);

  const SgdOptions& options() const { return options_; }

  void reset();

 private:
  SgdOptions options_;
  Vector velocity_;
};

}  // namespace hgc
