#include "runtime/loss_trace.hpp"

#include <limits>

namespace hgc {

double LossTrace::time_to_loss(double target) const {
  for (const TracePoint& p : points)
    if (p.loss <= target) return p.time;
  return std::numeric_limits<double>::infinity();
}

}  // namespace hgc
