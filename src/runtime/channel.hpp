// Minimal blocking MPSC channel for the threaded master/worker runtime.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace hgc {

/// Unbounded multi-producer single-consumer queue. close() wakes all
/// blocked receivers; receive() returns nullopt once closed and drained.
template <typename T>
class Channel {
 public:
  /// Enqueue a message; no-op after close (late worker results after
  /// shutdown are intentionally dropped).
  void send(T value) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return;
      queue_.push_back(std::move(value));
    }
    ready_.notify_one();
  }

  /// Block until a message or close; nullopt = closed and empty.
  std::optional<T> receive() {
    std::unique_lock lock(mutex_);
    ready_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace hgc
