// Networked BSP training: the full deployment stack in one loop. Every
// iteration the workers compute real partial gradients, encode, serialize to
// checksummed wire frames, and transmit over the simulated lossy network;
// the master parses arrivals in time order, decodes at the earliest
// sufficient set, and steps SGD. A round that loses more results than the
// code tolerates is *retried* (fresh transmissions, same parameters) — the
// BSP barrier cannot proceed on a partial gradient, so retry is the only
// sound recovery, and its cost shows up on the clock.
#pragma once

#include <cstdint>

#include "cluster/cluster.hpp"
#include "cluster/straggler.hpp"
#include "core/scheme_factory.hpp"
#include "ml/gradient.hpp"
#include "ml/model.hpp"
#include "ml/sgd.hpp"
#include "net/network.hpp"
#include "runtime/loss_trace.hpp"

namespace hgc {

/// Configuration of a networked run.
struct NetworkedTrainingConfig {
  std::size_t iterations = 50;
  SgdOptions sgd;
  StragglerModel straggler_model;
  LinkParams link;             ///< applied to every worker→master link
  std::size_t max_round_retries = 8;
  std::uint64_t seed = 42;
  std::size_t record_every = 1;
};

/// Outcome of a networked run.
struct NetworkedTrainingResult {
  LossTrace trace;
  Vector final_params;
  std::size_t rounds_retried = 0;   ///< undecodable rounds that were retried
  std::size_t rounds_abandoned = 0; ///< iterations lost to retry exhaustion
  std::size_t messages_dropped = 0;
  std::size_t bytes_sent = 0;
  double final_accuracy = 0.0;
};

/// Train over the simulated network.
NetworkedTrainingResult train_bsp_networked(
    SchemeKind kind, const Cluster& cluster, const Model& model,
    const Dataset& data, std::size_t k, std::size_t s,
    const NetworkedTrainingConfig& config);

}  // namespace hgc
